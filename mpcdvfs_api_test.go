package mpcdvfs_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdvfs"
)

func TestPublicQuickstartFlow(t *testing.T) {
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	base, target, err := sys.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	mpc := sys.NewMPC(sys.NewOracle(&app))
	runs, err := sys.RunRepeated(&app, mpc, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := mpcdvfs.Compare(runs[1], base)
	if c.EnergySavingsPct <= 0 {
		t.Errorf("quickstart MPC saves %.1f%%, want > 0", c.EnergySavingsPct)
	}
	if c.Speedup < 0.9 {
		t.Errorf("quickstart MPC speedup %.3f", c.Speedup)
	}
}

func TestPublicBenchmarks(t *testing.T) {
	apps := mpcdvfs.Benchmarks()
	if len(apps) != 15 {
		t.Fatalf("Benchmarks() returned %d apps, want 15", len(apps))
	}
	if _, err := mpcdvfs.BenchmarkByName("not-a-benchmark"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicSpaces(t *testing.T) {
	if got := mpcdvfs.DefaultSpace().Size(); got != 336 {
		t.Errorf("DefaultSpace size %d, want 336", got)
	}
	if got := mpcdvfs.FullSpace().Size(); got != 560 {
		t.Errorf("FullSpace size %d, want 560", got)
	}
	if !mpcdvfs.DefaultSpace().Contains(mpcdvfs.FailSafe()) {
		t.Error("fail-safe outside default space")
	}
	if !mpcdvfs.DefaultSpace().Contains(mpcdvfs.MaxPerf()) {
		t.Error("max-perf outside default space")
	}
}

func TestPublicCustomApp(t *testing.T) {
	app := mpcdvfs.App{
		Name: "custom", Pattern: "ABAB",
		Kernels: []mpcdvfs.Kernel{
			mpcdvfs.NewComputeBoundKernel("a", 1),
			mpcdvfs.NewMemoryBoundKernel("b", 1),
			mpcdvfs.NewComputeBoundKernel("a", 1),
			mpcdvfs.NewMemoryBoundKernel("b", 1),
		},
	}
	sys := mpcdvfs.NewSystem()
	base, target, err := sys.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []mpcdvfs.Policy{
		sys.NewTurboCore(),
		sys.NewPPK(sys.NewOracle(&app)),
		sys.NewTheoreticallyOptimal(&app),
		sys.NewMPC(sys.NewOracle(&app)),
	} {
		res, err := sys.Run(&app, pol, target, true)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.TotalEnergyMJ() <= 0 || res.TotalTimeMS() <= 0 {
			t.Fatalf("%s: degenerate result", pol.Name())
		}
		_ = base
	}
}

func TestPublicErrorModelAndCostModel(t *testing.T) {
	sys := mpcdvfs.NewSystem()
	app, _ := mpcdvfs.BenchmarkByName("Spmv")
	_, target, _ := sys.Baseline(&app)

	free := mpcdvfs.NewSystem()
	free.SetCostModel(mpcdvfs.CostModel{})
	if got := free.CostModel(); got.PerEvalMS != 0 {
		t.Errorf("cost model override lost: %+v", got)
	}
	model := mpcdvfs.NewErrorModel(free.NewOracle(&app), 0.15, 0.10, 3)
	m := free.NewMPC(model, mpcdvfs.WithFullHorizon())
	rs, err := free.RunRepeated(&app, m, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].OverheadMS() != 0 {
		t.Errorf("free cost model charged %.3f ms overhead", rs[1].OverheadMS())
	}
}

// Property: for any randomly composed app, every policy produces a valid
// run whose records cover all kernels with positive time and energy —
// the public API never returns degenerate accounting.
func TestPublicPoliciesOnRandomAppsQuick(t *testing.T) {
	sys := mpcdvfs.NewSystem()
	archetypes := []func(string, float64) mpcdvfs.Kernel{
		mpcdvfs.NewComputeBoundKernel,
		mpcdvfs.NewMemoryBoundKernel,
		mpcdvfs.NewPeakKernel,
		mpcdvfs.NewUnscalableKernel,
		mpcdvfs.NewBalancedKernel,
	}
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%10)
		ks := make([]mpcdvfs.Kernel, n)
		for i := range ks {
			mk := archetypes[rng.Intn(len(archetypes))]
			ks[i] = mk("k", 0.3+2*rng.Float64()).WithInput(0.5 + rng.Float64())
		}
		app := mpcdvfs.App{Name: "fuzz", Pattern: "random", Kernels: ks}
		base, target, err := sys.Baseline(&app)
		if err != nil || base.TotalTimeMS() <= 0 {
			return false
		}
		mpc := sys.NewMPC(sys.NewOracle(&app))
		runs, err := sys.RunRepeated(&app, mpc, target, 2)
		if err != nil {
			return false
		}
		for _, r := range runs {
			if len(r.Records) != n || r.TotalEnergyMJ() <= 0 {
				return false
			}
			for _, rec := range r.Records {
				if rec.TimeMS <= 0 || !sys.Space().Contains(rec.Config) {
					return false
				}
			}
		}
		// Steady state must stay within 2x the alpha bound even on
		// adversarial compositions (oracle predictions).
		c := mpcdvfs.Compare(runs[1], base)
		return c.Speedup > 0.85
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Error(err)
	}
}
