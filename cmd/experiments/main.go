// Command experiments regenerates the paper's tables and figures from
// the simulated system.
//
// Usage:
//
//	experiments            # run everything, in paper order
//	experiments -list      # list available experiment IDs
//	experiments -run fig8  # run one experiment (comma-separate for more)
//
// Observability: -metrics-addr serves /metrics, /health and
// /debug/pprof while the experiments run (scrape mid-run to watch the
// regeneration progress); -trace-out streams every engine event as
// JSONL; -log-level controls structured diagnostics on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/par"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (output stays in paper order)")
	workers := flag.Int("workers", 0, "worker goroutines for RF training and sharded config search (0 = all CPUs, 1 = serial; results are identical either way)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /health and /debug/pprof on this address while running")
	traceOut := flag.String("trace-out", "", "stream engine events as JSONL to this file (tailable)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	par.SetDefault(*workers)

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-16s %s\n", r.ID, r.Title)
		}
		return
	}

	var selected []experiments.Runner
	if *run == "" {
		selected = experiments.Runners()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				slog.Error("unknown experiment (use -list)", "id", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	f := experiments.Shared()

	// Observability: one observer set shared by both fixture engines, so
	// every policy run of every experiment is visible.
	var observers []obs.Observer
	if *metricsAddr != "" {
		reg := metrics.New()
		par.Instrument(reg)
		observers = append(observers, obs.NewMetrics(reg))
		srv := cli.ServeMetrics(*metricsAddr, reg)
		defer cli.Close("observability server", srv)
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			slog.Error("cannot create trace output", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		defer cli.Close("trace output", tf)
		jw := obs.NewJSONLWriter(tf)
		observers = append(observers, jw)
		defer func() {
			if err := jw.Err(); err != nil {
				slog.Error("event stream write failed", "err", err)
			}
		}()
	}
	if len(observers) > 0 {
		o := obs.Multi(observers...)
		f.Engine.Obs = o
		f.Free.Obs = o
	}

	if *parallel <= 1 {
		for _, r := range selected {
			slog.Debug("running experiment", "id", r.ID)
			t, err := r.Run(f)
			if err != nil {
				slog.Error("experiment failed", "id", r.ID, "err", err)
				os.Exit(1)
			}
			t.Render(os.Stdout)
		}
		return
	}

	// Parallel mode: run concurrently through the shared pool, render in
	// order. Each experiment writes only its own index-addressed slot,
	// and the fixture's caches are mutex- or once-protected.
	type slot struct {
		buf bytes.Buffer
		err error
	}
	slots := make([]slot, len(selected))
	par.ForEach(*parallel, len(selected), func(i int) {
		r := selected[i]
		t, err := r.Run(f)
		if err != nil {
			slots[i].err = fmt.Errorf("%s: %w", r.ID, err)
			return
		}
		t.Render(&slots[i].buf)
	})
	for i := range slots {
		if slots[i].err != nil {
			slog.Error(slots[i].err.Error())
			os.Exit(1)
		}
		_, _ = slots[i].buf.WriteTo(os.Stdout)
	}
}
