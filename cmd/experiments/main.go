// Command experiments regenerates the paper's tables and figures from
// the simulated system.
//
// Usage:
//
//	experiments            # run everything, in paper order
//	experiments -list      # list available experiment IDs
//	experiments -run fig8  # run one experiment (comma-separate for more)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"mpcdvfs/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (output stays in paper order)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-16s %s\n", r.ID, r.Title)
		}
		return
	}

	var selected []experiments.Runner
	if *run == "" {
		selected = experiments.Runners()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	f := experiments.Shared()
	if *parallel <= 1 {
		for _, r := range selected {
			t, err := r.Run(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
				os.Exit(1)
			}
			t.Render(os.Stdout)
		}
		return
	}

	// Parallel mode: run concurrently, render in order. The fixture's
	// caches are mutex- or once-protected.
	type slot struct {
		buf bytes.Buffer
		err error
	}
	slots := make([]slot, len(selected))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i, r := range selected {
		wg.Add(1)
		go func(i int, r experiments.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t, err := r.Run(f)
			if err != nil {
				slots[i].err = fmt.Errorf("%s: %w", r.ID, err)
				return
			}
			t.Render(&slots[i].buf)
		}(i, r)
	}
	wg.Wait()
	for i := range slots {
		if slots[i].err != nil {
			fmt.Fprintln(os.Stderr, slots[i].err)
			os.Exit(1)
		}
		_, _ = slots[i].buf.WriteTo(os.Stdout)
	}
}
