// Command capture performs the paper's measurement campaign (§V):
// sweeping every kernel of the benchmark suite across the 336-point
// configuration space and storing the per-kernel time and power in a
// measurement database that the policies can run against.
//
// Usage:
//
//	capture -out measurements.db          # whole Table IV suite
//	capture -out spmv.db -app Spmv        # one benchmark
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/measure"
	"mpcdvfs/internal/workload"
)

func main() {
	out := flag.String("out", "measurements.db", "output database file")
	appName := flag.String("app", "", "capture only this benchmark (default: all)")
	full := flag.Bool("fullspace", false, "capture all five DPM states (560 configs)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	space := hw.DefaultSpace()
	if *full {
		space = hw.FullSpace()
	}
	db := measure.NewDatabase(space)

	var apps []workload.App
	if *appName != "" {
		a, err := workload.ByName(*appName)
		if err != nil {
			slog.Error(err.Error())
			os.Exit(2)
		}
		apps = []workload.App{a}
	} else {
		apps = workload.Benchmarks()
	}
	for i := range apps {
		db.CaptureApp(&apps[i])
		slog.Info("captured", "app", apps[i].Name, "distinct_kernels", db.Kernels())
	}
	fmt.Printf("%d kernels x %d configurations = %d measurements\n",
		db.Kernels(), space.Size(), db.Measurements())

	f, err := os.Create(*out)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	if err := db.Save(f); err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	// Close explicitly: a deferred close would never run past os.Exit,
	// and a failed close on a freshly written database is data loss.
	if err := f.Close(); err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	slog.Info("database written", "path", *out)
}
