// Command capture performs the paper's measurement campaign (§V):
// sweeping every kernel of the benchmark suite across the 336-point
// configuration space and storing the per-kernel time and power in a
// measurement database that the policies can run against.
//
// Usage:
//
//	capture -out measurements.db          # whole Table IV suite
//	capture -out spmv.db -app Spmv        # one benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/measure"
	"mpcdvfs/internal/workload"
)

func main() {
	out := flag.String("out", "measurements.db", "output database file")
	appName := flag.String("app", "", "capture only this benchmark (default: all)")
	full := flag.Bool("fullspace", false, "capture all five DPM states (560 configs)")
	flag.Parse()

	space := hw.DefaultSpace()
	if *full {
		space = hw.FullSpace()
	}
	db := measure.NewDatabase(space)

	var apps []workload.App
	if *appName != "" {
		a, err := workload.ByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		apps = []workload.App{a}
	} else {
		apps = workload.Benchmarks()
	}
	for i := range apps {
		db.CaptureApp(&apps[i])
		fmt.Fprintf(os.Stderr, "captured %-14s -> %d distinct kernels so far\n", apps[i].Name, db.Kernels())
	}
	fmt.Printf("%d kernels x %d configurations = %d measurements\n",
		db.Kernels(), space.Size(), db.Measurements())

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "database written to %s\n", *out)
}
