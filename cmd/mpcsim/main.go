// Command mpcsim runs one benchmark under a power-management policy and
// prints per-kernel decisions and the comparison against Turbo Core.
//
// Usage:
//
//	mpcsim -app Spmv -policy mpc -runs 3
//	mpcsim -list
//
// Policies: turbo-core, ppk, to, mpc, mpc-full (RF predictor unless
// -oracle is set).
//
// Observability: -metrics-addr serves /metrics, /health and
// /debug/pprof for the duration of the process; -trace-out streams every
// run's per-kernel records as JSONL; -log-level controls the structured
// diagnostics on stderr.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"mpcdvfs"
	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/trace"
)

func main() {
	appName := flag.String("app", "Spmv", "benchmark name (see -list)")
	polName := flag.String("policy", "mpc", "policy: turbo-core | ppk | to | mpc | mpc-full")
	runs := flag.Int("runs", 2, "consecutive invocations (first is the profiling run)")
	useOracle := flag.Bool("oracle", false, "use a perfect predictor instead of the Random Forest")
	modelPath := flag.String("model", "", "load a model trained with cmd/train instead of training in-process")
	seed := flag.Int64("seed", 1, "Random Forest training seed")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print per-kernel decisions")
	traceOut := flag.String("trace", "", "write the last run's per-kernel trace to this file (.csv or .json)")
	traceJSONL := flag.String("trace-out", "", "stream every run's per-kernel records as JSONL to this file")
	powerOut := flag.String("powertrace", "", "write the last run's 1ms power-controller samples to this CSV file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /health and /debug/pprof on this address while running")
	workers := flag.Int("workers", 0, "worker goroutines for RF training and sharded config search (0 = all CPUs, 1 = serial; decisions are identical either way)")
	cacheSize := flag.Int("predict-cache", 0, "LRU prediction cache capacity for MPC policies (0 = off; decisions are identical either way)")
	noCompiledRF := flag.Bool("no-compiled-rf", false, "disable the compiled-forest inference fast path and walk the trees (decisions are bit-identical either way; escape hatch for A/B timing)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	par.SetDefault(*workers)

	if *list {
		for _, a := range mpcdvfs.Benchmarks() {
			fmt.Printf("%-14s %-12s %-40s %s (%d kernels)\n", a.Name, a.Suite, a.Category, a.Pattern, a.Len())
		}
		return
	}

	app, err := mpcdvfs.BenchmarkByName(*appName)
	if err != nil {
		fatal(err)
	}

	sys := mpcdvfs.NewSystem()
	var reg *mpcdvfs.MetricsRegistry
	if *metricsAddr != "" {
		reg = mpcdvfs.NewMetricsRegistry()
		par.Instrument(reg)
		sys.SetObserver(mpcdvfs.MultiObserver(mpcdvfs.NewMetricsObserver(reg), obs.NewSlog(nil)))
		srv := cli.ServeMetrics(*metricsAddr, reg)
		defer cli.Close("observability server", srv)
	}
	base, target, err := sys.Baseline(&app)
	if err != nil {
		fatal(err)
	}

	var model mpcdvfs.Model
	switch {
	case *useOracle:
		model = sys.NewOracle(&app)
	case *modelPath != "":
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err = predict.LoadModel(mf)
		cli.Close("model file", mf)
		if err != nil {
			fatal(err)
		}
	default:
		slog.Info("training Random Forest predictor (use -oracle or -model to skip)", "seed", *seed)
		model, err = mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(*seed))
		if err != nil {
			fatal(err)
		}
	}
	if *noCompiledRF {
		if rfm, ok := model.(*predict.RandomForest); ok {
			rfm.SetCompiled(false)
			slog.Info("compiled-forest fast path disabled; walking trees")
		}
	}

	mpcOpts := []mpcdvfs.MPCOption{}
	if *cacheSize > 0 {
		mpcOpts = append(mpcOpts, mpcdvfs.WithPredictionCache(*cacheSize))
	}
	var pol mpcdvfs.Policy
	var mpcPol *policy.MPC
	switch *polName {
	case "turbo-core":
		pol = sys.NewTurboCore()
	case "ppk":
		pol = sys.NewPPK(model)
	case "to":
		pol = sys.NewTheoreticallyOptimal(&app)
	case "mpc":
		mpcPol = sys.NewMPC(model, mpcOpts...)
		pol = mpcPol
	case "mpc-full":
		mpcPol = sys.NewMPC(model, append(mpcOpts, mpcdvfs.WithFullHorizon())...)
		pol = mpcPol
	default:
		slog.Error("unknown policy", "policy", *polName)
		os.Exit(2)
	}
	if mpcPol != nil && reg != nil {
		if c := mpcPol.PredictionCache(); c != nil {
			c.Instrument(reg)
		}
	}

	results, err := sys.RunRepeated(&app, pol, target, *runs)
	if err != nil {
		fatal(err)
	}
	if mpcPol != nil {
		if c := mpcPol.PredictionCache(); c != nil {
			h, m, ev, size := c.Stats()
			slog.Info("prediction cache", "hits", h, "misses", m, "evictions", ev, "entries", size)
		}
	}

	fmt.Printf("app %s, policy %s, target throughput %.3g insts/ms\n",
		app.Name, pol.Name(), target.Throughput())
	fmt.Printf("turbo core: %.2f ms, %.1f mJ\n\n", base.TotalTimeMS(), base.TotalEnergyMJ())
	for r, res := range results {
		label := "steady"
		if r == 0 {
			label = "profiling"
		}
		c := mpcdvfs.Compare(res, base)
		fmt.Printf("run %d (%s): %.2f ms (+%.2f ms overhead), %.1f mJ -> %.1f%% energy savings, %.3fx speedup\n",
			r+1, label, res.TotalTimeMS(), res.OverheadMS(), res.TotalEnergyMJ(),
			c.EnergySavingsPct, c.Speedup)
		if *verbose {
			for _, rec := range res.Records {
				fmt.Printf("  k%02d %-20s %-24s %8.3f ms  %6d evals\n",
					rec.Index, rec.Kernel, rec.Config.String(), rec.TimeMS, rec.Evals)
			}
		}
	}

	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		for _, res := range results {
			if err := trace.WriteJSONL(f, res); err != nil {
				cli.Close("JSONL trace", f)
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		slog.Info("JSONL trace written", "path", *traceJSONL, "runs", len(results))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		last := results[len(results)-1]
		if strings.HasSuffix(*traceOut, ".json") {
			err = trace.WriteJSON(f, last)
		} else {
			err = trace.WriteCSV(f, last)
		}
		if err != nil {
			cli.Close("trace output", f)
			fatal(err)
		}
		// Explicit close: a failed close on a freshly written trace is
		// data loss, and fatal's os.Exit would skip a defer anyway.
		if err := f.Close(); err != nil {
			fatal(err)
		}
		slog.Info("trace written", "path", *traceOut)
	}

	if *powerOut != "" {
		samples, err := trace.PowerTrace(results[len(results)-1], sys.CostModel(), trace.DefaultSampleMS)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*powerOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WritePowerCSV(f, samples); err != nil {
			cli.Close("power trace", f)
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		slog.Info("power trace written", "path", *powerOut)
	}
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
