// Command mpcsim runs one benchmark under a power-management policy and
// prints per-kernel decisions and the comparison against Turbo Core.
//
// Usage:
//
//	mpcsim -app Spmv -policy mpc -runs 3
//	mpcsim -list
//
// Policies: turbo-core, ppk, to, mpc, mpc-full (RF predictor unless
// -oracle is set).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcdvfs"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/trace"
)

func main() {
	appName := flag.String("app", "Spmv", "benchmark name (see -list)")
	polName := flag.String("policy", "mpc", "policy: turbo-core | ppk | to | mpc | mpc-full")
	runs := flag.Int("runs", 2, "consecutive invocations (first is the profiling run)")
	useOracle := flag.Bool("oracle", false, "use a perfect predictor instead of the Random Forest")
	modelPath := flag.String("model", "", "load a model trained with cmd/train instead of training in-process")
	seed := flag.Int64("seed", 1, "Random Forest training seed")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "print per-kernel decisions")
	traceOut := flag.String("trace", "", "write the last run's per-kernel trace to this file (.csv or .json)")
	powerOut := flag.String("powertrace", "", "write the last run's 1ms power-controller samples to this CSV file")
	flag.Parse()

	if *list {
		for _, a := range mpcdvfs.Benchmarks() {
			fmt.Printf("%-14s %-12s %-40s %s (%d kernels)\n", a.Name, a.Suite, a.Category, a.Pattern, a.Len())
		}
		return
	}

	app, err := mpcdvfs.BenchmarkByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sys := mpcdvfs.NewSystem()
	base, target, err := sys.Baseline(&app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var model mpcdvfs.Model
	switch {
	case *useOracle:
		model = sys.NewOracle(&app)
	case *modelPath != "":
		mf, err := os.Open(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model, err = predict.LoadModel(mf)
		mf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "training Random Forest predictor (use -oracle or -model to skip)...")
		model, err = mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var pol mpcdvfs.Policy
	switch *polName {
	case "turbo-core":
		pol = sys.NewTurboCore()
	case "ppk":
		pol = sys.NewPPK(model)
	case "to":
		pol = sys.NewTheoreticallyOptimal(&app)
	case "mpc":
		pol = sys.NewMPC(model)
	case "mpc-full":
		pol = sys.NewMPC(model, mpcdvfs.WithFullHorizon())
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *polName)
		os.Exit(2)
	}

	results, err := sys.RunRepeated(&app, pol, target, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("app %s, policy %s, target throughput %.3g insts/ms\n",
		app.Name, pol.Name(), target.Throughput())
	fmt.Printf("turbo core: %.2f ms, %.1f mJ\n\n", base.TotalTimeMS(), base.TotalEnergyMJ())
	for r, res := range results {
		label := "steady"
		if r == 0 {
			label = "profiling"
		}
		c := mpcdvfs.Compare(res, base)
		fmt.Printf("run %d (%s): %.2f ms (+%.2f ms overhead), %.1f mJ -> %.1f%% energy savings, %.3fx speedup\n",
			r+1, label, res.TotalTimeMS(), res.OverheadMS(), res.TotalEnergyMJ(),
			c.EnergySavingsPct, c.Speedup)
		if *verbose {
			for _, rec := range res.Records {
				fmt.Printf("  k%02d %-20s %-24s %8.3f ms  %6d evals\n",
					rec.Index, rec.Kernel, rec.Config.String(), rec.TimeMS, rec.Evals)
			}
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		last := results[len(results)-1]
		if strings.HasSuffix(*traceOut, ".json") {
			err = trace.WriteJSON(f, last)
		} else {
			err = trace.WriteCSV(f, last)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *traceOut)
	}

	if *powerOut != "" {
		samples, err := trace.PowerTrace(results[len(results)-1], sys.CostModel(), trace.DefaultSampleMS)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*powerOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WritePowerCSV(f, samples); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("power trace written to %s\n", *powerOut)
	}
}
