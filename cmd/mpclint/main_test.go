package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mpcdvfs/internal/analysis"
)

func fixture(check, kind string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", check, kind)
}

// TestFixturesDriveExitCodes runs the driver the way CI does against
// every check's golden fixtures: each findings fixture must fail with
// exit 1 and name its check, each clean fixture must pass with exit 0.
func TestFixturesDriveExitCodes(t *testing.T) {
	for _, c := range analysis.Checks() {
		c := c
		t.Run(c.Name+"/findings", func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-checks", c.Name, fixture(c.Name, "findings")}, &out, &errb)
			if code != 1 {
				t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(out.String(), "["+c.Name+"]") {
				t.Errorf("output does not name check %s:\n%s", c.Name, out.String())
			}
		})
		t.Run(c.Name+"/clean", func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-checks", c.Name, fixture(c.Name, "clean")}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
			}
		})
	}
}

// TestRepoTreeClean is the acceptance gate: the full suite over the
// whole module must exit 0. A new finding anywhere in the tree fails
// this test until it is fixed or suppressed with a reason.
func TestRepoTreeClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{filepath.Join("..", "..") + string(filepath.Separator) + "..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("mpclint over the repository tree: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestWorkersOutputIsByteIdentical pins the parallel driver's
// determinism contract: the full suite over a findings fixture emits
// byte-for-byte the same report at every worker count, because each
// task writes an index-addressed slot and the reduction is serial.
func TestWorkersOutputIsByteIdentical(t *testing.T) {
	target := fixture("determinism-taint", "findings")
	var ref bytes.Buffer
	if code := run([]string{"-workers", "1", target}, &ref, &ref); code != 1 {
		t.Fatalf("serial reference run: exit = %d, want 1\n%s", code, ref.String())
	}
	for _, w := range []string{"0", "2", "8"} {
		var out bytes.Buffer
		if code := run([]string{"-workers", w, target}, &out, &out); code != 1 {
			t.Fatalf("-workers %s: exit = %d, want 1\n%s", w, code, out.String())
		}
		if out.String() != ref.String() {
			t.Errorf("-workers %s output differs from the serial reference:\n--- serial ---\n%s--- workers=%s ---\n%s",
				w, ref.String(), w, out.String())
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-checks", "float-eq", fixture("float-eq", "findings")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output holds no diagnostics")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Check != "float-eq" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestSelectUnknownCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "no-such-check", "."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown check") {
		t.Errorf("stderr does not explain the unknown check: %s", errb.String())
	}
}

func TestListNamesEveryCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if n := len(analysis.Checks()); n < 9 {
		t.Fatalf("registry holds %d checks, want at least the 9 shipped ones", n)
	}
	for _, c := range analysis.Checks() {
		if !strings.Contains(out.String(), c.Name) {
			t.Errorf("-list omits %s", c.Name)
		}
	}
}
