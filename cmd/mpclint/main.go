// Command mpclint runs the repository's domain-specific static
// analysis suite (internal/analysis) over every package of a module:
//
//	mpclint ./...                 # lint the module containing the cwd
//	mpclint -checks float-eq,map-order ./...
//	mpclint -json ./...           # machine-readable diagnostics
//	mpclint -list                 # show every check with its doc line
//	mpclint -workers 1 ./...      # serial reference run (default: all cores)
//
// Diagnostics print as file:line:col: [check-name] message. The exit
// status is 0 when the tree is clean, 1 when there are findings, and 2
// on usage or load errors. Individual findings are suppressed, one line
// at a time, with
//
//	//mpclint:ignore <check-name> <reason>
//
// as documented in LINT.md. The module is loaded in a single
// type-check pass: each package is parsed and checked exactly once no
// matter how many packages import it. The checks then fan out through
// internal/par (one task per package×check plus one per module-scope
// check) with a serial, order-preserving reduction, so the output is
// byte-identical for every -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpcdvfs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "all", "comma-separated checks to run, or all")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a JSON array")
	listFlag := fs.Bool("list", false, "list registered checks and exit")
	workersFlag := fs.Int("workers", 0, "workers for the per-package/per-check fan-out (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-20s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := analysis.Select(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "mpclint:", err)
		return 2
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	roots := map[string]bool{}
	var order []string
	for _, t := range targets {
		root, err := moduleRoot(strings.TrimSuffix(t, "..."))
		if err != nil {
			fmt.Fprintln(stderr, "mpclint:", err)
			return 2
		}
		if !roots[root] {
			roots[root] = true
			order = append(order, root)
		}
	}

	var all []analysis.Diagnostic
	for _, root := range order {
		diags, err := analysis.LintModuleWorkers(root, checks, *workersFlag)
		if err != nil {
			fmt.Fprintln(stderr, "mpclint:", err)
			return 2
		}
		all = append(all, diags...)
	}

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "mpclint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// moduleRoot resolves a target (a directory, ".", or the stem left by
// stripping "..." from a ./... pattern) to the enclosing module root:
// the nearest parent directory, starting at the target itself, that
// holds a go.mod.
func moduleRoot(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
