// Command loadgen is the closed-loop load harness for the mpcserve
// decision API. It drives N concurrent sessions, each a full simulator
// replay (sim.Engine) whose policy is a serve.Client, so every decision
// round-trips the wire exactly as a real client application's would:
// decide kernel i, run it, observe the outcome, decide kernel i+1.
//
// Closed-loop means each session has at most one request in flight —
// offered load scales with session count, not with an open-loop arrival
// rate, which keeps the measured latencies honest under backpressure
// (429 retry waits are counted as client-visible latency).
//
// By default loadgen self-hosts an in-process server (training the
// Random Forest once) so the whole measurement is one command; point
// -addr at a running mpcserve to measure over real sockets instead.
//
// Usage:
//
//	loadgen                              # self-host, levels 1,2,4,8
//	loadgen -levels 2 -replays 1         # quick smoke
//	loadgen -addr http://localhost:9090  # against a live mpcserve
//	loadgen -out BENCH_serve.json        # write the report
//	loadgen -drift                       # degrade the model after the
//	                                     # first level and report the
//	                                     # learning loop's recovery
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// phaseStat is one span name's aggregate over a concurrency level —
// where the server actually spent a decision's wall time.
type phaseStat struct {
	Count   int     `json:"count"`
	AvgUS   float64 `json:"avg_us"`
	TotalMS float64 `json:"total_ms"`
}

// levelReport is one concurrency level's measurement.
type levelReport struct {
	Sessions      int                  `json:"sessions"`
	Replays       int                  `json:"replays_per_session"`
	Decisions     int                  `json:"decisions"`
	WallS         float64              `json:"wall_s"`
	ThroughputDPS float64              `json:"throughput_decisions_per_s"`
	P50MS         float64              `json:"p50_ms"`
	P99MS         float64              `json:"p99_ms"`
	P999MS        float64              `json:"p999_ms"`
	Retries429    int                  `json:"retries_429"`
	SnapshotGen   uint64               `json:"snapshot_gen,omitempty"` // -drift only: generation serving new sessions at level end
	Phases        map[string]phaseStat `json:"phase_breakdown,omitempty"`
}

// cpuSweepEntry is one GOMAXPROCS setting's full session-level sweep:
// the scaling curve is read across entries at a fixed session count.
// SpeedupVs1 is the throughput of this entry's highest session level
// over the 1-core entry's (present only when the sweep includes 1).
type cpuSweepEntry struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Levels     []levelReport `json:"levels"`
	SpeedupVs1 float64       `json:"throughput_speedup_vs_1core,omitempty"`
}

// report is the BENCH_serve.json schema.
type report struct {
	App        string          `json:"app"`
	Policy     string          `json:"policy"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	SelfHosted bool            `json:"self_hosted"`
	DriftMode  bool            `json:"drift_mode,omitempty"`
	Note       string          `json:"note"`
	Levels     []levelReport   `json:"levels"`
	CPUSweep   []cpuSweepEntry `json:"cpu_sweep,omitempty"` // -cpus sweep: one entry per GOMAXPROCS setting
	Learn      *learn.Status   `json:"learn,omitempty"`     // -drift only: trainer state after the sweep
}

func main() {
	addr := flag.String("addr", "", "base URL of a running mpcserve (empty: self-host an in-process server)")
	appName := flag.String("app", "Spmv", "benchmark application each session replays")
	levelsFlag := flag.String("levels", "1,2,4,8", "comma-separated concurrent session counts to sweep")
	replays := flag.Int("replays", 2, "replays per session at each level (each replay is one full session)")
	polName := flag.String("policy", "mpc", "self-host policy: ppk | mpc")
	seed := flag.Int64("seed", 1, "self-host Random Forest training seed")
	cacheSize := flag.Int("predict-cache", 0, "self-host per-session LRU prediction cache capacity (0 = off)")
	queueDepth := flag.Int("queue-depth", serve.DefaultQueueDepth, "self-host per-session queue depth")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N decisions as spans and report per-phase latency breakdowns from /debug/trace (0 = off; tracing never changes decisions)")
	drift := flag.Bool("drift", false, "self-host only: swap in an error-injected model after the first level, run the continuous trainer, and report the learning loop's recovery")
	driftErr := flag.Float64("drift-error", 0.8, "mean absolute relative error injected into the degraded model under -drift")
	cpusFlag := flag.String("cpus", "auto", "comma-separated GOMAXPROCS settings to sweep the whole run across (\"auto\": 1,2,4,8 capped at NumCPU; the top-level levels are recorded at the highest setting)")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout summary only)")
	logLevel := flag.String("log-level", "warn", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(*addr, *appName, *levelsFlag, *cpusFlag, *replays, *polName, *seed, *cacheSize, *queueDepth, *traceSample, *drift, *driftErr, *out); err != nil {
		slog.Error("loadgen failed", "err", err)
		os.Exit(1)
	}
}

func run(addr, appName, levelsFlag, cpusFlag string, replays int, polName string, seed int64, cacheSize, queueDepth, traceSample int, drift bool, driftErr float64, out string) error {
	levels, err := parseLevels(levelsFlag)
	if err != nil {
		return err
	}
	cpus, err := parseCPUs(cpusFlag)
	if err != nil {
		return err
	}
	if drift && len(cpus) > 1 {
		return fmt.Errorf("-drift sweeps one GOMAXPROCS setting only (its levels are a before/after story, not a scaling curve); pass -cpus with a single value")
	}
	app, err := mpcdvfs.BenchmarkByName(appName)
	if err != nil {
		return err
	}

	// The harness needs a local simulator either way: self-hosting shares
	// it with the server's policies, and every session's closed loop runs
	// kernels through it.
	sys := mpcdvfs.NewSystem()
	_, target, err := sys.Baseline(&app)
	if err != nil {
		return err
	}

	base := addr
	selfHosted := addr == ""
	if drift && !selfHosted {
		return fmt.Errorf("-drift needs the self-hosted server (it degrades the in-process model)")
	}
	var h *hosted
	if selfHosted {
		h, err = selfHost(sys, polName, seed, cacheSize, queueDepth, traceSample, drift)
		if err != nil {
			return err
		}
		defer func() {
			if h.trainer != nil {
				h.trainer.Stop()
			}
			h.decider.Shutdown()
			h.ts.Close()
		}()
		base = h.ts.URL
		fmt.Printf("self-hosted decision server at %s (policy %s)\n", base, polName)
	}

	rep := report{
		App:        app.Name,
		Policy:     polName,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		SelfHosted: selfHosted,
		DriftMode:  drift,
		Note: "closed-loop: one in-flight decision per session; latencies include 429 retry waits. " +
			"Throughput scaling with session count requires spare cores — on a single-CPU host the " +
			"sessions time-share one core and aggregate throughput stays flat by construction. " +
			"cpu_sweep (when present) re-runs the whole grid at each GOMAXPROCS setting; read the " +
			"scaling curve across entries at a fixed session count.",
	}

	// GOMAXPROCS scaling sweep: every setting below the primary runs the
	// full session grid first; the primary (highest) setting runs last,
	// and its sweep doubles as the report's top-level levels. On a
	// single-CPU host -cpus auto detects one setting and no sweep
	// happens — the curve needs cores, not goroutines.
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, c := range cpus[:len(cpus)-1] {
		runtime.GOMAXPROCS(c)
		fmt.Printf("gomaxprocs=%d\n", c)
		var lrs []levelReport
		for _, n := range levels {
			lr, err := runLevel(sys, &app, target, base, n, replays)
			if err != nil {
				return err
			}
			fmt.Printf("sessions=%d decisions=%d wall=%.2fs throughput=%.1f dec/s p50=%.3fms p99=%.3fms p999=%.3fms\n",
				lr.Sessions, lr.Decisions, lr.WallS, lr.ThroughputDPS, lr.P50MS, lr.P99MS, lr.P999MS)
			lrs = append(lrs, lr)
		}
		rep.CPUSweep = append(rep.CPUSweep, cpuSweepEntry{GOMAXPROCS: c, Levels: lrs})
	}
	primary := cpus[len(cpus)-1]
	runtime.GOMAXPROCS(primary)
	rep.GOMAXPROCS = primary
	if len(cpus) > 1 {
		fmt.Printf("gomaxprocs=%d\n", primary)
	}

	var lastSpanID uint64
	for li, n := range levels {
		lr, err := runLevel(sys, &app, target, base, n, replays)
		if err != nil {
			return err
		}
		if traceSample > 0 {
			phases, maxID, err := phaseBreakdown(base, lastSpanID)
			if err != nil {
				slog.Warn("phase breakdown unavailable", "err", err)
			} else {
				lr.Phases, lastSpanID = phases, maxID
			}
		}
		if drift {
			lr.SnapshotGen = h.decider.CurrentSnapshot().Gen
		}
		rep.Levels = append(rep.Levels, lr)
		fmt.Printf("sessions=%d decisions=%d wall=%.2fs throughput=%.1f dec/s p50=%.3fms p99=%.3fms p999=%.3fms\n",
			lr.Sessions, lr.Decisions, lr.WallS, lr.ThroughputDPS, lr.P50MS, lr.P99MS, lr.P999MS)
		printPhases(lr.Phases)
		if drift && li == 0 {
			injectDrift(h, app.Name, seed, driftErr)
		}
	}

	if len(cpus) > 1 {
		rep.CPUSweep = append(rep.CPUSweep, cpuSweepEntry{GOMAXPROCS: primary, Levels: rep.Levels})
		if rep.CPUSweep[0].GOMAXPROCS == 1 {
			if base1 := lastThroughput(rep.CPUSweep[0].Levels); base1 > 0 {
				for i := range rep.CPUSweep {
					rep.CPUSweep[i].SpeedupVs1 = lastThroughput(rep.CPUSweep[i].Levels) / base1
				}
				top := rep.CPUSweep[len(rep.CPUSweep)-1]
				fmt.Printf("cpu sweep: %d-core throughput %.2fx the 1-core run at %d sessions\n",
					top.GOMAXPROCS, top.SpeedupVs1, levels[len(levels)-1])
			}
		}
	}

	if drift {
		// Every post-injection level replayed against the degraded
		// generation; make sure at least one training round ran on what
		// the sweep observed before reporting.
		if h.trainer.Status().Rounds == 0 {
			if _, err := h.trainer.TrainOnce(); err != nil {
				slog.Warn("final training round failed", "err", err)
			}
		}
		st := h.trainer.Status()
		rep.Learn = &st
		fmt.Printf("learn: drift_signals=%d rounds=%d promoted=%d rejected=%d last=%s holdout_time_mape=%.4f gen=%d\n",
			st.DriftSignals, st.Rounds, st.Promoted, st.Rejected, st.LastOutcome,
			st.LastTimeMAPE, h.decider.CurrentSnapshot().Gen)
	}

	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	return nil
}

// runLevel sweeps one concurrency level: n sessions run their replays
// concurrently, each through its own serve.Client.
func runLevel(sys *mpcdvfs.System, app *mpcdvfs.App, target mpcdvfs.Target, base string, n, replays int) (levelReport, error) {
	lats := make([][]time.Duration, n)
	errs := make([]error, n)
	retries := make([]int, n)
	start := time.Now()
	par.ForEach(n, n, func(i int) {
		c := serve.NewClient(base)
		c.OnDecideLatency = func(d time.Duration) { lats[i] = append(lats[i], d) }
		for r := 0; r < replays; r++ {
			if _, err := sys.Run(app, c, target, r == 0); err != nil {
				errs[i] = err
				return
			}
			if err := c.Close(); err != nil {
				errs[i] = err
				return
			}
		}
		retries[i] = c.Retries429
	})
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return levelReport{}, fmt.Errorf("session %d/%d: %w", i+1, n, err)
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	lr := levelReport{
		Sessions:      n,
		Replays:       replays,
		Decisions:     len(all),
		WallS:         wall.Seconds(),
		ThroughputDPS: float64(len(all)) / wall.Seconds(),
		P50MS:         quantileMS(all, 0.50),
		P99MS:         quantileMS(all, 0.99),
		P999MS:        quantileMS(all, 0.999),
	}
	for _, r := range retries {
		lr.Retries429 += r
	}
	return lr, nil
}

// hosted is the self-hosted server bundle: the HTTP front, the decision
// server, the model it was built around, and — under -drift — the hub
// and trainer closing the learning loop.
type hosted struct {
	ts      *httptest.Server
	decider *serve.Server
	model   predict.Model
	hub     *telemetry.Hub
	trainer *learn.Trainer
}

// selfHost builds an in-process decision server over httptest, with the
// same per-session policy stack mpcserve serves. Under drift it also
// wires the continuous trainer the way mpcserve -learn does, so the
// sweep exercises the full observe → reservoir → retrain → promote loop.
func selfHost(sys *mpcdvfs.System, polName string, seed int64, cacheSize, queueDepth, traceSample int, drift bool) (*hosted, error) {
	slog.Info("training Random Forest predictor for the self-hosted server", "seed", seed)
	model, err := mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(seed))
	if err != nil {
		return nil, err
	}
	var hub *telemetry.Hub
	if traceSample > 0 {
		// A deep ring so a whole concurrency level's spans survive until
		// the post-level /debug/trace fetch.
		hub = telemetry.NewHub(telemetry.Options{Sample: traceSample, RingSize: 1 << 16})
	} else if drift {
		// Drift detection needs the scoreboard even with tracing off.
		hub = telemetry.NewHub(telemetry.Options{Sample: 0})
	}
	var trainer *learn.Trainer
	if drift {
		trainer = learn.New(learn.Config{
			Seed:        seed,
			Forest:      predict.OnlineForestConfig(seed),
			HoldoutFrac: 0.25,
			Gate:        learn.Gate{MaxTimeMAPE: 0.25, MaxPowerMAPE: 0.25},
			// Promotion baselines come from holdout MAPE, which understates
			// live error on optimizer-chosen configs; slack keeps a freshly
			// promoted generation from flapping straight back to drifted.
			BaselineSlack: 3,
		})
	}
	decider, err := serve.New(serve.Config{
		Model: model,
		Tag:   "loadgen seed=" + strconv.FormatInt(seed, 10),
		NewPolicy: func(m predict.Model) sim.Policy {
			if polName == "ppk" {
				return sys.NewPPK(m)
			}
			var opts []mpcdvfs.MPCOption
			if cacheSize > 0 {
				opts = append(opts, mpcdvfs.WithPredictionCache(cacheSize))
			}
			return sys.NewMPC(m, opts...)
		},
		QueueDepth: queueDepth,
		Telemetry:  hub,
		Learn:      trainer,
	})
	if err != nil {
		return nil, err
	}
	if trainer != nil {
		// A long period: rounds during the sweep are drift-triggered.
		trainer.Start(time.Hour)
	}
	mux := http.NewServeMux()
	h := decider.Handler()
	mux.Handle("/v1/", h)
	if hub != nil {
		mux.Handle("/debug/mpc", h)
		mux.Handle("/debug/models", h)
		mux.Handle("/debug/trace", h)
	}
	if trainer != nil {
		mux.Handle("/debug/learn", h)
	}
	return &hosted{
		ts:      httptest.NewServer(mux),
		decider: decider,
		model:   model,
		hub:     hub,
		trainer: trainer,
	}, nil
}

// injectDrift anchors the scoreboard baseline at the healthy first
// level's error and installs an error-injected model generation, so the
// remaining levels replay against a predictor the drift gate must flag.
func injectDrift(h *hosted, appName string, seed int64, driftErr float64) {
	for _, c := range h.hub.Scoreboard.Snapshot() {
		if c.App == appName {
			h.hub.Scoreboard.SetDefaultBaseline(c.TimeMAPE+0.01, c.PowerMAPE+0.01)
			break
		}
	}
	gen := h.decider.Install(predict.NewWithError(h.model, driftErr, driftErr, seed), "drift-injected")
	fmt.Printf("drift injected: generation %d serves with ±%.0f%% model error\n", gen, driftErr*100)
}

// phaseBreakdown fetches the server's span ring and aggregates spans
// newer than afterID by name — the per-phase decomposition of decision
// latency (queue wait, config search, featurization, forest inference).
// Span IDs are monotonic per tracer, so the afterID watermark isolates
// each concurrency level's spans. Ring wrap can drop a level's oldest
// spans; counts then undercount rather than mix levels.
func phaseBreakdown(base string, afterID uint64) (map[string]phaseStat, uint64, error) {
	resp, err := http.Get(base + "/debug/trace")
	if err != nil {
		return nil, 0, err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("/debug/trace: %s (is the server running with -trace-sample?)", resp.Status)
	}
	recs, err := telemetry.ReadSpansJSONL(strings.NewReader(string(body)))
	if err != nil {
		return nil, 0, err
	}
	type acc struct {
		count int
		ns    int64
	}
	sums := map[string]*acc{}
	maxID := afterID
	for _, r := range recs {
		if r.SpanID > maxID {
			maxID = r.SpanID
		}
		if r.SpanID <= afterID {
			continue
		}
		a := sums[r.Name]
		if a == nil {
			a = &acc{}
			sums[r.Name] = a
		}
		a.count++
		a.ns += r.DurNS
	}
	phases := make(map[string]phaseStat, len(sums))
	for name, a := range sums {
		phases[name] = phaseStat{
			Count:   a.count,
			AvgUS:   float64(a.ns) / float64(a.count) / 1e3,
			TotalMS: float64(a.ns) / 1e6,
		}
	}
	return phases, maxID, nil
}

// printPhases renders a level's phase breakdown in stable name order.
func printPhases(phases map[string]phaseStat) {
	if len(phases) == 0 {
		return
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  phases:")
	for _, name := range names {
		p := phases[name]
		fmt.Printf(" %s n=%d avg=%.1fus", strings.TrimPrefix(name, "mpcdvfs_"), p.Count, p.AvgUS)
	}
	fmt.Println()
}

// quantileMS reads quantile q from a sorted latency slice, in ms.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// lastThroughput returns the highest-session-level throughput of one
// sweep, the point the cross-GOMAXPROCS speedups are computed at.
func lastThroughput(levels []levelReport) float64 {
	if len(levels) == 0 {
		return 0
	}
	return levels[len(levels)-1].ThroughputDPS
}

// parseCPUs parses the -cpus flag: "auto" detects the host — powers of
// two up to min(NumCPU, 8), so a single-CPU host degenerates to one
// setting and the sweep disappears — otherwise an explicit
// comma-separated list, sorted ascending.
func parseCPUs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "auto" {
		var out []int
		for c := 1; c <= runtime.NumCPU() && c <= 8; c *= 2 {
			out = append(out, c)
		}
		return out, nil
	}
	out, err := parseLevels(s)
	if err != nil {
		return nil, fmt.Errorf("-cpus: want \"auto\" or positive integers: %w", err)
	}
	sort.Ints(out)
	return out, nil
}

// parseLevels parses the -levels flag.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return out, nil
}
