// Command loadgen is the closed-loop load harness for the mpcserve
// decision API. It drives N concurrent sessions, each a full simulator
// replay (sim.Engine) whose policy is a serve.Client, so every decision
// round-trips the wire exactly as a real client application's would:
// decide kernel i, run it, observe the outcome, decide kernel i+1.
//
// Closed-loop means each session has at most one request in flight —
// offered load scales with session count, not with an open-loop arrival
// rate, which keeps the measured latencies honest under backpressure
// (429 retry waits are counted as client-visible latency).
//
// By default loadgen self-hosts an in-process server (training the
// Random Forest once) so the whole measurement is one command; point
// -addr at a running mpcserve to measure over real sockets instead.
//
// Usage:
//
//	loadgen                              # self-host, levels 1,2,4,8
//	loadgen -levels 2 -replays 1         # quick smoke
//	loadgen -addr http://localhost:9090  # against a live mpcserve
//	loadgen -out BENCH_serve.json        # write the report
//	loadgen -drift                       # degrade the model after the
//	                                     # first level and report the
//	                                     # learning loop's recovery
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// phaseStat is one span name's aggregate over a concurrency level —
// where the server actually spent a decision's wall time.
type phaseStat struct {
	Count   int     `json:"count"`
	AvgUS   float64 `json:"avg_us"`
	TotalMS float64 `json:"total_ms"`
}

// levelReport is one concurrency level's measurement.
type levelReport struct {
	Sessions      int                  `json:"sessions"`
	Replays       int                  `json:"replays_per_session"`
	Decisions     int                  `json:"decisions"`
	WallS         float64              `json:"wall_s"`
	ThroughputDPS float64              `json:"throughput_decisions_per_s"`
	P50MS         float64              `json:"p50_ms"`
	P99MS         float64              `json:"p99_ms"`
	P999MS        float64              `json:"p999_ms"`
	Retries429    int                  `json:"retries_429"`
	Batched       bool                 `json:"batched,omitempty"`      // -batch A/B: this run had the epoch coordinator fusing sweeps
	SnapshotGen   uint64               `json:"snapshot_gen,omitempty"` // -drift only: generation serving new sessions at level end
	Phases        map[string]phaseStat `json:"phase_breakdown,omitempty"`
}

// cpuSweepEntry is one GOMAXPROCS setting's full session-level sweep:
// the scaling curve is read across entries at a fixed session count.
// SpeedupVs1 is the throughput of this entry's highest session level
// over the 1-core entry's (present only when the sweep includes 1).
type cpuSweepEntry struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Levels     []levelReport `json:"levels"`
	SpeedupVs1 float64       `json:"throughput_speedup_vs_1core,omitempty"`
}

// report is the BENCH_serve.json schema.
type report struct {
	App        string          `json:"app"`
	Policy     string          `json:"policy"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	SelfHosted bool            `json:"self_hosted"`
	DriftMode  bool            `json:"drift_mode,omitempty"`
	BatchMode  bool            `json:"batch_mode,omitempty"` // -batch: every level ran direct then batched
	ZipfS      float64         `json:"zipf_s,omitempty"`     // -zipf: skew exponent of the app-popularity draw
	AppMix     map[string]int  `json:"app_mix,omitempty"`    // -zipf: sessions assigned per app across the run
	Note       string          `json:"note"`
	Levels     []levelReport   `json:"levels"`
	CPUSweep   []cpuSweepEntry `json:"cpu_sweep,omitempty"` // -cpus sweep: one entry per GOMAXPROCS setting
	Batch      *batch.Stats    `json:"batch,omitempty"`     // -batch: coordinator totals across the whole run
	Learn      *learn.Status   `json:"learn,omitempty"`     // -drift only: trainer state after the sweep
}

// options carries the parsed flags.
type options struct {
	addr        string
	appName     string
	levelsFlag  string
	cpusFlag    string
	replays     int
	polName     string
	seed        int64
	cacheSize   int
	queueDepth  int
	traceSample int
	drift       bool
	driftErr    float64
	batch       bool
	batchWindow time.Duration
	batchMax    int
	zipfS       float64
	out         string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "base URL of a running mpcserve (empty: self-host an in-process server)")
	flag.StringVar(&o.appName, "app", "Spmv", "benchmark application each session replays (ignored under -zipf)")
	flag.StringVar(&o.levelsFlag, "levels", "1,2,4,8", "comma-separated concurrent session counts to sweep")
	flag.IntVar(&o.replays, "replays", 2, "replays per session at each level (each replay is one full session)")
	flag.StringVar(&o.polName, "policy", "mpc", "self-host policy: ppk | mpc")
	flag.Int64Var(&o.seed, "seed", 1, "self-host Random Forest training seed (also seeds the -zipf app draw)")
	flag.IntVar(&o.cacheSize, "predict-cache", 0, "self-host per-session LRU prediction cache capacity (0 = off, the recommended default: the cache forces the scalar per-configuration path, which loses to the batched compiled sweep)")
	flag.IntVar(&o.queueDepth, "queue-depth", serve.DefaultQueueDepth, "self-host per-session queue depth")
	flag.IntVar(&o.traceSample, "trace-sample", 0, "trace 1 in N decisions as spans and report per-phase latency breakdowns from /debug/trace (0 = off; tracing never changes decisions)")
	flag.BoolVar(&o.drift, "drift", false, "self-host only: swap in an error-injected model after the first level, run the continuous trainer, and report the learning loop's recovery")
	flag.Float64Var(&o.driftErr, "drift-error", 0.8, "mean absolute relative error injected into the degraded model under -drift")
	flag.BoolVar(&o.batch, "batch", false, "self-host only: run every level twice — direct, then with the epoch coordinator fusing concurrent sweeps — and report both (decisions are bit-identical either way)")
	flag.DurationVar(&o.batchWindow, "batch-window", 0, "batch epoch collect window (0 = 150µs default)")
	flag.IntVar(&o.batchMax, "batch-max", 0, "max sweeps fused per epoch (0 = 16 default)")
	flag.Float64Var(&o.zipfS, "zipf", 0, "Zipf-skew the per-session app draw over the whole benchmark suite with this exponent (> 1; 0 = every session replays -app); seeded and deterministic, recorded in the report header")
	flag.StringVar(&o.cpusFlag, "cpus", "auto", "comma-separated GOMAXPROCS settings to sweep the whole run across (\"auto\": 1,2,4,8 capped at NumCPU; the top-level levels are recorded at the highest setting)")
	flag.StringVar(&o.out, "out", "", "write the JSON report to this file (default: stdout summary only)")
	logLevel := flag.String("log-level", "warn", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		slog.Error("loadgen failed", "err", err)
		os.Exit(1)
	}
}

// sessApp is one session's assigned workload: the app it replays and
// the Turbo Core baseline target its tracker holds to.
type sessApp struct {
	app    *mpcdvfs.App
	target mpcdvfs.Target
}

func run(o options) error {
	levels, err := parseLevels(o.levelsFlag)
	if err != nil {
		return err
	}
	cpus, err := parseCPUs(o.cpusFlag)
	if err != nil {
		return err
	}
	if o.drift && len(cpus) > 1 {
		return fmt.Errorf("-drift sweeps one GOMAXPROCS setting only (its levels are a before/after story, not a scaling curve); pass -cpus with a single value")
	}
	if o.drift && o.batch {
		return fmt.Errorf("-batch and -drift don't compose: the batched A/B doubles every level while the drift story needs each level to advance the learning loop exactly once")
	}
	if o.drift && o.zipfS != 0 {
		return fmt.Errorf("-zipf and -drift don't compose: the drift scoreboard baseline is anchored on one app's error")
	}
	if o.zipfS != 0 && o.zipfS <= 1 {
		return fmt.Errorf("-zipf wants an exponent > 1 (got %g)", o.zipfS)
	}

	// The harness needs a local simulator either way: self-hosting shares
	// it with the server's policies, and every session's closed loop runs
	// kernels through it.
	sys := mpcdvfs.NewSystem()

	// Workload catalogue: uniform mode pins every session to -app; Zipf
	// mode draws each session's app from the full suite with skewed
	// popularity. Baselines are computed once per distinct app.
	catalog, mix, err := buildCatalog(sys, o)
	if err != nil {
		return err
	}

	base := o.addr
	selfHosted := o.addr == ""
	if o.drift && !selfHosted {
		return fmt.Errorf("-drift needs the self-hosted server (it degrades the in-process model)")
	}
	if o.batch && !selfHosted {
		return fmt.Errorf("-batch needs the self-hosted server (the coordinator lives in-process; start mpcserve with -batch to batch a remote server)")
	}
	var h *hosted
	if selfHosted {
		h, err = selfHost(sys, o)
		if err != nil {
			return err
		}
		defer func() {
			if h.trainer != nil {
				h.trainer.Stop()
			}
			h.decider.Shutdown()
			h.ts.Close()
		}()
		base = h.ts.URL
		fmt.Printf("self-hosted decision server at %s (policy %s)\n", base, o.polName)
	}

	rep := report{
		App:        o.appName,
		Policy:     o.polName,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		SelfHosted: selfHosted,
		DriftMode:  o.drift,
		BatchMode:  o.batch,
		ZipfS:      o.zipfS,
		AppMix:     mix,
		Note: "closed-loop: one in-flight decision per session; latencies include 429 retry waits. " +
			"Throughput scaling with session count requires spare cores — on a single-CPU host the " +
			"sessions time-share one core and aggregate throughput stays flat by construction. " +
			"cpu_sweep (when present) re-runs the whole grid at each GOMAXPROCS setting; read the " +
			"scaling curve across entries at a fixed session count. With batch_mode, every level " +
			"appears twice — direct then batched (fused epoch sweeps) — with bit-identical decisions; " +
			"fusing pays off once concurrent sessions queue sweeps faster than one epoch evaluates " +
			"(≥2 cores or ≥16 queued requests), and is flat-at-worst on one CPU.",
	}
	if o.zipfS != 0 {
		rep.App = "zipf-mix"
	}

	// runModes runs one concurrency level once (direct) or twice
	// (direct + batched) depending on -batch, flipping the coordinator
	// gate around the batched run.
	runModes := func(n int) ([]levelReport, error) {
		assign, err := catalog.assign(n, o)
		if err != nil {
			return nil, err
		}
		lr, err := runLevel(sys, assign, base, o.replays)
		if err != nil {
			return nil, err
		}
		out := []levelReport{lr}
		if o.batch {
			h.batchOn.Store(true)
			blr, err := runLevel(sys, assign, base, o.replays)
			h.batchOn.Store(false)
			if err != nil {
				return nil, err
			}
			blr.Batched = true
			out = append(out, blr)
		}
		return out, nil
	}
	printLevel := func(lr levelReport) {
		mode := ""
		if lr.Batched {
			mode = " batched"
		}
		fmt.Printf("sessions=%d%s decisions=%d wall=%.2fs throughput=%.1f dec/s p50=%.3fms p99=%.3fms p999=%.3fms\n",
			lr.Sessions, mode, lr.Decisions, lr.WallS, lr.ThroughputDPS, lr.P50MS, lr.P99MS, lr.P999MS)
	}

	// GOMAXPROCS scaling sweep: every setting below the primary runs the
	// full session grid first; the primary (highest) setting runs last,
	// and its sweep doubles as the report's top-level levels. On a
	// single-CPU host -cpus auto detects one setting and no sweep
	// happens — the curve needs cores, not goroutines.
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, c := range cpus[:len(cpus)-1] {
		runtime.GOMAXPROCS(c)
		fmt.Printf("gomaxprocs=%d\n", c)
		var lrs []levelReport
		for _, n := range levels {
			got, err := runModes(n)
			if err != nil {
				return err
			}
			for _, lr := range got {
				printLevel(lr)
			}
			lrs = append(lrs, got...)
		}
		rep.CPUSweep = append(rep.CPUSweep, cpuSweepEntry{GOMAXPROCS: c, Levels: lrs})
	}
	primary := cpus[len(cpus)-1]
	runtime.GOMAXPROCS(primary)
	rep.GOMAXPROCS = primary
	if len(cpus) > 1 {
		fmt.Printf("gomaxprocs=%d\n", primary)
	}

	var lastSpanID uint64
	for li, n := range levels {
		got, err := runModes(n)
		if err != nil {
			return err
		}
		for i := range got {
			lr := &got[i]
			if o.traceSample > 0 {
				phases, maxID, err := phaseBreakdown(base, lastSpanID)
				if err != nil {
					slog.Warn("phase breakdown unavailable", "err", err)
				} else {
					lr.Phases, lastSpanID = phases, maxID
				}
			}
			if o.drift {
				lr.SnapshotGen = h.decider.CurrentSnapshot().Gen
			}
			rep.Levels = append(rep.Levels, *lr)
			printLevel(*lr)
			printPhases(lr.Phases)
		}
		if o.drift && li == 0 {
			injectDrift(h, o.appName, o.seed, o.driftErr)
		}
	}
	if o.batch {
		printBatchDeltas(rep.Levels)
		if h.coord != nil {
			st := h.coord.Stats()
			rep.Batch = &st
			fmt.Printf("batch: epochs=%d fused=%d declined=%d rejected=%d (window=%dµs max_fuse=%d)\n",
				st.Epochs, st.Fused, st.Declined, st.Rejected, st.WindowUS, st.MaxFuse)
		}
	}

	if len(cpus) > 1 {
		rep.CPUSweep = append(rep.CPUSweep, cpuSweepEntry{GOMAXPROCS: primary, Levels: rep.Levels})
		if rep.CPUSweep[0].GOMAXPROCS == 1 {
			if base1 := lastThroughput(rep.CPUSweep[0].Levels); base1 > 0 {
				for i := range rep.CPUSweep {
					rep.CPUSweep[i].SpeedupVs1 = lastThroughput(rep.CPUSweep[i].Levels) / base1
				}
				top := rep.CPUSweep[len(rep.CPUSweep)-1]
				fmt.Printf("cpu sweep: %d-core throughput %.2fx the 1-core run at %d sessions\n",
					top.GOMAXPROCS, top.SpeedupVs1, levels[len(levels)-1])
			}
		}
	}

	if o.drift {
		// Every post-injection level replayed against the degraded
		// generation; make sure at least one training round ran on what
		// the sweep observed before reporting.
		if h.trainer.Status().Rounds == 0 {
			if _, err := h.trainer.TrainOnce(); err != nil {
				slog.Warn("final training round failed", "err", err)
			}
		}
		st := h.trainer.Status()
		rep.Learn = &st
		fmt.Printf("learn: drift_signals=%d rounds=%d promoted=%d rejected=%d last=%s holdout_time_mape=%.4f gen=%d\n",
			st.DriftSignals, st.Rounds, st.Promoted, st.Rejected, st.LastOutcome,
			st.LastTimeMAPE, h.decider.CurrentSnapshot().Gen)
	}

	if o.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", o.out)
	}
	return nil
}

// workloadCatalog owns the candidate app set and the lazily computed
// per-app baseline targets. Uniform mode has one candidate (-app); Zipf
// mode draws from the whole benchmark suite.
type workloadCatalog struct {
	sys     *mpcdvfs.System
	apps    []mpcdvfs.App
	targets map[string]mpcdvfs.Target
	uniform bool
	mix     map[string]int
}

// buildCatalog resolves the candidate app set for the run. The returned
// mix map (Zipf mode only) is shared with the report and accumulates
// session counts per app as levels are assigned.
func buildCatalog(sys *mpcdvfs.System, o options) (*workloadCatalog, map[string]int, error) {
	c := &workloadCatalog{sys: sys, targets: make(map[string]mpcdvfs.Target)}
	if o.zipfS == 0 {
		app, err := mpcdvfs.BenchmarkByName(o.appName)
		if err != nil {
			return nil, nil, err
		}
		c.apps = []mpcdvfs.App{app}
		c.uniform = true
		return c, nil, nil
	}
	c.apps = mpcdvfs.Benchmarks()
	c.mix = make(map[string]int)
	return c, c.mix, nil
}

// assign draws one (app, target) per session for a level. The Zipf draw
// is seeded from (-seed, level) so a level's assignment is identical
// across repeat runs — the batched A/B replays the exact same workload.
// Baselines are computed once per distinct app and cached.
func (c *workloadCatalog) assign(n int, o options) ([]sessApp, error) {
	idx := make([]int, n)
	if !c.uniform {
		z := rand.NewZipf(rand.New(rand.NewSource(o.seed<<16^int64(n))), o.zipfS, 1, uint64(len(c.apps)-1))
		for i := range idx {
			idx[i] = int(z.Uint64())
		}
	}
	out := make([]sessApp, n)
	for i, k := range idx {
		app := &c.apps[k]
		t, ok := c.targets[app.Name]
		if !ok {
			_, tgt, err := c.sys.Baseline(app)
			if err != nil {
				return nil, err
			}
			c.targets[app.Name] = tgt
			t = tgt
		}
		out[i] = sessApp{app: app, target: t}
		if c.mix != nil {
			c.mix[app.Name]++
		}
	}
	return out, nil
}

// printBatchDeltas prints, per session count, the batched run's
// throughput and p99 change versus the direct run at the same level.
func printBatchDeltas(levels []levelReport) {
	direct := make(map[int]levelReport)
	for _, lr := range levels {
		if !lr.Batched {
			direct[lr.Sessions] = lr
		}
	}
	for _, lr := range levels {
		if !lr.Batched {
			continue
		}
		d, ok := direct[lr.Sessions]
		if !ok || d.ThroughputDPS == 0 || d.P99MS == 0 {
			continue
		}
		fmt.Printf("batch delta sessions=%d throughput %+.1f%% p99 %+.1f%%\n",
			lr.Sessions, (lr.ThroughputDPS/d.ThroughputDPS-1)*100, (lr.P99MS/d.P99MS-1)*100)
	}
}

// runLevel sweeps one concurrency level: each assigned session runs its
// replays concurrently, through its own serve.Client.
func runLevel(sys *mpcdvfs.System, assign []sessApp, base string, replays int) (levelReport, error) {
	n := len(assign)
	lats := make([][]time.Duration, n)
	errs := make([]error, n)
	retries := make([]int, n)
	start := time.Now()
	par.ForEach(n, n, func(i int) {
		c := serve.NewClient(base)
		c.OnDecideLatency = func(d time.Duration) { lats[i] = append(lats[i], d) }
		for r := 0; r < replays; r++ {
			if _, err := sys.Run(assign[i].app, c, assign[i].target, r == 0); err != nil {
				errs[i] = err
				return
			}
			if err := c.Close(); err != nil {
				errs[i] = err
				return
			}
		}
		retries[i] = c.Retries429
	})
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return levelReport{}, fmt.Errorf("session %d/%d: %w", i+1, n, err)
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	lr := levelReport{
		Sessions:      n,
		Replays:       replays,
		Decisions:     len(all),
		WallS:         wall.Seconds(),
		ThroughputDPS: float64(len(all)) / wall.Seconds(),
		P50MS:         quantileMS(all, 0.50),
		P99MS:         quantileMS(all, 0.99),
		P999MS:        quantileMS(all, 0.999),
	}
	for _, r := range retries {
		lr.Retries429 += r
	}
	return lr, nil
}

// hosted is the self-hosted server bundle: the HTTP front, the decision
// server, the model it was built around, and — depending on flags — the
// hub and trainer closing the learning loop, plus the epoch coordinator
// and the gate the batched A/B flips around each level.
type hosted struct {
	ts      *httptest.Server
	decider *serve.Server
	model   predict.Model
	hub     *telemetry.Hub
	trainer *learn.Trainer
	coord   *batch.Coordinator
	batchOn *atomic.Bool
}

// selfHost builds an in-process decision server over httptest, with the
// same per-session policy stack mpcserve serves. Under drift it also
// wires the continuous trainer the way mpcserve -learn does, so the
// sweep exercises the full observe → reservoir → retrain → promote loop.
// Under -batch it wires the epoch coordinator behind an atomic gate:
// sessions always hold a submitter, but sweeps only reach the
// coordinator while the gate is up, so the same server A/Bs direct
// versus batched levels without rebuilding its sessions.
func selfHost(sys *mpcdvfs.System, o options) (*hosted, error) {
	slog.Info("training Random Forest predictor for the self-hosted server", "seed", o.seed)
	model, err := mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(o.seed))
	if err != nil {
		return nil, err
	}
	var hub *telemetry.Hub
	if o.traceSample > 0 {
		// A deep ring so a whole concurrency level's spans survive until
		// the post-level /debug/trace fetch.
		hub = telemetry.NewHub(telemetry.Options{Sample: o.traceSample, RingSize: 1 << 16})
	} else if o.drift {
		// Drift detection needs the scoreboard even with tracing off.
		hub = telemetry.NewHub(telemetry.Options{Sample: 0})
	}
	var trainer *learn.Trainer
	if o.drift {
		trainer = learn.New(learn.Config{
			Seed:        o.seed,
			Forest:      predict.OnlineForestConfig(o.seed),
			HoldoutFrac: 0.25,
			Gate:        learn.Gate{MaxTimeMAPE: 0.25, MaxPowerMAPE: 0.25},
			// Promotion baselines come from holdout MAPE, which understates
			// live error on optimizer-chosen configs; slack keeps a freshly
			// promoted generation from flapping straight back to drifted.
			BaselineSlack: 3,
		})
	}
	var coord *batch.Coordinator
	gate := new(atomic.Bool)
	var submit predict.SweepSubmit
	if o.batch {
		if o.cacheSize > 0 {
			return nil, fmt.Errorf("-batch needs the batched sweep path; drop -predict-cache (the cache forces the scalar per-configuration path)")
		}
		coord = batch.New(batch.Config{Window: o.batchWindow, MaxFuse: o.batchMax})
		submit = func(req *predict.SweepRequest) bool {
			if !gate.Load() {
				return false
			}
			return coord.Submit(req)
		}
	}
	decider, err := serve.New(serve.Config{
		Model: model,
		Tag:   "loadgen seed=" + strconv.FormatInt(o.seed, 10),
		NewPolicy: func(m predict.Model) sim.Policy {
			if o.polName == "ppk" {
				return sys.NewPPK(m).SetSweepSubmitter(m, submit)
			}
			var opts []mpcdvfs.MPCOption
			if o.cacheSize > 0 {
				opts = append(opts, mpcdvfs.WithPredictionCache(o.cacheSize))
			}
			if submit != nil {
				opts = append(opts, mpcdvfs.WithSweepSubmitter(submit))
			}
			return sys.NewMPC(m, opts...)
		},
		QueueDepth: o.queueDepth,
		Telemetry:  hub,
		Learn:      trainer,
		Batch:      coord,
	})
	if err != nil {
		return nil, err
	}
	if trainer != nil {
		// A long period: rounds during the sweep are drift-triggered.
		trainer.Start(time.Hour)
	}
	mux := http.NewServeMux()
	h := decider.Handler()
	mux.Handle("/v1/", h)
	if hub != nil {
		mux.Handle("/debug/mpc", h)
		mux.Handle("/debug/models", h)
		mux.Handle("/debug/trace", h)
	}
	if trainer != nil {
		mux.Handle("/debug/learn", h)
	}
	return &hosted{
		ts:      httptest.NewServer(mux),
		decider: decider,
		model:   model,
		hub:     hub,
		trainer: trainer,
		coord:   coord,
		batchOn: gate,
	}, nil
}

// injectDrift anchors the scoreboard baseline at the healthy first
// level's error and installs an error-injected model generation, so the
// remaining levels replay against a predictor the drift gate must flag.
func injectDrift(h *hosted, appName string, seed int64, driftErr float64) {
	for _, c := range h.hub.Scoreboard.Snapshot() {
		if c.App == appName {
			h.hub.Scoreboard.SetDefaultBaseline(c.TimeMAPE+0.01, c.PowerMAPE+0.01)
			break
		}
	}
	gen := h.decider.Install(predict.NewWithError(h.model, driftErr, driftErr, seed), "drift-injected")
	fmt.Printf("drift injected: generation %d serves with ±%.0f%% model error\n", gen, driftErr*100)
}

// phaseBreakdown fetches the server's span ring and aggregates spans
// newer than afterID by name — the per-phase decomposition of decision
// latency (queue wait, config search, featurization, forest inference).
// Span IDs are monotonic per tracer, so the afterID watermark isolates
// each concurrency level's spans. Ring wrap can drop a level's oldest
// spans; counts then undercount rather than mix levels.
func phaseBreakdown(base string, afterID uint64) (map[string]phaseStat, uint64, error) {
	resp, err := http.Get(base + "/debug/trace")
	if err != nil {
		return nil, 0, err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("/debug/trace: %s (is the server running with -trace-sample?)", resp.Status)
	}
	recs, err := telemetry.ReadSpansJSONL(strings.NewReader(string(body)))
	if err != nil {
		return nil, 0, err
	}
	type acc struct {
		count int
		ns    int64
	}
	sums := map[string]*acc{}
	maxID := afterID
	for _, r := range recs {
		if r.SpanID > maxID {
			maxID = r.SpanID
		}
		if r.SpanID <= afterID {
			continue
		}
		a := sums[r.Name]
		if a == nil {
			a = &acc{}
			sums[r.Name] = a
		}
		a.count++
		a.ns += r.DurNS
	}
	phases := make(map[string]phaseStat, len(sums))
	for name, a := range sums {
		phases[name] = phaseStat{
			Count:   a.count,
			AvgUS:   float64(a.ns) / float64(a.count) / 1e3,
			TotalMS: float64(a.ns) / 1e6,
		}
	}
	return phases, maxID, nil
}

// printPhases renders a level's phase breakdown in stable name order.
func printPhases(phases map[string]phaseStat) {
	if len(phases) == 0 {
		return
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  phases:")
	for _, name := range names {
		p := phases[name]
		fmt.Printf(" %s n=%d avg=%.1fus", strings.TrimPrefix(name, "mpcdvfs_"), p.Count, p.AvgUS)
	}
	fmt.Println()
}

// quantileMS reads quantile q from a sorted latency slice, in ms.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// lastThroughput returns the highest-session-level throughput of one
// sweep, the point the cross-GOMAXPROCS speedups are computed at.
func lastThroughput(levels []levelReport) float64 {
	if len(levels) == 0 {
		return 0
	}
	return levels[len(levels)-1].ThroughputDPS
}

// parseCPUs parses the -cpus flag: "auto" detects the host — powers of
// two up to min(NumCPU, 8), so a single-CPU host degenerates to one
// setting and the sweep disappears — otherwise an explicit
// comma-separated list, sorted ascending.
func parseCPUs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "auto" {
		var out []int
		for c := 1; c <= runtime.NumCPU() && c <= 8; c *= 2 {
			out = append(out, c)
		}
		return out, nil
	}
	out, err := parseLevels(s)
	if err != nil {
		return nil, fmt.Errorf("-cpus: want \"auto\" or positive integers: %w", err)
	}
	sort.Ints(out)
	return out, nil
}

// parseLevels parses the -levels flag.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return out, nil
}
