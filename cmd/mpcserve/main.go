// Command mpcserve runs the MPC runtime as a long-lived observable
// service: it replays benchmark workloads continuously under a
// power-management policy and exposes the runtime's metrics for
// Prometheus-style scraping.
//
// Endpoints (on -addr):
//
//	/metrics       mpcdvfs_* counters, gauges and histograms
//	/health        liveness probe
//	/debug/pprof/  live CPU/heap profiles of the serving process
//
// Usage:
//
//	mpcserve                       # all benchmarks under MPC (trains RF)
//	mpcserve -oracle -apps Spmv    # perfect predictor, one app
//	curl localhost:9090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
)

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address for /metrics, /health and /debug/pprof")
	appsFlag := flag.String("apps", "", "comma-separated benchmarks to replay (default: all)")
	polName := flag.String("policy", "mpc", "policy: turbo-core | ppk | mpc")
	useOracle := flag.Bool("oracle", false, "use a perfect predictor instead of the Random Forest")
	modelPath := flag.String("model", "", "load a model trained with cmd/train instead of training in-process")
	seed := flag.Int64("seed", 1, "Random Forest training seed")
	interval := flag.Duration("interval", 100*time.Millisecond, "pause between workload replays")
	traceOut := flag.String("trace-out", "", "stream runtime events as JSONL to this file (tailable)")
	workers := flag.Int("workers", 0, "worker goroutines for RF training and sharded config search (0 = all CPUs, 1 = serial; decisions are identical either way)")
	cacheSize := flag.Int("predict-cache", 0, "LRU prediction cache capacity for MPC policies (0 = off; decisions are identical either way)")
	noCompiledRF := flag.Bool("no-compiled-rf", false, "disable the compiled-forest inference fast path and walk the trees (decisions are bit-identical either way; escape hatch for A/B timing)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	par.SetDefault(*workers)
	if err := run(*addr, *appsFlag, *polName, *useOracle, *modelPath, *seed, *interval, *traceOut, *cacheSize, *noCompiledRF); err != nil {
		slog.Error("mpcserve failed", "err", err)
		os.Exit(1)
	}
}

func run(addr, appsFlag, polName string, useOracle bool, modelPath string, seed int64, interval time.Duration, traceOut string, cacheSize int, noCompiledRF bool) error {
	apps, err := selectApps(appsFlag)
	if err != nil {
		return err
	}

	reg := mpcdvfs.NewMetricsRegistry()
	par.Instrument(reg)
	observers := []mpcdvfs.Observer{mpcdvfs.NewMetricsObserver(reg), obs.NewSlog(nil)}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer cli.Close("trace output", f)
		jw := obs.NewJSONLWriter(f)
		observers = append(observers, jw)
		defer func() {
			if err := jw.Err(); err != nil {
				slog.Error("event stream write failed", "err", err)
			}
		}()
	}

	// Service-level metrics on the same registry as the runtime's.
	replays := reg.Counter("mpcdvfs_replays_total",
		"Completed workload replays.", "policy", "app")
	savings := reg.Gauge("mpcdvfs_energy_savings_pct",
		"Chip energy savings of the last replay versus the Turbo Core baseline.",
		"policy", "app")
	speedup := reg.Gauge("mpcdvfs_speedup",
		"Speedup of the last replay versus the Turbo Core baseline (>1 is faster).",
		"policy", "app")

	// Serve immediately: /health and /metrics answer while the predictor
	// trains.
	srv := cli.ServeMetrics(addr, reg)
	defer cli.Close("observability server", srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sys := mpcdvfs.NewSystem()
	sys.SetObserver(mpcdvfs.MultiObserver(observers...))

	var sharedModel mpcdvfs.Model
	switch {
	case useOracle, polName == "turbo-core":
		// Per-app oracles are built below; turbo-core needs no model.
	case modelPath != "":
		mf, err := os.Open(modelPath)
		if err != nil {
			return err
		}
		sharedModel, err = predict.LoadModel(mf)
		cli.Close("model file", mf)
		if err != nil {
			return err
		}
		slog.Info("model loaded", "path", modelPath, "name", sharedModel.Name())
	default:
		slog.Info("training Random Forest predictor (use -oracle or -model to skip)", "seed", seed)
		start := time.Now()
		sharedModel, err = mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(seed))
		if err != nil {
			return err
		}
		slog.Info("predictor trained", "took", time.Since(start).Round(time.Millisecond))
	}
	if noCompiledRF {
		if rfm, ok := sharedModel.(*predict.RandomForest); ok {
			rfm.SetCompiled(false)
			slog.Info("compiled-forest fast path disabled; walking trees")
		}
	}

	// One replayer per app: MPC keeps per-app pattern knowledge across
	// replays, so horizon and fallback metrics reflect steady state.
	type replayer struct {
		app    mpcdvfs.App
		pol    mpcdvfs.Policy
		base   *mpcdvfs.Result
		target mpcdvfs.Target
		first  bool
	}
	reps := make([]*replayer, 0, len(apps))
	for _, app := range apps {
		if ctx.Err() != nil {
			return nil
		}
		app := app
		base, target, err := sys.Baseline(&app)
		if err != nil {
			return err
		}
		model := sharedModel
		if model == nil && polName != "turbo-core" {
			model = sys.NewOracle(&app)
		}
		var pol mpcdvfs.Policy
		switch polName {
		case "turbo-core":
			pol = sys.NewTurboCore()
		case "ppk":
			pol = sys.NewPPK(model)
		case "mpc":
			var opts []mpcdvfs.MPCOption
			if cacheSize > 0 {
				opts = append(opts, mpcdvfs.WithPredictionCache(cacheSize))
			}
			m := sys.NewMPC(model, opts...)
			if c := m.PredictionCache(); c != nil {
				c.Instrument(reg)
			}
			pol = m
		default:
			return fmt.Errorf("unknown policy %q (want turbo-core, ppk or mpc)", polName)
		}
		reps = append(reps, &replayer{app: app, pol: pol, base: base, target: target, first: true})
	}

	slog.Info("replay loop started", "apps", len(reps), "policy", polName, "interval", interval)
	cycles := 0
	for ctx.Err() == nil {
		for _, r := range reps {
			if ctx.Err() != nil {
				break
			}
			res, err := sys.Run(&r.app, r.pol, r.target, r.first)
			if err != nil {
				return fmt.Errorf("replay %s: %w", r.app.Name, err)
			}
			r.first = false
			c := mpcdvfs.Compare(res, r.base)
			replays.With(res.Policy, res.App).Inc()
			savings.With(res.Policy, res.App).Set(c.EnergySavingsPct)
			speedup.With(res.Policy, res.App).Set(c.Speedup)
			slog.Debug("replay done",
				"app", res.App, "policy", res.Policy,
				"time_ms", res.TotalTimeMS(), "energy_mj", res.TotalEnergyMJ(),
				"savings_pct", c.EnergySavingsPct, "speedup", c.Speedup)
			select {
			case <-ctx.Done():
			case <-time.After(interval):
			}
		}
		cycles++
		if cycles%100 == 0 {
			slog.Info("replay progress", "cycles", cycles)
		}
	}
	slog.Info("shutting down", "cycles", cycles)
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}

// selectApps resolves the -apps flag against the benchmark suite.
func selectApps(flagVal string) ([]mpcdvfs.App, error) {
	if flagVal == "" {
		return mpcdvfs.Benchmarks(), nil
	}
	var out []mpcdvfs.App
	for _, name := range strings.Split(flagVal, ",") {
		app, err := mpcdvfs.BenchmarkByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, app)
	}
	return out, nil
}
