// Command mpcserve runs the MPC runtime as a long-lived observable
// service with two faces: a replay loop that continuously re-runs
// benchmark workloads under a policy (the original mode), and a
// concurrent decision API that serves per-kernel configuration
// decisions to remote clients over HTTP, one session per client
// application (internal/serve).
//
// Endpoints (on -addr):
//
//	/metrics            mpcdvfs_* counters, gauges and histograms
//	/health             liveness probe
//	/debug/pprof/       live CPU/heap profiles of the serving process
//	/debug/mpc          serving introspection: sessions, scoreboard,
//	                    energy ledger, recent spans (JSON; ?format=html)
//	/debug/models       per-generation model-quality scoreboard
//	/debug/learn        continuous-trainer status (-learn; ?format=samples
//	                    dumps the reservoir as JSONL)
//	/debug/trace        span ring as JSONL (decision-path phase timings)
//	/v1/session         open a decision session (POST)
//	/v1/decide          decide one kernel invocation (POST)
//	/v1/observe         feed back a measured kernel outcome (POST)
//	/v1/session/close   drain and close a session (POST)
//	/reload             hot-swap the serving model (POST; {"path": ...}
//	                    loads a cmd/train gob, {} retrains in-process)
//
// The decision API needs a shared predictor, so it is served for the
// RF-backed policies (mpc, ppk) and disabled under -oracle or
// -policy=turbo-core, whose predictors are per-app or absent.
//
// Usage:
//
//	mpcserve                        # replay all benchmarks + serve API
//	mpcserve -replay=false          # decision API only
//	mpcserve -oracle -apps Spmv     # perfect predictor, replay only
//	curl localhost:9090/metrics
//	curl -d '{"app":"x","num_kernels":8,"target":{"total_insts":1e9,"total_time_ms":100}}' localhost:9090/v1/session
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

type options struct {
	addr         string
	apps         string
	policy       string
	oracle       bool
	modelPath    string
	seed         int64
	interval     time.Duration
	traceOut     string
	cacheSize    int
	noCompiledRF bool
	replay       bool
	queueDepth   int
	traceSample  int
	traceRing    int
	batch        bool
	batchWindow  time.Duration
	batchMax     int

	learn          bool
	learnInterval  time.Duration
	learnHoldout   float64
	learnMaxMAPE   float64
	learnReservoir int
	learnMinObs    int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":9090", "HTTP listen address for the decision API, /metrics, /health and /debug/pprof")
	flag.StringVar(&o.apps, "apps", "", "comma-separated benchmarks to replay (default: all)")
	flag.StringVar(&o.policy, "policy", "mpc", "policy: turbo-core | ppk | mpc")
	flag.BoolVar(&o.oracle, "oracle", false, "use a perfect predictor instead of the Random Forest (disables the decision API)")
	flag.StringVar(&o.modelPath, "model", "", "load a model trained with cmd/train instead of training in-process")
	flag.Int64Var(&o.seed, "seed", 1, "Random Forest training seed")
	flag.DurationVar(&o.interval, "interval", 100*time.Millisecond, "pause between workload replays")
	flag.StringVar(&o.traceOut, "trace-out", "", "stream runtime events as JSONL to this file (tailable)")
	workers := flag.Int("workers", 0, "worker goroutines for RF training and sharded config search (0 = all CPUs, 1 = serial; decisions are identical either way)")
	flag.IntVar(&o.cacheSize, "predict-cache", 0, "LRU prediction cache capacity for MPC policies (0 = off, the recommended default: the cache forces the scalar per-configuration path, which loses to the batched compiled sweep; decisions are identical either way)")
	flag.BoolVar(&o.noCompiledRF, "no-compiled-rf", false, "disable the compiled-forest inference fast path and walk the trees (decisions are bit-identical either way; escape hatch for A/B timing)")
	flag.BoolVar(&o.replay, "replay", true, "run the continuous benchmark replay loop (false: serve the decision API only)")
	flag.IntVar(&o.queueDepth, "queue-depth", serve.DefaultQueueDepth, "per-session decision queue depth (full queues answer 429)")
	flag.IntVar(&o.traceSample, "trace-sample", 0, "trace 1 in N decisions as spans on /debug/trace (0 = off, 1 = every decision; tracing never changes decisions)")
	flag.IntVar(&o.traceRing, "trace-ring", 0, "span ring capacity (0 = default)")
	flag.BoolVar(&o.batch, "batch", false, "fuse concurrent sessions' exhaustive sweeps into epoch mega-batches (internal/batch; decisions are bit-identical either way)")
	flag.DurationVar(&o.batchWindow, "batch-window", 0, "batch epoch collect window (0 = 150µs default)")
	flag.IntVar(&o.batchMax, "batch-max", 0, "max sweeps fused per epoch (0 = 16 default)")
	flag.BoolVar(&o.learn, "learn", false, "continuously retrain from /v1/observe traffic and promote candidates that pass the holdout gate (needs the decision API)")
	flag.DurationVar(&o.learnInterval, "learn-interval", time.Minute, "periodic retraining cadence; scoreboard drift triggers a round early")
	flag.Float64Var(&o.learnHoldout, "learn-holdout", 0.25, "fraction of the reservoir held out for candidate validation")
	flag.Float64Var(&o.learnMaxMAPE, "learn-promote-max-mape", 0.25, "holdout time/power MAPE a candidate must stay under to be promoted")
	flag.IntVar(&o.learnReservoir, "learn-reservoir", 4096, "training reservoir capacity (uniform sample over all observed kernels)")
	flag.IntVar(&o.learnMinObs, "learn-min-samples", 64, "fewest reservoir samples before a training round runs")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	par.SetDefault(*workers)
	if err := run(o); err != nil {
		slog.Error("mpcserve failed", "err", err)
		os.Exit(1)
	}
}

func run(o options) error {
	apps, err := selectApps(o.apps)
	if err != nil {
		return err
	}

	reg := mpcdvfs.NewMetricsRegistry()
	par.Instrument(reg)
	observers := []mpcdvfs.Observer{mpcdvfs.NewMetricsObserver(reg), obs.NewSlog(nil)}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer cli.Close("trace output", f)
		jw := obs.NewJSONLWriter(f)
		observers = append(observers, jw)
		defer func() {
			if err := jw.Err(); err != nil {
				slog.Error("event stream write failed", "err", err)
			}
		}()
	}

	// Service-level metrics on the same registry as the runtime's.
	replays := reg.Counter("mpcdvfs_replays_total",
		"Completed workload replays.", "policy", "app")
	savings := reg.Gauge("mpcdvfs_energy_savings_pct",
		"Chip energy savings of the last replay versus the Turbo Core baseline.",
		"policy", "app")
	speedup := reg.Gauge("mpcdvfs_speedup",
		"Speedup of the last replay versus the Turbo Core baseline (>1 is faster).",
		"policy", "app")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The telemetry hub carries the span tracer, model scoreboard and
	// energy ledger for both faces of the process: served sessions get
	// per-session trace contexts, the replay loop traces under "replay".
	hub := mpcdvfs.NewTelemetryHub(mpcdvfs.TelemetryOptions{
		Sample:   o.traceSample,
		RingSize: o.traceRing,
	})
	hub.Instrument(reg)

	sys := mpcdvfs.NewSystem()
	sys.SetObserver(mpcdvfs.MultiObserver(observers...))
	if o.traceSample > 0 {
		sys.SetTraceContext(hub.Tracer.NewContext("replay"))
	}

	var sharedModel mpcdvfs.Model
	switch {
	case o.oracle, o.policy == "turbo-core":
		// Per-app oracles are built below; turbo-core needs no model.
	case o.modelPath != "":
		mf, err := os.Open(o.modelPath)
		if err != nil {
			return err
		}
		sharedModel, err = predict.LoadModel(mf)
		cli.Close("model file", mf)
		if err != nil {
			return err
		}
		slog.Info("model loaded", "path", o.modelPath, "name", sharedModel.Name())
	default:
		slog.Info("training Random Forest predictor (use -oracle or -model to skip)", "seed", o.seed)
		start := time.Now()
		sharedModel, err = mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(o.seed))
		if err != nil {
			return err
		}
		slog.Info("predictor trained", "took", time.Since(start).Round(time.Millisecond))
	}
	if o.noCompiledRF {
		if rfm, ok := sharedModel.(*predict.RandomForest); ok {
			rfm.SetCompiled(false)
			slog.Info("compiled-forest fast path disabled; walking trees")
		}
	}

	// The decision API serves sessions from the shared model; mount it
	// next to the observability surface when one exists.
	mux := cli.NewObsMux(reg)
	var decider *serve.Server
	var trainer *learn.Trainer
	if sharedModel != nil {
		if o.learn {
			trainer = newTrainer(o)
		}
		decider, err = newDecider(o, sys, sharedModel, reg, hub, trainer)
		if err != nil {
			return err
		}
		h := decider.Handler()
		mux.Handle("/v1/", h)
		mux.Handle("/reload", h)
		mux.Handle("/debug/mpc", h)
		mux.Handle("/debug/models", h)
		mux.Handle("/debug/trace", h)
		if trainer != nil {
			mux.Handle("/debug/learn", h)
			trainer.Start(o.learnInterval)
			slog.Info("continuous trainer enabled", "interval", o.learnInterval,
				"holdout", o.learnHoldout, "promote_max_mape", o.learnMaxMAPE,
				"reservoir", o.learnReservoir)
		}
		slog.Info("decision API enabled", "policy", o.policy,
			"queue_depth", o.queueDepth, "trace_sample", o.traceSample)
	} else {
		if o.learn {
			slog.Warn("-learn ignored: continuous training needs the decision API's observe stream")
		}
		slog.Info("decision API disabled (no shared predictor under -oracle/turbo-core)")
		if o.traceSample > 0 {
			// The replay loop still records spans; without a decision
			// server to host the richer /debug/mpc view, expose the
			// raw ring so the phase timings stay reachable.
			mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/x-ndjson")
				_ = telemetry.WriteSpansJSONL(w, hub.Tracer.Snapshot(nil))
			})
		}
	}
	srv := cli.ServeMux(o.addr, mux)

	if o.replay {
		if err := replayLoop(ctx, o, sys, sharedModel, apps, reg, replays, savings, speedup); err != nil {
			return err
		}
	} else {
		slog.Info("replay loop disabled; serving decisions only")
		<-ctx.Done()
	}

	slog.Info("shutting down")
	if trainer != nil {
		trainer.Stop() // quiesce retraining before sessions drain
	}
	if decider != nil {
		decider.Shutdown() // drain decision sessions before dropping the listener
	}
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}

// newDecider builds the concurrent decision service around the shared
// model: per-session policies use the exact stack the replay loop uses,
// which is what keeps served decision streams byte-identical to local
// replays.
// newTrainer shapes the continuous trainer from the -learn* flags. The
// forest matches cmd/train's online configuration; the promotion gate
// applies -learn-promote-max-mape to both targets.
func newTrainer(o options) *learn.Trainer {
	fcfg := predict.OnlineForestConfig(o.seed)
	return learn.New(learn.Config{
		Seed:         o.seed,
		Forest:       fcfg,
		ReservoirCap: o.learnReservoir,
		MinSamples:   o.learnMinObs,
		HoldoutFrac:  o.learnHoldout,
		Gate: learn.Gate{
			MaxTimeMAPE:  o.learnMaxMAPE,
			MaxPowerMAPE: o.learnMaxMAPE,
		},
		ExtendTrees: fcfg.NumTrees / 2,
	})
}

func newDecider(o options, sys *mpcdvfs.System, sharedModel mpcdvfs.Model, reg *mpcdvfs.MetricsRegistry, hub *mpcdvfs.TelemetryHub, trainer *learn.Trainer) (*serve.Server, error) {
	var coord *batch.Coordinator
	if o.batch {
		if o.cacheSize > 0 {
			slog.Warn("-batch is ignored with -predict-cache: a fused sweep would bypass the per-configuration cache; sessions use the direct path")
		} else {
			coord = batch.New(batch.Config{
				Window:  o.batchWindow,
				MaxFuse: o.batchMax,
				Metrics: reg,
			})
			slog.Info("decision batching enabled", "window", o.batchWindow, "max_fuse", o.batchMax)
		}
	}
	newPolicy := func(m predict.Model) sim.Policy {
		switch o.policy {
		case "ppk":
			p := sys.NewPPK(m)
			if coord != nil {
				p.SetSweepSubmitter(m, coord.Submit)
			}
			return p
		default:
			var opts []mpcdvfs.MPCOption
			if o.cacheSize > 0 {
				opts = append(opts, mpcdvfs.WithPredictionCache(o.cacheSize))
			}
			if coord != nil {
				opts = append(opts, mpcdvfs.WithSweepSubmitter(coord.Submit))
			}
			mp := sys.NewMPC(m, opts...)
			if c := mp.PredictionCache(); c != nil {
				c.Instrument(reg)
			}
			return mp
		}
	}
	tag := "trained seed=" + fmt.Sprint(o.seed)
	if o.modelPath != "" {
		tag = o.modelPath
	}
	decider, err := serve.New(serve.Config{
		Model:     sharedModel,
		Tag:       tag,
		NewPolicy: newPolicy,
		Train: func() (predict.Model, error) {
			return mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(o.seed))
		},
		QueueDepth: o.queueDepth,
		Telemetry:  hub,
		Learn:      trainer,
		Batch:      coord,
	})
	if err != nil {
		return nil, err
	}
	decider.Instrument(reg)
	if rfm, ok := sharedModel.(*predict.RandomForest); ok {
		rfm.InstrumentArenaPool(reg)
	}
	return decider, nil
}

// replayLoop is the original mpcserve behaviour: replay each benchmark
// continuously under the policy, publishing savings/speedup metrics.
func replayLoop(ctx context.Context, o options, sys *mpcdvfs.System, sharedModel mpcdvfs.Model, apps []mpcdvfs.App,
	reg *mpcdvfs.MetricsRegistry, replays *metrics.CounterVec, savings, speedup *metrics.GaugeVec) error {
	// One replayer per app: MPC keeps per-app pattern knowledge across
	// replays, so horizon and fallback metrics reflect steady state.
	type replayer struct {
		app    mpcdvfs.App
		pol    mpcdvfs.Policy
		base   *mpcdvfs.Result
		target mpcdvfs.Target
		first  bool
	}
	reps := make([]*replayer, 0, len(apps))
	for _, app := range apps {
		if ctx.Err() != nil {
			return nil
		}
		app := app
		base, target, err := sys.Baseline(&app)
		if err != nil {
			return err
		}
		model := sharedModel
		if model == nil && o.policy != "turbo-core" {
			model = sys.NewOracle(&app)
		}
		var pol mpcdvfs.Policy
		switch o.policy {
		case "turbo-core":
			pol = sys.NewTurboCore()
		case "ppk":
			pol = sys.NewPPK(model)
		case "mpc":
			var opts []mpcdvfs.MPCOption
			if o.cacheSize > 0 {
				opts = append(opts, mpcdvfs.WithPredictionCache(o.cacheSize))
			}
			m := sys.NewMPC(model, opts...)
			if c := m.PredictionCache(); c != nil {
				c.Instrument(reg)
			}
			pol = m
		default:
			return fmt.Errorf("unknown policy %q (want turbo-core, ppk or mpc)", o.policy)
		}
		reps = append(reps, &replayer{app: app, pol: pol, base: base, target: target, first: true})
	}

	slog.Info("replay loop started", "apps", len(reps), "policy", o.policy, "interval", o.interval)
	cycles := 0
	for ctx.Err() == nil {
		for _, r := range reps {
			if ctx.Err() != nil {
				break
			}
			res, err := sys.Run(&r.app, r.pol, r.target, r.first)
			if err != nil {
				return fmt.Errorf("replay %s: %w", r.app.Name, err)
			}
			r.first = false
			c := mpcdvfs.Compare(res, r.base)
			replays.With(res.Policy, res.App).Inc()
			savings.With(res.Policy, res.App).Set(c.EnergySavingsPct)
			speedup.With(res.Policy, res.App).Set(c.Speedup)
			slog.Debug("replay done",
				"app", res.App, "policy", res.Policy,
				"time_ms", res.TotalTimeMS(), "energy_mj", res.TotalEnergyMJ(),
				"savings_pct", c.EnergySavingsPct, "speedup", c.Speedup)
			select {
			case <-ctx.Done():
			case <-time.After(o.interval):
			}
		}
		cycles++
		if cycles%100 == 0 {
			slog.Info("replay progress", "cycles", cycles)
		}
	}
	slog.Info("replay loop stopped", "cycles", cycles)
	return nil
}

// selectApps resolves the -apps flag against the benchmark suite.
func selectApps(flagVal string) ([]mpcdvfs.App, error) {
	if flagVal == "" {
		return mpcdvfs.Benchmarks(), nil
	}
	var out []mpcdvfs.App
	for _, name := range strings.Split(flagVal, ",") {
		app, err := mpcdvfs.BenchmarkByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, app)
	}
	return out, nil
}
