// Command train performs the paper's offline phase: it trains the
// Random Forest performance/power predictor on a synthetic kernel
// population measured against the ground-truth model, reports its
// accuracy on the evaluation benchmarks (§VI-D), and serializes the
// model for the runtime (load it with mpcsim -model).
//
// Usage:
//
//	train -out model.bin -kernels 150 -seed 20170204
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"mpcdvfs/internal/cli"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
	"mpcdvfs/internal/workload"
)

func main() {
	out := flag.String("out", "model.bin", "output model file")
	kernels := flag.Int("kernels", 150, "synthetic training kernels")
	seed := flag.Int64("seed", 20170204, "training seed")
	noise := flag.Float64("noise", 0.08, "measurement noise fraction on training targets")
	workers := flag.Int("workers", 0, "worker goroutines for parallel tree growth (0 = all CPUs, 1 = serial; output is identical either way)")
	compileCheck := flag.Bool("compile-check", true, "verify the compiled-forest fast path is bit-identical to tree walking before saving (exit 2 on mismatch)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	if err := cli.InitLogging(*logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	par.SetDefault(*workers)

	opt := predict.DefaultTrainOptions(*seed)
	opt.NumKernels = *kernels
	opt.NoiseFrac = *noise
	opt.Workers = *workers

	slog.Info("training", "kernels", opt.NumKernels, "configurations", opt.Space.Size(), "workers", par.Resolve(*workers))
	model, err := predict.TrainRandomForest(opt)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}

	// §VI-D accuracy report over the evaluation benchmarks.
	var ks []workload.App = workload.Benchmarks()
	var all []float64
	_ = all
	fmt.Printf("%-14s  %10s  %10s\n", "benchmark", "time MAPE", "power MAPE")
	var tSum, pSum float64
	for _, app := range ks {
		tm, pm := predict.MAPE(model, app.Kernels, hw.DefaultSpace())
		fmt.Printf("%-14s  %9.1f%%  %9.1f%%\n", app.Name, 100*tm, 100*pm)
		tSum += tm
		pSum += pm
	}
	fmt.Printf("%-14s  %9.1f%%  %9.1f%%   (paper: 25%% / 12%%)\n",
		"mean", 100*tSum/float64(len(ks)), 100*pSum/float64(len(ks)))

	// Self-check the compiled inference fast path against the canonical
	// tree-walking forests before the model is persisted: the runtime
	// trusts compiled predictions only because they are bit-exact, so a
	// divergence here is a hard failure, not a warning.
	if *compileCheck {
		const samples = 4096
		tf, pf := model.Forests()
		tc, pc := model.CompiledForests()
		for _, fc := range []struct {
			name     string
			forest   *rf.Forest
			compiled *rf.CompiledForest
		}{
			{"time", tf, tc},
			{"power", pf, pc},
		} {
			if err := fc.compiled.SelfCheck(fc.forest, samples, *seed); err != nil {
				slog.Error("compiled forest self-check failed", "forest", fc.name, "err", err)
				os.Exit(2)
			}
			fmt.Printf("compiled %-5s forest: %d trees, %d-node pool, branchless and legacy layouts bit-identical to the tree walk on %d probes (scalar and batched)\n",
				fc.name, fc.compiled.NumTrees(), fc.compiled.NumNodes(), samples)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	if err := predict.SaveModel(f, model); err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	// Close explicitly: a deferred close would never run past os.Exit,
	// and a failed close on a freshly written model file is data loss.
	if err := f.Close(); err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	slog.Info("model written", "path", *out)
}
