// Command covergate enforces the per-package test-coverage floors
// committed in COVERAGE.md against a Go coverprofile. It exists so the
// learning loop's safety wall cannot silently thin out: a change that
// drops internal/learn or internal/serve below their committed floors
// fails CI the same way a broken test would.
//
// The profile is whatever `go test -coverprofile` wrote (any mode;
// count and atomic degrade to covered/not-covered). The baseline is
// parsed from COVERAGE.md's markdown table — the committed document is
// the single source of truth, so raising or lowering a floor is a
// reviewed diff, not a CI-config tweak.
//
// Usage:
//
//	go test -coverprofile=cover.out ./internal/...
//	go run ./cmd/covergate -profile cover.out -baseline COVERAGE.md
//
// Exit codes: 0 all floors hold, 1 a floor is broken (or a baselined
// package is missing from the profile), 2 bad invocation or input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile written by go test -coverprofile")
	baseline := flag.String("baseline", "COVERAGE.md", "markdown file with the committed per-package floor table")
	flag.Parse()

	floors, err := readFloors(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}
	cov, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	broken := 0
	for _, pkg := range pkgs {
		floor := floors[pkg]
		c, ok := cov[pkg]
		if !ok {
			fmt.Printf("FAIL %-32s floor %5.1f%%  (package missing from profile)\n", pkg, floor)
			broken++
			continue
		}
		got := c.percent()
		verdict := "ok  "
		if got < floor {
			verdict = "FAIL"
			broken++
		}
		fmt.Printf("%s %-32s floor %5.1f%%  actual %5.1f%%  (%d/%d statements)\n",
			verdict, pkg, floor, got, c.covered, c.total)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "covergate: %d package(s) under their committed coverage floor\n", broken)
		os.Exit(1)
	}
}

// pkgCov accumulates one package's statement counts.
type pkgCov struct {
	covered, total int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// floorRow matches one baseline table row:
// | mpcdvfs/internal/learn | 84.0 | ... |
var floorRow = regexp.MustCompile(`^\|\s*` + "`?" + `([a-zA-Z0-9_./-]+)` + "`?" + `\s*\|\s*([0-9]+(?:\.[0-9]+)?)\s*\|`)

// readFloors extracts the package → floor table from the baseline
// markdown. Rows whose first cell is not an import path (headers,
// separators) are skipped; an empty result is an error, because a gate
// with nothing to gate is a misconfiguration, not a pass.
func readFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer closeQuiet(f)
	floors := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := floorRow.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil || !strings.Contains(m[1], "/") {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad floor %q for %s", path, m[2], m[1])
		}
		floors[m[1]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(floors) == 0 {
		return nil, fmt.Errorf("%s: no floor rows found (want | import/path | percent | rows)", path)
	}
	return floors, nil
}

// readProfile aggregates a coverprofile into per-package statement
// coverage. Profile lines are file.go:L.C,L.C numStmts hitCount; the
// package is the file's directory within the module.
func readProfile(profPath string) (map[string]pkgCov, error) {
	f, err := os.Open(profPath)
	if err != nil {
		return nil, err
	}
	defer closeQuiet(f)
	cov := map[string]pkgCov{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file:range numStmts hitCount — split from the right so file
		// names with colons in the range part cannot confuse parsing.
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profPath, lineNo, line)
		}
		colon := strings.LastIndex(fields[0], ":")
		if colon <= 0 {
			return nil, fmt.Errorf("%s:%d: malformed location %q", profPath, lineNo, fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count %q", profPath, lineNo, fields[1])
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count %q", profPath, lineNo, fields[2])
		}
		pkg := path.Dir(fields[0][:colon])
		c := cov[pkg]
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
		cov[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cov, nil
}

// closeQuiet closes read-only files, where a close error carries no
// information the read has not already surfaced.
func closeQuiet(f *os.File) {
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "covergate: close:", err)
	}
}
