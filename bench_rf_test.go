// Paired benchmarks of the Random Forest inference engines: the
// reference tree-walking path versus the compiled branchless engine
// (clustered level-order node layout, key-transformed predicated
// descent, interleaved batch evaluation — see DESIGN.md §10), at the
// three granularities the MPC runtime exercises: one scalar
// prediction, one batched space evaluation, and one full 336-config
// exhaustive sweep (the per-decision inner loop). Both engines are
// bit-identical by contract, so every pair measures the same work.
//
// The scalar pair runs twice: with one fixed kernel (every
// data-dependent branch of the tree walk repeats, so its predictor is
// perfect — the branchy engine's best case) and cycling over 64
// distinct counter snapshots (the serving regime: every decision
// carries fresh counters, branchy descent mispredicts, predicated
// descent is input-oblivious). The Parallel variant fans the batched
// sweep across GOMAXPROCS goroutines for the -cpu scaling curve.
//
// Regenerate BENCH_rf.json with:
//
//	go test -run '^$' -bench '^BenchmarkRF' -benchmem -cpu 1,2,4
//	go test ./internal/rf -run '^$' -bench '^BenchmarkCompiled' -benchmem
package mpcdvfs_test

import (
	"math"
	"math/rand"
	"testing"

	"mpcdvfs/internal/core"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// benchRF fetches the fixture's shared forest in the requested engine
// mode and restores the compiled default when the benchmark ends (other
// benchmarks and tests share this model).
func benchRF(b *testing.B, compiled bool) *predict.RandomForest {
	b.Helper()
	m, err := experiments.Shared().RF()
	if err != nil {
		b.Fatal(err)
	}
	m.SetCompiled(compiled)
	b.Cleanup(func() { m.SetCompiled(true) })
	return m
}

// benchRFPredictKernel measures one scalar time+power prediction — the
// unit the overhead cost model charges per evaluation.
func benchRFPredictKernel(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	cfg := hw.FailSafe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictKernel(cs, cfg)
	}
}

func BenchmarkRFPredictKernelTreeWalk(b *testing.B) { benchRFPredictKernel(b, false) }
func BenchmarkRFPredictKernelCompiled(b *testing.B) { benchRFPredictKernel(b, true) }

// benchRFPredictKernelVaried measures the same scalar prediction
// cycling over 64 distinct counter snapshots — deterministic
// perturbations of the balanced kernel, spanning the counter ranges
// serving traffic actually produces — so the engines are compared
// under realistic input variation rather than a perfectly predictable
// fixed row.
func benchRFPredictKernelVaried(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	base := kernel.NewBalanced("bench", 1).Counters()
	cfg := hw.FailSafe()
	rng := rand.New(rand.NewSource(77))
	var css [64]counters.Set
	for i := range css {
		for j := range base {
			css[i][j] = base[j] * (0.25 + 1.5*rng.Float64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictKernel(css[i&63], cfg)
	}
}

func BenchmarkRFPredictKernelTreeWalkVaried(b *testing.B) { benchRFPredictKernelVaried(b, false) }
func BenchmarkRFPredictKernelCompiledVaried(b *testing.B) { benchRFPredictKernelVaried(b, true) }

// benchRFSpace measures evaluating one kernel at every configuration of
// the default 336-point space: the compiled engine's batched
// PredictSpace against the equivalent scalar PredictKernel loop.
func benchRFSpace(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	space := hw.DefaultSpace()
	dst := make([]predict.Estimate, space.Size())
	cfgs := space.Configs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compiled {
			if !m.PredictSpace(cs, space, dst) {
				b.Fatal("PredictSpace declined on a compiled model")
			}
		} else {
			for j, c := range cfgs {
				dst[j] = m.PredictKernel(cs, c)
			}
		}
	}
}

func BenchmarkRFSpaceEvalTreeWalk(b *testing.B) { benchRFSpace(b, false) }
func BenchmarkRFSpaceEvalCompiled(b *testing.B) { benchRFSpace(b, true) }

// BenchmarkRFSpaceEvalParallel fans concurrent batched sweeps across
// GOMAXPROCS goroutines — each with its own kernels and dst, sharing
// one model and its arena pool, the decision batcher's sharing
// pattern. Run with -cpu 1,2,4 for the multi-core scaling curve
// (ns/op should fall roughly linearly with cores; on a single-CPU
// host every -cpu level measures the same serialized work).
func BenchmarkRFSpaceEvalParallel(b *testing.B) {
	m := benchRF(b, true)
	space := hw.DefaultSpace()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cs := kernel.NewBalanced("bench", 1).Counters()
		dst := make([]predict.Estimate, space.Size())
		for pb.Next() {
			if !m.PredictSpace(cs, space, dst) {
				b.Fatal("PredictSpace declined on a compiled model")
			}
		}
	})
}

// benchRFExhaustiveSweep measures the full per-decision inner loop —
// Optimizer.ExhaustiveSearch over the 336-configuration space,
// including the decision cache and argmin reduction — single-threaded
// in both modes so the pair isolates the inference engine, not
// goroutine fan-out.
func benchRFExhaustiveSweep(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	opt := core.NewOptimizer(m, hw.DefaultSpace())
	opt.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.ExhaustiveSearch(cs, math.Inf(1))
	}
}

func BenchmarkRFExhaustiveSweepTreeWalk(b *testing.B) { benchRFExhaustiveSweep(b, false) }
func BenchmarkRFExhaustiveSweepCompiled(b *testing.B) { benchRFExhaustiveSweep(b, true) }
