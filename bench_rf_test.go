// Paired benchmarks of the Random Forest inference engines: the
// reference tree-walking path versus the compiled flat-node path, at
// the three granularities the MPC runtime exercises — one scalar
// prediction, one batched space evaluation, and one full 336-config
// exhaustive sweep (the per-decision inner loop). Both engines are
// bit-identical by contract, so every pair measures the same work.
//
// Regenerate BENCH_rf.json with:
//
//	go test -run '^$' -bench '^BenchmarkRF' -benchmem
package mpcdvfs_test

import (
	"math"
	"testing"

	"mpcdvfs/internal/core"
	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// benchRF fetches the fixture's shared forest in the requested engine
// mode and restores the compiled default when the benchmark ends (other
// benchmarks and tests share this model).
func benchRF(b *testing.B, compiled bool) *predict.RandomForest {
	b.Helper()
	m, err := experiments.Shared().RF()
	if err != nil {
		b.Fatal(err)
	}
	m.SetCompiled(compiled)
	b.Cleanup(func() { m.SetCompiled(true) })
	return m
}

// benchRFPredictKernel measures one scalar time+power prediction — the
// unit the overhead cost model charges per evaluation.
func benchRFPredictKernel(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	cfg := hw.FailSafe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.PredictKernel(cs, cfg)
	}
}

func BenchmarkRFPredictKernelTreeWalk(b *testing.B) { benchRFPredictKernel(b, false) }
func BenchmarkRFPredictKernelCompiled(b *testing.B) { benchRFPredictKernel(b, true) }

// benchRFSpace measures evaluating one kernel at every configuration of
// the default 336-point space: the compiled engine's batched
// PredictSpace against the equivalent scalar PredictKernel loop.
func benchRFSpace(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	space := hw.DefaultSpace()
	dst := make([]predict.Estimate, space.Size())
	cfgs := space.Configs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compiled {
			if !m.PredictSpace(cs, space, dst) {
				b.Fatal("PredictSpace declined on a compiled model")
			}
		} else {
			for j, c := range cfgs {
				dst[j] = m.PredictKernel(cs, c)
			}
		}
	}
}

func BenchmarkRFSpaceEvalTreeWalk(b *testing.B) { benchRFSpace(b, false) }
func BenchmarkRFSpaceEvalCompiled(b *testing.B) { benchRFSpace(b, true) }

// benchRFExhaustiveSweep measures the full per-decision inner loop —
// Optimizer.ExhaustiveSearch over the 336-configuration space,
// including the decision cache and argmin reduction — single-threaded
// in both modes so the pair isolates the inference engine, not
// goroutine fan-out.
func benchRFExhaustiveSweep(b *testing.B, compiled bool) {
	m := benchRF(b, compiled)
	cs := kernel.NewBalanced("bench", 1).Counters()
	opt := core.NewOptimizer(m, hw.DefaultSpace())
	opt.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.ExhaustiveSearch(cs, math.Inf(1))
	}
}

func BenchmarkRFExhaustiveSweepTreeWalk(b *testing.B) { benchRFExhaustiveSweep(b, false) }
func BenchmarkRFExhaustiveSweepCompiled(b *testing.B) { benchRFExhaustiveSweep(b, true) }
