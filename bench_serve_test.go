// Paired benchmarks for the concurrent decision-serving path: the
// pooled space-eval arenas under parallel sweeps versus the
// mutex-serialized discipline they replaced, and the end-to-end
// /v1/decide closed loop over HTTP, serial versus concurrent sessions.
//
// Regenerate the numbers behind BENCH_serve.json with:
//
//	go test . -run '^$' -bench '^BenchmarkArenaPool|^BenchmarkServe' -benchmem
//	go run ./cmd/loadgen -levels 1,2,4,8,16 -replays 3 -batch -zipf 1.2 -cpus 1,2 -out BENCH_serve.json
//
// On a single-CPU host the parallel variants measure coordination
// overhead, not speedup — concurrent sessions time-share one core, so
// aggregate throughput is flat by construction (see BENCH_serve.json's
// note). The pairs still prove the pooled arena path costs nothing over
// the serialized one while removing the lock from the sweep hot loop.
package mpcdvfs_test

import (
	"sync"
	"testing"

	"mpcdvfs"
	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"

	"net/http/httptest"
)

// benchServeRF fetches the shared trained forest fixture.
func benchServeRF(b *testing.B) *predict.RandomForest {
	b.Helper()
	m, err := experiments.Shared().RF()
	if err != nil {
		b.Fatal(err)
	}
	m.SetCompiled(true)
	return m
}

// BenchmarkArenaPoolPooled sweeps the full configuration space from
// parallel goroutines through the sync.Pool'd arenas — the decision
// service's sharing pattern, where concurrent sessions sweep the same
// model snapshot.
func BenchmarkArenaPoolPooled(b *testing.B) {
	m := benchServeRF(b)
	space := hw.DefaultSpace()
	cs := kernel.NewBalanced("bench", 1).Counters()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]predict.Estimate, space.Size())
		for pb.Next() {
			if !m.PredictSpace(cs, space, dst) {
				b.Fatal("PredictSpace returned false on a compiled model")
			}
		}
	})
}

// BenchmarkArenaPoolSerialized is the baseline the pool replaced: one
// arena guarded by a mutex, every concurrent sweep funneled through it.
func BenchmarkArenaPoolSerialized(b *testing.B) {
	m := benchServeRF(b)
	space := hw.DefaultSpace()
	cs := kernel.NewBalanced("bench", 1).Counters()
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]predict.Estimate, space.Size())
		for pb.Next() {
			mu.Lock()
			ok := m.PredictSpace(cs, space, dst)
			mu.Unlock()
			if !ok {
				b.Fatal("PredictSpace returned false on a compiled model")
			}
		}
	})
}

// benchServeStack boots an in-process decision server over the shared
// forest with the standard MPC policy stack.
func benchServeStack(b *testing.B) (*mpcdvfs.System, mpcdvfs.App, mpcdvfs.Target, *httptest.Server) {
	b.Helper()
	m := benchServeRF(b)
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName("Spmv")
	if err != nil {
		b.Fatal(err)
	}
	_, target, err := sys.Baseline(&app)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Model:     m,
		NewPolicy: func(pm predict.Model) sim.Policy { return sys.NewMPC(pm) },
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})
	return sys, app, target, ts
}

// BenchmarkServeReplay measures one full closed-loop session replay
// over HTTP — session open, a decide/observe round trip per kernel,
// close. The unit of work every concurrent client repeats.
func BenchmarkServeReplay(b *testing.B) {
	sys, app, target, ts := benchServeStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := serve.NewClient(ts.URL)
		if _, err := sys.Run(&app, c, target, true); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeReplayParallel runs the same closed-loop replay from
// concurrent sessions — throughput under multi-tenant load.
func BenchmarkServeReplayParallel(b *testing.B) {
	sys, app, target, ts := benchServeStack(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c := serve.NewClient(ts.URL)
			if _, err := sys.Run(&app, c, target, true); err != nil {
				b.Fatal(err)
			}
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
