package mpcdvfs_test

import (
	"testing"

	"mpcdvfs"
	"mpcdvfs/internal/rf"
)

// smallRF trains a fast, reduced Random Forest predictor for the
// determinism replays below; accuracy does not matter here, only that
// the model is shared across the policies being compared.
func smallRF(t *testing.T) mpcdvfs.Model {
	t.Helper()
	opt := mpcdvfs.DefaultTrainOptions(9)
	opt.NumKernels = 12
	opt.Forest = rf.Config{
		NumTrees: 8, MaxDepth: 8, MinLeaf: 2, NumThresh: 12,
		SampleFrac: 1.0, Seed: 9,
	}
	m, err := mpcdvfs.TrainRandomForest(opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// replay runs app under a fresh MPC with the given options for three
// invocations (profile + two steady) and returns the results.
func replay(t *testing.T, model mpcdvfs.Model, appName string, opts ...mpcdvfs.MPCOption) []*mpcdvfs.Result {
	t.Helper()
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	_, target, err := sys.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.RunRepeated(&app, sys.NewMPC(model, opts...), target, 3)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// requireIdentical asserts two replays made exactly the same per-kernel
// decisions with the same accounting.
func requireIdentical(t *testing.T, label string, want, got []*mpcdvfs.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d runs vs %d", label, len(got), len(want))
	}
	for r := range want {
		if len(want[r].Records) != len(got[r].Records) {
			t.Fatalf("%s run %d: record counts differ", label, r)
		}
		for i := range want[r].Records {
			if got[r].Records[i] != want[r].Records[i] {
				t.Fatalf("%s run %d kernel %d:\n got %+v\nwant %+v",
					label, r, i, got[r].Records[i], want[r].Records[i])
			}
		}
		if got[r].TotalEnergyMJ() != want[r].TotalEnergyMJ() || got[r].TotalTimeMS() != want[r].TotalTimeMS() {
			t.Fatalf("%s run %d: totals differ", label, r)
		}
	}
}

// End-to-end determinism: full MPC replays make byte-identical decisions
// whether the optimizer runs serial or sharded, with the exhaustive
// sweep (the path that actually parallelizes) and with the hill climb.
func TestMPCWorkersDeterminism(t *testing.T) {
	model := smallRF(t)
	for _, app := range []string{"Spmv", "kmeans"} {
		serial := replay(t, model, app, mpcdvfs.WithExhaustiveSearch(), mpcdvfs.WithWorkers(1))
		for _, workers := range []int{2, 4} {
			sharded := replay(t, model, app, mpcdvfs.WithExhaustiveSearch(), mpcdvfs.WithWorkers(workers))
			requireIdentical(t, app, serial, sharded)
		}
	}
}

// End-to-end determinism: the prediction cache changes how many times
// the forest is walked, never what any walk returns — cache-on replays
// must equal cache-off replays record for record, including the
// reported evaluation counts.
func TestMPCPredictionCacheDeterminism(t *testing.T) {
	model := smallRF(t)
	for _, app := range []string{"Spmv", "lbm"} {
		off := replay(t, model, app)
		on := replay(t, model, app, mpcdvfs.WithPredictionCache(4096))
		requireIdentical(t, app, off, on)

		// And combined with sharded exhaustive search.
		offEx := replay(t, model, app, mpcdvfs.WithExhaustiveSearch(), mpcdvfs.WithWorkers(1))
		onEx := replay(t, model, app, mpcdvfs.WithExhaustiveSearch(), mpcdvfs.WithWorkers(4),
			mpcdvfs.WithPredictionCache(4096))
		requireIdentical(t, app+"/exhaustive", offEx, onEx)
	}
}
