// Package pattern implements the kernel pattern extractor of §IV-A2:
// the component that (1) builds the kernel execution list over time,
// (2) identifies kernels by the log-binned signature of their eight
// performance counters, and (3) hands the optimizer the expected counters
// and instruction counts of future kernels.
//
// Following Totoni et al., the extractor learns dynamically: during the
// first invocation of an application it records the sequence of kernel
// signatures (while the framework runs PPK); once a repetitive pattern is
// observed — either a periodic cycle within the run or a completed
// previous run — it predicts which kernel signature to expect at any
// future position and serves the stored 80-byte counter record for it.
// Counter feedback from executed kernels continuously updates the stored
// records.
package pattern

import (
	"mpcdvfs/internal/counters"
)

// blendWeight is the EWMA weight for counter feedback updates: new
// observations dominate but history smooths input jitter.
const blendWeight = 0.5

// maxPeriod bounds the within-run cycle search.
const maxPeriod = 16

// Extractor learns and serves kernel execution patterns. The zero value
// is not usable; call New.
type Extractor struct {
	records map[counters.Signature]*counters.Record
	seq     []counters.Signature // execution list of the current run
	prev    []counters.Signature // execution list of the last completed run
	// prevValid reports whether the current run has matched prev so far,
	// making positional replay trustworthy.
	prevValid bool
}

// New returns an empty extractor.
func New() *Extractor {
	return &Extractor{records: map[counters.Signature]*counters.Record{}}
}

// BeginRun marks the start of a new invocation of the application: the
// execution list of the completed run becomes the replay reference.
func (e *Extractor) BeginRun() {
	if len(e.seq) > 0 {
		e.prev = append(e.prev[:0], e.seq...)
	}
	e.seq = e.seq[:0]
	e.prevValid = len(e.prev) > 0
}

// Observe records the measured counters/time/power of the kernel that
// just executed, appends its signature to the execution list, and applies
// counter feedback to the stored record.
func (e *Extractor) Observe(rec counters.Record) {
	sig := counters.SignatureOf(rec.Counters)
	if old, ok := e.records[sig]; ok {
		old.Blend(rec, blendWeight)
	} else {
		cp := rec
		e.records[sig] = &cp
	}
	pos := len(e.seq)
	e.seq = append(e.seq, sig)
	// Positional replay remains valid only while the current run tracks
	// the previous one.
	if e.prevValid && (pos >= len(e.prev) || e.prev[pos] != sig) {
		e.prevValid = false
	}
}

// Position returns the number of kernels observed in the current run.
func (e *Extractor) Position() int { return len(e.seq) }

// DistinctKernels returns the number of stored kernel records.
func (e *Extractor) DistinctKernels() int { return len(e.records) }

// StorageBytes returns the extractor's kernel-record storage footprint:
// 80 bytes per dissimilar kernel, the paper's cost claim.
func (e *Extractor) StorageBytes() int { return len(e.records) * counters.RecordBytes }

// Lookup returns the stored record for a signature.
func (e *Extractor) Lookup(sig counters.Signature) (counters.Record, bool) {
	r, ok := e.records[sig]
	if !ok {
		return counters.Record{}, false
	}
	return *r, true
}

// Expect predicts the kernel at absolute position i of the current run
// (i >= Position() for future kernels) and returns its stored record.
// Prediction sources, in order of preference:
//
//  1. positional replay of the previous run, while the current run has
//     matched it exactly;
//  2. continuation of a periodic cycle detected in the current run's
//     execution list.
//
// ok is false when neither source can name the kernel at i.
func (e *Extractor) Expect(i int) (counters.Record, bool) {
	if i < 0 {
		return counters.Record{}, false
	}
	if i < len(e.seq) { // already executed: serve the record
		return e.Lookup(e.seq[i])
	}
	if e.prevValid && i < len(e.prev) {
		return e.Lookup(e.prev[i])
	}
	if p, ok := e.period(); ok {
		idx := len(e.seq) - p + (i-len(e.seq))%p
		return e.Lookup(e.seq[idx])
	}
	return counters.Record{}, false
}

// period detects the smallest cycle length p such that the observed
// execution list is suffix-periodic with at least two full periods
// (Totoni-style repetition detection).
func (e *Extractor) period() (int, bool) {
	n := len(e.seq)
	for p := 1; p <= maxPeriod && 2*p <= n; p++ {
		ok := true
		// Verify over the most recent window of up to 4 periods.
		lo := n - 4*p
		if lo < p {
			lo = p
		}
		for j := lo; j < n; j++ {
			if e.seq[j] != e.seq[j-p] {
				ok = false
				break
			}
		}
		if ok {
			return p, true
		}
	}
	return 0, false
}

// ExpectedInsts derives the expected instruction count of a kernel from
// its stored counters: VALUInsts is per work-item and GlobalWorkSize is
// the work-item count, so their product recovers the total instruction
// count without growing the 80-byte record.
func ExpectedInsts(rec counters.Record) float64 {
	return rec.Counters[counters.VALUInsts] * rec.Counters[counters.GlobalWorkSize]
}

// KnowsFuture reports whether Expect can currently name future kernels
// (either replay or an active cycle).
func (e *Extractor) KnowsFuture() bool {
	if e.prevValid && len(e.seq) < len(e.prev) {
		return true
	}
	_, ok := e.period()
	return ok
}
