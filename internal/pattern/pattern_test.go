package pattern

import (
	"math"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/workload"
)

// observeKernel feeds one ground-truth kernel observation at the
// fail-safe config.
func observeKernel(e *Extractor, k kernel.Kernel) {
	m := k.Evaluate(hw.FailSafe())
	e.Observe(counters.Record{Counters: k.Counters(), TimeMS: m.TimeMS, PowerW: m.GPUW + m.NBW})
}

func TestSignatureIdentifiesKernels(t *testing.T) {
	e := New()
	a := kernel.NewComputeBound("a", 1)
	b := kernel.NewMemoryBound("b", 1)
	observeKernel(e, a)
	observeKernel(e, b)
	observeKernel(e, a)
	if e.DistinctKernels() != 2 {
		t.Fatalf("distinct kernels = %d, want 2", e.DistinctKernels())
	}
	if e.StorageBytes() != 2*counters.RecordBytes {
		t.Errorf("storage = %d bytes, want %d (80 per dissimilar kernel)", e.StorageBytes(), 2*counters.RecordBytes)
	}
	if e.Position() != 3 {
		t.Errorf("position = %d, want 3", e.Position())
	}
}

func TestPeriodicPatternPrediction(t *testing.T) {
	// (AB)5 as in EigenValue: after a few periods the extractor must
	// predict the continuation.
	e := New()
	e.BeginRun()
	a := kernel.NewComputeBound("a", 1)
	b := kernel.NewMemoryBound("b", 1)
	for i := 0; i < 3; i++ {
		observeKernel(e, a)
		observeKernel(e, b)
	}
	if !e.KnowsFuture() {
		t.Fatal("period not detected after 3 full (AB) cycles")
	}
	// Position 6 should be A, 7 should be B.
	recA, ok := e.Expect(6)
	if !ok {
		t.Fatal("Expect(6) unknown")
	}
	if counters.SignatureOf(recA.Counters) != counters.SignatureOf(a.Counters()) {
		t.Error("Expect(6) is not kernel A")
	}
	recB, ok := e.Expect(7)
	if !ok || counters.SignatureOf(recB.Counters) != counters.SignatureOf(b.Counters()) {
		t.Error("Expect(7) is not kernel B")
	}
	// Far future keeps cycling.
	rec, ok := e.Expect(100)
	if !ok {
		t.Fatal("Expect(100) unknown")
	}
	if counters.SignatureOf(rec.Counters) != counters.SignatureOf(a.Counters()) {
		t.Error("Expect(100) should be A (even position)")
	}
}

func TestNoFalsePeriodOnDistinctKernels(t *testing.T) {
	e := New()
	e.BeginRun()
	observeKernel(e, kernel.NewComputeBound("a", 1))
	observeKernel(e, kernel.NewMemoryBound("b", 1))
	observeKernel(e, kernel.NewPeak("c", 1))
	if _, ok := e.Expect(3); ok {
		t.Error("extractor invented a future for an aperiodic 3-kernel prefix")
	}
}

func TestCrossRunReplay(t *testing.T) {
	// First run records hybridsort's aperiodic sequence; the second run
	// replays it positionally.
	app, _ := workload.ByName("hybridsort")
	e := New()
	e.BeginRun()
	for _, k := range app.Kernels {
		observeKernel(e, k)
	}
	if e.KnowsFuture() {
		// At the end of run 1 nothing is left to predict within the run.
		t.Log("note: period detected at end of run 1 (harmless)")
	}
	e.BeginRun()
	// Before any kernel of run 2, every position should be predictable.
	for i, k := range app.Kernels {
		rec, ok := e.Expect(i)
		if !ok {
			t.Fatalf("run 2 Expect(%d) unknown", i)
		}
		wantSig := counters.SignatureOf(k.Counters())
		if counters.SignatureOf(rec.Counters) != wantSig {
			t.Fatalf("run 2 Expect(%d) wrong kernel", i)
		}
	}
	// And the prediction still holds mid-run while observations match.
	for i, k := range app.Kernels {
		if i == 5 {
			rec, ok := e.Expect(10)
			if !ok {
				t.Fatal("mid-run Expect(10) unknown")
			}
			if counters.SignatureOf(rec.Counters) != counters.SignatureOf(app.Kernels[10].Counters()) {
				t.Fatal("mid-run Expect(10) wrong")
			}
		}
		observeKernel(e, k)
	}
}

func TestReplayInvalidatedOnMismatch(t *testing.T) {
	a := kernel.NewComputeBound("a", 1)
	b := kernel.NewMemoryBound("b", 1)
	c := kernel.NewPeak("c", 1)
	e := New()
	e.BeginRun()
	observeKernel(e, a)
	observeKernel(e, b)
	observeKernel(e, c)
	e.BeginRun()
	observeKernel(e, a)
	observeKernel(e, c) // diverges from the recorded (a,b,c)
	if rec, ok := e.Expect(2); ok {
		if counters.SignatureOf(rec.Counters) == counters.SignatureOf(c.Counters()) {
			t.Error("stale replay served after divergence")
		}
	}
}

func TestFeedbackBlending(t *testing.T) {
	e := New()
	k := kernel.NewBalanced("b", 1)
	cs := k.Counters()
	e.Observe(counters.Record{Counters: cs, TimeMS: 10, PowerW: 30})
	e.Observe(counters.Record{Counters: cs, TimeMS: 20, PowerW: 30})
	rec, ok := e.Lookup(counters.SignatureOf(cs))
	if !ok {
		t.Fatal("record missing")
	}
	if rec.TimeMS <= 10 || rec.TimeMS >= 20 {
		t.Errorf("blended time = %v, want between observations", rec.TimeMS)
	}
}

func TestExpectedInstsRecoversInstructionCount(t *testing.T) {
	for _, k := range []kernel.Kernel{
		kernel.NewComputeBound("c", 1),
		kernel.NewMemoryBound("m", 2),
		kernel.NewUnscalable("u", 0.5).WithInput(1.7),
	} {
		rec := counters.Record{Counters: k.Counters()}
		got := ExpectedInsts(rec)
		if math.Abs(got-k.Insts())/k.Insts() > 1e-9 {
			t.Errorf("%s: ExpectedInsts = %v, want %v", k.Name(), got, k.Insts())
		}
	}
}

func TestExpectNegativeAndPast(t *testing.T) {
	e := New()
	if _, ok := e.Expect(-1); ok {
		t.Error("Expect(-1) should be unknown")
	}
	a := kernel.NewComputeBound("a", 1)
	observeKernel(e, a)
	rec, ok := e.Expect(0) // past position serves the record
	if !ok || counters.SignatureOf(rec.Counters) != counters.SignatureOf(a.Counters()) {
		t.Error("Expect(0) should serve the executed kernel's record")
	}
}

func TestInputVaryingKernelsGetDistinctRecords(t *testing.T) {
	// hybridsort's mergeSortPass invocations differ in input; signature
	// binning must separate materially different sizes.
	app, _ := workload.ByName("hybridsort")
	e := New()
	e.BeginRun()
	for _, k := range app.Kernels {
		observeKernel(e, k)
	}
	if e.DistinctKernels() < 8 {
		t.Errorf("hybridsort produced %d distinct records; input variation should create more", e.DistinctKernels())
	}
}

func TestSpmvBlockPatternPeriod(t *testing.T) {
	// Inside Spmv's A10 block the period is 1: the extractor should
	// predict the same kernel continues.
	app, _ := workload.ByName("Spmv")
	e := New()
	e.BeginRun()
	for i := 0; i < 5; i++ {
		observeKernel(e, app.Kernels[i])
	}
	rec, ok := e.Expect(5)
	if !ok {
		t.Fatal("period-1 continuation not predicted")
	}
	if counters.SignatureOf(rec.Counters) != counters.SignatureOf(app.Kernels[0].Counters()) {
		t.Error("wrong continuation inside A-block")
	}
}
