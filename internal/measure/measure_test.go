package measure

import (
	"bytes"
	"math"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

func TestCaptureAndLookup(t *testing.T) {
	space := hw.DefaultSpace()
	db := NewDatabase(space)
	k := kernel.NewBalanced("b", 1)
	db.CaptureKernel(k)
	if db.Kernels() != 1 {
		t.Fatalf("kernels = %d", db.Kernels())
	}
	if db.Measurements() != space.Size() {
		t.Fatalf("measurements = %d, want %d", db.Measurements(), space.Size())
	}
	// Every lookup must equal the live model (the paper's DB "permits
	// accurate comparison").
	space.ForEach(func(c hw.Config) {
		r, ok := db.Lookup(k.Counters(), c)
		if !ok {
			t.Fatalf("missing capture at %v", c)
		}
		m := k.Evaluate(c)
		if r.TimeMS != m.TimeMS || r.GPUPowerW != m.GPUW+m.NBW || r.CPUPowerW != m.CPUW {
			t.Fatalf("capture at %v diverges from live model", c)
		}
	})
}

func TestLookupMisses(t *testing.T) {
	db := NewDatabase(hw.DefaultSpace())
	k := kernel.NewBalanced("b", 1)
	db.CaptureKernel(k)
	// Unknown kernel.
	if _, ok := db.Lookup(kernel.NewComputeBound("c", 1).Counters(), hw.FailSafe()); ok {
		t.Error("lookup of uncaptured kernel succeeded")
	}
	// Config outside the space.
	out := hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM1, CUs: 8}
	if _, ok := db.Lookup(k.Counters(), out); ok {
		t.Error("lookup outside the space succeeded")
	}
}

func TestCaptureAppDeduplicates(t *testing.T) {
	app, _ := workload.ByName("Spmv") // 3 distinct kernels x 10
	db := NewDatabase(hw.DefaultSpace())
	db.CaptureApp(&app)
	if db.Kernels() != 3 {
		t.Errorf("Spmv capture has %d kernels, want 3", db.Kernels())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	app, _ := workload.ByName("hybridsort")
	db := NewDatabase(hw.DefaultSpace())
	db.CaptureApp(&app)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kernels() != db.Kernels() || loaded.Measurements() != db.Measurements() {
		t.Fatalf("shape lost: %d/%d vs %d/%d", loaded.Kernels(), loaded.Measurements(), db.Kernels(), db.Measurements())
	}
	for _, k := range app.Kernels {
		r1, ok1 := db.Lookup(k.Counters(), hw.FailSafe())
		r2, ok2 := loaded.Lookup(k.Counters(), hw.FailSafe())
		if !ok1 || !ok2 || r1 != r2 {
			t.Fatalf("round trip diverged for %s", k.Name())
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDBModelDrivesPolicies(t *testing.T) {
	// The paper's methodology end to end: capture once, then run a
	// scheme against the database instead of hardware.
	app, _ := workload.ByName("kmeans")
	db := NewDatabase(hw.DefaultSpace())
	db.CaptureApp(&app)

	eng := sim.NewEngine(hw.DefaultSpace())
	base, target, err := eng.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	m := policy.NewMPC(db.AsModel(), eng.Space)
	rs, err := eng.RunRepeated(&app, m, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Compare(rs[1], base)
	if c.EnergySavingsPct <= 0 || c.Speedup < 0.9 {
		t.Errorf("DB-driven MPC: %.1f%% savings, %.3fx", c.EnergySavingsPct, c.Speedup)
	}

	// The DB model must agree exactly with a live oracle.
	cs := app.Kernels[0].Counters()
	got := db.AsModel().PredictKernel(cs, hw.FailSafe())
	want := app.Kernels[0].Evaluate(hw.FailSafe())
	if math.Abs(got.TimeMS-want.TimeMS) > 1e-12 {
		t.Error("DB model diverges from ground truth")
	}
}

func TestDBModelPanicsOnMiss(t *testing.T) {
	db := NewDatabase(hw.DefaultSpace())
	defer func() {
		if recover() == nil {
			t.Fatal("uncaptured lookup did not panic")
		}
	}()
	db.AsModel().PredictKernel(kernel.NewBalanced("b", 1).Counters(), hw.FailSafe())
}
