// Package measure implements the paper's measurement methodology (§V):
// "we captured performance and power data on the AMD hardware for 336
// APU hardware configurations ... This extensive power and performance
// information permits accurate comparison of the performance and energy
// use of different power management schemes."
//
// A Database is that artifact: kernel-level time and power, keyed by
// kernel signature and hardware configuration, captured once by sweeping
// the ground-truth model (the stand-in for the instrumented APU) and
// reusable afterwards without touching the model — including from disk.
package measure

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/workload"
)

// Record is one captured measurement: what CodeXL plus the power
// controller produced per kernel invocation per configuration.
type Record struct {
	TimeMS    float64
	GPUPowerW float64 // GPU+NB, shared rail
	CPUPowerW float64
}

// Database holds a capture campaign over one configuration space.
type Database struct {
	space    hw.Space
	entries  map[counters.Signature][]Record // indexed by space.Index(cfg)
	counters map[counters.Signature]counters.Set
}

// NewDatabase returns an empty database over a space.
func NewDatabase(space hw.Space) *Database {
	return &Database{
		space:    space,
		entries:  map[counters.Signature][]Record{},
		counters: map[counters.Signature]counters.Set{},
	}
}

// Space returns the captured configuration space.
func (db *Database) Space() hw.Space { return db.space }

// Kernels returns the number of distinct captured kernels.
func (db *Database) Kernels() int { return len(db.entries) }

// Measurements returns the total number of captured (kernel, config)
// points.
func (db *Database) Measurements() int { return len(db.entries) * db.space.Size() }

// CaptureKernel sweeps one kernel across every configuration.
func (db *Database) CaptureKernel(k kernel.Kernel) {
	cs := k.Counters()
	sig := counters.SignatureOf(cs)
	if _, ok := db.entries[sig]; ok {
		return // same signature: the paper bins these together
	}
	recs := make([]Record, db.space.Size())
	i := 0
	db.space.ForEach(func(c hw.Config) {
		m := k.Evaluate(c)
		recs[i] = Record{TimeMS: m.TimeMS, GPUPowerW: m.GPUW + m.NBW, CPUPowerW: m.CPUW}
		i++
	})
	db.entries[sig] = recs
	db.counters[sig] = cs
}

// CaptureApp sweeps every kernel of an application.
func (db *Database) CaptureApp(app *workload.App) {
	for _, k := range app.Kernels {
		db.CaptureKernel(k)
	}
}

// Lookup returns the measurement for a kernel (by its counters) at a
// configuration.
func (db *Database) Lookup(cs counters.Set, cfg hw.Config) (Record, bool) {
	idx := db.space.Index(cfg)
	if idx < 0 {
		return Record{}, false
	}
	recs, ok := db.entries[counters.SignatureOf(cs)]
	if !ok {
		return Record{}, false
	}
	return recs[idx], true
}

// Model wraps the database as a predictor: perfect knowledge of every
// captured kernel — the form in which the paper's offline measurements
// drive its scheme comparisons. Lookups of uncaptured kernels or
// configurations panic; a capture campaign that misses its own workload
// is a bug, not a runtime condition.
type Model struct{ db *Database }

// AsModel returns the database-backed predictor.
func (db *Database) AsModel() *Model { return &Model{db: db} }

// Name implements predict.Model.
func (m *Model) Name() string { return "measurement-db" }

// PredictKernel implements predict.Model.
func (m *Model) PredictKernel(cs counters.Set, cfg hw.Config) predict.Estimate {
	r, ok := m.db.Lookup(cs, cfg)
	if !ok {
		panic(fmt.Sprintf("measure: no capture for signature %v at %v", counters.SignatureOf(cs), cfg))
	}
	return predict.Estimate{TimeMS: r.TimeMS, GPUPowerW: r.GPUPowerW}
}

// dbWire is the serialized form.
type dbWire struct {
	Magic    string
	CPUs     []hw.CPUPState
	NBs      []hw.NBState
	GPUs     []hw.GPUState
	CUs      []int8
	Sigs     []counters.Signature
	Counters []counters.Set
	Entries  [][]Record
}

const dbMagic = "mpcdvfs-measure-v1"

// Save writes the database to w.
func (db *Database) Save(w io.Writer) error {
	wire := dbWire{
		Magic: dbMagic,
		CPUs:  db.space.CPUs, NBs: db.space.NBs, GPUs: db.space.GPUs, CUs: db.space.CUs,
	}
	// Serialize in sorted-signature order so the saved bytes are
	// deterministic rather than following map iteration order.
	sigs := make([]counters.Signature, 0, len(db.entries))
	for sig := range db.entries {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		for k := range sigs[i] {
			if sigs[i][k] != sigs[j][k] {
				return sigs[i][k] < sigs[j][k]
			}
		}
		return false
	})
	for _, sig := range sigs {
		wire.Sigs = append(wire.Sigs, sig)
		wire.Counters = append(wire.Counters, db.counters[sig])
		wire.Entries = append(wire.Entries, db.entries[sig])
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("measure: save: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save.
func Load(r io.Reader) (*Database, error) {
	var wire dbWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("measure: load: %w", err)
	}
	if wire.Magic != dbMagic {
		return nil, fmt.Errorf("measure: not a measurement database (magic %q)", wire.Magic)
	}
	db := NewDatabase(hw.Space{CPUs: wire.CPUs, NBs: wire.NBs, GPUs: wire.GPUs, CUs: wire.CUs})
	for i, sig := range wire.Sigs {
		if len(wire.Entries[i]) != db.space.Size() {
			return nil, fmt.Errorf("measure: entry %d has %d records for a %d-config space",
				i, len(wire.Entries[i]), db.space.Size())
		}
		db.entries[sig] = wire.Entries[i]
		db.counters[sig] = wire.Counters[i]
	}
	return db, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (db *Database) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
