package core

import (
	"fmt"
	"sort"
)

// Profile is the per-kernel information gathered during the first
// (profiling) invocation of an application, from which the search order
// is derived.
type Profile struct {
	Insts  []float64 // instructions per invocation, execution order
	TimeMS []float64 // measured execution time per invocation
}

// Validate checks the profile for consistency.
func (p Profile) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("core: empty profile")
	}
	if len(p.Insts) != len(p.TimeMS) {
		return fmt.Errorf("core: profile has %d insts but %d times", len(p.Insts), len(p.TimeMS))
	}
	for i := range p.Insts {
		if p.Insts[i] <= 0 || p.TimeMS[i] <= 0 {
			return fmt.Errorf("core: profile entry %d non-positive", i)
		}
	}
	return nil
}

// BuildSearchOrder implements the §IV-A1a heuristic that lets MPC
// optimize a window without backtracking. Replaying the profiling run,
// each kernel whose *accumulated* application throughput is at or above
// the overall target joins the above-target cluster; the rest join the
// below-target cluster. The above-target cluster is ordered by increasing
// individual kernel throughput, the below-target cluster by decreasing,
// and the concatenation (above first) is the search order.
//
// The returned slice holds 0-based kernel indices. For the paper's Fig. 7
// example the result is (3,2,1,6,5,4) in 1-based numbering.
//
// A non-positive targetTP derives the target from the profile itself
// (total insts / total time), which preserves the clustering intent.
func BuildSearchOrder(p Profile, targetTP float64) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Insts)
	if targetTP <= 0 {
		ti, tt := 0.0, 0.0
		for i := 0; i < n; i++ {
			ti += p.Insts[i]
			tt += p.TimeMS[i]
		}
		targetTP = ti / tt
	}

	tp := make([]float64, n) // individual kernel throughput
	var above, below []int
	sumI, sumT := 0.0, 0.0
	for i := 0; i < n; i++ {
		sumI += p.Insts[i]
		sumT += p.TimeMS[i]
		tp[i] = p.Insts[i] / p.TimeMS[i]
		if sumI/sumT >= targetTP {
			above = append(above, i)
		} else {
			below = append(below, i)
		}
	}
	sort.SliceStable(above, func(a, b int) bool { return tp[above[a]] < tp[above[b]] })
	sort.SliceStable(below, func(a, b int) bool { return tp[below[a]] > tp[below[b]] })
	return append(above, below...), nil
}

// RankOf inverts a search order: rank[k] is the position of kernel k in
// the order (0 = optimized first).
func RankOf(order []int) []int {
	rank := make([]int, len(order))
	for pos, k := range order {
		rank[k] = pos
	}
	return rank
}

// AvgWindowLen returns N̄, the average per-kernel horizon length implied
// by the search order under a full horizon: optimizing kernel i examines
// the N−i+1 kernels not yet executed, so the average is (N+1)/2. The
// adaptive horizon generator uses it to scale measured PPK overhead into
// an MPC overhead estimate (§IV-A4).
func AvgWindowLen(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n+1) / 2
}
