package core

import (
	"math"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// fakeSweep is an injected evaluator that either proxies the model's
// own batched path (the bit-exactness stand-in for a batch coordinator)
// or refuses, counting calls either way.
type fakeSweep struct {
	m     *predict.RandomForest
	serve bool
	calls int
}

func (f *fakeSweep) PredictSpace(cs counters.Set, space hw.Space, dst []predict.Estimate) bool {
	f.calls++
	if !f.serve {
		return false
	}
	return f.m.PredictSpace(cs, space, dst)
}

// TestExhaustiveInjectedSweep checks the Optimizer.Sweep seam: a
// serving evaluator is consulted first and its results decide the
// search identically to the model path; a refusing evaluator falls
// through to the model path with no behavioral change.
func TestExhaustiveInjectedSweep(t *testing.T) {
	m := batchedModel(t)
	space := hw.DefaultSpace()
	kernels := []kernel.Kernel{
		kernel.NewComputeBound("c", 1), kernel.NewMemoryBound("m", 1), kernel.NewPeak("p", 1),
	}
	for _, k := range kernels {
		cs := k.Counters()
		fsTime := m.PredictKernel(cs, space.Clamp(hw.FailSafe())).TimeMS
		for _, head := range []float64{math.Inf(1), fsTime * 1.05, -1} {
			want := NewOptimizer(m, space).ExhaustiveSearch(cs, head)

			injected := NewOptimizer(m, space)
			fs := &fakeSweep{m: m, serve: true}
			injected.Sweep = fs
			sameClimbResult(t, k.Name()+"/served", injected.ExhaustiveSearch(cs, head), want)
			if fs.calls == 0 {
				t.Fatalf("%s: injected evaluator never consulted", k.Name())
			}

			refused := NewOptimizer(m, space)
			fr := &fakeSweep{m: m, serve: false}
			refused.Sweep = fr
			sameClimbResult(t, k.Name()+"/refused", refused.ExhaustiveSearch(cs, head), want)
			if fr.calls == 0 {
				t.Fatalf("%s: refusing evaluator never consulted", k.Name())
			}
		}
	}
}
