package core

import (
	"math"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// tinySpace keeps M^H enumerable for exact-window tests.
func tinySpace() hw.Space {
	return hw.Space{
		CPUs: []hw.CPUPState{hw.P1, hw.P7},
		NBs:  []hw.NBState{hw.NB0, hw.NB2},
		GPUs: []hw.GPUState{hw.DPM0, hw.DPM4},
		CUs:  []int8{2, 8},
	}
}

func windowOf(ks ...kernel.Kernel) ([]WindowKernel, *predict.Oracle) {
	o := predict.NewOracle()
	win := make([]WindowKernel, len(ks))
	for i, k := range ks {
		o.Register(k)
		m := k.Evaluate(hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM4, CUs: 8})
		win[i] = WindowKernel{
			ExecIndex: i,
			Rec:       counters.Record{Counters: k.Counters(), TimeMS: m.TimeMS, PowerW: m.GPUW + m.NBW},
			ExpInsts:  k.Insts(),
			Rank:      i,
		}
	}
	return win, o
}

func TestBruteForceFindsFeasibleOptimum(t *testing.T) {
	space := tinySpace()
	win, o := windowOf(
		kernel.NewComputeBound("a", 1),
		kernel.NewMemoryBound("b", 1),
	)
	opt := NewOptimizer(o, space)
	// Loose budget: the optimum is each kernel's unconstrained minimum.
	res := opt.BruteForceWindow(win, NewTracker(0))
	if !res.Feasible {
		t.Fatal("unconstrained brute force infeasible")
	}
	if res.Evals != 2*space.Size() {
		t.Errorf("evals = %d, want %d (M x H)", res.Evals, 2*space.Size())
	}
	if res.Combos <= 0 {
		t.Error("no combinations counted")
	}
	// Against independent minima.
	want := 0.0
	for _, w := range win {
		best := math.Inf(1)
		space.ForEach(func(c hw.Config) {
			e := predict.EnergyMJ(o.PredictKernel(w.Rec.Counters, c), c)
			if e < best {
				best = e
			}
		})
		want += best
	}
	if math.Abs(res.EnergyMJ-want) > 1e-9 {
		t.Errorf("unconstrained brute force %v != sum of minima %v", res.EnergyMJ, want)
	}
}

func TestBruteForceRespectsBudget(t *testing.T) {
	space := tinySpace()
	a := kernel.NewComputeBound("a", 1)
	b := kernel.NewMemoryBound("b", 1)
	win, o := windowOf(a, b)
	opt := NewOptimizer(o, space)

	// Budget = exactly the fastest achievable times: only the fastest
	// plan fits.
	fast := func(k kernel.Kernel) float64 {
		best := math.Inf(1)
		space.ForEach(func(c hw.Config) {
			if tm := k.TimeMS(c); tm < best {
				best = tm
			}
		})
		return best
	}
	budget := (fast(a) + fast(b)) * 1.0001 // FP headroom over the exact sum
	tp := (a.Insts() + b.Insts()) / budget
	res := opt.BruteForceWindow(win, NewTracker(tp))
	if !res.Feasible {
		t.Fatal("tight-but-feasible window reported infeasible")
	}
	// Verify the current kernel's chosen config is near-fastest: the
	// tight budget leaves only the FP headroom as slack.
	ta := a.TimeMS(res.Config)
	if ta > fast(a)*1.0002 {
		t.Errorf("brute force current-kernel choice %v (%.4f ms) far from the fastest (%.4f ms) under a tight budget",
			res.Config, ta, fast(a))
	}
	// Impossible budget.
	res = opt.BruteForceWindow(win, NewTracker(tp*10))
	if res.Feasible {
		t.Error("impossible budget reported feasible")
	}
	if !math.IsNaN(res.EnergyMJ) {
		t.Error("infeasible result should carry NaN energy")
	}
	if res.Config != opt.FailSafe() {
		t.Error("infeasible result should fall back to fail-safe")
	}
}

func TestBruteForceEmptyWindow(t *testing.T) {
	o := predict.NewOracle()
	o.Register(kernel.NewBalanced("b", 1))
	opt := NewOptimizer(o, tinySpace())
	res := opt.BruteForceWindow(nil, NewTracker(1))
	if res.Feasible || res.Evals != 0 {
		t.Errorf("empty window: %+v", res)
	}
}

func TestGreedyNearBruteForce(t *testing.T) {
	// The headline §IV-A1a claim: greedy+heuristic approximates
	// backtracking at a fraction of the cost.
	space := tinySpace()
	win, o := windowOf(
		kernel.NewComputeBound("a", 1),
		kernel.NewUnscalable("b", 1),
		kernel.NewMemoryBound("c", 1),
	)
	opt := NewOptimizer(o, space)
	// A moderate budget: 15% slack over the fastest plan.
	sumFast := 0.0
	for _, w := range win {
		best := math.Inf(1)
		space.ForEach(func(c hw.Config) {
			if est := o.PredictKernel(w.Rec.Counters, c); est.TimeMS < best {
				best = est.TimeMS
			}
		})
		sumFast += best
	}
	sumI := 0.0
	for _, w := range win {
		sumI += w.ExpInsts
	}
	tp := sumI / (sumFast * 1.15)

	bt := opt.BruteForceWindow(win, NewTracker(tp))
	if !bt.Feasible {
		t.Fatal("brute force infeasible")
	}
	_, _, gEvals := opt.OptimizeWindow(win, NewTracker(tp))
	if gEvals >= bt.Combos {
		t.Errorf("greedy cost %d not below backtracking combos %d", gEvals, bt.Combos)
	}
}
