package core

import (
	"math"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

func TestTrackerHeadroom(t *testing.T) {
	tr := NewTracker(10) // 10 insts/ms target
	// Nothing executed: headroom for a 100-inst kernel is 10 ms.
	if got := tr.HeadroomMS(100); math.Abs(got-10) > 1e-12 {
		t.Errorf("headroom = %v, want 10", got)
	}
	// Run ahead of target: extra headroom accrues.
	tr.Add(100, 5) // 20 insts/ms, 5 ms saved
	if got := tr.HeadroomMS(100); math.Abs(got-15) > 1e-12 {
		t.Errorf("headroom after fast kernel = %v, want 15", got)
	}
	if tr.BehindTarget() {
		t.Error("tracker believes it is behind while ahead")
	}
	// Fall behind: headroom shrinks, can go negative.
	tr.Add(100, 40) // now 200 insts / 45 ms < 10
	if !tr.BehindTarget() {
		t.Error("tracker believes it is ahead while behind")
	}
	if got := tr.HeadroomMS(10); got >= 0 {
		t.Errorf("headroom while behind = %v, want negative", got)
	}
}

func TestTrackerUnconstrained(t *testing.T) {
	tr := NewTracker(0)
	if !math.IsInf(tr.HeadroomMS(5), 1) {
		t.Error("zero target should give infinite headroom")
	}
	if tr.BehindTarget() {
		t.Error("unconstrained tracker behind target")
	}
}

func TestTrackerClone(t *testing.T) {
	tr := NewTracker(10)
	tr.Add(100, 5)
	c := tr.Clone()
	c.Add(100, 100)
	i, tm := tr.Totals()
	if i != 100 || tm != 5 {
		t.Error("clone mutation leaked into original")
	}
}

// TestSearchOrderPaperExample reproduces Fig. 7: six kernels, the first
// three above target, throughput descending within the above cluster and
// ascending within the below cluster, giving search order (3,2,1,6,5,4)
// in the paper's 1-based numbering = (2,1,0,5,4,3) 0-based.
func TestSearchOrderPaperExample(t *testing.T) {
	// Target throughput 1.0 insts/ms; accumulated throughput stays above
	// 1.0 through kernels 1..3 (3.5, 3.0, 2.5) and drops below from
	// kernel 4 (0.70, 0.47, 0.41). Individual throughputs descend
	// 3.5 > 2.5 > 1.5 in the above group and ascend
	// 0.025 < 0.058 < 0.125 in the below group.
	p := Profile{
		Insts:  []float64{3.5, 2.5, 1.5, 0.2, 0.35, 0.5},
		TimeMS: []float64{1, 1, 1, 8, 6, 4},
	}
	order, err := BuildSearchOrder(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0, 5, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("search order = %v, want %v (Fig. 7: (3,2,1,6,5,4))", order, want)
		}
	}
	rank := RankOf(order)
	if rank[2] != 0 || rank[3] != 5 {
		t.Errorf("RankOf wrong: %v", rank)
	}
}

func TestSearchOrderCoversAllKernels(t *testing.T) {
	p := Profile{
		Insts:  []float64{5, 1, 7, 2, 2, 9, 1},
		TimeMS: []float64{1, 2, 1, 3, 1, 2, 1},
	}
	order, err := BuildSearchOrder(p, 0) // derive target from profile
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, k := range order {
		if k < 0 || k >= 7 || seen[k] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[k] = true
	}
	if len(order) != 7 {
		t.Fatalf("order len %d", len(order))
	}
}

func TestSearchOrderValidation(t *testing.T) {
	if _, err := BuildSearchOrder(Profile{}, 1); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := BuildSearchOrder(Profile{Insts: []float64{1}, TimeMS: []float64{1, 2}}, 1); err == nil {
		t.Error("mismatched profile accepted")
	}
	if _, err := BuildSearchOrder(Profile{Insts: []float64{0}, TimeMS: []float64{1}}, 1); err == nil {
		t.Error("non-positive insts accepted")
	}
}

func TestAvgWindowLen(t *testing.T) {
	if got := AvgWindowLen(6); got != 3.5 {
		t.Errorf("AvgWindowLen(6) = %v, want 3.5", got)
	}
	if got := AvgWindowLen(0); got != 0 {
		t.Errorf("AvgWindowLen(0) = %v, want 0", got)
	}
}

func oracleFor(ks ...kernel.Kernel) *predict.Oracle {
	o := predict.NewOracle()
	for _, k := range ks {
		o.Register(k)
	}
	return o
}

func TestHillClimbReducesEnergy(t *testing.T) {
	space := hw.DefaultSpace()
	for _, k := range []kernel.Kernel{
		kernel.NewComputeBound("c", 1), kernel.NewMemoryBound("m", 1),
		kernel.NewPeak("p", 1), kernel.NewUnscalable("u", 1), kernel.NewBalanced("b", 1),
	} {
		opt := NewOptimizer(oracleFor(k), space)
		res := opt.HillClimb(k.Counters(), math.Inf(1))
		if !res.Feasible {
			t.Fatalf("%s: unconstrained climb infeasible", k.Name())
		}
		failE := k.EnergyMJ(hw.FailSafe())
		gotE := k.EnergyMJ(res.Config)
		if gotE > failE+1e-9 {
			t.Errorf("%s: climb ended above fail-safe energy (%v > %v)", k.Name(), gotE, failE)
		}
		if res.Evals <= 0 {
			t.Errorf("%s: no evaluations recorded", k.Name())
		}
	}
}

func TestHillClimbEvalBudget(t *testing.T) {
	// §IV-A1a: greedy hill climbing needs ~(|cpu|+|nb|+|gpu|+|cu|)
	// evaluations instead of the full |S| sweep.
	space := hw.DefaultSpace()
	cpu, nb, gpu, cu := space.KnobStates()
	budget := 2 * (cpu + nb + gpu + cu) // generous: probes + walks
	for _, k := range []kernel.Kernel{
		kernel.NewComputeBound("c", 1), kernel.NewMemoryBound("m", 1), kernel.NewBalanced("b", 1),
	} {
		opt := NewOptimizer(oracleFor(k), space)
		res := opt.HillClimb(k.Counters(), math.Inf(1))
		if res.Evals > budget {
			t.Errorf("%s: %d evals, budget %d", k.Name(), res.Evals, budget)
		}
		if res.Evals >= space.Size() {
			t.Errorf("%s: hill climb cost the full sweep", k.Name())
		}
	}
}

func TestHillClimbNearExhaustiveQuality(t *testing.T) {
	// The greedy search trades optimality for cost; it should still land
	// within a modest factor of the exhaustive optimum.
	space := hw.DefaultSpace()
	for _, k := range []kernel.Kernel{
		kernel.NewComputeBound("c", 1), kernel.NewMemoryBound("m", 1),
		kernel.NewPeak("p", 1), kernel.NewUnscalable("u", 1), kernel.NewBalanced("b", 1),
	} {
		opt := NewOptimizer(oracleFor(k), space)
		greedy := opt.HillClimb(k.Counters(), math.Inf(1))
		exact := opt.ExhaustiveSearch(k.Counters(), math.Inf(1))
		ge := k.EnergyMJ(greedy.Config)
		ee := k.EnergyMJ(exact.Config)
		if ge > 1.35*ee {
			t.Errorf("%s: greedy energy %v vs exhaustive %v (>35%% gap)", k.Name(), ge, ee)
		}
		if exact.Evals != space.Size() {
			t.Errorf("exhaustive used %d evals, want %d", exact.Evals, space.Size())
		}
	}
}

func TestHillClimbHonorsHeadroom(t *testing.T) {
	space := hw.DefaultSpace()
	k := kernel.NewBalanced("b", 1)
	opt := NewOptimizer(oracleFor(k), space)
	// Headroom just above the fail-safe time: barely any slack.
	fsTime := k.TimeMS(hw.FailSafe())
	res := opt.HillClimb(k.Counters(), fsTime*1.02)
	if !res.Feasible {
		t.Fatal("feasible problem reported infeasible")
	}
	if got := k.TimeMS(res.Config); got > fsTime*1.02+1e-9 {
		t.Errorf("chosen config time %v exceeds headroom %v", got, fsTime*1.02)
	}
	// Impossible headroom: fail-safe fallback, infeasible.
	res = opt.HillClimb(k.Counters(), fsTime*0.01)
	if res.Feasible {
		t.Error("impossible headroom reported feasible")
	}
	if res.Config != opt.FailSafe() {
		t.Errorf("fallback config = %v, want fail-safe", res.Config)
	}
}

func TestHillClimbLooseningHeadroomNeverHurts(t *testing.T) {
	space := hw.DefaultSpace()
	k := kernel.NewMemoryBound("m", 1)
	opt := NewOptimizer(oracleFor(k), space)
	fsTime := k.TimeMS(hw.FailSafe())
	prev := math.Inf(1)
	for _, slack := range []float64{1.0, 1.3, 2, 4, 1000} {
		res := opt.HillClimb(k.Counters(), fsTime*slack)
		if !res.Feasible {
			t.Fatalf("slack %v infeasible", slack)
		}
		e := k.EnergyMJ(res.Config)
		if e > prev+1e-9 {
			t.Errorf("energy rose from %v to %v as headroom loosened to %vx", prev, e, slack)
		}
		prev = e
	}
}

func TestOptimizeWindowCarriesHeadroom(t *testing.T) {
	// Two kernels: a high-throughput one now, a slow unscalable one next.
	// With the future kernel in the window (ranked first), the optimizer
	// must keep the current kernel fast enough to bank time for the slow
	// one — the "guards against aggressively reducing kernel 1
	// performance" behaviour of the paper's example.
	space := hw.DefaultSpace()
	fast := kernel.NewComputeBound("fast", 1)
	slow := kernel.NewUnscalable("slow", 3)
	o := oracleFor(fast, slow)
	opt := NewOptimizer(o, space)

	// Target: aggregate throughput of both at fail-safe (achievable but
	// tight).
	ttot := fast.TimeMS(hw.FailSafe()) + slow.TimeMS(hw.FailSafe())
	itot := fast.Insts() + slow.Insts()
	target := itot / ttot

	mkWin := func(withFuture bool) []WindowKernel {
		win := []WindowKernel{{
			ExecIndex: 0,
			Rec:       counters.Record{Counters: fast.Counters()},
			ExpInsts:  fast.Insts(),
			Rank:      1,
		}}
		if withFuture {
			win = append(win, WindowKernel{
				ExecIndex: 1,
				Rec:       counters.Record{Counters: slow.Counters()},
				ExpInsts:  slow.Insts(),
				Rank:      0, // slow low-throughput kernel optimized first
			})
		}
		return win
	}

	cfgMyopic, _, _ := opt.OptimizeWindow(mkWin(false), NewTracker(target))
	cfgFuture, _, evals := opt.OptimizeWindow(mkWin(true), NewTracker(target))
	if evals <= 0 {
		t.Fatal("window optimization spent no evaluations")
	}
	tMyopic := fast.TimeMS(cfgMyopic)
	tFuture := fast.TimeMS(cfgFuture)
	if tFuture > tMyopic+1e-9 {
		t.Errorf("future-aware choice (%.3f ms) slower than myopic (%.3f ms); headroom not reserved", tFuture, tMyopic)
	}
	// And the future-aware run must leave enough total headroom: simulate.
	tr := NewTracker(target)
	tr.Add(fast.Insts(), tFuture)
	head := tr.HeadroomMS(slow.Insts())
	if slow.TimeMS(hw.FailSafe()) > head+1e-6 {
		t.Errorf("future-aware plan leaves headroom %.3f ms < slow kernel fail-safe time %.3f ms",
			head, slow.TimeMS(hw.FailSafe()))
	}
}

func TestOptimizeWindowEmpty(t *testing.T) {
	space := hw.DefaultSpace()
	k := kernel.NewBalanced("b", 1)
	opt := NewOptimizer(oracleFor(k), space)
	cfg, _, evals := opt.OptimizeWindow(nil, NewTracker(1))
	if cfg != opt.FailSafe() || evals != 0 {
		t.Errorf("empty window: cfg %v evals %d", cfg, evals)
	}
}

func TestHorizonGenerator(t *testing.T) {
	// 10 kernels, 10 ms each, baseline 100 ms, PPK overhead 0.2 ms total.
	g := NewHorizonGen(DefaultAlpha, 10, 100, 0.2)
	// Long kernels relative to optimizer cost: horizon grows with i and
	// saturates at N. At i=1 the budget is only α·T̄ (the paper notes the
	// generator "initially selects a low horizon length").
	h1 := g.Horizon(1, 0)
	if h1 <= 0 {
		t.Fatalf("H1 = %d, want positive (ample budget)", h1)
	}
	if h5 := g.Horizon(5, 4*10); h5 < h1 {
		t.Errorf("H5 on pace = %d, want >= H1 = %d (margin accrues)", h5, h1)
	}
	hLate := g.Horizon(10, 9*10) // on pace
	if hLate != 10 {
		t.Errorf("H10 on pace = %d, want full horizon 10", hLate)
	}
	// If elapsed time already blew the bound, horizon hits zero.
	if got := g.Horizon(2, 500); got != 0 {
		t.Errorf("H with blown budget = %d, want 0", got)
	}
	// Expensive optimizer (TPPK comparable to kernel time) shrinks H.
	gExp := NewHorizonGen(DefaultAlpha, 10, 100, 60)
	if gExp.Horizon(1, 0) >= g.Horizon(1, 0) {
		t.Error("more expensive optimizer did not shrink the horizon")
	}
	// Free optimizer: full horizon.
	gFree := NewHorizonGen(DefaultAlpha, 10, 100, 0)
	if gFree.Horizon(3, 30) != 10 {
		t.Error("free optimizer should use the full horizon")
	}
	if g.Horizon(0, 0) != 0 {
		t.Error("H0 should be 0")
	}
}

func TestHorizonMonotoneInBudget(t *testing.T) {
	g := NewHorizonGen(DefaultAlpha, 20, 200, 2)
	prev := math.MaxInt
	for _, elapsed := range []float64{0, 20, 40, 80, 160, 400} {
		h := g.Horizon(5, elapsed)
		if h > prev {
			t.Errorf("horizon grew (%d -> %d) as elapsed time rose to %v", prev, h, elapsed)
		}
		prev = h
	}
}

func TestNewHorizonGenPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	NewHorizonGen(DefaultAlpha, 0, 1, 1)
}
