package core

import (
	"sort"
	"sync"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/par"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/telemetry"
)

// Optimizer performs the greedy hill-climbing configuration search of
// §IV-A1a over one kernel, and the windowed MPC optimization over a
// horizon of kernels.
type Optimizer struct {
	Model predict.Model
	Space hw.Space
	// UseExhaustive replaces the greedy hill climb with a full O(M)
	// sweep per kernel — the search-cost ablation. The result quality
	// bound improves; the evaluation count explodes by the |S|/Σ|knob|
	// factor the paper quotes as ~19×.
	UseExhaustive bool
	// Workers shards the exhaustive sweep across goroutines: <= 0 uses
	// the process default (par.Default), 1 forces the serial sweep. The
	// sharded sweep reduces to the same argmin as the serial one — ties
	// break toward the lower Space.At index in both — and reports the
	// same evaluation count, so results are byte-identical for every
	// value. Requires Model.PredictKernel to be safe for concurrent
	// calls (every predictor in internal/predict is). The greedy hill
	// climb is inherently sequential and ignores this field.
	Workers int
	// Trace, when non-nil, receives the search's span decomposition:
	// batched sweeps emit featurize/forest-eval child spans, scalar
	// predictor calls accumulate into a forest-eval aggregate. Tracing
	// is read-only with respect to decisions — every search returns the
	// same bytes with Trace nil, unsampled, or active (pinned by the
	// traced-replay golden test).
	Trace *telemetry.Context
	// Sweep, when non-nil, is an injected space evaluator tried before
	// the model's own batched path — the hook the serving layer uses to
	// route exhaustive sweeps through the cross-session batch
	// coordinator (predict.RemoteSweep). It obeys the SpaceEvaluator
	// bit-exactness contract, so a successful fused sweep returns
	// exactly the direct path's bytes; when it returns false (batching
	// off, coordinator saturated, or the request declined) the search
	// falls through to the model path unchanged.
	Sweep predict.SpaceEvaluator
	// failSafe is the guard configuration, clamped into Space.
	failSafe hw.Config

	// Batched-sweep arena, built lazily on the first exhaustive sweep
	// against a model with a batched path (predict.SpaceEvaluator):
	// the space's configurations in At order and a reusable estimate
	// buffer, so steady-state sweeps cost one batched model call and
	// zero arena allocations. Optimizer methods are not safe for
	// concurrent use (they never were — the per-decision eval cache is
	// shared state); the internal sharded sweep remains race-free.
	sweepSpace hw.Space
	sweepCfgs  []hw.Config
	sweepEsts  []predict.Estimate

	// Window scratch, reused across OptimizeWindow/BruteForceWindow
	// steps so the receding-horizon hot loop stops re-allocating the
	// sorted window copy and its per-kernel bookkeeping every decision.
	// Consistent with the not-concurrent-use contract above.
	winScratch     []WindowKernel
	cacheScratch   []*evalCache
	deficitScratch []float64
}

// NewOptimizer returns an optimizer over the given model and space.
func NewOptimizer(m predict.Model, space hw.Space) *Optimizer {
	return &Optimizer{Model: m, Space: space, failSafe: space.Clamp(hw.FailSafe())}
}

// FailSafe returns the fail-safe configuration used on constraint
// failure, mapped into the optimizer's space.
func (o *Optimizer) FailSafe() hw.Config { return o.failSafe }

// climbResult is the outcome of one per-kernel search.
type climbResult struct {
	Config   hw.Config
	Est      predict.Estimate
	Evals    int
	Feasible bool
}

// evalCache memoizes predictor calls within one decision; each distinct
// configuration costs one model evaluation, as a real runtime would
// cache.
type evalCache struct {
	o     *Optimizer
	cs    counters.Set
	seen  map[hw.Config]cachedEval
	evals int
}

type cachedEval struct {
	est predict.Estimate
	e   float64
}

func newEvalCache(o *Optimizer, cs counters.Set) *evalCache {
	return &evalCache{o: o, cs: cs, seen: make(map[hw.Config]cachedEval, 24)}
}

// evalCachePool recycles decision caches across searches: every
// OptimizeWindow step used to allocate one evalCache (map included) per
// window kernel — per-decision garbage that a serving process makes at
// every request. Pooled caches keep their grown map buckets, so a warm
// acquire/eval/release cycle allocates nothing (pinned by
// TestEvalCachePoolWarmZeroAlloc).
var evalCachePool = sync.Pool{New: func() any { return newEvalCache(nil, counters.Set{}) }}

// acquireEvalCache returns an empty evalCache bound to (o, cs), reusing
// a pooled one when available. Contents are always per-kernel: caches
// come back empty because releaseEvalCache clears them.
func acquireEvalCache(o *Optimizer, cs counters.Set) *evalCache {
	c := evalCachePool.Get().(*evalCache)
	c.o, c.cs, c.evals = o, cs, 0
	return c
}

// releaseEvalCache resets c and returns it to the pool. The map is
// cleared (buckets retained) so no kernel's evaluations can leak into
// another decision, and the optimizer pointer is dropped.
func releaseEvalCache(c *evalCache) {
	clear(c.seen)
	c.o, c.cs, c.evals = nil, counters.Set{}, 0
	evalCachePool.Put(c)
}

// eval returns the model estimate and energy for cfg, consulting the
// per-decision cache first. The warm path (a cache hit) is pinned at
// zero allocations.
//
//mpclint:hotpath warm hit pinned at 0 allocs/op by TestEvalCacheHitZeroAlloc
func (c *evalCache) eval(cfg hw.Config) (predict.Estimate, float64) {
	if v, ok := c.seen[cfg]; ok {
		return v.est, v.e
	}
	c.evals++
	t0 := c.o.Trace.StartPhase()
	//mpclint:ignore hotpath-alloc deployed Model is predict.RandomForest, whose PredictKernel carries its own hotpath proof; other implementations are cold-path test doubles and wrappers
	est := c.o.Model.PredictKernel(c.cs, cfg)
	c.o.Trace.EndPhase(telemetry.SpanForestEval, t0)
	e := predict.EnergyMJ(est, cfg)
	//mpclint:ignore hotpath-alloc miss-path insert; the pinned warm path is a pure map hit, and the pooled cache retains its buckets across decisions
	c.seen[cfg] = cachedEval{est, e}
	return est, e
}

// HillClimb finds a low-energy configuration for a kernel with counters
// cs whose expected execution time must not exceed headroomMS.
//
// It starts at the fail-safe configuration, estimates each knob's energy
// sensitivity (predicted ΔE to its neighbouring states), then walks the
// knobs in descending sensitivity order, moving while predicted energy
// keeps decreasing and the headroom constraint keeps holding — stopping a
// knob as soon as energy rises (§IV-A1a). If even the fail-safe
// configuration cannot meet the headroom, it returns the fail-safe with
// Feasible=false, the paper's constraint-failure behaviour.
func (o *Optimizer) HillClimb(cs counters.Set, headroomMS float64) climbResult {
	cache := acquireEvalCache(o, cs)
	defer releaseEvalCache(cache)
	return o.hillClimb(cache, headroomMS, true, 0)
}

// hillClimb runs the search against an existing evaluation cache; Evals
// in the result reports the cache's cumulative count. When recover is
// true and the fail-safe start misses the headroom, the search first
// descends on predicted time to regain feasibility — for peak kernels
// the fastest configuration is NOT the largest one, so this walk can
// both recover feasibility and reduce energy (e.g. lbm at 4 CUs). The
// recovery walk is only worth its evaluations for the decision actually
// being applied; speculative window kernels skip it and conservatively
// assume the fail-safe.
//
// refTimeMS, when positive, is the kernel's last measured execution time;
// the recovery walk refuses to chase predictions below half of it. An
// imperfect model can hallucinate implausibly fast configurations, and a
// decision built on one would blow the very constraint recovery is
// trying to save — runtime measurements are the only trustworthy anchor
// (the same feedback principle as §IV-A1b).
func (o *Optimizer) hillClimb(cache *evalCache, headroomMS float64, recover bool, refTimeMS float64) climbResult {
	cur := o.failSafe
	curEst, curE := cache.eval(cur)
	if curEst.TimeMS > headroomMS {
		if !recover {
			return climbResult{Config: cur, Est: curEst, Evals: cache.evals, Feasible: false}
		}
		trustFloor := refTimeMS / 2
		for curEst.TimeMS > headroomMS {
			next, nextEst, nextE, ok := o.fastestNeighbor(cache, cur, curEst.TimeMS, trustFloor)
			if !ok {
				return climbResult{Config: o.failSafe, Est: curEst, Evals: cache.evals, Feasible: false}
			}
			cur, curEst, curE = next, nextEst, nextE
		}
	}

	// Energy sensitivity per knob: the best feasible single-step energy
	// reduction in either direction.
	type knobSens struct {
		knob hw.Knob
		dir  int
		sens float64
	}
	var order []knobSens
	for _, k := range hw.Knobs() {
		best := knobSens{knob: k}
		for _, dir := range [2]int{+1, -1} {
			nb, ok := o.Space.Step(cur, k, dir)
			if !ok {
				continue
			}
			est, e := cache.eval(nb)
			if est.TimeMS <= headroomMS && curE-e > best.sens {
				best.sens = curE - e
				best.dir = dir
			}
		}
		if best.dir != 0 {
			order = append(order, best)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].sens > order[b].sens })

	for _, ks := range order {
		for {
			nb, ok := o.Space.Step(cur, ks.knob, ks.dir)
			if !ok {
				break
			}
			est, e := cache.eval(nb)
			// The search stops once the energy increases (or the move
			// would violate the performance headroom).
			if e >= curE || est.TimeMS > headroomMS {
				break
			}
			cur, curEst, curE = nb, est, e
		}
	}
	return climbResult{Config: cur, Est: curEst, Evals: cache.evals, Feasible: true}
}

// ExhaustiveSearch sweeps every configuration in the space for the
// minimum predicted energy under the headroom constraint — the O(M)
// per-kernel search PPK and the search-cost ablation use. Evals equals
// the space size.
func (o *Optimizer) ExhaustiveSearch(cs counters.Set, headroomMS float64) climbResult {
	cache := acquireEvalCache(o, cs)
	defer releaseEvalCache(cache)
	return o.exhaustive(cache, headroomMS)
}

func (o *Optimizer) exhaustive(cache *evalCache, headroomMS float64) climbResult {
	if res, ok := o.exhaustiveBatched(cache, headroomMS); ok {
		return res
	}
	if workers := par.Resolve(o.Workers); workers > 1 {
		return o.exhaustiveSharded(cache, headroomMS, workers)
	}
	best := climbResult{Config: o.failSafe, Feasible: false}
	bestE := 0.0
	o.Space.ForEach(func(c hw.Config) {
		est, e := cache.eval(c)
		if est.TimeMS > headroomMS {
			return
		}
		if !best.Feasible || e < bestE {
			best = climbResult{Config: c, Est: est, Feasible: true}
			bestE = e
		}
	})
	best.Evals = cache.evals
	if !best.Feasible {
		est, _ := cache.eval(o.failSafe)
		best.Config, best.Est, best.Evals = o.failSafe, est, cache.evals
	}
	return best
}

// exhaustiveBatched is the compiled-forest fast path of the exhaustive
// sweep: when the model can evaluate a whole space in one call
// (predict.SpaceEvaluator — the Random Forest's space-vectorized
// compiled inference, forwarded through the calibration layer), the 336
// scalar predictor calls collapse into one batched call, and a serial
// reduction in Space.At order recovers exactly the serial sweep's
// argmin, evaluation count and cache contents — the same reduce the
// sharded sweep uses, so all three strategies are byte-identical and
// the batched one takes precedence (it beats goroutine fan-out at any
// core count by making the serial work itself cheap).
//
// Pre-seeded cache entries (e.g. the fail-safe from OptimizeWindow) are
// reused without counting an evaluation, exactly as the scalar paths
// do; the batched prediction for such a configuration is identical
// anyway, because every model in the stack is deterministic.
//
// ok is false when the model has no usable batched path — then the
// caller falls through to the sharded or serial sweep.
func (o *Optimizer) exhaustiveBatched(cache *evalCache, headroomMS float64) (res climbResult, ok bool) {
	se, sok := o.Model.(predict.SpaceEvaluator)
	if !sok && o.Sweep == nil {
		return climbResult{}, false
	}
	if o.sweepCfgs == nil || !o.sweepSpace.Equal(o.Space) {
		o.sweepSpace = o.Space
		o.sweepCfgs = o.Space.Configs()
		o.sweepEsts = make([]predict.Estimate, len(o.sweepCfgs))
	}
	// An injected sweep executor (the batch coordinator's remote path)
	// takes precedence; its bit-exactness contract means a fused sweep
	// and a direct one fill sweepEsts with identical bytes, so falling
	// through on failure changes nothing but the execution venue.
	swept := false
	if o.Sweep != nil {
		if tse, tok := o.Sweep.(predict.TracedSpaceEvaluator); tok {
			swept = tse.PredictSpaceTraced(cache.cs, o.Space, o.sweepEsts, o.Trace)
		} else {
			swept = o.Sweep.PredictSpace(cache.cs, o.Space, o.sweepEsts)
		}
	}
	if !swept {
		if !sok {
			return climbResult{}, false
		}
		// Prefer the trace-aware batched path so the sweep's featurize and
		// forest-eval time lands in the active trace; both paths fill
		// sweepEsts with identical bytes.
		if tse, tok := o.Model.(predict.TracedSpaceEvaluator); tok {
			if !tse.PredictSpaceTraced(cache.cs, o.Space, o.sweepEsts, o.Trace) {
				return climbResult{}, false
			}
		} else if !se.PredictSpace(cache.cs, o.Space, o.sweepEsts) {
			return climbResult{}, false
		}
	}
	best := climbResult{Config: o.failSafe, Feasible: false}
	bestE := 0.0
	for i, c := range o.sweepCfgs {
		est := o.sweepEsts[i]
		var e float64
		if v, hit := cache.seen[c]; hit {
			est, e = v.est, v.e
		} else {
			e = predict.EnergyMJ(est, c)
			cache.seen[c] = cachedEval{est, e}
			cache.evals++
		}
		if est.TimeMS > headroomMS {
			continue
		}
		if !best.Feasible || e < bestE {
			best = climbResult{Config: c, Est: est, Feasible: true}
			bestE = e
		}
	}
	best.Evals = cache.evals
	if !best.Feasible {
		est, _ := cache.eval(o.failSafe)
		best.Config, best.Est, best.Evals = o.failSafe, est, cache.evals
	}
	return best, true
}

// exhaustiveSharded is the parallel exhaustive sweep: the configuration
// space is partitioned across workers, every configuration is evaluated
// into its own index-addressed slot, and a serial reduction in
// Space.At order recovers exactly the serial sweep's argmin (strictly
// smaller energy wins, so ties keep the lower index), evaluation count
// and cache contents.
//
// During the fan-out the decision cache is read-only (concurrent map
// reads are safe; pre-seeded entries — e.g. the fail-safe from
// OptimizeWindow — are reused without re-evaluation); new entries are
// merged back serially so downstream searches on the same cache behave
// as if the serial sweep had run.
func (o *Optimizer) exhaustiveSharded(cache *evalCache, headroomMS float64, workers int) climbResult {
	cfgs := o.Space.Configs()
	type slot struct {
		est    predict.Estimate
		e      float64
		cached bool
	}
	slots := make([]slot, len(cfgs))
	par.ForEach(workers, len(cfgs), func(i int) {
		c := cfgs[i]
		if v, ok := cache.seen[c]; ok {
			slots[i] = slot{est: v.est, e: v.e, cached: true}
			return
		}
		est := o.Model.PredictKernel(cache.cs, c)
		slots[i] = slot{est: est, e: predict.EnergyMJ(est, c)}
	})

	best := climbResult{Config: o.failSafe, Feasible: false}
	bestE := 0.0
	for i, c := range cfgs {
		s := slots[i]
		if !s.cached {
			cache.seen[c] = cachedEval{s.est, s.e}
			cache.evals++
		}
		if s.est.TimeMS > headroomMS {
			continue
		}
		if !best.Feasible || s.e < bestE {
			best = climbResult{Config: c, Est: s.est, Feasible: true}
			bestE = s.e
		}
	}
	best.Evals = cache.evals
	if !best.Feasible {
		est, _ := cache.eval(o.failSafe)
		best.Config, best.Est, best.Evals = o.failSafe, est, cache.evals
	}
	return best
}

// fastestNeighbor returns the single-knob neighbour of cur with the
// smallest predicted time, provided it improves on curTime and stays at
// or above the trust floor.
func (o *Optimizer) fastestNeighbor(cache *evalCache, cur hw.Config, curTime, floor float64) (hw.Config, predict.Estimate, float64, bool) {
	var best hw.Config
	var bestEst predict.Estimate
	bestE := 0.0
	found := false
	for _, k := range hw.Knobs() {
		for _, dir := range [2]int{+1, -1} {
			nb, ok := o.Space.Step(cur, k, dir)
			if !ok {
				continue
			}
			est, e := cache.eval(nb)
			if est.TimeMS < curTime && est.TimeMS >= floor && (!found || est.TimeMS < bestEst.TimeMS) {
				best, bestEst, bestE, found = nb, est, e, true
			}
		}
	}
	return best, bestEst, bestE, found
}

// search dispatches to the configured per-kernel search strategy.
func (o *Optimizer) search(cache *evalCache, headroomMS float64, recover bool, refTimeMS float64) climbResult {
	if o.UseExhaustive {
		return o.exhaustive(cache, headroomMS)
	}
	return o.hillClimb(cache, headroomMS, recover, refTimeMS)
}

// orderWindow copies win into the optimizer's reused scratch buffer and
// stable-sorts it by less. Both window optimizers used to allocate this
// copy every receding-horizon step; the scratch makes the copy free in
// steady state while the stable sort keeps the exact tie-break order the
// allocating version produced (argmin/eval-count parity is pinned by the
// window invariant tests). The returned slice is valid until the next
// orderWindow call.
func (o *Optimizer) orderWindow(win []WindowKernel, less func(a, b WindowKernel) bool) []WindowKernel {
	o.winScratch = append(o.winScratch[:0], win...)
	ordered := o.winScratch
	sort.SliceStable(ordered, func(a, b int) bool { return less(ordered[a], ordered[b]) })
	return ordered
}

// WindowKernel is one kernel of an MPC optimization window.
type WindowKernel struct {
	ExecIndex int             // position in execution order
	Rec       counters.Record // expected counters (from the pattern extractor)
	ExpInsts  float64         // expected instruction count
	Rank      int             // position in the global search order
}

// OptimizeWindow performs one receding-horizon MPC step (Eq. 3): it
// optimizes every kernel in the window in search-order priority, letting
// performance headroom carry over from one kernel to the next on a
// speculative copy of the tracker, and returns the configuration chosen
// for the current kernel — the one with the smallest ExecIndex — along
// with its expected estimate and the total model evaluations spent.
//
// While a kernel is being optimized, the fail-safe-time deficits of the
// window kernels not yet speculated (ranked after it) are reserved from
// its headroom: a low-throughput kernel later in the search order must
// still find the banked time it needs when its turn comes. This is the
// §IV-A1b tracker behaviour of adjusting headroom with the "performance
// behavior of future kernels".
//
// If the window is empty, the fail-safe configuration is returned with
// zero evaluations.
func (o *Optimizer) OptimizeWindow(win []WindowKernel, tr *Tracker) (hw.Config, predict.Estimate, int) {
	if len(win) == 0 {
		est := o.Model.PredictKernel(counters.Set{}, o.failSafe)
		return o.failSafe, est, 0
	}
	// Order the window by search-order rank, into the reused scratch
	// copy (stable sort of identical data: identical order every step,
	// whatever buffer holds it).
	ordered := o.orderWindow(win, func(a, b WindowKernel) bool { return a.Rank < b.Rank })

	cur := win[0]
	for _, w := range win[1:] {
		if w.ExecIndex < cur.ExecIndex {
			cur = w
		}
	}

	// Per-kernel evaluation caches and fail-safe deficits, in reused
	// scratch; the caches are pooled and returned before this step ends.
	tp := tr.TargetThroughput()
	caches := o.cacheScratch[:0]
	deficit := o.deficitScratch[:0]
	remaining := 0.0
	for _, w := range ordered {
		cache := acquireEvalCache(o, w.Rec.Counters)
		fsEst, _ := cache.eval(o.failSafe)
		d := 0.0
		if tp > 0 {
			if fd := fsEst.TimeMS - w.ExpInsts/tp; fd > 0 {
				d = fd
			}
		}
		caches = append(caches, cache)
		deficit = append(deficit, d)
		remaining += d
	}
	o.cacheScratch, o.deficitScratch = caches, deficit
	defer func() {
		for i, c := range caches {
			releaseEvalCache(c)
			caches[i] = nil // no stale cache pointers in the scratch
		}
	}()

	spec := tr.Clone()
	evals := 0
	var curChoice climbResult
	haveCur := false
	for i, w := range ordered {
		remaining -= deficit[i]
		head := spec.HeadroomMS(w.ExpInsts) - remaining
		res := o.search(caches[i], head, w.ExecIndex == cur.ExecIndex, w.Rec.TimeMS)
		evals += res.Evals
		spec.Add(w.ExpInsts, res.Est.TimeMS)
		if w.ExecIndex == cur.ExecIndex && !haveCur {
			curChoice = res
			haveCur = true
		}
	}
	return curChoice.Config, curChoice.Est, evals
}
