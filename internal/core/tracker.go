package core

import "math"

// Tracker is the performance tracker of Fig. 6: it accumulates the
// instructions and execution time of completed kernels and converts the
// application-wide throughput target into the execution-time headroom
// available to the next decision (Eqs. 4–5).
type Tracker struct {
	targetTP  float64 // Itotal/Ttotal of the baseline, instructions per ms
	sumInsts  float64
	sumTimeMS float64
}

// NewTracker returns a tracker enforcing the given target throughput
// (instructions per millisecond). A non-positive target disables the
// constraint: headroom becomes infinite and the optimizer minimizes
// energy unconditionally.
func NewTracker(targetTP float64) *Tracker { return &Tracker{targetTP: targetTP} }

// Add records a completed (or virtually scheduled) kernel.
func (t *Tracker) Add(insts, timeMS float64) {
	t.sumInsts += insts
	t.sumTimeMS += timeMS
}

// Totals returns the accumulated instructions and time.
func (t *Tracker) Totals() (insts, timeMS float64) { return t.sumInsts, t.sumTimeMS }

// TargetThroughput returns the enforced target.
func (t *Tracker) TargetThroughput() float64 { return t.targetTP }

// HeadroomMS returns the maximum expected execution time the next kernel
// may take while keeping cumulative throughput at or above target —
// Eq. 5:
//
//	E[Tᵢ] ≤ (Σ Iⱼ + E[Iᵢ]) / (Itotal/Ttotal) − Σ Tⱼ
//
// The result can be negative when past kernels have already fallen behind
// the target; the optimizer then cannot meet the constraint and falls
// back to the fail-safe configuration.
func (t *Tracker) HeadroomMS(expInsts float64) float64 {
	if t.targetTP <= 0 {
		return math.Inf(1)
	}
	return (t.sumInsts+expInsts)/t.targetTP - t.sumTimeMS
}

// Clone returns an independent copy — the window optimizer speculates on
// a copy while the real tracker only advances on measured results.
func (t *Tracker) Clone() *Tracker {
	c := *t
	return &c
}

// BehindTarget reports whether accumulated throughput is currently below
// the target.
func (t *Tracker) BehindTarget() bool {
	if t.targetTP <= 0 || t.sumTimeMS == 0 {
		return false
	}
	return t.sumInsts/t.sumTimeMS < t.targetTP
}
