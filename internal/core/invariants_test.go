package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// randomWindow builds a window of 1..4 random kernels with exact
// expectations from the oracle.
func randomWindow(rng *rand.Rand) ([]WindowKernel, *predict.Oracle) {
	n := 1 + rng.Intn(4)
	o := predict.NewOracle()
	win := make([]WindowKernel, n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		k := kernel.Random("w", rng)
		o.Register(k)
		m := k.Evaluate(hw.FailSafe())
		win[i] = WindowKernel{
			ExecIndex: i,
			Rec:       counters.Record{Counters: k.Counters(), TimeMS: m.TimeMS, PowerW: m.GPUW + m.NBW},
			ExpInsts:  k.Insts(),
			Rank:      perm[i],
		}
	}
	return win, o
}

// Property: OptimizeWindow always returns a config inside the space,
// with positive eval count, for arbitrary windows and targets.
func TestOptimizeWindowInvariantsQuick(t *testing.T) {
	space := hw.DefaultSpace()
	prop := func(seed int64, tpRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		win, o := randomWindow(rng)
		opt := NewOptimizer(o, space)
		// Target between 0 (unconstrained) and aggressive.
		sumI, sumT := 0.0, 0.0
		for _, w := range win {
			sumI += w.ExpInsts
			sumT += w.Rec.TimeMS
		}
		tp := float64(tpRaw%300) / 100 * sumI / sumT // 0..3x fail-safe pace
		cfg, est, evals := opt.OptimizeWindow(win, NewTracker(tp))
		if !space.Contains(cfg) {
			return false
		}
		if evals <= 0 || est.TimeMS <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Error(err)
	}
}

// Property: with an oracle and an achievable target, the chosen config's
// TRUE energy never exceeds the fail-safe energy when the fail-safe
// itself is feasible — optimization never makes things worse than the
// guard.
func TestClimbNeverWorseThanFeasibleFailSafeQuick(t *testing.T) {
	space := hw.DefaultSpace()
	prop := func(seed int64, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kernel.Random("k", rng)
		o := predict.NewOracle()
		o.Register(k)
		opt := NewOptimizer(o, space)
		slack := 1 + float64(slackRaw%100)/50 // 1..3x fail-safe time
		head := k.TimeMS(hw.FailSafe()) * slack
		res := opt.HillClimb(k.Counters(), head)
		if !res.Feasible {
			return false // fail-safe fits by construction
		}
		return k.EnergyMJ(res.Config) <= k.EnergyMJ(opt.FailSafe())+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(72))}); err != nil {
		t.Error(err)
	}
}

// Property: the hill climb honors the headroom constraint exactly under
// an oracle (predicted == true time).
func TestClimbHonorsHeadroomQuick(t *testing.T) {
	space := hw.DefaultSpace()
	prop := func(seed int64, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := kernel.Random("k", rng)
		o := predict.NewOracle()
		o.Register(k)
		opt := NewOptimizer(o, space)
		head := k.TimeMS(hw.FailSafe()) * (0.5 + float64(slackRaw)/128)
		res := opt.HillClimb(k.Counters(), head)
		if !res.Feasible {
			return true // guarded by fail-safe; nothing to check
		}
		return k.TimeMS(res.Config) <= head+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(73))}); err != nil {
		t.Error(err)
	}
}

// Property: search order is a permutation for arbitrary profiles.
func TestSearchOrderPermutationQuick(t *testing.T) {
	prop := func(seedI, seedT int64, nRaw uint8) bool {
		n := 1 + int(nRaw%40)
		ri := rand.New(rand.NewSource(seedI))
		rt := rand.New(rand.NewSource(seedT))
		p := Profile{Insts: make([]float64, n), TimeMS: make([]float64, n)}
		for i := 0; i < n; i++ {
			p.Insts[i] = 0.1 + ri.Float64()*10
			p.TimeMS[i] = 0.1 + rt.Float64()*10
		}
		order, err := BuildSearchOrder(p, 0)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, k := range order {
			if k < 0 || k >= n || seen[k] {
				return false
			}
			seen[k] = true
		}
		rank := RankOf(order)
		for pos, k := range order {
			if rank[k] != pos {
				return false
			}
		}
		return len(order) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(74))}); err != nil {
		t.Error(err)
	}
}

// Property: the horizon is always within [0, N] and shrinks (weakly)
// with elapsed time.
func TestHorizonBoundsQuick(t *testing.T) {
	prop := func(nRaw, iRaw uint8, tbarRaw, ppkRaw, elRaw uint16) bool {
		n := 1 + int(nRaw%60)
		i := 1 + int(iRaw)%n
		tbar := 0.1 + float64(tbarRaw)/100
		ppk := float64(ppkRaw) / 1000
		g := NewHorizonGen(DefaultAlpha, n, tbar*float64(n), ppk)
		el := float64(elRaw) / 10
		h := g.Horizon(i, el)
		if h < 0 || h > n {
			return false
		}
		return g.Horizon(i, el+1) <= h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(75))}); err != nil {
		t.Error(err)
	}
}

// Exhaustive search equals the true constrained optimum under an oracle.
func TestExhaustiveIsTrueOptimum(t *testing.T) {
	space := hw.DefaultSpace()
	rng := rand.New(rand.NewSource(76))
	for trial := 0; trial < 20; trial++ {
		k := kernel.Random("k", rng)
		o := predict.NewOracle()
		o.Register(k)
		opt := NewOptimizer(o, space)
		head := k.TimeMS(hw.FailSafe()) * (0.8 + rng.Float64())
		res := opt.ExhaustiveSearch(k.Counters(), head)

		best := math.Inf(1)
		feasible := false
		space.ForEach(func(c hw.Config) {
			if k.TimeMS(c) > head {
				return
			}
			feasible = true
			if e := k.EnergyMJ(c); e < best {
				best = e
			}
		})
		if feasible != res.Feasible {
			t.Fatalf("trial %d: feasibility mismatch", trial)
		}
		if feasible && math.Abs(k.EnergyMJ(res.Config)-best) > 1e-9 {
			t.Fatalf("trial %d: exhaustive %v not the optimum %v", trial, k.EnergyMJ(res.Config), best)
		}
	}
}
