package core

import (
	"math"

	"mpcdvfs/internal/hw"
)

// BruteForceResult reports an exhaustive (backtracking) window
// optimization: the benchmark the paper's greedy+heuristic approximation
// is measured against (§IV-A1a). Evals counts distinct model
// evaluations (M × H — each kernel/config pair priced once); Combos
// counts the configuration combinations the backtracking search walks
// (O(M^H), the term that makes true MPC infeasible at power-management
// timescales).
type BruteForceResult struct {
	Config   hw.Config // choice for the current (lowest ExecIndex) kernel
	EnergyMJ float64   // predicted window energy of the best feasible plan
	Evals    int
	Combos   int
	Feasible bool
}

// BruteForceWindow solves Eq. 3 exactly over the window: it enumerates
// every configuration assignment, keeps those whose total expected time
// fits the window's throughput budget, and returns the minimum-energy
// plan's decision for the current kernel. Exponential in the window
// length — use only with small spaces and windows.
func (o *Optimizer) BruteForceWindow(win []WindowKernel, tr *Tracker) BruteForceResult {
	if len(win) == 0 {
		return BruteForceResult{Config: o.failSafe}
	}
	ordered := o.orderWindow(win, func(a, b WindowKernel) bool { return a.ExecIndex < b.ExecIndex })

	// Window budget: total expected time so that cumulative throughput
	// through the window still meets the target (Eq. 3).
	budget := math.Inf(1)
	if tp := tr.TargetThroughput(); tp > 0 {
		pastI, pastT := tr.Totals()
		sumI := 0.0
		for _, w := range ordered {
			sumI += w.ExpInsts
		}
		budget = (pastI+sumI)/tp - pastT
	}

	// Price every kernel/config pair once.
	cfgs := o.Space.Configs()
	times := make([][]float64, len(ordered))
	energies := make([][]float64, len(ordered))
	evals := 0
	for i, w := range ordered {
		cache := acquireEvalCache(o, w.Rec.Counters)
		times[i] = make([]float64, len(cfgs))
		energies[i] = make([]float64, len(cfgs))
		for j, c := range cfgs {
			est, e := cache.eval(c)
			times[i][j] = est.TimeMS
			energies[i][j] = e
		}
		evals += cache.evals
		releaseEvalCache(cache)
	}

	res := BruteForceResult{Config: o.failSafe, EnergyMJ: math.Inf(1), Evals: evals}
	choice := make([]int, len(ordered))
	var dfs func(level int, timeSoFar, energySoFar float64)
	dfs = func(level int, timeSoFar, energySoFar float64) {
		if level == len(ordered) {
			res.Combos++
			if timeSoFar <= budget && energySoFar < res.EnergyMJ {
				res.EnergyMJ = energySoFar
				res.Config = cfgs[choice[0]]
				res.Feasible = true
			}
			return
		}
		for j := range cfgs {
			// Prune: a prefix already over budget cannot recover.
			if timeSoFar+times[level][j] > budget {
				res.Combos++ // the backtracking step still visits the node
				continue
			}
			// Prune: energy already above the incumbent cannot improve.
			if energySoFar+energies[level][j] >= res.EnergyMJ {
				res.Combos++
				continue
			}
			choice[level] = j
			dfs(level+1, timeSoFar+times[level][j], energySoFar+energies[level][j])
		}
	}
	dfs(0, 0, 0)

	if !res.Feasible {
		res.Config = o.failSafe
		res.EnergyMJ = math.NaN()
	}
	return res
}
