// Package core implements the paper's primary contribution: the MPC
// optimizer of §IV. It contains the four mechanisms that together make
// model-predictive GPU power management tractable at runtime:
//
//   - the performance tracker (Eqs. 4–5), which converts the global
//     throughput target into a per-decision execution-time headroom;
//   - the search-order heuristic, which orders the kernels of an
//     application into above-target and below-target clusters so that a
//     window of future kernels can be optimized greedily, without
//     backtracking, in polynomial time;
//   - the greedy hill-climbing configuration search, which walks one
//     hardware knob at a time in descending energy-sensitivity order,
//     cutting per-kernel model evaluations from |cpu|·|nb|·|gpu|·|cu|
//     to ~(|cpu|+|nb|+|gpu|+|cu|);
//   - the adaptive horizon generator (§IV-A4), which bounds the total
//     performance loss — MPC compute overhead included — to a factor α
//     by shrinking the prediction horizon when kernels are short.
//
// The window optimizer ties these together: at kernel i it optimizes the
// next Hᵢ kernels in search-order priority, lets performance headroom
// carry over between them, and applies only the decision for kernel i —
// the receding-horizon step of Fig. 5.
package core
