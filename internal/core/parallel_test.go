package core

import (
	"math/rand"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// Property: the sharded exhaustive sweep reduces to exactly the serial
// result — same argmin, same estimate, same evaluation count, same
// feasibility — for random kernels and headrooms, across worker counts.
func TestShardedExhaustiveMatchesSerial(t *testing.T) {
	space := hw.DefaultSpace()
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		k := kernel.Random("k", rng)
		o := predict.NewOracle()
		o.Register(k)

		// Headrooms from hopeless (nothing feasible) to unconstrained.
		head := k.TimeMS(hw.FailSafe()) * (0.2 + rng.Float64()*2.5)

		serial := NewOptimizer(o, space)
		serial.Workers = 1
		want := serial.ExhaustiveSearch(k.Counters(), head)

		for _, workers := range []int{2, 3, 8} {
			sharded := NewOptimizer(o, space)
			sharded.Workers = workers
			got := sharded.ExhaustiveSearch(k.Counters(), head)
			if got != want {
				t.Fatalf("trial %d workers=%d: sharded %+v != serial %+v (head=%v)",
					trial, workers, got, want, head)
			}
		}
	}
}

// constModel predicts the same estimate for every configuration, so
// every feasible configuration ties on energy apart from the CPU power
// term; within one CPU state the tie is total. The argmin must then be
// the lowest Space.At index — the serial sweep's tie-break — for every
// worker count.
type constModel struct{ est predict.Estimate }

func (constModel) Name() string { return "const" }
func (m constModel) PredictKernel(counters.Set, hw.Config) predict.Estimate {
	return m.est
}

func TestShardedExhaustiveTieBreak(t *testing.T) {
	space := hw.DefaultSpace()
	m := constModel{est: predict.Estimate{TimeMS: 1, GPUPowerW: 10}}

	serial := NewOptimizer(m, space)
	serial.Workers = 1
	want := serial.ExhaustiveSearch(counters.Set{}, 2)

	for _, workers := range []int{2, 4, 16} {
		sharded := NewOptimizer(m, space)
		sharded.Workers = workers
		got := sharded.ExhaustiveSearch(counters.Set{}, 2)
		if got != want {
			t.Fatalf("workers=%d: tie broken differently: %+v != %+v", workers, got, want)
		}
	}
}

// Property: a full OptimizeWindow step under the exhaustive search is
// byte-identical between serial and sharded optimizers — configuration,
// estimate and total evaluation count — for random windows and targets.
// This exercises the cache pre-seeding path: OptimizeWindow evaluates
// the fail-safe before the sweep runs, so the sharded sweep must reuse
// that entry without recounting it.
func TestOptimizeWindowShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	space := hw.DefaultSpace()
	for trial := 0; trial < 15; trial++ {
		win, o := randomWindow(rng)
		sumI, sumT := 0.0, 0.0
		for _, w := range win {
			sumI += w.ExpInsts
			sumT += w.Rec.TimeMS
		}
		tp := rng.Float64() * 2 * sumI / sumT

		serial := NewOptimizer(o, space)
		serial.UseExhaustive = true
		serial.Workers = 1
		wCfg, wEst, wEvals := serial.OptimizeWindow(win, NewTracker(tp))

		for _, workers := range []int{2, 4} {
			sharded := NewOptimizer(o, space)
			sharded.UseExhaustive = true
			sharded.Workers = workers
			gCfg, gEst, gEvals := sharded.OptimizeWindow(win, NewTracker(tp))
			if gCfg != wCfg || gEst != wEst || gEvals != wEvals {
				t.Fatalf("trial %d workers=%d: (%v %+v %d) != serial (%v %+v %d)",
					trial, workers, gCfg, gEst, gEvals, wCfg, wEst, wEvals)
			}
		}
	}
}
