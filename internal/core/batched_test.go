package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

var (
	batchedRFOnce sync.Once
	batchedRF     *predict.RandomForest
	batchedRFErr  error
)

// batchedModel trains one small Random Forest shared across the batched-
// sweep tests (the batched path only exists for compiled-forest models).
func batchedModel(t *testing.T) *predict.RandomForest {
	t.Helper()
	batchedRFOnce.Do(func() {
		opt := predict.DefaultTrainOptions(31)
		opt.NumKernels = 12
		batchedRF, batchedRFErr = predict.TrainRandomForest(opt)
	})
	if batchedRFErr != nil {
		t.Fatal(batchedRFErr)
	}
	return batchedRF
}

func sameClimbResult(t *testing.T, label string, got, want climbResult) {
	t.Helper()
	if got.Config != want.Config || got.Evals != want.Evals || got.Feasible != want.Feasible ||
		math.Float64bits(got.Est.TimeMS) != math.Float64bits(want.Est.TimeMS) ||
		math.Float64bits(got.Est.GPUPowerW) != math.Float64bits(want.Est.GPUPowerW) {
		t.Fatalf("%s: batched %+v != serial %+v", label, got, want)
	}
}

// TestExhaustiveBatchedMatchesSerial checks the three-way contract of
// the exhaustive sweep: the batched compiled path, the serial scalar
// path (compiled inference disabled) and the tree-walking serial path
// all return byte-identical results — configuration, estimate bits,
// evaluation count and feasibility — across kernels and headrooms,
// including the infeasible fail-safe fallback.
func TestExhaustiveBatchedMatchesSerial(t *testing.T) {
	m := batchedModel(t)
	defer m.SetCompiled(true)
	space := hw.DefaultSpace()
	rng := rand.New(rand.NewSource(9))

	kernels := []kernel.Kernel{
		kernel.NewComputeBound("c", 1), kernel.NewMemoryBound("m", 1),
		kernel.NewPeak("p", 1), kernel.Random("r", rng),
	}
	for _, k := range kernels {
		cs := k.Counters()
		// Headrooms: unconstrained, moderately tight (around the
		// fail-safe's own predicted time), and impossible.
		m.SetCompiled(true)
		fsTime := m.PredictKernel(cs, space.Clamp(hw.FailSafe())).TimeMS
		for _, head := range []float64{math.Inf(1), fsTime * 1.05, fsTime * 0.5, -1} {
			m.SetCompiled(true)
			batched := NewOptimizer(m, space).ExhaustiveSearch(cs, head)

			m.SetCompiled(false)
			serial := NewOptimizer(m, space)
			serial.Workers = 1
			want := serial.ExhaustiveSearch(cs, head)

			sameClimbResult(t, k.Name(), batched, want)
			if want.Evals < space.Size() {
				t.Fatalf("%s: serial sweep reports %d evals, want >= %d", k.Name(), want.Evals, space.Size())
			}
		}
	}
}

// TestExhaustiveBatchedThroughCalibrated checks the batched path
// through the full policy model stack minus the cache (Calibrated over
// RandomForest, with a feedback ratio installed) against the
// scalar sweep over the identical stack.
func TestExhaustiveBatchedThroughCalibrated(t *testing.T) {
	m := batchedModel(t)
	defer m.SetCompiled(true)
	space := hw.DefaultSpace()
	k := kernel.NewMemoryBound("mb", 1)
	cs := k.Counters()

	cal := predict.NewCalibrated(m)
	raw := m.PredictKernel(cs, space.At(0))
	cal.Feedback(cs, space.At(0), raw.TimeMS*1.3, raw.GPUPowerW*0.9)

	m.SetCompiled(true)
	batched := NewOptimizer(cal, space).ExhaustiveSearch(cs, math.Inf(1))
	m.SetCompiled(false)
	serial := NewOptimizer(cal, space)
	serial.Workers = 1
	want := serial.ExhaustiveSearch(cs, math.Inf(1))
	sameClimbResult(t, "calibrated", batched, want)
}

// TestExhaustiveBatchedCacheSemantics checks the decision-cache
// contract of the batched sweep: pre-seeded entries are reused without
// counting an evaluation, new entries land in the cache with the same
// values the scalar path would store, and the final count matches.
func TestExhaustiveBatchedCacheSemantics(t *testing.T) {
	m := batchedModel(t)
	space := hw.DefaultSpace()
	cs := kernel.NewComputeBound("cb", 1).Counters()

	run := func(compiled bool) (*evalCache, climbResult) {
		m.SetCompiled(compiled)
		o := NewOptimizer(m, space)
		o.Workers = 1
		cache := newEvalCache(o, cs)
		cache.eval(o.failSafe) // pre-seed, as OptimizeWindow does
		res := o.exhaustive(cache, math.Inf(1))
		return cache, res
	}
	bCache, bRes := run(true)
	sCache, sRes := run(false)
	m.SetCompiled(true)

	sameClimbResult(t, "pre-seeded", bRes, sRes)
	if bRes.Evals != space.Size() {
		t.Fatalf("evals = %d with a pre-seeded fail-safe, want %d (seeded entry must not recount)",
			bRes.Evals, space.Size())
	}
	if len(bCache.seen) != len(sCache.seen) {
		t.Fatalf("batched cache holds %d entries, serial %d", len(bCache.seen), len(sCache.seen))
	}
	for c, sv := range sCache.seen {
		bv, ok := bCache.seen[c]
		if !ok {
			t.Fatalf("config %+v missing from batched cache", c)
		}
		if math.Float64bits(bv.e) != math.Float64bits(sv.e) ||
			math.Float64bits(bv.est.TimeMS) != math.Float64bits(sv.est.TimeMS) ||
			math.Float64bits(bv.est.GPUPowerW) != math.Float64bits(sv.est.GPUPowerW) {
			t.Fatalf("config %+v: batched cache %+v != serial %+v", c, bv, sv)
		}
	}
}

// TestExhaustiveBatchedDeclinesScalarModels checks the fallback: a
// model without a batched path (the oracle) routes through the scalar
// sweep untouched.
func TestExhaustiveBatchedDeclinesScalarModels(t *testing.T) {
	k := kernel.NewBalanced("b", 1)
	o := NewOptimizer(oracleFor(k), hw.DefaultSpace())
	if _, ok := o.exhaustiveBatched(newEvalCache(o, k.Counters()), math.Inf(1)); ok {
		t.Fatal("batched sweep accepted a model with no SpaceEvaluator")
	}
	res := o.ExhaustiveSearch(k.Counters(), math.Inf(1))
	if !res.Feasible || res.Evals != o.Space.Size() {
		t.Fatalf("scalar fallback broken: %+v", res)
	}
}

// TestEvalCacheHitZeroAlloc pins the warm decision-cache path at zero
// allocations: within one decision, re-evaluating a seen configuration
// is a map hit and nothing else.
func TestEvalCacheHitZeroAlloc(t *testing.T) {
	k := kernel.NewBalanced("b", 1)
	o := NewOptimizer(oracleFor(k), hw.DefaultSpace())
	cache := newEvalCache(o, k.Counters())
	cfg := o.failSafe
	cache.eval(cfg) // miss once
	if allocs := testing.AllocsPerRun(200, func() { cache.eval(cfg) }); allocs != 0 {
		t.Fatalf("warm evalCache.eval allocates %v times per call, want 0", allocs)
	}
}

// TestEvalCachePoolWarmZeroAlloc pins the pooled decision-cache
// lifecycle at zero allocations in steady state: once a pooled cache's
// map has grown to sweep size, a full acquire / evaluate / release
// cycle reuses it without touching the allocator (clear() keeps the
// buckets). This is the per-window-kernel cost OptimizeWindow pays on
// every receding-horizon step.
func TestEvalCachePoolWarmZeroAlloc(t *testing.T) {
	m := batchedModel(t)
	m.SetCompiled(true)
	o := NewOptimizer(m, hw.DefaultSpace())
	cs := kernel.NewBalanced("b", 1).Counters()

	// Grow one pooled cache to full-sweep size, then return it.
	warm := acquireEvalCache(o, cs)
	o.Space.ForEach(func(cfg hw.Config) { warm.eval(cfg) })
	releaseEvalCache(warm)

	cfg := o.failSafe
	if allocs := testing.AllocsPerRun(200, func() {
		c := acquireEvalCache(o, cs)
		c.eval(cfg)
		releaseEvalCache(c)
	}); allocs != 0 {
		t.Fatalf("warm pooled evalCache cycle allocates %v times, want 0", allocs)
	}
}

// TestEvalCachePoolResetOnRelease pins the per-kernel isolation of the
// pool: a released cache comes back empty (no other kernel's entries,
// zero eval count) even though its map storage is reused.
func TestEvalCachePoolResetOnRelease(t *testing.T) {
	k := kernel.NewBalanced("b", 1)
	o := NewOptimizer(oracleFor(k), hw.DefaultSpace())
	c := acquireEvalCache(o, k.Counters())
	c.eval(o.failSafe)
	if c.evals != 1 || len(c.seen) != 1 {
		t.Fatalf("fresh cache after one miss: evals=%d entries=%d", c.evals, len(c.seen))
	}
	releaseEvalCache(c)
	c2 := acquireEvalCache(o, k.Counters())
	defer releaseEvalCache(c2)
	if c2.evals != 0 || len(c2.seen) != 0 {
		t.Fatalf("pooled cache not reset: evals=%d entries=%d", c2.evals, len(c2.seen))
	}
}

// TestExhaustiveBatchedSweepZeroAllocSteadyState pins the whole batched
// sweep reduction (minus the per-decision cache, which each decision
// owns) at a bounded, arena-free steady state: after the first sweep
// builds the optimizer and model arenas, a sweep's only allocations are
// the decision cache's own map growth.
func TestExhaustiveBatchedSweepZeroAllocSteadyState(t *testing.T) {
	m := batchedModel(t)
	m.SetCompiled(true)
	space := hw.DefaultSpace()
	cs := kernel.NewPeak("pk", 1).Counters()
	o := NewOptimizer(m, space)
	o.exhaustive(newEvalCache(o, cs), math.Inf(1)) // warm up arenas

	cache := newEvalCache(o, cs)
	o.exhaustive(cache, math.Inf(1)) // fill this decision's cache
	if allocs := testing.AllocsPerRun(20, func() { o.exhaustive(cache, math.Inf(1)) }); allocs != 0 {
		t.Fatalf("warm batched exhaustive allocates %v times per sweep, want 0", allocs)
	}
}
