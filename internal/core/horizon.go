package core

import "math"

// DefaultAlpha is the performance-loss bound the paper uses: 5%.
const DefaultAlpha = 0.05

// HorizonGen is the adaptive horizon generator of §IV-A4. It chooses a
// per-kernel prediction horizon Hᵢ so that the total performance loss —
// MPC compute overhead plus the loss from MPC approximations — stays
// bounded by a factor α of the baseline execution time.
//
// It needs three quantities gathered during the initial profiling
// invocation: the kernel count N, the average per-kernel horizon length
// N̄ implied by the search order, and the PPK optimization overhead
// T_PPK. The paper writes T_PPK as "the total time to run PPK during the
// initial invocation"; two literal readings fail — including kernel
// execution time makes the bound vacuous, and charging the whole-run
// optimizer total as the cost of ONE horizon unit overestimates MPC's
// per-unit cost by the O(M)/O(Σknobs) ratio (~18×), collapsing every
// horizon to zero and contradicting Figs. 14–15. We therefore take T_PPK
// as the mean per-kernel PPK optimization time, which makes
// Hᵢ·(N̄/N)·T_PPK a faithful estimate of the windowed hill-climbing cost
// and reproduces the published horizon behaviour.
type HorizonGen struct {
	Alpha  float64 // performance-loss bound (paper: 0.05)
	N      int     // kernels per application invocation
	NBar   float64 // average horizon from the search order, (N+1)/2
	TBarMS float64 // baseline per-kernel time, Ttotal/N
	TPPKms float64 // mean per-kernel PPK optimization overhead
}

// NewHorizonGen assembles a generator from profiling measurements:
// ppkOverheadMS is the profiling run's TOTAL optimization overhead, which
// is averaged over the N kernels.
func NewHorizonGen(alpha float64, n int, baselineTotalMS, ppkOverheadMS float64) *HorizonGen {
	if n <= 0 {
		panic("core: horizon generator needs n > 0")
	}
	return &HorizonGen{
		Alpha:  alpha,
		N:      n,
		NBar:   AvgWindowLen(n),
		TBarMS: baselineTotalMS / float64(n),
		TPPKms: ppkOverheadMS / float64(n),
	}
}

// Horizon returns Hᵢ for the i-th kernel (1-based), given the measured
// execution plus MPC-overhead time Σⱼ₍ⱼ<ᵢ₎(Tⱼ+T_MPC,ⱼ) of the kernels
// already executed this run:
//
//	Hᵢ = ⌊ (N/N̄) · ((1+α−1/i)·i·T̄ − Σ(Tⱼ+T_MPC,ⱼ)) / T_PPK ⌋
//
// clamped to [0, N]. A zero horizon means the optimizer cannot afford to
// run at all for this kernel; the policy then applies the fail-safe
// configuration. If no PPK overhead was measured (T_PPK = 0, e.g. a free
// optimizer), the full horizon is returned.
func (g *HorizonGen) Horizon(i int, elapsedMS float64) int {
	if i <= 0 {
		return 0
	}
	if g.TPPKms <= 0 {
		return g.N
	}
	fi := float64(i)
	budget := (1+g.Alpha-1/fi)*fi*g.TBarMS - elapsedMS
	h := math.Floor(float64(g.N) / g.NBar * budget / g.TPPKms)
	if h < 0 {
		return 0
	}
	if h > float64(g.N) {
		return g.N
	}
	return int(h)
}
