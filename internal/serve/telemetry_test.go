// Telemetry integration tests: the deep-introspection layer must
// observe the serving stack without perturbing it. The load-bearing
// assertions are (1) a fully-sampled traced session replays
// byte-identical to the untraced local golden, (2) one /v1/decide
// decomposes into the queue/search/featurize/forest-eval span tree,
// and (3) the per-generation scoreboard visibly degrades when a worse
// model generation is installed via /reload.
package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"mpcdvfs"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/telemetry"
	"mpcdvfs/internal/trace"
)

// loadGoldenModel loads the committed random-forest model — the only
// test model with a batched (SpaceEvaluator) path, which the
// featurize/forest-eval span assertions need.
func loadGoldenModel(t *testing.T) mpcdvfs.Model {
	t.Helper()
	f, err := os.Open("../../testdata/golden/model.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := predict.LoadModel(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// get fetches a debug endpoint.
func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestTracedReplayMatchesGoldenConcurrent is the tracing determinism
// contract: four sessions replaying concurrently under 100% trace
// sampling — scoreboard, accounting and span ring all active — must
// each stay byte-identical to the untraced local golden. Under -race
// this also exercises concurrent scoreboard/accounting updates from
// four session goroutines.
func TestTracedReplayMatchesGoldenConcurrent(t *testing.T) {
	sys, app, target, model := testStack(t)
	golden := goldenReplay(t, sys, app, target, model)

	hub := telemetry.NewHub(telemetry.Options{Sample: 1})
	_, ts := newTestServer(t, sys, model, serve.Config{Telemetry: hub})

	const sessions = 4
	replays := make([][]byte, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(ts.URL)
			res, err := sys.Run(app, c, target, true)
			if err == nil {
				err = c.Close()
			}
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, res); err != nil {
				errs[i] = err
				return
			}
			replays[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !bytes.Equal(replays[i], golden) {
			t.Fatalf("traced session %d diverges from untraced golden at: %s",
				i, firstDiffLine(replays[i], golden))
		}
	}

	roots, sampled := hub.Tracer.Stats()
	want := uint64(sessions * app.Len())
	if roots != want || sampled != want {
		t.Fatalf("tracer saw %d roots / %d sampled, want %d/%d", roots, sampled, want, want)
	}
	if cells := hub.Scoreboard.Snapshot(); len(cells) == 0 {
		t.Fatal("scoreboard empty after four observed replays")
	}
	acct := hub.Accounting.Snapshot()
	if len(acct.Sessions) != sessions {
		t.Fatalf("accounting has %d sessions, want %d", len(acct.Sessions), sessions)
	}
	for _, srow := range acct.Sessions {
		if srow.Decisions != uint64(app.Len()) {
			t.Fatalf("session %s accounted %d decisions, want %d", srow.SessionID, srow.Decisions, app.Len())
		}
	}
}

// TestDecideSpanTreeAndDebugEndpoints drives a replay against the
// random-forest model and asserts the acceptance-criterion span tree:
// a single served decision decomposes into queue, search, featurize
// and forest-eval phases, all visible through /debug/trace and
// /debug/mpc.
func TestDecideSpanTreeAndDebugEndpoints(t *testing.T) {
	sys, app, target, _ := testStack(t)
	model := loadGoldenModel(t)

	hub := telemetry.NewHub(telemetry.Options{Sample: 1, RingSize: 16384})
	_, ts := newTestServer(t, sys, model, serve.Config{Telemetry: hub})

	c := serve.NewClient(ts.URL)
	if _, err := sys.Run(app, c, target, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// /debug/trace: parse the ring and find one fully-decomposed trace.
	code, hdr, body := get(t, ts.URL+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	recs, err := telemetry.ReadSpansJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	byTrace := map[uint64][]telemetry.SpanRecord{}
	for _, r := range recs {
		byTrace[r.TraceID] = append(byTrace[r.TraceID], r)
	}
	found := false
	for _, spans := range byTrace {
		var root, search telemetry.SpanRecord
		for _, sp := range spans {
			switch sp.Name {
			case telemetry.SpanDecide:
				root = sp
			case telemetry.SpanSearch:
				search = sp
			}
		}
		if root.SpanID == 0 || search.SpanID == 0 || search.ParentID != root.SpanID {
			continue
		}
		var haveQueue, haveFeat, haveForest bool
		for _, sp := range spans {
			switch {
			case sp.Name == telemetry.SpanQueue && sp.ParentID == root.SpanID:
				haveQueue = true
			case sp.Name == telemetry.SpanFeaturize && sp.ParentID == search.SpanID:
				haveFeat = true
			case sp.Name == telemetry.SpanForestEval && sp.ParentID == search.SpanID:
				haveForest = true
			}
		}
		if haveQueue && haveFeat && haveForest {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no trace decomposes into queue+search+featurize+forest-eval (have %d traces)", len(byTrace))
	}

	// /debug/mpc JSON: the same state, plus scoreboard and ledger.
	code, _, body = get(t, ts.URL+"/debug/mpc")
	if code != http.StatusOK {
		t.Fatalf("/debug/mpc: %d", code)
	}
	var st serve.DebugState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/debug/mpc JSON: %v", err)
	}
	if st.SnapshotGen != 1 || st.Model == "" {
		t.Fatalf("debug state header wrong: gen=%d model=%q", st.SnapshotGen, st.Model)
	}
	if len(st.Models) == 0 || st.Models[0].Observations == 0 {
		t.Fatalf("debug state has no scoreboard cells: %+v", st.Models)
	}
	if len(st.Accounting.Sessions) == 0 || len(st.RecentSpans) == 0 {
		t.Fatal("debug state missing accounting sessions or recent spans")
	}
	if st.TraceSampled == 0 || st.TraceSampleN != 1 {
		t.Fatalf("debug trace stats wrong: %+v", st)
	}

	// /debug/mpc?format=html: the human view renders.
	code, hdr, body = get(t, ts.URL+"/debug/mpc?format=html")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("/debug/mpc html: %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "model scoreboard") {
		t.Fatal("html view missing scoreboard section")
	}

	// /debug/models: the scoreboard alone.
	code, _, body = get(t, ts.URL+"/debug/models")
	if code != http.StatusOK {
		t.Fatalf("/debug/models: %d", code)
	}
	var models struct {
		SnapshotGen uint64                   `json:"snapshot_gen"`
		Cells       []telemetry.CellSnapshot `json:"cells"`
	}
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	if len(models.Cells) == 0 {
		t.Fatal("/debug/models has no cells")
	}
}

// TestScoreboardDegradesAcrossReload is the drift acceptance test: a
// replay against the accurate generation-1 model, then /reload installs
// a deliberately degraded generation 2; the per-generation rolling MAPE
// on /debug/models must be visibly worse for generation 2, and with the
// gen-1 level registered as baseline, generation 2 must flag drift.
func TestScoreboardDegradesAcrossReload(t *testing.T) {
	sys, app, target, model := testStack(t)

	hub := telemetry.NewHub(telemetry.Options{Sample: 0, DriftFactor: 3})
	srv, ts := newTestServer(t, sys, model, serve.Config{
		Telemetry: hub,
		Train: func() (predict.Model, error) {
			// The "retrained" model is the oracle with 40% mean
			// absolute error injected — a deterministic stand-in for a
			// model gone stale.
			return predict.NewWithError(model, 0.4, 0.4, 7), nil
		},
	})

	replay := func() {
		c := serve.NewClient(ts.URL)
		if _, err := sys.Run(app, c, target, true); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	replay() // generation 1

	if code, _, body := post(t, ts.URL, "/reload", serve.ReloadRequest{}); code != http.StatusOK {
		t.Fatalf("/reload: %d %s", code, body)
	}
	if got := srv.CurrentSnapshot().Gen; got != 2 {
		t.Fatalf("snapshot gen after reload = %d, want 2", got)
	}
	replay() // generation 2, degraded

	code, _, body := get(t, ts.URL+"/debug/models")
	if code != http.StatusOK {
		t.Fatalf("/debug/models: %d", code)
	}
	var models struct {
		Cells []telemetry.CellSnapshot `json:"cells"`
	}
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	var gen1, gen2 *telemetry.CellSnapshot
	for i := range models.Cells {
		switch models.Cells[i].Gen {
		case 1:
			gen1 = &models.Cells[i]
		case 2:
			gen2 = &models.Cells[i]
		}
	}
	if gen1 == nil || gen2 == nil {
		t.Fatalf("missing generation cells: %+v", models.Cells)
	}
	if gen2.TimeMAPE <= gen1.TimeMAPE {
		t.Fatalf("degraded generation not visible: gen1 MAPE %.4f, gen2 MAPE %.4f",
			gen1.TimeMAPE, gen2.TimeMAPE)
	}

	// With generation 1's observed level as the baseline, generation 2
	// crosses the drift gate (factor 3 — gen-1 errors are near zero
	// against the oracle, gen-2 errors are ~40%).
	hub.Scoreboard.SetDefaultBaseline(gen1.TimeMAPE+0.01, gen1.PowerMAPE+0.01)
	cells := hub.Scoreboard.Snapshot()
	for _, cell := range cells {
		if cell.Gen == 2 && !cell.Drifted {
			t.Fatalf("generation 2 not flagged as drifted: %+v", cell)
		}
		if cell.Gen == 1 && cell.Drifted {
			t.Fatalf("generation 1 falsely flagged as drifted: %+v", cell)
		}
	}
}
