package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
)

// Client drives one decision-service session and implements sim.Policy,
// so a remote server can stand in for an in-process policy anywhere the
// simulator accepts one — sim.Engine.Run becomes the closed loop the
// load generator and the golden parity tests share.
//
// sim.Policy has no error returns, so transport failures latch: the
// first error sticks (Err reports it), subsequent Decide calls return
// the fail-safe configuration, and Observe calls become no-ops. 429
// backpressure is not an error — the client honours Retry-After and
// retries, preserving the session's operation order (it is closed-loop:
// nothing later has been sent yet).
//
// A Client is not safe for concurrent use; it is one session, which is
// single-threaded by design. Run many Clients for many sessions.
type Client struct {
	// OnDecideLatency, when set, receives the wall time of every
	// successful /v1/decide round trip (including 429 retry waits —
	// what a real client experiences).
	OnDecideLatency func(time.Duration)
	// MaxRetries bounds consecutive 429 retries per request (<= 0 means
	// DefaultMaxRetries).
	MaxRetries int
	// Retries429 counts 429 responses absorbed by retrying — how often
	// this session hit a full queue.
	Retries429 int

	base string
	hc   *http.Client

	id   string
	name string
	gen  uint64
	err  error
}

// DefaultMaxRetries is the per-request cap on 429 retries.
const DefaultMaxRetries = 100

// NewClient returns a client for a server with the given base URL
// (e.g. "http://localhost:9090").
func NewClient(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: &http.Client{}}
}

// Err returns the latched transport/protocol error, if any.
func (c *Client) Err() error { return c.err }

// SessionID returns the server-assigned session id ("" before Begin).
func (c *Client) SessionID() string { return c.id }

// SnapshotGen returns the model snapshot generation the session is
// pinned to (0 before Begin).
func (c *Client) SnapshotGen() uint64 { return c.gen }

// Name implements sim.Policy: the remote policy's name once the session
// is open, a placeholder before.
func (c *Client) Name() string {
	if c.name == "" {
		return "remote"
	}
	return c.name
}

// Begin implements sim.Policy by opening a session.
func (c *Client) Begin(info sim.RunInfo) {
	var resp SessionResponse
	if err := c.post("/v1/session", SessionRequest{
		App:        info.AppName,
		NumKernels: info.NumKernels,
		Target:     TargetWire{TotalInsts: info.Target.TotalInsts, TotalTimeMS: info.Target.TotalTimeMS},
		FirstRun:   info.FirstRun,
	}, &resp); err != nil {
		c.latch(err)
		return
	}
	c.id, c.name, c.gen = resp.SessionID, resp.Policy, resp.SnapshotGen
}

// Decide implements sim.Policy. After a latched error it degrades to
// the fail-safe configuration, the same guard a local policy falls back
// to when it cannot optimize.
func (c *Client) Decide(i int) sim.Decision {
	if c.err != nil {
		return sim.Decision{Config: hw.FailSafe()}
	}
	start := time.Now()
	var resp DecideResponse
	if err := c.post("/v1/decide", DecideRequest{SessionID: c.id, Index: i}, &resp); err != nil {
		c.latch(err)
		return sim.Decision{Config: hw.FailSafe()}
	}
	if c.OnDecideLatency != nil {
		c.OnDecideLatency(time.Since(start))
	}
	return resp.decision()
}

// Observe implements sim.Policy.
func (c *Client) Observe(o sim.Observation) {
	if c.err != nil {
		return
	}
	var resp OKResponse
	if err := c.post("/v1/observe", ObserveRequest{SessionID: c.id, Observation: toObservationWire(o)}, &resp); err != nil {
		c.latch(err)
	}
}

// Close drains and closes the session on the server. Safe to call
// without an open session.
func (c *Client) Close() error {
	if c.id == "" {
		return c.err
	}
	var resp OKResponse
	err := c.post("/v1/session/close", CloseRequest{SessionID: c.id}, &resp)
	c.id = ""
	if err != nil {
		c.latch(err)
	}
	return c.err
}

func (c *Client) latch(err error) {
	if c.err == nil {
		c.err = err
	}
}

// post sends req as JSON and decodes the 200 body into resp, retrying
// on 429 per the server's Retry-After hint.
func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	for attempt := 0; ; attempt++ {
		r, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if r.StatusCode == http.StatusTooManyRequests {
			c.Retries429++
			_, _ = io.Copy(io.Discard, r.Body)
			if err := r.Body.Close(); err != nil {
				return err
			}
			if attempt >= maxRetries {
				return fmt.Errorf("serve: %s still backpressured after %d retries", path, attempt)
			}
			time.Sleep(retryAfter(r.Header))
			continue
		}
		if r.StatusCode != http.StatusOK {
			var e ErrorResponse
			_ = json.NewDecoder(r.Body).Decode(&e)
			if err := r.Body.Close(); err != nil {
				return err
			}
			if e.Error == "" {
				e.Error = r.Status
			}
			return fmt.Errorf("serve: %s: %s", path, e.Error)
		}
		decErr := json.NewDecoder(r.Body).Decode(resp)
		if err := r.Body.Close(); err != nil && decErr == nil {
			decErr = err
		}
		return decErr
	}
}

// retryAfter parses a Retry-After seconds value, with a small default
// so a missing header still backs off.
func retryAfter(h http.Header) time.Duration {
	if v := h.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 50 * time.Millisecond
}

// Compile-time check: a Client is a drop-in policy.
var _ sim.Policy = (*Client)(nil)
