package serve

import (
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
)

// Wire types of the /v1 JSON API. Numbers ride as JSON floats:
// encoding/json emits the shortest representation that parses back to
// the identical float64, so a value survives the client→server→client
// round trip bit-for-bit — which is what lets a served session replay
// byte-identically to an in-process one (calibration feedback sees the
// exact measurements, not approximations).

// TargetWire is sim.Target on the wire.
type TargetWire struct {
	TotalInsts  float64 `json:"total_insts"`
	TotalTimeMS float64 `json:"total_time_ms"`
}

// SessionRequest opens a session: one client application's decision
// stream, with the run metadata a policy's Begin needs.
type SessionRequest struct {
	App        string     `json:"app"`
	NumKernels int        `json:"num_kernels"`
	Target     TargetWire `json:"target"`
	FirstRun   bool       `json:"first_run"`
}

// SessionResponse returns the server-assigned session id, the policy
// that will serve it, and the model snapshot generation it is pinned to.
type SessionResponse struct {
	SessionID   string `json:"session_id"`
	Policy      string `json:"policy"`
	SnapshotGen uint64 `json:"snapshot_gen"`
}

// ConfigWire is hw.Config on the wire.
type ConfigWire struct {
	CPU int8 `json:"cpu"`
	NB  int8 `json:"nb"`
	GPU int8 `json:"gpu"`
	CUs int8 `json:"cus"`
}

func toConfigWire(c hw.Config) ConfigWire {
	return ConfigWire{CPU: int8(c.CPU), NB: int8(c.NB), GPU: int8(c.GPU), CUs: c.CUs}
}

func (w ConfigWire) config() hw.Config {
	return hw.Config{CPU: hw.CPUPState(w.CPU), NB: hw.NBState(w.NB), GPU: hw.GPUState(w.GPU), CUs: w.CUs}
}

// EstimateWire is the predictor's estimate for the chosen
// configuration.
type EstimateWire struct {
	TimeMS    float64 `json:"time_ms"`
	GPUPowerW float64 `json:"gpu_power_w"`
}

// DecideRequest asks for the configuration decision of kernel
// invocation Index (0-based) in the session's run.
type DecideRequest struct {
	SessionID string `json:"session_id"`
	Index     int    `json:"index"`
}

// DecideResponse carries the policy's decision plus its observability
// metadata — everything sim.Decision holds, so a remote client can
// stand in for the policy in a sim.Engine run.
type DecideResponse struct {
	Config      ConfigWire   `json:"config"`
	Est         EstimateWire `json:"est"`
	Evals       int          `json:"evals"`
	SearchIters int          `json:"search_iters"`
	Horizon     int          `json:"horizon"`
	Fallback    string       `json:"fallback,omitempty"`
	SnapshotGen uint64       `json:"snapshot_gen"`
}

func toDecideResponse(d sim.Decision, gen uint64) DecideResponse {
	return DecideResponse{
		Config:      toConfigWire(d.Config),
		Est:         EstimateWire{TimeMS: d.PredTimeMS, GPUPowerW: d.PredGPUPowerW},
		Evals:       d.Evals,
		SearchIters: d.SearchIters,
		Horizon:     d.Horizon,
		Fallback:    d.Fallback,
		SnapshotGen: gen,
	}
}

func (r DecideResponse) decision() sim.Decision {
	return sim.Decision{
		Config:        r.Config.config(),
		Evals:         r.Evals,
		SearchIters:   r.SearchIters,
		Horizon:       r.Horizon,
		Fallback:      r.Fallback,
		PredTimeMS:    r.Est.TimeMS,
		PredGPUPowerW: r.Est.GPUPowerW,
	}
}

// ObservationWire is sim.Observation on the wire — the measured outcome
// the client feeds back after running a kernel at the decided
// configuration.
type ObservationWire struct {
	Index      int        `json:"index"`
	Counters   []float64  `json:"counters"`
	Insts      float64    `json:"insts"`
	TimeMS     float64    `json:"time_ms"`
	GPUPowerW  float64    `json:"gpu_power_w"`
	CPUPowerW  float64    `json:"cpu_power_w"`
	Config     ConfigWire `json:"config"`
	OverheadMS float64    `json:"overhead_ms"`
	TempC      float64    `json:"temp_c"`
}

func toObservationWire(o sim.Observation) ObservationWire {
	return ObservationWire{
		Index:      o.Index,
		Counters:   append([]float64(nil), o.Counters[:]...),
		Insts:      o.Insts,
		TimeMS:     o.TimeMS,
		GPUPowerW:  o.GPUPowerW,
		CPUPowerW:  o.CPUPowerW,
		Config:     toConfigWire(o.Config),
		OverheadMS: o.OverheadMS,
		TempC:      o.TempC,
	}
}

func (w ObservationWire) observation() sim.Observation {
	var cs counters.Set
	copy(cs[:], w.Counters)
	return sim.Observation{
		Index:      w.Index,
		Counters:   cs,
		Insts:      w.Insts,
		TimeMS:     w.TimeMS,
		GPUPowerW:  w.GPUPowerW,
		CPUPowerW:  w.CPUPowerW,
		Config:     w.Config.config(),
		OverheadMS: w.OverheadMS,
		TempC:      w.TempC,
	}
}

// ObserveRequest feeds one observation into the session's policy.
type ObserveRequest struct {
	SessionID   string          `json:"session_id"`
	Observation ObservationWire `json:"observation"`
}

// CloseRequest drains and closes a session.
type CloseRequest struct {
	SessionID string `json:"session_id"`
}

// ReloadRequest swaps the serving model: with Path, load a gob model
// written by cmd/train; without, retrain in-process (if the server was
// configured with a trainer).
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the newly installed snapshot.
type ReloadResponse struct {
	SnapshotGen uint64 `json:"snapshot_gen"`
	Model       string `json:"model"`
}

// OKResponse is the generic acknowledgement body.
type OKResponse struct {
	OK bool `json:"ok"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
