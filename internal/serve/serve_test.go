// Tests for the concurrent decision service. The load-bearing one is
// the golden parity test: a session served over HTTP, with concurrent
// sibling sessions, must produce a replay byte-identical to a local
// single-threaded run of the same policy stack — the determinism
// contract extended across sessions. Everything else (backpressure,
// snapshot pinning, drain) defends the machinery that makes that hold.
package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/trace"
)

// testBench is the workload every serve test replays: irregular
// non-repeating, so the MPC actually exercises pattern fallback paths.
const testBench = "Spmv"

// testStack returns a simulator, an app, its baseline target and a
// shared oracle model — the cheapest deterministic model that still
// drives the full MPC stack.
func testStack(t *testing.T) (*mpcdvfs.System, *mpcdvfs.App, mpcdvfs.Target, mpcdvfs.Model) {
	t.Helper()
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName(testBench)
	if err != nil {
		t.Fatal(err)
	}
	_, target, err := sys.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	return sys, &app, target, sys.NewOracle(&app)
}

// goldenReplay runs the app locally, single-threaded, under a fresh MPC
// over model, and returns the replay as JSONL bytes.
func goldenReplay(t *testing.T, sys *mpcdvfs.System, app *mpcdvfs.App, target mpcdvfs.Target, model mpcdvfs.Model) []byte {
	t.Helper()
	res, err := sys.Run(app, sys.NewMPC(model), target, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a decision server over model with the same
// policy stack goldenReplay uses, mounted on an httptest server.
func newTestServer(t *testing.T, sys *mpcdvfs.System, model mpcdvfs.Model, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	cfg.Model = model
	if cfg.NewPolicy == nil {
		cfg.NewPolicy = func(m predict.Model) sim.Policy { return sys.NewMPC(m) }
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})
	return srv, ts
}

// post is a raw HTTP helper for protocol-level assertions the
// serve.Client would hide (429s, error statuses, headers).
func post(t *testing.T, base, path string, req any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestRemoteReplayMatchesLocalGolden is the determinism contract over
// the wire: several sessions replay the same workload concurrently
// through serve.Client, and every one of them must be byte-identical to
// the local single-threaded golden. Run under -race this also proves
// the sessions share nothing unsynchronized.
func TestRemoteReplayMatchesLocalGolden(t *testing.T) {
	sys, app, target, model := testStack(t)
	golden := goldenReplay(t, sys, app, target, model)

	_, ts := newTestServer(t, sys, model, serve.Config{})

	const sessions = 4
	replays := make([][]byte, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(ts.URL)
			res, err := sys.Run(app, c, target, true)
			if err == nil {
				err = c.Close()
			}
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, res); err != nil {
				errs[i] = err
				return
			}
			replays[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !bytes.Equal(replays[i], golden) {
			t.Fatalf("session %d replay diverges from local golden:\nremote: %s\nlocal:  %s",
				i, firstDiffLine(replays[i], golden), firstDiffLine(golden, replays[i]))
		}
	}
}

// firstDiffLine returns the first line of a that differs from b, for
// readable failure output.
func firstDiffLine(a, b []byte) []byte {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range al {
		if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
			return al[i]
		}
	}
	return nil
}

// TestSnapshotPinnedAcrossReload installs a new snapshot generation in
// the middle of a session's decision stream: the session must finish on
// the generation it started with (its replay stays golden), while a
// session opened after the install sees the new generation.
func TestSnapshotPinnedAcrossReload(t *testing.T) {
	sys, app, target, model := testStack(t)
	golden := goldenReplay(t, sys, app, target, model)

	srv, ts := newTestServer(t, sys, model, serve.Config{})

	c := serve.NewClient(ts.URL)
	decided := 0
	c.OnDecideLatency = func(time.Duration) {
		decided++
		if decided == 3 {
			// Same model, new generation: pinning is observable through
			// the generation numbers without forking decision streams.
			srv.Install(model, "midstream")
		}
	}
	res, err := sys.Run(app, c, target, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SnapshotGen(); got != 1 {
		t.Fatalf("mid-reload session reports snapshot gen %d, want pinned 1", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatal("session that spanned a snapshot install diverged from golden")
	}

	c2 := serve.NewClient(ts.URL)
	if _, err := sys.Run(app, c2, target, true); err != nil {
		t.Fatal(err)
	}
	if got := c2.SnapshotGen(); got != 2 {
		t.Fatalf("post-install session reports snapshot gen %d, want 2", got)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// fakeModel is the cheapest predict.Model; backpressure tests don't
// care what it predicts.
type fakeModel struct{}

func (fakeModel) Name() string { return "fake" }
func (fakeModel) PredictKernel(counters.Set, hw.Config) predict.Estimate {
	return predict.Estimate{TimeMS: 1, GPUPowerW: 10}
}

// blockingPolicy parks Decide on a gate so a test can hold a session's
// owner goroutine busy and fill its queue deterministically.
type blockingPolicy struct {
	gate    chan struct{}
	started chan struct{}
}

func (p *blockingPolicy) Name() string      { return "blocking" }
func (p *blockingPolicy) Begin(sim.RunInfo) {}
func (p *blockingPolicy) Decide(int) sim.Decision {
	p.started <- struct{}{}
	<-p.gate
	return sim.Decision{Config: hw.FailSafe()}
}
func (p *blockingPolicy) Observe(sim.Observation) {}

// TestBackpressure429AndDrain pins the bounded-queue contract: with the
// owner goroutine held busy and the queue full, further decides are
// rejected with 429 + Retry-After (and counted); once the gate opens,
// every accepted operation completes — nothing queued is dropped.
func TestBackpressure429AndDrain(t *testing.T) {
	pol := &blockingPolicy{gate: make(chan struct{}), started: make(chan struct{}, 64)}
	srv, err := serve.New(serve.Config{
		Model:      fakeModel{},
		NewPolicy:  func(predict.Model) sim.Policy { return pol },
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	srv.Instrument(reg)
	backpress := reg.Counter("mpcdvfs_serve_backpressure_total",
		"Requests rejected with 429 because a session queue was full.").With()
	depthOf := reg.Gauge("mpcdvfs_serve_queue_depth",
		"Queued operations per session.", "session")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown()
		ts.Close()
	})

	var sresp serve.SessionResponse
	code, _, body := post(t, ts.URL, "/v1/session", serve.SessionRequest{App: "x", NumKernels: 8, FirstRun: true})
	if code != http.StatusOK {
		t.Fatalf("session open: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &sresp); err != nil {
		t.Fatal(err)
	}

	// Hold the owner goroutine inside Decide #0...
	results := make(chan int, 2)
	go func() {
		code, _, _ := post(t, ts.URL, "/v1/decide", serve.DecideRequest{SessionID: sresp.SessionID, Index: 0})
		results <- code
	}()
	<-pol.started

	// ...queue decide #1 behind it (fills the depth-1 queue). The depth
	// gauge flips to 1 the instant the enqueue lands, which makes the
	// rejection below deterministic rather than a race with the probe.
	go func() {
		code, _, _ := post(t, ts.URL, "/v1/decide", serve.DecideRequest{SessionID: sresp.SessionID, Index: 1})
		results <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for depthOf.With(sresp.SessionID).Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued decide never showed up in the depth gauge")
		}
		time.Sleep(time.Millisecond)
	}

	// ...and offer decide #2: the queue is provably full, so this must
	// bounce with 429.
	code, hdr, _ := post(t, ts.URL, "/v1/decide", serve.DecideRequest{SessionID: sresp.SessionID, Index: 2})
	if code != http.StatusTooManyRequests {
		t.Fatalf("decide against a full queue: %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if backpress.Value() == 0 {
		t.Fatal("backpressure counter did not increment on 429")
	}

	// Open the gate: the held decide and the queued one must both
	// complete with 200 — graceful drain of accepted work.
	close(pol.gate)
	for i := 0; i < 2; i++ {
		select {
		case code := <-results:
			if code != http.StatusOK {
				t.Fatalf("accepted decide finished with %d, want 200", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("accepted decide never completed after gate opened")
		}
	}

	// Close drains and removes the session; later decides are 404.
	if code, _, _ := post(t, ts.URL, "/v1/session/close", serve.CloseRequest{SessionID: sresp.SessionID}); code != http.StatusOK {
		t.Fatalf("close: %d", code)
	}
	if code, _, _ := post(t, ts.URL, "/v1/decide", serve.DecideRequest{SessionID: sresp.SessionID, Index: 3}); code != http.StatusNotFound {
		t.Fatalf("decide after close: %d, want 404", code)
	}
}

// TestShutdownDrainsAndRejects pins the drain contract: Shutdown waits
// for every owner goroutine, empties the session table, and the server
// refuses new sessions afterwards.
func TestShutdownDrainsAndRejects(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Model:     fakeModel{},
		NewPolicy: func(predict.Model) sim.Policy { return &nopPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		if code, _, _ := post(t, ts.URL, "/v1/session", serve.SessionRequest{App: "x", NumKernels: 4}); code != http.StatusOK {
			t.Fatalf("session open %d: %d", i, code)
		}
	}
	if got := srv.SessionCount(); got != 3 {
		t.Fatalf("SessionCount = %d, want 3", got)
	}
	srv.Shutdown()
	if got := srv.SessionCount(); got != 0 {
		t.Fatalf("SessionCount after Shutdown = %d, want 0", got)
	}
	if code, _, _ := post(t, ts.URL, "/v1/session", serve.SessionRequest{App: "x", NumKernels: 4}); code != http.StatusServiceUnavailable {
		t.Fatalf("session open after Shutdown: %d, want 503", code)
	}
}

type nopPolicy struct{}

func (*nopPolicy) Name() string            { return "nop" }
func (*nopPolicy) Begin(sim.RunInfo)       {}
func (*nopPolicy) Decide(int) sim.Decision { return sim.Decision{Config: hw.FailSafe()} }
func (*nopPolicy) Observe(sim.Observation) {}

// TestReloadEndpoint covers both /reload modes: without a trainer or a
// path the server answers 501; with a trainer it installs the retrained
// model as the next generation.
func TestReloadEndpoint(t *testing.T) {
	bare, err := serve.New(serve.Config{
		Model:     fakeModel{},
		NewPolicy: func(predict.Model) sim.Policy { return &nopPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	tsBare := httptest.NewServer(bare.Handler())
	t.Cleanup(func() { bare.Shutdown(); tsBare.Close() })
	if code, _, _ := post(t, tsBare.URL, "/reload", serve.ReloadRequest{}); code != http.StatusNotImplemented {
		t.Fatalf("reload without trainer: %d, want 501", code)
	}

	trained, err := serve.New(serve.Config{
		Model:     fakeModel{},
		NewPolicy: func(predict.Model) sim.Policy { return &nopPolicy{} },
		Train:     func() (predict.Model, error) { return fakeModel{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	tsTrained := httptest.NewServer(trained.Handler())
	t.Cleanup(func() { trained.Shutdown(); tsTrained.Close() })
	code, _, body := post(t, tsTrained.URL, "/reload", serve.ReloadRequest{})
	if code != http.StatusOK {
		t.Fatalf("reload with trainer: %d %s", code, body)
	}
	var resp serve.ReloadResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SnapshotGen != 2 || trained.CurrentSnapshot().Gen != 2 {
		t.Fatalf("reload installed gen %d (server at %d), want 2", resp.SnapshotGen, trained.CurrentSnapshot().Gen)
	}
}

// TestSessionValidation pins the cheap protocol guards.
func TestSessionValidation(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Model:     fakeModel{},
		NewPolicy: func(predict.Model) sim.Policy { return &nopPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Shutdown(); ts.Close() })

	if code, _, _ := post(t, ts.URL, "/v1/session", serve.SessionRequest{App: "x", NumKernels: 0}); code != http.StatusBadRequest {
		t.Fatalf("num_kernels=0: %d, want 400", code)
	}
	if code, _, _ := post(t, ts.URL, "/v1/decide", serve.DecideRequest{SessionID: "nope"}); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/decide: %d, want 405", resp.StatusCode)
	}
}
