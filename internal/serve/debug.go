package serve

import (
	"html/template"
	"net/http"
	"sort"
	"strings"

	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/telemetry"
)

// debugRecentSpans bounds the span tail /debug/mpc inlines; the full
// ring is always available from /debug/trace.
const debugRecentSpans = 64

// DebugSession is one live session row of /debug/mpc.
type DebugSession struct {
	SessionID   string `json:"session_id"`
	Policy      string `json:"policy"`
	App         string `json:"app"`
	SnapshotGen uint64 `json:"snapshot_gen"`
	QueueLen    int    `json:"queue_len"`
}

// DebugState is the /debug/mpc body: one self-contained view of the
// serving process — live sessions, the installed model, per-generation
// prediction quality, the energy/decision ledger, and the tail of the
// span ring.
type DebugState struct {
	SnapshotGen  uint64                   `json:"snapshot_gen"`
	SnapshotTag  string                   `json:"snapshot_tag"`
	Model        string                   `json:"model"`
	Sessions     []DebugSession           `json:"sessions"`
	Models       []telemetry.CellSnapshot `json:"models"`
	Accounting   telemetry.Snapshot       `json:"accounting"`
	TraceSampleN int                      `json:"trace_sample_n"`
	TraceRoots   uint64                   `json:"trace_roots"`
	TraceSampled uint64                   `json:"trace_sampled"`
	Batch        *batch.Stats             `json:"batch,omitempty"`
	RecentSpans  []telemetry.SpanRecord   `json:"recent_spans"`
}

// debugState assembles the current DebugState. Only called when the
// server has a telemetry hub.
func (s *Server) debugState() DebugState {
	hub := s.cfg.Telemetry
	snap := s.snap.Load()
	st := DebugState{
		SnapshotGen:  snap.Gen,
		SnapshotTag:  snap.Tag,
		Model:        snap.Model.Name(),
		Models:       hub.Scoreboard.Snapshot(),
		Accounting:   hub.Accounting.Snapshot(),
		TraceSampleN: hub.Tracer.SampleN(),
	}
	st.TraceRoots, st.TraceSampled = hub.Tracer.Stats()
	if c := s.cfg.Batch; c != nil {
		bs := c.Stats()
		st.Batch = &bs
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sess := s.sessions[id]
		st.Sessions = append(st.Sessions, DebugSession{
			SessionID:   id,
			Policy:      sess.name,
			App:         sess.app,
			SnapshotGen: sess.snap.Gen,
			QueueLen:    len(sess.ch),
		})
	}
	s.mu.Unlock()

	spans := hub.Tracer.Snapshot(nil)
	if len(spans) > debugRecentSpans {
		spans = spans[len(spans)-debugRecentSpans:]
	}
	st.RecentSpans = spans
	return st
}

var debugMPCTmpl = template.Must(template.New("mpc").Funcs(template.FuncMap{
	// us converts span nanoseconds to microseconds for the HTML view.
	"us": func(ns int64) float64 { return float64(ns) / 1e3 },
}).Parse(`<!doctype html>
<title>mpcdvfs /debug/mpc</title>
<style>body{font-family:monospace}table{border-collapse:collapse}td,th{border:1px solid #999;padding:2px 8px;text-align:left}</style>
<h1>mpcdvfs serving state</h1>
<p>model <b>{{.Model}}</b> gen <b>{{.SnapshotGen}}</b> ({{.SnapshotTag}})
&mdash; trace 1/{{.TraceSampleN}}: {{.TraceSampled}}/{{.TraceRoots}} decisions sampled</p>
<h2>sessions ({{len .Sessions}})</h2>
<table><tr><th>id</th><th>policy</th><th>app</th><th>gen</th><th>queue</th></tr>
{{range .Sessions}}<tr><td>{{.SessionID}}</td><td>{{.Policy}}</td><td>{{.App}}</td><td>{{.SnapshotGen}}</td><td>{{.QueueLen}}</td></tr>
{{end}}</table>
<h2>model scoreboard</h2>
<table><tr><th>gen</th><th>app</th><th>obs</th><th>time MAPE</th><th>power MAPE</th><th>time bias</th><th>drifted</th></tr>
{{range .Models}}<tr><td>{{.Gen}}</td><td>{{.App}}</td><td>{{.Observations}}</td><td>{{printf "%.4f" .TimeMAPE}}</td><td>{{printf "%.4f" .PowerMAPE}}</td><td>{{printf "%+.4f" .TimeBias}}</td><td>{{.Drifted}}</td></tr>
{{end}}</table>
<h2>energy ledger</h2>
<table><tr><th>session</th><th>decisions</th><th>fallbacks</th><th>predicted mJ</th><th>measured mJ</th><th>queue p99 ms</th></tr>
{{range .Accounting.Sessions}}<tr><td>{{.SessionID}}</td><td>{{.Decisions}}</td><td>{{.Fallbacks}}</td><td>{{printf "%.1f" .PredictedEnergyMJ}}</td><td>{{printf "%.1f" .MeasuredEnergyMJ}}</td><td>{{printf "%.3f" .QueueWaitP99MS}}</td></tr>
{{end}}</table>
<h2>recent spans ({{len .RecentSpans}})</h2>
<table><tr><th>trace</th><th>span</th><th>parent</th><th>name</th><th>session</th><th>index</th><th>&micro;s</th></tr>
{{range .RecentSpans}}<tr><td>{{.TraceID}}</td><td>{{.SpanID}}</td><td>{{.ParentID}}</td><td>{{.Name}}</td><td>{{.Session}}</td><td>{{.Index}}</td><td>{{printf "%.1f" (us .DurNS)}}</td></tr>
{{end}}</table>
`))

// handleDebugMPC serves the full introspection view: JSON by default,
// minimal HTML with ?format=html (or an Accept header preferring it).
func (s *Server) handleDebugMPC(w http.ResponseWriter, r *http.Request) {
	st := s.debugState()
	wantsHTML := r.URL.Query().Get("format") == "html" ||
		strings.Contains(r.Header.Get("Accept"), "text/html")
	if !wantsHTML {
		s.count("debug_mpc", http.StatusOK)
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := debugMPCTmpl.Execute(w, st); err != nil {
		// Execute only fails once the body started streaming; the
		// connection is unusable, nothing more to do.
		return
	}
	s.count("debug_mpc", http.StatusOK)
}

// handleDebugModels serves the model-quality scoreboard alone — the
// endpoint a drift watcher polls.
func (s *Server) handleDebugModels(w http.ResponseWriter, r *http.Request) {
	hub := s.cfg.Telemetry
	s.count("debug_models", http.StatusOK)
	writeJSON(w, http.StatusOK, struct {
		SnapshotGen uint64                   `json:"snapshot_gen"`
		Cells       []telemetry.CellSnapshot `json:"cells"`
	}{SnapshotGen: s.gen.Load(), Cells: hub.Scoreboard.Snapshot()})
}

// handleDebugLearn serves the continuous trainer's state: by default
// the Status JSON (reservoir fill, round/promotion/rejection counts,
// last holdout MAPEs); with ?format=samples, the current reservoir
// contents as a JSONL snapshot — the format learn.ReadSnapshot parses,
// so an operator can capture live training data for offline replay.
func (s *Server) handleDebugLearn(w http.ResponseWriter, r *http.Request) {
	tr := s.cfg.Learn
	if r.URL.Query().Get("format") == "samples" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.count("debug_learn", http.StatusOK)
		// An encode error means the client went away mid-stream.
		_ = learn.WriteSnapshot(w, tr.SnapshotSamples())
		return
	}
	s.count("debug_learn", http.StatusOK)
	writeJSON(w, http.StatusOK, struct {
		SnapshotGen uint64       `json:"snapshot_gen"`
		Learn       learn.Status `json:"learn"`
	}{SnapshotGen: s.gen.Load(), Learn: tr.Status()})
}

// handleDebugTrace dumps the span ring as JSONL, oldest first — the
// same format telemetry.ReadSpansJSONL parses, so clients (cmd/loadgen)
// can reconstruct per-phase latency breakdowns.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	recs := s.cfg.Telemetry.Tracer.Snapshot(nil)
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.count("debug_trace", http.StatusOK)
	_ = telemetry.WriteSpansJSONL(w, recs)
}
