// The cross-session batching golden: concurrent sessions served with
// the epoch coordinator fusing their sweeps must produce replays
// byte-identical to the same sessions served direct — and both must
// match the local single-threaded golden. Run under -race this also
// proves the coordinator shares nothing unsynchronized with sessions.
package serve_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/trace"
)

var (
	batchRFOnce sync.Once
	batchRF     *predict.RandomForest
	batchRFErr  error
)

// batchTrainedRF trains the one small forest the batching goldens
// share. The oracle model the other serve tests use has no compiled
// batched path, so this wall needs a real forest.
func batchTrainedRF(t *testing.T) *predict.RandomForest {
	t.Helper()
	batchRFOnce.Do(func() {
		opt := predict.DefaultTrainOptions(42)
		opt.NumKernels = 40 // keep unit tests fast
		batchRF, batchRFErr = predict.TrainRandomForest(opt)
	})
	if batchRFErr != nil {
		t.Fatal(batchRFErr)
	}
	return batchRF
}

// concurrentReplays runs n concurrent sessions against base and returns
// each session's replay bytes.
func concurrentReplays(t *testing.T, sys *mpcdvfs.System, app *mpcdvfs.App, target mpcdvfs.Target, base string, n int) [][]byte {
	t.Helper()
	replays := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(base)
			res, err := sys.Run(app, c, target, true)
			if err == nil {
				err = c.Close()
			}
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, res); err != nil {
				errs[i] = err
				return
			}
			replays[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	return replays
}

// TestBatchedReplaysMatchDirectGolden is ISSUE 10's determinism
// contract: 4 concurrent sessions replayed twice — once through a
// direct server, once through a server whose sessions submit sweeps to
// an epoch coordinator (a wide window so sweeps genuinely fuse) — must
// all be byte-identical to the local single-threaded golden.
func TestBatchedReplaysMatchDirectGolden(t *testing.T) {
	sys, app, target, _ := testStack(t)
	model := batchTrainedRF(t)
	golden := goldenReplay(t, sys, app, target, model)

	const sessions = 4

	_, direct := newTestServer(t, sys, model, serve.Config{})
	for i, rep := range concurrentReplays(t, sys, app, target, direct.URL, sessions) {
		if !bytes.Equal(rep, golden) {
			t.Fatalf("direct session %d diverges from local golden: %s",
				i, firstDiffLine(rep, golden))
		}
	}

	coord := batch.New(batch.Config{Window: 500 * time.Microsecond, MaxFuse: sessions})
	_, batched := newTestServer(t, sys, model, serve.Config{
		Batch: coord,
		NewPolicy: func(m predict.Model) sim.Policy {
			return sys.NewMPC(m, mpcdvfs.WithSweepSubmitter(coord.Submit))
		},
	})
	for i, rep := range concurrentReplays(t, sys, app, target, batched.URL, sessions) {
		if !bytes.Equal(rep, golden) {
			t.Fatalf("batched session %d diverges from local golden: %s",
				i, firstDiffLine(rep, golden))
		}
	}
	if st := coord.Stats(); st.Fused == 0 {
		t.Fatalf("coordinator fused nothing — the batched run never batched: %+v", st)
	}
}

// TestShutdownStopsCoordinator proves the server owns the coordinator
// lifecycle: Shutdown drains sessions first, then stops the
// coordinator, and a subsequent submit is rejected rather than
// stranded.
func TestShutdownStopsCoordinator(t *testing.T) {
	sys, app, target, _ := testStack(t)
	model := batchTrainedRF(t)

	coord := batch.New(batch.Config{})
	srv, ts := newTestServer(t, sys, model, serve.Config{
		Batch: coord,
		NewPolicy: func(m predict.Model) sim.Policy {
			return sys.NewMPC(m, mpcdvfs.WithSweepSubmitter(coord.Submit))
		},
	})
	c := serve.NewClient(ts.URL)
	if _, err := sys.Run(app, c, target, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown deadlocked with a coordinator attached")
	}
	rs := predict.NewRemoteSweep(nil, model, coord.Submit)
	dst := make([]predict.Estimate, sys.Space().Size())
	if rs.PredictSpace(app.Kernels[0].Counters(), sys.Space(), dst) {
		t.Fatal("stopped coordinator served a sweep after Shutdown")
	}
}
