// Package serve turns the MPC policy stack into a concurrent decision
// service: many client applications stream their kernel launches to one
// process, each over its own session, and get back per-kernel hardware
// configurations with predicted time/power — the paper's controller as
// a multi-tenant inference server.
//
// # Session ownership model
//
// Each session owns one policy instance (with its tracker, pattern
// extractor and calibration state), and that state is touched by
// exactly one goroutine, which consumes a bounded FIFO queue of
// operations. The determinism contract of the simulator therefore
// extends across sessions, not within one: a session's decision stream
// is byte-identical to a single-threaded replay of the same workload
// (golden-tested), no matter how many sibling sessions run
// concurrently; concurrency only exists between sessions, which share
// nothing mutable but internally synchronized structures (sharded
// prediction caches, pooled sweep arenas).
//
// # Snapshot lifecycle
//
// The serving model lives behind an atomic pointer. A session pins the
// snapshot current at creation and keeps it for life — /reload installs
// a new generation without pausing anyone: new sessions see the new
// model, existing sessions finish on the one they started with, and the
// old snapshot is garbage once its last session closes. Policy state
// never mixes models, which would silently break calibration.
//
// # Backpressure and drain
//
// Session queues are bounded. A full queue rejects with HTTP 429 and a
// Retry-After hint instead of blocking the handler; closing a session
// (or shutting the server down) drains queued operations to completion
// before the owner goroutine exits, so accepted work is never dropped.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// DefaultQueueDepth bounds each session's operation queue. A
// closed-loop client has at most one operation in flight, so depth is
// burst absorption, not throughput; small keeps backpressure prompt.
const DefaultQueueDepth = 16

// Snapshot is one immutable generation of the serving model.
type Snapshot struct {
	Gen   uint64
	Model predict.Model
	Tag   string // provenance: file path, "trained seed=N", ...
}

// Config configures a Server.
type Config struct {
	// Model is the initial serving model (generation 1). Required.
	Model predict.Model
	// Tag describes Model's provenance (shown in /reload responses).
	Tag string
	// NewPolicy builds one policy instance per session from a snapshot's
	// model. Required. It must build the exact stack a local replay
	// would use — that identity is what the golden parity test pins.
	NewPolicy func(m predict.Model) sim.Policy
	// Train, when set, lets /reload without a path retrain in-process.
	Train func() (predict.Model, error)
	// Load reads a model for /reload with a path; nil uses gob models
	// written by cmd/train.
	Load func(path string) (predict.Model, error)
	// QueueDepth bounds each session's operation queue (<= 0 uses
	// DefaultQueueDepth).
	QueueDepth int
	// Telemetry, when set, deep-instruments the server: every decision
	// runs under a trace root (sampled per the hub's tracer), Observe
	// ground truth feeds the per-generation model scoreboard, the
	// energy/decision ledger fills, and Handler additionally mounts the
	// /debug/mpc, /debug/models and /debug/trace endpoints. Nil keeps
	// the serving path telemetry-free.
	Telemetry *telemetry.Hub
	// Learn, when set, closes the learning loop: every /v1/observe
	// ground-truth tuple is offered to the trainer's reservoir, gated
	// promotions publish through Install exactly like an operator
	// /reload, promoted generations get their holdout MAPE as drift
	// baseline, and — when Telemetry is also set — the scoreboard's
	// drift rising edge triggers an immediate training round. Handler
	// additionally mounts /debug/learn. serve.New does the binding; the
	// caller only constructs the trainer and decides whether to Start
	// its periodic loop.
	Learn *learn.Trainer
	// Batch, when set, is the cross-session decision batching
	// coordinator whose lifecycle the server owns: Shutdown stops it
	// after every session drains, so no parked sweep request is ever
	// stranded. Wiring the coordinator's Submit into policies is
	// NewPolicy's job (policy.WithSweepSubmitter / PPK.SetSweepSubmitter)
	// — the server only sequences the shutdown and exposes its stats in
	// /debug/mpc.
	Batch *batch.Coordinator
}

// Server is the concurrent decision service. Create with New, mount
// Handler into an HTTP server, and Shutdown to drain.
type Server struct {
	cfg  Config
	snap atomic.Pointer[Snapshot]
	gen  atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	draining bool
	wg       sync.WaitGroup

	m atomic.Pointer[serveMetrics]
}

type serveMetrics struct {
	latency   *metrics.Histogram
	requests  *metrics.CounterVec
	active    *metrics.Gauge
	backpress *metrics.Counter
	snapGen   *metrics.Gauge
	depth     *metrics.GaugeVec
}

// New validates cfg and returns a Server serving cfg.Model as
// generation 1.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("serve: Config.Model is required")
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("serve: Config.NewPolicy is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Load == nil {
		cfg.Load = loadGobModel
	}
	s := &Server{cfg: cfg, sessions: make(map[string]*session)}
	s.gen.Store(1)
	s.snap.Store(&Snapshot{Gen: 1, Model: cfg.Model, Tag: cfg.Tag})
	if tr := cfg.Learn; tr != nil {
		// Close the loop: gated candidates publish like /reload, the
		// promoted generation's drift baseline is its demonstrated
		// holdout MAPE, and scoreboard drift wakes the trainer.
		var baseline func(gen uint64, timeMAPE, powerMAPE float64)
		if cfg.Telemetry != nil {
			baseline = cfg.Telemetry.Scoreboard.SetBaseline
			cfg.Telemetry.Scoreboard.SetDriftHook(tr.NotifyDrift)
		}
		tr.Bind(s.Install, baseline)
	}
	return s, nil
}

func loadGobModel(path string) (predict.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := predict.LoadModel(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Instrument mirrors the server's counters into reg:
// decision latency, request outcomes, live session count, backpressure
// rejections, the installed snapshot generation, and per-session queue
// depth. Call before serving traffic.
func (s *Server) Instrument(reg *metrics.Registry) {
	m := &serveMetrics{
		latency: reg.Histogram("mpcdvfs_serve_decision_latency_ms",
			"Wall time of /v1/decide requests (queue wait + optimization), in milliseconds.",
			metrics.ExponentialBuckets(0.05, 2, 16)).With(),
		requests: reg.Counter("mpcdvfs_serve_requests_total",
			"Decision-service requests by endpoint and outcome.", "endpoint", "code"),
		active: reg.Gauge("mpcdvfs_serve_sessions_active",
			"Sessions currently open.").With(),
		backpress: reg.Counter("mpcdvfs_serve_backpressure_total",
			"Requests rejected with 429 because a session queue was full.").With(),
		snapGen: reg.Gauge("mpcdvfs_serve_snapshot_generation",
			"Generation of the model snapshot new sessions receive.").With(),
		depth: reg.Gauge("mpcdvfs_serve_queue_depth",
			"Queued operations per session.", "session"),
	}
	m.snapGen.Set(float64(s.gen.Load()))
	s.m.Store(m)
	if s.cfg.Learn != nil {
		s.cfg.Learn.Instrument(reg)
	}
}

// CurrentSnapshot returns the snapshot new sessions would pin now.
func (s *Server) CurrentSnapshot() *Snapshot { return s.snap.Load() }

// Install atomically publishes model as the next snapshot generation
// and returns it. In-flight sessions are untouched.
func (s *Server) Install(model predict.Model, tag string) uint64 {
	gen := s.gen.Add(1)
	s.snap.Store(&Snapshot{Gen: gen, Model: model, Tag: tag})
	if m := s.m.Load(); m != nil {
		m.snapGen.Set(float64(gen))
	}
	return gen
}

// SessionCount returns the number of open sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Shutdown drains every session and waits for their owner goroutines:
// queued operations complete, then the queues close. New sessions and
// new operations are rejected from the moment it is called.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	n := len(s.sessions)
	for id, sess := range s.sessions {
		sess.close() // order-independent: every session gets the same signal
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// All owner goroutines are gone, so no session can submit another
	// sweep; stopping the coordinator now drains any still-buffered
	// requests (each gets its Done send) without stranding a submitter.
	if c := s.cfg.Batch; c != nil {
		c.Stop()
	}
	if m := s.m.Load(); m != nil && n > 0 {
		m.active.Add(-float64(n))
	}
}

// Handler returns the /v1 decision API plus /reload, and — when the
// server has a telemetry hub — the /debug introspection endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/session", s.handleSession)
	mux.HandleFunc("/v1/session/close", s.handleClose)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/reload", s.handleReload)
	if s.cfg.Telemetry != nil {
		mux.HandleFunc("/debug/mpc", s.handleDebugMPC)
		mux.HandleFunc("/debug/models", s.handleDebugModels)
		mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	}
	if s.cfg.Learn != nil {
		mux.HandleFunc("/debug/learn", s.handleDebugLearn)
	}
	return mux
}

// writeJSON encodes v with the given status. Encode errors mean the
// client went away mid-response; nothing useful remains to be done with
// the connection, so they are dropped deliberately.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) count(endpoint string, status int) {
	if m := s.m.Load(); m != nil {
		m.requests.With(endpoint, strconv.Itoa(status)).Inc()
	}
}

func (s *Server) fail(w http.ResponseWriter, endpoint string, status int, msg string) {
	s.count(endpoint, status)
	writeJSON(w, status, ErrorResponse{Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		s.count("session", http.StatusBadRequest)
		return
	}
	if req.NumKernels <= 0 {
		s.fail(w, "session", http.StatusBadRequest, "num_kernels must be positive")
		return
	}
	snap := s.snap.Load()
	pol := s.cfg.NewPolicy(snap.Model)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.fail(w, "session", http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.nextID++
	id := "s" + strconv.FormatUint(s.nextID, 10)
	var depth *metrics.Gauge
	m := s.m.Load()
	if m != nil {
		depth = m.depth.With(id)
	}
	sess := newSession(id, pol, snap, s.cfg.QueueDepth, depth)
	sess.app = req.App
	if hub := s.cfg.Telemetry; hub != nil {
		sess.hub = hub
		sess.tc = hub.Tracer.NewContext(id)
	}
	s.sessions[id] = sess
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		sess.run()
	}()
	info := sim.RunInfo{
		AppName:    req.App,
		NumKernels: req.NumKernels,
		Target:     sim.Target{TotalInsts: req.Target.TotalInsts, TotalTimeMS: req.Target.TotalTimeMS},
		FirstRun:   req.FirstRun,
	}
	// The queue is empty and private at this point; Begin always fits.
	// The trace context is threaded on the owner goroutine, like all
	// policy mutation.
	_ = sess.enqueue(func() {
		if tr, ok := pol.(telemetry.Traceable); ok {
			tr.SetTraceContext(sess.tc)
		}
		pol.Begin(info)
	})

	if m != nil {
		m.active.Add(1)
	}
	s.count("session", http.StatusOK)
	writeJSON(w, http.StatusOK, SessionResponse{SessionID: id, Policy: sess.name, SnapshotGen: snap.Gen})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req DecideRequest
	if !decodeBody(w, r, &req) {
		s.count("decide", http.StatusBadRequest)
		return
	}
	sess, ok := s.lookup(req.SessionID)
	if !ok {
		s.fail(w, "decide", http.StatusNotFound, "unknown session "+req.SessionID)
		return
	}
	start := time.Now()
	reply := make(chan sim.Decision, 1)
	err := sess.enqueue(func() {
		// Queue wait = handler-side enqueue to owner-goroutine pickup.
		wait := time.Since(start)
		root := sess.tc.StartRoot(telemetry.SpanDecide, req.Index)
		sess.tc.RecordSince(telemetry.SpanQueue, start)
		d := sess.policy.Decide(req.Index)
		root.End()
		sess.noteDecision(req.Index, d, float64(wait)/float64(time.Millisecond))
		reply <- d
	})
	switch err {
	case nil:
	case errSessionFull:
		if m := s.m.Load(); m != nil {
			m.backpress.Inc()
		}
		w.Header().Set("Retry-After", "1")
		s.fail(w, "decide", http.StatusTooManyRequests, "session queue full")
		return
	default:
		s.fail(w, "decide", http.StatusGone, "session closed")
		return
	}
	d := <-reply
	if m := s.m.Load(); m != nil {
		m.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	s.count("decide", http.StatusOK)
	writeJSON(w, http.StatusOK, toDecideResponse(d, sess.snap.Gen))
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !decodeBody(w, r, &req) {
		s.count("observe", http.StatusBadRequest)
		return
	}
	sess, ok := s.lookup(req.SessionID)
	if !ok {
		s.fail(w, "observe", http.StatusNotFound, "unknown session "+req.SessionID)
		return
	}
	obs := req.Observation.observation()
	done := make(chan struct{})
	err := sess.enqueue(func() {
		sess.policy.Observe(obs)
		sess.noteObservation(obs)
		if tr := s.cfg.Learn; tr != nil {
			// The reservoir tap: every served ground-truth tuple is
			// training signal, whether or not it scored a prediction.
			// Trainer.Add is internally synchronized and allocation-free
			// at steady state, so the owner goroutine barely notices.
			tr.Add(predict.Sample{Counters: obs.Counters, Config: obs.Config,
				TimeMS: obs.TimeMS, GPUPowerW: obs.GPUPowerW})
		}
		close(done)
	})
	switch err {
	case nil:
	case errSessionFull:
		if m := s.m.Load(); m != nil {
			m.backpress.Inc()
		}
		w.Header().Set("Retry-After", "1")
		s.fail(w, "observe", http.StatusTooManyRequests, "session queue full")
		return
	default:
		s.fail(w, "observe", http.StatusGone, "session closed")
		return
	}
	<-done
	s.count("observe", http.StatusOK)
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	var req CloseRequest
	if !decodeBody(w, r, &req) {
		s.count("close", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if ok {
		delete(s.sessions, req.SessionID)
	}
	s.mu.Unlock()
	if !ok {
		s.fail(w, "close", http.StatusNotFound, "unknown session "+req.SessionID)
		return
	}
	sess.close()
	<-sess.done // drained
	if m := s.m.Load(); m != nil {
		m.active.Add(-1)
	}
	s.count("close", http.StatusOK)
	writeJSON(w, http.StatusOK, OKResponse{OK: true})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if !decodeBody(w, r, &req) {
		s.count("reload", http.StatusBadRequest)
		return
	}
	var (
		model predict.Model
		tag   string
		err   error
	)
	if req.Path != "" {
		model, err = s.cfg.Load(req.Path)
		tag = req.Path
	} else if s.cfg.Train != nil {
		model, err = s.cfg.Train()
		tag = "retrained"
	} else {
		s.fail(w, "reload", http.StatusNotImplemented, "no path given and server has no trainer")
		return
	}
	if err != nil {
		s.fail(w, "reload", http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	gen := s.Install(model, tag)
	s.count("reload", http.StatusOK)
	writeJSON(w, http.StatusOK, ReloadResponse{SnapshotGen: gen, Model: model.Name()})
}
