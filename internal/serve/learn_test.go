// Learning-loop integration tests — the safety wall for continuous
// retraining. The load-bearing assertions: (1) with the trainer active
// and promoting new generations mid-stream, sessions pinned at their
// creation generation still replay byte-identical to the untrained
// golden (run under -race in CI); (2) the full recovery story holds
// end-to-end — a degraded generation flags drift, the drift edge
// reaches the trainer, the holdout gate rejects a poisoned candidate
// and accepts a good one, and the promoted generation's windowed MAPE
// is back under the drift threshold.
package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpcdvfs"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
	"mpcdvfs/internal/serve"
	"mpcdvfs/internal/telemetry"
	"mpcdvfs/internal/trace"
)

// newTestTrainer builds a trainer shaped for test workloads: a small
// fast forest, a reservoir the Spmv replays can fill, and a gate loose
// enough for a candidate trained on a few dozen live samples but far
// below the error of a poisoned one.
func newTestTrainer(build func(train []predict.Sample, fcfg rf.Config, workers int) (*predict.RandomForest, error)) *learn.Trainer {
	fcfg := predict.OnlineForestConfig(33)
	fcfg.NumTrees = 8
	return learn.New(learn.Config{
		Seed:           33,
		Forest:         fcfg,
		ReservoirCap:   1024,
		MinSamples:     25,
		HoldoutFrac:    0.25,
		Gate:           learn.Gate{MaxTimeMAPE: 0.6, MaxPowerMAPE: 0.6},
		BaselineSlack:  3,
		Workers:        2,
		BuildCandidate: build,
	})
}

// TestGoldenReplayWithTrainerPromoting extends the traced-replay
// determinism contract to an actively-learning server: four concurrent
// sessions replay while the trainer retrains and promotes new
// generations from their own observe streams. Because sessions pin
// their snapshot at creation, every replay must stay byte-identical to
// the untrained golden — promotion is publication, never mutation.
func TestGoldenReplayWithTrainerPromoting(t *testing.T) {
	sys, app, target, model := testStack(t)
	golden := goldenReplay(t, sys, app, target, model)

	hub := telemetry.NewHub(telemetry.Options{Sample: 1})
	tr := newTestTrainer(nil)
	srv, ts := newTestServer(t, sys, model, serve.Config{Telemetry: hub, Learn: tr})

	// Pre-fill the reservoir past MinSamples so the first training round
	// during the concurrent phase can promote immediately.
	{
		c := serve.NewClient(ts.URL)
		if _, err := sys.Run(app, c, target, true); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Status().Samples; got < 25 {
		t.Fatalf("observe tap fed %d samples, want the full warm-up replay (>= 25)", got)
	}

	const sessions = 4
	replays := make([][]byte, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(ts.URL)
			res, err := sys.Run(app, c, target, true)
			if err == nil {
				err = c.Close()
			}
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, res); err != nil {
				errs[i] = err
				return
			}
			replays[i] = buf.Bytes()
		}(i)
	}

	// Wait until every replay session exists — and is therefore pinned
	// to generation 1 — before the first promotion can happen.
	deadline := time.Now().Add(10 * time.Second)
	for srv.SessionCount() < sessions {
		if time.Now().After(deadline) {
			t.Fatal("replay sessions did not all open")
		}
		time.Sleep(time.Millisecond)
	}
	// Retrain and promote repeatedly while the replays stream.
	replayDone := make(chan struct{})
	var trainWG sync.WaitGroup
	trainWG.Add(1)
	go func() {
		defer trainWG.Done()
		for {
			select {
			case <-replayDone:
				return
			default:
			}
			if _, err := tr.TrainOnce(); err != nil {
				t.Errorf("TrainOnce during replay: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(replayDone)
	trainWG.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !bytes.Equal(replays[i], golden) {
			t.Fatalf("session %d diverges from golden with the trainer promoting: %s",
				i, firstDiffLine(replays[i], golden))
		}
	}

	st := tr.Status()
	if st.Promoted < 1 {
		t.Fatalf("trainer never promoted during the replay window: %+v", st)
	}
	gen := srv.CurrentSnapshot().Gen
	if gen < 2 {
		t.Fatalf("snapshot generation still %d after %d promotions", gen, st.Promoted)
	}

	// A session opened now pins a promoted generation — the learning
	// loop reaches new traffic without having touched old sessions.
	code, _, body := post(t, ts.URL, "/v1/session", serve.SessionRequest{App: testBench, NumKernels: app.Len()})
	if code != http.StatusOK {
		t.Fatalf("post-promotion session: %d %s", code, body)
	}
	var sr serve.SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SnapshotGen != gen {
		t.Fatalf("post-promotion session pinned generation %d, want %d", sr.SnapshotGen, gen)
	}

	// /debug/learn: status JSON and a parseable JSONL reservoir dump.
	code, _, body = get(t, ts.URL+"/debug/learn")
	if code != http.StatusOK {
		t.Fatalf("/debug/learn: %d", code)
	}
	var dbg struct {
		SnapshotGen uint64       `json:"snapshot_gen"`
		Learn       learn.Status `json:"learn"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.SnapshotGen != gen || dbg.Learn.Promoted != st.Promoted || dbg.Learn.Samples == 0 {
		t.Fatalf("/debug/learn state wrong: %+v", dbg)
	}
	code, hdr, body := get(t, ts.URL+"/debug/learn?format=samples")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("/debug/learn samples: %d %q", code, hdr.Get("Content-Type"))
	}
	samples, err := learn.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != dbg.Learn.Samples {
		t.Fatalf("reservoir dump has %d samples, status says %d", len(samples), dbg.Learn.Samples)
	}
	for i, s := range samples {
		if !s.Valid() {
			t.Fatalf("reservoir sample %d invalid: %+v", i, s)
		}
	}
}

// TestLearnRecoveryEndToEnd is the closed-loop acceptance test: a
// degraded generation is installed, its drift is detected and signalled
// to the trainer, a deliberately-poisoned candidate is rejected by the
// holdout gate, the good candidate is promoted with its holdout MAPE as
// the new drift baseline, and post-promotion traffic scores back under
// the drift threshold.
func TestLearnRecoveryEndToEnd(t *testing.T) {
	sys, app, target, model := testStack(t)

	var poison atomic.Bool
	tr := newTestTrainer(func(train []predict.Sample, fcfg rf.Config, workers int) (*predict.RandomForest, error) {
		if poison.Load() {
			bad := make([]predict.Sample, len(train))
			copy(bad, train)
			for i := range bad {
				bad[i].TimeMS *= 100
			}
			train = bad
		}
		return predict.TrainOnSamples(train, fcfg, workers)
	})

	hub := telemetry.NewHub(telemetry.Options{Sample: 0, DriftFactor: 3})
	srv, ts := newTestServer(t, sys, model, serve.Config{
		Telemetry: hub,
		Learn:     tr,
		Train: func() (predict.Model, error) {
			// The stale stand-in: the oracle with 80% mean absolute
			// error injected — far above anything a freshly trained
			// candidate scores, so recovery is unambiguous.
			return predict.NewWithError(model, 0.8, 0.8, 7), nil
		},
	})

	replay := func() {
		t.Helper()
		c := serve.NewClient(ts.URL)
		if _, err := sys.Run(app, c, target, true); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cellFor := func(gen uint64) *telemetry.CellSnapshot {
		t.Helper()
		for _, c := range hub.Scoreboard.Snapshot() {
			if c.Gen == gen && c.App == testBench {
				cc := c
				return &cc
			}
		}
		return nil
	}

	// Phase 1: healthy generation 1 fills the reservoir and scoreboard.
	// Sibling apps replay alongside Spmv purely as reservoir coverage —
	// a candidate trained on one app's 30 kernels would memorize them
	// and fail the traffic its own optimizer steers into.
	for _, name := range []string{"kmeans", "XSBench", "NBody"} {
		sibling, err := mpcdvfs.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, sibTarget, err := sys.Baseline(&sibling)
		if err != nil {
			t.Fatal(err)
		}
		c := serve.NewClient(ts.URL)
		if _, err := sys.Run(&sibling, c, sibTarget, true); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	replay()
	gen1 := cellFor(1)
	if gen1 == nil {
		t.Fatal("no generation-1 scoreboard cell after the healthy replay")
	}
	hub.Scoreboard.SetDefaultBaseline(gen1.TimeMAPE+0.01, gen1.PowerMAPE+0.01)
	if got := tr.Status().DriftSignals; got != 0 {
		t.Fatalf("healthy traffic produced %d drift signals", got)
	}

	// Phase 2: /reload installs the degraded generation 2; its replay
	// must cross the drift gate, and the rising edge must reach the
	// trainer through the hook serve.New wired.
	if code, _, body := post(t, ts.URL, "/reload", serve.ReloadRequest{}); code != http.StatusOK {
		t.Fatalf("/reload: %d %s", code, body)
	}
	replay()
	gen2 := cellFor(2)
	if gen2 == nil || !gen2.Drifted {
		t.Fatalf("degraded generation 2 not flagged as drifted: %+v", gen2)
	}
	st := tr.Status()
	if st.DriftSignals < 1 || !st.DriftPending {
		t.Fatalf("drift edge did not reach the trainer: %+v", st)
	}

	// Phase 3: the poisoned candidate fails the holdout gate — counted,
	// rejected, and the degraded generation stays installed.
	poison.Store(true)
	promoted, err := tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if promoted {
		t.Fatalf("poisoned candidate promoted (holdout time MAPE %.3f)", tr.Status().LastTimeMAPE)
	}
	if got := srv.CurrentSnapshot().Gen; got != 2 {
		t.Fatalf("rejection changed the installed generation to %d", got)
	}
	if st := tr.Status(); st.Rejected != 1 || st.LastOutcome != "rejected" {
		t.Fatalf("rejection not recorded: %+v", st)
	}

	// Phase 4: the honest candidate passes and is promoted as
	// generation 3, carrying its holdout MAPE in as drift baseline.
	poison.Store(false)
	promoted, err = tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatalf("honest candidate rejected: %+v", tr.Status())
	}
	if got := srv.CurrentSnapshot().Gen; got != 3 {
		t.Fatalf("promotion installed generation %d, want 3", got)
	}
	if tag := srv.CurrentSnapshot().Tag; tag != "learn-r2" {
		t.Fatalf("promoted snapshot tag %q, want learn-r2", tag)
	}

	// Phase 5: post-promotion traffic pins generation 3 and scores back
	// under the drift threshold — measurably better than the degraded
	// generation, and not drifted against its own holdout baseline.
	replay()
	gen3 := cellFor(3)
	if gen3 == nil {
		t.Fatal("no generation-3 cell after the recovery replay")
	}
	if gen3.Drifted {
		t.Fatalf("promoted generation still drifted: MAPE %.4f vs baseline %+v",
			gen3.TimeMAPE, gen3.Baseline)
	}
	if gen3.Baseline.TimeMAPE != 3*tr.Status().LastTimeMAPE {
		t.Fatalf("promoted generation's baseline %.4f is not the slack-adjusted holdout MAPE %.4f",
			gen3.Baseline.TimeMAPE, 3*tr.Status().LastTimeMAPE)
	}
	if gen3.TimeMAPE >= gen2.TimeMAPE {
		t.Fatalf("windowed MAPE did not recover: gen2 %.4f, gen3 %.4f", gen2.TimeMAPE, gen3.TimeMAPE)
	}
}
