package serve

import (
	"errors"
	"sync"

	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// Queue/session error sentinels, mapped to HTTP statuses by the
// handlers (429 and 410 respectively).
var (
	errSessionFull   = errors.New("serve: session queue full")
	errSessionClosed = errors.New("serve: session closed")
)

// session is one client application's decision stream. All policy state
// — the MPC tracker, pattern extractor, calibration feedback — is owned
// by exactly one goroutine (run), which consumes operations from a
// bounded FIFO queue. Handlers never touch the policy directly; they
// enqueue closures and wait for replies. That single-owner discipline
// is what extends the determinism contract across sessions: within a
// session, operations execute in the exact order a single-threaded
// replay would issue them, so the decision stream is byte-identical to
// one; across sessions nothing is shared except immutable model
// snapshots and internally synchronized caches/pools.
type session struct {
	id     string
	name   string // policy name, fixed at creation
	app    string // client application name, for scoreboard attribution
	policy sim.Policy
	snap   *Snapshot // model snapshot pinned at creation
	ch     chan func()
	done   chan struct{} // closed when the owner goroutine exits

	mu     sync.Mutex // guards closed and the closed/send race
	closed bool

	depth *metrics.Gauge // optional queue-depth mirror

	// Telemetry state, nil/zero when the server has no hub. tc is the
	// session's trace context; hub feeds the scoreboard and accounting.
	// lastIdx/lastD latch the most recent decision so the matching
	// observation can be scored against its prediction — both are
	// touched only by the owner goroutine, like all policy state.
	tc      *telemetry.Context
	hub     *telemetry.Hub
	lastIdx int
	lastD   sim.Decision
}

func newSession(id string, pol sim.Policy, snap *Snapshot, queueDepth int, depth *metrics.Gauge) *session {
	return &session{
		id:      id,
		name:    pol.Name(),
		policy:  pol,
		snap:    snap,
		ch:      make(chan func(), queueDepth),
		done:    make(chan struct{}),
		depth:   depth,
		lastIdx: -1,
	}
}

// noteDecision runs on the owner goroutine after each Decide: it
// latches the decision for observation-side scoring and feeds the
// accounting ledger. No-op without a hub.
func (s *session) noteDecision(index int, d sim.Decision, queueWaitMS float64) {
	s.lastIdx, s.lastD = index, d
	if s.hub != nil {
		s.hub.Accounting.RecordDecision(s.id, d.Fallback, d.Horizon, queueWaitMS)
	}
}

// noteObservation runs on the owner goroutine after each Observe: when
// the observation answers the latched decision and that decision
// carried a prediction (fallbacks do not), the predicted-vs-measured
// outcome is scored on the model scoreboard and both energies land in
// the accounting ledger. No-op without a hub.
func (s *session) noteObservation(ob sim.Observation) {
	if s.hub == nil || ob.Index != s.lastIdx || s.lastD.PredTimeMS <= 0 {
		return
	}
	s.hub.Scoreboard.Observe(s.snap.Gen, s.app,
		s.lastD.PredTimeMS, ob.TimeMS, s.lastD.PredGPUPowerW, ob.GPUPowerW)
	predMJ := predict.EnergyMJ(
		predict.Estimate{TimeMS: s.lastD.PredTimeMS, GPUPowerW: s.lastD.PredGPUPowerW},
		s.lastD.Config)
	measMJ := (ob.GPUPowerW + ob.CPUPowerW) * ob.TimeMS
	s.hub.Accounting.RecordObservation(s.id, ob.Config.String(), predMJ, measMJ)
}

// run is the session's owner goroutine: it executes queued operations
// strictly in FIFO order until the queue is closed, then drains what
// remains and signals done. Every in-flight operation completes —
// graceful drain — so no handler is left waiting on a reply.
func (s *session) run() {
	defer close(s.done)
	for op := range s.ch {
		op()
		if s.depth != nil {
			s.depth.Set(float64(len(s.ch)))
		}
	}
}

// enqueue submits op to the owner goroutine without blocking: a full
// queue is backpressure (errSessionFull → HTTP 429), not a wait. The
// mutex closes the race between a send and close(): close flips the
// flag under the same lock, so no send can hit a closed channel.
func (s *session) enqueue(op func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSessionClosed
	}
	select {
	case s.ch <- op:
		if s.depth != nil {
			s.depth.Set(float64(len(s.ch)))
		}
		return nil
	default:
		return errSessionFull
	}
}

// close stops accepting operations and lets the owner goroutine drain
// the queue. Idempotent. Callers wanting the drain to be complete wait
// on s.done afterwards.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}
