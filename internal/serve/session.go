package serve

import (
	"errors"
	"sync"

	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/sim"
)

// Queue/session error sentinels, mapped to HTTP statuses by the
// handlers (429 and 410 respectively).
var (
	errSessionFull   = errors.New("serve: session queue full")
	errSessionClosed = errors.New("serve: session closed")
)

// session is one client application's decision stream. All policy state
// — the MPC tracker, pattern extractor, calibration feedback — is owned
// by exactly one goroutine (run), which consumes operations from a
// bounded FIFO queue. Handlers never touch the policy directly; they
// enqueue closures and wait for replies. That single-owner discipline
// is what extends the determinism contract across sessions: within a
// session, operations execute in the exact order a single-threaded
// replay would issue them, so the decision stream is byte-identical to
// one; across sessions nothing is shared except immutable model
// snapshots and internally synchronized caches/pools.
type session struct {
	id     string
	name   string // policy name, fixed at creation
	policy sim.Policy
	snap   *Snapshot // model snapshot pinned at creation
	ch     chan func()
	done   chan struct{} // closed when the owner goroutine exits

	mu     sync.Mutex // guards closed and the closed/send race
	closed bool

	depth *metrics.Gauge // optional queue-depth mirror
}

func newSession(id string, pol sim.Policy, snap *Snapshot, queueDepth int, depth *metrics.Gauge) *session {
	return &session{
		id:     id,
		name:   pol.Name(),
		policy: pol,
		snap:   snap,
		ch:     make(chan func(), queueDepth),
		done:   make(chan struct{}),
		depth:  depth,
	}
}

// run is the session's owner goroutine: it executes queued operations
// strictly in FIFO order until the queue is closed, then drains what
// remains and signals done. Every in-flight operation completes —
// graceful drain — so no handler is left waiting on a reply.
func (s *session) run() {
	defer close(s.done)
	for op := range s.ch {
		op()
		if s.depth != nil {
			s.depth.Set(float64(len(s.ch)))
		}
	}
}

// enqueue submits op to the owner goroutine without blocking: a full
// queue is backpressure (errSessionFull → HTTP 429), not a wait. The
// mutex closes the race between a send and close(): close flips the
// flag under the same lock, so no send can hit a closed channel.
func (s *session) enqueue(op func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSessionClosed
	}
	select {
	case s.ch <- op:
		if s.depth != nil {
			s.depth.Set(float64(len(s.ch)))
		}
		return nil
	default:
		return errSessionFull
	}
}

// close stops accepting operations and lets the owner goroutine drain
// the queue. Idempotent. Callers wanting the drain to be complete wait
// on s.done afterwards.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}
