package rf

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// compileOrFatal compiles f, failing the test on error.
func compileOrFatal(tb testing.TB, f *Forest) *CompiledForest {
	tb.Helper()
	c, err := f.Compile()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// bitsEqual reports bit-for-bit float equality (the compiled contract —
// an approximate comparison would hide exactly the drift this layer
// must never introduce).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompiledEquivalenceProperty trains forests across a grid of
// shapes (tree counts, depths, dimensionalities, leaf sizes), compiles
// each, and checks bit-identical predictions on random inputs — wide
// uniform draws plus the adversarial values a threshold comparison
// could mis-handle (±Inf, NaN, exact zeros).
func TestCompiledEquivalenceProperty(t *testing.T) {
	targets := []func([]float64) float64{
		func(x []float64) float64 { return x[0] },
		func(x []float64) float64 { return 3*x[0] - 2*x[len(x)-1] },
		func(x []float64) float64 { return math.Sin(5*x[0]) * x[len(x)/2] },
	}
	seed := int64(1)
	for _, nTrees := range []int{1, 4, 8, 9} {
		for _, depth := range []int{1, 4, 10} {
			for _, d := range []int{1, 3, 14} {
				seed++
				fn := targets[int(seed)%len(targets)]
				X, y := makeDataset(120, d, 0.05, seed, fn)
				cfg := Config{NumTrees: nTrees, MaxDepth: depth, MinLeaf: 1,
					NumThresh: 8, SampleFrac: 1.0, Seed: seed, Workers: 1}
				f, err := Train(X, y, cfg)
				if err != nil {
					t.Fatal(err)
				}
				c := compileOrFatal(t, f)
				if c.NumTrees() != f.NumTrees() || c.NumFeatures() != f.NumFeatures() {
					t.Fatalf("compiled shape %d trees/%d features, want %d/%d",
						c.NumTrees(), c.NumFeatures(), f.NumTrees(), f.NumFeatures())
				}
				rng := rand.New(rand.NewSource(seed * 31))
				special := []float64{0, -0.0, 1, -1, math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 5e-324}
				for trial := 0; trial < 200; trial++ {
					x := make([]float64, d)
					for j := range x {
						if trial%4 == 3 {
							x[j] = special[rng.Intn(len(special))]
						} else {
							x[j] = (rng.Float64() - 0.5) * 4
						}
					}
					want := f.Predict(x)
					got := c.Predict(x)
					if !bitsEqual(got, want) {
						t.Fatalf("trees=%d depth=%d d=%d trial=%d: compiled %v != tree-walk %v",
							nTrees, depth, d, trial, got, want)
					}
				}
			}
		}
	}
}

// TestCompiledBatchMatchesScalar checks that the tree-outer batched
// evaluation returns, for every row, exactly the scalar compiled (and
// therefore tree-walking) prediction.
func TestCompiledBatchMatchesScalar(t *testing.T) {
	X, y := makeDataset(200, 5, 0.05, 7, func(x []float64) float64 { return x[0]*x[1] - x[4] })
	f, err := Train(X, y, Config{NumTrees: 6, MaxDepth: 6, MinLeaf: 1, NumThresh: 8, SampleFrac: 1.0, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := compileOrFatal(t, f)

	const rows = 64
	rng := rand.New(rand.NewSource(8))
	flat := make([]float64, rows*5)
	for i := range flat {
		flat[i] = (rng.Float64() - 0.5) * 3
	}
	got := c.PredictBatch(flat)
	if len(got) != rows {
		t.Fatalf("batch returned %d rows, want %d", len(got), rows)
	}
	for r := 0; r < rows; r++ {
		row := flat[r*5 : (r+1)*5]
		if want := c.Predict(row); !bitsEqual(got[r], want) {
			t.Fatalf("row %d: batch %v != scalar %v", r, got[r], want)
		}
		if want := f.Predict(row); !bitsEqual(got[r], want) {
			t.Fatalf("row %d: batch %v != tree-walk %v", r, got[r], want)
		}
	}

	// Into variant reuses the caller's buffer and returns it.
	dst := make([]float64, rows)
	if out := c.PredictBatchInto(dst, flat); &out[0] != &dst[0] {
		t.Fatal("PredictBatchInto did not reuse the caller's buffer")
	}
	for r := range dst {
		if !bitsEqual(dst[r], got[r]) {
			t.Fatalf("row %d: Into %v != Batch %v", r, dst[r], got[r])
		}
	}
}

// TestPredictBatchEmpty pins the n==0 fast paths: no allocation, no
// worker-pool dispatch, nil result — on both engines.
func TestPredictBatchEmpty(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	if out := f.PredictBatch(nil, 0); out != nil {
		t.Fatalf("Forest.PredictBatch(nil) = %v, want nil", out)
	}
	if out := f.PredictBatch([][]float64{}, 4); out != nil {
		t.Fatalf("Forest.PredictBatch(empty) = %v, want nil", out)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = f.PredictBatch(nil, 0) }); allocs != 0 {
		t.Fatalf("Forest.PredictBatch(nil) allocates %v times per call, want 0", allocs)
	}
	if out := c.PredictBatch(nil); out != nil {
		t.Fatalf("CompiledForest.PredictBatch(nil) = %v, want nil", out)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = c.PredictBatch(nil) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictBatch(nil) allocates %v times per call, want 0", allocs)
	}
	if out := c.PredictBatchInto([]float64{}, nil); len(out) != 0 {
		t.Fatalf("PredictBatchInto(empty) = %v, want empty", out)
	}
}

// TestCompiledBatchPanics pins the up-front shape checks.
func TestCompiledBatchPanics(t *testing.T) {
	c := compileOrFatal(t, fuzzForest(t)) // 3 features
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Predict wrong dim", func() { c.Predict(make([]float64, 2)) })
	expectPanic("PredictBatch ragged", func() { c.PredictBatch(make([]float64, 7)) })
	expectPanic("PredictBatchInto short dst", func() {
		c.PredictBatchInto(make([]float64, 1), make([]float64, 6))
	})
}

// TestCompiledZeroAlloc pins the steady-state compiled inference paths
// at zero allocations per operation — the contract the MPC inner loop's
// per-decision budget is built on.
func TestCompiledZeroAlloc(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	x := []float64{0.3, 0.7, 0.1}
	if allocs := testing.AllocsPerRun(200, func() { _ = c.Predict(x) }); allocs != 0 {
		t.Fatalf("CompiledForest.Predict allocates %v times per call, want 0", allocs)
	}
	rows := 21 // a full rowBlock plus a ragged tail
	flat := make([]float64, rows*3)
	for i := range flat {
		flat[i] = float64(i%7) * 0.2
	}
	dst := make([]float64, rows)
	if allocs := testing.AllocsPerRun(200, func() { c.PredictBatchInto(dst, flat) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictBatchInto allocates %v times per call, want 0", allocs)
	}
	keys := make([]uint64, len(flat))
	if allocs := testing.AllocsPerRun(200, func() { KeysInto(keys, flat) }); allocs != 0 {
		t.Fatalf("KeysInto allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { c.PredictBatchKeysInto(dst, keys) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictBatchKeysInto allocates %v times per call, want 0", allocs)
	}
}

// TestSelfCheck exercises the train-time guard: a faithful compilation
// passes its three-way cross-validation (tree walk vs. branchless
// layout vs. legacy pool), and corruption in either layout — a leaf
// payload, a threshold key, or a legacy threshold — is caught.
func TestSelfCheck(t *testing.T) {
	f := fuzzForest(t)
	if err := compileOrFatal(t, f).SelfCheck(f, 2048, 99); err != nil {
		t.Fatalf("faithful compilation failed self-check: %v", err)
	}

	// Corrupt one branchless leaf payload: the check must notice.
	c := compileOrFatal(t, f)
	for i := range c.nodes {
		if c.nodes[i].left == int32(i) {
			c.leafVal[i] += 1e-9
			break
		}
	}
	if err := c.SelfCheck(f, 2048, 99); err == nil {
		t.Fatal("self-check accepted a corrupted branchless leaf payload")
	}

	// Corrupt one internal node's threshold key: descent takes the
	// wrong side for inputs straddling the split.
	c = compileOrFatal(t, f)
	for i := range c.nodes {
		if c.nodes[i].left != int32(i) {
			c.nodes[i].tkey ^= 1 << 62
			break
		}
	}
	if err := c.SelfCheck(f, 2048, 99); err == nil {
		t.Fatal("self-check accepted a corrupted threshold key")
	}

	// Corrupt the legacy pool only: the branchless layout is fine, the
	// second opinion diverges, and the check must still fail.
	c = compileOrFatal(t, f)
	for i, ft := range c.legacy.feature {
		if ft < 0 {
			c.legacy.thresh[i] += 1e-9
			break
		}
	}
	if err := c.SelfCheck(f, 2048, 99); err == nil {
		t.Fatal("self-check accepted a corrupted legacy pool")
	}
}

// TestCompileRejectsUnrepresentable covers the two compile errors.
func TestCompileRejectsUnrepresentable(t *testing.T) {
	if _, err := (&Forest{}).Compile(); err == nil {
		t.Fatal("compiled a forest with no trees")
	}
	f := &Forest{trees: make([]tree, 1), nFeatures: maxCompiledFeatures + 1}
	f.trees[0] = tree{Nodes: []node{{Feature: -1, Thresh: 1}}}
	if _, err := f.Compile(); err == nil {
		t.Fatal("compiled a forest beyond the fixed-width key-buffer layout")
	}
}

// TestKeyOrderEquivalence proves, exhaustively over an adversarial
// value grid, the transform the branchless descent rests on: for every
// input x and threshold t — NaNs of both signs, ±0, ±Inf, denormals and
// extreme magnitudes included — keyOf(x) <= threshKey(t) holds exactly
// when x <= t under IEEE semantics. It also pins the two structural
// facts the layout exploits: keyOf never yields 0 (so a NaN threshold's
// key 0 accepts no input) and never yields ^0 except for NaN (so a
// leaf's always-true ^0 sentinel is unreachable as a split... every key
// comparison against ^0 is true, which is exactly the self-loop).
func TestKeyOrderEquivalence(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1),
		math.NaN(), -math.NaN(), 1e308, -1e308, 5e-324, -5e-324,
		2.2250738585072014e-308, -2.2250738585072014e-308, 0.5, -0.5,
		math.MaxFloat64, -math.MaxFloat64, 3.25, -3.25,
		math.Float64frombits(0x7ff0000000000001), // signalling-style NaN
		math.Float64frombits(0xfff8000000000123), // negative quiet NaN
		math.Float64frombits(0x0000000000000001), // smallest denormal
		math.Float64frombits(0x8000000000000001), // smallest negative denormal
	}
	for _, x := range vals {
		if keyOf(x) == 0 {
			t.Fatalf("keyOf(%v) = 0: collides with the NaN-threshold sentinel", x)
		}
		if keyOf(x) == ^uint64(0) && !math.IsNaN(x) {
			t.Fatalf("keyOf(%v) = ^0 for a non-NaN input", x)
		}
		for _, th := range vals {
			want := x <= th
			got := keyOf(x) <= threshKey(th)
			if got != want {
				t.Errorf("x=%v (bits %#x) thresh=%v (bits %#x): key compare %v, IEEE %v",
					x, math.Float64bits(x), th, math.Float64bits(th), got, want)
			}
		}
	}
}

// chainTree builds a maximally skewed tree of the given depth on
// feature 0: each internal node hangs one leaf and one deeper chain
// node, alternating sides, so the layout's cluster recursion sees the
// worst case — every cluster holds a single spine.
func chainTree(depth int, leafBase float64) tree {
	var nodes []node
	var build func(d int) int32
	build = func(d int) int32 {
		self := int32(len(nodes))
		nodes = append(nodes, node{})
		if d == depth {
			nodes[self] = node{Feature: -1, Thresh: leafBase + float64(d)}
			return self
		}
		var leafSide, chainSide int32
		if d%2 == 0 {
			leafSide = int32(len(nodes))
			nodes = append(nodes, node{Feature: -1, Thresh: leafBase + float64(d) + 0.5})
			chainSide = build(d + 1)
			nodes[self] = node{Feature: 0, Thresh: float64(d) - 2.5, Left: leafSide, Right: chainSide}
		} else {
			chainSide = build(d + 1)
			leafSide = int32(len(nodes))
			nodes = append(nodes, node{Feature: -1, Thresh: leafBase + float64(d) + 0.5})
			nodes[self] = node{Feature: 0, Thresh: float64(d) - 2.5, Left: chainSide, Right: leafSide}
		}
		return self
	}
	build(0)
	return tree{Nodes: nodes}
}

// TestCompiledLayoutEdgeCases drives the clustered level-order layout
// through its structural corner cases — single-node trees, maximally
// skewed spines, depths exactly at (and one off) the cluster-stratum
// boundary, and ensembles straddling the scalar tree-block width — and
// requires bit-exact agreement with the tree walk on every path,
// scalar and batched.
func TestCompiledLayoutEdgeCases(t *testing.T) {
	const d = 3
	depths := []int{0, 1, clusterStratum - 1, clusterStratum, clusterStratum + 1,
		2*clusterStratum - 1, 2 * clusterStratum, 3*clusterStratum + 2}
	// Ensemble sizes straddling the treeBlock interleave width: all
	// tail, exact blocks, and blocks plus a ragged tail.
	for _, nTrees := range []int{1, treeBlock - 1, treeBlock, treeBlock + 1, 2*treeBlock + 3} {
		f := &Forest{nFeatures: d}
		for i := 0; i < nTrees; i++ {
			dep := depths[i%len(depths)]
			if dep == 0 {
				f.trees = append(f.trees, tree{Nodes: []node{{Feature: -1, Thresh: 1.5 * float64(i+1)}}})
				continue
			}
			f.trees = append(f.trees, chainTree(dep, float64(i)))
		}
		c := compileOrFatal(t, f)
		for i := range f.trees {
			wantDepth := depths[i%len(depths)]
			if got := int(c.depths[i]); got != wantDepth {
				t.Fatalf("nTrees=%d tree %d: compiled depth %d, want %d", nTrees, i, got, wantDepth)
			}
		}
		rng := rand.New(rand.NewSource(int64(nTrees)))
		special := []float64{0, -0.0, math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 5e-324}
		var flat []float64
		for trial := 0; trial < 300; trial++ {
			x := make([]float64, d)
			for j := range x {
				if trial%3 == 2 {
					x[j] = special[rng.Intn(len(special))]
				} else {
					// Straddle the chain thresholds, which run ~[-2.5, depth-3.5].
					x[j] = (rng.Float64() - 0.5) * 50
				}
			}
			want := f.Predict(x)
			if got := c.Predict(x); !bitsEqual(got, want) {
				t.Fatalf("nTrees=%d trial=%d x=%v: compiled %v != tree-walk %v", nTrees, trial, x, got, want)
			}
			flat = append(flat, x...)
		}
		rows := len(flat) / d
		dst := make([]float64, rows)
		c.PredictBatchInto(dst, flat)
		keys := make([]uint64, len(flat))
		KeysInto(keys, flat)
		kdst := make([]float64, rows)
		c.PredictBatchKeysInto(kdst, keys)
		for r := 0; r < rows; r++ {
			want := f.Predict(flat[r*d : (r+1)*d])
			if !bitsEqual(dst[r], want) {
				t.Fatalf("nTrees=%d batch row %d: %v != tree-walk %v", nTrees, r, dst[r], want)
			}
			if !bitsEqual(kdst[r], want) {
				t.Fatalf("nTrees=%d keyed batch row %d: %v != tree-walk %v", nTrees, r, kdst[r], want)
			}
		}
		if err := c.SelfCheck(f, 256, int64(nTrees)*7+1); err != nil {
			t.Fatalf("nTrees=%d: self-check failed: %v", nTrees, err)
		}
	}
}

// TestCompiledLayoutInvariants pins the structural properties the
// borrow-select descent assumes: children occupy adjacent slots (left
// first), leaves self-loop with the always-true key and feature 0, and
// every tree's nodes were all emitted exactly once.
func TestCompiledLayoutInvariants(t *testing.T) {
	X, y := makeDataset(400, 6, 0.05, 17, func(x []float64) float64 { return x[0]*x[3] - x[5] })
	f, err := Train(X, y, Config{NumTrees: 9, MaxDepth: 10, MinLeaf: 1,
		NumThresh: 16, SampleFrac: 1.0, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := compileOrFatal(t, f)
	total := 0
	for i := range f.trees {
		total += len(f.trees[i].Nodes)
	}
	if c.NumNodes() != total {
		t.Fatalf("pool holds %d nodes, forest has %d", c.NumNodes(), total)
	}
	leaves := 0
	for i := range c.nodes {
		n := c.nodes[i]
		if n.left == int32(i) { // leaf
			leaves++
			if n.tkey != ^uint64(0) {
				t.Fatalf("leaf %d key %#x, want ^0", i, n.tkey)
			}
			if n.feat != 0 {
				t.Fatalf("leaf %d feature %d, want 0", i, n.feat)
			}
			continue
		}
		if n.left < 0 || int(n.left)+1 >= len(c.nodes) {
			t.Fatalf("internal node %d child pair (%d,%d) out of pool", i, n.left, n.left+1)
		}
		if int(n.feat) >= c.NumFeatures() {
			t.Fatalf("internal node %d splits on feature %d of %d", i, n.feat, c.NumFeatures())
		}
	}
	if leaves == 0 {
		t.Fatal("no leaves found in the pool")
	}
}

// FuzzCompiledEquivalence drives the bit-exactness contract with
// fuzzer-chosen forest shapes and raw input bits: any trainable forest,
// compiled, must predict bit-identically to the tree-walking original
// on any input — including NaNs, infinities and denormals assembled
// from the raw bytes.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(int64(42), uint8(1), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f})                   // +Inf input
	f.Add(int64(7), uint8(5), uint8(8), []byte{1, 0, 0, 0, 0, 0, 0xf0, 0xff, 9, 9, 9, 9})        // NaN-adjacent
	f.Add(int64(-3), uint8(2), uint8(6), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f}) // MaxFloat64
	// Level-order layout refresh: ensembles straddling the scalar
	// tree-block width (8) and depths straddling the cluster stratum
	// (6), with sign-boundary and denormal inputs that stress the
	// order-preserving key transform.
	f.Add(int64(11), uint8(7), uint8(6), []byte{0, 0, 0, 0, 0, 0, 0, 0x80, 1, 0, 0, 0, 0, 0, 0, 0})    // 8 trees, -0 and denormal
	f.Add(int64(23), uint8(8), uint8(7), []byte{0, 0, 0, 0, 0, 0, 0xf8, 0xff, 0x55})                   // 9 trees, -NaN
	f.Add(int64(-9), uint8(11), uint8(5), []byte("level-order-cluster-boundary-bits"))                 // 12 trees, depth 6
	f.Add(int64(31), uint8(9), uint8(8), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x42}) // ^0 bits (NaN) inputs
	f.Fuzz(func(t *testing.T, seed int64, nTrees, depth uint8, raw []byte) {
		nt := int(nTrees)%12 + 1
		dp := int(depth)%8 + 1
		const d = 3
		X, y := makeDataset(40, d, 0.05, seed, func(x []float64) float64 { return x[0] - x[2] })
		forest, err := Train(X, y, Config{NumTrees: nt, MaxDepth: dp, MinLeaf: 1,
			NumThresh: 4, SampleFrac: 1.0, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := forest.Compile()
		if err != nil {
			t.Fatal(err)
		}
		// Assemble input rows from the raw bytes, 8 per feature value;
		// missing bytes repeat deterministically.
		if len(raw) == 0 {
			raw = []byte{0}
		}
		var rows []float64
		for r := 0; r < 8; r++ {
			for j := 0; j < d; j++ {
				var b [8]byte
				for k := range b {
					b[k] = raw[(r*d*8+j*8+k)%len(raw)]
				}
				rows = append(rows, math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
			}
		}
		for r := 0; r < 8; r++ {
			x := rows[r*d : (r+1)*d]
			want := forest.Predict(x)
			got := c.Predict(x)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("x=%v: compiled %v (bits %#x) != tree-walk %v (bits %#x)",
					x, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		batch := c.PredictBatch(rows)
		for r := range batch {
			if want := forest.Predict(rows[r*d : (r+1)*d]); math.Float64bits(batch[r]) != math.Float64bits(want) {
				t.Fatalf("batch row %d: %v != %v", r, batch[r], want)
			}
		}
	})
}
