package rf

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// compileOrFatal compiles f, failing the test on error.
func compileOrFatal(tb testing.TB, f *Forest) *CompiledForest {
	tb.Helper()
	c, err := f.Compile()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// bitsEqual reports bit-for-bit float equality (the compiled contract —
// an approximate comparison would hide exactly the drift this layer
// must never introduce).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompiledEquivalenceProperty trains forests across a grid of
// shapes (tree counts, depths, dimensionalities, leaf sizes), compiles
// each, and checks bit-identical predictions on random inputs — wide
// uniform draws plus the adversarial values a threshold comparison
// could mis-handle (±Inf, NaN, exact zeros).
func TestCompiledEquivalenceProperty(t *testing.T) {
	targets := []func([]float64) float64{
		func(x []float64) float64 { return x[0] },
		func(x []float64) float64 { return 3*x[0] - 2*x[len(x)-1] },
		func(x []float64) float64 { return math.Sin(5*x[0]) * x[len(x)/2] },
	}
	seed := int64(1)
	for _, nTrees := range []int{1, 4, 9} {
		for _, depth := range []int{1, 4, 10} {
			for _, d := range []int{1, 3, 14} {
				seed++
				fn := targets[int(seed)%len(targets)]
				X, y := makeDataset(120, d, 0.05, seed, fn)
				cfg := Config{NumTrees: nTrees, MaxDepth: depth, MinLeaf: 1,
					NumThresh: 8, SampleFrac: 1.0, Seed: seed, Workers: 1}
				f, err := Train(X, y, cfg)
				if err != nil {
					t.Fatal(err)
				}
				c := compileOrFatal(t, f)
				if c.NumTrees() != f.NumTrees() || c.NumFeatures() != f.NumFeatures() {
					t.Fatalf("compiled shape %d trees/%d features, want %d/%d",
						c.NumTrees(), c.NumFeatures(), f.NumTrees(), f.NumFeatures())
				}
				rng := rand.New(rand.NewSource(seed * 31))
				special := []float64{0, -0.0, 1, -1, math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 5e-324}
				for trial := 0; trial < 200; trial++ {
					x := make([]float64, d)
					for j := range x {
						if trial%4 == 3 {
							x[j] = special[rng.Intn(len(special))]
						} else {
							x[j] = (rng.Float64() - 0.5) * 4
						}
					}
					want := f.Predict(x)
					got := c.Predict(x)
					if !bitsEqual(got, want) {
						t.Fatalf("trees=%d depth=%d d=%d trial=%d: compiled %v != tree-walk %v",
							nTrees, depth, d, trial, got, want)
					}
				}
			}
		}
	}
}

// TestCompiledBatchMatchesScalar checks that the tree-outer batched
// evaluation returns, for every row, exactly the scalar compiled (and
// therefore tree-walking) prediction.
func TestCompiledBatchMatchesScalar(t *testing.T) {
	X, y := makeDataset(200, 5, 0.05, 7, func(x []float64) float64 { return x[0]*x[1] - x[4] })
	f, err := Train(X, y, Config{NumTrees: 6, MaxDepth: 6, MinLeaf: 1, NumThresh: 8, SampleFrac: 1.0, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := compileOrFatal(t, f)

	const rows = 64
	rng := rand.New(rand.NewSource(8))
	flat := make([]float64, rows*5)
	for i := range flat {
		flat[i] = (rng.Float64() - 0.5) * 3
	}
	got := c.PredictBatch(flat)
	if len(got) != rows {
		t.Fatalf("batch returned %d rows, want %d", len(got), rows)
	}
	for r := 0; r < rows; r++ {
		row := flat[r*5 : (r+1)*5]
		if want := c.Predict(row); !bitsEqual(got[r], want) {
			t.Fatalf("row %d: batch %v != scalar %v", r, got[r], want)
		}
		if want := f.Predict(row); !bitsEqual(got[r], want) {
			t.Fatalf("row %d: batch %v != tree-walk %v", r, got[r], want)
		}
	}

	// Into variant reuses the caller's buffer and returns it.
	dst := make([]float64, rows)
	if out := c.PredictBatchInto(dst, flat); &out[0] != &dst[0] {
		t.Fatal("PredictBatchInto did not reuse the caller's buffer")
	}
	for r := range dst {
		if !bitsEqual(dst[r], got[r]) {
			t.Fatalf("row %d: Into %v != Batch %v", r, dst[r], got[r])
		}
	}
}

// TestPredictBatchEmpty pins the n==0 fast paths: no allocation, no
// worker-pool dispatch, nil result — on both engines.
func TestPredictBatchEmpty(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	if out := f.PredictBatch(nil, 0); out != nil {
		t.Fatalf("Forest.PredictBatch(nil) = %v, want nil", out)
	}
	if out := f.PredictBatch([][]float64{}, 4); out != nil {
		t.Fatalf("Forest.PredictBatch(empty) = %v, want nil", out)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = f.PredictBatch(nil, 0) }); allocs != 0 {
		t.Fatalf("Forest.PredictBatch(nil) allocates %v times per call, want 0", allocs)
	}
	if out := c.PredictBatch(nil); out != nil {
		t.Fatalf("CompiledForest.PredictBatch(nil) = %v, want nil", out)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = c.PredictBatch(nil) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictBatch(nil) allocates %v times per call, want 0", allocs)
	}
	if out := c.PredictBatchInto([]float64{}, nil); len(out) != 0 {
		t.Fatalf("PredictBatchInto(empty) = %v, want empty", out)
	}
}

// TestCompiledBatchPanics pins the up-front shape checks.
func TestCompiledBatchPanics(t *testing.T) {
	c := compileOrFatal(t, fuzzForest(t)) // 3 features
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Predict wrong dim", func() { c.Predict(make([]float64, 2)) })
	expectPanic("PredictBatch ragged", func() { c.PredictBatch(make([]float64, 7)) })
	expectPanic("PredictBatchInto short dst", func() {
		c.PredictBatchInto(make([]float64, 1), make([]float64, 6))
	})
}

// TestCompiledZeroAlloc pins the steady-state compiled inference paths
// at zero allocations per operation — the contract the MPC inner loop's
// per-decision budget is built on.
func TestCompiledZeroAlloc(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	x := []float64{0.3, 0.7, 0.1}
	if allocs := testing.AllocsPerRun(200, func() { _ = c.Predict(x) }); allocs != 0 {
		t.Fatalf("CompiledForest.Predict allocates %v times per call, want 0", allocs)
	}
	rows := 16
	flat := make([]float64, rows*3)
	for i := range flat {
		flat[i] = float64(i%7) * 0.2
	}
	dst := make([]float64, rows)
	if allocs := testing.AllocsPerRun(200, func() { c.PredictBatchInto(dst, flat) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictBatchInto allocates %v times per call, want 0", allocs)
	}
}

// TestSelfCheck exercises the train-time guard: a faithful compilation
// passes, a corrupted node pool is caught.
func TestSelfCheck(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	if err := c.SelfCheck(f, 2048, 99); err != nil {
		t.Fatalf("faithful compilation failed self-check: %v", err)
	}
	// Corrupt one leaf value: the check must notice.
	for i, ft := range c.feature {
		if ft < 0 {
			c.thresh[i] += 1e-9
			break
		}
	}
	if err := c.SelfCheck(f, 2048, 99); err == nil {
		t.Fatal("self-check accepted a corrupted node pool")
	}
}

// TestCompileRejectsUnrepresentable covers the two compile errors.
func TestCompileRejectsUnrepresentable(t *testing.T) {
	if _, err := (&Forest{}).Compile(); err == nil {
		t.Fatal("compiled a forest with no trees")
	}
	f := &Forest{trees: make([]tree, 1), nFeatures: maxCompiledFeatures + 1}
	f.trees[0] = tree{Nodes: []node{{Feature: -1, Thresh: 1}}}
	if _, err := f.Compile(); err == nil {
		t.Fatal("compiled a forest beyond the int16 feature layout")
	}
}

// FuzzCompiledEquivalence drives the bit-exactness contract with
// fuzzer-chosen forest shapes and raw input bits: any trainable forest,
// compiled, must predict bit-identically to the tree-walking original
// on any input — including NaNs, infinities and denormals assembled
// from the raw bytes.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(int64(42), uint8(1), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f})                   // +Inf input
	f.Add(int64(7), uint8(5), uint8(8), []byte{1, 0, 0, 0, 0, 0, 0xf0, 0xff, 9, 9, 9, 9})        // NaN-adjacent
	f.Add(int64(-3), uint8(2), uint8(6), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f}) // MaxFloat64
	f.Fuzz(func(t *testing.T, seed int64, nTrees, depth uint8, raw []byte) {
		nt := int(nTrees)%6 + 1
		dp := int(depth)%8 + 1
		const d = 3
		X, y := makeDataset(40, d, 0.05, seed, func(x []float64) float64 { return x[0] - x[2] })
		forest, err := Train(X, y, Config{NumTrees: nt, MaxDepth: dp, MinLeaf: 1,
			NumThresh: 4, SampleFrac: 1.0, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := forest.Compile()
		if err != nil {
			t.Fatal(err)
		}
		// Assemble input rows from the raw bytes, 8 per feature value;
		// missing bytes repeat deterministically.
		if len(raw) == 0 {
			raw = []byte{0}
		}
		var rows []float64
		for r := 0; r < 8; r++ {
			for j := 0; j < d; j++ {
				var b [8]byte
				for k := range b {
					b[k] = raw[(r*d*8+j*8+k)%len(raw)]
				}
				rows = append(rows, math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
			}
		}
		for r := 0; r < 8; r++ {
			x := rows[r*d : (r+1)*d]
			want := forest.Predict(x)
			got := c.Predict(x)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("x=%v: compiled %v (bits %#x) != tree-walk %v (bits %#x)",
					x, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		batch := c.PredictBatch(rows)
		for r := range batch {
			if want := forest.Predict(rows[r*d : (r+1)*d]); math.Float64bits(batch[r]) != math.Float64bits(want) {
				t.Fatalf("batch row %d: %v != %v", r, batch[r], want)
			}
		}
	})
}
