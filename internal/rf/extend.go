package rf

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/par"
)

// Extend grows `extra` additional trees onto a forest previously
// produced by Train(X, y, cfg) — the tree-level incremental training
// that bagging makes natural: each new tree is grown on a fresh
// bootstrap resample of the same data, and the ensemble mean simply
// averages over more trees.
//
// The returned forest is a new value; f is never mutated (its tree
// slices are shared, but trees are immutable after training), so a
// model snapshot holding f stays byte-stable under concurrent
// extension.
//
// # Equality contract
//
// Extension replays the master RNG of the documented seeding scheme
// (see the package comment): the bootstrap draws and builder seeds of
// trees 0..n-1 are re-derived and discarded, so trees n..n+extra-1
// receive exactly the randomness a from-scratch Train with
// NumTrees = n+extra would have handed them. Consequently, when f was
// trained as Train(X, y, cfg):
//
//   - the first n trees of the result are f's trees, untouched — their
//     per-tree predictions are bit-identical by construction;
//   - Extend(f, X, y, cfg, k) is deep-equal to
//     Train(X, y, cfg′) with cfg′.NumTrees = n+k, including the
//     out-of-bag MAE, which is re-accumulated serially over all n+k
//     trees in tree order exactly as Train's phase 3 does;
//   - extension chains: Extend(Extend(f, …, j), …, k) equals
//     Train with n+j+k trees.
//
// cfg must be the configuration f was trained with (NumTrees equal to
// f.NumTrees() and the same Seed/hyperparameters); (X, y) must be the
// training set. Extend validates what it can see — tree count, data
// shape — and documents the rest: handing it different data or a
// different seed still returns a well-formed forest, but the equality
// contract above no longer holds.
func Extend(f *Forest, X [][]float64, y []float64, cfg Config, extra int) (*Forest, error) {
	if f == nil {
		return nil, fmt.Errorf("rf: Extend on a nil forest")
	}
	if extra <= 0 {
		return nil, fmt.Errorf("rf: Extend by %d trees, must be positive", extra)
	}
	if cfg.NumTrees != len(f.trees) {
		return nil, fmt.Errorf("rf: Extend config has NumTrees = %d, forest has %d", cfg.NumTrees, len(f.trees))
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("rf: %d feature rows but %d targets", len(X), len(y))
	}
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	if err := cfg.validate(n, d); err != nil {
		return nil, err
	}
	if d != f.nFeatures {
		return nil, fmt.Errorf("rf: Extend data has %d features, forest trained on %d", d, f.nFeatures)
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), d)
		}
	}
	mf := cfg.MaxFeatures
	if mf == 0 {
		mf = int(math.Ceil(math.Sqrt(float64(d))))
	}

	prior := cfg.NumTrees
	total := prior + extra
	rng := rand.New(rand.NewSource(cfg.Seed))
	nboot := int(math.Ceil(cfg.SampleFrac * float64(n)))

	// Phase 1 (serial): replay the master RNG through every tree —
	// existing and new — in the exact order a from-scratch Train with
	// `total` trees consumes it. The prior trees' draws are kept (their
	// bootstrap membership feeds the out-of-bag pass below); only the
	// tail seeds grow anything.
	boot := make([][]int, total)
	seeds := make([]int64, total)
	for t := 0; t < total; t++ {
		idx := make([]int, nboot)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot[t] = idx
		seeds[t] = rng.Int63()
	}

	out := &Forest{trees: make([]tree, total), nFeatures: d}
	copy(out.trees, f.trees)

	// Phase 2 (parallel): grow only the new trees, each from its
	// injected per-tree RNG — identical to what Train would have done
	// for the same tree indices.
	par.ForEach(cfg.Workers, extra, func(i int) {
		t := prior + i
		b := builder{cfg: cfg, maxFeat: mf, X: X, y: y,
			rng: rand.New(rand.NewSource(seeds[t]))}
		b.grow(boot[t], 0)
		out.trees[t] = tree{Nodes: b.nodes}
	})

	// Phase 3 (serial): out-of-bag accumulation over all trees in tree
	// order, bit-identical to Train's.
	oobSum := make([]float64, n)
	oobCnt := make([]int, n)
	inBag := make([]bool, n)
	for t := 0; t < total; t++ {
		for i := range inBag {
			inBag[i] = false
		}
		for _, j := range boot[t] {
			inBag[j] = true
		}
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobSum[i] += out.trees[t].predict(X[i])
				oobCnt[i]++
			}
		}
	}
	mae, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if oobCnt[i] > 0 {
			mae += math.Abs(oobSum[i]/float64(oobCnt[i]) - y[i])
			cnt++
		}
	}
	if cnt > 0 {
		out.oobMAE = mae / float64(cnt)
		out.oobOK = true
	}
	return out, nil
}
