package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeDataset samples n points of fn over [0,1]^d with additive noise.
func makeDataset(n, d int, noise float64, seed int64, fn func([]float64) float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = fn(x) + noise*rng.NormFloat64()
	}
	return X, y
}

func mae(f *Forest, X [][]float64, y []float64) float64 {
	s := 0.0
	for i := range X {
		s += math.Abs(f.Predict(X[i]) - y[i])
	}
	return s / float64(len(X))
}

func TestLearnsLinearFunction(t *testing.T) {
	fn := func(x []float64) float64 { return 3*x[0] - 2*x[1] + x[2] }
	X, y := makeDataset(2000, 3, 0.01, 1, fn)
	f, err := Train(X, y, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeDataset(500, 3, 0, 2, fn)
	if m := mae(f, Xt, yt); m > 0.25 {
		t.Errorf("test MAE = %v, want < 0.25 (target range ~[-2,4])", m)
	}
}

func TestLearnsNonlinearInteraction(t *testing.T) {
	fn := func(x []float64) float64 { return math.Sin(4*x[0]) * x[1] * 2 }
	X, y := makeDataset(3000, 4, 0.01, 3, fn) // 2 irrelevant features
	cfg := DefaultConfig(8)
	cfg.MaxFeatures = 4
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeDataset(400, 4, 0, 4, fn)
	if m := mae(f, Xt, yt); m > 0.2 {
		t.Errorf("test MAE = %v, want < 0.2", m)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	X, y := makeDataset(400, 3, 0.1, 5, func(x []float64) float64 { return x[0] + x[1] })
	f1, err1 := Train(X, y, DefaultConfig(42))
	f2, err2 := Train(X, y, DefaultConfig(42))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 50, 0.5, 0.25}
		if f1.Predict(x) != f2.Predict(x) {
			t.Fatalf("same-seed forests disagree at %v", x)
		}
	}
	f3, err := Train(X, y, DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 50 && same; i++ {
		x := []float64{float64(i) / 50, 0.5, 0.25}
		same = f1.Predict(x) == f3.Predict(x)
	}
	if same {
		t.Error("different seeds produced identical forests (suspicious)")
	}
}

func TestOOBErrorTracksNoise(t *testing.T) {
	fn := func(x []float64) float64 { return 2 * x[0] }
	X, y := makeDataset(1500, 2, 0.05, 6, fn)
	f, err := Train(X, y, DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	oob, ok := f.OOBMAE()
	if !ok {
		t.Fatal("no OOB estimate")
	}
	if oob <= 0 || oob > 0.3 {
		t.Errorf("OOB MAE = %v, want small positive", oob)
	}
	// OOB should roughly agree with held-out error.
	Xt, yt := makeDataset(500, 2, 0.05, 7, fn)
	held := mae(f, Xt, yt)
	if oob > 4*held+0.05 || held > 4*oob+0.05 {
		t.Errorf("OOB %v and held-out %v wildly disagree", oob, held)
	}
}

func TestTrainValidation(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []float64{1, 2}
	cases := []Config{
		{}, // zero config
		{NumTrees: -1, MaxDepth: 1, MinLeaf: 1, NumThresh: 1, SampleFrac: 1},
		{NumTrees: 1, MaxDepth: 0, MinLeaf: 1, NumThresh: 1, SampleFrac: 1},
		{NumTrees: 1, MaxDepth: 1, MinLeaf: 0, NumThresh: 1, SampleFrac: 1},
		{NumTrees: 1, MaxDepth: 1, MinLeaf: 1, NumThresh: 0, SampleFrac: 1},
		{NumTrees: 1, MaxDepth: 1, MinLeaf: 1, NumThresh: 1, SampleFrac: 0},
		{NumTrees: 1, MaxDepth: 1, MinLeaf: 1, NumThresh: 1, SampleFrac: 1, MaxFeatures: 5},
	}
	for i, cfg := range cases {
		if _, err := Train(X, y, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Train(nil, nil, DefaultConfig(0)); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(X, []float64{1}, DefaultConfig(0)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, y, DefaultConfig(0)); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	X, y := makeDataset(50, 2, 0, 8, func(x []float64) float64 { return x[0] })
	f, err := Train(X, y, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict with wrong dim did not panic")
		}
	}()
	f.Predict([]float64{1})
}

func TestConstantTarget(t *testing.T) {
	X, _ := makeDataset(100, 2, 0, 9, func([]float64) float64 { return 0 })
	y := make([]float64, 100)
	for i := range y {
		y[i] = 5
	}
	f, err := Train(X, y, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.5, 0.5}); got != 5 {
		t.Errorf("constant-target prediction = %v, want 5", got)
	}
}

func TestSingleSample(t *testing.T) {
	f, err := Train([][]float64{{1, 2}}, []float64{3}, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0, 0}); got != 3 {
		t.Errorf("single-sample prediction = %v, want 3", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	X, y := makeDataset(300, 3, 0.05, 10, func(x []float64) float64 { return x[0] * x[1] })
	f, err := Train(X, y, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() || g.NumFeatures() != f.NumFeatures() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < 100; i++ {
		x := X[i]
		if g.Predict(x) != f.Predict(x) {
			t.Fatalf("prediction mismatch after round trip at %v", x)
		}
	}
	o1, ok1 := f.OOBMAE()
	o2, ok2 := g.OOBMAE()
	if o1 != o2 || ok1 != ok2 {
		t.Error("OOB estimate lost in round trip")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var f Forest
	if err := f.UnmarshalBinary([]byte("not a forest")); err == nil {
		t.Error("garbage accepted")
	}
}

// Property: forest predictions are bounded by the training target range
// (each leaf stores a mean of training targets).
func TestPredictionBoundedQuick(t *testing.T) {
	X, y := makeDataset(800, 3, 0.1, 11, func(x []float64) float64 { return 4*x[0] - x[2] })
	f, err := Train(X, y, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := y[0], y[0]
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	prop := func(a, b, c float64) bool {
		x := []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1)), math.Abs(math.Mod(c, 1))}
		p := f.Predict(x)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

// Property: more trees never increase OOB error dramatically — loose
// stability check across ensemble sizes.
func TestEnsembleStability(t *testing.T) {
	X, y := makeDataset(800, 2, 0.05, 13, func(x []float64) float64 { return x[0] + x[1] })
	cfgSmall := DefaultConfig(6)
	cfgSmall.NumTrees = 5
	cfgBig := DefaultConfig(6)
	cfgBig.NumTrees = 60
	small, err1 := Train(X, y, cfgSmall)
	big, err2 := Train(X, y, cfgBig)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	Xt, yt := makeDataset(400, 2, 0, 14, func(x []float64) float64 { return x[0] + x[1] })
	if mb, ms := mae(big, Xt, yt), mae(small, Xt, yt); mb > ms*1.5+0.02 {
		t.Errorf("bigger ensemble much worse: %v vs %v", mb, ms)
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	// y depends only on features 0 and 2; feature 1 is noise.
	fn := func(x []float64) float64 { return 5*x[0] + 2*x[2] }
	X, y := makeDataset(1500, 3, 0.02, 21, fn)
	f, err := Train(X, y, DefaultConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := f.FeatureImportance(X, y)
	if err != nil {
		t.Fatal(err)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
	if imp[0] < imp[2] {
		t.Errorf("dominant feature 0 (%.3f) not above feature 2 (%.3f)", imp[0], imp[2])
	}
	if imp[1] > 0.1 {
		t.Errorf("noise feature importance %.3f, want near 0", imp[1])
	}
}

func TestFeatureImportanceValidation(t *testing.T) {
	X, y := makeDataset(100, 2, 0, 23, func(x []float64) float64 { return x[0] })
	f, err := Train(X, y, DefaultConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.FeatureImportance(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := f.FeatureImportance([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
}
