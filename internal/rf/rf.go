// Package rf implements Random Forest regression (Breiman 2001) from
// scratch: CART regression trees grown on bootstrap resamples with
// per-split random feature subsets, averaged at prediction time. The
// paper trains such a model offline on kernel performance counters and
// hardware configurations to predict kernel execution time and power
// (§IV-A3); this package is the substrate for that predictor, but is
// fully general.
//
// # Seeding scheme and parallel training
//
// Training is deterministic given Config.Seed for every value of
// Config.Workers. All randomness is drawn from a single master
// rand.Rand seeded with Config.Seed, consumed serially in a fixed
// order before any tree is grown: for tree t = 0..NumTrees-1, first
// the ceil(SampleFrac·n) bootstrap sample indices (rng.Intn(n) each),
// then one rng.Int63() that seeds tree t's private builder RNG. Tree
// growth then uses only that injected per-tree *rand.Rand (feature
// subsets per split), so trees can be grown concurrently — or in any
// order — and still come out bit-identical to a serial pass,
// tree-for-tree. Out-of-bag accumulation is likewise reduced serially
// in tree order so the floating-point sums match the serial ones
// exactly.
package rf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mpcdvfs/internal/par"
)

// Config controls forest training. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	NumTrees    int     // number of trees in the ensemble
	MaxDepth    int     // maximum tree depth (root = depth 0)
	MinLeaf     int     // minimum samples in a leaf
	MaxFeatures int     // features considered per split; 0 means sqrt(d)
	NumThresh   int     // candidate thresholds per feature per split
	SampleFrac  float64 // bootstrap sample size as a fraction of n
	Seed        int64   // RNG seed; training is deterministic given Seed
	// Workers is the number of goroutines growing trees concurrently:
	// <= 0 uses the process default (par.Default), 1 forces a serial
	// pass. The trained forest is bit-identical for every value — see
	// the package comment for the seeding scheme that guarantees it.
	Workers int
}

// DefaultConfig returns a configuration that works well for the kernel
// predictor workload: 40 trees of depth 12.
func DefaultConfig(seed int64) Config {
	return Config{
		NumTrees:    40,
		MaxDepth:    12,
		MinLeaf:     2,
		MaxFeatures: 0,
		NumThresh:   24,
		SampleFrac:  1.0,
		Seed:        seed,
	}
}

func (c Config) validate(n, d int) error {
	switch {
	case n == 0:
		return errors.New("rf: no training samples")
	case d == 0:
		return errors.New("rf: samples have no features")
	case c.NumTrees <= 0:
		return fmt.Errorf("rf: NumTrees = %d, must be positive", c.NumTrees)
	case c.MaxDepth <= 0:
		return fmt.Errorf("rf: MaxDepth = %d, must be positive", c.MaxDepth)
	case c.MinLeaf <= 0:
		return fmt.Errorf("rf: MinLeaf = %d, must be positive", c.MinLeaf)
	case c.NumThresh <= 0:
		return fmt.Errorf("rf: NumThresh = %d, must be positive", c.NumThresh)
	case c.SampleFrac <= 0 || c.SampleFrac > 1:
		return fmt.Errorf("rf: SampleFrac = %v, must be in (0,1]", c.SampleFrac)
	case c.MaxFeatures < 0 || c.MaxFeatures > d:
		return fmt.Errorf("rf: MaxFeatures = %d outside [0,%d]", c.MaxFeatures, d)
	}
	return nil
}

// node is one tree node, stored in a flat slice; children are indices.
// Leaves have feature == -1 and carry the mean target in thresh.
type node struct {
	Feature     int // -1 for leaf
	Thresh      float64
	Left, Right int32 // child indices; unused for leaves
}

// tree is one CART regression tree in flattened form.
type tree struct{ Nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		nd := t.Nodes[i]
		if nd.Feature < 0 {
			return nd.Thresh
		}
		if x[nd.Feature] <= nd.Thresh {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

// Forest is a trained Random Forest regressor.
type Forest struct {
	trees     []tree
	nFeatures int
	oobMAE    float64
	oobOK     bool
}

// NumFeatures returns the feature dimensionality the forest was trained
// on.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// OOBMAE returns the out-of-bag mean absolute error estimated during
// training, and false if no sample was ever out of bag (SampleFrac == 1
// still leaves samples out of individual bootstrap draws, so this is
// normally available).
func (f *Forest) OOBMAE() (float64, bool) { return f.oobMAE, f.oobOK }

// Predict returns the forest's estimate for feature vector x. It panics
// if x has the wrong dimensionality.
func (f *Forest) Predict(x []float64) float64 {
	if len(x) != f.nFeatures {
		panic(fmt.Sprintf("rf: Predict with %d features, trained on %d", len(x), f.nFeatures))
	}
	s := 0.0
	for i := range f.trees {
		s += f.trees[i].predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictBatch returns the forest's estimate for every row of X, fanning
// the rows out across `workers` goroutines (<= 0 uses the process
// default, 1 is serial). Each row's prediction sums the trees in the
// same order as Predict, so the result is bit-identical to calling
// Predict row by row regardless of the worker count. It panics if any
// row has the wrong dimensionality — checked up front, before any
// goroutine is spawned, so the panic is synchronous like Predict's.
// An empty batch returns nil immediately: no result allocation, no
// worker resolution, no pool dispatch (CompiledForest.PredictBatch
// mirrors the same fast path).
func (f *Forest) PredictBatch(X [][]float64, workers int) []float64 {
	if len(X) == 0 {
		return nil
	}
	for i, x := range X {
		if len(x) != f.nFeatures {
			panic(fmt.Sprintf("rf: PredictBatch row %d has %d features, trained on %d", i, len(x), f.nFeatures))
		}
	}
	out := make([]float64, len(X))
	par.ForEach(workers, len(X), func(i int) {
		out[i] = f.Predict(X[i])
	})
	return out
}

// Train grows a forest on (X, y). Rows of X are feature vectors; every
// row must have the same length. Training is deterministic for a given
// Config.Seed, independent of Config.Workers (see the package comment
// for the seeding scheme).
func Train(X [][]float64, y []float64, cfg Config) (*Forest, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("rf: %d feature rows but %d targets", len(X), len(y))
	}
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	if err := cfg.validate(n, d); err != nil {
		return nil, err
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), d)
		}
	}
	mf := cfg.MaxFeatures
	if mf == 0 {
		mf = int(math.Ceil(math.Sqrt(float64(d))))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]tree, cfg.NumTrees), nFeatures: d}

	oobSum := make([]float64, n)
	oobCnt := make([]int, n)
	nboot := int(math.Ceil(cfg.SampleFrac * float64(n)))

	// Phase 1 (serial): draw every tree's bootstrap sample and builder
	// seed from the master RNG, in the exact order a serial pass
	// consumes them. This is the only place randomness enters training.
	boot := make([][]int, cfg.NumTrees)
	seeds := make([]int64, cfg.NumTrees)
	for t := 0; t < cfg.NumTrees; t++ {
		idx := make([]int, nboot)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot[t] = idx
		seeds[t] = rng.Int63()
	}

	// Phase 2 (parallel): grow each tree from its own injected RNG.
	// Trees are independent given (bootstrap, seed); each task writes
	// only its own slot.
	par.ForEach(cfg.Workers, cfg.NumTrees, func(t int) {
		b := builder{cfg: cfg, maxFeat: mf, X: X, y: y,
			rng: rand.New(rand.NewSource(seeds[t]))}
		b.grow(boot[t], 0)
		f.trees[t] = tree{Nodes: b.nodes}
	})

	// Phase 3 (serial): out-of-bag accumulation in tree order, so the
	// floating-point sums are bit-identical to the serial pass.
	inBag := make([]bool, n)
	for t := 0; t < cfg.NumTrees; t++ {
		for i := range inBag {
			inBag[i] = false
		}
		for _, j := range boot[t] {
			inBag[j] = true
		}
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobSum[i] += f.trees[t].predict(X[i])
				oobCnt[i]++
			}
		}
	}

	mae, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if oobCnt[i] > 0 {
			mae += math.Abs(oobSum[i]/float64(oobCnt[i]) - y[i])
			cnt++
		}
	}
	if cnt > 0 {
		f.oobMAE = mae / float64(cnt)
		f.oobOK = true
	}
	return f, nil
}

// builder grows one tree into nodes.
type builder struct {
	cfg     Config
	maxFeat int
	X       [][]float64
	y       []float64
	rng     *rand.Rand
	nodes   []node
}

// grow builds the subtree over the sample indices idx at the given depth
// and returns its node index.
func (b *builder) grow(idx []int, depth int) int32 {
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{})

	mean := 0.0
	for _, i := range idx {
		mean += b.y[i]
	}
	mean /= float64(len(idx))

	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || constant(b.y, idx) {
		b.nodes[me] = node{Feature: -1, Thresh: mean}
		return me
	}

	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		b.nodes[me] = node{Feature: -1, Thresh: mean}
		return me
	}

	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		b.nodes[me] = node{Feature: -1, Thresh: mean}
		return me
	}
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[me] = node{Feature: feat, Thresh: thr, Left: l, Right: r}
	return me
}

func constant(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] { //mpclint:ignore float-eq leaf purity is deliberately bit-exact; an epsilon would change which trees are grown and break the byte-identical-forest guarantee
			return false
		}
	}
	return true
}

// bestSplit searches a random feature subset and candidate thresholds for
// the split minimizing weighted child variance (maximum variance
// reduction).
func (b *builder) bestSplit(idx []int) (feat int, thr float64, ok bool) {
	d := len(b.X[0])
	feats := b.rng.Perm(d)[:b.maxFeat]

	bestScore := math.Inf(1)
	for _, f := range feats {
		// Candidate thresholds: distinct quantiles of the feature over
		// this node's samples.
		vals := make([]float64, len(idx))
		for i, s := range idx {
			vals[i] = b.X[s][f]
		}
		sort.Float64s(vals)
		if vals[0] == vals[len(vals)-1] { //mpclint:ignore float-eq constant-feature test over sorted values is deliberately bit-exact, like every split decision
			continue
		}
		nth := b.cfg.NumThresh
		if nth > len(vals)-1 {
			nth = len(vals) - 1
		}
		prev := math.NaN()
		for t := 1; t <= nth; t++ {
			pos := t * len(vals) / (nth + 1)
			if pos >= len(vals)-1 {
				pos = len(vals) - 2
			}
			cand := (vals[pos] + vals[pos+1]) / 2
			if cand == prev || cand <= vals[0] || cand > vals[len(vals)-1] { //mpclint:ignore float-eq candidate thresholds are deduplicated bit-exactly so the grown forest is reproducible byte for byte
				continue
			}
			prev = cand
			if score, valid := b.splitScore(idx, f, cand); valid && score < bestScore {
				bestScore, feat, thr, ok = score, f, cand, true
			}
		}
	}
	return feat, thr, ok
}

// splitScore returns the weighted sum of child variances (times n) for
// splitting idx on feature f at threshold thr.
func (b *builder) splitScore(idx []int, f int, thr float64) (float64, bool) {
	var nl, nr float64
	var sl, sr, ql, qr float64
	for _, i := range idx {
		v := b.y[i]
		if b.X[i][f] <= thr {
			nl++
			sl += v
			ql += v * v
		} else {
			nr++
			sr += v
			qr += v * v
		}
	}
	if nl < float64(b.cfg.MinLeaf) || nr < float64(b.cfg.MinLeaf) {
		return 0, false
	}
	// Sum of squared deviations per side: Σy² - (Σy)²/n.
	devL := ql - sl*sl/nl
	devR := qr - sr*sr/nr
	return devL + devR, true
}
