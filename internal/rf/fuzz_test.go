package rf

import (
	"math"
	"testing"
)

// fuzzForest trains a tiny forest whose serialized form seeds the fuzz
// corpus with a structurally valid input.
func fuzzForest(tb testing.TB) *Forest {
	tb.Helper()
	X, y := makeDataset(60, 3, 0.05, 21, func(x []float64) float64 { return x[0] - x[1] })
	cfg := Config{NumTrees: 3, MaxDepth: 4, MinLeaf: 1, NumThresh: 6, SampleFrac: 1.0, Seed: 21}
	f, err := Train(X, y, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// FuzzForestDeserialize drives UnmarshalBinary with hostile bytes: any
// input must either be rejected with an error or produce a forest whose
// Predict terminates without panicking and which round-trips through
// MarshalBinary unchanged. This is the model-loading path of cmd/mpcsim
// and cmd/mpcserve (-model), which reads files the runtime did not
// produce itself.
func FuzzForestDeserialize(f *testing.F) {
	valid, err := fuzzForest(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	f.Add([]byte{})
	f.Add([]byte("not a forest"))
	corrupt := append([]byte(nil), valid...)
	for i := len(corrupt) / 2; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		var g Forest
		if err := g.UnmarshalBinary(data); err != nil {
			return // rejected: exactly what hostile input should get
		}
		// Accepted: the forest must be usable. Predict must terminate
		// (validateTree's strictly-forward child invariant) and not
		// panic for an in-dimension input.
		x := make([]float64, g.NumFeatures())
		for i := range x {
			x[i] = float64(i) * 0.5
		}
		p1 := g.Predict(x)

		// And it must survive a marshal/unmarshal round trip intact.
		out, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted forest failed to re-marshal: %v", err)
		}
		var h Forest
		if err := h.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshaled forest rejected: %v", err)
		}
		p2 := h.Predict(x)
		if p1 != p2 && !(math.IsNaN(p1) && math.IsNaN(p2)) {
			t.Fatalf("round trip changed prediction: %v != %v", p2, p1)
		}
	})
}
