package rf

// FeatureImportance returns the mean-decrease-in-impurity importance of
// each feature: for every split in every tree, the training variance
// reduction it achieved is credited to its feature, and the totals are
// normalized to sum to 1. The paper's counter selection (§IV-A2) is the
// same exercise in reverse — keeping the features that carry the
// predictive signal.
//
// Split gains are not stored in the flattened trees, so they are
// recomputed by replaying the training data through each tree; pass the
// same X and y used for training. The result is deterministic.
func (f *Forest) FeatureImportance(X [][]float64, y []float64) ([]float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errInvalidImportanceInput
	}
	for _, row := range X {
		if len(row) != f.nFeatures {
			return nil, errInvalidImportanceInput
		}
	}
	imp := make([]float64, f.nFeatures)
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	for t := range f.trees {
		f.trees[t].accumulateImportance(0, idx, X, y, imp)
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp, nil
}

var errInvalidImportanceInput = importanceError("rf: importance needs the training data with matching dimensions")

type importanceError string

func (e importanceError) Error() string { return string(e) }

// accumulateImportance replays samples idx through the subtree at node n
// and credits each split with its variance reduction.
func (t *tree) accumulateImportance(n int32, idx []int, X [][]float64, y []float64, imp []float64) {
	nd := t.Nodes[n]
	if nd.Feature < 0 || len(idx) < 2 {
		return
	}
	var left, right []int
	for _, i := range idx {
		if X[i][nd.Feature] <= nd.Thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// The replayed data does not exercise this split; descend anyway.
		t.accumulateImportance(nd.Left, left, X, y, imp)
		t.accumulateImportance(nd.Right, right, X, y, imp)
		return
	}
	gain := sumSquaredDev(y, idx) - sumSquaredDev(y, left) - sumSquaredDev(y, right)
	if gain > 0 {
		imp[nd.Feature] += gain
	}
	t.accumulateImportance(nd.Left, left, X, y, imp)
	t.accumulateImportance(nd.Right, right, X, y, imp)
}

// sumSquaredDev returns Σ(y−ȳ)² over the index set.
func sumSquaredDev(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s, q := 0.0, 0.0
	for _, i := range idx {
		s += y[i]
		q += y[i] * y[i]
	}
	n := float64(len(idx))
	return q - s*s/n
}
