package rf

import (
	"math/rand"
	"testing"
)

// TestFusedMatchesPerSlot proves the fusing contract at the rf layer:
// evaluating any prefix of staged slots as one mega-batch returns, for
// every slot, exactly the result of evaluating that slot's key block
// alone through PredictBatchKeysInto.
func TestFusedMatchesPerSlot(t *testing.T) {
	const d, rows, maxReq = 5, 21, 8
	X, y := makeDataset(300, d, 0.05, 11, func(x []float64) float64 { return x[0]*x[2] - x[4] })
	f, err := Train(X, y, Config{NumTrees: 7, MaxDepth: 7, MinLeaf: 1,
		NumThresh: 8, SampleFrac: 1.0, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := compileOrFatal(t, f)

	fk := NewFusedKeys(d, rows, maxReq)
	if fk.Rows() != rows || fk.MaxRequests() != maxReq {
		t.Fatalf("FusedKeys shape %d×%d, want %d×%d", fk.Rows(), fk.MaxRequests(), rows, maxReq)
	}
	rng := rand.New(rand.NewSource(12))
	flat := make([]float64, rows*d)
	for i := 0; i < maxReq; i++ {
		for j := range flat {
			flat[j] = (rng.Float64() - 0.5) * 3
		}
		KeysInto(fk.Slot(i), flat)
	}

	for _, nreq := range []int{1, 2, 3, maxReq} {
		fused := c.PredictFusedInto(make([]float64, nreq*rows), fk, nreq)
		for i := 0; i < nreq; i++ {
			want := c.PredictBatchKeysInto(make([]float64, rows), fk.Slot(i))
			for r := 0; r < rows; r++ {
				if !bitsEqual(fused[i*rows+r], want[r]) {
					t.Fatalf("nreq=%d slot=%d row=%d: fused %v != solo %v",
						nreq, i, r, fused[i*rows+r], want[r])
				}
			}
		}
	}
}

// TestFusedZeroAlloc pins the fused entry point at zero allocations in
// the steady state — the coordinator's epoch inner loop runs this once
// per epoch and must not allocate (matching the hotpath annotation).
func TestFusedZeroAlloc(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	const rows, maxReq = 21, 4
	fk := NewFusedKeys(c.NumFeatures(), rows, maxReq)
	flat := make([]float64, rows*c.NumFeatures())
	for i := range flat {
		flat[i] = float64(i%7) * 0.2
	}
	for i := 0; i < maxReq; i++ {
		KeysInto(fk.Slot(i), flat)
	}
	dst := make([]float64, maxReq*rows)
	if allocs := testing.AllocsPerRun(200, func() { _ = fk.Slot(2) }); allocs != 0 {
		t.Fatalf("FusedKeys.Slot allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { c.PredictFusedInto(dst, fk, maxReq) }); allocs != 0 {
		t.Fatalf("CompiledForest.PredictFusedInto allocates %v times per call, want 0", allocs)
	}
}

// TestFusedValidation checks the panic guards on shape mismatches.
func TestFusedValidation(t *testing.T) {
	f := fuzzForest(t)
	c := compileOrFatal(t, f)
	fk := NewFusedKeys(c.NumFeatures(), 4, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero features", func() { NewFusedKeys(0, 4, 2) })
	mustPanic("oversized features", func() { NewFusedKeys(maxCompiledFeatures+1, 4, 2) })
	mustPanic("zero rows", func() { NewFusedKeys(3, 0, 2) })
	mustPanic("slot out of range", func() { fk.Slot(2) })
	mustPanic("nreq over capacity", func() { c.PredictFusedInto(make([]float64, 12), fk, 3) })
	mustPanic("nreq zero", func() { c.PredictFusedInto(nil, fk, 0) })
	mustPanic("short dst", func() { c.PredictFusedInto(make([]float64, 3), fk, 1) })
	wrong := NewFusedKeys(c.NumFeatures()+1, 4, 1)
	mustPanic("feature mismatch", func() { c.PredictFusedInto(make([]float64, 4), wrong, 1) })
}
