package rf

// Paired kernel benchmarks for the three forest engines: the reference
// tree walk, the retained PR 4 depth-first compiled pool (legacy), and
// the branchless clustered level-order layout. Scalar pairs run both
// with one fixed input row (the predictor-friendly best case for
// branchy descent: every data-dependent branch repeats, so the tree
// walk speculates perfectly) and cycling over 64 distinct rows (the
// serving regime — every decision carries fresh counters, so branchy
// descent pays misprediction flushes while the predicated kernels are
// input-oblivious).
//
// The "kernels" section of BENCH_rf.json is recorded from:
//
//	go test ./internal/rf -run '^$' -bench '^BenchmarkCompiled' -benchmem

import (
	"math"
	"math/rand"
	"testing"
)

// benchForest mirrors the shared fixture's shape: 40 trees, depth 14,
// 14 features.
func benchForest(tb testing.TB) *Forest {
	tb.Helper()
	X, y := makeDataset(3000, 14, 0.05, 42, func(x []float64) float64 {
		return x[0]*x[1] - 3*x[13] + math.Sin(4*x[7])*x[2]
	})
	f, err := Train(X, y, Config{NumTrees: 40, MaxDepth: 14, MinLeaf: 2,
		MaxFeatures: 7, NumThresh: 24, SampleFrac: 1.0, Seed: 42, Workers: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func benchInputs(n int) [][]float64 {
	rng := rand.New(rand.NewSource(77))
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, 14)
		for j := range x {
			x[j] = (rng.Float64() - 0.5) * 4
		}
		xs[i] = x
	}
	return xs
}

func BenchmarkCompiledScalarTreeWalk(b *testing.B) {
	f := benchForest(b)
	x := benchInputs(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(x)
	}
}

func BenchmarkCompiledScalarLegacy(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	x := benchInputs(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.predictLegacy(x)
	}
}

func BenchmarkCompiledScalarBranchless(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	x := benchInputs(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Predict(x)
	}
}

func BenchmarkCompiledScalarTreeWalkVaried(b *testing.B) {
	f := benchForest(b)
	xs := benchInputs(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(xs[i&63])
	}
}

func BenchmarkCompiledScalarLegacyVaried(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	xs := benchInputs(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.predictLegacy(xs[i&63])
	}
}

func BenchmarkCompiledScalarBranchlessVaried(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	xs := benchInputs(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Predict(xs[i&63])
	}
}

// benchMatrix builds a 336-row flat matrix, the default decision-space
// sweep size.
func benchMatrix() []float64 {
	rng := rand.New(rand.NewSource(3))
	flat := make([]float64, 336*14)
	for i := range flat {
		flat[i] = (rng.Float64() - 0.5) * 4
	}
	return flat
}

func BenchmarkCompiledBatchLegacy(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	flat := benchMatrix()
	dst := make([]float64, len(flat)/14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.predictLegacyBatchInto(dst, flat)
	}
}

func BenchmarkCompiledBatchInterleaved(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	flat := benchMatrix()
	dst := make([]float64, len(flat)/14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatchInto(dst, flat)
	}
}

func BenchmarkCompiledBatchInterleavedKeys(b *testing.B) {
	c := compileOrFatal(b, benchForest(b))
	flat := benchMatrix()
	keys := make([]uint64, len(flat))
	KeysInto(keys, flat)
	dst := make([]float64, len(flat)/14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatchKeysInto(dst, keys)
	}
}
