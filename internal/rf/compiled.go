package rf

import (
	"fmt"
	"math"
	"math/rand"
)

// CompiledForest is an immutable, cache-friendly compilation of a
// trained *Forest: every node of every tree lives in one contiguous
// structure-of-arrays pool (feature index as int16, threshold — or leaf
// value — as float64, absolute child indices as int32), with one root
// offset per tree. Traversal is iterative over flat arrays: no
// recursion, no per-node heap objects, no per-tree slice headers to
// chase.
//
// The compiled form is derived state, never persisted: MarshalBinary
// stays the canonical wire format, and a CompiledForest is rebuilt from
// the Forest after every load or train. Its contract is bit-exactness —
// Predict and PredictBatch return results bit-identical to the
// tree-walking Forest for every input (the comparisons, the per-tree
// summation order and the final division are the same operations in the
// same order), so golden replays, determinism proofs and the mpclint
// guarantees carry over unchanged.
//
// PredictBatch evaluates a row-major flat feature matrix tree-by-tree
// rather than row-by-row: each tree's node pool stays hot in cache
// across all rows of the batch, which is where the sweep-level speedup
// over scalar tree walking comes from (each row still accumulates tree
// values in tree order, so the sums are bit-identical to scalar calls).
//
// A CompiledForest is safe for concurrent use: all fields are
// immutable after Compile, and the Into variants write only into
// caller-owned buffers.
//
//mpclint:immutable SoA node pool is shared lock-free by concurrent predictors; any post-Compile write is a data race and breaks bit-exactness
type CompiledForest struct {
	feature []int16   // split feature per node; -1 marks a leaf
	thresh  []float64 // split threshold, or the leaf's mean target
	left    []int32   // absolute pool index of the left child
	right   []int32   // absolute pool index of the right child
	roots   []int32   // pool index of each tree's root
	nTrees  int
	nFeat   int
}

// maxCompiledFeatures bounds the feature dimensionality the int16
// feature column can address.
const maxCompiledFeatures = math.MaxInt16

// Compile flattens the forest into its compiled form. It fails only on
// forests that cannot be represented (no trees, or a feature
// dimensionality beyond the int16 node layout) — never on any forest
// produced by Train or accepted by UnmarshalBinary with a sane feature
// count.
func (f *Forest) Compile() (*CompiledForest, error) {
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("rf: cannot compile a forest with no trees")
	}
	if f.nFeatures > maxCompiledFeatures {
		return nil, fmt.Errorf("rf: %d features exceed the compiled int16 node layout (max %d)",
			f.nFeatures, maxCompiledFeatures)
	}
	total := 0
	for i := range f.trees {
		total += len(f.trees[i].Nodes)
	}
	c := &CompiledForest{
		feature: make([]int16, total),
		thresh:  make([]float64, total),
		left:    make([]int32, total),
		right:   make([]int32, total),
		roots:   make([]int32, len(f.trees)),
		nTrees:  len(f.trees),
		nFeat:   f.nFeatures,
	}
	base := int32(0)
	for t := range f.trees {
		c.roots[t] = base
		for i, nd := range f.trees[t].Nodes {
			j := base + int32(i)
			if nd.Feature < 0 {
				c.feature[j] = -1
				c.thresh[j] = nd.Thresh
				continue
			}
			c.feature[j] = int16(nd.Feature)
			c.thresh[j] = nd.Thresh
			c.left[j] = base + nd.Left
			c.right[j] = base + nd.Right
		}
		base += int32(len(f.trees[t].Nodes))
	}
	return c, nil
}

// NumTrees returns the ensemble size.
func (c *CompiledForest) NumTrees() int { return c.nTrees }

// NumFeatures returns the feature dimensionality.
func (c *CompiledForest) NumFeatures() int { return c.nFeat }

// NumNodes returns the total size of the flat node pool across all
// trees.
func (c *CompiledForest) NumNodes() int { return len(c.feature) }

// Predict returns the forest's estimate for feature vector x,
// bit-identical to the tree-walking (*Forest).Predict. It panics if x
// has the wrong dimensionality.
//
//mpclint:hotpath pinned at 0 allocs/op by TestCompiledZeroAlloc
func (c *CompiledForest) Predict(x []float64) float64 {
	if len(x) != c.nFeat {
		panic(fmt.Sprintf("rf: Predict with %d features, compiled for %d", len(x), c.nFeat))
	}
	s := 0.0
	for _, root := range c.roots {
		i := root
		for c.feature[i] >= 0 {
			if x[c.feature[i]] <= c.thresh[i] {
				i = c.left[i]
			} else {
				i = c.right[i]
			}
		}
		s += c.thresh[i]
	}
	return s / float64(c.nTrees)
}

// PredictBatch evaluates a row-major flat feature matrix (len(X) must
// be a multiple of NumFeatures; row r is X[r*d : (r+1)*d]) and returns
// one prediction per row. An empty matrix returns nil without touching
// the pool. Allocates the result slice; use PredictBatchInto for a
// zero-allocation steady state.
func (c *CompiledForest) PredictBatch(X []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	return c.PredictBatchInto(make([]float64, len(X)/c.nFeat), X)
}

// PredictBatchInto is PredictBatch writing into the caller-owned dst,
// which must hold exactly one slot per row; it returns dst. The batch
// is evaluated tree-by-tree so each tree's nodes stay cache-hot across
// all rows, but every row accumulates tree values in tree order and
// divides once — bit-identical to calling Predict row by row. It panics
// on a dimensionality or size mismatch, checked up front.
//
//mpclint:hotpath pinned at 0 allocs/op by TestCompiledZeroAlloc
func (c *CompiledForest) PredictBatchInto(dst []float64, X []float64) []float64 {
	d := c.nFeat
	if len(X)%d != 0 {
		panic(fmt.Sprintf("rf: PredictBatch matrix of %d values is not a multiple of %d features", len(X), d))
	}
	rows := len(X) / d
	if len(dst) != rows {
		panic(fmt.Sprintf("rf: PredictBatchInto dst holds %d rows, matrix has %d", len(dst), rows))
	}
	if rows == 0 {
		return dst
	}
	for r := range dst {
		dst[r] = 0
	}
	for _, root := range c.roots {
		off := 0
		for r := 0; r < rows; r++ {
			x := X[off : off+d : off+d]
			i := root
			for c.feature[i] >= 0 {
				if x[c.feature[i]] <= c.thresh[i] {
					i = c.left[i]
				} else {
					i = c.right[i]
				}
			}
			dst[r] += c.thresh[i]
			off += d
		}
	}
	div := float64(c.nTrees)
	for r := range dst {
		dst[r] /= div
	}
	return dst
}

// SelfCheck verifies the compiled forest against the tree-walking
// original on `samples` deterministic pseudo-random inputs drawn to
// straddle every feature's observed threshold range, comparing raw
// float64 bits: any difference — even in the last ulp — is an error.
// This is the load/train-time guard cmd/train runs before persisting a
// model (compiled inference is only trusted because it is bit-exact).
func (c *CompiledForest) SelfCheck(f *Forest, samples int, seed int64) error {
	if f.nFeatures != c.nFeat {
		return fmt.Errorf("rf: self-check against a forest with %d features, compiled for %d", f.nFeatures, c.nFeat)
	}
	lo := make([]float64, c.nFeat)
	hi := make([]float64, c.nFeat)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for i, ft := range c.feature {
		if ft < 0 {
			continue
		}
		if v := c.thresh[i]; v < lo[ft] {
			lo[ft] = v
		}
		if v := c.thresh[i]; v > hi[ft] {
			hi[ft] = v
		}
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, c.nFeat)
	for s := 0; s < samples; s++ {
		for i := range x {
			l, h := lo[i], hi[i]
			if l > h { // feature never split on: any value exercises it
				l, h = -1, 1
			}
			pad := (h-l)*0.25 + 1
			x[i] = l - pad + rng.Float64()*(h-l+2*pad)
		}
		want := f.Predict(x)
		got := c.Predict(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Errorf("rf: compiled forest diverges at sample %d: compiled %v (bits %#x), tree-walk %v (bits %#x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	return nil
}
