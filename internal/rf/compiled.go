package rf

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// CompiledForest is an immutable, cache-friendly compilation of a
// trained *Forest, built for branchless descent.
//
// Layout. Every node of every tree lives in one contiguous pool of
// 16-byte records (threshold key, left-child index, feature index),
// laid out per tree in breadth-first (level-order) clusters: the top
// clusterStratum levels of a tree are contiguous, and deeper strata are
// packed as van-Emde-Boas-style subtree clusters so a descent touches a
// short run of cache lines per stratum instead of pointer-chasing a
// depth-first pool. Children are always emitted as an adjacent pair
// (right = left+1), which is what makes arithmetic child selection
// possible. Leaves self-loop (left = self) with an always-true
// threshold key, so descent can run a fixed number of steps per tree —
// padding steps on a leaf are harmless — and a separate leafVal array
// carries the leaf payloads.
//
// Descent. Split comparisons are precomputed into totally-ordered
// integer keys: keyOf maps a float64 input to a uint64 such that for
// every input x and threshold t, keyOf(x) <= threshKey(t) holds exactly
// when x <= t under IEEE semantics (including NaN, ±0, ±Inf and
// denormals). One step is then
//
//	_, c := bits.Sub64(node.tkey, keyOf(x[node.feat]), 0)
//	next = node.left + int32(c)
//
// — a subtract-with-borrow and an add, no data-dependent branch. The
// scalar path transforms the input row to keys once and descends eight
// trees at a time in register-resident cursors; the batched paths
// advance blocks of sixteen independent rows one level at a time, so
// the node loads of many rows overlap instead of serializing on one
// row's dependent chain.
//
// The compiled form is derived state, never persisted: MarshalBinary
// stays the canonical wire format, and a CompiledForest is rebuilt from
// the Forest after every load or train. Its contract is bit-exactness —
// Predict and PredictBatch return results bit-identical to the
// tree-walking Forest for every input (the comparisons decide
// identically, the per-tree summation order and the final division are
// the same operations in the same order), so golden replays,
// determinism proofs and the mpclint guarantees carry over unchanged.
// Reordering nodes within a tree is invisible to the contract;
// reordering trees would change the float summation order and is never
// done.
//
// Compile also retains the PR 4 depth-first structure-of-arrays pool
// (legacy) solely so SelfCheck can cross-validate two independently
// derived layouts against the tree walk; predictLegacy is not a serving
// path.
//
// A CompiledForest is safe for concurrent use: all fields are
// immutable after Compile, and the Into variants write only into
// caller-owned buffers.
//
//mpclint:immutable node pool is shared lock-free by concurrent predictors; any post-Compile write is a data race and breaks bit-exactness
type CompiledForest struct {
	nodes   []cnode   // level-order clustered node pool, all trees
	leafVal []float64 // leaf payload per pool index (zero for internal nodes)
	roots   []int32   // pool index of each tree's root
	depths  []int32   // per-tree depth = descent trip count
	nTrees  int
	nFeat   int
	legacy  legacyPool
}

// cnode is one compiled node: 16 bytes, four to a cache line.
type cnode struct {
	tkey uint64 // threshKey of the split threshold; ^0 for leaves (self-loop)
	left int32  // pool index of the left child; right is always left+1; self for leaves
	feat int32  // split feature; 0 for leaves (kx[0] is always readable)
}

// legacyPool is the PR 4 depth-first SoA layout, kept only as the
// second opinion for SelfCheck's three-way cross-validation.
type legacyPool struct {
	feature []int16   // split feature per node; -1 marks a leaf
	thresh  []float64 // split threshold, or the leaf's mean target
	left    []int32
	right   []int32
	roots   []int32
}

// maxCompiledFeatures bounds the feature dimensionality the compiled
// kernels can address: the scalar and batched descents hold the
// key-transformed input row(s) in fixed-size stack buffers of this
// width (so they stay provably allocation-free).
const maxCompiledFeatures = 64

const (
	// clusterStratum is the height of one layout cluster: trees deeper
	// than this are split into subtree clusters of at most
	// 2·(2^clusterStratum − 1) nodes (≈ 2 KiB) so a stratum of descent
	// stays within a compact run of cache lines.
	clusterStratum = 6
	// treeBlock is the scalar interleave width: how many trees descend
	// concurrently in register cursors.
	treeBlock = 8
	// rowBlock is the batched interleave width: how many independent
	// rows advance one level per step of the inner loop.
	rowBlock = 16
)

// keyOf maps a float64 to its totally-ordered uint64 key: for all a, b
// (NaN included), keyOf(a) <= threshKey(b) ⟺ a <= b under IEEE rules.
// The transform flips the sign bit for non-negatives and all bits for
// negatives (the classic order-preserving bijection), then pins every
// NaN to the maximum key so NaN <= t is false for every threshold key t
// (threshKey never returns ^0 — a NaN threshold maps to key 0).
func keyOf(v float64) uint64 {
	b := math.Float64bits(v)
	k := b ^ (uint64(int64(b)>>63) | 0x8000000000000000)
	if b<<1 > 0xffe0000000000000 { // NaN: exponent all-ones and mantissa non-zero
		k = ^uint64(0)
	}
	return k
}

// threshKey maps a split threshold to its comparison key. Two
// canonicalizations keep the key comparison exactly equivalent to the
// IEEE x <= t the tree walk performs: a NaN threshold maps to key 0,
// which no input key can reach (the only bit pattern the raw transform
// sends to 0 is a negative NaN, and keyOf pins every NaN to ^0
// instead), so x <= NaN stays false for every x; and a negative-zero
// threshold maps to the +0 key, because IEEE treats -0 and +0 as equal
// where the raw transform would order them. TestKeyOrderEquivalence
// proves the equivalence exhaustively over adversarial value pairs.
func threshKey(t float64) uint64 {
	b := math.Float64bits(t)
	if b<<1 > 0xffe0000000000000 { // NaN threshold: nothing is <= it
		return 0
	}
	if b == 0x8000000000000000 { // -0 threshold compares like +0
		b = 0
	}
	return b ^ (uint64(int64(b)>>63) | 0x8000000000000000)
}

// Compile flattens the forest into its compiled form. It fails only on
// forests that cannot be represented (no trees, or a feature
// dimensionality beyond the fixed-width key buffers) — never on any
// forest produced by Train or accepted by UnmarshalBinary with a sane
// feature count.
func (f *Forest) Compile() (*CompiledForest, error) {
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("rf: cannot compile a forest with no trees")
	}
	if f.nFeatures > maxCompiledFeatures {
		return nil, fmt.Errorf("rf: %d features exceed the compiled key-buffer layout (max %d)",
			f.nFeatures, maxCompiledFeatures)
	}
	total := 0
	for i := range f.trees {
		total += len(f.trees[i].Nodes)
	}
	c := &CompiledForest{
		nodes:   make([]cnode, 0, total),
		leafVal: make([]float64, total),
		roots:   make([]int32, len(f.trees)),
		depths:  make([]int32, len(f.trees)),
		nTrees:  len(f.trees),
		nFeat:   f.nFeatures,
		legacy: legacyPool{
			feature: make([]int16, total),
			thresh:  make([]float64, total),
			left:    make([]int32, total),
			right:   make([]int32, total),
			roots:   make([]int32, len(f.trees)),
		},
	}
	base := int32(0)
	for t := range f.trees {
		// Legacy depth-first pool: node order as trained.
		c.legacy.roots[t] = base
		for i, nd := range f.trees[t].Nodes {
			j := base + int32(i)
			if nd.Feature < 0 {
				c.legacy.feature[j] = -1
				c.legacy.thresh[j] = nd.Thresh
				continue
			}
			c.legacy.feature[j] = int16(nd.Feature)
			c.legacy.thresh[j] = nd.Thresh
			c.legacy.left[j] = base + nd.Left
			c.legacy.right[j] = base + nd.Right
		}
		base += int32(len(f.trees[t].Nodes))

		// Branchless pool: clustered level-order layout.
		poolBase := int32(len(c.nodes))
		nodes, leaves, depth, err := compileTree(&f.trees[t], t, poolBase)
		if err != nil {
			return nil, err
		}
		c.roots[t] = poolBase
		c.depths[t] = depth
		c.nodes = append(c.nodes, nodes...)
		copy(c.leafVal[poolBase:], leaves)
	}
	return c, nil
}

// compileTree emits one tree in the clustered level-order layout:
// nodes in emission order (child indices already absolute against
// poolBase), the parallel leaf payloads, and the tree's depth (its
// descent trip count). The layout invariant it establishes — every
// internal node's children occupy adjacent pool slots, left first — is
// what the borrow-select descent relies on, so it is verified as the
// nodes are emitted.
func compileTree(tr *tree, t int, poolBase int32) (nodes []cnode, leaves []float64, depth int32, err error) {
	n := len(tr.Nodes)
	order := make([]int32, 0, n) // old indices in emission order
	newIdx := make([]int32, n)   // old index -> pool index
	emit := func(old int32) {
		newIdx[old] = poolBase + int32(len(order))
		order = append(order, old)
	}

	// layout emits one cluster: a depth-limited BFS from a root set (the
	// tree root, or an adjacent child pair), then recurses on the
	// frontier's child pairs so each subtree cluster is contiguous.
	var layout func(group []int32)
	layout = func(group []int32) {
		cur := group
		for _, old := range cur {
			emit(old)
		}
		for level := 1; level < clusterStratum; level++ {
			var nxt []int32
			for _, old := range cur {
				nd := &tr.Nodes[old]
				if nd.Feature >= 0 {
					emit(nd.Left)
					emit(nd.Right)
					nxt = append(nxt, nd.Left, nd.Right)
				}
			}
			if len(nxt) == 0 {
				return
			}
			cur = nxt
		}
		for _, old := range cur {
			nd := &tr.Nodes[old]
			if nd.Feature >= 0 {
				layout([]int32{nd.Left, nd.Right})
			}
		}
	}
	layout([]int32{0})
	if len(order) != n {
		return nil, nil, 0, fmt.Errorf("rf: tree %d layout emitted %d of %d nodes", t, len(order), n)
	}

	nodes = make([]cnode, 0, n)
	leaves = make([]float64, n)
	for _, old := range order {
		nd := &tr.Nodes[old]
		self := poolBase + int32(len(nodes))
		if nd.Feature < 0 {
			leaves[len(nodes)] = nd.Thresh
			nodes = append(nodes, cnode{tkey: ^uint64(0), left: self, feat: 0})
			continue
		}
		l, r := newIdx[nd.Left], newIdx[nd.Right]
		if r != l+1 {
			return nil, nil, 0, fmt.Errorf("rf: tree %d node %d children not adjacent (%d, %d)", t, old, l, r)
		}
		nodes = append(nodes, cnode{tkey: threshKey(nd.Thresh), left: l, feat: int32(nd.Feature)})
	}

	// Tree depth = the fixed descent trip count for this tree.
	type item struct{ old, d int32 }
	stack := []item{{0, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.d > depth {
			depth = it.d
		}
		nd := &tr.Nodes[it.old]
		if nd.Feature >= 0 {
			stack = append(stack, item{nd.Left, it.d + 1}, item{nd.Right, it.d + 1})
		}
	}
	return nodes, leaves, depth, nil
}

// NumTrees returns the ensemble size.
func (c *CompiledForest) NumTrees() int { return c.nTrees }

// NumFeatures returns the feature dimensionality.
func (c *CompiledForest) NumFeatures() int { return c.nFeat }

// NumNodes returns the total size of the flat node pool across all
// trees.
func (c *CompiledForest) NumNodes() int { return len(c.nodes) }

// Predict returns the forest's estimate for feature vector x,
// bit-identical to the tree-walking (*Forest).Predict. It panics if x
// has the wrong dimensionality.
//
// The input row is key-transformed once, then trees descend eight at a
// time: eight cursors advance one level per step with no data-dependent
// branches, so the eight node-load chains overlap in the memory system
// instead of the predictor speculating down one tree at a time. A
// scalar tail loop covers the ragged last block. Trees accumulate in
// index order into one sum — the same order as the tree walk.
//
//mpclint:hotpath pinned at 0 allocs/op by TestCompiledZeroAlloc
func (c *CompiledForest) Predict(x []float64) float64 {
	if len(x) != c.nFeat {
		panic(fmt.Sprintf("rf: Predict with %d features, compiled for %d", len(x), c.nFeat))
	}
	var kx [maxCompiledFeatures]uint64
	for i, v := range x {
		kx[i] = keyOf(v)
	}
	nodes := c.nodes
	s := 0.0
	nt := c.nTrees
	t0 := 0
	for ; t0+treeBlock <= nt; t0 += treeBlock {
		r := c.roots[t0 : t0+treeBlock : t0+treeBlock]
		i0, i1, i2, i3 := r[0], r[1], r[2], r[3]
		i4, i5, i6, i7 := r[4], r[5], r[6], r[7]
		dep := int32(0)
		for _, d := range c.depths[t0 : t0+treeBlock] {
			if d > dep {
				dep = d
			}
		}
		for lv := int32(0); lv < dep; lv++ {
			n := &nodes[i0]
			_, b := bits.Sub64(n.tkey, kx[n.feat], 0)
			i0 = n.left + int32(b)
			n = &nodes[i1]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i1 = n.left + int32(b)
			n = &nodes[i2]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i2 = n.left + int32(b)
			n = &nodes[i3]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i3 = n.left + int32(b)
			n = &nodes[i4]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i4 = n.left + int32(b)
			n = &nodes[i5]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i5 = n.left + int32(b)
			n = &nodes[i6]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i6 = n.left + int32(b)
			n = &nodes[i7]
			_, b = bits.Sub64(n.tkey, kx[n.feat], 0)
			i7 = n.left + int32(b)
		}
		s += c.leafVal[i0]
		s += c.leafVal[i1]
		s += c.leafVal[i2]
		s += c.leafVal[i3]
		s += c.leafVal[i4]
		s += c.leafVal[i5]
		s += c.leafVal[i6]
		s += c.leafVal[i7]
	}
	for ; t0 < nt; t0++ {
		i := c.roots[t0]
		for lv := int32(0); lv < c.depths[t0]; lv++ {
			n := &nodes[i]
			_, b := bits.Sub64(n.tkey, kx[n.feat], 0)
			i = n.left + int32(b)
		}
		s += c.leafVal[i]
	}
	return s / float64(nt)
}

// PredictBatch evaluates a row-major flat feature matrix (len(X) must
// be a multiple of NumFeatures; row r is X[r*d : (r+1)*d]) and returns
// one prediction per row. An empty matrix returns nil without touching
// the pool. Allocates the result slice; use PredictBatchInto for a
// zero-allocation steady state.
func (c *CompiledForest) PredictBatch(X []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	return c.PredictBatchInto(make([]float64, len(X)/c.nFeat), X)
}

// PredictBatchInto is PredictBatch writing into the caller-owned dst,
// which must hold exactly one slot per row; it returns dst. Rows are
// processed in blocks of rowBlock: each block's rows are
// key-transformed into a stack buffer once, then every tree advances
// the whole block one level at a time — sixteen independent descent
// chains in flight — before the block's leaf values accumulate. Every
// row still accumulates tree values in tree order and divides once, so
// results are bit-identical to calling Predict row by row. It panics on
// a dimensionality or size mismatch, checked up front.
//
// Callers that can cache the key transform across sweeps (the
// predict-layer space arena) should use PredictBatchKeysInto instead.
//
//mpclint:hotpath pinned at 0 allocs/op by TestCompiledZeroAlloc
func (c *CompiledForest) PredictBatchInto(dst []float64, X []float64) []float64 {
	d := c.nFeat
	if len(X)%d != 0 {
		panic(fmt.Sprintf("rf: PredictBatch matrix of %d values is not a multiple of %d features", len(X), d))
	}
	rows := len(X) / d
	if len(dst) != rows {
		panic(fmt.Sprintf("rf: PredictBatchInto dst holds %d rows, matrix has %d", len(dst), rows))
	}
	if rows == 0 {
		return dst
	}
	var kbuf [rowBlock * maxCompiledFeatures]uint64
	for b0 := 0; b0 < rows; b0 += rowBlock {
		bn := rows - b0
		if bn > rowBlock {
			bn = rowBlock
		}
		blk := X[b0*d : (b0+bn)*d]
		for i, v := range blk {
			kbuf[i] = keyOf(v)
		}
		c.descendBlock(dst[b0:b0+bn], kbuf[:bn*d])
	}
	div := float64(c.nTrees)
	for r := range dst {
		dst[r] /= div
	}
	return dst
}

// PredictBatchKeysInto is the batched evaluation over an already
// key-transformed matrix: kX must hold KeysInto of the row-major input,
// and dst one slot per row. Trees iterate outermost — each tree's hot
// cluster stays cached across every row of the sweep — with rows
// advancing level-synchronously in blocks of rowBlock. This is the
// fastest batched path when the caller can precompute or cache keys
// (the space arena pre-keys its config columns once per space and only
// re-keys the eight counter columns per sweep). Bit-identical to
// Predict on each row.
//
//mpclint:hotpath pinned at 0 allocs/op by TestCompiledZeroAlloc
func (c *CompiledForest) PredictBatchKeysInto(dst []float64, kX []uint64) []float64 {
	d := c.nFeat
	if len(kX)%d != 0 {
		panic(fmt.Sprintf("rf: PredictBatchKeysInto matrix of %d keys is not a multiple of %d features", len(kX), d))
	}
	rows := len(kX) / d
	if len(dst) != rows {
		panic(fmt.Sprintf("rf: PredictBatchKeysInto dst holds %d rows, matrix has %d", len(dst), rows))
	}
	for r := range dst {
		dst[r] = 0
	}
	nodes := c.nodes
	var idx [rowBlock]int32
	for t, root := range c.roots {
		dep := c.depths[t]
		for b0 := 0; b0 < rows; b0 += rowBlock {
			bn := rows - b0
			if bn > rowBlock {
				bn = rowBlock
			}
			for j := 0; j < bn; j++ {
				idx[j] = root
			}
			off := b0 * d
			for lv := int32(0); lv < dep; lv++ {
				o := off
				for j := 0; j < bn; j++ {
					n := &nodes[idx[j]]
					_, b := bits.Sub64(n.tkey, kX[o+int(n.feat)], 0)
					idx[j] = n.left + int32(b)
					o += d
				}
			}
			for j := 0; j < bn; j++ {
				dst[b0+j] += c.leafVal[idx[j]]
			}
		}
	}
	div := float64(c.nTrees)
	for r := range dst {
		dst[r] /= div
	}
	return dst
}

// descendBlock zeroes out and runs every tree over one key-transformed
// row block, accumulating raw leaf sums (no division) into out — one
// slot per row, trees in index order, so each row's sum is built by
// exactly the tree walk's additions.
//
//mpclint:hotpath pinned transitively under the PredictBatchInto pin
func (c *CompiledForest) descendBlock(out []float64, kblk []uint64) {
	d := c.nFeat
	bn := len(out)
	for r := range out {
		out[r] = 0
	}
	nodes := c.nodes
	var idx [rowBlock]int32
	for t, root := range c.roots {
		dep := c.depths[t]
		for j := 0; j < bn; j++ {
			idx[j] = root
		}
		for lv := int32(0); lv < dep; lv++ {
			o := 0
			for j := 0; j < bn; j++ {
				n := &nodes[idx[j]]
				_, b := bits.Sub64(n.tkey, kblk[o+int(n.feat)], 0)
				idx[j] = n.left + int32(b)
				o += d
			}
		}
		for j := 0; j < bn; j++ {
			out[j] += c.leafVal[idx[j]]
		}
	}
}

// KeysInto key-transforms a row-major feature matrix (or any slice of
// feature values) for PredictBatchKeysInto: dst must be the same length
// as X. The transform is positionless — dst[i] = keyOf(X[i]) — so
// callers may pre-key stable columns once and re-key only the columns
// that change between sweeps.
//
//mpclint:hotpath pinned transitively under the PredictSpace steady-state pin
func KeysInto(dst []uint64, X []float64) {
	if len(dst) != len(X) {
		panic(fmt.Sprintf("rf: KeysInto dst holds %d keys, matrix has %d values", len(dst), len(X)))
	}
	for i, v := range X {
		dst[i] = keyOf(v)
	}
}

// KeyOf exposes the input-side key transform for callers that patch
// single feature values into a pre-keyed matrix.
//
//mpclint:hotpath pinned transitively under the PredictSpace steady-state pin
func KeyOf(v float64) uint64 { return keyOf(v) }

// predictLegacy is the PR 4 depth-first branchy descent over the
// retained legacy pool. It is not a serving path: SelfCheck uses it as
// an independently derived second opinion, and the paired benchmarks
// use it as the baseline the branchless kernels are measured against.
func (c *CompiledForest) predictLegacy(x []float64) float64 {
	if len(x) != c.nFeat {
		panic(fmt.Sprintf("rf: predictLegacy with %d features, compiled for %d", len(x), c.nFeat))
	}
	lg := &c.legacy
	s := 0.0
	for _, root := range lg.roots {
		i := root
		for lg.feature[i] >= 0 {
			if x[lg.feature[i]] <= lg.thresh[i] {
				i = lg.left[i]
			} else {
				i = lg.right[i]
			}
		}
		s += lg.thresh[i]
	}
	return s / float64(c.nTrees)
}

// predictLegacyBatchInto is the PR 4 tree-outer batched descent over
// the legacy pool, kept as the benchmark baseline for the interleaved
// kernels (and as batch-level cross-validation in SelfCheck).
func (c *CompiledForest) predictLegacyBatchInto(dst []float64, X []float64) []float64 {
	d := c.nFeat
	if len(X)%d != 0 {
		panic(fmt.Sprintf("rf: predictLegacyBatchInto matrix of %d values is not a multiple of %d features", len(X), d))
	}
	rows := len(X) / d
	if len(dst) != rows {
		panic(fmt.Sprintf("rf: predictLegacyBatchInto dst holds %d rows, matrix has %d", len(dst), rows))
	}
	for r := range dst {
		dst[r] = 0
	}
	lg := &c.legacy
	for _, root := range lg.roots {
		off := 0
		for r := 0; r < rows; r++ {
			x := X[off : off+d : off+d]
			i := root
			for lg.feature[i] >= 0 {
				if x[lg.feature[i]] <= lg.thresh[i] {
					i = lg.left[i]
				} else {
					i = lg.right[i]
				}
			}
			dst[r] += lg.thresh[i]
			off += d
		}
	}
	div := float64(c.nTrees)
	for r := range dst {
		dst[r] /= div
	}
	return dst
}

// SelfCheck verifies the compiled forest on `samples` deterministic
// pseudo-random inputs drawn to straddle every feature's observed
// threshold range, comparing raw float64 bits three ways: the
// tree-walking Forest (ground truth), the branchless level-order
// layout (the serving path), and the retained legacy depth-first pool
// (an independently derived compilation of the same Forest). Any
// difference — even in the last ulp, from either layout, scalar or
// batched — is an error. This is the load/train-time guard cmd/train
// runs before persisting a model (compiled inference is only trusted
// because it is bit-exact).
func (c *CompiledForest) SelfCheck(f *Forest, samples int, seed int64) error {
	if f.nFeatures != c.nFeat {
		return fmt.Errorf("rf: self-check against a forest with %d features, compiled for %d", f.nFeatures, c.nFeat)
	}
	lo := make([]float64, c.nFeat)
	hi := make([]float64, c.nFeat)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for i, ft := range c.legacy.feature {
		if ft < 0 {
			continue
		}
		if v := c.legacy.thresh[i]; v < lo[ft] {
			lo[ft] = v
		}
		if v := c.legacy.thresh[i]; v > hi[ft] {
			hi[ft] = v
		}
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, c.nFeat)
	batch := make([]float64, 0, samples*c.nFeat)
	for s := 0; s < samples; s++ {
		for i := range x {
			l, h := lo[i], hi[i]
			if l > h { // feature never split on: any value exercises it
				l, h = -1, 1
			}
			pad := (h-l)*0.25 + 1
			x[i] = l - pad + rng.Float64()*(h-l+2*pad)
		}
		batch = append(batch, x...)
		want := f.Predict(x)
		got := c.Predict(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Errorf("rf: branchless layout diverges at sample %d: compiled %v (bits %#x), tree-walk %v (bits %#x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		if lg := c.predictLegacy(x); math.Float64bits(lg) != math.Float64bits(want) {
			return fmt.Errorf("rf: legacy pool diverges at sample %d: legacy %v (bits %#x), tree-walk %v (bits %#x)",
				s, lg, math.Float64bits(lg), want, math.Float64bits(want))
		}
	}
	if samples > 0 {
		dst := make([]float64, samples)
		ldst := make([]float64, samples)
		c.PredictBatchInto(dst, batch)
		c.predictLegacyBatchInto(ldst, batch)
		for r := 0; r < samples; r++ {
			want := f.Predict(batch[r*c.nFeat : (r+1)*c.nFeat])
			if math.Float64bits(dst[r]) != math.Float64bits(want) {
				return fmt.Errorf("rf: interleaved batch diverges at row %d: batch %v (bits %#x), tree-walk %v (bits %#x)",
					r, dst[r], math.Float64bits(dst[r]), want, math.Float64bits(want))
			}
			if math.Float64bits(ldst[r]) != math.Float64bits(want) {
				return fmt.Errorf("rf: legacy batch diverges at row %d: batch %v (bits %#x), tree-walk %v (bits %#x)",
					r, ldst[r], math.Float64bits(ldst[r]), want, math.Float64bits(want))
			}
		}
	}
	return nil
}
