package rf

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// forestWire is the gob wire form of a Forest.
type forestWire struct {
	Trees     []tree
	NFeatures int
	OOBMAE    float64
	OOBOK     bool
}

// MarshalBinary encodes the forest so it can be stored and reloaded —
// the paper's model is trained offline and shipped to the runtime
// (§IV-A3).
func (f *Forest) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := forestWire{Trees: f.trees, NFeatures: f.nFeatures, OOBMAE: f.oobMAE, OOBOK: f.oobOK}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("rf: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a forest produced by MarshalBinary. Beyond
// gob decoding, it structurally validates every tree — feature indices
// within the forest's dimensionality, child indices in range and
// strictly increasing (the invariant Train's builder establishes, and
// what guarantees Predict terminates) — so a truncated or hostile input
// returns an error instead of a forest that panics or loops at
// prediction time.
func (f *Forest) UnmarshalBinary(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("rf: decode: %w", err)
	}
	if w.NFeatures <= 0 || len(w.Trees) == 0 {
		return fmt.Errorf("rf: decoded forest is empty")
	}
	for ti, t := range w.Trees {
		if err := validateTree(t, w.NFeatures); err != nil {
			return fmt.Errorf("rf: decoded tree %d: %w", ti, err)
		}
	}
	f.trees = w.Trees
	f.nFeatures = w.NFeatures
	f.oobMAE = w.OOBMAE
	f.oobOK = w.OOBOK
	return nil
}

// validateTree checks the structural invariants predict relies on:
// a non-empty node slice, leaf markers or in-range feature indices, and
// children that point strictly forward in the flat node slice (Train
// appends children after their parent, so a valid tree is a DAG whose
// walk makes progress and must terminate).
func validateTree(t tree, nFeatures int) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("no nodes")
	}
	for i, nd := range t.Nodes {
		if nd.Feature < 0 {
			continue // leaf; Thresh carries the mean target
		}
		if nd.Feature >= nFeatures {
			return fmt.Errorf("node %d: feature %d out of range [0,%d)", i, nd.Feature, nFeatures)
		}
		if nd.Left <= int32(i) || int(nd.Left) >= len(t.Nodes) {
			return fmt.Errorf("node %d: left child %d out of range (%d,%d)", i, nd.Left, i, len(t.Nodes))
		}
		if nd.Right <= int32(i) || int(nd.Right) >= len(t.Nodes) {
			return fmt.Errorf("node %d: right child %d out of range (%d,%d)", i, nd.Right, i, len(t.Nodes))
		}
	}
	return nil
}
