package rf

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// forestWire is the gob wire form of a Forest.
type forestWire struct {
	Trees     []tree
	NFeatures int
	OOBMAE    float64
	OOBOK     bool
}

// MarshalBinary encodes the forest so it can be stored and reloaded —
// the paper's model is trained offline and shipped to the runtime
// (§IV-A3).
func (f *Forest) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := forestWire{Trees: f.trees, NFeatures: f.nFeatures, OOBMAE: f.oobMAE, OOBOK: f.oobOK}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("rf: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a forest produced by MarshalBinary.
func (f *Forest) UnmarshalBinary(data []byte) error {
	var w forestWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("rf: decode: %w", err)
	}
	if w.NFeatures <= 0 || len(w.Trees) == 0 {
		return fmt.Errorf("rf: decoded forest is empty")
	}
	f.trees = w.Trees
	f.nFeatures = w.NFeatures
	f.oobMAE = w.OOBMAE
	f.oobOK = w.OOBOK
	return nil
}
