package rf

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomConfig draws a small but non-degenerate training configuration.
func randomConfig(rng *rand.Rand) Config {
	return Config{
		NumTrees:    1 + rng.Intn(12),
		MaxDepth:    1 + rng.Intn(8),
		MinLeaf:     1 + rng.Intn(3),
		MaxFeatures: 0,
		NumThresh:   1 + rng.Intn(16),
		SampleFrac:  0.5 + rng.Float64()*0.5,
		Seed:        rng.Int63(),
	}
}

// Property: training with any worker count produces a forest that is
// byte-identical to the serial one — same trees in the same order, same
// OOB estimate. This is the determinism contract of the seeding scheme
// documented in the package comment.
func TestParallelTrainMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 40 + rng.Intn(160)
		d := 1 + rng.Intn(6)
		X, y := makeDataset(n, d, 0.05, rng.Int63(), func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += v
			}
			return s
		})
		cfg := randomConfig(rng)

		serial := cfg
		serial.Workers = 1
		fs, err := Train(X, y, serial)
		if err != nil {
			t.Fatalf("trial %d: serial train: %v", trial, err)
		}
		bs, err := fs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{2, 4, 7} {
			parCfg := cfg
			parCfg.Workers = workers
			fp, err := Train(X, y, parCfg)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(fs.trees, fp.trees) {
				t.Fatalf("trial %d workers=%d: trees differ from serial", trial, workers)
			}
			bp, err := fp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs, bp) {
				t.Fatalf("trial %d workers=%d: serialized forest differs from serial", trial, workers)
			}
			sm, sok := fs.OOBMAE()
			pm, pok := fp.OOBMAE()
			if sok != pok || sm != pm {
				t.Fatalf("trial %d workers=%d: OOB (%v,%v) != serial (%v,%v)",
					trial, workers, pm, pok, sm, sok)
			}
		}
	}
}

// Property: PredictBatch equals row-by-row Predict for every worker
// count, on arbitrary seeded inputs.
func TestPredictBatchMatchesPredictQuick(t *testing.T) {
	X, y := makeDataset(300, 4, 0.05, 11, func(x []float64) float64 {
		return 2*x[0] - x[1] + x[2]*x[3]
	})
	cfg := DefaultConfig(12)
	cfg.NumTrees = 10
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, nRaw uint8, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 40) // includes the empty batch
		Xq := make([][]float64, n)
		for i := range Xq {
			x := make([]float64, 4)
			for j := range x {
				x[j] = rng.Float64()*3 - 1
			}
			Xq[i] = x
		}
		workers := int(wRaw%6) - 1 // -1..4: default, serial, fan-out
		got := f.PredictBatch(Xq, workers)
		if len(got) != n {
			return false
		}
		for i := range Xq {
			if got[i] != f.Predict(Xq[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Error(err)
	}
}

// PredictBatch validates dimensions up front: a bad row must panic
// before any result is produced, exactly like Predict.
func TestPredictBatchPanicsOnWrongDim(t *testing.T) {
	X, y := makeDataset(50, 3, 0, 5, func(x []float64) float64 { return x[0] })
	cfg := DefaultConfig(6)
	cfg.NumTrees = 3
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("PredictBatch accepted a wrong-dimension row")
		}
	}()
	f.PredictBatch([][]float64{{1, 2, 3}, {1, 2}}, 4)
}
