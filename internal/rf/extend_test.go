package rf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// extendGridInputs builds the adversarial probe set of the PR 4 shape
// grid: wide uniform draws interleaved with the values a threshold
// comparison could mis-handle (±Inf, NaN, signed zeros, denormals).
func extendGridInputs(d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	special := []float64{0, -0.0, 1, -1, math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 5e-324}
	probes := make([][]float64, 0, 120)
	for trial := 0; trial < 120; trial++ {
		x := make([]float64, d)
		for j := range x {
			if trial%4 == 3 {
				x[j] = special[rng.Intn(len(special))]
			} else {
				x[j] = (rng.Float64() - 0.5) * 4
			}
		}
		probes = append(probes, x)
	}
	return probes
}

// TestExtendEqualsTrainProperty is the incremental-training equality
// contract across the shape grid: for every (trees, depth,
// dimensionality) shape, Train(n) extended by k trees must be
// deep-equal to Train(n+k) — node for node, OOB included — and the
// first n trees must be untouched.
func TestExtendEqualsTrainProperty(t *testing.T) {
	seed := int64(100)
	for _, nTrees := range []int{1, 4, 9} {
		for _, extra := range []int{1, 5} {
			for _, depth := range []int{1, 4, 10} {
				for _, d := range []int{1, 3, 14} {
					seed++
					X, y := makeDataset(120, d, 0.05, seed, func(x []float64) float64 { return 3*x[0] - 2*x[len(x)-1] })
					cfg := Config{NumTrees: nTrees, MaxDepth: depth, MinLeaf: 1,
						NumThresh: 8, SampleFrac: 1.0, Seed: seed, Workers: 1}
					base, err := Train(X, y, cfg)
					if err != nil {
						t.Fatal(err)
					}
					ext, err := Extend(base, X, y, cfg, extra)
					if err != nil {
						t.Fatal(err)
					}
					bigCfg := cfg
					bigCfg.NumTrees = nTrees + extra
					want, err := Train(X, y, bigCfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ext.trees, want.trees) {
						t.Fatalf("trees=%d+%d depth=%d d=%d: extended forest differs from Train(%d)",
							nTrees, extra, depth, d, nTrees+extra)
					}
					if !bitsEqual(ext.oobMAE, want.oobMAE) || ext.oobOK != want.oobOK {
						t.Fatalf("trees=%d+%d depth=%d d=%d: OOB %v/%v, want %v/%v",
							nTrees, extra, depth, d, ext.oobMAE, ext.oobOK, want.oobMAE, want.oobOK)
					}
					// The base forest is untouched and its trees are the
					// extended forest's prefix, structurally identical.
					if len(base.trees) != nTrees {
						t.Fatalf("Extend mutated the base forest: %d trees", len(base.trees))
					}
					if !reflect.DeepEqual(base.trees, ext.trees[:nTrees]) {
						t.Fatal("extended forest's first trees differ from the base forest")
					}
				}
			}
		}
	}
}

// TestExtendPrefixTreePredictionsBitIdentical pins the per-tree
// prediction contract directly: after extension, each of the first n
// trees — tree-walked and compiled — returns bit-identical values on
// the adversarial probe grid, and the compiled node pool of the
// extension is a strict superset (the prefix arrays are equal).
func TestExtendPrefixTreePredictionsBitIdentical(t *testing.T) {
	X, y := makeDataset(150, 6, 0.05, 5, func(x []float64) float64 { return x[0]*x[3] - x[5] })
	cfg := Config{NumTrees: 7, MaxDepth: 8, MinLeaf: 1, NumThresh: 8, SampleFrac: 1.0, Seed: 5, Workers: 1}
	base, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Extend(base, X, y, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	probes := extendGridInputs(6, 55)
	for ti := range base.trees {
		for pi, x := range probes {
			a := base.trees[ti].predict(x)
			b := ext.trees[ti].predict(x)
			if !bitsEqual(a, b) {
				t.Fatalf("tree %d probe %d: base %v != extended %v", ti, pi, a, b)
			}
		}
	}

	// Compiled forms: the extended pool's prefix is the base pool.
	cb := compileOrFatal(t, base)
	ce := compileOrFatal(t, ext)
	if ce.NumTrees() != cb.NumTrees()+4 {
		t.Fatalf("compiled extension has %d trees, want %d", ce.NumTrees(), cb.NumTrees()+4)
	}
	n := cb.NumNodes()
	if ce.NumNodes() < n {
		t.Fatalf("compiled extension pool shrank: %d < %d", ce.NumNodes(), n)
	}
	if !reflect.DeepEqual(cb.nodes, ce.nodes[:n]) ||
		!reflect.DeepEqual(cb.leafVal, ce.leafVal[:n]) ||
		!reflect.DeepEqual(cb.roots, ce.roots[:cb.NumTrees()]) ||
		!reflect.DeepEqual(cb.depths, ce.depths[:cb.NumTrees()]) {
		t.Fatal("compiled extension's node-pool prefix differs from the base compilation")
	}
	if !reflect.DeepEqual(cb.legacy.feature, ce.legacy.feature[:n]) ||
		!reflect.DeepEqual(cb.legacy.thresh, ce.legacy.thresh[:n]) ||
		!reflect.DeepEqual(cb.legacy.left, ce.legacy.left[:n]) ||
		!reflect.DeepEqual(cb.legacy.right, ce.legacy.right[:n]) ||
		!reflect.DeepEqual(cb.legacy.roots, ce.legacy.roots[:cb.NumTrees()]) {
		t.Fatal("compiled extension's legacy-pool prefix differs from the base compilation")
	}
	// And the compiled whole agrees with tree walking on the probes —
	// the PR 4 contract carried over to extended forests.
	for pi, x := range probes {
		want := ext.Predict(x)
		got := ce.Predict(x)
		if !bitsEqual(got, want) {
			t.Fatalf("probe %d: compiled extended %v != tree-walk %v", pi, got, want)
		}
	}
}

// TestExtendChainsAndWorkers checks extend(n)+extend(j)+extend(k) ==
// train(n+j+k) and that the result is worker-count independent, like
// Train's.
func TestExtendChainsAndWorkers(t *testing.T) {
	X, y := makeDataset(100, 4, 0.05, 9, func(x []float64) float64 { return x[1] - 2*x[2] })
	cfg := Config{NumTrees: 2, MaxDepth: 6, MinLeaf: 1, NumThresh: 8, SampleFrac: 1.0, Seed: 9, Workers: 1}
	f2, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Extend(f2, X, y, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg5 := cfg
	cfg5.NumTrees = 5
	cfg5.Workers = 4
	f9, err := Extend(f5, X, y, cfg5, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg9 := cfg
	cfg9.NumTrees = 9
	want, err := Train(X, y, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f9.trees, want.trees) || !bitsEqual(f9.oobMAE, want.oobMAE) {
		t.Fatal("chained extension with mixed worker counts differs from Train(9)")
	}
}

// TestExtendValidation pins the error paths.
func TestExtendValidation(t *testing.T) {
	X, y := makeDataset(50, 3, 0.05, 3, func(x []float64) float64 { return x[0] })
	cfg := Config{NumTrees: 3, MaxDepth: 4, MinLeaf: 1, NumThresh: 6, SampleFrac: 1.0, Seed: 3, Workers: 1}
	f, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extend(nil, X, y, cfg, 1); err == nil {
		t.Fatal("Extend accepted a nil forest")
	}
	if _, err := Extend(f, X, y, cfg, 0); err == nil {
		t.Fatal("Extend accepted extra = 0")
	}
	bad := cfg
	bad.NumTrees = 4
	if _, err := Extend(f, X, y, bad, 1); err == nil {
		t.Fatal("Extend accepted a config whose NumTrees mismatches the forest")
	}
	if _, err := Extend(f, X[:10], y, cfg, 1); err == nil {
		t.Fatal("Extend accepted mismatched row/target counts")
	}
	X4, y4 := makeDataset(50, 4, 0.05, 3, func(x []float64) float64 { return x[0] })
	if _, err := Extend(f, X4, y4, cfg, 1); err == nil {
		t.Fatal("Extend accepted data with the wrong dimensionality")
	}
	ragged := [][]float64{{1, 2, 3}, {1, 2}}
	if _, err := Extend(f, ragged, []float64{1, 2}, Config{NumTrees: 3, MaxDepth: 4, MinLeaf: 1, NumThresh: 6, SampleFrac: 1.0, Seed: 3}, 1); err == nil {
		t.Fatal("Extend accepted ragged rows")
	}
}
