package rf

import "fmt"

// FusedKeys is the coordinator-owned key matrix for cross-request
// batched sweeps: maxReq slots, each a pre-allocated rows×features
// key-transformed block, laid out contiguously so any prefix of staged
// slots forms one valid row-major matrix for PredictBatchKeysInto.
// A slot's stable columns (the per-config suffix of a sweep space) can
// be pre-keyed once at plan build; per-request columns are patched into
// Slot(i) before each fused evaluation.
type FusedKeys struct {
	features int
	rows     int
	maxReq   int
	keys     []uint64
}

// NewFusedKeys allocates a fused key matrix for up to maxRequests
// sweeps of rows rows each over the given feature dimensionality.
func NewFusedKeys(features, rows, maxRequests int) *FusedKeys {
	if features <= 0 || features > maxCompiledFeatures {
		panic(fmt.Sprintf("rf: NewFusedKeys with %d features (want 1..%d)", features, maxCompiledFeatures))
	}
	if rows <= 0 || maxRequests <= 0 {
		panic(fmt.Sprintf("rf: NewFusedKeys rows=%d maxRequests=%d (want positive)", rows, maxRequests))
	}
	return &FusedKeys{
		features: features,
		rows:     rows,
		maxReq:   maxRequests,
		keys:     make([]uint64, maxRequests*rows*features),
	}
}

// Rows is the per-slot row count (one sweep's space size).
func (fk *FusedKeys) Rows() int { return fk.rows }

// MaxRequests is the slot capacity.
func (fk *FusedKeys) MaxRequests() int { return fk.maxReq }

// Slot returns slot i's rows×features key block, full-slice-capped so a
// stray append cannot bleed into the next slot.
//
//mpclint:hotpath pinned at 0 allocs/op by TestFusedZeroAlloc
func (fk *FusedKeys) Slot(i int) []uint64 {
	if i < 0 || i >= fk.maxReq {
		panic(fmt.Sprintf("rf: FusedKeys slot %d of %d", i, fk.maxReq))
	}
	n := fk.rows * fk.features
	return fk.keys[i*n : (i+1)*n : (i+1)*n]
}

// PredictFusedInto evaluates the first nreq staged slots of fk as one
// contiguous mega-batch: dst must hold nreq*Rows() values, and on
// return dst[i*Rows():(i+1)*Rows()] is slot i's sweep result. Because
// PredictBatchKeysInto accumulates each row's leaf values independently
// — trees outermost, one accumulator per row, one division at the end —
// fusing never changes any row's summation order, so each slot's result
// is bit-identical to evaluating that slot alone. Returns dst.
//
//mpclint:hotpath pinned at 0 allocs/op by TestFusedZeroAlloc
func (c *CompiledForest) PredictFusedInto(dst []float64, fk *FusedKeys, nreq int) []float64 {
	if fk.features != c.nFeat {
		panic(fmt.Sprintf("rf: PredictFusedInto keys have %d features, compiled for %d", fk.features, c.nFeat))
	}
	if nreq <= 0 || nreq > fk.maxReq {
		panic(fmt.Sprintf("rf: PredictFusedInto with %d requests (staged capacity %d)", nreq, fk.maxReq))
	}
	if len(dst) != nreq*fk.rows {
		panic(fmt.Sprintf("rf: PredictFusedInto dst holds %d rows, %d requests need %d", len(dst), nreq, nreq*fk.rows))
	}
	return c.PredictBatchKeysInto(dst, fk.keys[:nreq*fk.rows*fk.features])
}
