// Package cli holds the pieces every command-line tool of the repo
// shares: structured-logging setup (-log-level) and the observability
// HTTP surface (-metrics-addr) exposing /metrics, /health and
// net/http/pprof.
package cli

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"mpcdvfs/internal/metrics"
)

// ParseLogLevel maps a -log-level flag value to a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// InitLogging installs a text slog handler on stderr at the given level
// as the default logger. Commands keep their data output (tables,
// reports) on stdout; diagnostics go through slog.
func InitLogging(level string) error {
	l, err := ParseLogLevel(level)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})))
	return nil
}

// NewObsMux returns the standard observability mux:
//
//	/metrics       Prometheus text exposition of reg
//	/health        liveness probe (200 "ok")
//	/debug/pprof/  net/http/pprof profiles
func NewObsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeMetrics starts the observability server on addr in a background
// goroutine and returns it (shut it down with Close/Shutdown). Listen
// errors after startup are logged, not fatal: a batch run should not die
// because its scrape endpoint vanished.
func ServeMetrics(addr string, reg *metrics.Registry) *http.Server {
	return ServeMux(addr, NewObsMux(reg))
}

// ServeMux starts an HTTP server for mux on addr in a background
// goroutine — ServeMetrics with a caller-built mux, for commands that
// mount extra routes (e.g. mpcserve's /v1 decision API) next to the
// observability surface.
func ServeMux(addr string, mux *http.ServeMux) *http.Server {
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() { //mpclint:ignore pooled-concurrency long-lived HTTP accept loop for the whole process, not index fan-out work; par.ForEach would block the caller
		slog.Info("serving HTTP endpoint", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			slog.Error("HTTP server failed", "addr", addr, "err", err)
		}
	}()
	return srv
}

// Close closes c and logs any error under the given label. It is the
// companion for defers (trace files, the observability server) where
// the close error has no return path but must not vanish silently.
func Close(what string, c io.Closer) {
	if err := c.Close(); err != nil {
		slog.Warn("close failed", "what", what, "err", err)
	}
}
