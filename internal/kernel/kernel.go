// Package kernel is the ground-truth performance and power model that
// stands in for the AMD A10-7850K hardware measurements of the paper
// (§V). Every policy decision in this repository is ultimately scored
// against this model, exactly as the paper's policies were scored against
// the 336-configuration measurement database captured with CodeXL.
//
// A kernel is characterized by its compute work, memory traffic, Amdahl
// parallel fraction, cache-interference behaviour and fixed launch
// overhead. From those parameters the model produces, for any hardware
// configuration:
//
//   - execution time, via a roofline-style compute/memory overlap model
//     with Amdahl CU scaling and a destructive cache-interference term;
//   - GPU, NB and CPU power, via C·V²·f dynamic power per domain on the
//     shared GPU/NB voltage rail, leakage with a CPU-heat coupling term,
//     and a busy-waiting CPU;
//   - the eight Table III performance counters.
//
// The model reproduces the four scaling archetypes of Fig. 2:
// compute-bound, memory-bound, peak (slows down beyond a CU count due to
// destructive cache interference), and unscalable kernels.
package kernel

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
)

// Class labels the scaling archetype of a kernel (paper §II-C, Fig. 2).
type Class int8

// Kernel scaling archetypes.
const (
	ComputeBound Class = iota // MaxFlops-like: scales with GPU freq and CUs
	MemoryBound               // readGlobalMemoryCoalesced-like: scales with NB/memory
	Peak                      // writeCandidates-like: best at a mid-size config
	Unscalable                // astar-like: insensitive to hardware changes
	Balanced                  // mixed compute/memory
	NumClasses   = 5
)

func (c Class) String() string {
	switch c {
	case ComputeBound:
		return "compute-bound"
	case MemoryBound:
		return "memory-bound"
	case Peak:
		return "peak"
	case Unscalable:
		return "unscalable"
	case Balanced:
		return "balanced"
	}
	return fmt.Sprintf("class?(%d)", int8(c))
}

// Model constants. Dynamic power coefficients are calibrated so that a
// fully utilized chip at [P1, NB0, DPM4, 8 CUs] draws ~75 W, inside the
// 95 W TDP of the A10-7850K. Absolute watts are synthetic (we have no
// hardware); relative behaviour across the configuration space is what
// the policies consume.
const (
	overlapBeta = 0.20 // fraction of the shorter phase not hidden by overlap
	nbLatCoeff  = 0.04 // per-GHz NB slowdown of effective memory bandwidth

	kGPUDyn    = 3.5  // W per CU per V² per GHz at full utilization
	gpuIdleAct = 0.30 // floor activity of powered CUs
	kGPULeak   = 0.50 // W per CU per V
	kNBDyn     = 1.5  // W per V² per GHz of NB clock
	kMemDyn    = 4.0  // W at full memory-bandwidth utilization of the 800 MHz config
	kCPUDyn    = 11.7 // W per V² per GHz at activity 1
	cpuBusyAct = 0.35 // busy-wait activity factor while the GPU runs
	kCPULeak   = 3.0  // W per V
	tempCouple = 0.12 // GPU leakage increase per unit of CPU-power/TDP (heat coupling)

	refMemBW = 25.6 // GB/s of the 800 MHz memory configuration
)

// Params fully describes a kernel for the ground-truth model.
type Params struct {
	Name  string
	Class Class

	Insts   float64 // total executed instructions (thread-count × instructions per thread)
	Threads float64 // global work size in work-items

	ComputeWork float64 // single-CU compute time in mega-cycles (Mcycles / GHz = ms)
	MemWork     float64 // DRAM traffic in MB (MB / (GB/s) = ms)

	ParallelFrac float64 // Amdahl parallel fraction in [0,1]
	CachePeakCUs int8    // CU count beyond which cache interference begins (0 = never)
	CacheSlope   float64 // extra relative memory traffic per CU beyond CachePeakCUs
	LaunchMS     float64 // fixed per-invocation launch/serial time

	CacheHitPct    float64 // data-cache hit rate counter value
	ScratchRegs    float64 // scratch registers counter value
	LDSConflictPct float64 // LDS bank conflict counter value
}

// Kernel is an immutable kernel instance: shared Params plus a
// per-invocation input scale (hybridsort's mergeSortPass runs nine times
// with different inputs; each invocation scales the work).
type Kernel struct {
	P          Params
	InputScale float64 // multiplier on Insts/ComputeWork/MemWork; 0 means 1
}

// New returns a Kernel over p with unit input scale. It panics if p is
// not Valid.
func New(p Params) Kernel {
	k := Kernel{P: p, InputScale: 1}
	if err := k.Validate(); err != nil {
		panic(err)
	}
	return k
}

// WithInput returns a copy of k whose work is scaled by s (> 0).
func (k Kernel) WithInput(s float64) Kernel {
	if s <= 0 {
		panic("kernel: input scale must be positive")
	}
	k.InputScale = s
	return k
}

// Validate reports whether the kernel's parameters are usable.
func (k Kernel) Validate() error {
	p := k.P
	switch {
	case p.Name == "":
		return fmt.Errorf("kernel: empty name")
	case p.Insts <= 0 || p.Threads <= 0:
		return fmt.Errorf("kernel %s: Insts and Threads must be positive", p.Name)
	case p.ComputeWork < 0 || p.MemWork < 0 || p.ComputeWork+p.MemWork == 0:
		return fmt.Errorf("kernel %s: need non-negative compute/memory work, not both zero", p.Name)
	case p.ParallelFrac < 0 || p.ParallelFrac > 1:
		return fmt.Errorf("kernel %s: ParallelFrac %v outside [0,1]", p.Name, p.ParallelFrac)
	case p.CacheSlope < 0 || p.LaunchMS < 0:
		return fmt.Errorf("kernel %s: negative CacheSlope or LaunchMS", p.Name)
	case k.InputScale < 0:
		return fmt.Errorf("kernel %s: negative input scale", p.Name)
	}
	return nil
}

// Name returns the kernel name.
func (k Kernel) Name() string { return k.P.Name }

func (k Kernel) scale() float64 {
	if k.InputScale == 0 {
		return 1
	}
	return k.InputScale
}

// Insts returns the total instruction count of one invocation, including
// the input scale.
func (k Kernel) Insts() float64 { return k.P.Insts * k.scale() }

// amdahlSpeedup is the speedup of cu CUs over one CU for parallel
// fraction p.
func amdahlSpeedup(p float64, cu int8) float64 {
	return 1 / ((1 - p) + p/float64(cu))
}

// effMemBW is the effective memory bandwidth at an NB state: the DRAM
// peak derated by a small NB-clock latency penalty. NB0–NB2 share the
// DRAM clock, so memory-bound performance saturates from NB2 onward with
// only a slight NB-frequency slope — matching Fig. 2b.
func effMemBW(nb hw.NBState) float64 {
	raw := nb.MemBWGBs()
	pen := 1 + nbLatCoeff*(hw.NB0.FreqGHz()-nb.FreqGHz())
	return raw / pen
}

// phases returns the compute-phase and memory-phase times (ms) of the
// kernel at config c, before overlap composition.
func (k Kernel) phases(c hw.Config) (computeMS, memMS float64) {
	s := k.scale()
	computeMS = s * k.P.ComputeWork / (c.GPU.FreqGHz() * amdahlSpeedup(k.P.ParallelFrac, c.CUs))
	mem := s * k.P.MemWork
	if k.P.CachePeakCUs > 0 && c.CUs > k.P.CachePeakCUs {
		// Destructive shared-cache interference: more active CUs thrash
		// the cache and inflate DRAM traffic (paper §II-C "peak" kernels).
		mem *= 1 + k.P.CacheSlope*float64(c.CUs-k.P.CachePeakCUs)
	}
	memMS = mem / effMemBW(c.NB)
	return computeMS, memMS
}

// TimeMS returns the kernel execution time in milliseconds at config c.
// The launch/serial overhead scales with the input like the parallel
// phases do: serialization cost grows with the work it serializes.
func (k Kernel) TimeMS(c hw.Config) float64 {
	cms, mms := k.phases(c)
	hi, lo := cms, mms
	if lo > hi {
		hi, lo = lo, hi
	}
	return hi + overlapBeta*lo + k.P.LaunchMS*k.scale()
}

// Throughput returns instructions per millisecond at config c — the
// kernel instruction throughput metric of Eq. 1.
func (k Kernel) Throughput(c hw.Config) float64 { return k.Insts() / k.TimeMS(c) }

// Metrics is the full ground-truth observation for one kernel invocation
// at one configuration: what the paper measured per 1 ms sample from the
// APU's power controller, aggregated over the kernel.
type Metrics struct {
	TimeMS float64
	GPUW   float64 // GPU domain power (CU array), W
	NBW    float64 // northbridge + memory power, W (shares the GPU rail)
	CPUW   float64 // CPU domain power, W
}

// TotalW returns chip power in watts.
func (m Metrics) TotalW() float64 { return m.GPUW + m.NBW + m.CPUW }

// EnergyMJ returns total chip energy in millijoules.
func (m Metrics) EnergyMJ() float64 { return m.TotalW() * m.TimeMS }

// GPUEnergyMJ returns the GPU-side energy (GPU + NB, which share a rail
// and are reported together by the paper's power measurements).
func (m Metrics) GPUEnergyMJ() float64 { return (m.GPUW + m.NBW) * m.TimeMS }

// CPUEnergyMJ returns the CPU-side energy.
func (m Metrics) CPUEnergyMJ() float64 { return m.CPUW * m.TimeMS }

// CPUPowerW returns the CPU domain power at CPU state p with busy-wait
// activity: the normalized V²f model the paper uses for the CPU (§IV-A3),
// plus leakage.
func CPUPowerW(p hw.CPUPState) float64 {
	v := p.Voltage()
	return kCPUDyn*v*v*p.FreqGHz()*cpuBusyAct + kCPULeak*v
}

// Evaluate returns the ground-truth metrics of one invocation of k at
// config c.
func (k Kernel) Evaluate(c hw.Config) Metrics {
	if !c.Valid() {
		panic(fmt.Sprintf("kernel: Evaluate with invalid config %v", c))
	}
	cms, mms := k.phases(c)
	t := k.TimeMS(c)

	// CPU busy-waits for the whole kernel (paper §II-B: little CPU/GPU
	// overlap in these workloads).
	cpuW := CPUPowerW(c.CPU)

	// Shared GPU/NB rail voltage: a high NB state can pin the rail high
	// even when the GPU frequency drops (§II-A).
	v := c.RailVoltage()

	// GPU dynamic power scales with busy fraction of the compute phase;
	// powered CUs draw a floor activity even when stalled on memory.
	util := gpuIdleAct + (1-gpuIdleAct)*math.Min(1, cms/t)
	gpuDyn := kGPUDyn * float64(c.CUs) * v * v * c.GPU.FreqGHz() * util

	// GPU leakage rises with rail voltage and with die temperature, which
	// the busy CPU raises: lowering CPU DVFS slightly reduces GPU power
	// (§II-A).
	leakTemp := 1 + tempCouple*cpuW/hw.TDPWatt
	gpuLeak := kGPULeak * float64(c.CUs) * v * leakTemp

	// NB + memory power: NB clock tree plus DRAM activity proportional to
	// achieved bandwidth utilization.
	bwUtil := math.Min(1, mms/t) * effMemBW(c.NB) / refMemBW
	nbW := kNBDyn*v*v*c.NB.FreqGHz() + kMemDyn*bwUtil

	return Metrics{TimeMS: t, GPUW: gpuDyn + gpuLeak, NBW: nbW, CPUW: cpuW}
}

// EnergyMJ is shorthand for Evaluate(c).EnergyMJ().
func (k Kernel) EnergyMJ(c hw.Config) float64 { return k.Evaluate(c).EnergyMJ() }

// Counters synthesizes the eight Table III performance counters for one
// invocation of k. Counters are sampled at kernel granularity and are the
// only kernel features visible to the predictor and pattern extractor —
// the ground-truth Params never leak to the policies.
func (k Kernel) Counters() counters.Set {
	s := k.scale()
	cms, mms := k.phases(hw.FailSafe())
	tot := cms + mms
	var set counters.Set
	set[counters.GlobalWorkSize] = k.P.Threads * s
	if tot > 0 {
		set[counters.MemUnitStalled] = 100 * mms / tot
	}
	set[counters.CacheHit] = k.P.CacheHitPct
	// 64-byte vector fetches per work-item.
	set[counters.VFetchInsts] = k.P.MemWork * s * 1e6 / 64 / (k.P.Threads * s)
	set[counters.ScratchRegs] = k.P.ScratchRegs
	set[counters.LDSBankConflict] = k.P.LDSConflictPct
	set[counters.VALUInsts] = k.Insts() / (k.P.Threads * s)
	set[counters.FetchSize] = k.P.MemWork * s * 1000 // kB
	return set
}

// OptimalConfig exhaustively searches the space for the minimum-energy
// configuration of k, optionally requiring throughput >= minThroughput
// (pass 0 for unconstrained). Used by the Fig. 2 characterization and as
// a test oracle; runtime policies never call it.
func (k Kernel) OptimalConfig(space hw.Space, minThroughput float64) (hw.Config, Metrics) {
	var best hw.Config
	var bestM Metrics
	bestE := math.Inf(1)
	space.ForEach(func(c hw.Config) {
		m := k.Evaluate(c)
		if minThroughput > 0 && k.Insts()/m.TimeMS < minThroughput {
			return
		}
		if e := m.EnergyMJ(); e < bestE {
			best, bestM, bestE = c, m, e
		}
	})
	if math.IsInf(bestE, 1) {
		// Constraint unreachable anywhere: return the fastest config.
		bestT := math.Inf(1)
		space.ForEach(func(c hw.Config) {
			m := k.Evaluate(c)
			if m.TimeMS < bestT {
				best, bestM, bestT = c, m, m.TimeMS
			}
		})
	}
	return best, bestM
}

// Archetype constructors. The magnitude argument scales the kernel's
// size; 1.0 yields a mid-size kernel of a few milliseconds at the
// fail-safe config.

// NewComputeBound returns a MaxFlops-like kernel: heavy ALU work, little
// memory traffic, near-perfect CU scaling.
func NewComputeBound(name string, magnitude float64) Kernel {
	return New(Params{
		Name: name, Class: ComputeBound,
		Insts: 4e9 * magnitude, Threads: 1e6 * magnitude,
		ComputeWork: 14 * magnitude, MemWork: 2 * magnitude,
		ParallelFrac: 0.985, LaunchMS: 0.02,
		CacheHitPct: 92, ScratchRegs: 8, LDSConflictPct: 1,
	})
}

// NewMemoryBound returns a readGlobalMemoryCoalesced-like kernel:
// streaming memory traffic that saturates DRAM bandwidth.
func NewMemoryBound(name string, magnitude float64) Kernel {
	return New(Params{
		Name: name, Class: MemoryBound,
		Insts: 1.2e9 * magnitude, Threads: 2e6 * magnitude,
		ComputeWork: 1.2 * magnitude, MemWork: 120 * magnitude,
		ParallelFrac: 0.95, LaunchMS: 0.02,
		CacheHitPct: 22, ScratchRegs: 4, LDSConflictPct: 0,
	})
}

// NewPeak returns a writeCandidates-like kernel: performance and energy
// peak at a reduced CU count because additional CUs thrash the shared
// cache.
func NewPeak(name string, magnitude float64) Kernel {
	return New(Params{
		Name: name, Class: Peak,
		Insts: 2e9 * magnitude, Threads: 8e5 * magnitude,
		ComputeWork: 6 * magnitude, MemWork: 30 * magnitude,
		ParallelFrac: 0.97, CachePeakCUs: 4, CacheSlope: 0.45, LaunchMS: 0.02,
		CacheHitPct: 65, ScratchRegs: 16, LDSConflictPct: 6,
	})
}

// NewUnscalable returns an astar-like kernel: a large serial fraction and
// launch overhead make it insensitive to hardware configuration.
func NewUnscalable(name string, magnitude float64) Kernel {
	return New(Params{
		Name: name, Class: Unscalable,
		Insts: 2e8 * magnitude, Threads: 2e4 * magnitude,
		ComputeWork: 0.5 * magnitude, MemWork: 1.5 * magnitude,
		ParallelFrac: 0.2, LaunchMS: 2.4 * magnitude,
		CacheHitPct: 55, ScratchRegs: 32, LDSConflictPct: 10,
	})
}

// NewBalanced returns a kernel with comparable compute and memory phases.
func NewBalanced(name string, magnitude float64) Kernel {
	return New(Params{
		Name: name, Class: Balanced,
		Insts: 2.5e9 * magnitude, Threads: 1.5e6 * magnitude,
		ComputeWork: 8 * magnitude, MemWork: 55 * magnitude,
		ParallelFrac: 0.95, LaunchMS: 0.05,
		CacheHitPct: 70, ScratchRegs: 12, LDSConflictPct: 3,
	})
}

// Random draws a kernel with a random class and jittered parameters from
// rng. The synthetic population used to train the Random Forest predictor
// is drawn from this distribution, which overlaps — but does not equal —
// the evaluation benchmarks, so the predictor is imperfect in the same
// way an offline-trained model is on unseen kernels.
func Random(name string, rng *rand.Rand) Kernel {
	jit := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	// The magnitude range covers everything the evaluation benchmarks use
	// (0.5 .. 14): an offline model must be trained across the sizes it
	// will see, or its predictions saturate at the population edge.
	mag := math.Exp(jit(math.Log(0.15), math.Log(20)))
	var k Kernel
	switch Class(rng.Intn(NumClasses)) {
	case ComputeBound:
		k = NewComputeBound(name, mag)
	case MemoryBound:
		k = NewMemoryBound(name, mag)
	case Peak:
		k = NewPeak(name, mag)
	case Unscalable:
		k = NewUnscalable(name, mag)
	default:
		k = NewBalanced(name, mag)
	}
	p := k.P
	p.ComputeWork *= jit(0.6, 1.6)
	p.MemWork *= jit(0.6, 1.6)
	p.Insts *= jit(0.7, 1.4)
	p.ParallelFrac = math.Min(1, math.Max(0, p.ParallelFrac*jit(0.85, 1.1)))
	p.LaunchMS *= jit(0.5, 2)
	p.CacheHitPct = math.Min(99, math.Max(1, p.CacheHitPct*jit(0.8, 1.2)))
	p.ScratchRegs = math.Max(1, p.ScratchRegs*jit(0.5, 2))
	p.LDSConflictPct = math.Max(0, p.LDSConflictPct*jit(0.5, 2))
	if p.CachePeakCUs == 0 && rng.Float64() < 0.15 {
		p.CachePeakCUs = int8(2 + 2*rng.Intn(3))
		p.CacheSlope = jit(0.1, 0.5)
	}
	return New(p)
}
