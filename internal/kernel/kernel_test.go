package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
)

func cfg(p hw.CPUPState, n hw.NBState, g hw.GPUState, cu int8) hw.Config {
	return hw.Config{CPU: p, NB: n, GPU: g, CUs: cu}
}

func TestValidation(t *testing.T) {
	good := NewBalanced("ok", 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := []Params{
		{},                                // empty name
		{Name: "x"},                       // zero insts
		{Name: "x", Insts: 1, Threads: 1}, // zero work
		{Name: "x", Insts: 1, Threads: 1, ComputeWork: 1, ParallelFrac: 2},
		{Name: "x", Insts: 1, Threads: 1, ComputeWork: 1, LaunchMS: -1},
	}
	for i, p := range bad {
		if err := (Kernel{P: p, InputScale: 1}).Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New(Params{})
}

func TestComputeBoundScaling(t *testing.T) {
	k := NewComputeBound("maxflops", 1)
	base := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM4, 2))
	more := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM4, 8))
	if sp := base / more; sp < 2.5 {
		t.Errorf("compute-bound CU speedup 2->8 = %.2f, want > 2.5 (Fig 2a)", sp)
	}
	// Insensitive to NB state.
	nb3 := k.TimeMS(cfg(hw.P5, hw.NB3, hw.DPM4, 8))
	nb0 := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM4, 8))
	if d := math.Abs(nb3-nb0) / nb0; d > 0.1 {
		t.Errorf("compute-bound NB sensitivity = %.2f, want < 0.1", d)
	}
	// Scales with GPU frequency.
	slow := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM0, 8))
	if sp := slow / nb0; sp < 1.6 {
		t.Errorf("compute-bound DPM0->DPM4 speedup = %.2f, want > 1.6", sp)
	}
}

func TestMemoryBoundSaturatesAtNB2(t *testing.T) {
	k := NewMemoryBound("readglobal", 1)
	c8 := func(nb hw.NBState) float64 { return k.TimeMS(cfg(hw.P5, nb, hw.DPM4, 8)) }
	// NB3 -> NB2 is a big jump (DRAM clock changes).
	if sp := c8(hw.NB3) / c8(hw.NB2); sp < 1.5 {
		t.Errorf("memory-bound NB3->NB2 speedup = %.2f, want > 1.5 (Fig 2b)", sp)
	}
	// NB2 -> NB0 is nearly flat (same DRAM clock).
	if sp := c8(hw.NB2) / c8(hw.NB0); sp > 1.05 {
		t.Errorf("memory-bound NB2->NB0 speedup = %.2f, want < 1.05 (saturation)", sp)
	}
}

func TestPeakKernelSlowsBeyondPeakCUs(t *testing.T) {
	k := NewPeak("writeCandidates", 1)
	t4 := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM4, 4))
	t8 := k.TimeMS(cfg(hw.P5, hw.NB0, hw.DPM4, 8))
	if t8 <= t4 {
		t.Errorf("peak kernel faster at 8 CUs (%.3f) than 4 CUs (%.3f); want interference slowdown (Fig 2c)", t8, t4)
	}
	// And its energy optimum is not at max CUs.
	best, _ := k.OptimalConfig(hw.DefaultSpace(), 0)
	if best.CUs == hw.MaxCUs {
		t.Errorf("peak kernel energy-optimal at %v; want fewer than 8 CUs", best)
	}
}

func TestUnscalableInsensitive(t *testing.T) {
	k := NewUnscalable("astar", 1)
	lo := k.TimeMS(cfg(hw.P7, hw.NB3, hw.DPM0, 2))
	hi := k.TimeMS(cfg(hw.P1, hw.NB0, hw.DPM4, 8))
	if sp := lo / hi; sp > 1.9 {
		t.Errorf("unscalable kernel config sensitivity = %.2f, want < 1.9 (Fig 2d)", sp)
	}
	// Energy-optimal at a low configuration.
	best, _ := k.OptimalConfig(hw.DefaultSpace(), 0)
	if best.GPU != hw.DPM0 {
		t.Errorf("unscalable energy-optimal GPU = %v, want DPM0", best)
	}
	if best.CPU != hw.P7 {
		t.Errorf("unscalable energy-optimal CPU = %v, want P7", best.CPU)
	}
}

func TestEnergyOptimalPointsDifferByClass(t *testing.T) {
	// §II-C: "These kernels reach their best efficiency at different
	// configurations" — the premise of the whole paper.
	space := hw.DefaultSpace()
	seen := map[hw.Config]bool{}
	for _, k := range []Kernel{
		NewComputeBound("c", 1), NewMemoryBound("m", 1),
		NewPeak("p", 1), NewUnscalable("u", 1),
	} {
		best, _ := k.OptimalConfig(space, 0)
		seen[best] = true
	}
	if len(seen) < 3 {
		t.Errorf("energy-optimal configs collapse to %d distinct points, want >= 3", len(seen))
	}
}

func TestComputeBoundOptimalPrefersLowNBManyCUs(t *testing.T) {
	k := NewComputeBound("c", 1)
	best, _ := k.OptimalConfig(hw.DefaultSpace(), 0)
	if best.NB != hw.NB3 {
		t.Errorf("compute-bound optimal NB = %v, want NB3 (lower NB state, Fig 2a)", best.NB)
	}
	if best.CUs < 6 {
		t.Errorf("compute-bound optimal CUs = %d, want >= 6", best.CUs)
	}
}

func TestCPUStateDoesNotAffectKernelTime(t *testing.T) {
	// §VI-A: lowering the CPU state does not improve kernel execution
	// time; Turbo Core wastes that power.
	k := NewBalanced("b", 1)
	t1 := k.TimeMS(cfg(hw.P1, hw.NB0, hw.DPM4, 8))
	t7 := k.TimeMS(cfg(hw.P7, hw.NB0, hw.DPM4, 8))
	if t1 != t7 {
		t.Errorf("kernel time depends on CPU state: P1=%v P7=%v", t1, t7)
	}
	// But CPU state strongly affects power.
	m1 := k.Evaluate(cfg(hw.P1, hw.NB0, hw.DPM4, 8))
	m7 := k.Evaluate(cfg(hw.P7, hw.NB0, hw.DPM4, 8))
	if m1.CPUW < 2*m7.CPUW {
		t.Errorf("CPU power P1=%v not >> P7=%v", m1.CPUW, m7.CPUW)
	}
}

func TestSharedRailLimitsGPUSavings(t *testing.T) {
	// §II-A: with NB0 active, dropping the GPU DPM state cannot drop the
	// shared rail voltage, limiting power savings vs the same drop at NB3.
	k := NewComputeBound("c", 1)
	gpuNB := func(c hw.Config) float64 {
		m := k.Evaluate(c)
		return m.GPUW + m.NBW
	}
	savedAtNB0 := gpuNB(cfg(hw.P5, hw.NB0, hw.DPM4, 8)) - gpuNB(cfg(hw.P5, hw.NB0, hw.DPM0, 8))
	savedAtNB3 := gpuNB(cfg(hw.P5, hw.NB3, hw.DPM4, 8)) - gpuNB(cfg(hw.P5, hw.NB3, hw.DPM0, 8))
	if savedAtNB3 <= savedAtNB0 {
		t.Errorf("DPM4->DPM0 saves %.2f W at NB3 vs %.2f W at NB0; want more at NB3 (voltage unpinned)", savedAtNB3, savedAtNB0)
	}
}

func TestTDPEnvelope(t *testing.T) {
	// Max config on the heaviest archetypes stays within the 95 W TDP.
	for _, k := range []Kernel{NewComputeBound("c", 5), NewMemoryBound("m", 5), NewBalanced("b", 5)} {
		m := k.Evaluate(hw.MaxPerf())
		if m.TotalW() > hw.TDPWatt {
			t.Errorf("%s at max perf draws %.1f W > TDP %d", k.Name(), m.TotalW(), hw.TDPWatt)
		}
		if m.TotalW() < 40 {
			t.Errorf("%s at max perf draws only %.1f W; model badly under-calibrated", k.Name(), m.TotalW())
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	k := NewBalanced("b", 1)
	m := k.Evaluate(hw.FailSafe())
	if m.TimeMS <= 0 || m.GPUW <= 0 || m.NBW <= 0 || m.CPUW <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
	if got, want := m.EnergyMJ(), m.TotalW()*m.TimeMS; math.Abs(got-want) > 1e-9 {
		t.Errorf("EnergyMJ = %v, want %v", got, want)
	}
	if got, want := m.GPUEnergyMJ()+m.CPUEnergyMJ(), m.EnergyMJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy split %v != total %v", got, want)
	}
}

func TestEvaluatePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate(invalid) did not panic")
		}
	}()
	NewBalanced("b", 1).Evaluate(hw.Config{CPU: 99})
}

func TestInputScale(t *testing.T) {
	k := NewMemoryBound("m", 1)
	big := k.WithInput(2)
	c := hw.FailSafe()
	if big.Insts() != 2*k.Insts() {
		t.Errorf("Insts with scale 2 = %v, want %v", big.Insts(), 2*k.Insts())
	}
	tk, tb := k.TimeMS(c), big.TimeMS(c)
	if tb < 1.8*tk || tb > 2.2*tk {
		t.Errorf("time with scale 2 = %v, want ~2x %v", tb, tk)
	}
	// Throughput is nearly invariant to input scale (same kernel).
	if d := math.Abs(big.Throughput(c)-k.Throughput(c)) / k.Throughput(c); d > 0.15 {
		t.Errorf("throughput drifts %.2f under input scaling", d)
	}
}

func TestWithInputPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithInput(0) did not panic")
		}
	}()
	NewBalanced("b", 1).WithInput(0)
}

func TestCountersReflectClass(t *testing.T) {
	cb := NewComputeBound("c", 1).Counters()
	mb := NewMemoryBound("m", 1).Counters()
	if cb[counters.MemUnitStalled] >= mb[counters.MemUnitStalled] {
		t.Errorf("compute-bound MemUnitStalled %v >= memory-bound %v",
			cb[counters.MemUnitStalled], mb[counters.MemUnitStalled])
	}
	if cb[counters.CacheHit] <= mb[counters.CacheHit] {
		t.Errorf("compute-bound CacheHit %v <= memory-bound %v", cb[counters.CacheHit], mb[counters.CacheHit])
	}
	if mb[counters.FetchSize] <= cb[counters.FetchSize] {
		t.Errorf("memory-bound FetchSize %v <= compute-bound %v", mb[counters.FetchSize], cb[counters.FetchSize])
	}
}

func TestCountersScaleWithInput(t *testing.T) {
	k := NewBalanced("b", 1)
	c1, c4 := k.Counters(), k.WithInput(4).Counters()
	if c4[counters.GlobalWorkSize] != 4*c1[counters.GlobalWorkSize] {
		t.Errorf("GlobalWorkSize does not scale with input")
	}
	if c4[counters.FetchSize] != 4*c1[counters.FetchSize] {
		t.Errorf("FetchSize does not scale with input")
	}
	// Per-work-item counters are invariant.
	if math.Abs(c4[counters.VALUInsts]-c1[counters.VALUInsts]) > 1e-9 {
		t.Errorf("VALUInsts per work-item changed with input scale")
	}
}

func TestOptimalConfigHonorsConstraint(t *testing.T) {
	k := NewBalanced("b", 1)
	space := hw.DefaultSpace()
	maxTP := k.Throughput(hw.MaxPerf())
	best, m := k.OptimalConfig(space, 0.95*maxTP)
	if k.Insts()/m.TimeMS < 0.95*maxTP {
		t.Errorf("constrained optimum %v violates throughput floor", best)
	}
	// Unreachable constraint falls back to the fastest config.
	fast, fm := k.OptimalConfig(space, 10*maxTP)
	bestT := math.Inf(1)
	space.ForEach(func(c hw.Config) {
		if tt := k.TimeMS(c); tt < bestT {
			bestT = tt
		}
	})
	if fm.TimeMS != bestT {
		t.Errorf("fallback config %v time %v, want fastest %v", fast, fm.TimeMS, bestT)
	}
}

func TestRandomKernelsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		k := Random("r", rng)
		if err := k.Validate(); err != nil {
			t.Fatalf("Random produced invalid kernel: %v", err)
		}
		m := k.Evaluate(hw.FailSafe())
		if m.TimeMS <= 0 || math.IsNaN(m.TotalW()) || m.TotalW() <= 0 {
			t.Fatalf("Random kernel bad metrics: %+v", m)
		}
	}
}

func TestRandomCoversAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[Class]bool{}
	for i := 0; i < 300; i++ {
		seen[Random("r", rng).P.Class] = true
	}
	for c := Class(0); c < NumClasses; c++ {
		if !seen[c] {
			t.Errorf("Random never produced class %v", c)
		}
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", c)
		}
	}
	if Class(99).String() == "" {
		t.Error("invalid class has empty string")
	}
}

// Property: time is positive, monotone non-increasing in GPU frequency for
// any kernel without cache interference, and energy/throughput are finite,
// over random kernels and the full config space.
func TestModelSanityQuick(t *testing.T) {
	space := hw.FullSpace()
	cfgs := space.Configs()
	rng := rand.New(rand.NewSource(99))
	kernels := make([]Kernel, 40)
	for i := range kernels {
		kernels[i] = Random("q", rng)
	}
	f := func(ki uint8, ci uint16) bool {
		k := kernels[int(ki)%len(kernels)]
		c := cfgs[int(ci)%len(cfgs)]
		m := k.Evaluate(c)
		if !(m.TimeMS > 0) || math.IsNaN(m.EnergyMJ()) || math.IsInf(m.EnergyMJ(), 0) {
			return false
		}
		if up, ok := space.Step(c, hw.KnobGPU, +1); ok {
			// Faster GPU never slows the kernel down.
			if k.TimeMS(up) > m.TimeMS+1e-12 {
				return false
			}
		}
		return k.Throughput(c) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: Amdahl speedup is bounded by the CU ratio and by 1/(1-p).
func TestAmdahlBoundsQuick(t *testing.T) {
	f := func(praw uint16, cu uint8) bool {
		p := float64(praw%1000) / 1000
		n := int8(2 + 2*(cu%4))
		s := amdahlSpeedup(p, n)
		return s >= 1-1e-12 && s <= float64(n)+1e-12 && (p == 1 || s <= 1/(1-p)+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
