package counters

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBin(t *testing.T) {
	cases := []struct {
		u    float64
		want int8
	}{
		{0, -1}, {0.5, -1}, {-3, -1},
		{1, 0}, {1.9, 0}, {2, 1}, {3.99, 1}, {4, 2},
		{1023, 9}, {1024, 10}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := Bin(c.u); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestSignatureStableUnderSmallPerturbation(t *testing.T) {
	// Same kernel, slightly different input: counters wiggle within a
	// factor < 2 around a mid-bin value, signature must not change.
	base := Set{1536, 48, 75, 6, 12, 3, 96, 3000}
	sig := SignatureOf(base)
	perturbed := base
	for i := range perturbed {
		perturbed[i] *= 1.2
	}
	if got := SignatureOf(perturbed); got != sig {
		t.Errorf("signature changed under 1.2x perturbation: %v vs %v", got, sig)
	}
}

func TestSignatureSeparatesDissimilarKernels(t *testing.T) {
	a := Set{1 << 10, 10, 90, 1, 4, 0, 200, 100}
	b := Set{1 << 16, 80, 20, 30, 64, 12, 10, 50000}
	if SignatureOf(a) == SignatureOf(b) {
		t.Error("dissimilar kernels share a signature")
	}
}

func TestRecordBytesIs80(t *testing.T) {
	if RecordBytes != 80 {
		t.Fatalf("RecordBytes = %d, want 80 (paper §IV-A2)", RecordBytes)
	}
	r := Record{Counters: Set{1, 2, 3, 4, 5, 6, 7, 8}, TimeMS: 9, PowerW: 10}
	if got := len(r.Marshal()); got != 80 {
		t.Fatalf("Marshal length = %d, want 80", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		Counters: Set{1536, 48.5, 75.1, 6.25, 12, 3.5, 96, 3000.75},
		TimeMS:   12.345,
		PowerW:   41.5,
	}
	got, err := UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
}

func TestUnmarshalRejectsBadLength(t *testing.T) {
	if _, err := UnmarshalRecord(make([]byte, 79)); err == nil {
		t.Error("UnmarshalRecord(79 bytes) should fail")
	}
	if _, err := UnmarshalRecord(nil); err == nil {
		t.Error("UnmarshalRecord(nil) should fail")
	}
}

func TestBlend(t *testing.T) {
	r := Record{Counters: Set{10, 10, 10, 10, 10, 10, 10, 10}, TimeMS: 10, PowerW: 10}
	obs := Record{Counters: Set{20, 20, 20, 20, 20, 20, 20, 20}, TimeMS: 20, PowerW: 20}
	r.Blend(obs, 0.5)
	for i, v := range r.Counters {
		if v != 15 {
			t.Errorf("counter %d = %v, want 15", i, v)
		}
	}
	if r.TimeMS != 15 || r.PowerW != 15 {
		t.Errorf("time/power = %v/%v, want 15/15", r.TimeMS, r.PowerW)
	}
	// w=1 replaces outright.
	r.Blend(obs, 1)
	if r != obs {
		t.Errorf("Blend(w=1) = %+v, want %+v", r, obs)
	}
}

func TestBlendPanicsOnBadWeight(t *testing.T) {
	for _, w := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Blend(w=%v) did not panic", w)
				}
			}()
			r := Record{}
			r.Blend(Record{}, w)
		}()
	}
}

func TestStrings(t *testing.T) {
	s := Set{1, 2, 3, 4, 5, 6, 7, 8}
	str := s.String()
	for _, name := range Names {
		if !strings.Contains(str, name) {
			t.Errorf("Set.String missing %q: %s", name, str)
		}
	}
	if got := SignatureOf(s).String(); !strings.HasPrefix(got, "(") || !strings.HasSuffix(got, ")") {
		t.Errorf("Signature.String = %q", got)
	}
}

// Property: Marshal/Unmarshal is the identity on finite records.
func TestRecordRoundTripQuick(t *testing.T) {
	f := func(c [NumCounters]float32, tm, pw float32) bool {
		var r Record
		for i, v := range c {
			r.Counters[i] = float64(v)
		}
		r.TimeMS, r.PowerW = float64(tm), float64(pw)
		got, err := UnmarshalRecord(r.Marshal())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// Property: Bin is monotone non-decreasing and doubling a value >= 1
// increments its bin by exactly one.
func TestBinMonotoneQuick(t *testing.T) {
	f := func(raw uint32) bool {
		u := float64(raw)/16 + 1 // >= 1
		b := Bin(u)
		if Bin(u*2) != b+1 {
			return false
		}
		return Bin(u*1.0001) >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

func TestBlendConvergesToObservation(t *testing.T) {
	r := Record{Counters: Set{100, 0, 0, 0, 0, 0, 0, 0}, TimeMS: 100}
	obs := Record{Counters: Set{1, 0, 0, 0, 0, 0, 0, 0}, TimeMS: 1}
	for i := 0; i < 200; i++ {
		r.Blend(obs, 0.25)
	}
	if math.Abs(r.TimeMS-1) > 1e-6 || math.Abs(r.Counters[0]-1) > 1e-6 {
		t.Errorf("Blend did not converge: %+v", r)
	}
}
