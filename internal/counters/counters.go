// Package counters defines the GPU performance-counter set the paper's
// runtime samples (Table III), the log-binned kernel signature used by the
// pattern extractor to identify kernels, and the 80-byte storage record
// the extractor keeps per dissimilar kernel (§IV-A2).
package counters

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Index of each performance counter in a Set, in Table III order.
const (
	GlobalWorkSize  = iota // global work-item size of the kernel
	MemUnitStalled         // % of GPUTime the memory unit is stalled
	CacheHit               // % of fetch/write/atomic instructions hitting the data cache
	VFetchInsts            // avg vector fetch instructions from video memory per work-item
	ScratchRegs            // number of scratch registers used
	LDSBankConflict        // % of GPUTime LDS is stalled by bank conflicts
	VALUInsts              // avg vector ALU instructions per work-item
	FetchSize              // total kB fetched from video memory
	NumCounters
)

// Names holds the Table III counter names, indexed like a Set.
var Names = [NumCounters]string{
	"GlobalWorkSize", "MemUnitStalled", "CacheHit", "VFetchInsts",
	"ScratchRegs", "LDSBankConflict", "VALUInsts", "FetchSize",
}

// Set is one sample of the eight Table III performance counters.
type Set [NumCounters]float64

// String renders the set as name=value pairs.
func (s Set) String() string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.3g", Names[i], v)
	}
	return out
}

// Signature is the log-binned counter tuple the pattern extractor uses to
// identify kernels: bin_i = floor(log2(u_i)) per counter (§IV-A2). Kernels
// with similar counter magnitudes — e.g. the same kernel on slightly
// different inputs — collapse to the same signature, while kernels whose
// behaviour differs materially (including the same kernel on a very
// different input, as in hybridsort's mergeSortPass) get distinct ones.
type Signature [NumCounters]int8

// Bin returns the signature bin for a single counter value:
// floor(log2(u)) for u >= 1, and -1 for u < 1 (including zero and negative
// values, which have no finite log).
func Bin(u float64) int8 {
	if u < 1 {
		return -1
	}
	b := int8(math.Floor(math.Log2(u)))
	return b
}

// SignatureOf computes the signature of a counter set.
func SignatureOf(s Set) Signature {
	var sig Signature
	for i, v := range s {
		sig[i] = Bin(v)
	}
	return sig
}

// String renders the signature as a compact tuple.
func (sig Signature) String() string {
	out := "("
	for i, b := range sig {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", b)
	}
	return out + ")"
}

// Record is what the pattern extractor stores per dissimilar kernel: the
// eight counters plus the observed kernel time and power, all as
// double-precision values — 80 bytes, matching the paper's storage-cost
// claim.
type Record struct {
	Counters Set
	TimeMS   float64
	PowerW   float64
}

// RecordBytes is the serialized size of a Record.
const RecordBytes = (NumCounters + 2) * 8

// Marshal encodes the record in little-endian binary form. The result is
// always RecordBytes (80) bytes long.
func (r Record) Marshal() []byte {
	buf := make([]byte, RecordBytes)
	for i, v := range r.Counters {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(buf[NumCounters*8:], math.Float64bits(r.TimeMS))
	binary.LittleEndian.PutUint64(buf[(NumCounters+1)*8:], math.Float64bits(r.PowerW))
	return buf
}

// UnmarshalRecord decodes a record previously produced by Marshal.
func UnmarshalRecord(buf []byte) (Record, error) {
	if len(buf) != RecordBytes {
		return Record{}, fmt.Errorf("counters: record is %d bytes, want %d", len(buf), RecordBytes)
	}
	var r Record
	for i := 0; i < NumCounters; i++ {
		r.Counters[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	r.TimeMS = math.Float64frombits(binary.LittleEndian.Uint64(buf[NumCounters*8:]))
	r.PowerW = math.Float64frombits(binary.LittleEndian.Uint64(buf[(NumCounters+1)*8:]))
	return r, nil
}

// Blend updates r's counters and measurements toward a newer observation
// using an exponential moving average with weight w in (0,1]; w=1 replaces
// the record outright. The extractor uses this to apply performance
// counter feedback from the last executed kernel (§IV-A2).
func (r *Record) Blend(obs Record, w float64) {
	if w <= 0 || w > 1 {
		panic("counters: blend weight must be in (0,1]")
	}
	for i := range r.Counters {
		r.Counters[i] = (1-w)*r.Counters[i] + w*obs.Counters[i]
	}
	r.TimeMS = (1-w)*r.TimeMS + w*obs.TimeMS
	r.PowerW = (1-w)*r.PowerW + w*obs.PowerW
}
