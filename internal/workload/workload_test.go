package workload

import (
	"math/rand"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

func TestBenchmarksMatchTableIV(t *testing.T) {
	want := []struct {
		name     string
		suite    string
		category Category
		n        int
	}{
		{"mandelbulbGPU", "Phoronix", Regular, 20},
		{"NBody", "AMD APP SDK", Regular, 10},
		{"lbm", "Parboil", Regular, 10},
		{"EigenValue", "AMD APP SDK", IrregularRepeating, 10},
		{"XSBench", "Exascale", IrregularRepeating, 6},
		{"Spmv", "SHOC", IrregularNonRepeating, 30},
		{"kmeans", "Rodinia", IrregularNonRepeating, 21},
		{"swat", "OpenDwarfs", IrregularInputVarying, 14},
		{"color", "Pannotia", IrregularInputVarying, 16},
		{"pb-bfs", "Parboil", IrregularInputVarying, 16},
		{"mis", "Pannotia", IrregularInputVarying, 14},
		{"srad", "Rodinia", IrregularInputVarying, 16},
		{"lulesh", "Exascale", IrregularInputVarying, 15},
		{"lud", "Rodinia", IrregularInputVarying, 16},
		{"hybridsort", "Rodinia", IrregularInputVarying, 15},
	}
	apps := Benchmarks()
	if len(apps) != 15 {
		t.Fatalf("got %d benchmarks, want 15 (Table IV)", len(apps))
	}
	for i, w := range want {
		a := apps[i]
		if a.Name != w.name || a.Suite != w.suite || a.Category != w.category {
			t.Errorf("benchmark %d = %s/%s/%v, want %s/%s/%v",
				i, a.Name, a.Suite, a.Category, w.name, w.suite, w.category)
		}
		if a.Len() != w.n {
			t.Errorf("%s has %d invocations, want %d", a.Name, a.Len(), w.n)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s invalid: %v", a.Name, err)
		}
	}
}

func TestTableIIPatterns(t *testing.T) {
	// Table II pins the execution patterns of three irregular benchmarks.
	spmv, _ := ByName("Spmv")
	if spmv.Pattern != "A10B10C10" {
		t.Errorf("Spmv pattern = %q, want A10B10C10", spmv.Pattern)
	}
	// 3 distinct kernels, each 10x in blocks.
	names := map[string]int{}
	for _, k := range spmv.Kernels {
		names[k.Name()]++
	}
	if len(names) != 3 {
		t.Errorf("Spmv has %d distinct kernels, want 3", len(names))
	}
	for n, c := range names {
		if c != 10 {
			t.Errorf("Spmv kernel %s runs %d times, want 10", n, c)
		}
	}

	km, _ := ByName("kmeans")
	if km.Pattern != "AB20" {
		t.Errorf("kmeans pattern = %q, want AB20", km.Pattern)
	}
	if km.Kernels[0].Name() == km.Kernels[1].Name() {
		t.Error("kmeans first kernel should differ from the iterated kernel")
	}
	for i := 1; i < km.Len(); i++ {
		if km.Kernels[i].Name() != km.Kernels[1].Name() {
			t.Errorf("kmeans invocation %d is %s, want iterated kernel", i, km.Kernels[i].Name())
		}
	}

	hs, _ := ByName("hybridsort")
	if hs.Pattern != "ABCDEF1F2F3F4F5F6F7F8F9G" {
		t.Errorf("hybridsort pattern = %q", hs.Pattern)
	}
	// mergeSortPass iterates nine times with different inputs.
	var scales []float64
	for _, k := range hs.Kernels {
		if k.Name() == "mergeSortPass" {
			scales = append(scales, k.InputScale)
		}
	}
	if len(scales) != 9 {
		t.Fatalf("mergeSortPass runs %d times, want 9", len(scales))
	}
	seen := map[float64]bool{}
	for _, s := range scales {
		if seen[s] {
			t.Errorf("mergeSortPass input scale %v repeated; each invocation takes different inputs", s)
		}
		seen[s] = true
	}
}

func TestSpmvThroughputHighToLow(t *testing.T) {
	// Fig. 3: Spmv transitions from high- to low-throughput phases.
	spmv, _ := ByName("Spmv")
	c := hw.MaxPerf()
	first := spmv.Kernels[0].Throughput(c)
	last := spmv.Kernels[spmv.Len()-1].Throughput(c)
	if first < 2*last {
		t.Errorf("Spmv first kernel throughput %.3g not >> last %.3g", first, last)
	}
}

func TestKmeansThroughputLowToHigh(t *testing.T) {
	// Fig. 3: kmeans transitions from low- to high-throughput.
	km, _ := ByName("kmeans")
	c := hw.MaxPerf()
	first := km.Kernels[0].Throughput(c)
	rest := km.Kernels[1].Throughput(c)
	if rest < 3*first {
		t.Errorf("kmeans iterated kernel throughput %.3g not >> swap %.3g", rest, first)
	}
}

func TestCategoryDistribution(t *testing.T) {
	// §V-A: 75% of the studied benchmarks are irregular; the sample keeps
	// regular apps in the minority.
	irregular := 0
	for _, a := range Benchmarks() {
		if a.Category != Regular {
			irregular++
		}
	}
	if irregular != 12 {
		t.Errorf("irregular benchmarks = %d, want 12 of 15", irregular)
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("srad")
	if err != nil || a.Name != "srad" {
		t.Errorf("ByName(srad) = %v, %v", a.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestTotalInsts(t *testing.T) {
	a, _ := ByName("NBody")
	per := a.Kernels[0].Insts()
	if got, want := a.TotalInsts(), per*10; got != want {
		t.Errorf("TotalInsts = %v, want %v", got, want)
	}
}

func TestValidateCatchesEmpty(t *testing.T) {
	bad := App{Name: "x"}
	if err := bad.Validate(); err == nil {
		t.Error("empty app validated")
	}
	if err := (&App{}).Validate(); err == nil {
		t.Error("nameless app validated")
	}
}

func TestXSBenchHasLongKernels(t *testing.T) {
	// Fig. 15: XSBench (and NBody, lbm, EigenValue) have long kernels that
	// allow the full MPC horizon; the input-varying apps have short ones.
	c := hw.FailSafe()
	long, _ := ByName("XSBench")
	short, _ := ByName("hybridsort")
	lmin := long.Kernels[0].TimeMS(c)
	for _, k := range long.Kernels {
		if tm := k.TimeMS(c); tm < lmin {
			lmin = tm
		}
	}
	smax := 0.0
	sum := 0.0
	for _, k := range short.Kernels {
		tm := k.TimeMS(c)
		sum += tm
		if tm > smax {
			smax = tm
		}
	}
	savg := sum / float64(short.Len())
	if lmin < 4*savg {
		t.Errorf("XSBench min kernel %.2fms not >> hybridsort avg %.2fms", lmin, savg)
	}
}

func TestInputVaryingAppsVary(t *testing.T) {
	for _, name := range []string{"swat", "color", "pb-bfs", "mis", "srad", "lulesh", "lud"} {
		a, _ := ByName(name)
		c := hw.FailSafe()
		seen := map[float64]bool{}
		for _, k := range a.Kernels {
			seen[k.TimeMS(c)] = true
		}
		if len(seen) < 4 {
			t.Errorf("%s has only %d distinct kernel times; want input variation", name, len(seen))
		}
	}
}

func TestRandomApp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := RandomApp("fuzz", rng, 5, 40)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 40 {
		t.Fatalf("RandomApp len = %d, want 40", a.Len())
	}
	distinct := map[string]bool{}
	for _, k := range a.Kernels {
		distinct[k.Name()] = true
	}
	if len(distinct) < 2 {
		t.Error("RandomApp drew from a single kernel")
	}
}

func TestRandomAppPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomApp(0,0) did not panic")
		}
	}()
	RandomApp("x", rand.New(rand.NewSource(1)), 0, 0)
}

func TestCategoryString(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Errorf("category %d has empty string", c)
		}
	}
	if Category(9).String() == "" {
		t.Error("invalid category empty string")
	}
}

func TestAppsHaveDiverseEnergyOptima(t *testing.T) {
	// Within an irregular app, different kernels should want different
	// configurations — otherwise inter-kernel optimization is pointless.
	space := hw.DefaultSpace()
	for _, name := range []string{"Spmv", "hybridsort", "lulesh"} {
		a, _ := ByName(name)
		seen := map[hw.Config]bool{}
		uniq := map[string]kernel.Kernel{}
		for _, k := range a.Kernels {
			uniq[k.Name()] = k
		}
		for _, k := range uniq {
			best, _ := k.OptimalConfig(space, 0)
			seen[best] = true
		}
		if len(seen) < 2 {
			t.Errorf("%s kernels share one energy-optimal config; want diversity", name)
		}
	}
}
