// Package workload defines GPGPU applications as sequences of kernel
// invocations — the view the paper's runtime has of a program (Fig. 1).
// It provides the 15 evaluation benchmarks of Table IV with their exact
// kernel-execution patterns (Table II), plus a generator for random
// irregular applications.
//
// Kernel time/power behaviour comes from the ground-truth model in
// internal/kernel; this package only composes kernels into execution
// orders with the right throughput phase structure (Fig. 3): Spmv's
// high-to-low transitions, kmeans' low-to-high transition, hybridsort's
// per-input variation of the same kernel, and so on.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/kernel"
)

// Category classifies a benchmark's kernel execution pattern (Table IV).
type Category int8

// Benchmark categories from Table IV.
const (
	Regular               Category = iota // single kernel iterating
	IrregularRepeating                    // repeating multi-kernel pattern
	IrregularNonRepeating                 // non-repeating multi-kernel pattern
	IrregularInputVarying                 // same kernel varying with input
	NumCategories         = 4
)

func (c Category) String() string {
	switch c {
	case Regular:
		return "regular"
	case IrregularRepeating:
		return "irregular w/ repeating pattern"
	case IrregularNonRepeating:
		return "irregular w/ non-repeating pattern"
	case IrregularInputVarying:
		return "irregular w/ kernels varying with input"
	}
	return fmt.Sprintf("category?(%d)", int8(c))
}

// App is one GPGPU application: an ordered list of kernel invocations.
type App struct {
	Name     string
	Suite    string // originating benchmark suite (Table IV)
	Category Category
	Pattern  string // regular-expression-style execution pattern, e.g. "A10B10C10"
	Kernels  []kernel.Kernel

	// CPUGapsMS optionally gives the CPU phase (host work, Fig. 1)
	// preceding each kernel invocation, in milliseconds. Empty means
	// back-to-back kernels — the worst case the paper evaluates under
	// (§V). When present it must have one entry per invocation; the
	// engine hides optimizer overhead under these phases (§VI-E: "CPU
	// phases with an available CPU ... can hide the MPC overheads").
	CPUGapsMS []float64
}

// CPUGapMS returns the CPU phase before invocation i (0 when no phases
// are modelled).
func (a *App) CPUGapMS(i int) float64 {
	if len(a.CPUGapsMS) == 0 {
		return 0
	}
	return a.CPUGapsMS[i]
}

// WithUniformCPUGaps returns a copy of the app with a constant CPU phase
// before every kernel.
func (a App) WithUniformCPUGaps(gapMS float64) App {
	if gapMS < 0 {
		panic("workload: negative CPU gap")
	}
	gaps := make([]float64, len(a.Kernels))
	for i := range gaps {
		gaps[i] = gapMS
	}
	a.CPUGapsMS = gaps
	return a
}

// Len returns the number of kernel invocations.
func (a *App) Len() int { return len(a.Kernels) }

// TotalInsts returns the total instruction count across all invocations
// (the Itotal of Eq. 1).
func (a *App) TotalInsts() float64 {
	s := 0.0
	for _, k := range a.Kernels {
		s += k.Insts()
	}
	return s
}

// Validate checks that the app is non-empty and every kernel is valid.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: app with empty name")
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("workload: app %s has no kernels", a.Name)
	}
	for i, k := range a.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("workload: app %s invocation %d: %w", a.Name, i, err)
		}
	}
	if len(a.CPUGapsMS) != 0 {
		if len(a.CPUGapsMS) != len(a.Kernels) {
			return fmt.Errorf("workload: app %s has %d CPU gaps for %d kernels", a.Name, len(a.CPUGapsMS), len(a.Kernels))
		}
		for i, g := range a.CPUGapsMS {
			if g < 0 {
				return fmt.Errorf("workload: app %s CPU gap %d negative", a.Name, i)
			}
		}
	}
	return nil
}

// repeat appends n invocations of k.
func repeat(ks []kernel.Kernel, k kernel.Kernel, n int) []kernel.Kernel {
	for i := 0; i < n; i++ {
		ks = append(ks, k)
	}
	return ks
}

// Benchmarks returns the 15 Table IV applications in paper order. The
// construction is deterministic.
func Benchmarks() []App {
	return []App{
		MandelbulbGPU(), NBody(), LBM(),
		EigenValue(), XSBench(),
		Spmv(), Kmeans(),
		Swat(), Color(), PbBFS(), MIS(), Srad(), Lulesh(), LUD(), Hybridsort(),
	}
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (App, error) {
	for _, a := range Benchmarks() {
		if a.Name == name {
			return a, nil
		}
	}
	names := ""
	for i, a := range Benchmarks() {
		if i > 0 {
			names += ", "
		}
		names += a.Name
	}
	return App{}, fmt.Errorf("workload: unknown benchmark %q (have: %s)", name, names)
}

// --- Regular benchmarks: a single kernel iterating multiple times. ---

// MandelbulbGPU is the Phoronix fractal benchmark: pattern A20, a
// medium-length compute-bound kernel.
func MandelbulbGPU() App {
	k := kernel.NewComputeBound("mandelbulb", 1.6)
	return App{
		Name: "mandelbulbGPU", Suite: "Phoronix", Category: Regular, Pattern: "A20",
		Kernels: repeat(nil, k, 20),
	}
}

// NBody is the AMD APP SDK n-body simulation: pattern A10, long
// compute-bound kernels (full MPC horizon in Fig. 15).
func NBody() App {
	k := kernel.NewComputeBound("nbody", 14)
	return App{
		Name: "NBody", Suite: "AMD APP SDK", Category: Regular, Pattern: "A10",
		Kernels: repeat(nil, k, 10),
	}
}

// LBM is the Parboil lattice-Boltzmann benchmark: pattern A10, long
// kernels with peak behaviour — the source of the paper's largest GPU
// energy saving (51%, Fig. 10).
func LBM() App {
	k := kernel.NewPeak("lbm", 11)
	return App{
		Name: "lbm", Suite: "Parboil", Category: Regular, Pattern: "A10",
		Kernels: repeat(nil, k, 10),
	}
}

// --- Irregular with repeating pattern. ---

// EigenValue alternates two long kernels: pattern (AB)5.
func EigenValue() App {
	a := kernel.NewComputeBound("calcEigen", 9)
	b := kernel.NewMemoryBound("recalcBounds", 7)
	var ks []kernel.Kernel
	for i := 0; i < 5; i++ {
		ks = append(ks, a, b)
	}
	return App{
		Name: "EigenValue", Suite: "AMD APP SDK", Category: IrregularRepeating, Pattern: "(AB)5",
		Kernels: ks,
	}
}

// XSBench cycles three long kernels of different classes: pattern (ABC)2.
func XSBench() App {
	a := kernel.NewMemoryBound("lookup", 7)
	b := kernel.NewBalanced("unionize", 12)
	c := kernel.NewComputeBound("xsinterp", 13)
	var ks []kernel.Kernel
	for i := 0; i < 2; i++ {
		ks = append(ks, a, b, c)
	}
	return App{
		Name: "XSBench", Suite: "Exascale", Category: IrregularRepeating, Pattern: "(ABC)2",
		Kernels: ks,
	}
}

// --- Irregular with non-repeating pattern. ---

// Spmv runs three sparse matrix-vector algorithms ten times each:
// pattern A10B10C10, transitioning from high- to low-throughput phases
// (Fig. 3) — the shape that makes history-based schemes over-save early
// and fail to catch up.
func Spmv() App {
	a := kernel.NewComputeBound("spmv_csr_scalar", 0.8)
	b := kernel.NewBalanced("spmv_csr_vector", 0.7)
	c := kernel.NewMemoryBound("spmv_ellpackr", 0.8)
	ks := repeat(nil, a, 10)
	ks = repeat(ks, b, 10)
	ks = repeat(ks, c, 10)
	return App{
		Name: "Spmv", Suite: "SHOC", Category: IrregularNonRepeating, Pattern: "A10B10C10",
		Kernels: ks,
	}
}

// Kmeans runs the low-throughput swap kernel once, then iterates the
// high-throughput kmeans kernel 20 times: pattern AB20, the low-to-high
// transition of Fig. 3 that makes history-based schemes under-save.
func Kmeans() App {
	swap := kernel.NewUnscalable("kmeans_swap", 1.9)
	km := kernel.NewComputeBound("kmeansPoint", 1.1)
	ks := []kernel.Kernel{swap}
	ks = repeat(ks, km, 20)
	return App{
		Name: "kmeans", Suite: "Rodinia", Category: IrregularNonRepeating, Pattern: "AB20",
		Kernels: ks,
	}
}

// --- Irregular with kernels varying with input. ---

// inputVarying builds an app of n invocations of base kernels whose input
// scale varies per invocation with the given scales cycle.
func inputVarying(name, suite string, base []kernel.Kernel, scales []float64, n int) App {
	var ks []kernel.Kernel
	for i := 0; i < n; i++ {
		k := base[i%len(base)]
		ks = append(ks, k.WithInput(scales[i%len(scales)]))
	}
	return App{
		Name: name, Suite: suite, Category: IrregularInputVarying,
		Pattern: "input-varying", Kernels: ks,
	}
}

// Swat is the OpenDwarfs Smith-Waterman alignment: one kernel whose work
// grows and shrinks with the anti-diagonal length.
func Swat() App {
	return inputVarying("swat", "OpenDwarfs",
		[]kernel.Kernel{kernel.NewBalanced("swat_kernel", 2.2)},
		[]float64{0.4, 0.9, 1.6, 2.3, 1.5, 0.8, 0.5}, 14)
}

// Color is the Pannotia graph-coloring benchmark: iterations shrink as
// the graph is colored.
func Color() App {
	return inputVarying("color", "Pannotia",
		[]kernel.Kernel{kernel.NewUnscalable("color_kernel", 0.8)},
		[]float64{3.0, 2.2, 1.6, 1.1, 0.8, 0.55, 0.4, 0.3}, 16)
}

// PbBFS is the Parboil breadth-first search: frontier size ramps up then
// down across levels, with low-throughput small frontiers first.
func PbBFS() App {
	return inputVarying("pb-bfs", "Parboil",
		[]kernel.Kernel{kernel.NewUnscalable("bfs_frontier", 0.5)},
		[]float64{0.3, 0.8, 2.5, 6.0, 9.0, 6.5, 2.0, 0.6}, 16)
}

// MIS is the Pannotia maximal-independent-set benchmark.
func MIS() App {
	return inputVarying("mis", "Pannotia",
		[]kernel.Kernel{
			kernel.NewMemoryBound("mis_select", 0.55),
			kernel.NewUnscalable("mis_compact", 0.6),
		},
		[]float64{2.5, 2.5, 1.7, 1.7, 1.1, 1.1, 0.7, 0.7, 0.45, 0.45}, 14)
}

// Srad is the Rodinia speckle-reducing anisotropic diffusion benchmark:
// two alternating kernels over a shrinking region — the paper's
// worst-case misprediction victim (§VI-A).
func Srad() App {
	return inputVarying("srad", "Rodinia",
		[]kernel.Kernel{
			kernel.NewBalanced("srad_prep", 1.4),
			kernel.NewMemoryBound("srad_diffuse", 1.2),
		},
		[]float64{1.8, 1.8, 1.3, 1.3, 1.0, 1.0, 0.6, 0.6, 0.25, 0.25}, 16)
}

// Lulesh is the Exascale shock-hydrodynamics proxy app: many kernels of
// mixed classes with input-dependent work.
func Lulesh() App {
	return inputVarying("lulesh", "Exascale",
		[]kernel.Kernel{
			kernel.NewComputeBound("calcForce", 1.1),
			kernel.NewMemoryBound("integrateStress", 0.9),
			kernel.NewBalanced("calcConstraints", 0.8),
		},
		[]float64{1.6, 1.0, 0.7, 1.3, 0.9, 0.5}, 15)
}

// LUD is the Rodinia LU decomposition: per-iteration work shrinks as the
// factorization proceeds — a high-to-low throughput transition like Spmv.
func LUD() App {
	return inputVarying("lud", "Rodinia",
		[]kernel.Kernel{kernel.NewComputeBound("lud_internal", 1.0)},
		[]float64{3.2, 2.4, 1.8, 1.3, 0.9, 0.6, 0.4, 0.25}, 16)
}

// Hybridsort is the Rodinia hybrid sort: pattern ABCDEF1F2...F9G, where
// the mergeSortPass kernel F iterates nine times with different input
// arguments (Table II).
func Hybridsort() App {
	ks := []kernel.Kernel{
		kernel.NewMemoryBound("histogram", 0.7),
		kernel.NewUnscalable("bucketcount", 0.5),
		kernel.NewBalanced("bucketprefix", 0.6),
		kernel.NewMemoryBound("bucketsort", 0.9),
		kernel.NewComputeBound("mergeSortFirst", 0.8),
	}
	f := kernel.NewBalanced("mergeSortPass", 0.75)
	for i := 1; i <= 9; i++ {
		// Merge passes double their run length each pass: work grows,
		// and each invocation has different input arguments.
		ks = append(ks, f.WithInput(0.45*math.Pow(1.35, float64(i-1))))
	}
	ks = append(ks, kernel.NewMemoryBound("mergepack", 0.7))
	return App{
		Name: "hybridsort", Suite: "Rodinia", Category: IrregularInputVarying,
		Pattern: "ABCDEF1F2F3F4F5F6F7F8F9G", Kernels: ks,
	}
}

// RandomApp generates a random irregular application of n invocations
// drawn from a pool of poolSize random kernels with random input scales —
// the fuzzing surface for policy tests.
func RandomApp(name string, rng *rand.Rand, poolSize, n int) App {
	if poolSize <= 0 || n <= 0 {
		panic("workload: RandomApp needs positive pool and length")
	}
	pool := make([]kernel.Kernel, poolSize)
	for i := range pool {
		pool[i] = kernel.Random(fmt.Sprintf("%s_k%d", name, i), rng)
	}
	ks := make([]kernel.Kernel, n)
	for i := range ks {
		k := pool[rng.Intn(poolSize)]
		if rng.Float64() < 0.3 {
			k = k.WithInput(0.3 + 2.2*rng.Float64())
		}
		ks[i] = k
	}
	return App{
		Name: name, Suite: "generated", Category: IrregularInputVarying,
		Pattern: "random", Kernels: ks,
	}
}
