package learn

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
)

// installRecorder captures promotions the way serve.Server.Install
// would publish them.
type installRecorder struct {
	models []predict.Model
	tags   []string
	gen    uint64
}

func (ir *installRecorder) install(m predict.Model, tag string) uint64 {
	ir.models = append(ir.models, m)
	ir.tags = append(ir.tags, tag)
	ir.gen++
	return ir.gen + 1 // serve starts at generation 1; promotions begin at 2
}

func newTestTrainer(ir *installRecorder) *Trainer {
	fcfg := predict.OnlineForestConfig(17)
	fcfg.NumTrees = 12
	return New(Config{
		Seed:         17,
		Forest:       fcfg,
		ReservoirCap: 512,
		MinSamples:   60,
		HoldoutFrac:  0.25,
		Gate:         Gate{MaxTimeMAPE: 0.5, MaxPowerMAPE: 0.5},
		Workers:      2,
		Install:      ir.install,
	})
}

func TestTrainOnceSkipsBelowMinSamples(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	for _, s := range streamSamples(30, 1) {
		tr.Add(s)
	}
	promoted, err := tr.TrainOnce()
	if promoted || !errors.Is(err, ErrNotEnoughSamples) {
		t.Fatalf("TrainOnce on a thin reservoir: promoted=%v err=%v, want skip", promoted, err)
	}
	st := tr.Status()
	if st.Rounds != 0 || st.LastOutcome != "skipped" {
		t.Fatalf("skip must not consume a round: %+v", st)
	}
	if len(ir.models) != 0 {
		t.Fatal("skip installed a model")
	}
}

func TestTrainOncePromotesAndRecordsBaseline(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	var baseGen uint64
	var baseTime, basePower float64
	tr.cfg.Baseline = func(gen uint64, tm, pm float64) { baseGen, baseTime, basePower = gen, tm, pm }
	reg := metrics.New()
	tr.Instrument(reg)
	for _, s := range streamSamples(200, 2) {
		tr.Add(s)
	}
	promoted, err := tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatalf("oracle-sampled candidate failed the gate: %+v", tr.Status())
	}
	if len(ir.models) != 1 || ir.tags[0] != "learn-r1" {
		t.Fatalf("install recorded %v tags %v, want one learn-r1", len(ir.models), ir.tags)
	}
	st := tr.Status()
	if st.Rounds != 1 || st.Promoted != 1 || st.Rejected != 0 || st.LastOutcome != "promoted" {
		t.Fatalf("status after promotion: %+v", st)
	}
	if st.LastGen != 2 || baseGen != 2 {
		t.Fatalf("promoted generation %d, baseline generation %d, want 2", st.LastGen, baseGen)
	}
	if baseTime != st.LastTimeMAPE || basePower != st.LastPowerMAPE {
		t.Fatal("baseline hook did not receive the holdout MAPEs")
	}
	if st.LastTimeMAPE <= 0 || st.LastTimeMAPE > 0.5 || st.LastPowerMAPE <= 0 || st.LastPowerMAPE > 0.5 {
		t.Fatalf("implausible holdout MAPEs: %+v", st)
	}
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `mpcdvfs_learn_rounds_total{outcome="promoted"} 1`) {
		t.Fatal("promotion not visible in metrics")
	}
}

func TestTrainOnceRejectsPoisonedCandidate(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	// The poisoned builder trains on measurements inflated 100×: a
	// plausible-looking forest whose holdout error is catastrophic.
	tr.cfg.BuildCandidate = func(train []predict.Sample, fcfg rf.Config, workers int) (*predict.RandomForest, error) {
		bad := make([]predict.Sample, len(train))
		copy(bad, train)
		for i := range bad {
			bad[i].TimeMS *= 100
		}
		return predict.TrainOnSamples(bad, fcfg, workers)
	}
	for _, s := range streamSamples(200, 3) {
		tr.Add(s)
	}
	promoted, err := tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if promoted || len(ir.models) != 0 {
		t.Fatalf("poisoned candidate was promoted (holdout time MAPE %.3f)", tr.Status().LastTimeMAPE)
	}
	st := tr.Status()
	if st.Rejected != 1 || st.LastOutcome != "rejected" {
		t.Fatalf("status after rejection: %+v", st)
	}
	if st.LastTimeMAPE < 1 {
		t.Fatalf("poisoned candidate's holdout time MAPE is %.3f, expected off the charts", st.LastTimeMAPE)
	}

	// The next round, with the default builder restored, promotes.
	tr.cfg.BuildCandidate = predict.TrainOnSamples
	promoted, err = tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !promoted || len(ir.models) != 1 {
		t.Fatalf("recovery round did not promote: %+v", tr.Status())
	}
	if tr.Status().Rejected != 1 || tr.Status().Promoted != 1 {
		t.Fatalf("round accounting wrong: %+v", tr.Status())
	}
}

// TestTrainOnceDeterministic: two trainers with the same seed and Add
// sequence promote models with bit-identical predictions.
func TestTrainOnceDeterministic(t *testing.T) {
	stream := streamSamples(150, 5)
	irA, irB := &installRecorder{}, &installRecorder{}
	a, b := newTestTrainer(irA), newTestTrainer(irB)
	for _, s := range stream {
		a.Add(s)
		b.Add(s)
	}
	pa, err := a.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("gate decisions diverged: %v vs %v", pa, pb)
	}
	if !pa {
		t.Skipf("round rejected (holdout MAPE %.3f) — determinism of promotion untestable here", a.Status().LastTimeMAPE)
	}
	ma, mb := irA.models[0], irB.models[0]
	for _, s := range stream[:40] {
		ea := ma.PredictKernel(s.Counters, s.Config)
		eb := mb.PredictKernel(s.Counters, s.Config)
		if math.Float64bits(ea.TimeMS) != math.Float64bits(eb.TimeMS) ||
			math.Float64bits(ea.GPUPowerW) != math.Float64bits(eb.GPUPowerW) {
			t.Fatalf("promoted models diverge: %+v vs %+v", ea, eb)
		}
	}
	if a.Status().LastTimeMAPE != b.Status().LastTimeMAPE {
		t.Fatal("holdout MAPEs diverged across identical trainers")
	}
}

// TestTrainOnceAdaptiveExtension: with an unreachable gate, the trainer
// grows the candidate to MaxTrees before giving up — and the round is
// still a clean rejection, not an error.
func TestTrainOnceAdaptiveExtension(t *testing.T) {
	ir := &installRecorder{}
	fcfg := predict.OnlineForestConfig(23)
	fcfg.NumTrees = 4
	tr := New(Config{
		Seed:        23,
		Forest:      fcfg,
		MinSamples:  60,
		Gate:        Gate{MaxTimeMAPE: 1e-9, MaxPowerMAPE: 1e-9},
		ExtendTrees: 4,
		MaxTrees:    12,
		Workers:     2,
		Install:     ir.install,
	})
	for _, s := range streamSamples(120, 6) {
		tr.Add(s)
	}
	promoted, err := tr.TrainOnce()
	if err != nil {
		t.Fatal(err)
	}
	if promoted {
		t.Fatal("a 1e-9 gate promoted")
	}
	st := tr.Status()
	if st.LastTrees != 12 {
		t.Fatalf("adaptive extension stopped at %d trees, want MaxTrees=12", st.LastTrees)
	}
	if st.LastOutcome != "rejected" {
		t.Fatalf("outcome %q, want rejected", st.LastOutcome)
	}
}

func TestTrainerBuildErrorIsReported(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	tr.cfg.BuildCandidate = func([]predict.Sample, rf.Config, int) (*predict.RandomForest, error) {
		return nil, errors.New("synthetic builder failure")
	}
	for _, s := range streamSamples(100, 8) {
		tr.Add(s)
	}
	promoted, err := tr.TrainOnce()
	if promoted || err == nil {
		t.Fatalf("builder failure: promoted=%v err=%v", promoted, err)
	}
	st := tr.Status()
	if st.LastOutcome != "error" || !strings.Contains(st.LastError, "synthetic builder failure") {
		t.Fatalf("status after builder failure: %+v", st)
	}
}

func TestTrainerDropsInvalidSamples(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	good := streamSamples(10, 9)
	tr.Add(good[0])
	bad := good[1]
	bad.TimeMS = math.NaN()
	tr.Add(bad)
	bad = good[2]
	bad.GPUPowerW = -3
	tr.Add(bad)
	st := tr.Status()
	if st.Samples != 1 || st.DroppedInvalid != 2 {
		t.Fatalf("samples=%d dropped=%d, want 1/2", st.Samples, st.DroppedInvalid)
	}
}

// TestStartStopAndDriftWake: the loop with an effectively-infinite
// period trains promptly when the scoreboard signals drift, and Stop
// joins cleanly. Runs in the CI race job.
func TestStartStopAndDriftWake(t *testing.T) {
	ir := &installRecorder{}
	tr := newTestTrainer(ir)
	for _, s := range streamSamples(150, 10) {
		tr.Add(s)
	}
	tr.Start(time.Hour)
	defer tr.Stop()
	if !tr.Status().Running {
		t.Fatal("Status.Running false after Start")
	}
	tr.NotifyDrift(1, "spmv")
	deadline := time.Now().Add(10 * time.Second)
	for tr.Status().Rounds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drift notification did not wake the training loop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := tr.Status()
	if st.DriftSignals != 1 {
		t.Fatalf("DriftSignals = %d, want 1", st.DriftSignals)
	}
	if st.DriftPending {
		t.Fatal("DriftPending still set after a round trained")
	}
	tr.Stop()
	if tr.Status().Running {
		t.Fatal("Status.Running true after Stop")
	}
	tr.Stop() // idempotent
}
