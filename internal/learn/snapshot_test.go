package learn

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	samples := streamSamples(40, 9)
	// Include awkward-but-JSON-representable values.
	samples[0].TimeMS = 5e-324
	samples[1].GPUPowerW = 1e308
	samples[2].Counters[3] = -0.0
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatal("snapshot round trip changed the samples")
	}
}

func TestSnapshotEmptyAndBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot wrote %d bytes", buf.Len())
	}
	got, err := ReadSnapshot(strings.NewReader("\n\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("blank-line snapshot decoded %d samples", len(got))
	}
}

func TestSnapshotRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"{",
		"{\"time_ms\": \"fast\"}",
		"{\"time_ms\": 1e999}",
		"{\"config\": {\"CPU\": 300}}",
		"[1,2,3]\ntrailing",
	} {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadSnapshot accepted malformed input %q", in)
		}
	}
}

// FuzzReservoirSnapshotRoundTrip pins the snapshot codec contract: any
// byte stream ReadSnapshot accepts must survive re-encode → re-decode
// exactly (JSON cannot carry NaN/±Inf, and Go's float64 encoding is
// shortest-round-trip, so acceptance implies stability).
func FuzzReservoirSnapshotRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, streamSamples(3, 21)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte("{\"time_ms\":1.5,\"gpu_power_w\":-0}\n\n{\"counters\":[5e-324,1e308,-0,0,1,2,3,4]}\n"))
	f.Add([]byte("{\"config\":{\"CPU\":3,\"NB\":1,\"GPU\":4,\"CUs\":8}}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, first); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		second, err := ReadSnapshot(&out)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if len(first) == 0 && len(second) == 0 {
			return
		}
		if !reflect.DeepEqual(second, first) {
			t.Fatalf("round trip diverged:\nfirst:  %#v\nsecond: %#v", first, second)
		}
	})
}
