// Package learn closes the adaptive-MPC learning loop: it accumulates
// served ground truth — the (counters, config, measured time, measured
// power) tuples that /v1/observe reports — into a bounded deterministic
// reservoir, retrains candidate forests when the drift scoreboard fires
// or a period elapses, validates each candidate against a held-out
// split, and promotes only gated candidates through the serving stack's
// atomic snapshot mechanism. Sessions pinned to older generations are
// never touched: promotion is publication of a new generation, exactly
// like an operator /reload.
//
// # Determinism rules
//
// The package has no hidden randomness. The reservoir is Algorithm R
// driven by a private rand.Rand seeded at construction: its contents
// are a pure function of the seed and the Add call sequence. The
// holdout split of round r is rng.Perm seeded with Seed+r. Candidate
// forests inherit rf's documented seeding scheme (round-derived seed,
// power forest at +1), so a round's candidate is reproducible from
// (seed, round, reservoir contents) alone. What the package does NOT
// promise is cross-run reproducibility of a live deployment — the Add
// sequence there is real traffic — but every test and every replay of
// a recorded reservoir snapshot is bit-stable.
package learn

import (
	"math/rand"

	"mpcdvfs/internal/predict"
)

// Reservoir is a bounded uniform sample of an unbounded observation
// stream (Vitter's Algorithm R): after N observations, each of the N
// has probability cap/N of being present. Uniformity over the whole
// stream is what the trainer wants — a plain ring buffer would forget
// everything but the most recent window and re-learn only the tail of
// the workload.
//
// Not safe for concurrent use; the Trainer serializes access.
type Reservoir struct {
	rng     *rand.Rand
	samples []predict.Sample
	max     int
	seen    uint64
}

// NewReservoir returns an empty reservoir holding at most capacity
// samples, with replacement decisions drawn from a private generator
// seeded with seed. Panics if capacity < 1 — a learner with no memory
// is a configuration bug, not a runtime condition.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		panic("learn: reservoir capacity must be at least 1")
	}
	return &Reservoir{
		rng:     rand.New(rand.NewSource(seed)),
		samples: make([]predict.Sample, 0, capacity),
		max:     capacity,
	}
}

// Add offers one observation. It returns true if the sample is now in
// the reservoir (appended while filling, or replacing a prior sample
// once full), false if the stream position was passed over. Steady
// state is allocation-free: once full, Add only overwrites in place.
//
//mpclint:hotpath steady state pinned at 0 allocs/op by TestReservoirAddZeroAlloc
func (r *Reservoir) Add(s predict.Sample) bool {
	r.seen++
	if len(r.samples) < r.max {
		//mpclint:ignore hotpath-alloc fill-phase append stays within the capacity NewReservoir preallocated; the pinned steady state (full reservoir) overwrites in place
		r.samples = append(r.samples, s)
		return true
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.max) {
		r.samples[j] = s
		return true
	}
	return false
}

// Len returns the number of samples currently held.
func (r *Reservoir) Len() int { return len(r.samples) }

// Seen returns the total number of observations offered via Add.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Snapshot returns a copy of the current contents, in reservoir slot
// order. The copy is independent: later Adds do not disturb it, so a
// training round can work from a stable sample set while observation
// continues.
func (r *Reservoir) Snapshot() []predict.Sample {
	out := make([]predict.Sample, len(r.samples))
	copy(out, r.samples)
	return out
}
