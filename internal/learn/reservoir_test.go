package learn

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// streamSamples synthesizes a served observation stream: random kernels
// measured by the oracle at random configurations.
func streamSamples(n int, seed int64) []predict.Sample {
	o := predict.NewOracle()
	rng := rand.New(rand.NewSource(seed))
	space := hw.DefaultSpace()
	out := make([]predict.Sample, 0, n)
	for i := 0; i < n; i++ {
		k := kernel.Random(fmt.Sprintf("st-%d", i/4), rng)
		o.Register(k)
		cs := k.Counters()
		c := space.At(rng.Intn(space.Size()))
		e := o.PredictKernel(cs, c)
		out = append(out, predict.Sample{Counters: cs, Config: c, TimeMS: e.TimeMS, GPUPowerW: e.GPUPowerW})
	}
	return out
}

// TestReservoirDeterministic: contents are a pure function of (seed,
// Add sequence) — two reservoirs fed identically are identical, and a
// different seed diverges once replacement starts.
func TestReservoirDeterministic(t *testing.T) {
	stream := streamSamples(500, 1)
	a := NewReservoir(64, 42)
	b := NewReservoir(64, 42)
	c := NewReservoir(64, 43)
	for _, s := range stream {
		a.Add(s)
		b.Add(s)
		c.Add(s)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("same seed, same stream: reservoirs differ")
	}
	if reflect.DeepEqual(a.Snapshot(), c.Snapshot()) {
		t.Fatal("different seeds produced identical reservoirs over 500 adds — replacement is not seed-driven")
	}
}

// TestReservoirBounds: filling is verbatim, capacity is a hard bound,
// Seen counts the whole stream, and Snapshot is an independent copy.
func TestReservoirBounds(t *testing.T) {
	stream := streamSamples(200, 2)
	r := NewReservoir(50, 7)
	for i, s := range stream[:50] {
		if !r.Add(s) {
			t.Fatalf("add %d rejected while filling", i)
		}
	}
	if !reflect.DeepEqual(r.Snapshot(), stream[:50]) {
		t.Fatal("filling phase must keep the stream verbatim, in order")
	}
	for _, s := range stream[50:] {
		r.Add(s)
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d after overflow, want 50", r.Len())
	}
	if r.Seen() != 200 {
		t.Fatalf("Seen = %d, want 200", r.Seen())
	}
	snap := r.Snapshot()
	r.Add(stream[0])
	r.Add(stream[1])
	if len(snap) != 50 {
		t.Fatal("snapshot length changed under later Adds")
	}
}

// TestReservoirReplacementCoverage: over a long stream, late samples do
// make it in (Algorithm R keeps admitting with probability cap/seen).
func TestReservoirReplacementCoverage(t *testing.T) {
	stream := streamSamples(64, 3)
	r := NewReservoir(8, 11)
	admittedLate := 0
	for i := 0; i < 2000; i++ {
		if r.Add(stream[i%len(stream)]) && i >= 1000 {
			admittedLate++
		}
	}
	if admittedLate == 0 {
		t.Fatal("no sample from the second half of a 2000-add stream was admitted — replacement is broken")
	}
}

// TestReservoirAddZeroAlloc pins the steady-state tap cost: once full,
// Add never allocates (it runs on every /v1/observe).
func TestReservoirAddZeroAlloc(t *testing.T) {
	stream := streamSamples(32, 4)
	r := NewReservoir(16, 5)
	for _, s := range stream {
		r.Add(s)
	}
	i := 0
	if allocs := testing.AllocsPerRun(500, func() {
		r.Add(stream[i%len(stream)])
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state Reservoir.Add allocates %v times per call, want 0", allocs)
	}
}

func TestReservoirCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReservoir(0, …) did not panic")
		}
	}()
	NewReservoir(0, 1)
}
