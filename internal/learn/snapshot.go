package learn

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"mpcdvfs/internal/predict"
)

// WriteSnapshot encodes samples as JSON Lines — one compact JSON object
// per sample, newline-terminated. JSONL keeps reservoir dumps greppable
// and appendable, and each line is independently decodable, so a
// truncated dump loses only its final line.
func WriteSnapshot(w io.Writer, samples []predict.Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return fmt.Errorf("learn: snapshot sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot decodes a JSONL reservoir snapshot. Blank lines are
// skipped; any malformed line fails the whole read — a snapshot is a
// training input, and silently dropping lines would make the restored
// reservoir differ from the dumped one without anyone noticing.
//
// Round-trip contract (pinned by FuzzReservoirSnapshotRoundTrip): if
// ReadSnapshot accepts a byte stream, then WriteSnapshot of the result
// re-reads to exactly the same samples. JSON cannot carry NaN or ±Inf
// and Go's float64 encoding is shortest-round-trip, so every accepted
// value survives re-encoding bit for bit.
func ReadSnapshot(r io.Reader) ([]predict.Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []predict.Sample
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var s predict.Sample
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("learn: snapshot line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("learn: snapshot read: %w", err)
	}
	return out, nil
}
