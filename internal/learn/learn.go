package learn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
)

// ErrNotEnoughSamples is returned by TrainOnce when the reservoir has
// fewer than Config.MinSamples observations — the round is skipped, not
// failed, and any pending drift signal stays armed for the next tick.
var ErrNotEnoughSamples = errors.New("learn: not enough samples to train")

// Gate is the promotion bar: a candidate is installed only if its
// held-out mean absolute relative errors are at or under both ceilings
// (fractions, not percent).
type Gate struct {
	MaxTimeMAPE  float64
	MaxPowerMAPE float64
}

// Config parameterizes a Trainer. Install and Baseline are the seams to
// the serving stack — serve.New binds them to Server.Install and the
// drift scoreboard's SetBaseline so learn never imports serve.
type Config struct {
	// Seed roots every random decision the trainer makes: reservoir
	// replacement, per-round holdout permutation, per-round forest
	// seeds. Two trainers with the same Seed fed the same Add sequence
	// make identical decisions.
	Seed int64
	// Forest shapes candidate forests. A zero value (NumTrees == 0)
	// means predict.OnlineForestConfig(Seed).
	Forest rf.Config
	// ReservoirCap bounds trainer memory. Default 4096 samples.
	ReservoirCap int
	// MinSamples is the floor below which TrainOnce skips. Default 64.
	MinSamples int
	// HoldoutFrac is the fraction of the reservoir snapshot withheld
	// from training and used to gate promotion. Default 0.25; clamped
	// so both splits are non-empty.
	HoldoutFrac float64
	// Gate is the promotion bar. Defaults to 0.25/0.25 — looser than
	// the offline model's headline MAPE because online rounds train on
	// a few hundred samples, tight enough to reject a broken candidate.
	Gate Gate
	// ExtendTrees, when positive, lets a round that fails the gate grow
	// its candidate incrementally (rf.Extend on the same training
	// split) by this many trees at a time, re-validating after each
	// growth, until the gate passes or MaxTrees is reached.
	ExtendTrees int
	// MaxTrees caps adaptive extension. Default 3× the configured tree
	// count.
	MaxTrees int
	// BaselineSlack multiplies the holdout MAPEs reported through
	// Baseline after a promotion. Live traffic concentrates on
	// optimizer-selected configurations — exactly where the model's
	// optimistic errors live (the winner's curse of optimizing over
	// one's own predictions) — so demonstrated holdout error
	// systematically understates live error. Default 1 (report holdout
	// as-is); deployments feeding a drift scoreboard typically want
	// 2–3 so a freshly promoted model is not instantly re-flagged.
	BaselineSlack float64
	// Workers bounds training parallelism (0 = rf's default).
	Workers int

	// Install publishes a gated candidate as the next model generation
	// and returns that generation. Required for promotion; a nil
	// Install turns the trainer into a dry-run evaluator.
	Install func(m predict.Model, tag string) uint64
	// Baseline, if set, records the promoted generation's holdout MAPE
	// as its drift baseline, so the scoreboard judges the new model
	// against what it actually demonstrated, not an inherited number.
	Baseline func(gen uint64, timeMAPE, powerMAPE float64)
	// BuildCandidate builds a round's candidate from the training
	// split. Nil means predict.TrainOnSamples. Tests substitute
	// deliberately-poisoned builders to prove the gate rejects them.
	BuildCandidate func(train []predict.Sample, fcfg rf.Config, workers int) (*predict.RandomForest, error)
}

// Status is the trainer's observable state, served by /debug/learn.
type Status struct {
	Samples        int     `json:"samples"`
	Seen           uint64  `json:"seen"`
	DroppedInvalid uint64  `json:"dropped_invalid"`
	Rounds         int     `json:"rounds"`
	Promoted       int     `json:"promoted"`
	Rejected       int     `json:"rejected"`
	DriftSignals   uint64  `json:"drift_signals"`
	DriftPending   bool    `json:"drift_pending"`
	LastGen        uint64  `json:"last_gen"`
	LastTimeMAPE   float64 `json:"last_time_mape"`
	LastPowerMAPE  float64 `json:"last_power_mape"`
	LastTrees      int     `json:"last_trees"`
	LastOutcome    string  `json:"last_outcome"`
	LastError      string  `json:"last_error,omitempty"`
	Running        bool    `json:"running"`
}

type learnMetrics struct {
	observations *metrics.CounterVec
	size         *metrics.Gauge
	rounds       *metrics.CounterVec
	mape         *metrics.GaugeVec
	trees        *metrics.Gauge
	drift        *metrics.Counter
	duration     *metrics.Histogram
}

// Trainer is the continuous-training component. Create with New, feed
// it observations via Add (the serve layer taps every /v1/observe),
// nudge it with NotifyDrift (wired to the scoreboard's rising edge),
// and either drive rounds explicitly with TrainOnce or let Start run
// them on a period.
type Trainer struct {
	cfg Config

	mu  sync.Mutex // guards res and st
	res *Reservoir
	st  Status

	trainMu sync.Mutex // serializes training rounds

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	m atomic.Pointer[learnMetrics]
}

// New returns a Trainer with cfg's zero fields defaulted.
func New(cfg Config) *Trainer {
	if cfg.ReservoirCap <= 0 {
		cfg.ReservoirCap = 4096
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 64
	}
	if cfg.HoldoutFrac <= 0 || cfg.HoldoutFrac >= 1 {
		cfg.HoldoutFrac = 0.25
	}
	if cfg.Gate.MaxTimeMAPE <= 0 {
		cfg.Gate.MaxTimeMAPE = 0.25
	}
	if cfg.Gate.MaxPowerMAPE <= 0 {
		cfg.Gate.MaxPowerMAPE = 0.25
	}
	if cfg.Forest.NumTrees == 0 {
		cfg.Forest = predict.OnlineForestConfig(cfg.Seed)
	}
	if cfg.MaxTrees <= 0 {
		cfg.MaxTrees = 3 * cfg.Forest.NumTrees
	}
	if cfg.BaselineSlack < 1 {
		cfg.BaselineSlack = 1
	}
	if cfg.BuildCandidate == nil {
		cfg.BuildCandidate = predict.TrainOnSamples
	}
	return &Trainer{
		cfg:  cfg,
		res:  NewReservoir(cfg.ReservoirCap, cfg.Seed),
		wake: make(chan struct{}, 1),
	}
}

// Bind attaches the promotion seams after construction — serve.New
// calls it so a Trainer can be built before the Server it promotes
// into exists. Nil leaves the corresponding seam unchanged. Call
// before Start or the first TrainOnce.
func (t *Trainer) Bind(install func(m predict.Model, tag string) uint64, baseline func(gen uint64, timeMAPE, powerMAPE float64)) {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	if install != nil {
		t.cfg.Install = install
	}
	if baseline != nil {
		t.cfg.Baseline = baseline
	}
}

// Instrument mirrors trainer state into reg. Call before traffic.
func (t *Trainer) Instrument(reg *metrics.Registry) {
	m := &learnMetrics{
		observations: reg.Counter("mpcdvfs_learn_observations_total",
			"Observe tuples offered to the reservoir, by outcome (stored, passed_over, dropped_invalid).", "outcome"),
		size: reg.Gauge("mpcdvfs_learn_reservoir_size",
			"Samples currently held by the training reservoir.").With(),
		rounds: reg.Counter("mpcdvfs_learn_rounds_total",
			"Training rounds by outcome (promoted, rejected, skipped, error).", "outcome"),
		mape: reg.Gauge("mpcdvfs_learn_holdout_mape",
			"Held-out mean absolute relative error of the last candidate, by target.", "target"),
		trees: reg.Gauge("mpcdvfs_learn_candidate_trees",
			"Tree count of the last candidate forest after any adaptive extension.").With(),
		drift: reg.Counter("mpcdvfs_learn_drift_signals_total",
			"Rising-edge drift notifications received from the scoreboard.").With(),
		duration: reg.Histogram("mpcdvfs_learn_round_duration_ms",
			"Wall time of a training round (split, train, validate, gate), in milliseconds.",
			metrics.ExponentialBuckets(1, 2, 14)).With(),
	}
	t.m.Store(m)
}

// Add offers one served observation to the reservoir. Invalid samples
// (non-positive or non-finite measurements) are counted and dropped —
// they would poison the log-time target. Safe for concurrent use; the
// serve layer calls it from every session's owner goroutine.
func (t *Trainer) Add(s predict.Sample) {
	m := t.m.Load()
	if !s.Valid() {
		t.mu.Lock()
		t.st.DroppedInvalid++
		t.mu.Unlock()
		if m != nil {
			m.observations.With("dropped_invalid").Inc()
		}
		return
	}
	t.mu.Lock()
	stored := t.res.Add(s)
	size := t.res.Len()
	t.mu.Unlock()
	if m != nil {
		if stored {
			m.observations.With("stored").Inc()
		} else {
			m.observations.With("passed_over").Inc()
		}
		m.size.Set(float64(size))
	}
}

// NotifyDrift is the scoreboard's rising-edge hook: a generation's
// windowed error has crossed its drift threshold. The signal arms an
// immediate training round if the loop is running; it is never lost —
// DriftPending stays set until a round actually trains.
func (t *Trainer) NotifyDrift(gen uint64, app string) {
	_ = gen
	_ = app
	t.mu.Lock()
	t.st.DriftSignals++
	t.st.DriftPending = true
	t.mu.Unlock()
	if m := t.m.Load(); m != nil {
		m.drift.Inc()
	}
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Status returns a copy of the trainer's observable state.
func (t *Trainer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.Samples = t.res.Len()
	st.Seen = t.res.Seen()
	st.Running = t.stop != nil
	return st
}

// SnapshotSamples returns a stable copy of the reservoir contents —
// what a training round started now would see.
func (t *Trainer) SnapshotSamples() []predict.Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.res.Snapshot()
}

// TrainOnce runs one synchronous training round: snapshot the
// reservoir, deterministically split it, build a candidate, validate
// against the holdout, adaptively extend if configured, and promote
// through Install only if the gate passes. Returns whether a promotion
// happened. Rounds are serialized; observation continues concurrently
// — Add only contends for the short reservoir-snapshot critical
// section.
func (t *Trainer) TrainOnce() (promoted bool, err error) {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	m := t.m.Load()
	start := time.Now()

	t.mu.Lock()
	if t.res.Len() < t.cfg.MinSamples {
		t.st.LastOutcome = "skipped"
		t.mu.Unlock()
		if m != nil {
			m.rounds.With("skipped").Inc()
		}
		return false, ErrNotEnoughSamples
	}
	samples := t.res.Snapshot()
	t.st.Rounds++
	round := t.st.Rounds
	t.st.DriftPending = false
	t.mu.Unlock()

	// Deterministic holdout split: a permutation seeded by (Seed,
	// round), holdout drawn first so its membership is independent of
	// reservoir slot order.
	rng := rand.New(rand.NewSource(t.cfg.Seed + int64(round)))
	perm := rng.Perm(len(samples))
	nHold := int(t.cfg.HoldoutFrac * float64(len(samples)))
	if nHold < 1 {
		nHold = 1
	}
	if nHold >= len(samples) {
		nHold = len(samples) - 1
	}
	hold := make([]predict.Sample, 0, nHold)
	train := make([]predict.Sample, 0, len(samples)-nHold)
	for i, p := range perm {
		if i < nHold {
			hold = append(hold, samples[p])
		} else {
			train = append(train, samples[p])
		}
	}

	// Per-round forest seed, stepped by 2 because the power forest
	// consumes seed+1.
	fcfg := t.cfg.Forest
	fcfg.Seed = t.cfg.Seed + 2*int64(round)
	if fcfg.Workers == 0 {
		fcfg.Workers = t.cfg.Workers
	}

	cand, err := t.cfg.BuildCandidate(train, fcfg, t.cfg.Workers)
	if err != nil {
		t.finishRound(m, start, 0, 0, 0, "error", err)
		return false, fmt.Errorf("learn: round %d candidate: %w", round, err)
	}
	tm, pm, _ := predict.EvaluateOnSamples(cand, hold)
	tf, _ := cand.Forests()
	trees := tf.NumTrees()

	// Adaptive extension: grow the same candidate (bit-identical to a
	// bigger from-scratch train, per rf.Extend's contract) while the
	// gate fails and budget remains. A candidate from a substituted
	// builder may not be extensible; the first extension error ends the
	// loop and the gate judges what exists.
	for t.cfg.ExtendTrees > 0 && trees < t.cfg.MaxTrees &&
		(tm > t.cfg.Gate.MaxTimeMAPE || pm > t.cfg.Gate.MaxPowerMAPE) {
		extra := t.cfg.ExtendTrees
		if trees+extra > t.cfg.MaxTrees {
			extra = t.cfg.MaxTrees - trees
		}
		bigger, xerr := predict.ExtendOnSamples(cand, train, fcfg, extra, t.cfg.Workers)
		if xerr != nil {
			break
		}
		cand = bigger
		trees += extra
		tm, pm, _ = predict.EvaluateOnSamples(cand, hold)
	}

	if tm > t.cfg.Gate.MaxTimeMAPE || pm > t.cfg.Gate.MaxPowerMAPE {
		t.finishRound(m, start, tm, pm, trees, "rejected", nil)
		return false, nil
	}

	var gen uint64
	if t.cfg.Install != nil {
		gen = t.cfg.Install(cand, fmt.Sprintf("learn-r%d", round))
		if t.cfg.Baseline != nil {
			t.cfg.Baseline(gen, t.cfg.BaselineSlack*tm, t.cfg.BaselineSlack*pm)
		}
	}
	t.mu.Lock()
	t.st.LastGen = gen
	t.mu.Unlock()
	t.finishRound(m, start, tm, pm, trees, "promoted", nil)
	return true, nil
}

func (t *Trainer) finishRound(m *learnMetrics, start time.Time, tm, pm float64, trees int, outcome string, err error) {
	t.mu.Lock()
	switch outcome {
	case "promoted":
		t.st.Promoted++
	case "rejected":
		t.st.Rejected++
	}
	t.st.LastTimeMAPE = tm
	t.st.LastPowerMAPE = pm
	t.st.LastTrees = trees
	t.st.LastOutcome = outcome
	if err != nil {
		t.st.LastError = err.Error()
	} else {
		t.st.LastError = ""
	}
	t.mu.Unlock()
	if m != nil {
		m.rounds.With(outcome).Inc()
		m.mape.With("time").Set(tm)
		m.mape.With("power").Set(pm)
		m.trees.Set(float64(trees))
		m.duration.Observe(float64(time.Since(start).Milliseconds()))
	}
}

// Start launches the training loop: a round fires every interval, or
// immediately on a drift notification. Panics if already running.
func (t *Trainer) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		panic("learn: Trainer.Start called twice")
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	t.mu.Unlock()

	go func() { //mpclint:ignore pooled-concurrency long-lived retraining loop tied to the trainer's lifecycle (Start/Stop), not data-parallel fan-out; training fan-out inside a round still goes through par.ForEach via rf
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			case <-t.wake:
			}
			// Outcome and error land in Status and the metrics; the
			// loop itself has no one to report to.
			_, _ = t.TrainOnce()
		}
	}()
}

// Stop halts the training loop and waits for any in-flight round to
// finish. No-op if the loop is not running.
func (t *Trainer) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
