// Package hw models the software-visible DVFS hardware of the AMD
// A10-7850K APU studied in the paper (Table I): CPU P-states, northbridge
// (NB) states, GPU DPM states, and the number of active GPU compute units
// (CUs). It defines the hardware configuration type, the searchable
// configuration space, and the electrical coupling rules the paper relies
// on (the GPU and NB share a voltage rail; NB states pin memory bus
// frequency).
package hw

import "fmt"

// CPUPState is a CPU performance state. P1 is the fastest (3.9 GHz,
// 1.325 V) and P7 the slowest (1.7 GHz, 0.8875 V), exactly as in Table I
// of the paper. The zero value is P1.
type CPUPState int8

// CPU P-states from Table I.
const (
	P1 CPUPState = iota
	P2
	P3
	P4
	P5
	P6
	P7
	NumCPUStates = 7
)

// cpuTable holds (voltage V, frequency GHz) per P-state, from Table I.
var cpuTable = [NumCPUStates]struct{ volt, freq float64 }{
	{1.3250, 3.9}, // P1
	{1.3125, 3.8}, // P2
	{1.2625, 3.7}, // P3
	{1.2250, 3.5}, // P4
	{1.0625, 3.0}, // P5
	{0.9750, 2.4}, // P6
	{0.8875, 1.7}, // P7
}

// Voltage returns the CPU core voltage in volts.
func (p CPUPState) Voltage() float64 { return cpuTable[p].volt }

// FreqGHz returns the CPU core frequency in GHz.
func (p CPUPState) FreqGHz() float64 { return cpuTable[p].freq }

// Valid reports whether p is one of the seven Table I states.
func (p CPUPState) Valid() bool { return p >= P1 && p <= P7 }

func (p CPUPState) String() string {
	if !p.Valid() {
		return fmt.Sprintf("P?(%d)", int8(p))
	}
	return fmt.Sprintf("P%d", int(p)+1)
}

// NBState is a northbridge DVFS state. NB0 is the fastest. Each NB state
// maps to a fixed memory bus frequency (Table I); NB0–NB2 share the same
// 800 MHz DRAM clock, which is why memory-bound kernel performance
// saturates from NB2 onward (paper §II-C).
type NBState int8

// NB states from Table I.
const (
	NB0 NBState = iota
	NB1
	NB2
	NB3
	NumNBStates = 4
)

// nbTable holds (NB frequency GHz, memory frequency MHz) from Table I,
// plus the minimum rail voltage the NB state demands. The paper does not
// publish NB voltages; these follow the same descending curve as the GPU
// DPM voltages so that high NB states prevent lowering the shared rail,
// the coupling effect described in §II-A.
var nbTable = [NumNBStates]struct {
	freq    float64 // GHz
	memMHz  float64
	minVolt float64
}{
	{1.8, 800, 1.1875}, // NB0
	{1.6, 800, 1.1250}, // NB1
	{1.4, 800, 1.0500}, // NB2
	{1.1, 333, 0.9500}, // NB3
}

// FreqGHz returns the northbridge frequency in GHz.
func (n NBState) FreqGHz() float64 { return nbTable[n].freq }

// MemFreqMHz returns the memory bus frequency in MHz.
func (n NBState) MemFreqMHz() float64 { return nbTable[n].memMHz }

// MemBWGBs returns the peak DRAM bandwidth in GB/s: dual-channel 128-bit
// DDR3 at the state's memory clock (800 MHz -> 25.6 GB/s; 333 MHz ->
// 10.656 GB/s).
func (n NBState) MemBWGBs() float64 { return nbTable[n].memMHz * 1e6 * 16 * 2 / 1e9 }

// MinVoltage returns the minimum shared-rail voltage this NB state
// requires.
func (n NBState) MinVoltage() float64 { return nbTable[n].minVolt }

// Valid reports whether n is one of the four Table I states.
func (n NBState) Valid() bool { return n >= NB0 && n <= NB3 }

func (n NBState) String() string {
	if !n.Valid() {
		return fmt.Sprintf("NB?(%d)", int8(n))
	}
	return fmt.Sprintf("NB%d", int(n))
}

// GPUState is a GPU DPM (dynamic power management) state. DPM0 is the
// slowest (351 MHz, 0.95 V) and DPM4 the fastest (720 MHz, 1.225 V), as in
// Table I.
type GPUState int8

// GPU DPM states from Table I.
const (
	DPM0 GPUState = iota
	DPM1
	DPM2
	DPM3
	DPM4
	NumGPUStates = 5
)

// gpuTable holds (voltage V, frequency MHz) per DPM state, from Table I.
var gpuTable = [NumGPUStates]struct{ volt, freq float64 }{
	{0.9500, 351}, // DPM0
	{1.0500, 450}, // DPM1
	{1.1250, 553}, // DPM2
	{1.1875, 654}, // DPM3
	{1.2250, 720}, // DPM4
}

// Voltage returns the minimum rail voltage the GPU state requires.
func (g GPUState) Voltage() float64 { return gpuTable[g].volt }

// FreqMHz returns the GPU core frequency in MHz.
func (g GPUState) FreqMHz() float64 { return gpuTable[g].freq }

// FreqGHz returns the GPU core frequency in GHz.
func (g GPUState) FreqGHz() float64 { return gpuTable[g].freq / 1000 }

// Valid reports whether g is one of the five Table I states.
func (g GPUState) Valid() bool { return g >= DPM0 && g <= DPM4 }

func (g GPUState) String() string {
	if !g.Valid() {
		return fmt.Sprintf("DPM?(%d)", int8(g))
	}
	return fmt.Sprintf("DPM%d", int(g))
}

// MinCUs and MaxCUs bound the number of active GPU compute units. The
// paper varies CUs from 2 to 8 in steps of 2.
const (
	MinCUs  = 2
	MaxCUs  = 8
	CUStep  = 2
	NumCUs  = 4
	TDPWatt = 95 // A10-7850K thermal design power
)

// Config is one hardware configuration: the tuple the optimizer picks for
// every kernel invocation.
type Config struct {
	CPU CPUPState
	NB  NBState
	GPU GPUState
	CUs int8
}

// Valid reports whether every field holds a legal Table I value.
func (c Config) Valid() bool {
	return c.CPU.Valid() && c.NB.Valid() && c.GPU.Valid() &&
		c.CUs >= MinCUs && c.CUs <= MaxCUs && c.CUs%CUStep == 0
}

// RailVoltage returns the voltage of the shared GPU/NB rail: the maximum
// of what the GPU DPM state and the NB state each demand. A high NB state
// can therefore prevent the GPU voltage from dropping with its frequency
// (paper §II-A), and vice versa.
func (c Config) RailVoltage() float64 {
	v := c.GPU.Voltage()
	if nv := c.NB.MinVoltage(); nv > v {
		v = nv
	}
	return v
}

func (c Config) String() string {
	return fmt.Sprintf("[%s, %s, %s, %d CUs]", c.CPU, c.NB, c.GPU, c.CUs)
}

// FailSafe is the empirically determined fail-safe configuration the
// paper's optimizer falls back to when it cannot meet the performance
// target: [P7, NB2, DPM4, 8 CUs].
func FailSafe() Config { return Config{CPU: P7, NB: NB2, GPU: DPM4, CUs: MaxCUs} }

// MaxPerf is the highest-throughput configuration for a GPU kernel:
// fastest GPU and NB, all CUs, fastest CPU.
func MaxPerf() Config { return Config{CPU: P1, NB: NB0, GPU: DPM4, CUs: MaxCUs} }

// Space is an enumerable set of hardware configurations: the Cartesian
// product of per-knob state lists (the set S of Eq. 1).
type Space struct {
	CPUs []CPUPState
	NBs  []NBState
	GPUs []GPUState
	CUs  []int8
}

// DefaultSpace returns the 336-configuration space the paper captured on
// hardware: all 7 CPU P-states × 4 NB states × 3 of the 5 GPU DPM states
// (DPM0, DPM2, DPM4) × CUs {2,4,6,8}.
func DefaultSpace() Space {
	return Space{
		CPUs: []CPUPState{P1, P2, P3, P4, P5, P6, P7},
		NBs:  []NBState{NB0, NB1, NB2, NB3},
		GPUs: []GPUState{DPM0, DPM2, DPM4},
		CUs:  []int8{2, 4, 6, 8},
	}
}

// FullSpace returns the complete 560-configuration space with all five
// GPU DPM states.
func FullSpace() Space {
	s := DefaultSpace()
	s.GPUs = []GPUState{DPM0, DPM1, DPM2, DPM3, DPM4}
	return s
}

// Size returns the number of configurations in the space.
func (s Space) Size() int { return len(s.CPUs) * len(s.NBs) * len(s.GPUs) * len(s.CUs) }

// Equal reports whether the two spaces enumerate exactly the same
// configurations in the same At order (identical per-knob state lists,
// element for element). Callers that precompute per-configuration state
// — e.g. the batched predictor's config-feature arena — use this to
// detect when a cached layout can be reused.
func (s Space) Equal(o Space) bool {
	if len(s.CPUs) != len(o.CPUs) || len(s.NBs) != len(o.NBs) ||
		len(s.GPUs) != len(o.GPUs) || len(s.CUs) != len(o.CUs) {
		return false
	}
	for i, v := range s.CPUs {
		if o.CPUs[i] != v {
			return false
		}
	}
	for i, v := range s.NBs {
		if o.NBs[i] != v {
			return false
		}
	}
	for i, v := range s.GPUs {
		if o.GPUs[i] != v {
			return false
		}
	}
	for i, v := range s.CUs {
		if o.CUs[i] != v {
			return false
		}
	}
	return true
}

// KnobStates returns the per-knob cardinalities |cpu|, |nb|, |gpu|, |cu|.
// Their sum is the per-kernel evaluation cost of greedy hill climbing; the
// product is the cost of an exhaustive sweep (paper §IV-A1).
func (s Space) KnobStates() (cpu, nb, gpu, cu int) {
	return len(s.CPUs), len(s.NBs), len(s.GPUs), len(s.CUs)
}

// At returns the i-th configuration in row-major (CPU, NB, GPU, CU) order.
// It panics if i is out of range.
func (s Space) At(i int) Config {
	if i < 0 || i >= s.Size() {
		panic(fmt.Sprintf("hw: Space.At(%d) out of range [0,%d)", i, s.Size()))
	}
	nc := len(s.CUs)
	ng := len(s.GPUs)
	nn := len(s.NBs)
	cu := s.CUs[i%nc]
	i /= nc
	g := s.GPUs[i%ng]
	i /= ng
	n := s.NBs[i%nn]
	i /= nn
	return Config{CPU: s.CPUs[i], NB: n, GPU: g, CUs: cu}
}

// Index returns the position of c in the space's At ordering, or -1 if c
// is not in the space.
func (s Space) Index(c Config) int {
	ci := indexCPU(s.CPUs, c.CPU)
	ni := indexNB(s.NBs, c.NB)
	gi := indexGPU(s.GPUs, c.GPU)
	ui := indexCU(s.CUs, c.CUs)
	if ci < 0 || ni < 0 || gi < 0 || ui < 0 {
		return -1
	}
	return ((ci*len(s.NBs)+ni)*len(s.GPUs)+gi)*len(s.CUs) + ui
}

// Contains reports whether c is a member of the space.
func (s Space) Contains(c Config) bool { return s.Index(c) >= 0 }

// ForEach calls fn for every configuration in At order.
func (s Space) ForEach(fn func(Config)) {
	for _, p := range s.CPUs {
		for _, n := range s.NBs {
			for _, g := range s.GPUs {
				for _, cu := range s.CUs {
					fn(Config{CPU: p, NB: n, GPU: g, CUs: cu})
				}
			}
		}
	}
}

// Configs returns all configurations in At order as a slice.
func (s Space) Configs() []Config {
	out := make([]Config, 0, s.Size())
	s.ForEach(func(c Config) { out = append(out, c) })
	return out
}

func indexCPU(xs []CPUPState, x CPUPState) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func indexNB(xs []NBState, x NBState) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func indexGPU(xs []GPUState, x GPUState) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func indexCU(xs []int8, x int8) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
