package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTableIMatchesPaper pins the DVFS tables to the exact values
// published in Table I of the paper.
func TestTableIMatchesPaper(t *testing.T) {
	cpu := []struct {
		s    CPUPState
		volt float64
		freq float64
	}{
		{P1, 1.325, 3.9}, {P2, 1.3125, 3.8}, {P3, 1.2625, 3.7},
		{P4, 1.225, 3.5}, {P5, 1.0625, 3.0}, {P6, 0.975, 2.4}, {P7, 0.8875, 1.7},
	}
	for _, c := range cpu {
		if c.s.Voltage() != c.volt {
			t.Errorf("%s voltage = %v, want %v", c.s, c.s.Voltage(), c.volt)
		}
		if c.s.FreqGHz() != c.freq {
			t.Errorf("%s freq = %v, want %v", c.s, c.s.FreqGHz(), c.freq)
		}
	}

	nb := []struct {
		s      NBState
		freq   float64
		memMHz float64
	}{
		{NB0, 1.8, 800}, {NB1, 1.6, 800}, {NB2, 1.4, 800}, {NB3, 1.1, 333},
	}
	for _, n := range nb {
		if n.s.FreqGHz() != n.freq {
			t.Errorf("%s freq = %v, want %v", n.s, n.s.FreqGHz(), n.freq)
		}
		if n.s.MemFreqMHz() != n.memMHz {
			t.Errorf("%s mem freq = %v, want %v", n.s, n.s.MemFreqMHz(), n.memMHz)
		}
	}

	gpu := []struct {
		s    GPUState
		volt float64
		freq float64
	}{
		{DPM0, 0.95, 351}, {DPM1, 1.05, 450}, {DPM2, 1.125, 553},
		{DPM3, 1.1875, 654}, {DPM4, 1.225, 720},
	}
	for _, g := range gpu {
		if g.s.Voltage() != g.volt {
			t.Errorf("%s voltage = %v, want %v", g.s, g.s.Voltage(), g.volt)
		}
		if g.s.FreqMHz() != g.freq {
			t.Errorf("%s freq = %v, want %v", g.s, g.s.FreqMHz(), g.freq)
		}
	}
}

func TestCPUStatesMonotonic(t *testing.T) {
	for p := P2; p <= P7; p++ {
		if p.Voltage() >= (p - 1).Voltage() {
			t.Errorf("%s voltage %v not below %s voltage %v", p, p.Voltage(), p-1, (p - 1).Voltage())
		}
		if p.FreqGHz() >= (p - 1).FreqGHz() {
			t.Errorf("%s freq %v not below %s freq %v", p, p.FreqGHz(), p-1, (p - 1).FreqGHz())
		}
	}
}

func TestGPUStatesMonotonic(t *testing.T) {
	for g := DPM1; g <= DPM4; g++ {
		if g.Voltage() <= (g - 1).Voltage() {
			t.Errorf("%s voltage not above %s", g, g-1)
		}
		if g.FreqMHz() <= (g - 1).FreqMHz() {
			t.Errorf("%s freq not above %s", g, g-1)
		}
	}
}

func TestMemBandwidthSaturation(t *testing.T) {
	// NB0, NB1, NB2 share the same 800 MHz DRAM clock (paper §II-C): the
	// bandwidth of memory-bound kernels saturates from NB2 onwards.
	if NB0.MemBWGBs() != NB1.MemBWGBs() || NB1.MemBWGBs() != NB2.MemBWGBs() {
		t.Errorf("NB0..NB2 bandwidth differ: %v %v %v", NB0.MemBWGBs(), NB1.MemBWGBs(), NB2.MemBWGBs())
	}
	if NB3.MemBWGBs() >= NB2.MemBWGBs() {
		t.Errorf("NB3 bandwidth %v not below NB2 %v", NB3.MemBWGBs(), NB2.MemBWGBs())
	}
	if got := NB0.MemBWGBs(); got != 25.6 {
		t.Errorf("NB0 bandwidth = %v GB/s, want 25.6", got)
	}
}

func TestSharedRailVoltage(t *testing.T) {
	// A high NB state prevents lowering the GPU voltage with its frequency
	// (paper §II-A).
	low := Config{CPU: P7, NB: NB0, GPU: DPM0, CUs: 2}
	if v := low.RailVoltage(); v != NB0.MinVoltage() {
		t.Errorf("DPM0+NB0 rail = %v, want NB0 floor %v", v, NB0.MinVoltage())
	}
	// A high GPU state dominates a low NB state.
	hi := Config{CPU: P7, NB: NB3, GPU: DPM4, CUs: 2}
	if v := hi.RailVoltage(); v != DPM4.Voltage() {
		t.Errorf("DPM4+NB3 rail = %v, want DPM4 voltage %v", v, DPM4.Voltage())
	}
}

func TestDefaultSpaceSize(t *testing.T) {
	s := DefaultSpace()
	if got := s.Size(); got != 336 {
		t.Fatalf("default space size = %d, want 336 (paper §V)", got)
	}
	if got := FullSpace().Size(); got != 560 {
		t.Fatalf("full space size = %d, want 560", got)
	}
	cpu, nb, gpu, cu := s.KnobStates()
	if cpu+nb+gpu+cu != 18 {
		t.Errorf("knob sum = %d, want 18", cpu+nb+gpu+cu)
	}
}

func TestSpaceAtIndexRoundTrip(t *testing.T) {
	for _, s := range []Space{DefaultSpace(), FullSpace()} {
		for i := 0; i < s.Size(); i++ {
			c := s.At(i)
			if !c.Valid() {
				t.Fatalf("At(%d) = %v invalid", i, c)
			}
			if j := s.Index(c); j != i {
				t.Fatalf("Index(At(%d)) = %d", i, j)
			}
		}
	}
}

func TestSpaceForEachMatchesAt(t *testing.T) {
	s := DefaultSpace()
	i := 0
	s.ForEach(func(c Config) {
		if c != s.At(i) {
			t.Fatalf("ForEach[%d] = %v, At = %v", i, c, s.At(i))
		}
		i++
	})
	if i != s.Size() {
		t.Fatalf("ForEach visited %d configs, want %d", i, s.Size())
	}
	if got := len(s.Configs()); got != s.Size() {
		t.Fatalf("Configs len = %d, want %d", got, s.Size())
	}
}

func TestSpaceIndexRejectsForeign(t *testing.T) {
	s := DefaultSpace() // has no DPM1
	c := Config{CPU: P1, NB: NB0, GPU: DPM1, CUs: 8}
	if s.Index(c) != -1 || s.Contains(c) {
		t.Errorf("default space should not contain %v", c)
	}
	if !FullSpace().Contains(c) {
		t.Errorf("full space should contain %v", c)
	}
}

func TestSpaceEqual(t *testing.T) {
	if !DefaultSpace().Equal(DefaultSpace()) {
		t.Error("DefaultSpace not equal to itself")
	}
	if !FullSpace().Equal(FullSpace()) {
		t.Error("FullSpace not equal to itself")
	}
	if DefaultSpace().Equal(FullSpace()) {
		t.Error("default and full spaces compare equal")
	}
	if (Space{}).Equal(DefaultSpace()) || !(Space{}).Equal(Space{}) {
		t.Error("empty-space comparisons wrong")
	}
	// Same lengths, one differing element per axis.
	for axis := 0; axis < 4; axis++ {
		s := DefaultSpace()
		switch axis {
		case 0:
			s.CPUs = append([]CPUPState(nil), s.CPUs...)
			s.CPUs[0] = s.CPUs[len(s.CPUs)-1]
		case 1:
			s.NBs = append([]NBState(nil), s.NBs...)
			s.NBs[0] = s.NBs[len(s.NBs)-1]
		case 2:
			s.GPUs = append([]GPUState(nil), s.GPUs...)
			s.GPUs[0] = s.GPUs[len(s.GPUs)-1]
		case 3:
			s.CUs = append([]int8(nil), s.CUs...)
			s.CUs[0] = s.CUs[len(s.CUs)-1]
		}
		if s.Equal(DefaultSpace()) || DefaultSpace().Equal(s) {
			t.Errorf("axis %d: spaces with a differing element compare equal", axis)
		}
	}
}

func TestFailSafeInDefaultSpace(t *testing.T) {
	fs := FailSafe()
	want := Config{CPU: P7, NB: NB2, GPU: DPM4, CUs: 8}
	if fs != want {
		t.Fatalf("FailSafe = %v, want %v", fs, want)
	}
	if !DefaultSpace().Contains(fs) {
		t.Errorf("fail-safe %v not in default space", fs)
	}
	if !DefaultSpace().Contains(MaxPerf()) {
		t.Errorf("max-perf %v not in default space", MaxPerf())
	}
}

func TestKnobStepWalksWholeAxis(t *testing.T) {
	s := DefaultSpace()
	for _, k := range Knobs() {
		start := s.WithKnob(MaxPerf(), k, 0)
		c := start
		n := 1
		for {
			next, ok := s.Step(c, k, +1)
			if !ok {
				break
			}
			c = next
			n++
		}
		if n != s.KnobLen(k) {
			t.Errorf("knob %s walked %d states, want %d", k, n, s.KnobLen(k))
		}
		// Walking back down returns to the start.
		for {
			prev, ok := s.Step(c, k, -1)
			if !ok {
				break
			}
			c = prev
		}
		if c != start {
			t.Errorf("knob %s round trip ended at %v, want %v", k, c, start)
		}
	}
}

func TestWithKnobPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithKnob out of range did not panic")
		}
	}()
	s := DefaultSpace()
	s.WithKnob(MaxPerf(), KnobGPU, 99)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	DefaultSpace().At(336)
}

func TestClampMapsForeignConfigs(t *testing.T) {
	s := DefaultSpace()
	c := Config{CPU: P3, NB: NB1, GPU: DPM1, CUs: 8} // DPM1 not in space
	cl := s.Clamp(c)
	if !s.Contains(cl) {
		t.Fatalf("Clamp(%v) = %v not in space", c, cl)
	}
	if cl.GPU != DPM0 && cl.GPU != DPM2 {
		t.Errorf("Clamp mapped DPM1 to %v, want a neighbor", cl.GPU)
	}
	// A config already in the space is unchanged.
	if got := s.Clamp(FailSafe()); got != FailSafe() {
		t.Errorf("Clamp(failsafe) = %v", got)
	}
}

func TestStringForms(t *testing.T) {
	c := FailSafe()
	if got, want := c.String(), "[P7, NB2, DPM4, 8 CUs]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if CPUPState(42).String() == "" || NBState(42).String() == "" || GPUState(42).String() == "" {
		t.Error("invalid state String should be non-empty")
	}
	if Knob(9).String() == "" {
		t.Error("invalid knob String should be non-empty")
	}
}

// Property: every config produced by Clamp is in the space, for arbitrary
// (possibly invalid) inputs.
func TestClampAlwaysInSpaceQuick(t *testing.T) {
	s := DefaultSpace()
	f := func(cpu, nb, gpu, cu int8) bool {
		c := s.Clamp(Config{CPU: CPUPState(cpu), NB: NBState(nb), GPU: GPUState(gpu), CUs: cu})
		return s.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Step never leaves the space and is inverted by the opposite
// step.
func TestStepInverseQuick(t *testing.T) {
	s := FullSpace()
	cfgs := s.Configs()
	f := func(idx uint16, knob uint8, up bool) bool {
		c := cfgs[int(idx)%len(cfgs)]
		k := Knob(knob % NumKnobs)
		dir := 1
		if !up {
			dir = -1
		}
		next, ok := s.Step(c, k, dir)
		if !ok {
			return true
		}
		if !s.Contains(next) {
			return false
		}
		back, ok := s.Step(next, k, -dir)
		return ok && back == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestRailVoltageNeverBelowEitherDemand(t *testing.T) {
	FullSpace().ForEach(func(c Config) {
		v := c.RailVoltage()
		if v < c.GPU.Voltage() || v < c.NB.MinVoltage() {
			t.Fatalf("%v rail voltage %v below demand", c, v)
		}
	})
}
