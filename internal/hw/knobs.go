package hw

import "fmt"

// Knob identifies one of the four adjustable hardware dimensions. The
// greedy hill-climbing optimizer (paper §IV-A1) walks one knob at a time,
// in descending order of predicted energy sensitivity.
type Knob int8

// The four knobs of the configuration space.
const (
	KnobCPU Knob = iota
	KnobNB
	KnobGPU
	KnobCU
	NumKnobs = 4
)

func (k Knob) String() string {
	switch k {
	case KnobCPU:
		return "cpu"
	case KnobNB:
		return "nb"
	case KnobGPU:
		return "gpu"
	case KnobCU:
		return "cu"
	}
	return fmt.Sprintf("knob?(%d)", int8(k))
}

// Knobs returns all knobs in declaration order.
func Knobs() [NumKnobs]Knob { return [NumKnobs]Knob{KnobCPU, KnobNB, KnobGPU, KnobCU} }

// KnobIndex returns the position of c's value for knob k within the
// space's per-knob state list, or -1 if the value is not in the space.
func (s Space) KnobIndex(c Config, k Knob) int {
	switch k {
	case KnobCPU:
		return indexCPU(s.CPUs, c.CPU)
	case KnobNB:
		return indexNB(s.NBs, c.NB)
	case KnobGPU:
		return indexGPU(s.GPUs, c.GPU)
	case KnobCU:
		return indexCU(s.CUs, c.CUs)
	}
	return -1
}

// KnobLen returns the number of states the space offers for knob k.
func (s Space) KnobLen(k Knob) int {
	switch k {
	case KnobCPU:
		return len(s.CPUs)
	case KnobNB:
		return len(s.NBs)
	case KnobGPU:
		return len(s.GPUs)
	case KnobCU:
		return len(s.CUs)
	}
	return 0
}

// WithKnob returns c with knob k set to the space's i-th state for that
// knob. It panics if i is out of range for the knob.
func (s Space) WithKnob(c Config, k Knob, i int) Config {
	if i < 0 || i >= s.KnobLen(k) {
		panic(fmt.Sprintf("hw: WithKnob(%s, %d) out of range [0,%d)", k, i, s.KnobLen(k)))
	}
	switch k {
	case KnobCPU:
		c.CPU = s.CPUs[i]
	case KnobNB:
		c.NB = s.NBs[i]
	case KnobGPU:
		c.GPU = s.GPUs[i]
	case KnobCU:
		c.CUs = s.CUs[i]
	}
	return c
}

// Step returns c with knob k moved dir positions (+1 or -1) along the
// space's state list for that knob, and ok=false if the move would leave
// the space.
func (s Space) Step(c Config, k Knob, dir int) (Config, bool) {
	i := s.KnobIndex(c, k)
	if i < 0 {
		return c, false
	}
	j := i + dir
	if j < 0 || j >= s.KnobLen(k) {
		return c, false
	}
	return s.WithKnob(c, k, j), true
}

// Clamp returns the configuration in the space nearest to c: each knob
// value is replaced by the space's closest available state (by position in
// the canonical full ordering). Useful for mapping arbitrary configs such
// as FailSafe into restricted spaces.
func (s Space) Clamp(c Config) Config {
	c.CPU = nearestCPU(s.CPUs, c.CPU)
	c.NB = nearestNB(s.NBs, c.NB)
	c.GPU = nearestGPU(s.GPUs, c.GPU)
	c.CUs = nearestCU(s.CUs, c.CUs)
	return c
}

func nearestCPU(xs []CPUPState, x CPUPState) CPUPState {
	best, bd := xs[0], diff8(int8(xs[0]), int8(x))
	for _, v := range xs[1:] {
		if d := diff8(int8(v), int8(x)); d < bd {
			best, bd = v, d
		}
	}
	return best
}

func nearestNB(xs []NBState, x NBState) NBState {
	best, bd := xs[0], diff8(int8(xs[0]), int8(x))
	for _, v := range xs[1:] {
		if d := diff8(int8(v), int8(x)); d < bd {
			best, bd = v, d
		}
	}
	return best
}

func nearestGPU(xs []GPUState, x GPUState) GPUState {
	best, bd := xs[0], diff8(int8(xs[0]), int8(x))
	for _, v := range xs[1:] {
		if d := diff8(int8(v), int8(x)); d < bd {
			best, bd = v, d
		}
	}
	return best
}

func nearestCU(xs []int8, x int8) int8 {
	best, bd := xs[0], diff8(xs[0], x)
	for _, v := range xs[1:] {
		if d := diff8(v, x); d < bd {
			best, bd = v, d
		}
	}
	return best
}

func diff8(a, b int8) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}
