// Package thermal models the die temperature of the APU as a first-order
// RC network and the resulting thermal throttling. The paper studies the
// A10-7850K precisely because "due to its more stringent thermal
// constraints, it more aggressively manages power compared to discrete
// GPUs" (§V); this substrate lets the simulator reproduce that pressure:
// sustained high power heats the die, a hot die throttles execution, and
// a power manager that spends fewer watts stays faster simply by staying
// cooler.
package thermal

import (
	"fmt"
	"math"
)

// Params characterizes the package's thermal path.
type Params struct {
	AmbientC     float64 // ambient/heatsink base temperature
	ResistanceCW float64 // junction-to-ambient thermal resistance, °C per W
	TimeConstMS  float64 // RC time constant of the die+spreader
	ThrottleC    float64 // junction temperature where throttling begins
	MaxC         float64 // temperature of maximum throttling
	MaxSlowdown  float64 // execution-time factor at MaxC (≥ 1)
}

// DefaultParams models a small-form-factor A10-7850K-class package: a
// sustained 95 W brings the die from 45 °C ambient to ~98 °C, just past
// the 95 °C throttle point.
func DefaultParams() Params {
	return Params{
		AmbientC:     45,
		ResistanceCW: 0.56,
		TimeConstMS:  2500,
		ThrottleC:    95,
		MaxC:         105,
		MaxSlowdown:  1.6,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.ResistanceCW <= 0:
		return fmt.Errorf("thermal: non-positive thermal resistance")
	case p.TimeConstMS <= 0:
		return fmt.Errorf("thermal: non-positive time constant")
	case p.MaxC <= p.ThrottleC:
		return fmt.Errorf("thermal: MaxC %.1f must exceed ThrottleC %.1f", p.MaxC, p.ThrottleC)
	case p.MaxSlowdown < 1:
		return fmt.Errorf("thermal: MaxSlowdown %v below 1", p.MaxSlowdown)
	}
	return nil
}

// Model is the die temperature state. The zero value is not usable; call
// New.
type Model struct {
	p     Params
	tempC float64
}

// New returns a model at ambient temperature. It panics on invalid
// parameters.
func New(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{p: p, tempC: p.AmbientC}
}

// TempC returns the current junction temperature.
func (m *Model) TempC() float64 { return m.tempC }

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// Reset returns the die to ambient.
func (m *Model) Reset() { m.tempC = m.p.AmbientC }

// Step advances the temperature under powerW watts for dtMS
// milliseconds: exponential approach to the steady-state temperature
// Ambient + P·Rth.
func (m *Model) Step(powerW, dtMS float64) float64 {
	if powerW < 0 || dtMS < 0 {
		panic("thermal: negative power or time")
	}
	steady := m.p.AmbientC + powerW*m.p.ResistanceCW
	alpha := 1 - math.Exp(-dtMS/m.p.TimeConstMS)
	m.tempC += (steady - m.tempC) * alpha
	return m.tempC
}

// ThrottleFactor returns the execution-time multiplier at the current
// temperature: 1 below ThrottleC, rising linearly to MaxSlowdown at MaxC
// and clamped there — the firmware stretching execution to shed heat.
func (m *Model) ThrottleFactor() float64 {
	if m.tempC <= m.p.ThrottleC {
		return 1
	}
	frac := (m.tempC - m.p.ThrottleC) / (m.p.MaxC - m.p.ThrottleC)
	if frac > 1 {
		frac = 1
	}
	return 1 + frac*(m.p.MaxSlowdown-1)
}

// Throttling reports whether the die is above the throttle point.
func (m *Model) Throttling() bool { return m.tempC > m.p.ThrottleC }

// SteadyTempC returns the temperature a constant power level converges
// to.
func (p Params) SteadyTempC(powerW float64) float64 {
	return p.AmbientC + powerW*p.ResistanceCW
}
