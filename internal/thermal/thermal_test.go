package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStartsAtAmbient(t *testing.T) {
	m := New(DefaultParams())
	if m.TempC() != DefaultParams().AmbientC {
		t.Errorf("initial temp %v, want ambient", m.TempC())
	}
	if m.Throttling() || m.ThrottleFactor() != 1 {
		t.Error("throttling at ambient")
	}
}

func TestConvergesToSteadyState(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	for i := 0; i < 100; i++ {
		m.Step(95, p.TimeConstMS) // many time constants at TDP
	}
	want := p.SteadyTempC(95)
	if math.Abs(m.TempC()-want) > 0.1 {
		t.Errorf("steady temp %v, want %v", m.TempC(), want)
	}
	if !m.Throttling() {
		t.Error("sustained TDP should throttle the default package")
	}
}

func TestCoolsBackDown(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	for i := 0; i < 50; i++ {
		m.Step(95, p.TimeConstMS)
	}
	hot := m.TempC()
	for i := 0; i < 50; i++ {
		m.Step(10, p.TimeConstMS)
	}
	if m.TempC() >= hot {
		t.Error("die did not cool at low power")
	}
	if math.Abs(m.TempC()-p.SteadyTempC(10)) > 0.1 {
		t.Errorf("cool steady temp %v, want %v", m.TempC(), p.SteadyTempC(10))
	}
}

func TestThrottleFactorShape(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	m.tempC = p.ThrottleC
	if m.ThrottleFactor() != 1 {
		t.Error("factor at the throttle point should be 1")
	}
	m.tempC = p.MaxC
	if got := m.ThrottleFactor(); got != p.MaxSlowdown {
		t.Errorf("factor at MaxC = %v, want %v", got, p.MaxSlowdown)
	}
	m.tempC = p.MaxC + 50
	if got := m.ThrottleFactor(); got != p.MaxSlowdown {
		t.Errorf("factor beyond MaxC = %v, want clamp %v", got, p.MaxSlowdown)
	}
	m.tempC = (p.ThrottleC + p.MaxC) / 2
	mid := 1 + (p.MaxSlowdown-1)/2
	if got := m.ThrottleFactor(); math.Abs(got-mid) > 1e-12 {
		t.Errorf("midpoint factor = %v, want %v", got, mid)
	}
}

func TestReset(t *testing.T) {
	m := New(DefaultParams())
	m.Step(95, 1e6)
	m.Reset()
	if m.TempC() != DefaultParams().AmbientC {
		t.Error("Reset did not return to ambient")
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{ResistanceCW: 0, TimeConstMS: 1, ThrottleC: 1, MaxC: 2, MaxSlowdown: 1},
		{ResistanceCW: 1, TimeConstMS: 0, ThrottleC: 1, MaxC: 2, MaxSlowdown: 1},
		{ResistanceCW: 1, TimeConstMS: 1, ThrottleC: 2, MaxC: 2, MaxSlowdown: 1},
		{ResistanceCW: 1, TimeConstMS: 1, ThrottleC: 1, MaxC: 2, MaxSlowdown: 0.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if DefaultParams().Validate() != nil {
		t.Error("default params rejected")
	}
}

func TestStepPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative power did not panic")
		}
	}()
	New(DefaultParams()).Step(-1, 1)
}

// Property: temperature stays within [min(T, steady), max(T, steady)]
// for any step — the RC response never overshoots.
func TestNoOvershootQuick(t *testing.T) {
	p := DefaultParams()
	prop := func(pw, dt uint16, startRaw uint8) bool {
		m := New(p)
		m.tempC = p.AmbientC + float64(startRaw)/4 // 45..108
		power := float64(pw % 120)
		d := float64(dt%10000) + 0.1
		steady := p.SteadyTempC(power)
		lo := math.Min(m.tempC, steady)
		hi := math.Max(m.tempC, steady)
		got := m.Step(power, d)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(81))}); err != nil {
		t.Error(err)
	}
}
