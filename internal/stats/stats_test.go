package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("GeoMean = %v, want 3", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestSumAndMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v, want 11", got)
	}
	min, max, err := MinMax(xs)
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestAbsPctErr(t *testing.T) {
	if got := AbsPctErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsPctErr = %v, want 0.1", got)
	}
	if got := AbsPctErr(0, 0); got != 0 {
		t.Errorf("AbsPctErr(0,0) = %v, want 0", got)
	}
	if got := AbsPctErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsPctErr(1,0) = %v, want +Inf", got)
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil || math.Abs(m-0.1) > 1e-12 {
		t.Errorf("MAPE = %v,%v, want 0.1", m, err)
	}
	if _, err := MAPE(nil, nil); err != ErrEmpty {
		t.Errorf("MAPE empty err = %v", err)
	}
}

func TestMAPEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAPE length mismatch did not panic")
		}
	}()
	_, _ = MAPE([]float64{1}, []float64{1, 2})
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v,%v, want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v", err)
	}
	// Input must not be mutated.
	if xs[0] != 10 || xs[3] != 40 {
		t.Error("Percentile mutated input")
	}
}

func TestHalfNormalMean(t *testing.T) {
	h := NewHalfNormalWithMean(0.15, 7)
	n := 200000
	s := 0.0
	for i := 0; i < n; i++ {
		v := h.Sample()
		if v < 0 {
			t.Fatal("half-normal sample negative")
		}
		s += v
	}
	got := s / float64(n)
	if math.Abs(got-0.15) > 0.003 {
		t.Errorf("half-normal sample mean = %v, want ~0.15", got)
	}
}

func TestHalfNormalSignedSymmetric(t *testing.T) {
	h := NewHalfNormalWithMean(0.1, 11)
	n := 100000
	s, abs := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := h.SampleSigned()
		s += v
		abs += math.Abs(v)
	}
	if m := s / float64(n); math.Abs(m) > 0.005 {
		t.Errorf("signed mean = %v, want ~0", m)
	}
	if m := abs / float64(n); math.Abs(m-0.1) > 0.005 {
		t.Errorf("signed abs mean = %v, want ~0.1", m)
	}
}

func TestHalfNormalZeroMean(t *testing.T) {
	h := NewHalfNormalWithMean(0, 3)
	for i := 0; i < 10; i++ {
		if v := h.Sample(); v != 0 {
			t.Fatalf("zero-mean sample = %v", v)
		}
	}
	if h.Sigma() != 0 {
		t.Errorf("Sigma = %v, want 0", h.Sigma())
	}
}

func TestHalfNormalNegativeMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative mean did not panic")
		}
	}()
	NewHalfNormalWithMean(-1, 0)
}

// Property: GeoMean is bounded by Mean for positive inputs (AM-GM).
func TestAMGMQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01 // strictly positive
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, _ := Percentile(xs, p1)
		v2, _ := Percentile(xs, p2)
		return v1 <= v2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}
