// Package stats provides the small statistical utilities the simulator
// and evaluation harness need: means, geometric means, percentage errors,
// and the half-normal error distribution the paper uses to model published
// predictor inaccuracies (§VI-D).
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by aggregations over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// ApproxEqual is the repository's documented float comparator: it
// reports whether a and b agree to within eps, absolutely for values
// near zero and relatively otherwise. Code outside epsilon helpers must
// not compare floats with == or != (enforced by mpclint's float-eq
// check); route tolerance decisions through this function so every
// caller breaks ties the same way.
func ApproxEqual(a, b, eps float64) bool {
	if a == b {
		return true // covers infinities and exact ties
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= eps
	}
	return diff <= eps*scale
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive values make the result NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the smallest and largest values in xs. It returns
// ErrEmpty for empty input.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// AbsPctErr returns |pred-actual|/|actual| as a fraction. A zero actual
// with nonzero pred yields +Inf; zero/zero yields 0.
func AbsPctErr(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / math.Abs(actual)
}

// MAPE returns the mean absolute percentage error (as a fraction) between
// predictions and actuals. It returns ErrEmpty if the slices are empty and
// panics if their lengths differ.
func MAPE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		panic("stats: MAPE length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range pred {
		s += AbsPctErr(pred[i], actual[i])
	}
	return s / float64(len(pred)), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for empty
// input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// HalfNormal samples |X| where X ~ N(0, sigma²). The paper (§VI-D) models
// published predictor inaccuracies as half-normally distributed errors
// whose absolute mean equals the reported average error.
type HalfNormal struct {
	sigma float64
	rng   *rand.Rand
}

// NewHalfNormalWithMean returns a half-normal sampler whose expected value
// is mean. For a half-normal, E|X| = sigma·sqrt(2/pi), so
// sigma = mean·sqrt(pi/2).
func NewHalfNormalWithMean(mean float64, seed int64) *HalfNormal {
	if mean < 0 {
		panic("stats: half-normal mean must be non-negative")
	}
	return &HalfNormal{
		sigma: mean * math.Sqrt(math.Pi/2),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Sample draws one half-normal value.
func (h *HalfNormal) Sample() float64 { return math.Abs(h.rng.NormFloat64()) * h.sigma }

// SampleSigned draws a half-normal magnitude with a uniformly random sign,
// producing a symmetric error with the given absolute mean.
func (h *HalfNormal) SampleSigned() float64 {
	v := h.Sample()
	if h.rng.Intn(2) == 0 {
		return -v
	}
	return v
}

// Sigma returns the underlying normal sigma.
func (h *HalfNormal) Sigma() float64 { return h.sigma }
