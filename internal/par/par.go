// Package par is the shared worker pool behind the runtime's parallel
// hot paths: Random Forest tree growth (internal/rf), batched forest
// inference, and the sharded configuration-space sweep
// (internal/core). It deliberately provides only order-free fan-out —
// every parallel caller in this repository is required to produce
// byte-identical results to its serial counterpart, so work is always
// partitioned by index and each task writes only to its own
// index-addressed output slot; any reduction over those slots happens
// serially, in index order, on the caller's goroutine.
//
// Worker-count convention, shared by every `-workers` flag and Workers
// field in the repository:
//
//	n <= 0  use the process default (Default, initially GOMAXPROCS)
//	n == 1  run serially on the calling goroutine
//	n >= 2  fan out across up to n goroutines
//
// The package keeps process-wide counters of batches and tasks executed;
// Instrument mirrors them into a metrics.Registry as
// mpcdvfs_par_batches_total{mode} and mpcdvfs_par_tasks_total.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mpcdvfs/internal/metrics"
)

// defaultWorkers is the process-wide default used when a caller passes
// workers <= 0. Zero means "unset": fall back to GOMAXPROCS at call
// time, so the default tracks runtime changes unless pinned.
var defaultWorkers atomic.Int64

// Default returns the process-wide default worker count: the value set
// by SetDefault, or GOMAXPROCS(0) if never set.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefault pins the process-wide default worker count (the `-workers`
// flag of the commands). n <= 0 unpins, restoring the GOMAXPROCS
// default. Safe for concurrent use.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a caller-supplied worker count to an effective one,
// applying the package convention (<= 0 means Default).
func Resolve(n int) int {
	if n <= 0 {
		return Default()
	}
	return n
}

// Counters of completed work, exposed via Snapshot and mirrored into a
// metrics registry by Instrument.
var (
	serialBatches   atomic.Uint64
	parallelBatches atomic.Uint64
	tasks           atomic.Uint64

	instr atomic.Pointer[instrCounters]
)

type instrCounters struct {
	serial   *metrics.Counter
	parallel *metrics.Counter
	tasks    *metrics.Counter
}

// Snapshot returns the process-wide pool counters: batches executed
// serially (one goroutine), batches fanned out across workers, and
// total tasks run through ForEach.
func Snapshot() (serial, parallel, totalTasks uint64) {
	return serialBatches.Load(), parallelBatches.Load(), tasks.Load()
}

// Instrument mirrors the pool counters into reg from now on (earlier
// activity is not backfilled). Calling it again with another registry
// redirects the mirror.
func Instrument(reg *metrics.Registry) {
	batches := reg.Counter("mpcdvfs_par_batches_total",
		"ForEach batches executed by the shared worker pool.", "mode")
	t := reg.Counter("mpcdvfs_par_tasks_total",
		"Tasks executed by the shared worker pool.")
	instr.Store(&instrCounters{
		serial:   batches.With("serial"),
		parallel: batches.With("parallel"),
		tasks:    t.With(),
	})
}

// ForEach runs fn(i) exactly once for every i in [0, n), using at most
// `workers` goroutines (resolved through Resolve). With an effective
// worker count of 1 — or n < 2 — it degenerates to a plain loop on the
// calling goroutine, making the serial path literally the same code a
// caller would have written by hand.
//
// Indices are handed out by an atomic counter, so scheduling order is
// nondeterministic; callers own determinism by writing only to
// index-addressed slots and reducing serially afterwards. A panic in fn
// is re-raised on the calling goroutine after all workers have drained
// (the first panic wins), preserving the synchronous panic semantics of
// the serial loop.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		account(false, n)
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Drain remaining indices so sibling workers
					// finish quickly and the panic surfaces.
					next.Store(int64(n))
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	account(true, n)
	if panicked != nil {
		panic(panicked)
	}
}

// account bumps the pool counters and their metrics mirror.
func account(parallel bool, n int) {
	tasks.Add(uint64(n))
	if parallel {
		parallelBatches.Add(1)
	} else {
		serialBatches.Add(1)
	}
	if c := instr.Load(); c != nil {
		c.tasks.Add(float64(n))
		if parallel {
			c.parallel.Inc()
		} else {
			c.serial.Inc()
		}
	}
}
