package par

import (
	"strings"
	"sync/atomic"
	"testing"

	"mpcdvfs/internal/metrics"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 128} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachIndexedSlotsMatchSerial(t *testing.T) {
	const n = 500
	want := make([]int, n)
	ForEach(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	ForEach(4, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: parallel %d != serial %d", i, got[i], want[i])
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
					t.Fatalf("workers=%d: unexpected panic value %v", workers, r)
				}
			}()
			ForEach(workers, 16, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestResolveAndDefault(t *testing.T) {
	defer SetDefault(0)
	if Resolve(3) != 3 {
		t.Fatal("Resolve must pass explicit counts through")
	}
	if Default() < 1 {
		t.Fatal("unpinned Default must be at least 1")
	}
	SetDefault(5)
	if Default() != 5 || Resolve(0) != 5 || Resolve(-2) != 5 {
		t.Fatalf("pinned default not honored: Default=%d", Default())
	}
	SetDefault(0)
	if Default() < 1 {
		t.Fatal("SetDefault(0) must restore the GOMAXPROCS default")
	}
}

func TestSnapshotAndInstrument(t *testing.T) {
	reg := metrics.New()
	Instrument(reg)
	defer instr.Store(nil)

	s0, p0, t0 := Snapshot()
	ForEach(1, 10, func(int) {})
	ForEach(4, 10, func(int) {})
	s1, p1, t1 := Snapshot()
	if s1 != s0+1 {
		t.Fatalf("serial batches: got %d, want %d", s1, s0+1)
	}
	if p1 != p0+1 {
		t.Fatalf("parallel batches: got %d, want %d", p1, p0+1)
	}
	if t1 != t0+20 {
		t.Fatalf("tasks: got %d, want %d", t1, t0+20)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mpcdvfs_par_batches_total{mode="serial"} 1`,
		`mpcdvfs_par_batches_total{mode="parallel"} 1`,
		`mpcdvfs_par_tasks_total 20`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
