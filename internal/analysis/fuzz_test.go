package analysis

import (
	"strings"
	"testing"
)

// FuzzSuppressionDirective drives arbitrary comment text through the
// //mpclint:ignore parser and pins its contract: it never panics, it
// never reports an error for text it does not claim as a directive,
// every accepted directive has a well-formed check name and a non-empty
// trimmed reason, and re-rendering an accepted directive in canonical
// form parses back to the same check and reason.
func FuzzSuppressionDirective(f *testing.F) {
	for _, seed := range []string{
		"//mpclint:ignore pooled-concurrency long-lived server goroutine",
		"//mpclint:ignore float-eq exact tie documented in DESIGN.md",
		"//mpclint:ignore\tdropped-error\tbest-effort cleanup",
		"//mpclint:ignore",
		"//mpclint:ignore determinism",
		"//mpclint:ignore BAD_NAME reason",
		"// mpclint:ignore determinism space before verb",
		"//mpclint:ignored determinism longer word",
		"// a comment mentioning mpclint:ignore in prose",
		"/* mpclint:ignore determinism block form */",
		"//",
		"",
		"//mpclint:ignore determinism  ",
		"//mpclint:ignore x y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		check, reason, ok, err := ParseDirective(text)
		if err != nil && !ok {
			t.Fatalf("error %v for text not claimed as a directive: %q", err, text)
		}
		if !ok || err != nil {
			return
		}
		if !checkNameRE.MatchString(check) {
			t.Fatalf("accepted invalid check name %q from %q", check, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed == "" || trimmed != reason {
			t.Fatalf("accepted untrimmed or empty reason %q from %q", reason, text)
		}
		canon := DirectivePrefix + " " + check + " " + reason
		c2, r2, ok2, err2 := ParseDirective(canon)
		if !ok2 || err2 != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err2)
		}
		norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
		if c2 != check || norm(r2) != norm(reason) {
			t.Fatalf("canonical round-trip changed directive: (%q,%q) -> (%q,%q)", check, reason, c2, r2)
		}
	})
}
