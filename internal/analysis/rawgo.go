package analysis

import (
	"go/ast"
	"regexp"
)

// pooledExemptRE matches the three packages allowed to start goroutines
// directly: internal/par owns the worker pool every fan-out must go
// through; internal/obs owns the asynchronous observer plumbing whose
// delivery is outside any determinism contract; and internal/serve owns
// the per-session owner goroutines of the decision service — long-lived
// singletons tied to session lifecycle (created on open, drained on
// close), not data-parallel fan-out, so par.ForEach's bounded-batch
// model does not fit them. Determinism within a session is preserved by
// single ownership, which the serve race/golden tests pin.
var pooledExemptRE = regexp.MustCompile(`(^|/)internal/(par|obs|serve)(/|$)`)

func init() {
	Register(&Check{
		Name: "pooled-concurrency",
		Doc:  "no raw go statements outside internal/par, internal/obs and internal/serve",
		Run:  runPooledConcurrency,
	})
}

func runPooledConcurrency(p *Pass) {
	if pooledExemptRE.MatchString(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "raw go statement outside internal/par: fan-out must use par.ForEach so worker counts, accounting and panic propagation stay uniform (long-lived service goroutines may suppress with a reason)")
			}
			return true
		})
	}
}
