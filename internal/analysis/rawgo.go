package analysis

import (
	"go/ast"
	"regexp"
)

// pooledExemptRE matches the two packages allowed to start goroutines
// directly: internal/par owns the worker pool every fan-out must go
// through, and internal/obs owns the asynchronous observer plumbing
// whose delivery is outside any determinism contract.
var pooledExemptRE = regexp.MustCompile(`(^|/)internal/(par|obs)(/|$)`)

func init() {
	Register(&Check{
		Name: "pooled-concurrency",
		Doc:  "no raw go statements outside internal/par and internal/obs",
		Run:  runPooledConcurrency,
	})
}

func runPooledConcurrency(p *Pass) {
	if pooledExemptRE.MatchString(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "raw go statement outside internal/par: fan-out must use par.ForEach so worker counts, accounting and panic propagation stay uniform (long-lived service goroutines may suppress with a reason)")
			}
			return true
		})
	}
}
