package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Check{
		Name:      "snapshot-mutation",
		Doc:       "types published through atomic.Pointer (and //mpclint:immutable types) are never written after construction",
		RunModule: runSnapshotMutation,
	})
}

// runSnapshotMutation enforces immutable-after-publish. The serving
// stack shares state lock-free by publishing pointers through
// atomic.Pointer[T]: readers hold a *T with no synchronization, so any
// write to a published value is a data race the type system cannot see.
// Every named module type that appears as an atomic.Pointer type
// argument anywhere in the module is therefore a sealed root, as is any
// type annotated //mpclint:immutable (the derived read-only pools, e.g.
// a compiled forest's node arrays, which are shared the same way but
// published indirectly). A field, element or slice write through a
// sealed type is flagged unless the enclosing function is one of the
// type's constructors — a function whose results include T or *T, which
// is exactly the builder that owns the value before publication.
//
// Writes through aliases (copy a field slice into a local, write the
// local) are out of scope; the golden replay and -race walls stay as
// the dynamic backstop for those.
func runSnapshotMutation(p *ModulePass) {
	roots := sealedRoots(p)
	if len(roots) == 0 {
		return
	}
	g := p.Graph
	for _, fn := range g.Funcs() {
		decl := g.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		info := g.PackageOf(fn).Info
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkSealedWrite(p, info, fn, roots, lhs)
				}
			case *ast.IncDecStmt:
				checkSealedWrite(p, info, fn, roots, n.X)
			}
			return true
		})
	}
}

// sealedRoots collects the module's immutable-after-publish type set:
// every named module type used as an atomic.Pointer type argument plus
// the //mpclint:immutable annotated ones. The map value records why the
// type is sealed, for the finding message.
func sealedRoots(p *ModulePass) map[*types.TypeName]string {
	roots := map[*types.TypeName]string{}
	modulePkgs := map[*types.Package]bool{}
	for _, pkg := range p.Pkgs {
		modulePkgs[pkg.Types] = true
	}
	for _, pkg := range p.Pkgs {
		for _, tv := range pkg.Info.Types {
			named, ok := tv.Type.(*types.Named)
			if !ok {
				continue
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
				continue
			}
			args := named.TypeArgs()
			if args.Len() != 1 {
				continue
			}
			if arg, ok := args.At(0).(*types.Named); ok {
				if tn := arg.Obj(); modulePkgs[tn.Pkg()] {
					roots[tn] = "published through atomic.Pointer"
				}
			}
		}
	}
	for tn, reason := range p.Ann.Immutable {
		roots[tn] = "annotated //mpclint:immutable (" + reason + ")"
	}
	return roots
}

// checkSealedWrite climbs a write's access path (selectors, indexing,
// dereferences) looking for a base value of a sealed type; one finding
// is reported at the outermost sealed hop.
func checkSealedWrite(p *ModulePass, info *types.Info, fn *types.Func, roots map[*types.TypeName]string, lhs ast.Expr) {
	for {
		lhs = ast.Unparen(lhs)
		var base ast.Expr
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		default:
			return
		}
		if tn := sealedTypeOf(info.TypeOf(base), roots); tn != nil {
			if !isConstructorOf(fn, tn) {
				p.Reportf(lhs.Pos(), "write to %s value outside its constructor: %s is immutable after publish (%s); build a new value and publish that instead",
					tn.Name(), tn.Name(), roots[tn])
			}
			return
		}
		lhs = base
	}
}

// sealedTypeOf unwraps t (one pointer level, named chains) to a sealed
// root type, or nil.
func sealedTypeOf(t types.Type, roots map[*types.TypeName]string) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, sealed := roots[named.Obj()]; sealed {
		return named.Obj()
	}
	return nil
}

// isConstructorOf reports whether fn's results include tn or *tn — the
// exemption that lets builders populate a value before it is published.
func isConstructorOf(fn *types.Func, tn *types.TypeName) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == tn {
			return true
		}
	}
	return false
}
