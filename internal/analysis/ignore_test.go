package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		check  string
		reason string
		ok     bool
		errHas string // "" means no error
	}{
		{name: "valid", text: "//mpclint:ignore float-eq exact tie-break documented in DESIGN.md",
			check: "float-eq", reason: "exact tie-break documented in DESIGN.md", ok: true},
		{name: "valid with tabs", text: "//mpclint:ignore\tpooled-concurrency\tserver goroutine",
			check: "pooled-concurrency", reason: "server goroutine", ok: true},
		{name: "plain comment", text: "// just a comment", ok: false},
		{name: "prose mention", text: "// suppressions use mpclint:ignore comments", ok: false},
		{name: "longer verb is a different word", text: "//mpclint:ignored float-eq reason", ok: false},
		{name: "space before verb", text: "// mpclint:ignore float-eq reason",
			ok: true, errHas: "no space between"},
		{name: "no check", text: "//mpclint:ignore",
			ok: true, errHas: "names no check"},
		{name: "no check trailing space", text: "//mpclint:ignore   ",
			ok: true, errHas: "names no check"},
		{name: "missing reason", text: "//mpclint:ignore float-eq",
			ok: true, errHas: "has no reason"},
		{name: "blank reason", text: "//mpclint:ignore float-eq \t ",
			ok: true, errHas: "has no reason"},
		{name: "invalid check name", text: "//mpclint:ignore Float_EQ some reason",
			ok: true, errHas: "invalid check name"},
		{name: "block comment", text: "/* mpclint:ignore float-eq reason */",
			ok: true, errHas: "line comment"},
		{name: "block comment prose", text: "/* docs may mention mpclint:ignore freely */", ok: false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			check, reason, ok, err := ParseDirective(c.text)
			if ok != c.ok {
				t.Fatalf("ok = %v, want %v (err %v)", ok, c.ok, err)
			}
			if c.errHas == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), c.errHas) {
					t.Fatalf("error = %v, want containing %q", err, c.errHas)
				}
				return
			}
			if !ok {
				return
			}
			if check != c.check || reason != c.reason {
				t.Fatalf("parsed (%q, %q), want (%q, %q)", check, reason, c.check, c.reason)
			}
		})
	}
}

// TestSuppressLineAnchoring pins the anchoring contract directly: a
// directive covers its own line and the next, in its own file, for its
// own check only — and directive diagnostics are unsuppressable.
func TestSuppressLineAnchoring(t *testing.T) {
	diag := func(file string, line int, check string) Diagnostic {
		return Diagnostic{Position: token.Position{Filename: file, Line: line}, Check: check, Message: "m"}
	}
	dirs := []Directive{{Check: "float-eq", Reason: "r", File: "a.go", Line: 10}}
	cases := []struct {
		name       string
		d          Diagnostic
		suppressed bool
	}{
		{"same line", diag("a.go", 10, "float-eq"), true},
		{"next line", diag("a.go", 11, "float-eq"), true},
		{"two lines below", diag("a.go", 12, "float-eq"), false},
		{"line above", diag("a.go", 9, "float-eq"), false},
		{"other check", diag("a.go", 10, "map-order"), false},
		{"other file", diag("b.go", 10, "float-eq"), false},
		{"directive diagnostic", diag("a.go", 10, DirectiveCheck), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Suppress([]Diagnostic{c.d}, dirs)
			if suppressed := len(got) == 0; suppressed != c.suppressed {
				t.Errorf("suppressed = %v, want %v", suppressed, c.suppressed)
			}
		})
	}
}

// TestIgnoreFixture runs the pooled-concurrency check over the mixed
// suppression fixture: the harness asserts that correctly anchored
// directives silence their finding and everything else survives,
// including the diagnostics for the malformed and unknown-check
// directives themselves.
func TestIgnoreFixture(t *testing.T) {
	diags := lintFixture(t, "pooled-concurrency", filepath.Join("ignore", "mixed"))
	if len(diags) == 0 {
		t.Fatal("ignore fixture produced no diagnostics")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src", "ignore", "mixed"))
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, diags, collectWants(t, root))
}
