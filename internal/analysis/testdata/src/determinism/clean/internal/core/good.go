// Package core shows the allowed forms inside a decision path: an
// explicitly seeded rand.Rand, methods on it, and a select that cannot
// race because it has a single channel case.
package core

import "math/rand"

func Decide(seed int64, ch chan int) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are deterministic given the seed
	x := rng.Float64()                    // method on a seeded *rand.Rand, not the global source
	select {
	case v := <-ch:
		x += float64(v)
	default:
	}
	return x
}
