// Package app is outside the decision-path set, where measuring wall
// time and using ambient randomness is legitimate (harnesses, CLIs).
package app

import (
	"math/rand"
	"time"
)

func Elapsed() time.Duration {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start)
}
