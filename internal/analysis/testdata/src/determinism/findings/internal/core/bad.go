// Package core is a decision-path package (import path matches
// internal/core), so wall-clock reads, global randomness and racing
// selects are findings.
package core

import (
	"math/rand"
	"time"
)

func Decide(ch1, ch2 chan int) float64 {
	start := time.Now()                // want `time\.Now reads the wall clock`
	_ = time.Since(start)              // want `time\.Since reads the wall clock`
	x := rand.Float64()                // want `rand\.Float64 draws from the process-global random source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global random source`
	select {                           // want `select with 2 channel cases chooses pseudo-randomly`
	case v := <-ch1:
		x += float64(v)
	case v := <-ch2:
		x -= float64(v)
	}
	return x
}
