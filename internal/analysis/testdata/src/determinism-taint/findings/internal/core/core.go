// Package core is a decision-path package (import path matches
// internal/core) that contains no direct sink at all: no time or
// math/rand import and no select statement. Every leak below is
// transitive — routed through a helper package, an interface, or a
// function value — which is exactly what a direct-call check misses.
package core

import (
	"fix/clockutil"
	"fix/randutil"
	"fix/waiter"
)

// Clock abstracts a time source; the module's only implementation
// (hwclock.WallClock) reads the wall clock.
type Clock interface {
	NowMS() float64
}

// Decide leaks the wall clock through a helper package.
func Decide(budget float64) float64 {
	return budget - clockutil.ElapsedMS() // want `call chain reaches the wall clock: core\.Decide → clockutil\.ElapsedMS → time\.Now \(wall-clock read at clockutil\.go:\d+\)`
}

// Jitter leaks the global random source through a helper package.
func Jitter(x float64) float64 {
	return x * randutil.Draw() // want `call chain reaches the process-global random source: core\.Jitter → randutil\.Draw → rand\.Float64 \(global random draw at randutil\.go:\d+\)`
}

// Elapsed leaks the wall clock through interface dispatch.
func Elapsed(c Clock, start float64) float64 {
	return c.NowMS() - start // want `interface call \(may-target\) reaches the wall clock: core\.Elapsed → hwclock\.WallClock\.NowMS → time\.Now`
}

// Sampler leaks the global random source as a function value.
func Sampler() func() float64 {
	return randutil.Draw // want `function-value reference reaches the process-global random source: core\.Sampler → randutil\.Draw → rand\.Float64`
}

// Pick leaks scheduler nondeterminism through a helper's select.
func Pick(a, b chan int) int {
	return waiter.First(a, b) // want `call chain reaches scheduler nondeterminism: core\.Pick → waiter\.First \(select with 2 channel cases at waiter\.go:\d+\); decision paths must not branch on scheduler nondeterminism`
}
