// Package hwclock is the module's only implementation of the core
// Clock interface — and it reads the machine clock, so every interface
// call site in a decision path is a may-target leak.
package hwclock

import "time"

// WallClock reads the machine clock.
type WallClock struct{}

// NowMS returns the current wall-clock time in milliseconds.
func (WallClock) NowMS() float64 {
	return float64(time.Now().UnixNano()) / 1e6
}
