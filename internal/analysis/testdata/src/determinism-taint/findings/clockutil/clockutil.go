// Package clockutil wraps the wall clock — legitimate on its own, a
// determinism leak the moment a decision path can reach it.
package clockutil

import "time"

// ElapsedMS measures a wall-clock interval.
func ElapsedMS() float64 {
	start := time.Now()
	return float64(time.Since(start)) / 1e6
}
