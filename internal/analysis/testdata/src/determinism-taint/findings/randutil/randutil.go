// Package randutil wraps the process-global random source.
package randutil

import "math/rand"

// Draw returns one draw from the shared global generator.
func Draw() float64 {
	return rand.Float64()
}
