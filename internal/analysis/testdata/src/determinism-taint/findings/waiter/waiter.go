// Package waiter multiplexes two channels; with both ready, its select
// chooses pseudo-randomly.
package waiter

// First returns whichever channel delivers first.
func First(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
