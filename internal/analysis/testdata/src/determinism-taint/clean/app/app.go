// Package app is outside the decision-path set: harness code may read
// the clock and the global random source directly or through helpers.
package app

import (
	"math/rand"
	"time"
)

// Elapsed measures wall time — fine outside the wall.
func Elapsed() time.Duration {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start)
}
