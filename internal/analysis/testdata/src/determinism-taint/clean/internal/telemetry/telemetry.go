// Package telemetry matches the sanctioned instrumentation set: it may
// read the wall clock, and taint stops at its boundary — callers in
// decision paths are not flagged for calling in.
package telemetry

import "time"

var totalNS int64

// Start marks the beginning of a measured region.
func Start() time.Time { return time.Now() }

// Observe accumulates the wall-clock duration of a measured region.
func Observe(start time.Time) {
	totalNS += int64(time.Since(start))
}
