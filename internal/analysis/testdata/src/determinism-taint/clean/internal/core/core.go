// Package core shows the allowed decision-path forms: explicitly
// seeded randomness, a single-case select (no scheduler race), and
// instrumentation through the sanctioned telemetry boundary.
package core

import (
	"math/rand"

	"fix/internal/telemetry"
)

// Decide draws from a caller-seeded generator and times itself only
// through the sanctioned instrumentation package.
func Decide(seed int64, ch chan int) float64 {
	start := telemetry.Start()
	rng := rand.New(rand.NewSource(seed)) // constructors are deterministic given the seed
	x := rng.Float64()                    // method on a seeded *rand.Rand, not the global source
	select {
	case v := <-ch: // a single communication case cannot race
		x += float64(v)
	default:
	}
	telemetry.Observe(start)
	return x
}
