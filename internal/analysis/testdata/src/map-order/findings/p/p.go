package p

import (
	"fmt"
	"io"
)

// Keys leaks iteration order into the returned slice (never sorted).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends in iteration order`
		out = append(out, k)
	}
	return out
}

// Argmin breaks ties by whichever key the runtime yields first.
func Argmin(m map[string]float64) string {
	best := ""
	bestV := 0.0
	first := true
	for k, v := range m { // want `aggregates a min/max under a relational test`
		if first || v < bestV {
			best, bestV, first = k, v, false
		}
	}
	return best
}

// Dump renders entries in nondeterministic order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes output in iteration order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Fill writes slice slots in iteration order.
func Fill(dst []string, m map[int]string) {
	i := 0
	for _, v := range m { // want `assigns slice elements in iteration order`
		dst[i] = v
		i++
	}
}
