package p

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys is the blessed collect-then-sort pattern: the append runs
// in map order, but the sort erases it before the slice escapes.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Argmin iterates the sorted key slice, so ties deterministically go to
// the smallest key.
func Argmin(m map[string]float64) string {
	best := ""
	bestV := 0.0
	first := true
	for _, k := range SortedKeys2(m) {
		if v := m[k]; first || v < bestV {
			best, bestV, first = k, v, false
		}
	}
	return best
}

// SortedKeys2 shows sort.Slice also counting as a sort.
func SortedKeys2(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Dump writes in sorted-key order.
func Dump(w io.Writer, m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Sum is a commutative aggregate: iteration order cannot change the
// result, so reading the map directly stays allowed.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes to another map — order-independent.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
