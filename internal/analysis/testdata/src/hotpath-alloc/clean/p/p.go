// Package p shows the forms a //mpclint:hotpath function may use:
// stack values, allowlisted stdlib calls, clean module helpers, other
// annotated functions, and panic messages (the failure path may
// allocate).
package p

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

type state struct {
	mu   sync.Mutex
	hits atomic.Uint64
	pool sync.Pool
}

// scale is a clean module helper: hot paths may call it freely because
// the proof follows static calls into the module.
func scale(x float64) float64 {
	return math.Sqrt(x) * 2
}

// NewState is not annotated, so it allocates freely.
func NewState() *state {
	return &state{}
}

//mpclint:hotpath proven by the fixture's AllocsPerRun pin
func Inner(s *state, x float64) float64 {
	var buf [8]float64 // an array value lives on the stack
	for i := range buf {
		buf[i] = scale(x)
	}
	s.hits.Add(1)
	return buf[0]
}

// Outer calls another annotated function: trusted, since Inner is
// proven under its own annotation. The panic argument subtree is
// exempt — the failure path is allowed to build its message.
//
//mpclint:hotpath proven by the fixture's AllocsPerRun pin
func Outer(s *state, x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x < 0 {
		panic(fmt.Sprintf("p: negative input %v", x))
	}
	return Inner(s, x)
}

//mpclint:hotpath proven by the fixture's AllocsPerRun pin
func Pooled(s *state) float64 {
	v, _ := s.pool.Get().(*[16]float64)
	if v == nil {
		panic("p: empty pool")
	}
	x := v[0]
	s.pool.Put(v)
	return x
}
