// Package p exercises every allocation-site class hotpath-alloc proves
// absent from //mpclint:hotpath functions: intrinsic sites, boxing,
// unprovable callees, and transitive chains through module helpers.
package p

import "strings"

type pair struct{ a, b int }

type boxer interface{}

type writer interface {
	Write(p []byte) (int, error)
}

// sum is variadic: calling it without a spread builds the argument
// slice.
func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// sink boxes its concrete arguments into an interface parameter.
func sink(v boxer) boxer { return v }

// leaf allocates; mid is locally clean but calls it, so a hot path
// calling mid inherits the allocation transitively.
func leaf(n int) []int {
	return make([]int, n)
}

func mid(n int) []int {
	return leaf(n)
}

// spin is allocation-free; only the go statement launching it is a
// site.
func spin() {}

//mpclint:hotpath exercised under a findings-fixture pin
func Intrinsics(n int, m map[string]int, s string) int {
	buf := make([]float64, n) // want `make allocates in //mpclint:hotpath function p\.Intrinsics; the zero-alloc pin forbids allocation sites`
	pr := new(pair)           // want `new allocates in //mpclint:hotpath function p\.Intrinsics`
	xs := []int{1, 2, 3}      // want `slice literal allocates its backing array`
	xs = append(xs, n)        // want `append may grow its backing array`
	q := &pair{a: n}          // want `composite literal escapes to the heap \(&T\{\.\.\.\}\)`
	m[s] = n                  // want `map assignment may grow the map`
	s2 := s + "!"             // want `string concatenation allocates`
	_ = len(buf) + pr.a + q.a + len(s2) + len(xs)
	return sum(1, 2, 3) // want `variadic call allocates its argument slice`
}

//mpclint:hotpath exercised under a findings-fixture pin
func Spawn(n int) int {
	f := func() int { return n } // want `closure captures variables and allocates`
	go spin()                    // want `go statement spawns a goroutine`
	return f()                   // want `dynamic call through a function value cannot be proven allocation-free`
}

//mpclint:hotpath exercised under a findings-fixture pin
func Boxes(n int, w writer, b []byte, s string) int {
	_ = boxer(n)                         // want `conversion boxes a non-pointer value into an interface`
	_ = sink(pair{a: n})                 // want `argument boxed into interface parameter`
	_ = []byte(s)                        // want `string-to-slice conversion allocates`
	_ = string(b)                        // want `slice-to-string conversion allocates`
	k, _ := w.Write(b)                   // want `interface call p\.writer\.Write dispatches dynamically and cannot be proven allocation-free`
	return k + len(strings.TrimSpace(s)) // want `call to strings\.TrimSpace is outside the module and not on the allocation-free allowlist`
}

//mpclint:hotpath exercised under a findings-fixture pin
func Transitive(n int) int {
	return len(mid(n)) // want `call may allocate in //mpclint:hotpath function p\.Transitive: p\.Transitive → p\.mid → p\.leaf \(make allocates at p\.go:\d+\); the zero-alloc pin extends to everything the hot path calls`
}
