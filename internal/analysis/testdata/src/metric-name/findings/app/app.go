package app

import "fix/internal/metrics"

func register(reg *metrics.Registry, suffix string) {
	reg.Counter("requests_total", "missing prefix") // want `metric name "requests_total" violates the naming contract`
	reg.Gauge("mpcdvfs_Bad_Case", "uppercase")      // want `metric name "mpcdvfs_Bad_Case" violates the naming contract`
	reg.Histogram("mpcdvfs-dashes", "dashes", nil)  // want `metric name "mpcdvfs-dashes" violates the naming contract`
	reg.Counter("mpcdvfs_"+suffix, "computed")      // want `not a compile-time constant`
}
