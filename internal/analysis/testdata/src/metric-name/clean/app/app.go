package app

import "fix/internal/metrics"

const batches = "mpcdvfs_batches_total"

// register uses literal (or constant) names carrying the mpcdvfs_
// prefix; a same-named method on an unrelated type is not a
// registration.
func register(reg *metrics.Registry, db *store) {
	reg.Counter(batches, "constants are checkable too")
	reg.Gauge("mpcdvfs_queue_depth", "literal")
	reg.Histogram("mpcdvfs_latency_ms", "literal", []float64{1, 5, 10})
	db.Counter("anything goes", "not the metrics registry")
}

type store struct{}

func (s *store) Counter(name, help string) {}
