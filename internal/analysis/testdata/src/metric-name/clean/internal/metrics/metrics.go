// Package metrics mirrors the real registry's registration surface so
// the receiver-type matching in the metric-name check is exercised.
package metrics

type Registry struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string, labels ...string) *CounterVec { return nil }
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec     { return nil }
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}
