// Package app exercises suppression anchoring end-to-end against the
// pooled-concurrency check: trailing and own-line directives suppress,
// everything else — wrong line, wrong check, malformed form — does not.
package app

func spawn(f func()) {
	go f() //mpclint:ignore pooled-concurrency long-lived service goroutine, not fan-out work

	//mpclint:ignore pooled-concurrency own-line directive anchors to the next line
	go f()

	//mpclint:ignore pooled-concurrency two lines above the violation, so it must NOT suppress

	go f() // want `raw go statement outside internal/par`

	//mpclint:ignore float-eq wrong check, must not suppress pooled-concurrency
	go f() // want `raw go statement outside internal/par`
}

func spawnMore(f func()) {
	go f() // want `raw go statement outside internal/par`

	// mpclint:ignore pooled-concurrency the accidental space makes this malformed // want `malformed directive`
	go f() // want `raw go statement outside internal/par`

	//mpclint:ignore no-such-check a reason cannot rescue an unknown check name // want `unknown check`
	go f() // want `raw go statement outside internal/par`
}
