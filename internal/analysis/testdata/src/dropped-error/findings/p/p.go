package p

func work() error { return nil }

func run() {
	work()       // want `error result of fix/p\.work is silently discarded`
	defer work() // want `deferred error result of fix/p\.work is silently discarded`
}

type closer struct{}

func (c *closer) Close() error { return nil }

func cleanup(c *closer) {
	defer c.Close() // want `deferred error result of \(\*fix/p\.closer\)\.Close is silently discarded`
	c.Close()       // want `error result of \(\*fix/p\.closer\)\.Close is silently discarded`
}
