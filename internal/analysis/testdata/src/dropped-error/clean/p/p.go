package p

import (
	"bytes"
	"fmt"
	"strings"
)

func work() error { return nil }

func run() error {
	if err := work(); err != nil {
		return err
	}
	_ = work() // explicit discard is visible intent
	var sb strings.Builder
	sb.WriteString("exempt: never fails")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Println("exempt: stdout print family")
	fmt.Fprintf(&buf, "exempt: %s", "fmt family")
	defer func() {
		if err := work(); err != nil {
			fmt.Println("cleanup failed:", err)
		}
	}()
	return nil
}
