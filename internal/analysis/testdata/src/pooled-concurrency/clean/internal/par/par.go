// Package par is the worker pool: the one fan-out site allowed to
// start goroutines directly.
package par

import "sync"

func ForEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
