// Package obs owns asynchronous observer delivery, the second exempt
// package.
package obs

func Stream(events <-chan int, sink func(int)) {
	go func() {
		for e := range events {
			sink(e)
		}
	}()
}
