package app

import "fix/internal/par"

// Fan routes its fan-out through the pool instead of raw goroutines.
func Fan(jobs []func()) {
	par.ForEach(len(jobs), func(i int) { jobs[i]() })
}
