package app

import "sync"

// Fan spawns raw goroutines for fan-out work that belongs in
// par.ForEach.
func Fan(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j func()) { // want `raw go statement outside internal/par`
			defer wg.Done()
			j()
		}(j)
	}
	wg.Wait()
}

// Fire spawns a naked goroutine.
func Fire(f func()) {
	go f() // want `raw go statement outside internal/par`
}
