package p

type reading struct{ watts float64 }

// Same compares measured floats bit-exactly outside any helper.
func Same(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

// Changed uses != on a float field.
func Changed(r reading, prev float64) bool {
	return r.watts != prev // want `!= on floating-point operands`
}

// TieBreak hides the comparison inside an expression.
func TieBreak(e, bestE float64, i, bestI int) int {
	if e == bestE && i < bestI { // want `== on floating-point operands`
		return i
	}
	return bestI
}

// NonZeroSentinel compares against a non-zero constant: still flagged —
// only the exact-zero sentinel is exempt.
func NonZeroSentinel(x float64) bool {
	return x == 0.3 // want `== on floating-point operands`
}
