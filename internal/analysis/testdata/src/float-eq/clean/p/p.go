package p

import "math"

const eps = 1e-9

// approxEqual is an approved epsilon helper (name matches the approved
// comparator pattern), so its internal exact comparison is allowed.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}

// Unset uses the exact-zero sentinel, the one deliberate bit-exact
// comparison.
func Unset(throughput float64) bool {
	return throughput == 0
}

// Close routes a tolerance decision through the helper.
func Close(a, b float64) bool {
	return approxEqual(a, b)
}

// Ints compares integers — not the check's business.
func Ints(a, b int) bool {
	return a == b
}

// Ordered tests don't need epsilons.
func Ordered(e, bestE float64) bool {
	return e < bestE
}
