// Package app exercises every call-graph edge kind: static calls,
// concrete-receiver methods, interface dispatch expanded by CHA,
// function-value references, dynamic calls, a recursion cycle, and a
// multi-case select fact.
package app

type Greeter interface {
	Greet() string
}

type Dog struct{}

func (Dog) Greet() string { return "woof" }

type Cat struct{}

func (*Cat) Greet() string { return "meow" }

// Hello dispatches through the interface: CHA expands it to every
// concrete implementation in the module.
func Hello(g Greeter) string { return g.Greet() }

// Direct calls a method through a concrete receiver: exact.
func Direct() string {
	var d Dog
	return d.Greet()
}

// Ref takes a reference to Direct without calling it.
func Ref() func() string {
	return Direct
}

// Even and Odd form a recursion cycle; Odd also reaches Direct.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return Direct() == "woof"
	}
	return Even(n - 1)
}

// Dyn calls a function value: unresolvable, a dynamic-call fact.
func Dyn(f func() int) int { return f() }

// Waits contains a two-case select: a node-level fact.
func Waits(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
