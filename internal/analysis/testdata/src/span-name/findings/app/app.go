package app

import (
	"time"

	"fix/internal/telemetry"
)

func trace(tc *telemetry.Context, phase string) {
	root := tc.StartRoot("decide", 0)           // want `span name "decide" violates the naming contract`
	sp := tc.Start("mpcdvfs_Search")            // want `span name "mpcdvfs_Search" violates the naming contract`
	tc.RecordSince("mpcdvfs-queue", time.Now()) // want `span name "mpcdvfs-queue" violates the naming contract`
	t0 := tc.StartPhase()
	tc.EndPhase("mpcdvfs_"+phase, t0) // want `not a compile-time constant`
	sp.End()
	root.End()
}
