// Package telemetry mirrors the real trace context's span-minting
// surface so the receiver-type matching in the span-name check is
// exercised.
package telemetry

import "time"

type Context struct{}
type Span struct{}

func (c *Context) StartRoot(name string, index int) Span    { return Span{} }
func (c *Context) Start(name string) Span                   { return Span{} }
func (c *Context) RecordSince(name string, start time.Time) {}
func (c *Context) StartPhase() time.Time                    { return time.Time{} }
func (c *Context) EndPhase(name string, t0 time.Time)       {}
func (s Span) End()                                         {}
