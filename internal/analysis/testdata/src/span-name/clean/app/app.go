package app

import (
	"time"

	"fix/internal/telemetry"
)

// trace uses the exported Span* constants (or conforming literals); a
// same-named method on an unrelated type is not a span mint.
func trace(tc *telemetry.Context, log *logger) {
	root := tc.StartRoot(telemetry.SpanDecide, 0)
	sp := tc.Start(telemetry.SpanSearch)
	tc.RecordSince("mpcdvfs_queue", time.Now())
	t0 := tc.StartPhase()
	tc.EndPhase("mpcdvfs_forest_eval", t0)
	sp.End()
	root.End()
	log.Start("anything goes: not the trace context")
}

type logger struct{}

func (l *logger) Start(name string) {}
