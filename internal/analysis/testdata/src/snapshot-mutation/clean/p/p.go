// Package p shows the approved copy-on-write discipline around an
// atomic.Pointer publication: values are only written inside
// constructors; evolution builds a new value and publishes that.
package p

import "sync/atomic"

// Snapshot is published lock-free.
type Snapshot struct {
	Gen int
	Xs  []float64
}

var current atomic.Pointer[Snapshot]

// NewSnapshot builds and populates a fresh value.
func NewSnapshot(gen, n int) *Snapshot {
	s := &Snapshot{Gen: gen, Xs: make([]float64, n)}
	for i := range s.Xs {
		s.Xs[i] = float64(gen)
	}
	return s
}

// Evolve derives the next generation without touching the published
// value: it returns *Snapshot, so it is itself a constructor of the
// value it builds.
func Evolve() *Snapshot {
	old := current.Load()
	next := &Snapshot{Gen: old.Gen, Xs: make([]float64, len(old.Xs))}
	copy(next.Xs, old.Xs)
	next.Gen++
	return next
}

// Publish installs a snapshot.
func Publish(s *Snapshot) { current.Store(s) }

// Reader consumes the published value without writing it.
func Reader() float64 {
	s := current.Load()
	if s == nil || len(s.Xs) == 0 {
		return 0
	}
	return s.Xs[0] * float64(s.Gen)
}

// scratch is never published and carries no annotation: it is mutated
// freely.
type scratch struct{ n int }

func bump(s *scratch) { s.n++ }
