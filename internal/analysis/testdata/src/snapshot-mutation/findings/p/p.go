// Package p publishes Snapshot through atomic.Pointer and marks Table
// //mpclint:immutable: any write outside a constructor is a data race
// against lock-free readers, and a finding.
package p

import "sync/atomic"

// Snapshot is published lock-free: readers hold a *Snapshot with no
// synchronization.
type Snapshot struct {
	Gen int
	Xs  []float64
}

var current atomic.Pointer[Snapshot]

// NewSnapshot is a constructor — it returns *Snapshot — so it may
// populate the value before publication.
func NewSnapshot(gen, n int) *Snapshot {
	s := &Snapshot{Gen: gen}
	s.Xs = make([]float64, n)
	for i := range s.Xs {
		s.Xs[i] = float64(gen)
	}
	return s
}

// Publish installs a snapshot.
func Publish(s *Snapshot) {
	current.Store(s)
}

// Bump mutates the published snapshot in place.
func Bump() {
	s := current.Load()
	s.Gen++ // want `write to Snapshot value outside its constructor: Snapshot is immutable after publish \(published through atomic\.Pointer\); build a new value and publish that instead`
}

// Patch writes through a field of the published snapshot.
func Patch(v float64) {
	current.Load().Xs[0] = v // want `write to Snapshot value outside its constructor`
}

// Retag takes a snapshot that may already be published and writes it.
func Retag(s *Snapshot, gen int) {
	s.Gen = gen // want `write to Snapshot value outside its constructor`
}

// Table is a derived read-only pool shared by concurrent readers, but
// published indirectly — only the annotation seals it.
//
//mpclint:immutable shared read-only by concurrent readers after Build
type Table struct {
	Vals []float64
}

// Build is Table's constructor.
func Build(n int) *Table {
	t := &Table{Vals: make([]float64, n)}
	for i := range t.Vals {
		t.Vals[i] = 1
	}
	return t
}

// Poke mutates a built table.
func Poke(t *Table, v float64) {
	t.Vals[0] = v // want `write to Table value outside its constructor: Table is immutable after publish \(annotated //mpclint:immutable \(shared read-only by concurrent readers after Build\)\)`
}
