package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Check{
		Name: "dropped-error",
		Doc:  "no silently discarded error results on non-exempt calls",
		Run:  runDroppedError,
	})
}

// droppedErrExempt lists callees (by types.Func.FullName) whose error
// result is conventionally unactionable in this repository: the fmt
// print family (stdout/stderr and in-memory buffers) and the
// never-failing Write methods of strings.Builder and bytes.Buffer.
// An explicit `_ =` assignment is always accepted — the check targets
// silent drops, not visible, deliberate ones.
var droppedErrExempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,

	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,

	// bufio.Writer latches its first error and turns every later write
	// into a no-op, so the idiomatic single Flush-error check at the end
	// of the write sequence observes everything; Flush itself stays
	// checked.
	"(*bufio.Writer).Write":       true,
	"(*bufio.Writer).WriteString": true,
	"(*bufio.Writer).WriteByte":   true,
	"(*bufio.Writer).WriteRune":   true,
}

func runDroppedError(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					flagDroppedErr(p, call, "")
				}
			case *ast.DeferStmt:
				flagDroppedErr(p, n.Call, "deferred ")
			case *ast.GoStmt:
				flagDroppedErr(p, n.Call, "spawned ")
			}
			return true
		})
	}
}

// flagDroppedErr reports call if it returns an error that the statement
// form necessarily discards.
func flagDroppedErr(p *Pass, call *ast.CallExpr, how string) {
	t := p.TypeOf(call)
	if t == nil || !returnsError(t) {
		return
	}
	fn := calleeFunc(p, call)
	name := "call"
	if fn != nil {
		if droppedErrExempt[fn.FullName()] {
			return
		}
		name = fn.FullName()
	}
	p.Reportf(call.Pos(), "%serror result of %s is silently discarded; handle it, log it, or discard visibly with _ =", how, name)
}

// returnsError reports whether a call result type contains an error.
func returnsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}
