package analysis

import "testing"

func TestSpanName(t *testing.T) { testCheck(t, "span-name") }
