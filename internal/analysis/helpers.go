package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (a conversion, a
// builtin, a called function value of unknown origin).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBuiltin reports whether a call invokes the named Go builtin
// (append, len, ...).
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isFloat reports whether t is a floating-point type (after unwrapping
// named types).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exactZero reports whether e is a compile-time constant equal to
// exactly zero — the one float value a bit-exact comparison against is
// deliberate (an unset-sentinel test), not an arithmetic one.
func exactZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// namedReceiver unwraps the receiver type of a method selector down to
// its named type, dereferencing one pointer level.
func namedReceiver(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// declaredOutside reports whether obj was declared outside the source
// range [from, to] — i.e. the identifier refers to state that outlives
// the statement under inspection.
func declaredOutside(obj types.Object, from, to ast.Node) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos < from.Pos() || pos > to.End()
}
