package analysis

import "testing"

func TestMetricName(t *testing.T) { testCheck(t, "metric-name") }
