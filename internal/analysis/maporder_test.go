package analysis

import "testing"

func TestMapOrder(t *testing.T) { testCheck(t, "map-order") }
