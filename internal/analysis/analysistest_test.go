package analysis

// The golden fixture harness: every check gets a findings fixture and a
// clean fixture under testdata/src/<check>/{findings,clean}, each a
// tiny self-contained module (its own go.mod) so package import paths —
// which several checks scope on — are under the fixture's control.
//
// Expected findings are written as trailing comments on the offending
// line:
//
//	out = append(out, k) // want `appends in iteration order`
//
// Each backquoted segment is a regexp; the diagnostics on a line must
// match the wants on that line one-to-one.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// lintFixture runs exactly one check over the fixture module at
// testdata/src/<dir>.
func lintFixture(t *testing.T, checkName, dir string) []Diagnostic {
	t.Helper()
	c, ok := Lookup(checkName)
	if !ok {
		t.Fatalf("no registered check %q", checkName)
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := LintModule(root, []*Check{c})
	if err != nil {
		t.Fatalf("linting fixture %s: %v", dir, err)
	}
	return diags
}

var wantLineRE = regexp.MustCompile(`// want (.*)$`)
var wantPatRE = regexp.MustCompile("`([^`]+)`")

type wantKey struct {
	file string
	line int
}

// collectWants scans every .go file under root for // want comments.
func collectWants(t *testing.T, root string) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := wantKey{path, i + 1}
			for _, pat := range wantPatRE.FindAllStringSubmatch(m[1], -1) {
				wants[k] = append(wants[k], pat[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// matchWants verifies diagnostics against want comments one-to-one.
func matchWants(t *testing.T, diags []Diagnostic, wants map[wantKey][]string) {
	t.Helper()
	unmatched := map[wantKey][]string{}
	for k, v := range wants {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, d := range diags {
		k := wantKey{d.File, d.Line}
		pats := unmatched[k]
		hit := -1
		for i, pat := range pats {
			if regexp.MustCompile(pat).MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		unmatched[k] = append(pats[:hit], pats[hit+1:]...)
	}
	for k, pats := range unmatched {
		for _, pat := range pats {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
		}
	}
}

// testCheck is the golden pair every check's test file calls: the
// findings fixture must produce exactly its want-annotated diagnostics
// (and at least one), the clean fixture must produce none.
func testCheck(t *testing.T, checkName string) {
	t.Run("findings", func(t *testing.T) {
		dir := filepath.Join(checkName, "findings")
		diags := lintFixture(t, checkName, dir)
		if len(diags) == 0 {
			t.Fatalf("findings fixture for %s produced no diagnostics", checkName)
		}
		root, _ := filepath.Abs(filepath.Join("testdata", "src", dir))
		matchWants(t, diags, collectWants(t, root))
	})
	t.Run("clean", func(t *testing.T) {
		diags := lintFixture(t, checkName, filepath.Join(checkName, "clean"))
		for _, d := range diags {
			t.Errorf("clean fixture for %s produced diagnostic: %s", checkName, d)
		}
	})
}
