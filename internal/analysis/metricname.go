package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// metricNameRE is the repository's metric-naming contract: every series
// the runtime exports carries the mpcdvfs_ prefix so dashboards and
// alerts can select the whole subsystem with one matcher.
var metricNameRE = regexp.MustCompile(`^mpcdvfs_[a-z0-9_]+$`)

// registrarMethods are the metrics.Registry methods that mint a new
// series from their first (name) argument.
var registrarMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func init() {
	Register(&Check{
		Name: "metric-name",
		Doc:  "metric registrations must use literal names matching ^mpcdvfs_[a-z0-9_]+$",
		Run:  runMetricName,
	})
}

func runMetricName(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registrarMethods[sel.Sel.Name] {
				return true
			}
			recv := p.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			named := namedReceiver(recv)
			if named == nil || named.Obj().Name() != "Registry" ||
				named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/metrics") {
				return true
			}
			tv, ok := p.Pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s is not a compile-time constant; use a literal so the mpcdvfs_ naming contract is checkable", sel.Sel.Name)
				return true
			}
			if name := constant.StringVal(tv.Value); !metricNameRE.MatchString(name) {
				p.Reportf(call.Args[0].Pos(), "metric name %q violates the naming contract %s", name, metricNameRE)
			}
			return true
		})
	}
}
