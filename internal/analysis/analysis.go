// Package analysis is mpclint's from-scratch static-analysis
// framework: a stdlib-only (go/ast, go/parser, go/types, go/importer)
// pluggable analyzer registry plus the module loader and suppression
// machinery the cmd/mpclint driver is built on.
//
// The runtime invariants this repository proves dynamically — no
// wall-clock or global randomness in decision paths, no map iteration
// order leaking into results, all goroutine fan-out through
// internal/par, mpcdvfs_-prefixed metric names — are enforced here as
// compile-time properties: every check inspects the type-checked AST,
// so a violation is reported before the code ever runs.
//
// A check is a named Check value registered with Register; the driver
// runs every selected check over every package of the module (each
// package is parsed and type-checked exactly once, see Loader) and
// collects Diagnostics. Findings can be suppressed one line at a time
// with
//
//	//mpclint:ignore <check-name> <reason>
//
// directives (see ignore.go); a suppression without a reason is itself
// a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Check inspects one type-checked package and reports findings. Name
// is the stable kebab-case identifier used in diagnostics, the -checks
// flag and ignore directives.
type Check struct {
	Name string
	Doc  string // one-line description shown by mpclint -list
	Run  func(*Pass)
}

// Pass carries everything a single check needs to analyze a single
// package, and receives its findings.
type Pass struct {
	Check *Check
	Pkg   *Package

	diags *[]Diagnostic
}

// Reportf records a finding of the pass's check at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Pkg.Fset.Position(pos),
		Check:    p.Check.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding: a position, the check that produced it and
// a human-readable message.
type Diagnostic struct {
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Check    string         `json:"check"`
	Message  string         `json:"message"`
}

// String renders the driver's text output form:
// file:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// fill copies the token.Position into the JSON-visible fields.
func (d *Diagnostic) fill() {
	d.File, d.Line, d.Col = d.Position.Filename, d.Position.Line, d.Position.Column
}

// The process-wide check registry. Checks register themselves from
// init functions in their own files; the registry is read-only after
// init, so no locking is needed.
var registry = map[string]*Check{}

// Register adds a check to the registry. It panics on a duplicate or
// empty name — both are programming errors in the check suite itself.
func Register(c *Check) {
	if c.Name == "" || c.Run == nil {
		panic("analysis: Register with empty name or nil Run")
	}
	if _, dup := registry[c.Name]; dup {
		panic("analysis: duplicate check " + c.Name)
	}
	registry[c.Name] = c
}

// Checks returns every registered check, sorted by name.
func Checks() []*Check {
	out := make([]*Check, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the registered check with the given name, if any.
func Lookup(name string) (*Check, bool) {
	c, ok := registry[name]
	return c, ok
}

// Select resolves a -checks flag value: "all" (or "") selects every
// registered check, otherwise the value is a comma-separated list of
// check names. Unknown names are an error listing the valid ones.
func Select(list string) ([]*Check, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return Checks(), nil
	}
	var out []*Check
	seen := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := registry[name]
		if !ok {
			known := make([]string, 0, len(registry))
			for n := range registry {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no checks")
	}
	return out, nil
}

// Run executes the given checks over the given packages, applies
// //mpclint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, column and check name. Malformed or
// unknown-check directives are reported as diagnostics of the pseudo
// check "mpclint-directive" regardless of the selection — a suppression
// that silently fails to parse would otherwise hide the very findings
// it mis-targets.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	var dirs []Directive
	for _, pkg := range pkgs {
		for _, c := range checks {
			c.Run(&Pass{Check: c, Pkg: pkg, diags: &diags})
		}
		d, bad := Directives(pkg.Fset, pkg.Files)
		dirs = append(dirs, d...)
		diags = append(diags, bad...)
	}
	diags = Suppress(diags, dirs)
	for i := range diags {
		diags[i].fill()
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
