// Package analysis is mpclint's from-scratch static-analysis
// framework: a stdlib-only (go/ast, go/parser, go/types, go/importer)
// pluggable analyzer registry plus the module loader and suppression
// machinery the cmd/mpclint driver is built on.
//
// The runtime invariants this repository proves dynamically — no
// wall-clock or global randomness in decision paths, no map iteration
// order leaking into results, all goroutine fan-out through
// internal/par, mpcdvfs_-prefixed metric names — are enforced here as
// compile-time properties: every check inspects the type-checked AST,
// so a violation is reported before the code ever runs.
//
// A check is a named Check value registered with Register; the driver
// runs every selected check over every package of the module (each
// package is parsed and type-checked exactly once, see Loader) and
// collects Diagnostics. Findings can be suppressed one line at a time
// with
//
//	//mpclint:ignore <check-name> <reason>
//
// directives (see ignore.go); a suppression without a reason is itself
// a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mpcdvfs/internal/par"
)

// A Check inspects the type-checked module and reports findings. Name
// is the stable kebab-case identifier used in diagnostics, the -checks
// flag and ignore directives.
//
// A check runs in one of two scopes. Run is the package scope of PR 3:
// it is invoked once per package and sees one AST at a time.
// RunModule is the interprocedural scope: it is invoked once per module
// with every package, the module call graph and the parsed
// //mpclint:hotpath / //mpclint:immutable annotations, so it can prove
// properties across call chains. A check sets exactly one of the two.
type Check struct {
	Name      string
	Doc       string // one-line description shown by mpclint -list
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries everything a single check needs to analyze a single
// package, and receives its findings.
type Pass struct {
	Check *Check
	Pkg   *Package

	diags *[]Diagnostic
}

// Reportf records a finding of the pass's check at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Pkg.Fset.Position(pos),
		Check:    p.Check.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ModulePass carries everything a module-scope check needs: every
// loaded package, the module call graph and the collected declaration
// annotations. The graph and annotations are built once per Run and
// shared by all module checks — they are immutable, so concurrent
// checks may read them freely.
type ModulePass struct {
	Check *Check
	Pkgs  []*Package
	Graph *CallGraph
	Ann   *Annotations

	fset  *token.FileSet
	diags *[]Diagnostic
}

// Reportf records a finding of the pass's check at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.fset.Position(pos),
		Check:    p.Check.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the check that produced it and
// a human-readable message.
type Diagnostic struct {
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Check    string         `json:"check"`
	Message  string         `json:"message"`
}

// String renders the driver's text output form:
// file:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// fill copies the token.Position into the JSON-visible fields.
func (d *Diagnostic) fill() {
	d.File, d.Line, d.Col = d.Position.Filename, d.Position.Line, d.Position.Column
}

// The process-wide check registry. Checks register themselves from
// init functions in their own files; the registry is read-only after
// init, so no locking is needed.
var registry = map[string]*Check{}

// Register adds a check to the registry. It panics on a duplicate or
// empty name, or when the check implements neither or both scopes —
// all programming errors in the check suite itself.
func Register(c *Check) {
	if c.Name == "" {
		panic("analysis: Register with empty name")
	}
	if (c.Run == nil) == (c.RunModule == nil) {
		panic("analysis: check " + c.Name + " must set exactly one of Run and RunModule")
	}
	if _, dup := registry[c.Name]; dup {
		panic("analysis: duplicate check " + c.Name)
	}
	registry[c.Name] = c
}

// Checks returns every registered check, sorted by name.
func Checks() []*Check {
	out := make([]*Check, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the registered check with the given name, if any.
func Lookup(name string) (*Check, bool) {
	c, ok := registry[name]
	return c, ok
}

// Select resolves a -checks flag value: "all" (or "") selects every
// registered check, otherwise the value is a comma-separated list of
// check names. Unknown names are an error listing the valid ones.
func Select(list string) ([]*Check, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return Checks(), nil
	}
	var out []*Check
	seen := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := registry[name]
		if !ok {
			known := make([]string, 0, len(registry))
			for n := range registry {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(known, ", "))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no checks")
	}
	return out, nil
}

// Run executes the given checks over the given packages serially. It
// is RunWorkers with one worker — the form every test and fixture
// harness uses, and the reference the parallel driver must match
// byte for byte.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	return RunWorkers(pkgs, checks, 1)
}

// RunWorkers executes the given checks over the given packages, applies
// //mpclint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, column and check name. Malformed or
// unknown-check directives — and malformed or misplaced declaration
// annotations — are reported as diagnostics of the pseudo check
// "mpclint-directive" regardless of the selection: a suppression or
// annotation that silently fails to parse would otherwise hide the very
// findings it targets.
//
// Package-scope checks fan out as one task per (package, check) pair
// and module-scope checks as one task each, through par.ForEach with
// the repository's worker convention (<=0 default, 1 serial). Each task
// writes only its own index-addressed slot and the reduction — concat
// in task order, suppress, sort — is serial, so the output is
// byte-identical for every worker count.
func RunWorkers(pkgs []*Package, checks []*Check, workers int) []Diagnostic {
	var pkgChecks, modChecks []*Check
	for _, c := range checks {
		if c.Run != nil {
			pkgChecks = append(pkgChecks, c)
		}
		if c.RunModule != nil {
			modChecks = append(modChecks, c)
		}
	}

	// Module-shared facts: annotations are always collected (their
	// misuse diagnostics are part of the directive contract), the call
	// graph only when a module-scope check will consume it.
	ann, diags := CollectAnnotations(pkgs)
	var graph *CallGraph
	if len(modChecks) > 0 {
		graph = BuildCallGraph(pkgs)
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}

	type task struct {
		pkg   *Package // nil for module-scope tasks
		check *Check
	}
	var tasks []task
	for _, pkg := range pkgs {
		for _, c := range pkgChecks {
			tasks = append(tasks, task{pkg, c})
		}
	}
	for _, c := range modChecks {
		tasks = append(tasks, task{nil, c})
	}

	slots := make([][]Diagnostic, len(tasks))
	par.ForEach(workers, len(tasks), func(i int) {
		t := tasks[i]
		if t.pkg != nil {
			t.check.Run(&Pass{Check: t.check, Pkg: t.pkg, diags: &slots[i]})
			return
		}
		t.check.RunModule(&ModulePass{
			Check: t.check, Pkgs: pkgs, Graph: graph, Ann: ann,
			fset: fset, diags: &slots[i],
		})
	})
	for _, s := range slots {
		diags = append(diags, s...)
	}

	var dirs []Directive
	for _, pkg := range pkgs {
		d, bad := Directives(pkg.Fset, pkg.Files)
		dirs = append(dirs, d...)
		diags = append(diags, bad...)
	}
	diags = Suppress(diags, dirs)
	for i := range diags {
		diags[i].fill()
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
