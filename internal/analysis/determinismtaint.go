package analysis

import (
	"fmt"
	"go/types"
	"regexp"
	"strings"
)

// decisionPathRE matches the packages whose outputs must replay
// byte-identically: the MPC optimizer core, the random-forest learner,
// the policies, the predictors and the simulator. (internal/par is the
// one place nondeterministic scheduling is allowed, precisely because
// its callers reduce to deterministic results.)
var decisionPathRE = regexp.MustCompile(`(^|/)internal/(core|rf|policy|predict|sim)(/|$)`)

// sanctionedRE matches the packages allowed to touch the wall clock on
// behalf of decision-path code: the telemetry spans and the observation
// streams. Both are instrumentation — their outputs never feed back
// into a decision, and the golden replay tests prove enabling or
// disabling them does not perturb a single decision byte. Taint stops
// at this boundary; moving clock reads out of it re-opens the check.
var sanctionedRE = regexp.MustCompile(`(^|/)internal/(telemetry|obs)(/|$)`)

func init() {
	Register(&Check{
		Name:      "determinism-taint",
		Doc:       "no call chain from decision-path packages reaches the wall clock, global randomness or racing selects",
		RunModule: runDeterminismTaint,
	})
}

// runDeterminismTaint is the interprocedural successor of PR 3's
// direct-call determinism check. A walled function is flagged not only
// when it calls time.Now itself but when any call chain out of it —
// through helpers in non-walled packages, interface dispatch or
// function values — can reach a nondeterminism sink. Findings anchor at
// the offending call edge inside the walled package (where the
// suppression, if any, belongs) and print the full witness chain.
//
// Each tainted out-edge of a walled function is reported separately:
// suppressing one edge must not hide a sibling chain. Edges into other
// walled functions are skipped — the callee is reported at its own
// offending edges — as are edges into the sanctioned instrumentation
// packages (see sanctionedRE).
func runDeterminismTaint(p *ModulePass) {
	g := p.Graph
	cfg := ReachConfig{
		SinkCall: taintSinkCall,
		SinkNode: func(fn *types.Func, g *CallGraph) (string, bool) {
			if sel := g.Selects(fn); len(sel) > 0 {
				return fmt.Sprintf("select with %d channel cases at %s", sel[0].Cases, shortPos(g, sel[0].Pos)), true
			}
			return "", false
		},
		Stop: func(fn *types.Func, g *CallGraph) bool { return sanctioned(fn, g) },
	}
	taint := Reach(g, cfg)

	for _, fn := range g.Funcs() {
		pkg := g.PackageOf(fn)
		if pkg == nil || !decisionPathRE.MatchString(pkg.Path) {
			continue
		}
		// Node-level sinks in the walled function's own body.
		for _, s := range g.Selects(fn) {
			p.Reportf(s.Pos, "select with %d channel cases chooses pseudo-randomly when several are ready; decision paths must not branch on scheduler nondeterminism", s.Cases)
		}
		// Tainted out-edges.
		for _, e := range g.Edges(fn) {
			if _, direct := taintSinkCall(e); !direct {
				t := taint[e.Callee]
				if t == nil || g.PackageOf(e.Callee) == nil {
					continue // untainted, or an external non-sink leaf
				}
				if cpkg := g.PackageOf(e.Callee); decisionPathRE.MatchString(cpkg.Path) {
					continue // walled callee is reported at its own edges
				}
				if sanctioned(e.Callee, g) {
					continue
				}
			}
			desc := sinkDescOf(cfg, taint, e)
			if desc == "" {
				continue
			}
			p.Reportf(e.Pos, "%s reaches %s: %s; %s",
				edgeNoun(e.Kind), sinkNoun(desc), Chain(g, cfg, taint, fn, e), remedyFor(desc))
		}
	}
}

// taintSinkCall classifies an edge whose callee is itself a
// nondeterminism sink.
func taintSinkCall(e CallEdge) (string, bool) {
	if e.Callee == nil {
		return "", false
	}
	switch e.Callee.FullName() {
	case "time.Now", "time.Since", "time.Until":
		return "wall-clock read", true
	}
	if globalRandFunc(e.Callee) {
		return "global random draw", true
	}
	return "", false
}

// sinkDescOf follows the witness chain from edge e to its terminal sink
// and returns that sink's description ("" if e does not lead to one).
func sinkDescOf(cfg ReachConfig, taint map[*types.Func]*Taint, e CallEdge) string {
	for hops := 0; hops < 64; hops++ {
		if desc, ok := cfg.SinkCall(e); ok {
			return desc
		}
		t := taint[e.Callee]
		if t == nil {
			return ""
		}
		if t.SelfDesc != "" {
			return t.SelfDesc
		}
		e = t.Via
	}
	return ""
}

// sanctioned reports whether fn is declared in an instrumentation
// package allowed to read the clock (see sanctionedRE).
func sanctioned(fn *types.Func, g *CallGraph) bool {
	pkg := g.PackageOf(fn)
	return pkg != nil && sanctionedRE.MatchString(pkg.Path)
}

// edgeNoun renders the edge kind as the subject of a finding message.
func edgeNoun(k EdgeKind) string {
	switch k {
	case EdgeInterface:
		return "interface call (may-target)"
	case EdgeFuncRef:
		return "function-value reference"
	}
	return "call chain"
}

// sinkNoun compresses a sink description to its category for the
// finding's headline.
func sinkNoun(desc string) string {
	switch {
	case strings.HasPrefix(desc, "wall-clock"):
		return "the wall clock"
	case strings.HasPrefix(desc, "global random"):
		return "the process-global random source"
	default:
		return "scheduler nondeterminism"
	}
}

// remedyFor maps a sink description to the repository's standing fix.
func remedyFor(desc string) string {
	switch {
	case strings.HasPrefix(desc, "wall-clock"):
		return "decisions must depend only on replayable inputs (plumb measured times in as data)"
	case strings.HasPrefix(desc, "global random"):
		return "use an explicitly seeded *rand.Rand threaded through the call (see rf.Config.Seed)"
	default:
		return "decision paths must not branch on scheduler nondeterminism"
	}
}

// globalRandFunc reports whether fn is a package-level math/rand (or
// math/rand/v2) function drawing from the shared global source.
// Constructors (New, NewSource, ...) are deterministic given their seed
// and stay allowed.
func globalRandFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false // a method on an explicitly seeded *rand.Rand / Source
	}
	return !strings.HasPrefix(fn.Name(), "New")
}
