package analysis

import "testing"

func TestPooledConcurrency(t *testing.T) { testCheck(t, "pooled-concurrency") }
