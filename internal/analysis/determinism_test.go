package analysis

import "testing"

func TestDeterminism(t *testing.T) { testCheck(t, "determinism") }
