package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func init() {
	Register(&Check{
		Name:      "hotpath-alloc",
		Doc:       "functions annotated //mpclint:hotpath, and everything they transitively call, contain no allocation sites",
		RunModule: runHotpathAlloc,
	})
}

// runHotpathAlloc turns the repository's AllocsPerRun pins into a
// static proof. A function annotated //mpclint:hotpath must contain no
// allocation site — make/new, escaping composite literals, capturing
// closures, interface boxing, append, variadic argument slices, string
// concatenation, allocating conversions, map writes, go statements —
// and neither may anything it transitively calls: static calls into the
// module are followed (with one finding at the hot call site carrying
// the witness chain), calls to other hotpath-annotated functions are
// trusted (each is proven under its own annotation), external calls
// must be on a small allowlist of known allocation-free stdlib
// operations, and interface or function-value calls are unprovable and
// flagged at the site. panic(...) argument subtrees are exempt — the
// failure path is allowed to allocate its message.
func runHotpathAlloc(p *ModulePass) {
	g := p.Graph
	h := &hotState{
		pass:  p,
		facts: map[*types.Func]*hotFacts{},
	}

	// Facts for every module function: its own allocation sites and its
	// classified outgoing calls, both excluding panic arguments.
	for _, fn := range g.Funcs() {
		h.facts[fn] = h.collect(fn)
	}

	// Propagate may-allocate causes backward over static module calls,
	// breadth-first so every witness chain is shortest; annotated
	// functions do not propagate (they are proven independently) and are
	// never assigned a transitive cause (their own sites are reported
	// directly below).
	causes := map[*types.Func]*hotCause{}
	var frontier []*types.Func
	for _, fn := range g.Funcs() {
		if c := h.facts[fn].ownCause(); c != nil {
			causes[fn] = c
			frontier = append(frontier, fn)
		}
	}
	rev := map[*types.Func][]hotEdge{}
	for _, fn := range g.Funcs() {
		for _, call := range h.facts[fn].calls {
			if call.callee != nil {
				rev[call.callee] = append(rev[call.callee], hotEdge{caller: fn, pos: call.pos})
			}
		}
	}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].Pos() < frontier[j].Pos() })
		var next []*types.Func
		for _, callee := range frontier {
			if _, hot := p.Ann.Hotpath[callee]; hot {
				continue
			}
			callers := append([]hotEdge(nil), rev[callee]...)
			sort.Slice(callers, func(i, j int) bool { return callers[i].pos < callers[j].pos })
			for _, e := range callers {
				if _, seen := causes[e.caller]; seen {
					continue
				}
				causes[e.caller] = &hotCause{pos: e.pos, next: callee}
				next = append(next, e.caller)
			}
		}
		frontier = next
	}

	// Report every problem of every annotated function.
	for _, fn := range g.Funcs() {
		if _, hot := p.Ann.Hotpath[fn]; !hot {
			continue
		}
		f := h.facts[fn]
		for _, s := range f.sites {
			p.Reportf(s.pos, "%s in //mpclint:hotpath function %s; the zero-alloc pin forbids allocation sites", s.desc, funcLabel(fn))
		}
		for _, call := range f.calls {
			if call.desc != "" {
				p.Reportf(call.pos, "%s in //mpclint:hotpath function %s; hot paths may only call proven allocation-free code", call.desc, funcLabel(fn))
				continue
			}
			if _, trusted := p.Ann.Hotpath[call.callee]; trusted {
				continue
			}
			if c := causes[call.callee]; c != nil {
				p.Reportf(call.pos, "call may allocate in //mpclint:hotpath function %s: %s; the zero-alloc pin extends to everything the hot path calls",
					funcLabel(fn), h.chain(fn, call.callee, causes))
			}
		}
	}
}

// hotSite is one intrinsic allocation site.
type hotSite struct {
	pos  token.Pos
	desc string
}

// hotCall is one call leaving a function body: either an immediately
// problematic one (desc set: external non-allowlisted, interface,
// dynamic) or a static call into the module (callee set) whose
// allocation behavior is decided by propagation.
type hotCall struct {
	pos    token.Pos
	callee *types.Func
	desc   string
}

// hotFacts is everything hotpath-alloc knows about one function body.
type hotFacts struct {
	sites []hotSite
	calls []hotCall
}

// ownCause returns the function's first immediate may-allocate cause in
// source order, or nil for a locally clean body.
func (f *hotFacts) ownCause() *hotCause {
	var best *hotCause
	for _, s := range f.sites {
		if best == nil || s.pos < best.pos {
			best = &hotCause{pos: s.pos, desc: s.desc}
		}
	}
	for _, c := range f.calls {
		if c.desc == "" {
			continue
		}
		if best == nil || c.pos < best.pos {
			best = &hotCause{pos: c.pos, desc: c.desc}
		}
	}
	return best
}

// hotCause explains why a function may allocate: an intrinsic site
// (desc set) or a call into another may-allocating function (next set).
type hotCause struct {
	pos  token.Pos
	desc string
	next *types.Func
}

type hotEdge struct {
	caller *types.Func
	pos    token.Pos
}

type hotState struct {
	pass  *ModulePass
	facts map[*types.Func]*hotFacts
}

// chain renders the witness path from an annotated function through
// module calls to the terminal allocation cause.
func (h *hotState) chain(fn, callee *types.Func, causes map[*types.Func]*hotCause) string {
	g := h.pass.Graph
	var b strings.Builder
	b.WriteString(funcLabel(fn))
	for hops := 0; callee != nil && hops < 64; hops++ {
		fmt.Fprintf(&b, " → %s", funcLabel(callee))
		c := causes[callee]
		if c == nil {
			break
		}
		if c.next == nil {
			fmt.Fprintf(&b, " (%s at %s)", c.desc, shortPos(g, c.pos))
			break
		}
		callee = c.next
	}
	return b.String()
}

// collect walks one function body classifying allocation sites and
// outgoing calls, skipping panic(...) argument subtrees.
func (h *hotState) collect(fn *types.Func) *hotFacts {
	f := &hotFacts{}
	decl := h.pass.Graph.Decl(fn)
	if decl == nil || decl.Body == nil {
		return f
	}
	pkg := h.pass.Graph.PackageOf(fn)
	info := pkg.Info

	addrTaken := map[*ast.CompositeLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // the failure path may build its message
			}
			h.classifyCall(f, info, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addrTaken[lit] = true
					f.add(n.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if addrTaken[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				f.add(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				f.add(n.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			if capturesOutside(info, n) {
				f.add(n.Pos(), "closure captures variables and allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						f.add(lhs.Pos(), "map assignment may grow the map")
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				f.add(n.Pos(), "string concatenation allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				f.add(n.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			f.add(n.Pos(), "go statement spawns a goroutine")
		}
		return true
	})
	sort.Slice(f.sites, func(i, j int) bool { return f.sites[i].pos < f.sites[j].pos })
	sort.Slice(f.calls, func(i, j int) bool { return f.calls[i].pos < f.calls[j].pos })
	return f
}

func (f *hotFacts) add(pos token.Pos, desc string) {
	f.sites = append(f.sites, hotSite{pos: pos, desc: desc})
}

// classifyCall decides what one call expression means for the zero-alloc
// proof: a builtin site, an allocating conversion, a followable module
// call, an allowlisted external, or an unprovable callee.
func (h *hotState) classifyCall(f *hotFacts, info *types.Info, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			h.classifyConversion(f, info, call, tv.Type)
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				f.add(call.Pos(), "make allocates")
			case "new":
				f.add(call.Pos(), "new allocates")
			case "append":
				f.add(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Signature-level sites that apply to any call form: the variadic
	// argument slice and interface boxing of concrete arguments.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		h.signatureSites(f, info, call, sig)
	}

	// Resolve the callee.
	var callee *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
	case *ast.FuncLit:
		return // body walked in place, attributed to this function
	}
	if callee == nil {
		f.calls = append(f.calls, hotCall{pos: call.Pos(), desc: "dynamic call through a function value cannot be proven allocation-free"})
		return
	}
	callee = normFunc(callee)
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isInterfaceRecv(sig) {
		f.calls = append(f.calls, hotCall{pos: call.Pos(),
			desc: fmt.Sprintf("interface call %s dispatches dynamically and cannot be proven allocation-free", funcLabel(callee))})
		return
	}
	if h.pass.Graph.Decl(callee) != nil {
		f.calls = append(f.calls, hotCall{pos: call.Pos(), callee: callee})
		return
	}
	if !hotAllowedExternal(callee) {
		f.calls = append(f.calls, hotCall{pos: call.Pos(),
			desc: fmt.Sprintf("call to %s is outside the module and not on the allocation-free allowlist", callee.FullName())})
	}
}

// classifyConversion flags conversions that copy or box.
func (h *hotState) classifyConversion(f *hotFacts, info *types.Info, call *ast.CallExpr, target types.Type) {
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch target.Underlying().(type) {
	case *types.Interface:
		if !types.IsInterface(src) && !pointerShaped(src) && !isUntypedNil(src) {
			f.add(call.Pos(), "conversion boxes a non-pointer value into an interface")
		}
	case *types.Slice:
		if isString(src) {
			f.add(call.Pos(), "string-to-slice conversion allocates")
		}
	default:
		if isString(target) {
			if _, ok := src.Underlying().(*types.Slice); ok {
				f.add(call.Pos(), "slice-to-string conversion allocates")
			}
		}
	}
}

// signatureSites flags the variadic argument slice and concrete-to-
// interface argument boxing for a call with a known signature.
func (h *hotState) signatureSites(f *hotFacts, info *types.Info, call *ast.CallExpr, sig *types.Signature) {
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			f.add(call.Pos(), "variadic call allocates its argument slice")
		}
	}
	for i := 0; i < fixed && i < len(call.Args); i++ {
		param := sig.Params().At(i).Type()
		if !types.IsInterface(param) {
			continue
		}
		arg := info.TypeOf(call.Args[i])
		if arg == nil || types.IsInterface(arg) || pointerShaped(arg) || isUntypedNil(arg) {
			continue
		}
		f.add(call.Args[i].Pos(), "argument boxed into interface parameter")
	}
}

// hotAllowedExternal is the allowlist of external (stdlib) operations
// the hot paths are permitted to call: each entry is known not to
// allocate on its fast path and is exercised under an AllocsPerRun pin
// somewhere in the test suite.
func hotAllowedExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error() and friends on predeclared types
	}
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := sig != nil && sig.Recv() != nil
	switch pkg.Path() {
	case "time":
		if !recv {
			return fn.Name() == "Now" || fn.Name() == "Since"
		}
		rt := sig.Recv().Type()
		if named, ok := rt.(*types.Named); ok && named.Obj().Name() == "Duration" {
			return true // Duration methods are pure arithmetic
		}
		switch fn.Name() {
		case "Sub", "Unix", "UnixNano", "Equal", "Before", "After", "IsZero":
			return true // non-allocating time.Time accessors
		}
		return false
	case "math/rand", "math/rand/v2":
		if !recv {
			return false // package-level draws are also a determinism leak
		}
		switch fn.Name() {
		case "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
			"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64", "NormFloat64":
			return true // scalar draws on a seeded *rand.Rand
		}
		return false
	case "context":
		return fn.Name() == "Background" || fn.Name() == "TODO"
	}
	switch fn.FullName() {
	case "(*sync.Pool).Get", "(*sync.Pool).Put",
		"(*sync.Mutex).Lock", "(*sync.Mutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*log/slog.Logger).Enabled":
		return true
	}
	return false
}

// capturesOutside reports whether a function literal references any
// variable declared outside its own body — the capture that forces the
// closure (and captured locals) onto the heap.
func capturesOutside(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
			if declaredOutside(v, lit, lit) && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
				captures = true
			}
		}
		return true
	})
	return captures
}

// isPanicCall reports whether call invokes the predeclared panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// pointerShaped reports whether values of t fit an interface's data
// word without boxing: pointers, channels, maps, funcs and unsafe
// pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
