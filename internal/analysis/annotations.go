package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation verbs. Beyond //mpclint:ignore (ignore.go), the suite
// understands two declaration annotations:
//
//	//mpclint:hotpath <reason>     on a func declaration's doc comment
//	//mpclint:immutable <reason>   on a type declaration's doc comment
//
// hotpath marks a function whose zero-allocation contract is pinned by
// an AllocsPerRun test; the hotpath-alloc check then statically forbids
// allocation sites in it and in everything it transitively calls.
// immutable marks a type that must never be mutated after construction
// (beyond the types discovered automatically through atomic.Pointer
// publication); the snapshot-mutation check enforces it. The reason is
// mandatory, exactly as for ignore directives: an annotation that
// cannot say which pin or publication contract backs it is reported
// under the mpclint-directive pseudo-check.
const (
	HotpathVerb   = "hotpath"
	ImmutableVerb = "immutable"
)

// ParseAnnotation parses one comment's text (with markers, as
// ast.Comment.Text stores it) as a declaration annotation. ok=false
// means the comment is not an mpclint comment at all (or is an ignore
// directive, which ignore.go owns); err != nil means it tries to be an
// annotation but is malformed: block-comment form, a space before the
// verb, an unknown verb, or a missing reason.
func ParseAnnotation(text string) (verb, reason string, ok bool, err error) {
	const prefix = "mpclint:"
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		inner := strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
		t := strings.TrimSpace(inner)
		if strings.HasPrefix(t, prefix) && !strings.HasPrefix(t, prefix+"ignore") {
			return "", "", true, fmt.Errorf("mpclint annotations must be line comments (//) so they attach to one declaration")
		}
		return "", "", false, nil
	}
	rest, anchored := strings.CutPrefix(body, prefix)
	if !anchored {
		if t := strings.TrimSpace(body); strings.HasPrefix(t, prefix) && !strings.HasPrefix(t, prefix+"ignore") {
			return "", "", true, fmt.Errorf("malformed annotation: write %q with no space between // and the verb", "//"+prefix+"<verb>")
		}
		return "", "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true, fmt.Errorf("mpclint comment names no verb (want ignore, %s or %s)", HotpathVerb, ImmutableVerb)
	}
	verb = fields[0]
	switch verb {
	case "ignore":
		return "", "", false, nil // ignore.go's directive, not an annotation
	case HotpathVerb, ImmutableVerb:
	default:
		return "", "", true, fmt.Errorf("unknown mpclint verb %q (want ignore, %s or %s)", verb, HotpathVerb, ImmutableVerb)
	}
	reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return "", "", true, fmt.Errorf("//mpclint:%s has no reason; name the AllocsPerRun pin or publication contract that backs it", verb)
	}
	return verb, reason, true, nil
}

// Annotations holds the module's parsed declaration annotations, keyed
// by the annotated objects.
type Annotations struct {
	// Hotpath maps each annotated function to its reason.
	Hotpath map[*types.Func]string
	// Immutable maps each annotated named type to its reason.
	Immutable map[*types.TypeName]string
}

// CollectAnnotations parses every //mpclint:hotpath and
// //mpclint:immutable annotation in pkgs, attaching each to the
// declaration whose doc comment carries it. Malformed annotations, and
// well-formed ones that are not in a matching declaration's doc comment
// (hotpath off a func, immutable off a type), are returned as
// mpclint-directive diagnostics — a detached annotation silently
// protects nothing, which must not pass unnoticed.
func CollectAnnotations(pkgs []*Package) (*Annotations, []Diagnostic) {
	ann := &Annotations{
		Hotpath:   map[*types.Func]string{},
		Immutable: map[*types.TypeName]string{},
	}
	var bad []Diagnostic
	report := func(fset *token.FileSet, pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Position: fset.Position(pos),
			Check:    DirectiveCheck,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			consumed := map[*ast.Comment]bool{}
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					for _, c := range docComments(d.Doc) {
						verb, reason, ok, err := ParseAnnotation(c.Text)
						if !ok || err != nil {
							continue // malformed ones reported in the sweep below
						}
						consumed[c] = true
						if verb != HotpathVerb {
							report(pkg.Fset, c.Pos(), "//mpclint:%s annotates a func declaration; only %s applies here", verb, HotpathVerb)
							continue
						}
						if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
							ann.Hotpath[fn] = reason
						}
					}
				case *ast.GenDecl:
					docs := docComments(d.Doc)
					for _, spec := range d.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok {
							docs = append(docs, docComments(ts.Doc)...)
							for _, c := range docs {
								verb, reason, ok, err := ParseAnnotation(c.Text)
								if !ok || err != nil {
									continue
								}
								consumed[c] = true
								if verb != ImmutableVerb {
									report(pkg.Fset, c.Pos(), "//mpclint:%s annotates a type declaration; only %s applies here", verb, ImmutableVerb)
									continue
								}
								if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
									ann.Immutable[tn] = reason
								}
							}
							docs = nil
						}
					}
				}
			}
			// Sweep every comment: malformed annotations anywhere, and
			// well-formed ones that no declaration consumed.
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					verb, _, ok, err := ParseAnnotation(c.Text)
					if !ok {
						continue
					}
					if err != nil {
						report(pkg.Fset, c.Pos(), "%v", err)
						continue
					}
					if !consumed[c] {
						report(pkg.Fset, c.Pos(), "//mpclint:%s is not in a %s declaration's doc comment, so it annotates nothing", verb, annTarget(verb))
					}
				}
			}
		}
	}
	return ann, bad
}

func annTarget(verb string) string {
	if verb == ImmutableVerb {
		return "type"
	}
	return "func"
}

// docComments flattens a possibly-nil comment group.
func docComments(cg *ast.CommentGroup) []*ast.Comment {
	if cg == nil {
		return nil
	}
	return cg.List
}
