package analysis

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadGraph builds the call graph of the callgraph fixture module.
func loadGraph(t *testing.T) *CallGraph {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(pkgs)
}

// findFunc locates a declared function by its funcLabel form
// (pkg.Func or pkg.Recv.Method).
func findFunc(t *testing.T, g *CallGraph, label string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if funcLabel(fn) == label {
			return fn
		}
	}
	t.Fatalf("no declared function labeled %s", label)
	return nil
}

// edgeTo reports whether fn has an out-edge of the given kind to a
// callee with the given label.
func edgeTo(g *CallGraph, fn *types.Func, kind EdgeKind, callee string) bool {
	for _, e := range g.Edges(fn) {
		if e.Kind == kind && funcLabel(e.Callee) == callee {
			return true
		}
	}
	return false
}

func TestCallGraphStaticMethodEdge(t *testing.T) {
	g := loadGraph(t)
	direct := findFunc(t, g, "app.Direct")
	if !edgeTo(g, direct, EdgeStatic, "app.Dog.Greet") {
		t.Errorf("app.Direct lacks a static edge to app.Dog.Greet; edges: %v", labels(g, direct))
	}
}

func TestCallGraphInterfaceCHA(t *testing.T) {
	g := loadGraph(t)
	hello := findFunc(t, g, "app.Hello")
	for _, impl := range []string{"app.Dog.Greet", "app.Cat.Greet"} {
		if !edgeTo(g, hello, EdgeInterface, impl) {
			t.Errorf("app.Hello lacks a may-target edge to %s; edges: %v", impl, labels(g, hello))
		}
	}
}

func TestCallGraphFuncRefEdge(t *testing.T) {
	g := loadGraph(t)
	ref := findFunc(t, g, "app.Ref")
	if !edgeTo(g, ref, EdgeFuncRef, "app.Direct") {
		t.Errorf("app.Ref lacks a function-value edge to app.Direct; edges: %v", labels(g, ref))
	}
}

func TestCallGraphCycleAndReverseIndex(t *testing.T) {
	g := loadGraph(t)
	even := findFunc(t, g, "app.Even")
	odd := findFunc(t, g, "app.Odd")
	if !edgeTo(g, even, EdgeStatic, "app.Odd") || !edgeTo(g, odd, EdgeStatic, "app.Even") {
		t.Fatal("the Even↔Odd recursion cycle is missing an edge")
	}
	found := false
	for _, e := range g.Callers(even) {
		if e.Caller == odd {
			found = true
		}
	}
	if !found {
		t.Error("Callers(app.Even) does not list the edge from app.Odd")
	}
}

func TestCallGraphDynamicCallAndSelectFacts(t *testing.T) {
	g := loadGraph(t)
	dyn := findFunc(t, g, "app.Dyn")
	if len(g.Edges(dyn)) != 0 || len(g.DynamicCalls(dyn)) != 1 {
		t.Errorf("app.Dyn: edges %v, dynamic calls %d; want no edges and one dynamic-call fact",
			labels(g, dyn), len(g.DynamicCalls(dyn)))
	}
	waits := findFunc(t, g, "app.Waits")
	sel := g.Selects(waits)
	if len(sel) != 1 || sel[0].Cases != 2 {
		t.Errorf("app.Waits selects = %+v, want one fact with 2 cases", sel)
	}
}

// TestReachTerminatesThroughCycle taints app.Dog.Greet-calls and checks
// the backward propagation crosses the Even↔Odd cycle exactly once,
// with a finite witness chain.
func TestReachTerminatesThroughCycle(t *testing.T) {
	g := loadGraph(t)
	cfg := ReachConfig{
		SinkCall: func(e CallEdge) (string, bool) {
			if e.Callee != nil && e.Callee.Name() == "Greet" {
				return "greet", true
			}
			return "", false
		},
	}
	taint := Reach(g, cfg)
	even := findFunc(t, g, "app.Even")
	odd := findFunc(t, g, "app.Odd")
	if taint[odd] == nil || taint[odd].Depth != 2 {
		t.Fatalf("taint[app.Odd] = %+v, want depth-2 taint via app.Direct", taint[odd])
	}
	if taint[even] == nil || taint[even].Depth != 3 {
		t.Fatalf("taint[app.Even] = %+v, want depth-3 taint through the cycle", taint[even])
	}
	chain := Chain(g, cfg, taint, even, taint[even].Via)
	if !strings.Contains(chain, "app.Odd") || !strings.Contains(chain, "(greet at ") {
		t.Errorf("witness chain %q does not route through app.Odd to the sink", chain)
	}
}

func labels(g *CallGraph, fn *types.Func) []string {
	var out []string
	for _, e := range g.Edges(fn) {
		out = append(out, e.Kind.String()+"→"+funcLabel(e.Callee))
	}
	return out
}
