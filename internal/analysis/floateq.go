package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

func init() {
	Register(&Check{
		Name: "float-eq",
		Doc:  "no == or != on floating-point operands outside approved epsilon helpers",
		Run:  runFloatEq,
	})
}

// approvedEqHelperRE matches the names of functions allowed to compare
// floats exactly: the epsilon/approximate-equality helpers themselves,
// which need the raw comparison to implement their tolerance (and to
// short-circuit the identical-value case).
var approvedEqHelperRE = regexp.MustCompile(`(?i)(approx|almost|nearly|within|epsilon|ulps?)`)

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				if gd, isGen := decl.(*ast.GenDecl); isGen {
					flagFloatEq(p, gd) // package-level var initializers
				}
				continue
			}
			if approvedEqHelperRE.MatchString(fd.Name.Name) {
				continue
			}
			if fd.Body != nil {
				flagFloatEq(p, fd.Body)
			}
		}
	}
}

func flagFloatEq(p *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := p.TypeOf(be.X), p.TypeOf(be.Y)
		if xt == nil || yt == nil || !isFloat(xt) || !isFloat(yt) {
			return true
		}
		// Comparing against the exact-zero constant is a sentinel test
		// ("was this field ever set"), not float arithmetic; everything
		// else must go through the documented comparator.
		if exactZero(p, be.X) || exactZero(p, be.Y) {
			return true
		}
		p.Reportf(be.OpPos, "%s on floating-point operands; rounding makes exact equality meaningless — compare through an epsilon helper (stats.ApproxEqual) or restructure as an ordered test", be.Op)
		return true
	})
}
