package analysis

import (
	"strings"
	"testing"
)

// TestParseAnnotationTable pins the accepted and rejected forms of the
// declaration-annotation grammar.
func TestParseAnnotationTable(t *testing.T) {
	cases := []struct {
		text          string
		verb, reason  string
		ok, wantError bool
	}{
		{"//mpclint:hotpath pinned by TestFooZeroAlloc", "hotpath", "pinned by TestFooZeroAlloc", true, false},
		{"//mpclint:immutable shared read-only after publish", "immutable", "shared read-only after publish", true, false},
		{"//mpclint:ignore float-eq some reason", "", "", false, false}, // ignore.go's domain
		{"// ordinary comment", "", "", false, false},
		{"//mpclint:hotpath", "", "", true, true},                // missing reason
		{"//mpclint:fastpath wrong verb", "", "", true, true},    // unknown verb
		{"// mpclint:hotpath spaced out", "", "", true, true},    // space before verb
		{"/* mpclint:hotpath block form */", "", "", true, true}, // block comment
		{"//mpclint:", "", "", true, true},                       // verbless
	}
	for _, c := range cases {
		verb, reason, ok, err := ParseAnnotation(c.text)
		if ok != c.ok || (err != nil) != c.wantError || verb != c.verb || reason != c.reason {
			t.Errorf("ParseAnnotation(%q) = (%q, %q, %v, %v); want (%q, %q, %v, err=%v)",
				c.text, verb, reason, ok, err, c.verb, c.reason, c.ok, c.wantError)
		}
	}
}

// FuzzHotpathAnnotation drives arbitrary comment text through the
// annotation parser and pins its contract: it never panics, it never
// errors on text it does not claim as an annotation, every accepted
// annotation has a known verb and a non-empty trimmed reason, and
// re-rendering an accepted annotation canonically parses back to the
// same verb and reason.
func FuzzHotpathAnnotation(f *testing.F) {
	for _, seed := range []string{
		"//mpclint:hotpath pinned at 0 allocs/op by TestPredictKernelZeroAlloc",
		"//mpclint:immutable SoA node pool shared lock-free by concurrent predictors",
		"//mpclint:hotpath",
		"//mpclint:immutable",
		"//mpclint:hotpath\treason with a tab",
		"//mpclint:fastpath unknown verb",
		"// mpclint:hotpath space before verb",
		"/* mpclint:hotpath block form */",
		"//mpclint:ignore float-eq ignore.go owns this shape",
		"//mpclint:",
		"// a comment mentioning mpclint:hotpath in prose",
		"//",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		verb, reason, ok, err := ParseAnnotation(text)
		if err != nil && !ok {
			t.Fatalf("error %v for text not claimed as an annotation: %q", err, text)
		}
		if !ok || err != nil {
			return
		}
		if verb != HotpathVerb && verb != ImmutableVerb {
			t.Fatalf("accepted unknown verb %q from %q", verb, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed == "" || trimmed != reason {
			t.Fatalf("accepted untrimmed or empty reason %q from %q", reason, text)
		}
		canon := "//mpclint:" + verb + " " + reason
		v2, r2, ok2, err2 := ParseAnnotation(canon)
		if !ok2 || err2 != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err2)
		}
		norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
		if v2 != verb || norm(r2) != norm(reason) {
			t.Fatalf("canonical round-trip changed annotation: (%q,%q) -> (%q,%q)", verb, reason, v2, r2)
		}
	})
}
