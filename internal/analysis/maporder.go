package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Check{
		Name: "map-order",
		Doc:  "no map iteration order leaking into slices, aggregates or output",
		Run:  runMapOrder,
	})
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := mapOrderLeak(p, fd.Body, rng); reason != "" {
					p.Reportf(rng.Pos(), "range over map %s; iterate a sorted key slice instead so the result is independent of map iteration order", reason)
				}
				return true
			})
		}
	}
}

// mapOrderLeak inspects the body of a range-over-map for the ways
// iteration order escapes into results: building a slice, writing
// output, or aggregating an order-dependent min/max/argmin. It returns
// a short description of the first leak found, or "". The one blessed
// pattern — appending keys to a slice that is then handed to a sort
// call later in the same function — is recognized and not flagged,
// since sorting erases the iteration order the append captured.
func mapOrderLeak(p *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if writesOutput(p, n) {
				reason = "writes output in iteration order"
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs := ast.Unparen(lhs)
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if bt := p.TypeOf(ix.X); bt != nil {
						if _, isSlice := bt.Underlying().(*types.Slice); isSlice {
							reason = "assigns slice elements in iteration order"
							return false
						}
					}
				}
				if i < len(n.Rhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(p, call, "append") {
						if id, ok := lhs.(*ast.Ident); ok && sortedAfter(p, funcBody, p.objectOf(id), rng.End()) {
							continue // collect-then-sort: order is erased
						}
						reason = "appends in iteration order"
						return false
					}
				}
			}
		case *ast.IfStmt:
			if hasRelationalCond(n.Cond) && assignsOutside(p, n.Body, rng) {
				reason = "aggregates a min/max under a relational test (argmin ties depend on iteration order)"
				return false
			}
		}
		return true
	})
	return reason
}

// objectOf resolves an identifier to its object via Uses or Defs.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// sortedAfter reports whether obj is passed to a sort/slices sorting
// function somewhere after pos in the same function body.
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 || found {
			return !found
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		if !strings.Contains(fn.Name(), "Sort") && !strings.HasPrefix(fn.Name(), "Stable") &&
			fn.Name() != "Strings" && fn.Name() != "Ints" && fn.Name() != "Float64s" && fn.Name() != "Slice" {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// writesOutput reports whether the call is an ordered write: the fmt
// Fprint family or a Write* method (builders, buffers, writers).
func writesOutput(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "F") {
		return true // Fprint, Fprintf, Fprintln
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Write")
	}
	return false
}

// hasRelationalCond reports whether the condition contains an ordered
// comparison (<, >, <=, >=).
func hasRelationalCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// assignsOutside reports whether any statement in body assigns to a
// variable declared outside the range statement — the signature of an
// aggregate (best/bestKey) carried across iterations.
func assignsOutside(p *Pass, body ast.Node, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if v, isVar := p.objectOf(id).(*types.Var); isVar && declaredOutside(v, rng, rng) {
				found = true
			}
		}
		return !found
	})
	return found
}
