package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call edge was derived, which bounds how
// much trust a consumer may place in it.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or to a method
	// through a concrete receiver type: the callee is exact.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method, expanded by
	// class-hierarchy analysis to every concrete module type that
	// implements the interface: the callee is a may-target, not a must.
	EdgeInterface
	// EdgeFuncRef is not a call at all but a reference to a function as
	// a value (passed as an argument, stored in a field, assigned to a
	// variable). The enclosing function may cause it to run, so
	// whole-module properties must propagate across it conservatively.
	EdgeFuncRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "call"
	case EdgeInterface:
		return "interface call"
	case EdgeFuncRef:
		return "function-value reference"
	}
	return "edge"
}

// CallEdge is one resolved caller→callee relationship at one source
// position. Callee may belong to any package — module-internal callees
// carry bodies in the graph, external ones (stdlib) are leaves.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// SelectFact records a select statement with two or more communication
// cases inside a function body — a scheduler-nondeterminism source the
// determinism checks treat as a node-level fact.
type SelectFact struct {
	Pos   token.Pos
	Cases int
}

// DynamicCall records a call whose callee could not be resolved to any
// declared function: a called function value (parameter, field, map
// entry). FuncRef edges over-approximate where such values come from;
// the fact itself marks the site for checks that must prove properties
// of everything a function runs.
type DynamicCall struct {
	Pos token.Pos
}

// CallGraph is a module-wide, conservatively over-approximated call
// graph over the one-pass type-checked packages: static calls and
// concrete-receiver method calls resolve exactly, interface calls
// expand by class-hierarchy analysis over the module's named types, and
// function-value flow is approximated by EdgeFuncRef edges from every
// function that takes a reference to another. Function literals are
// attributed to their enclosing declared function — a closure's calls
// are edges of the function that created it.
//
// The graph is immutable after Build and safe for concurrent readers.
type CallGraph struct {
	fset *token.FileSet

	funcs    []*types.Func              // declared module functions, sorted by Pos
	edges    map[*types.Func][]CallEdge // out-edges per declared function, in Pos order
	rev      map[*types.Func][]CallEdge // in-edges per callee (module or external)
	decls    map[*types.Func]*ast.FuncDecl
	pkgOf    map[*types.Func]*Package
	selects  map[*types.Func][]SelectFact
	dynCalls map[*types.Func][]DynamicCall
}

// Funcs returns every function and method declared in the module, in
// source-position order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Edges returns fn's out-edges in source order (nil for external or
// bodyless functions).
func (g *CallGraph) Edges(fn *types.Func) []CallEdge { return g.edges[fn] }

// Callers returns the edges whose callee is fn.
func (g *CallGraph) Callers(fn *types.Func) []CallEdge { return g.rev[fn] }

// Decl returns the declaration of a module function, or nil.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// PackageOf returns the analyzed package declaring fn, or nil for
// external functions.
func (g *CallGraph) PackageOf(fn *types.Func) *Package { return g.pkgOf[fn] }

// Selects returns the multi-case select facts recorded in fn's body.
func (g *CallGraph) Selects(fn *types.Func) []SelectFact { return g.selects[fn] }

// DynamicCalls returns the unresolved call sites in fn's body.
func (g *CallGraph) DynamicCalls(fn *types.Func) []DynamicCall { return g.dynCalls[fn] }

// Position resolves a token.Pos against the graph's file set.
func (g *CallGraph) Position(pos token.Pos) token.Position { return g.fset.Position(pos) }

// BuildCallGraph constructs the module call graph over pkgs (which must
// share one *token.FileSet, as Loader guarantees).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		edges:    map[*types.Func][]CallEdge{},
		rev:      map[*types.Func][]CallEdge{},
		decls:    map[*types.Func]*ast.FuncDecl{},
		pkgOf:    map[*types.Func]*Package{},
		selects:  map[*types.Func][]SelectFact{},
		dynCalls: map[*types.Func][]DynamicCall{},
	}
	if len(pkgs) == 0 {
		return g
	}
	g.fset = pkgs[0].Fset

	// Pass 1: register every declared function and collect the concrete
	// named types for interface resolution.
	var concrete []types.Type
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					g.funcs = append(g.funcs, fn)
					g.decls[fn] = d
					g.pkgOf[fn] = pkg
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok || obj.IsAlias() {
							continue
						}
						named, ok := obj.Type().(*types.Named)
						if !ok || named.TypeParams().Len() > 0 {
							continue
						}
						if _, isIface := named.Underlying().(*types.Interface); !isIface {
							concrete = append(concrete, named)
						}
					}
				}
			}
		}
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Pos() < g.funcs[j].Pos() })

	// Pass 2: walk every declared body recording edges and facts.
	for _, fn := range g.funcs {
		decl := g.decls[fn]
		if decl.Body == nil {
			continue
		}
		g.walkBody(fn, g.pkgOf[fn], decl.Body, concrete)
	}

	// Deterministic edge order, and the reverse index.
	for _, fn := range g.funcs {
		es := g.edges[fn]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
		for _, e := range es {
			g.rev[e.Callee] = append(g.rev[e.Callee], e)
		}
	}
	return g
}

// normFunc maps an instantiated generic function or method back to its
// declared origin, so graph keys are stable.
func normFunc(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// walkBody records every edge and fact of one declared function's body,
// attributing function-literal internals to the enclosing function.
func (g *CallGraph) walkBody(fn *types.Func, pkg *Package, body *ast.BlockStmt, concrete []types.Type) {
	// callFuns tracks the expressions occupying call-operator position,
	// so a later identifier visit can tell a call from a value reference.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			callFuns[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				// The Sel ident is part of the call operator, not a
				// separate function-value reference.
				callFuns[sel.Sel] = true
			}
			g.recordCall(fn, pkg, n, fun, concrete)
		case *ast.SelectStmt:
			comm := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				g.selects[fn] = append(g.selects[fn], SelectFact{Pos: n.Pos(), Cases: comm})
			}
		case *ast.Ident:
			if callFuns[n] {
				return true
			}
			if ref, ok := pkg.Info.Uses[n].(*types.Func); ok {
				g.addEdge(CallEdge{Caller: fn, Callee: normFunc(ref), Pos: n.Pos(), Kind: EdgeFuncRef})
			}
		case *ast.SelectorExpr:
			// The Sel ident never stands alone — whatever this selector
			// means, the ident visit below must not double-count it.
			callFuns[n.Sel] = true
			if callFuns[n] {
				return true
			}
			// A method value (x.M) or package-qualified function
			// reference; field selections resolve to *types.Var and are
			// skipped. The inner X is still visited for nested calls.
			if ref, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
				if sig, ok := ref.Type().(*types.Signature); !ok || sig.Recv() == nil || !isInterfaceRecv(sig) {
					g.addEdge(CallEdge{Caller: fn, Callee: normFunc(ref), Pos: n.Pos(), Kind: EdgeFuncRef})
				}
			}
		}
		return true
	})
}

// recordCall resolves one call expression into edges (or a dynamic-call
// fact when nothing can be resolved).
func (g *CallGraph) recordCall(fn *types.Func, pkg *Package, call *ast.CallExpr, fun ast.Expr, concrete []types.Type) {
	switch fun := fun.(type) {
	case *ast.Ident:
		switch ref := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			g.addEdge(CallEdge{Caller: fn, Callee: normFunc(ref), Pos: call.Pos(), Kind: EdgeStatic})
		case *types.Builtin, *types.TypeName:
			// Builtins and conversions are not graph edges.
		default:
			// A called variable (func-typed local or parameter), or an
			// identifier the type info cannot attribute: dynamic.
			if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
				return
			}
			g.dynCalls[fn] = append(g.dynCalls[fn], DynamicCall{Pos: call.Pos()})
		}
	case *ast.SelectorExpr:
		ref, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			if tv, isType := pkg.Info.Types[fun]; isType && tv.IsType() {
				return // conversion to a qualified named type
			}
			// Calling a func-typed field or variable through a selector.
			g.dynCalls[fn] = append(g.dynCalls[fn], DynamicCall{Pos: call.Pos()})
			return
		}
		ref = normFunc(ref)
		sig, _ := ref.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && isInterfaceRecv(sig) {
			// Interface dispatch: expand over the module's concrete
			// types by class-hierarchy analysis.
			g.resolveInterfaceCall(fn, call, ref, concrete)
			return
		}
		g.addEdge(CallEdge{Caller: fn, Callee: ref, Pos: call.Pos(), Kind: EdgeStatic})
	default:
		// Called function literal: its body is already attributed to
		// the enclosing function, so the call adds no information.
		if _, ok := fun.(*ast.FuncLit); ok {
			return
		}
		if tv, isType := pkg.Info.Types[fun]; isType && tv.IsType() {
			return
		}
		g.dynCalls[fn] = append(g.dynCalls[fn], DynamicCall{Pos: call.Pos()})
	}
}

// isInterfaceRecv reports whether a method signature's receiver is an
// interface type (i.e. the *types.Func is an abstract interface
// method, not a concrete implementation).
func isInterfaceRecv(sig *types.Signature) bool {
	return types.IsInterface(sig.Recv().Type())
}

// resolveInterfaceCall adds one EdgeInterface edge per concrete module
// type implementing the called interface method. The abstract method's
// own interface is recovered from the receiver; embedded satisfying
// methods resolve to whatever concrete function the method set selects
// (possibly an external one, which then appears as a leaf).
func (g *CallGraph) resolveInterfaceCall(fn *types.Func, call *ast.CallExpr, abstract *types.Func, concrete []types.Type) {
	sig, ok := abstract.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	seen := map[*types.Func]bool{}
	for _, t := range concrete {
		impl := (*types.Func)(nil)
		if types.Implements(t, iface) {
			impl = methodOf(t, abstract.Name())
		} else if pt := types.NewPointer(t); types.Implements(pt, iface) {
			impl = methodOf(pt, abstract.Name())
		}
		if impl == nil {
			continue
		}
		impl = normFunc(impl)
		if !seen[impl] {
			seen[impl] = true
			g.addEdge(CallEdge{Caller: fn, Callee: impl, Pos: call.Pos(), Kind: EdgeInterface})
		}
	}
}

// methodOf selects the concrete method named name from t's method set.
func methodOf(t types.Type, name string) *types.Func {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if m := ms.At(i); m.Obj().Name() == name {
			fn, _ := m.Obj().(*types.Func)
			return fn
		}
	}
	return nil
}

func (g *CallGraph) addEdge(e CallEdge) {
	if e.Callee == nil {
		return
	}
	g.edges[e.Caller] = append(g.edges[e.Caller], e)
}
