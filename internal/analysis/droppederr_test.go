package analysis

import "testing"

func TestDroppedError(t *testing.T) { testCheck(t, "dropped-error") }
