package analysis

import "testing"

func TestFloatEq(t *testing.T) { testCheck(t, "float-eq") }
