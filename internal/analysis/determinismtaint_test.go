package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeterminismTaint(t *testing.T) { testCheck(t, "determinism-taint") }

// TestDeterminismTaintIsTransitive pins the reason the interprocedural
// engine exists: the findings fixture's walled package contains no
// direct sink whatsoever — no time or math/rand import and no select
// statement, which is everything PR 3's direct-call determinism check
// looked for — yet every function in it is flagged through a helper
// package, an interface, or a function value.
func TestDeterminismTaintIsTransitive(t *testing.T) {
	core := filepath.Join("testdata", "src", "determinism-taint", "findings", "internal", "core")
	entries, err := os.ReadDir(core)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(core, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			switch p := strings.Trim(imp.Path.Value, `"`); p {
			case "time", "math/rand", "math/rand/v2":
				t.Fatalf("%s imports %q: the fixture must hold no direct sink, or the transitivity proof is void", e.Name(), p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				t.Fatalf("%s holds a select statement at %s: the fixture must leak only transitively", e.Name(), fset.Position(sel.Pos()))
			}
			return true
		})
	}

	diags := lintFixture(t, "determinism-taint", filepath.Join("determinism-taint", "findings"))
	inCore := 0
	for _, d := range diags {
		if strings.Contains(d.File, filepath.Join("internal", "core")) {
			inCore++
		}
	}
	if inCore < 5 {
		t.Errorf("the sink-free walled package drew %d findings, want at least 5 (one per leaked chain)", inCore)
	}
}
