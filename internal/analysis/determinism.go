package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// decisionPathRE matches the packages whose outputs must replay
// byte-identically: the MPC optimizer core, the random-forest learner,
// the policies, the predictors and the simulator. (internal/par is the
// one place nondeterministic scheduling is allowed, precisely because
// its callers reduce to deterministic results.)
var decisionPathRE = regexp.MustCompile(`(^|/)internal/(core|rf|policy|predict|sim)(/|$)`)

func init() {
	Register(&Check{
		Name: "determinism",
		Doc:  "no wall-clock reads, global randomness or racing selects in decision-path packages",
		Run:  runDeterminism,
	})
}

func runDeterminism(p *Pass) {
	if !decisionPathRE.MatchString(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn == nil {
					return true
				}
				switch full := fn.FullName(); full {
				case "time.Now", "time.Since", "time.Until":
					p.Reportf(n.Pos(), "%s reads the wall clock in a decision path; decisions must depend only on replayable inputs (plumb measured times in as data)", full)
				default:
					if globalRandFunc(fn) {
						p.Reportf(n.Pos(), "%s draws from the process-global random source; use an explicitly seeded *rand.Rand threaded through the call (see rf.Config.Seed)", full)
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.Reportf(n.Pos(), "select with %d channel cases chooses pseudo-randomly when several are ready; decision paths must not branch on scheduler nondeterminism", comm)
				}
			}
			return true
		})
	}
}

// globalRandFunc reports whether fn is a package-level math/rand (or
// math/rand/v2) function drawing from the shared global source.
// Constructors (New, NewSource, ...) are deterministic given their seed
// and stay allowed.
func globalRandFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false // a method on an explicitly seeded *rand.Rand / Source
	}
	return !strings.HasPrefix(fn.Name(), "New")
}
