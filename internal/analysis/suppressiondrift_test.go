package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoSuppressionDrift pins the //mpclint:ignore directives on
// production code to the known, argued-for set. New code must satisfy
// the analyzers outright; a suppression only joins this list with a
// justification in its directive text and a deliberate update here.
//
// The scan covers every internal package (not just the decision-path
// wall): hotpath-alloc and determinism-taint suppressions live where
// the annotated hot paths and their slow-path branches live, and each
// one names the AllocsPerRun pin or replay wall that keeps it honest.
func TestNoSuppressionDrift(t *testing.T) {
	root := filepath.Join("..", "..")
	want := map[string]int{
		// rf.go grows trees with bit-exact split decisions; its three
		// float-eq suppressions are the byte-identical-forest guarantee.
		filepath.Join("internal", "rf", "rf.go"): 3,
		// hotpath-alloc: the eval cache's miss-path insert and the
		// deployed-model PredictKernel call, both off the pinned warm path.
		filepath.Join("internal", "core", "climb.go"): 2,
		// hotpath-alloc: batched-sweep arena pool — once-per-space
		// install, pool-miss build, defensive foreign-arena rebuild.
		filepath.Join("internal", "predict", "spaceeval.go"): 3,
		// determinism-taint: CHA may-target through serve.Client.Decide
		// (latency-callback timing, not decision input).
		filepath.Join("internal", "sim", "sim.go"): 1,
		// hotpath-alloc: reservoir fill-phase append within the capacity
		// NewReservoir preallocated.
		filepath.Join("internal", "learn", "reservoir.go"): 1,
		// pooled-concurrency: the trainer's long-lived retraining loop.
		filepath.Join("internal", "learn", "learn.go"): 1,
		// float-eq: re-registration demands bit-identical histogram
		// bucket boundaries.
		filepath.Join("internal", "metrics", "metrics.go"): 1,
		// hotpath-alloc: slog observers build attributes only behind the
		// enabled() gate.
		filepath.Join("internal", "obs", "stream.go"): 6,
		// hotpath-alloc: span buffer's first-trace build and the two
		// capacity-bounded appends.
		filepath.Join("internal", "telemetry", "span.go"): 3,
		// pooled-concurrency: the CLI's long-lived HTTP accept loop.
		filepath.Join("internal", "cli", "cli.go"): 1,
		// pooled-concurrency: the batch coordinator's singleton epoch
		// loop, joined by Stop via the done channel.
		filepath.Join("internal", "batch", "batch.go"): 1,
	}

	got := map[string]int{}
	dir := filepath.Join(root, "internal")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range entries {
		if !pkg.IsDir() || pkg.Name() == "analysis" {
			// internal/analysis implements the directives; its sources
			// mention them in docs and fixtures, not as suppressions.
			continue
		}
		pkgDir := filepath.Join(dir, pkg.Name())
		files, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range files {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(pkgDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if n := strings.Count(string(data), "//mpclint:ignore"); n > 0 {
				got[filepath.Join("internal", pkg.Name(), name)] = n
			}
		}
	}

	for f, n := range got {
		if want[f] != n {
			t.Errorf("%s carries %d mpclint suppressions, want %d — new code must pass the analyzers unsuppressed (update this pin only with a justified directive)", f, n, want[f])
		}
	}
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s expected to carry %d suppressions, found %d — if they were removed, update this pin", f, n, got[f])
		}
	}
}
