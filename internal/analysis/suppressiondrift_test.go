package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoSuppressionDrift pins the //mpclint:ignore directives on
// decision-path production code to the known, argued-for set. New
// decision-path code (e.g. the compiled-forest inference files) must
// satisfy the analyzers outright; a suppression only joins this list
// with a justification in its directive text and a deliberate update
// here.
func TestNoSuppressionDrift(t *testing.T) {
	root := filepath.Join("..", "..")
	want := map[string]int{
		// rf.go grows trees with bit-exact split decisions; its three
		// float-eq suppressions are the byte-identical-forest guarantee.
		filepath.Join("internal", "rf", "rf.go"): 3,
	}

	got := map[string]int{}
	for _, pkg := range []string{"core", "rf", "policy", "predict", "sim"} {
		dir := filepath.Join(root, "internal", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if n := strings.Count(string(data), "//mpclint:ignore"); n > 0 {
				got[filepath.Join("internal", pkg, name)] = n
			}
		}
	}

	for f, n := range got {
		if want[f] != n {
			t.Errorf("%s carries %d mpclint suppressions, want %d — new decision-path code must pass the analyzers unsuppressed (update this pin only with a justified directive)", f, n, want[f])
		}
	}
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s expected to carry %d suppressions, found %d — if they were removed, update this pin", f, n, got[f])
		}
	}
}
