package analysis

import "testing"

func TestHotpathAlloc(t *testing.T) { testCheck(t, "hotpath-alloc") }
