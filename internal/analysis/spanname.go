package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// spanMethods are the telemetry.Context methods that mint a span (or
// aggregate phase) from a name argument, keyed by the argument's index.
var spanMethods = map[string]int{
	"StartRoot":   0,
	"Start":       0,
	"RecordSince": 0,
	"EndPhase":    0,
}

func init() {
	Register(&Check{
		Name: "span-name",
		Doc:  "span names passed to telemetry.Context must be literal and match ^mpcdvfs_[a-z0-9_]+$",
		Run:  runSpanName,
	})
}

// runSpanName enforces the span-naming contract, the tracing twin of
// metric-name: every span the decision path emits must carry the
// mpcdvfs_ prefix so /debug/trace consumers (cmd/loadgen's phase
// breakdown, dashboards) can rely on one stable namespace, and the
// name must be a compile-time constant so the contract is checkable.
func runSpanName(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := spanMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			recv := p.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			named := namedReceiver(recv)
			if named == nil || named.Obj().Name() != "Context" ||
				named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/telemetry") {
				return true
			}
			tv, ok := p.Pkg.Info.Types[call.Args[argIdx]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(call.Args[argIdx].Pos(), "span name passed to Context.%s is not a compile-time constant; use one of the telemetry.Span* constants so the mpcdvfs_ naming contract is checkable", sel.Sel.Name)
				return true
			}
			if name := constant.StringVal(tv.Value); !metricNameRE.MatchString(name) {
				p.Reportf(call.Args[argIdx].Pos(), "span name %q violates the naming contract %s", name, metricNameRE)
			}
			return true
		})
	}
}
