package analysis

import "testing"

func TestSnapshotMutation(t *testing.T) { testCheck(t, "snapshot-mutation") }
