package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// DirectivePrefix is the comment form that suppresses one finding:
//
//	//mpclint:ignore <check-name> <reason>
//
// Like all Go tool directives it allows no space between // and the
// verb. A directive is line-anchored: it suppresses findings of the
// named check on its own source line (trailing-comment placement) and
// on the line directly below it (own-line placement) — nothing else.
// It is check-scoped: <check-name> must name one registered check, so a
// directive can never blanket-silence the suite. The reason is
// mandatory and non-empty; a suppression that cannot say why it exists
// is reported as a finding itself (pseudo-check "mpclint-directive").
const DirectivePrefix = "//mpclint:ignore"

// DirectiveCheck is the pseudo-check name under which malformed or
// unknown-check directives are reported. It is always on: a typo in a
// suppression must not silently re-enable the finding it targets while
// hiding the typo.
const DirectiveCheck = "mpclint-directive"

var checkNameRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// Directive is one parsed //mpclint:ignore comment.
type Directive struct {
	Check  string
	Reason string
	File   string
	Line   int // line the comment itself is on
}

// ParseDirective parses the text of one comment (as ast.Comment.Text
// stores it, including the // or /* markers). It returns ok=false when
// the comment is not an mpclint directive at all; err != nil when it
// tries to be one but is malformed. Malformed cases: block-comment
// form, space between // and the verb, a missing or invalid check
// name, or an empty reason.
func ParseDirective(text string) (check, reason string, ok bool, err error) {
	const verb = "mpclint:ignore"
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		inner := strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
		if strings.HasPrefix(strings.TrimSpace(inner), verb) {
			return "", "", true, fmt.Errorf("mpclint:ignore must be a line comment (//) so it anchors to one line")
		}
		return "", "", false, nil
	}
	rest, anchored := strings.CutPrefix(body, verb)
	if !anchored {
		// `// mpclint:ignore ...` is a directive with an illegal space;
		// a comment that merely mentions the verb mid-sentence is prose.
		if strings.HasPrefix(strings.TrimSpace(body), verb) {
			return "", "", true, fmt.Errorf("malformed directive: write %q with no space between // and the verb", DirectivePrefix)
		}
		return "", "", false, nil
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //mpclint:ignored — some other word, not our verb.
		return "", "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true, fmt.Errorf("directive names no check: want %q", DirectivePrefix+" <check> <reason>")
	}
	check = fields[0]
	if !checkNameRE.MatchString(check) {
		return "", "", true, fmt.Errorf("invalid check name %q in directive (want lowercase kebab-case)", check)
	}
	reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return "", "", true, fmt.Errorf("directive for check %q has no reason; suppressions must say why", check)
	}
	return check, reason, true, nil
}

// Directives extracts every suppression directive from the files,
// returning the well-formed ones and a diagnostic for each malformed or
// unknown-check one.
func Directives(fset *token.FileSet, files []*ast.File) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Position: fset.Position(pos),
			Check:    DirectiveCheck,
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, reason, ok, err := ParseDirective(c.Text)
				if !ok {
					continue
				}
				if err != nil {
					report(c.Pos(), err.Error())
					continue
				}
				if _, known := Lookup(check); !known {
					report(c.Pos(), fmt.Sprintf("directive suppresses unknown check %q", check))
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, Directive{
					Check:  check,
					Reason: reason,
					File:   pos.Filename,
					Line:   pos.Line,
				})
			}
		}
	}
	return dirs, bad
}

// Suppress drops every diagnostic matched by a directive: same file,
// same check, and a line equal to the directive's line or the line
// directly below it. Directive diagnostics (DirectiveCheck) are never
// suppressed.
func Suppress(diags []Diagnostic, dirs []Directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file  string
		check string
		line  int
	}
	covered := make(map[key]bool, 2*len(dirs))
	for _, d := range dirs {
		covered[key{d.File, d.Check, d.Line}] = true
		covered[key{d.File, d.Check, d.Line + 1}] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Check != DirectiveCheck &&
			covered[key{d.Position.Filename, d.Check, d.Position.Line}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
