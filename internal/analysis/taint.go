package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Taint records why one function is considered tainted: either the
// function itself contains a sink (SelfDesc set, Via zero), or one of
// its call edges leads — possibly through many hops — to a sink (Via
// set to the witness edge, chosen as a shortest path for readable
// messages).
type Taint struct {
	Via      CallEdge // witness edge toward the sink; zero for self-sinks
	SelfDesc string   // description when the function itself is the sink
	Depth    int      // hops to the sink (0 for self-sinks)
}

// ReachConfig parameterizes one backward taint propagation over a call
// graph.
type ReachConfig struct {
	// SinkCall classifies an edge whose callee is itself a sink (e.g. a
	// call to time.Now). It returns a human-readable description of the
	// sink and true, or false for a harmless edge.
	SinkCall func(e CallEdge) (string, bool)
	// SinkNode classifies a module function that is a sink by its own
	// body (e.g. it contains a multi-case select), independent of what
	// it calls. Optional.
	SinkNode func(fn *types.Func, g *CallGraph) (string, bool)
	// Stop, when it returns true for a module function, prevents that
	// function's taint from flowing into its callers — a sanctioned
	// boundary (e.g. the telemetry package, which owns the clock by
	// design). Optional.
	Stop func(fn *types.Func, g *CallGraph) bool
}

// Reach computes the set of module functions from which a sink is
// reachable, with a shortest witness chain per function. Propagation is
// breadth-first from the sinks over reverse edges, so Via chains are
// minimal; ties are broken deterministically by source position.
func Reach(g *CallGraph, cfg ReachConfig) map[*types.Func]*Taint {
	taint := map[*types.Func]*Taint{}
	var frontier []*types.Func

	// Seed: self-sinks first, then functions with a direct sink edge.
	for _, fn := range g.Funcs() {
		if cfg.SinkNode != nil {
			if desc, ok := cfg.SinkNode(fn, g); ok {
				taint[fn] = &Taint{SelfDesc: desc}
				frontier = append(frontier, fn)
				continue
			}
		}
		if cfg.SinkCall == nil {
			continue
		}
		for _, e := range g.Edges(fn) {
			if _, ok := cfg.SinkCall(e); ok {
				taint[fn] = &Taint{Via: e, Depth: 1}
				frontier = append(frontier, fn)
				break
			}
		}
	}

	// BFS over reverse edges. Each layer is expanded in deterministic
	// (callee position, edge position) order so the first witness a
	// caller receives is stable run to run.
	for depth := 2; len(frontier) > 0; depth++ {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].Pos() < frontier[j].Pos() })
		var next []*types.Func
		for _, callee := range frontier {
			if cfg.Stop != nil && cfg.Stop(callee, g) {
				continue
			}
			callers := append([]CallEdge(nil), g.Callers(callee)...)
			sort.Slice(callers, func(i, j int) bool { return callers[i].Pos < callers[j].Pos })
			for _, e := range callers {
				if _, seen := taint[e.Caller]; seen {
					continue
				}
				taint[e.Caller] = &Taint{Via: e, Depth: depth}
				next = append(next, e.Caller)
			}
		}
		frontier = next
	}
	return taint
}

// Chain renders the witness call chain from fn to its sink as a
// human-readable arrow sequence ending in the sink description, e.g.
//
//	core.Decide → util.Stamp → time.Now (wall-clock read)
//
// Positions of intermediate hops come from the graph's file set; the
// final sink position is included so the offending call is one click
// away even when the chain crosses packages.
func Chain(g *CallGraph, cfg ReachConfig, taint map[*types.Func]*Taint, fn *types.Func, via CallEdge) string {
	var b strings.Builder
	b.WriteString(funcLabel(fn))
	e := via
	for hops := 0; hops < 64; hops++ {
		if cfg.SinkCall != nil {
			if desc, ok := cfg.SinkCall(e); ok {
				fmt.Fprintf(&b, " → %s (%s at %s)", funcLabel(e.Callee), desc, shortPos(g, e.Pos))
				return b.String()
			}
		}
		t := taint[e.Callee]
		if t == nil {
			fmt.Fprintf(&b, " → %s", funcLabel(e.Callee))
			return b.String()
		}
		fmt.Fprintf(&b, " → %s", funcLabel(e.Callee))
		if t.SelfDesc != "" {
			fmt.Fprintf(&b, " (%s)", t.SelfDesc)
			return b.String()
		}
		e = t.Via
	}
	b.WriteString(" → …")
	return b.String()
}

// funcLabel renders a function name compactly: package base name plus
// receiver-qualified method name.
func funcLabel(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	return pkg.Name() + "." + name
}

// shortPos renders a position as file:line with the directory stripped:
// chains already identify packages by name, and full absolute paths
// would bloat every message.
func shortPos(g *CallGraph, pos token.Pos) string {
	p := g.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
