package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. mpcdvfs/internal/core
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads every package of one module, type-checking each exactly
// once: pkgs is the package-level cache, so when many packages import
// mpcdvfs/internal/hw its source is parsed and checked a single time
// and `mpclint ./...` completes in one type-check pass over the module.
// Standard-library dependencies are resolved by go/importer's "source"
// importer (itself cached per Loader), so the loader needs no compiled
// export data, network access, or tooling beyond the stdlib.
type Loader struct {
	Root   string // module root directory (holds go.mod)
	Module string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // import-cycle guard
}

// NewLoader prepares a loader for the module rooted at dir, reading the
// module path from dir/go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot read %s (mpclint must run at a module root): %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll discovers and loads every package under the module root,
// returned sorted by import path. Directories named testdata or vendor,
// and directories whose name starts with "." or "_", are skipped — the
// same tree-walking convention the go tool uses.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if names, err := goSources(path); err != nil {
			return err
		} else if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor maps an absolute directory under the module root to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor for paths inside the module.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loadDir parses and type-checks the package in dir, using the cache.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-internal imports back through the
// loader's cache and everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LintModule is the one-call entry the fixture tests share: load every
// package of the module rooted at dir, run the given checks serially,
// return the suppressed-and-sorted diagnostics.
func LintModule(dir string, checks []*Check) ([]Diagnostic, error) {
	return LintModuleWorkers(dir, checks, 1)
}

// LintModuleWorkers is LintModule with a worker count for the check
// fan-out: loading and type-checking stay single-pass (the loader's
// cache is not concurrency-safe and is dominated by the stdlib source
// importer anyway), while the checks themselves fan out through
// RunWorkers. The diagnostics are byte-identical for every worker
// count.
func LintModuleWorkers(dir string, checks []*Check, workers int) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	return RunWorkers(pkgs, checks, workers), nil
}
