package obs

import (
	"mpcdvfs/internal/metrics"
)

// Metric names exported by the Metrics observer. README's Observability
// section documents the full schema.
const (
	MetricDecisions      = "mpcdvfs_decisions_total"
	MetricEvals          = "mpcdvfs_predictor_evals_total"
	MetricKernels        = "mpcdvfs_kernels_total"
	MetricKnobChanges    = "mpcdvfs_knob_changes_total"
	MetricFallbacks      = "mpcdvfs_fallbacks_total"
	MetricHorizonLength  = "mpcdvfs_horizon_length"
	MetricHorizonChanges = "mpcdvfs_horizon_changes_total"
	MetricPredictionErr  = "mpcdvfs_prediction_error"
	MetricOverheadMS     = "mpcdvfs_decision_overhead_ms"
	MetricKernelTimeMS   = "mpcdvfs_kernel_time_ms"
	MetricEnergyMJ       = "mpcdvfs_energy_millijoules_total"
	MetricDieTempC       = "mpcdvfs_die_temp_celsius"
)

// Energy domain label values of MetricEnergyMJ.
const (
	EnergyDomainGPU      = "gpu"
	EnergyDomainCPU      = "cpu"
	EnergyDomainOverhead = "overhead"
	EnergyDomainCPUPhase = "cpu_phase"
)

// Metrics is an Observer that aggregates events into a metrics.Registry
// for Prometheus-style scraping. It is safe for concurrent use (the
// registry's hot path is atomic).
type Metrics struct {
	decisions      *metrics.CounterVec   // {policy,app}
	evals          *metrics.CounterVec   // {policy,app}
	kernels        *metrics.CounterVec   // {policy,app}
	knobChanges    *metrics.CounterVec   // {policy,app}
	fallbacks      *metrics.CounterVec   // {policy,app,reason}
	horizonLen     *metrics.GaugeVec     // {policy,app}
	horizonChanges *metrics.CounterVec   // {policy,app}
	predErr        *metrics.HistogramVec // {policy,app,domain}
	overheadMS     *metrics.HistogramVec // {policy,app}
	kernelTimeMS   *metrics.HistogramVec // {policy,app}
	energyMJ       *metrics.CounterVec   // {policy,app,domain}
	dieTempC       *metrics.GaugeVec     // {policy,app}
}

// NewMetrics registers the runtime's metric families on r and returns
// the recording observer. Several observers may share one registry; the
// families are registered idempotently.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		decisions: r.Counter(MetricDecisions,
			"Configuration decisions made by a power-management policy.",
			"policy", "app"),
		evals: r.Counter(MetricEvals,
			"Predictor evaluations spent by decisions.",
			"policy", "app"),
		kernels: r.Counter(MetricKernels,
			"Kernel invocations executed.",
			"policy", "app"),
		knobChanges: r.Counter(MetricKnobChanges,
			"DVFS/CU knob reconfigurations between consecutive kernels.",
			"policy", "app"),
		fallbacks: r.Counter(MetricFallbacks,
			"Decisions that took a degraded path instead of the policy's steady-state behaviour.",
			"policy", "app", "reason"),
		horizonLen: r.Gauge(MetricHorizonLength,
			"Most recent adaptive prediction-horizon length (kernels).",
			"policy", "app"),
		horizonChanges: r.Counter(MetricHorizonChanges,
			"Adaptive-horizon length changes.",
			"policy", "app"),
		predErr: r.Histogram(MetricPredictionErr,
			"Relative predicted-vs-measured error per kernel, by domain (time or power).",
			[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2},
			"policy", "app", "domain"),
		overheadMS: r.Histogram(MetricOverheadMS,
			"Optimizer wall time charged per decision after CPU-phase hiding (ms).",
			[]float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50},
			"policy", "app"),
		kernelTimeMS: r.Histogram(MetricKernelTimeMS,
			"Kernel execution time (ms).",
			[]float64{0.1, 0.5, 1, 5, 10, 50, 100, 500},
			"policy", "app"),
		energyMJ: r.Counter(MetricEnergyMJ,
			"Energy consumed, by domain (gpu, cpu, overhead, cpu_phase), in millijoules.",
			"policy", "app", "domain"),
		dieTempC: r.Gauge(MetricDieTempC,
			"Die temperature after the most recent kernel (0 when the thermal path is disabled).",
			"policy", "app"),
	}
}

// OnDecision implements Observer.
func (m *Metrics) OnDecision(e DecisionEvent) {
	m.decisions.With(e.Policy, e.App).Inc()
	if e.Evals > 0 {
		m.evals.With(e.Policy, e.App).Add(float64(e.Evals))
	}
	if e.KnobChanges > 0 {
		m.knobChanges.With(e.Policy, e.App).Add(float64(e.KnobChanges))
	}
	m.overheadMS.With(e.Policy, e.App).Observe(e.OverheadMS)
}

// OnKernelDone implements Observer.
func (m *Metrics) OnKernelDone(e KernelEvent) {
	m.kernels.With(e.Policy, e.App).Inc()
	m.kernelTimeMS.With(e.Policy, e.App).Observe(e.TimeMS)
	m.energyMJ.With(e.Policy, e.App, EnergyDomainGPU).Add(e.GPUEnergyMJ)
	m.energyMJ.With(e.Policy, e.App, EnergyDomainCPU).Add(e.CPUEnergyMJ)
	m.energyMJ.With(e.Policy, e.App, EnergyDomainOverhead).Add(e.OverheadEnergyMJ)
	m.energyMJ.With(e.Policy, e.App, EnergyDomainCPUPhase).Add(e.CPUPhaseEnergyMJ)
	m.dieTempC.With(e.Policy, e.App).Set(e.TempC)
}

// OnHorizonChange implements Observer.
func (m *Metrics) OnHorizonChange(e HorizonEvent) {
	m.horizonLen.With(e.Policy, e.App).Set(float64(e.Horizon))
	m.horizonChanges.With(e.Policy, e.App).Inc()
}

// OnModelError implements Observer.
func (m *Metrics) OnModelError(e ModelErrorEvent) {
	m.predErr.With(e.Policy, e.App, "time").Observe(e.TimeError())
	m.predErr.With(e.Policy, e.App, "power").Observe(e.PowerError())
}

// OnFallback implements Observer.
func (m *Metrics) OnFallback(e FallbackEvent) {
	m.fallbacks.With(e.Policy, e.App, e.Reason).Inc()
}
