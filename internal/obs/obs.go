// Package obs is the structured observability layer of the MPC runtime:
// a hook API that the simulation engine and the policies call at every
// decision point of the Fig. 6 feedback loop. Consumers implement
// Observer (or compose the provided ones) to export metrics, stream
// decision events as JSONL, or log them; the default Nop observer makes
// the instrumented paths free when observability is disabled.
//
// Event producers:
//
//   - sim.Engine emits OnDecision after charging a decision's overhead,
//     OnFallback when the decision records a degraded path, and
//     OnKernelDone with the full measured accounting of the kernel;
//   - policy.MPC emits OnHorizonChange when the adaptive horizon
//     generator moves, and OnModelError with the predicted-vs-measured
//     feedback of each kernel;
//   - policy.PPK emits OnModelError;
//   - sim.TurboCore reports its reactive thermal guard through the
//     decision Fallback field.
package obs

import "mpcdvfs/internal/hw"

// DecisionEvent describes one configuration decision as charged by the
// engine: what was chosen, what the search spent, and what it cost.
type DecisionEvent struct {
	Policy string    `json:"policy"` // policy name (sim.Policy.Name)
	App    string    `json:"app"`    // application name
	Index  int       `json:"index"`  // kernel invocation index within the run
	Config hw.Config `json:"config"` // configuration chosen
	// Evals is the number of predictor evaluations the decision spent.
	Evals int `json:"evals"`
	// SearchIters is the number of per-kernel configuration searches the
	// decision ran (window length for MPC, 1 for PPK's sweep, 0 for
	// search-free policies).
	SearchIters int `json:"search_iters"`
	// Horizon is the prediction-horizon length used (0 when the policy
	// has no horizon concept or could not afford one).
	Horizon int `json:"horizon"`
	// OverheadMS is the optimizer wall time charged after CPU-phase
	// hiding, including any DVFS transition stall.
	OverheadMS float64 `json:"overhead_ms"`
	// KnobChanges counts knobs reconfigured relative to the previous
	// kernel.
	KnobChanges int `json:"knob_changes"`
}

// KernelEvent is the measured outcome of one kernel invocation — the
// per-kernel accounting the engine appends to the run result.
type KernelEvent struct {
	Policy string    `json:"policy"`
	App    string    `json:"app"`
	Index  int       `json:"index"`
	Kernel string    `json:"kernel"`
	Config hw.Config `json:"config"`

	TimeMS     float64 `json:"time_ms"`
	OverheadMS float64 `json:"overhead_ms"`
	CPUPhaseMS float64 `json:"cpu_phase_ms"`
	Insts      float64 `json:"insts"`

	GPUEnergyMJ      float64 `json:"gpu_energy_mj"`
	CPUEnergyMJ      float64 `json:"cpu_energy_mj"`
	OverheadEnergyMJ float64 `json:"overhead_energy_mj"`
	CPUPhaseEnergyMJ float64 `json:"cpu_phase_energy_mj"`

	Evals          int     `json:"evals"`
	TempC          float64 `json:"temp_c"`
	ThrottleFactor float64 `json:"throttle_factor"`
}

// HorizonEvent reports a change of the adaptive prediction horizon
// (§IV-A4): the silent shrinking the issue's motivation calls out.
type HorizonEvent struct {
	Policy  string `json:"policy"`
	App     string `json:"app"`
	Index   int    `json:"index"`   // decision index at which the horizon changed
	Horizon int    `json:"horizon"` // new horizon length
	Prev    int    `json:"prev"`    // previous horizon length (-1 on the first MPC decision)
	Full    int    `json:"full"`    // N, the full-horizon bound
}

// ModelErrorEvent compares the predictor's estimate for the executed
// configuration against the measurement fed back to the policy.
type ModelErrorEvent struct {
	Policy string `json:"policy"`
	App    string `json:"app"`
	Index  int    `json:"index"`

	PredictedTimeMS float64 `json:"predicted_time_ms"`
	MeasuredTimeMS  float64 `json:"measured_time_ms"`
	PredictedPowerW float64 `json:"predicted_power_w"` // GPU+NB power
	MeasuredPowerW  float64 `json:"measured_power_w"`
}

// TimeError returns the relative time error |pred−meas|/meas (0 when the
// measurement is non-positive).
func (e ModelErrorEvent) TimeError() float64 {
	return relErr(e.PredictedTimeMS, e.MeasuredTimeMS)
}

// PowerError returns the relative power error |pred−meas|/meas.
func (e ModelErrorEvent) PowerError() float64 {
	return relErr(e.PredictedPowerW, e.MeasuredPowerW)
}

func relErr(pred, meas float64) float64 {
	if meas <= 0 {
		return 0
	}
	d := pred - meas
	if d < 0 {
		d = -d
	}
	return d / meas
}

// Fallback reasons reported through FallbackEvent and
// sim.Decision.Fallback.
const (
	// FallbackColdStart: no performance counters exist yet, fail-safe
	// applied (§V-B first kernel).
	FallbackColdStart = "cold-start"
	// FallbackProfiling: MPC's first invocation runs PPK while the
	// pattern extractor learns the kernel sequence (§V-B).
	FallbackProfiling = "profiling"
	// FallbackZeroHorizon: the adaptive horizon hit zero — optimization
	// is unaffordable, fail-safe applied.
	FallbackZeroHorizon = "zero-horizon"
	// FallbackPatternDivergence: the app diverged from its recorded
	// kernel sequence; MPC degraded to history-based behaviour.
	FallbackPatternDivergence = "pattern-divergence"
	// FallbackThermalGuard: Turbo Core's reactive thermal guard shed CPU
	// power.
	FallbackThermalGuard = "thermal-guard"
)

// FallbackEvent reports that a decision took a degraded path rather than
// the policy's steady-state behaviour.
type FallbackEvent struct {
	Policy string `json:"policy"`
	App    string `json:"app"`
	Index  int    `json:"index"`
	Reason string `json:"reason"` // one of the Fallback* constants
}

// Observer receives runtime events. Implementations must be safe for
// concurrent use when the engine they observe is shared across
// goroutines; all callbacks are invoked synchronously on the simulation
// path, so heavy work should be deferred.
type Observer interface {
	OnDecision(DecisionEvent)
	OnKernelDone(KernelEvent)
	OnHorizonChange(HorizonEvent)
	OnModelError(ModelErrorEvent)
	OnFallback(FallbackEvent)
}

// Nop is the disabled observer: every callback is empty, and producers
// use Enabled to skip event construction entirely, so instrumentation
// costs nothing when observability is off.
type Nop struct{}

// OnDecision implements Observer.
func (Nop) OnDecision(DecisionEvent) {}

// OnKernelDone implements Observer.
func (Nop) OnKernelDone(KernelEvent) {}

// OnHorizonChange implements Observer.
func (Nop) OnHorizonChange(HorizonEvent) {}

// OnModelError implements Observer.
func (Nop) OnModelError(ModelErrorEvent) {}

// OnFallback implements Observer.
func (Nop) OnFallback(FallbackEvent) {}

// Enabled reports whether o is a real observer (non-nil and not Nop).
// Producers guard event construction with it so the disabled path costs
// one comparison.
func Enabled(o Observer) bool {
	if o == nil {
		return false
	}
	_, nop := o.(Nop)
	return !nop
}

// Instrumentable is implemented by policies that emit their own events
// (horizon changes, model errors). The engine threads its observer into
// such policies at the start of every run.
type Instrumentable interface {
	SetObserver(Observer)
}

// multi fans events out to several observers.
type multi []Observer

// Multi composes observers, dropping nil and Nop entries. It returns Nop
// when nothing remains and the observer itself when only one does.
func Multi(os ...Observer) Observer {
	var m multi
	for _, o := range os {
		if Enabled(o) {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return Nop{}
	case 1:
		return m[0]
	}
	return m
}

// OnDecision implements Observer.
func (m multi) OnDecision(e DecisionEvent) {
	for _, o := range m {
		o.OnDecision(e)
	}
}

// OnKernelDone implements Observer.
func (m multi) OnKernelDone(e KernelEvent) {
	for _, o := range m {
		o.OnKernelDone(e)
	}
}

// OnHorizonChange implements Observer.
func (m multi) OnHorizonChange(e HorizonEvent) {
	for _, o := range m {
		o.OnHorizonChange(e)
	}
}

// OnModelError implements Observer.
func (m multi) OnModelError(e ModelErrorEvent) {
	for _, o := range m {
		o.OnModelError(e)
	}
}

// OnFallback implements Observer.
func (m multi) OnFallback(e FallbackEvent) {
	for _, o := range m {
		o.OnFallback(e)
	}
}
