package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Event type tags of the JSONL stream.
const (
	EventDecision      = "decision"
	EventKernelDone    = "kernel"
	EventHorizonChange = "horizon"
	EventModelError    = "model_error"
	EventFallback      = "fallback"
)

// jsonlEnvelope is one line of the event stream: a type tag, a wall-clock
// timestamp, and exactly one populated payload field.
type jsonlEnvelope struct {
	Type       string           `json:"type"`
	TS         time.Time        `json:"ts"`
	Decision   *DecisionEvent   `json:"decision,omitempty"`
	Kernel     *KernelEvent     `json:"kernel,omitempty"`
	Horizon    *HorizonEvent    `json:"horizon,omitempty"`
	ModelError *ModelErrorEvent `json:"model_error,omitempty"`
	Fallback   *FallbackEvent   `json:"fallback,omitempty"`
}

// JSONLWriter is an Observer that streams every event as one JSON line,
// so long runs can be tailed live (tail -f | jq) instead of waiting for
// a buffered post-hoc dump. It is safe for concurrent use; the first
// write error is retained and surfaced by Err, and later events are
// dropped.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a streaming event writer over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Err returns the first write error encountered, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *JSONLWriter) emit(env jsonlEnvelope) {
	env.TS = time.Now().UTC()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(env)
}

// OnDecision implements Observer.
func (j *JSONLWriter) OnDecision(e DecisionEvent) {
	j.emit(jsonlEnvelope{Type: EventDecision, Decision: &e})
}

// OnKernelDone implements Observer.
func (j *JSONLWriter) OnKernelDone(e KernelEvent) {
	j.emit(jsonlEnvelope{Type: EventKernelDone, Kernel: &e})
}

// OnHorizonChange implements Observer.
func (j *JSONLWriter) OnHorizonChange(e HorizonEvent) {
	j.emit(jsonlEnvelope{Type: EventHorizonChange, Horizon: &e})
}

// OnModelError implements Observer.
func (j *JSONLWriter) OnModelError(e ModelErrorEvent) {
	j.emit(jsonlEnvelope{Type: EventModelError, ModelError: &e})
}

// OnFallback implements Observer.
func (j *JSONLWriter) OnFallback(e FallbackEvent) {
	j.emit(jsonlEnvelope{Type: EventFallback, Fallback: &e})
}

// Slog is an Observer that logs every event through a structured logger.
// Decisions, kernel completions and model errors log at Debug (they are
// per-kernel volume); horizon changes and fallbacks log at Info — they
// are the rarer, decision-relevant signals.
type Slog struct {
	l *slog.Logger
}

// NewSlog returns a logging observer over l (slog.Default() when nil).
func NewSlog(l *slog.Logger) *Slog {
	if l == nil {
		l = slog.Default()
	}
	return &Slog{l: l}
}

// enabled gates each event before its variadic attribute list is built.
// Without it every suppressed Debug event still pays the attrs slice
// plus one interface box per value — per kernel, on the decision path.
func (s *Slog) enabled(level slog.Level) bool {
	return s.l.Enabled(context.Background(), level)
}

// OnDecision implements Observer.
//
//mpclint:hotpath suppressed levels pinned at 0 allocs/op by TestSlogDisabledLevelZeroAlloc; the enabled() gate precedes every attribute build
func (s *Slog) OnDecision(e DecisionEvent) {
	if !s.enabled(slog.LevelDebug) {
		return
	}
	//mpclint:ignore hotpath-alloc attribute build runs only past the enabled() gate; suppressed levels return first, pinned by TestSlogDisabledLevelZeroAlloc
	s.l.Debug("decision",
		"policy", e.Policy, "app", e.App, "index", e.Index,
		//mpclint:ignore hotpath-alloc Config.String renders attributes past the enabled() gate only
		"config", e.Config.String(), "evals", e.Evals,
		"horizon", e.Horizon, "overhead_ms", e.OverheadMS)
}

// OnKernelDone implements Observer.
//
//mpclint:hotpath suppressed levels pinned at 0 allocs/op by TestSlogDisabledLevelZeroAlloc; the enabled() gate precedes every attribute build
func (s *Slog) OnKernelDone(e KernelEvent) {
	if !s.enabled(slog.LevelDebug) {
		return
	}
	//mpclint:ignore hotpath-alloc attribute build runs only past the enabled() gate; suppressed levels return first, pinned by TestSlogDisabledLevelZeroAlloc
	s.l.Debug("kernel done",
		"policy", e.Policy, "app", e.App, "index", e.Index,
		"kernel", e.Kernel, "time_ms", e.TimeMS,
		"gpu_energy_mj", e.GPUEnergyMJ, "cpu_energy_mj", e.CPUEnergyMJ)
}

// OnHorizonChange implements Observer.
//
//mpclint:hotpath suppressed levels pinned at 0 allocs/op by TestSlogDisabledLevelZeroAlloc; the enabled() gate precedes every attribute build
func (s *Slog) OnHorizonChange(e HorizonEvent) {
	if !s.enabled(slog.LevelInfo) {
		return
	}
	//mpclint:ignore hotpath-alloc attribute build runs only past the enabled() gate; suppressed levels return first, pinned by TestSlogDisabledLevelZeroAlloc
	s.l.Info("horizon change",
		"policy", e.Policy, "app", e.App, "index", e.Index,
		"horizon", e.Horizon, "prev", e.Prev, "full", e.Full)
}

// OnModelError implements Observer.
//
//mpclint:hotpath suppressed levels pinned at 0 allocs/op by TestSlogDisabledLevelZeroAlloc; the enabled() gate precedes every attribute build
func (s *Slog) OnModelError(e ModelErrorEvent) {
	if !s.enabled(slog.LevelDebug) {
		return
	}
	//mpclint:ignore hotpath-alloc attribute build runs only past the enabled() gate; suppressed levels return first, pinned by TestSlogDisabledLevelZeroAlloc
	s.l.Debug("model error",
		"policy", e.Policy, "app", e.App, "index", e.Index,
		"time_error", e.TimeError(), "power_error", e.PowerError())
}

// OnFallback implements Observer.
//
//mpclint:hotpath suppressed levels pinned at 0 allocs/op by TestSlogDisabledLevelZeroAlloc; the enabled() gate precedes every attribute build
func (s *Slog) OnFallback(e FallbackEvent) {
	if !s.enabled(slog.LevelInfo) {
		return
	}
	//mpclint:ignore hotpath-alloc attribute build runs only past the enabled() gate; suppressed levels return first, pinned by TestSlogDisabledLevelZeroAlloc
	s.l.Info("fallback",
		"policy", e.Policy, "app", e.App, "index", e.Index,
		"reason", e.Reason)
}
