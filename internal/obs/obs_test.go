package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// newInstrumentedRun executes Spmv under MPC (profiling + steady run)
// with the given observer attached and returns the engine results.
func newInstrumentedRun(t *testing.T, o obs.Observer) {
	t.Helper()
	app, err := workload.ByName("Spmv")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(hw.DefaultSpace())
	eng.Obs = o
	_, target, err := eng.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	oracle := predict.NewOracle()
	for _, k := range app.Kernels {
		oracle.Register(k)
	}
	m := policy.NewMPC(oracle, hw.DefaultSpace())
	if _, err := eng.RunRepeated(&app, m, target, 2); err != nil {
		t.Fatal(err)
	}
	p := policy.NewPPK(oracle, hw.DefaultSpace())
	if _, err := eng.Run(&app, p, target, true); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsObserverEndToEnd runs real policies under an instrumented
// engine and checks that the issue's headline metrics come out of the
// exposition populated.
func TestMetricsObserverEndToEnd(t *testing.T) {
	reg := metrics.New()
	newInstrumentedRun(t, obs.NewMetrics(reg))

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		`mpcdvfs_decisions_total{policy="mpc",app="Spmv"}`,
		`mpcdvfs_decisions_total{policy="ppk",app="Spmv"}`,
		`mpcdvfs_decisions_total{policy="turbo-core",app="Spmv"}`,
		`mpcdvfs_kernels_total{policy="mpc",app="Spmv"}`,
		`mpcdvfs_horizon_length{policy="mpc",app="Spmv"}`,
		`mpcdvfs_prediction_error_bucket{policy="mpc",app="Spmv",domain="time",le="0.01"}`,
		`mpcdvfs_prediction_error_count{policy="ppk",app="Spmv",domain="power"}`,
		`mpcdvfs_fallbacks_total{policy="mpc",app="Spmv",reason="profiling"}`,
		`mpcdvfs_energy_millijoules_total{policy="mpc",app="Spmv",domain="gpu"}`,
		`mpcdvfs_decision_overhead_ms_count{policy="mpc",app="Spmv"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Spmv has 30 kernels: 2 MPC runs and 1 Turbo Core baseline give 60
	// and 30 decisions respectively (the second baseline call for PPK's
	// target also runs turbo-core — 60 total there).
	if got := sampleValue(t, out, `mpcdvfs_decisions_total{policy="mpc",app="Spmv"}`); got != 60 {
		t.Errorf("mpc decisions = %v, want 60", got)
	}
	if got := sampleValue(t, out, `mpcdvfs_kernels_total{policy="ppk",app="Spmv"}`); got != 30 {
		t.Errorf("ppk kernels = %v, want 30", got)
	}
}

// sampleValue reads one sample back through the public text surface,
// which doubles as a format check.
func sampleValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(sc.Text(), sample+" "), 64)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found", sample)
	return 0
}

// TestJSONLWriterStream checks every event type appears in the stream
// and each line parses as JSON with exactly one payload.
func TestJSONLWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	newInstrumentedRun(t, w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var env map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		var typ string
		if err := json.Unmarshal(env["type"], &typ); err != nil {
			t.Fatal(err)
		}
		types[typ]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{
		obs.EventDecision, obs.EventKernelDone, obs.EventHorizonChange,
		obs.EventModelError, obs.EventFallback,
	} {
		if types[typ] == 0 {
			t.Errorf("no %q events in stream (got %v)", typ, types)
		}
	}
	// 120 decisions -> 120 decision and 120 kernel events.
	if types[obs.EventDecision] != 120 || types[obs.EventKernelDone] != 120 {
		t.Errorf("decision/kernel counts = %d/%d, want 120/120",
			types[obs.EventDecision], types[obs.EventKernelDone])
	}
}

// TestNopAndMulti pins the Enabled contract and Multi composition.
func TestNopAndMulti(t *testing.T) {
	if obs.Enabled(nil) || obs.Enabled(obs.Nop{}) {
		t.Error("nil/Nop must be disabled")
	}
	reg := metrics.New()
	m := obs.NewMetrics(reg)
	if !obs.Enabled(m) {
		t.Error("Metrics observer must be enabled")
	}
	if _, ok := obs.Multi(nil, obs.Nop{}).(obs.Nop); !ok {
		t.Error("Multi of disabled observers must collapse to Nop")
	}
	if obs.Multi(m, nil) != obs.Observer(m) {
		t.Error("Multi of one observer must return it unchanged")
	}
	var buf bytes.Buffer
	combo := obs.Multi(m, obs.NewJSONLWriter(&buf))
	combo.OnFallback(obs.FallbackEvent{Policy: "p", App: "a", Reason: obs.FallbackColdStart})
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `mpcdvfs_fallbacks_total{policy="p",app="a",reason="cold-start"} 1`) {
		t.Error("Multi did not fan out to metrics observer")
	}
	if !strings.Contains(buf.String(), `"reason":"cold-start"`) {
		t.Error("Multi did not fan out to JSONL writer")
	}
}

// TestSlogDisabledLevelZeroAlloc pins the Slog fast path: when an
// event's level is suppressed by the handler, the observer must return
// before building the variadic attribute list, so suppressed events
// cost zero heap allocations on the per-kernel decision path.
func TestSlogDisabledLevelZeroAlloc(t *testing.T) {
	// Info-level handler: Debug events (decision, kernel, model error)
	// are suppressed.
	s := obs.NewSlog(slog.New(slog.NewTextHandler(io.Discard,
		&slog.HandlerOptions{Level: slog.LevelInfo})))
	de := obs.DecisionEvent{Policy: "mpc", App: "a", Index: 3, Evals: 7}
	ke := obs.KernelEvent{Policy: "mpc", App: "a", Kernel: "k", TimeMS: 1}
	me := obs.ModelErrorEvent{Policy: "mpc", App: "a",
		PredictedTimeMS: 1, MeasuredTimeMS: 1.1}
	for name, fn := range map[string]func(){
		"OnDecision":   func() { s.OnDecision(de) },
		"OnKernelDone": func() { s.OnKernelDone(ke) },
		"OnModelError": func() { s.OnModelError(me) },
	} {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s at suppressed level: %.1f allocs/op, want 0", name, n)
		}
	}

	// Error-level handler: Info events (horizon, fallback) are
	// suppressed too.
	s = obs.NewSlog(slog.New(slog.NewTextHandler(io.Discard,
		&slog.HandlerOptions{Level: slog.LevelError})))
	he := obs.HorizonEvent{Policy: "mpc", App: "a", Horizon: 4, Prev: 8}
	fe := obs.FallbackEvent{Policy: "mpc", App: "a", Reason: obs.FallbackColdStart}
	for name, fn := range map[string]func(){
		"OnHorizonChange": func() { s.OnHorizonChange(he) },
		"OnFallback":      func() { s.OnFallback(fe) },
	} {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s at suppressed level: %.1f allocs/op, want 0", name, n)
		}
	}

	// Enabled levels still log: sanity-check the guard is not inverted.
	var buf bytes.Buffer
	s = obs.NewSlog(slog.New(slog.NewTextHandler(&buf,
		&slog.HandlerOptions{Level: slog.LevelDebug})))
	s.OnDecision(de)
	s.OnFallback(fe)
	if out := buf.String(); !strings.Contains(out, "decision") || !strings.Contains(out, "fallback") {
		t.Fatalf("enabled levels did not log: %q", out)
	}
}

// TestDisabledFanOutZeroAlloc pins the disabled fan-out contract: the
// Nop observer and a Multi composed only of disabled observers (which
// collapses to Nop) must emit events with zero heap allocations.
func TestDisabledFanOutZeroAlloc(t *testing.T) {
	de := obs.DecisionEvent{Policy: "mpc", App: "a", Index: 3}
	fe := obs.FallbackEvent{Policy: "mpc", App: "a", Reason: obs.FallbackColdStart}
	for name, o := range map[string]obs.Observer{
		"Nop":            obs.Nop{},
		"Multi-disabled": obs.Multi(nil, obs.Nop{}, nil),
	} {
		if n := testing.AllocsPerRun(100, func() {
			o.OnDecision(de)
			o.OnFallback(fe)
		}); n != 0 {
			t.Errorf("%s fan-out: %.1f allocs/op, want 0", name, n)
		}
	}
}

// TestModelErrorValues checks the relative-error helpers.
func TestModelErrorValues(t *testing.T) {
	e := obs.ModelErrorEvent{
		PredictedTimeMS: 12, MeasuredTimeMS: 10,
		PredictedPowerW: 9, MeasuredPowerW: 10,
	}
	if got := e.TimeError(); got < 0.199 || got > 0.201 {
		t.Errorf("TimeError = %v, want 0.2", got)
	}
	if got := e.PowerError(); got < 0.099 || got > 0.101 {
		t.Errorf("PowerError = %v, want 0.1", got)
	}
	zero := obs.ModelErrorEvent{PredictedTimeMS: 5}
	if zero.TimeError() != 0 {
		t.Error("zero measurement must yield zero error, not Inf")
	}
}
