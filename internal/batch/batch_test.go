// Tests for the epoch coordinator. The load-bearing one is the
// concurrent bit-exactness test: many goroutines routing sweeps through
// one coordinator must each get exactly the bytes their direct
// PredictSpace would produce, under -race. The rest defend the
// machinery: drain-on-Stop never strands a parked session, saturation
// rejects instead of blocking, unservable requests decline cleanly.
package batch_test

import (
	"sync"
	"testing"
	"time"

	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
)

var (
	rfOnce  sync.Once
	rfModel *predict.RandomForest
	rfErr   error
)

// trainedRF trains one small forest per test binary.
func trainedRF(t *testing.T) *predict.RandomForest {
	t.Helper()
	rfOnce.Do(func() {
		opt := predict.DefaultTrainOptions(77)
		opt.NumKernels = 40 // keep unit tests fast
		rfModel, rfErr = predict.TrainRandomForest(opt)
	})
	if rfErr != nil {
		t.Fatal(rfErr)
	}
	return rfModel
}

func testKernels() []kernel.Kernel {
	return []kernel.Kernel{
		kernel.NewComputeBound("cb", 1),
		kernel.NewMemoryBound("mb", 1),
		kernel.NewPeak("pk", 1),
		kernel.NewUnscalable("us", 1),
		kernel.NewBalanced("ba", 1),
		kernel.NewComputeBound("cb2", 2.5),
	}
}

// newRequest builds a reusable parked-submitter request.
func newRequest(m *predict.RandomForest, space hw.Space, cs counters.Set) *predict.SweepRequest {
	return &predict.SweepRequest{
		Model: m,
		Space: space,
		CS:    cs,
		Dst:   make([]predict.Estimate, space.Size()),
		Done:  make(chan struct{}, 1),
	}
}

// TestConcurrentSweepsBitExact is the determinism contract under
// contention: 6 sessions × 8 decisions race through one coordinator
// (tiny window, so epochs cut at arbitrary request boundaries), and
// every result must be bit-identical to the direct batched path. The
// sessions use RemoteSweep — the exact session-side type the serving
// stack wires — with submit-rejected decisions falling back to the
// direct path, as the optimizer would.
func TestConcurrentSweepsBitExact(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	ks := testKernels()

	want := make([][]predict.Estimate, len(ks))
	for i, k := range ks {
		want[i] = make([]predict.Estimate, space.Size())
		if !m.PredictSpace(k.Counters(), space, want[i]) {
			t.Fatal("direct PredictSpace returned false")
		}
	}

	reg := metrics.New()
	c := batch.New(batch.Config{Window: 50 * time.Microsecond, MaxFuse: 4, Metrics: reg})
	defer c.Stop()

	const decisions = 8
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i int, k kernel.Kernel) {
			defer wg.Done()
			rs := predict.NewRemoteSweep(nil, m, c.Submit)
			cs := k.Counters()
			dst := make([]predict.Estimate, space.Size())
			for d := 0; d < decisions; d++ {
				for j := range dst {
					dst[j] = predict.Estimate{TimeMS: -1}
				}
				if !rs.PredictSpace(cs, space, dst) {
					// Saturated or stopped: the optimizer's fallback.
					if !m.PredictSpace(cs, space, dst) {
						t.Error("direct fallback returned false")
						return
					}
				}
				for j := range dst {
					if dst[j] != want[i][j] {
						t.Errorf("session %d decision %d row %d: got %+v want %+v",
							i, d, j, dst[j], want[i][j])
						return
					}
				}
			}
		}(i, k)
	}
	wg.Wait()
	st := c.Stats()
	if st.Fused == 0 || st.Epochs == 0 {
		t.Fatalf("coordinator served nothing: %+v", st)
	}
	if st.Fused+st.Rejected != uint64(len(ks)*decisions) {
		t.Fatalf("fused %d + rejected %d != %d submitted", st.Fused, st.Rejected, len(ks)*decisions)
	}
}

// TestStopDrainsAcceptedRequests parks three submitters inside one
// still-collecting epoch (a very long window), then Stops: every
// accepted request must still complete with correct results, and Stop
// must return — the no-stranded-session half of the Shutdown contract.
func TestStopDrainsAcceptedRequests(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	ks := testKernels()[:3]
	c := batch.New(batch.Config{Window: time.Minute, MaxFuse: 8})

	reqs := make([]*predict.SweepRequest, len(ks))
	for i, k := range ks {
		reqs[i] = newRequest(m, space, k.Counters())
		if !c.Submit(reqs[i]) {
			t.Fatalf("submit %d rejected by an idle coordinator", i)
		}
	}
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	for i, req := range reqs {
		select {
		case <-req.Done:
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d stranded after Stop", i)
		}
		if !req.OK {
			t.Fatalf("request %d declined on drain", i)
		}
		want := make([]predict.Estimate, space.Size())
		m.PredictSpace(ks[i].Counters(), space, want)
		for r := range want {
			if req.Dst[r] != want[r] {
				t.Fatalf("request %d row %d: drained result %+v != direct %+v",
					i, r, req.Dst[r], want[r])
			}
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked")
	}
	if c.Submit(newRequest(m, space, ks[0].Counters())) {
		t.Fatal("stopped coordinator accepted a submit")
	}
	c.Stop() // idempotent
}

// TestSaturationRejectsWithoutBlocking hammers a deliberately tiny
// coordinator (queue 1, fuse 1) with far more concurrent submitters
// than it can hold. Submit must never block: every call returns, every
// accepted request completes, every rejected one is counted, and Stop
// afterwards returns promptly.
func TestSaturationRejectsWithoutBlocking(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	cs := kernel.NewBalanced("ba", 1).Counters()
	c := batch.New(batch.Config{Window: time.Microsecond, MaxFuse: 1, Queue: 1})

	const submitters = 16
	var accepted, rejected, served int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := newRequest(m, space, cs)
			for d := 0; d < 4; d++ {
				req.OK = false
				if !c.Submit(req) {
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				<-req.Done
				mu.Lock()
				accepted++
				if req.OK {
					served++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if uint64(rejected) != st.Rejected {
		t.Errorf("rejected: callers saw %d, stats say %d", rejected, st.Rejected)
	}
	if served != accepted {
		t.Errorf("%d accepted but only %d served", accepted, served)
	}
	if accepted == 0 {
		t.Error("nothing accepted — queue never drained")
	}
	doneStop := make(chan struct{})
	go func() {
		c.Stop()
		close(doneStop)
	}()
	select {
	case <-doneStop:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked after saturation")
	}
}

// TestUnservableRequestsDecline submits requests the coordinator cannot
// plan for (tree-walk model: no compiled forests) and checks they are
// declined — OK=false, Done signalled, counted — rather than stranded
// or mis-served.
func TestUnservableRequestsDecline(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	cs := kernel.NewBalanced("ba", 1).Counters()
	c := batch.New(batch.Config{Window: 50 * time.Microsecond})
	defer c.Stop()

	m.SetCompiled(false)
	defer m.SetCompiled(true)
	req := newRequest(m, space, cs)
	if !c.Submit(req) {
		t.Fatal("submit rejected")
	}
	select {
	case <-req.Done:
	case <-time.After(10 * time.Second):
		t.Fatal("declined request never signalled")
	}
	if req.OK {
		t.Fatal("unservable request reported OK")
	}
	if st := c.Stats(); st.Declined != 1 {
		t.Fatalf("declined = %d, want 1", st.Declined)
	}
}

// TestMixedSpacesGroupCorrectly fuses one epoch holding requests for
// two different spaces: the coordinator must split them into per-space
// groups, each bit-exact against its own direct sweep.
func TestMixedSpacesGroupCorrectly(t *testing.T) {
	m := trainedRF(t)
	big := hw.DefaultSpace()
	small := hw.Space{CPUs: big.CPUs[:1], NBs: big.NBs[:1], GPUs: big.GPUs, CUs: big.CUs}
	cs := kernel.NewPeak("pk", 1).Counters()
	c := batch.New(batch.Config{Window: 20 * time.Millisecond, MaxFuse: 8})
	defer c.Stop()

	reqs := []*predict.SweepRequest{
		newRequest(m, big, cs),
		newRequest(m, small, cs),
		newRequest(m, big, cs),
	}
	for i, req := range reqs {
		if !c.Submit(req) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	for i, req := range reqs {
		select {
		case <-req.Done:
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d stranded", i)
		}
		if !req.OK {
			t.Fatalf("request %d declined", i)
		}
		want := make([]predict.Estimate, req.Space.Size())
		m.PredictSpace(cs, req.Space, want)
		for r := range want {
			if req.Dst[r] != want[r] {
				t.Fatalf("request %d row %d: %+v != %+v", i, r, req.Dst[r], want[r])
			}
		}
	}
}
