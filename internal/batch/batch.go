// Package batch is the cross-session decision batching layer: an
// epoch-based coordinator that fuses concurrently-arriving exhaustive
// sweep requests (one per in-flight /v1/decide) into a single
// mega-batch compiled-forest evaluation, in the phase-switching style
// of ddtxn's coordinator — collect for a bounded window, execute the
// fused batch, scatter results, repeat.
//
// The contract is strict bit-exactness: a fused sweep returns every
// request exactly the bytes its direct (unbatched) PredictSpace call
// would have produced. This holds because rf.PredictBatchKeysInto
// accumulates each row's leaf values independently — trees outermost,
// one accumulator per row, one division at the end — so fusing N
// request matrices into one never changes any row's summation order;
// the predict.FusedPlan stages each request with the exact featurize
// sequence of the direct path; and the session-side predict.RemoteSweep
// reapplies per-session calibration after unparking. Any failure mode
// (saturation, shutdown, unservable model/space) declines the request
// and the session runs its direct path, so batching is a pure execution
// -venue change, never a behavioral one.
package batch

import (
	"sync"
	"time"

	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/predict"
)

// Defaults for Config zero values.
const (
	// DefaultWindow bounds how long an epoch waits for co-arriving
	// requests after its first: long enough to catch sweeps submitted
	// within one decision's service time, short enough to stay
	// invisible next to a multi-hundred-µs fused evaluation.
	DefaultWindow = 150 * time.Microsecond
	// DefaultMaxFuse bounds the requests fused into one evaluation —
	// the FusedKeys slot capacity, sized so the fused matrix stays
	// cache-resident.
	DefaultMaxFuse = 16
)

// Config parameterizes a Coordinator.
type Config struct {
	// Window is the epoch collect phase's max wait (0 = DefaultWindow).
	Window time.Duration
	// MaxFuse is the max requests fused per evaluation (0 = DefaultMaxFuse).
	MaxFuse int
	// Queue is the submission channel depth; submits beyond it are
	// rejected and fall back to the direct path (0 = 2*MaxFuse).
	Queue int
	// Metrics, when non-nil, receives the mpcdvfs_batch_* series.
	Metrics *metrics.Registry
}

// Stats is a point-in-time snapshot of coordinator traffic for
// /debug/mpc.
type Stats struct {
	Epochs   uint64 `json:"epochs"`   // fused evaluations run
	Fused    uint64 `json:"fused"`    // requests served by a fused evaluation
	Declined uint64 `json:"declined"` // accepted but unservable (model/space without a batched path)
	Rejected uint64 `json:"rejected"` // submits refused (queue full or stopped)
	MaxFuse  int    `json:"max_fuse"`
	WindowUS int64  `json:"window_us"`
}

// plan pairs a FusedPlan with the epoch scatter scratch for its group.
type plan struct {
	p    *predict.FusedPlan
	dsts [][]predict.Estimate
}

// Coordinator owns the epoch loop. Sessions submit through Submit (the
// predict.SweepSubmit the serving layer wires into each policy) and
// park on their request's Done channel; the loop collects, fuses,
// executes and signals. One goroutine runs the loop; Submit and Stop
// are safe for concurrent use.
type Coordinator struct {
	window  time.Duration
	maxFuse int

	mu     sync.Mutex
	closed bool
	q      chan *predict.SweepRequest
	done   chan struct{}

	// plans is a small most-recently-used cache of fused plans, keyed
	// by (model, space) via FusedPlan.Serves — loop-goroutine-only.
	plans []*plan
	reqs  []*predict.SweepRequest
	group []*predict.SweepRequest

	epochs   *metrics.Counter
	fused    *metrics.Counter
	declined *metrics.Counter
	rejected *metrics.Counter
	epochReq *metrics.Histogram
	waitUS   *metrics.Histogram

	nEpochs   uint64
	nFused    uint64
	nDeclined uint64
	nRejected uint64
}

// New starts a coordinator with its epoch loop running.
func New(cfg Config) *Coordinator {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxFuse <= 0 {
		cfg.MaxFuse = DefaultMaxFuse
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.MaxFuse
	}
	c := &Coordinator{
		window:  cfg.Window,
		maxFuse: cfg.MaxFuse,
		q:       make(chan *predict.SweepRequest, cfg.Queue),
		done:    make(chan struct{}),
		reqs:    make([]*predict.SweepRequest, 0, cfg.MaxFuse),
		group:   make([]*predict.SweepRequest, 0, cfg.MaxFuse),
	}
	if reg := cfg.Metrics; reg != nil {
		c.epochs = reg.Counter("mpcdvfs_batch_epochs_total",
			"Fused mega-batch evaluations the batch coordinator ran (one per epoch with at least one servable request).").With()
		requests := reg.Counter("mpcdvfs_batch_requests_total",
			"Sweep requests by outcome: fused into a mega-batch, declined (no batched path for the request's model/space), or rejected at submit (queue full or coordinator stopped).",
			"outcome")
		c.fused = requests.With("fused")
		c.declined = requests.With("declined")
		c.rejected = requests.With("rejected")
		c.epochReq = reg.Histogram("mpcdvfs_batch_epoch_requests",
			"Requests collected per epoch — the fuse width the evaluation actually ran at.",
			[]float64{1, 2, 4, 8, 16, 32, 64}).With()
		c.waitUS = reg.Histogram("mpcdvfs_batch_wait_us",
			"Per-request wait from submission to fused evaluation start, in microseconds.",
			metrics.ExponentialBuckets(10, 2, 12)).With()
	}
	// The coordinator is a singleton epoch loop, not per-work-item
	// fan-out: one long-lived goroutine serving every session for the
	// process lifetime, stopped by Stop. internal/par's bounded pools
	// model N-way data parallelism and fit neither the lifetime nor
	// the channel-select shape of this loop.
	//mpclint:ignore pooled-concurrency singleton epoch loop with process lifetime, joined by Stop via the done channel; not data-parallel fan-out
	go c.loop()
	return c
}

// Submit implements predict.SweepSubmit: hand one sweep request to the
// epoch loop. It never blocks — a full queue or a stopped coordinator
// returns false and the caller runs its direct path. On true, the loop
// sends exactly one value on req.Done after stamping req.OK.
func (c *Coordinator) Submit(req *predict.SweepRequest) bool {
	req.Submitted = time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.reject()
		return false
	}
	select {
	case c.q <- req:
		c.mu.Unlock()
		return true
	default:
		c.mu.Unlock()
		c.reject()
		return false
	}
}

// Stop shuts the coordinator down and waits for the epoch loop to
// drain: every request accepted before Stop still completes (a closed
// channel delivers its buffered requests before reporting closed), so
// no parked session is ever stranded. Idempotent.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.q)
	}
	c.mu.Unlock()
	<-c.done
}

// Stats snapshots coordinator traffic. Counters are maintained by the
// loop goroutine and submit path; reads are monotonic-enough for
// debugging (no torn struct — each field is read once).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Epochs:   c.nEpochs,
		Fused:    c.nFused,
		Declined: c.nDeclined,
		Rejected: c.nRejected,
		MaxFuse:  c.maxFuse,
		WindowUS: int64(c.window / time.Microsecond),
	}
}

func (c *Coordinator) reject() {
	c.mu.Lock()
	c.nRejected++
	c.mu.Unlock()
	if c.rejected != nil {
		c.rejected.Inc()
	}
}

// loop is the phase-switching epoch loop: block for the first request,
// collect co-arrivals for at most the window (or until maxFuse), run
// the fused epoch, repeat until the queue closes and drains.
func (c *Coordinator) loop() {
	defer close(c.done)
	timer := time.NewTimer(c.window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-c.q
		if !ok {
			return
		}
		c.reqs = append(c.reqs[:0], first)
		c.collect(timer)
		c.runEpoch()
	}
}

// collect fills c.reqs up to maxFuse, waiting at most the window for
// stragglers. A closed queue ends collection early (buffered requests
// still drain into this or subsequent epochs).
func (c *Coordinator) collect(timer *time.Timer) {
	timer.Reset(c.window)
	defer func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}()
	for len(c.reqs) < c.maxFuse {
		select {
		case req, ok := <-c.q:
			if !ok {
				return
			}
			c.reqs = append(c.reqs, req)
		case <-timer.C:
			return
		}
	}
}

// runEpoch groups the collected requests by (model, space), fuses each
// group through its plan, and signals every request. Requests without a
// servable plan are declined (OK=false) and their sessions fall back to
// the direct path.
func (c *Coordinator) runEpoch() {
	reqs := c.reqs
	c.observeEpoch(len(reqs))
	for len(reqs) > 0 {
		lead := reqs[0]
		group := c.group[:0]
		rest := reqs[:0]
		for _, r := range reqs {
			if len(group) < c.maxFuse && r.Model == lead.Model && r.Space.Equal(lead.Space) {
				group = append(group, r)
			} else {
				rest = append(rest, r)
			}
		}
		c.runGroup(group)
		reqs = rest
	}
	c.reqs = c.reqs[:0]
}

// runGroup stages and executes one (model, space) group through its
// fused plan, stamps the epoch timing into each request, and unparks
// the submitters. After a request's Done send the coordinator never
// touches it again.
func (c *Coordinator) runGroup(group []*predict.SweepRequest) {
	pl := c.planFor(group[0])
	if pl == nil {
		c.decline(group)
		return
	}
	for i, r := range group {
		pl.p.Stage(i, r.CS)
		pl.dsts[i] = r.Dst
	}
	t0 := time.Now()
	pl.p.Execute(len(group), pl.dsts)
	evalNS := time.Since(t0).Nanoseconds()
	c.mu.Lock()
	c.nEpochs++
	c.nFused += uint64(len(group))
	c.mu.Unlock()
	if c.epochs != nil {
		c.epochs.Inc()
		c.fused.Add(float64(len(group)))
	}
	for i, r := range group {
		pl.dsts[i] = nil
		if c.waitUS != nil {
			c.waitUS.Observe(float64(t0.Sub(r.Submitted)) / float64(time.Microsecond))
		}
		r.EvalStart = t0
		r.EvalNS = evalNS
		r.OK = true
		r.Done <- struct{}{}
	}
}

// decline signals a group the coordinator cannot serve; each session
// falls back to its direct path.
func (c *Coordinator) decline(group []*predict.SweepRequest) {
	c.mu.Lock()
	c.nDeclined += uint64(len(group))
	c.mu.Unlock()
	for _, r := range group {
		if c.declined != nil {
			c.declined.Inc()
		}
		r.OK = false
		r.Done <- struct{}{}
	}
}

// observeEpoch records the epoch's fuse width.
func (c *Coordinator) observeEpoch(n int) {
	if c.epochReq != nil {
		c.epochReq.Observe(float64(n))
	}
}

// planFor returns the cached plan serving req's (model, space),
// building and caching one on miss (move-to-front, small bound — the
// steady state is one or two live model generations over one space).
func (c *Coordinator) planFor(req *predict.SweepRequest) *plan {
	for i, pl := range c.plans {
		if pl.p.Serves(req.Model, req.Space) {
			if i > 0 {
				copy(c.plans[1:i+1], c.plans[:i])
				c.plans[0] = pl
			}
			return pl
		}
	}
	fp := predict.NewFusedPlan(req.Model, req.Space, c.maxFuse)
	if fp == nil {
		return nil
	}
	pl := &plan{p: fp, dsts: make([][]predict.Estimate, c.maxFuse)}
	const maxPlans = 4
	if len(c.plans) < maxPlans {
		c.plans = append(c.plans, nil)
	}
	copy(c.plans[1:], c.plans)
	c.plans[0] = pl
	return pl
}
