package sim

import (
	"math"
	"strings"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/workload"
)

// fixedPolicy always picks one config, charging a fixed eval count.
type fixedPolicy struct {
	cfg   hw.Config
	evals int
	began []RunInfo
	obs   []Observation
}

func (f *fixedPolicy) Name() string          { return "fixed" }
func (f *fixedPolicy) Begin(info RunInfo)    { f.began = append(f.began, info) }
func (f *fixedPolicy) Decide(int) Decision   { return Decision{Config: f.cfg, Evals: f.evals} }
func (f *fixedPolicy) Observe(o Observation) { f.obs = append(f.obs, o) }

func TestTurboCoreBoostsGPUAndCPU(t *testing.T) {
	app, _ := workload.ByName("NBody")
	e := NewEngine(hw.DefaultSpace())
	res, target, err := e.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Config.GPU != hw.DPM4 || rec.Config.NB != hw.NB0 || rec.Config.CUs != hw.MaxCUs {
			t.Fatalf("Turbo Core config %v, want boosted GPU", rec.Config)
		}
		if rec.Config.CPU != hw.P1 {
			t.Errorf("Turbo Core CPU %v, want P1 (within TDP it never drops CPU states)", rec.Config.CPU)
		}
		if rec.OverheadMS != 0 || rec.Evals != 0 {
			t.Errorf("Turbo Core charged overhead %v/%d", rec.OverheadMS, rec.Evals)
		}
	}
	if target.TotalInsts != res.TotalInsts() || target.TotalTimeMS != res.TotalTimeMS() {
		t.Error("target does not match baseline run")
	}
	if target.Throughput() <= 0 {
		t.Error("non-positive target throughput")
	}
}

func TestRunAccounting(t *testing.T) {
	app, _ := workload.ByName("Spmv")
	e := NewEngine(hw.DefaultSpace())
	p := &fixedPolicy{cfg: hw.FailSafe(), evals: 100}
	res, err := e.Run(&app, p, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != app.Len() {
		t.Fatalf("%d records, want %d", len(res.Records), app.Len())
	}
	wantOv := e.Cost.OverheadMS(100) * float64(app.Len())
	if math.Abs(res.OverheadMS()-wantOv) > 1e-9 {
		t.Errorf("OverheadMS = %v, want %v", res.OverheadMS(), wantOv)
	}
	if res.TotalTimeMS() <= res.KernelTimeMS() {
		t.Error("total time should exceed kernel time when overhead is charged")
	}
	if math.Abs(res.TotalTimeMS()-(res.KernelTimeMS()+res.OverheadMS())) > 1e-9 {
		t.Error("total time != kernel time + overhead")
	}
	sum := 0.0
	for _, rec := range res.Records {
		sum += rec.GPUEnergyMJ + rec.CPUEnergyMJ + rec.OverheadEnergyMJ
	}
	if math.Abs(res.TotalEnergyMJ()-sum) > 1e-9 {
		t.Error("TotalEnergyMJ mismatch")
	}
	if math.Abs(res.GPUEnergyMJ()+res.CPUEnergyMJ()-res.TotalEnergyMJ()) > 1e-9 {
		t.Error("GPU+CPU energy split does not cover total")
	}
	if got := res.TotalInsts(); math.Abs(got-app.TotalInsts()) > 1e-6*got {
		t.Errorf("TotalInsts = %v, want %v", got, app.TotalInsts())
	}
	if res.Evals() != 100*app.Len() {
		t.Errorf("Evals = %d", res.Evals())
	}
	// Policy saw every observation in order.
	if len(p.obs) != app.Len() {
		t.Fatalf("policy observed %d kernels", len(p.obs))
	}
	for i, o := range p.obs {
		if o.Index != i || o.TimeMS <= 0 || o.GPUPowerW <= 0 {
			t.Fatalf("bad observation %d: %+v", i, o)
		}
	}
}

func TestZeroEvalsNoOverhead(t *testing.T) {
	cm := DefaultCostModel()
	if cm.OverheadMS(0) != 0 {
		t.Error("zero evals should cost nothing")
	}
	if cm.OverheadMS(1) <= 0 {
		t.Error("one eval should cost something")
	}
	if cm.OverheadMS(336) <= cm.OverheadMS(19) {
		t.Error("exhaustive sweep should cost more than hill climb")
	}
}

func TestRunRejectsConfigOutsideSpace(t *testing.T) {
	app, _ := workload.ByName("NBody")
	e := NewEngine(hw.DefaultSpace())
	// DPM1 exists in hardware but not in the captured space.
	p := &fixedPolicy{cfg: hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM1, CUs: 8}}
	if _, err := e.Run(&app, p, Target{}, true); err == nil {
		t.Error("config outside space accepted")
	}
	p.cfg = hw.Config{CPU: 99, NB: hw.NB0, GPU: hw.DPM4, CUs: 8}
	if _, err := e.Run(&app, p, Target{}, true); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunRejectsInvalidApp(t *testing.T) {
	e := NewEngine(hw.DefaultSpace())
	bad := workload.App{Name: "empty"}
	_, err := e.Run(&bad, NewTurboCore(), Target{}, true)
	if err == nil {
		t.Fatal("empty app accepted")
	}
	if !strings.Contains(err.Error(), "empty") || !strings.Contains(err.Error(), "turbo-core") {
		t.Errorf("empty-app error should name the app and policy, got: %v", err)
	}
	if _, err := e.Run(nil, NewTurboCore(), Target{}, true); err == nil {
		t.Error("nil app accepted")
	}
	if _, _, err := e.Baseline(&bad); err == nil {
		t.Error("Baseline accepted an empty app")
	}
	if _, err := e.RunRepeated(&bad, NewTurboCore(), Target{}, 2); err == nil {
		t.Error("RunRepeated accepted an empty app")
	}
}

// TestTargetThroughputZeroGuard pins the documented contract: a
// zero-duration target (the value an empty baseline would produce)
// reports zero throughput instead of dividing by zero, and real targets
// report insts-per-ms. Policies rely on the guard to detect an unusable
// target rather than chase NaN/Inf.
func TestTargetThroughputZeroGuard(t *testing.T) {
	if got := (Target{}).Throughput(); got != 0 {
		t.Errorf("zero target throughput = %v, want 0", got)
	}
	if got := (Target{TotalInsts: 100}).Throughput(); got != 0 {
		t.Errorf("zero-time target throughput = %v, want 0 (not +Inf)", got)
	}
	got := Target{TotalInsts: 100, TotalTimeMS: 4}.Throughput()
	if got != 25 {
		t.Errorf("throughput = %v, want 25 insts/ms", got)
	}
	if math.IsNaN((Target{TotalTimeMS: -1}).Throughput()) {
		t.Error("negative-time target produced NaN")
	}
}

func TestRunRepeatedFlagsFirstRun(t *testing.T) {
	app, _ := workload.ByName("kmeans")
	e := NewEngine(hw.DefaultSpace())
	p := &fixedPolicy{cfg: hw.FailSafe()}
	rs, err := e.RunRepeated(&app, p, Target{TotalInsts: 1, TotalTimeMS: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || len(p.began) != 3 {
		t.Fatalf("runs = %d, begins = %d", len(rs), len(p.began))
	}
	if !p.began[0].FirstRun || p.began[1].FirstRun || p.began[2].FirstRun {
		t.Error("FirstRun flags wrong across repeats")
	}
	if _, err := e.RunRepeated(&app, p, Target{}, 0); err == nil {
		t.Error("times=0 accepted")
	}
}

func TestCompare(t *testing.T) {
	app, _ := workload.ByName("NBody")
	e := NewEngine(hw.DefaultSpace())
	base, target, err := e.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping only the busy-waiting CPU saves energy at no perf cost.
	cpuDrop := &fixedPolicy{cfg: hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM4, CUs: 8}}
	res, err := e.Run(&app, cpuDrop, target, true)
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(res, base)
	if c.EnergySavingsPct <= 10 {
		t.Errorf("CPU drop saves %.1f%% energy, want > 10", c.EnergySavingsPct)
	}
	if math.Abs(c.Speedup-1) > 1e-9 {
		t.Errorf("CPU drop speedup %.4f, want 1 (kernel time unaffected)", c.Speedup)
	}
	// The lowest config on a compute-bound app slows it ~7x: race-to-idle
	// means it costs energy, not saves it.
	low := &fixedPolicy{cfg: hw.Config{CPU: hw.P7, NB: hw.NB3, GPU: hw.DPM0, CUs: 2}}
	lres, err := e.Run(&app, low, target, true)
	if err != nil {
		t.Fatal(err)
	}
	lc := Compare(lres, base)
	if lc.Speedup >= 1 {
		t.Errorf("lowest config speedup %.2f, want < 1", lc.Speedup)
	}
	if lc.EnergySavingsPct >= 0 {
		t.Errorf("lowest config on compute-bound app saves %.1f%%; want negative (race-to-idle)", lc.EnergySavingsPct)
	}
	// Baseline vs itself is neutral.
	self := Compare(base, base)
	if math.Abs(self.EnergySavingsPct) > 1e-9 || math.Abs(self.Speedup-1) > 1e-12 {
		t.Errorf("self comparison = %+v", self)
	}
}

func TestTurboCoreStaysWithinTDP(t *testing.T) {
	for _, app := range workload.Benchmarks() {
		a := app
		e := NewEngine(hw.DefaultSpace())
		res, _, err := e.Baseline(&a)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range res.Records[1:] { // first decision uses the guard band
			p := (rec.GPUEnergyMJ + rec.CPUEnergyMJ) / rec.TimeMS
			if p > hw.TDPWatt {
				t.Errorf("%s kernel %d draws %.1f W > TDP under Turbo Core", app.Name, rec.Index, p)
			}
		}
	}
}

func TestOverheadPowerPositiveAndPlausible(t *testing.T) {
	cm := DefaultCostModel()
	if cm.PowerW < 5 || cm.PowerW > 40 {
		t.Errorf("overhead power %.1f W implausible for host CPU + idle GPU", cm.PowerW)
	}
}
