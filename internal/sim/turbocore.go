package sim

import (
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/workload"
)

// TurboCore is the state-of-the-practice baseline (§V-B): AMD's reactive
// controller. It boosts the GPU to its highest DPM state with NB0 and all
// CUs for GPU kernels, and keeps the CPU at the highest P-state that fits
// the chip's TDP given the recently observed GPU power — it never drops
// CPU DVFS states while the system stays within its thermal budget, even
// though the CPU is only busy-waiting.
type TurboCore struct {
	lastGPUW  float64
	lastTempC float64
}

// Thermal guard bands: Turbo Core sheds CPU power as the die approaches
// its limit, mirroring the firmware's reactive power shifting.
const (
	tcTempWarnC = 90
	tcTempHotC  = 95
)

// NewTurboCore returns the baseline controller.
func NewTurboCore() *TurboCore { return &TurboCore{} }

// Name implements Policy.
func (t *TurboCore) Name() string { return "turbo-core" }

// worstCaseGPUW is the controller's initial GPU power assumption before
// any measurement exists — the power-shifting guard band.
const worstCaseGPUW = 50

// Begin implements Policy.
func (t *TurboCore) Begin(RunInfo) {
	t.lastGPUW = worstCaseGPUW
	t.lastTempC = 0
}

// Decide implements Policy: GPU boosted, CPU as high as the TDP allows
// based on the last observed GPU power (reactive power shifting between
// the CPU and GPU domains).
func (t *TurboCore) Decide(int) Decision {
	cfg := hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM4, CUs: hw.MaxCUs}
	for p := hw.P1; p <= hw.P7; p++ {
		if kernel.CPUPowerW(p)+t.lastGPUW <= hw.TDPWatt {
			cfg.CPU = p
			break
		}
	}
	// Reactive thermal guard: a hot die sheds CPU power first (the CPU
	// only busy-waits during kernels), stepping down harder past the
	// throttle point.
	fallback := ""
	switch {
	case t.lastTempC > tcTempHotC:
		cfg.CPU = hw.P7
		fallback = obs.FallbackThermalGuard
	case t.lastTempC > tcTempWarnC && cfg.CPU < hw.P5:
		cfg.CPU = hw.P5
		fallback = obs.FallbackThermalGuard
	}
	// Turbo Core is implemented in hardware/firmware; it costs no
	// predictor evaluations.
	return Decision{Config: cfg, Evals: 0, Fallback: fallback}
}

// Observe implements Policy.
func (t *TurboCore) Observe(obs Observation) {
	t.lastGPUW = obs.GPUPowerW
	t.lastTempC = obs.TempC
}

// Baseline runs app under Turbo Core and returns the run plus the Eq. 1
// performance target (Itotal/Ttotal) that all other policies must meet.
func (e *Engine) Baseline(app *workload.App) (*Result, Target, error) {
	res, err := e.Run(app, NewTurboCore(), Target{}, true)
	if err != nil {
		return nil, Target{}, err
	}
	// The Eq. 1 target is kernel-level throughput: CPU phases between
	// kernels are identical under every policy and are excluded.
	return res, Target{TotalInsts: res.TotalInsts(), TotalTimeMS: res.KernelTimeMS()}, nil
}
