package sim

import (
	"math"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/thermal"
	"mpcdvfs/internal/workload"
)

func TestCPUGapHidesOverhead(t *testing.T) {
	app, _ := workload.ByName("Spmv")
	e := NewEngine(hw.DefaultSpace())
	p := &fixedPolicy{cfg: hw.FailSafe(), evals: 100}
	rawOv := e.Cost.OverheadMS(100)

	// No gaps: the full overhead is visible.
	res, err := e.Run(&app, p, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records[0].OverheadMS; math.Abs(got-rawOv) > 1e-12 {
		t.Errorf("visible overhead = %v, want %v", got, rawOv)
	}

	// Gaps larger than the overhead hide it entirely; the phase itself
	// appears in time and energy.
	gapped := app.WithUniformCPUGaps(rawOv * 3)
	gres, err := e.Run(&gapped, p, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range gres.Records {
		if rec.OverheadMS != 0 {
			t.Fatalf("overhead %v visible despite a larger CPU phase", rec.OverheadMS)
		}
		if rec.CPUPhaseMS != rawOv*3 || rec.CPUPhaseEnergyMJ <= 0 {
			t.Fatalf("CPU phase not accounted: %+v", rec)
		}
		// The optimization energy is still charged: hiding overlaps time,
		// not joules.
		if rec.OverheadEnergyMJ <= 0 {
			t.Fatal("hidden optimization energy not charged")
		}
	}
	if got, want := gres.CPUPhaseMS(), rawOv*3*float64(app.Len()); math.Abs(got-want) > 1e-9 {
		t.Errorf("total CPU phase %v, want %v", got, want)
	}
	if gres.TotalTimeMS() <= res.KernelTimeMS() {
		t.Error("gapped run total time should include the phases")
	}

	// Gaps smaller than the overhead hide only part of it.
	half := app.WithUniformCPUGaps(rawOv / 2)
	hres, err := e.Run(&half, p, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := hres.Records[0].OverheadMS; math.Abs(got-rawOv/2) > 1e-12 {
		t.Errorf("partially hidden overhead = %v, want %v", got, rawOv/2)
	}
}

func TestBaselineTargetExcludesGaps(t *testing.T) {
	app, _ := workload.ByName("NBody")
	gapped := app.WithUniformCPUGaps(5)
	e := NewEngine(hw.DefaultSpace())
	_, t1, err := e.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := e.Baseline(&gapped)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 1's target is kernel-level throughput: identical with or
	// without CPU phases.
	if math.Abs(t1.TotalTimeMS-t2.TotalTimeMS) > 1e-9 || math.Abs(t1.Throughput()-t2.Throughput()) > 1e-9 {
		t.Errorf("target changed with CPU gaps: %v vs %v", t1, t2)
	}
}

func TestGapValidation(t *testing.T) {
	app, _ := workload.ByName("kmeans")
	bad := app
	bad.CPUGapsMS = []float64{1, 2} // wrong length
	e := NewEngine(hw.DefaultSpace())
	if _, _, err := e.Baseline(&bad); err == nil {
		t.Error("mismatched gap slice accepted")
	}
	bad.CPUGapsMS = make([]float64, app.Len())
	bad.CPUGapsMS[3] = -1
	if _, _, err := e.Baseline(&bad); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestThermalThrottlingUnderSustainedLoad(t *testing.T) {
	// A tight package makes sustained Turbo Core boost overheat; the die
	// heats, throttles, and Turbo Core sheds CPU power.
	app, _ := workload.ByName("NBody") // long compute-bound kernels
	long := app
	// Repeat the app's kernels to sustain load well past the RC constant.
	for i := 0; i < 4; i++ {
		long.Kernels = append(long.Kernels, app.Kernels...)
	}
	e := NewEngine(hw.DefaultSpace())
	p := thermalTestParams()
	e.Thermal = &p
	res, _, err := e.Baseline(&long)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTempC() <= p.ThrottleC {
		t.Fatalf("max temp %.1f never crossed throttle point %.1f", res.MaxTempC(), p.ThrottleC)
	}
	if res.ThrottledMS() <= 0 {
		t.Error("no throttling time recorded despite crossing the limit")
	}
	// Turbo Core must have shed CPU power while hot.
	shed := false
	for _, rec := range res.Records {
		if rec.Config.CPU >= hw.P5 && rec.TempC > 0 {
			shed = true
		}
	}
	if !shed {
		t.Error("Turbo Core never dropped the CPU state under thermal pressure")
	}
	// Disabled thermal path: no temperatures, no stretch.
	e.Thermal = nil
	cold, _, err := e.Baseline(&long)
	if err != nil {
		t.Fatal(err)
	}
	if cold.MaxTempC() != 0 || cold.ThrottledMS() != 0 {
		t.Error("thermal accounting leaked into a disabled run")
	}
	if cold.KernelTimeMS() >= res.KernelTimeMS() {
		t.Error("throttled run should be slower than the cold run")
	}
}

// thermalTestParams returns a deliberately tight package.
func thermalTestParams() thermal.Params {
	p := thermal.DefaultParams()
	p.ResistanceCW = 1.05
	p.TimeConstMS = 300
	return p
}
