// Package sim executes GPGPU applications under a power-management
// policy against the ground-truth hardware model, with the same
// accounting the paper uses: per-kernel time and energy split into GPU
// (including NB) and CPU domains, plus the time and energy overhead of
// running the optimizer itself on the host CPU between kernels (§V).
//
// It also provides the AMD Turbo Core baseline — the state-of-the-practice
// controller every figure normalizes against — and the repeated-execution
// runner behind the Fig. 11 amortization study.
package sim

import (
	"fmt"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/telemetry"
	"mpcdvfs/internal/thermal"
	"mpcdvfs/internal/workload"
)

// CostModel converts a policy's predictor-evaluation count into host-CPU
// optimization time. The paper measures this overhead directly on the
// A10-7850K; we charge it per model evaluation, which preserves the
// complexity separation between greedy hill climbing
// (|cpu|+|nb|+|gpu|+|cu| evals), exhaustive per-kernel search (M evals)
// and exhaustive MPC (M^H evals).
type CostModel struct {
	PerEvalMS float64 // host time per predictor evaluation
	PerKnobMS float64 // fixed cost per decision (bookkeeping, headroom update)
	PowerW    float64 // chip power while optimizing (CPU busy + GPU idle)
	// TransitionMS charges a DVFS/CU reconfiguration stall per knob whose
	// state differs from the previous kernel's configuration (voltage
	// ramps and CU power gating are not free on real silicon). The paper
	// ignores transition costs; zero (the default) reproduces that, and
	// the transitionablation experiment quantifies the sensitivity.
	TransitionMS float64
}

// DefaultCostModel matches the paper's setup: the MPC framework runs on
// the host CPU at [P5, NB0, DPM0, 2 CUs] (§V) between kernels, in the
// worst case with no CPU phase to hide under. Two microseconds per
// Random-Forest evaluation makes PPK's 336-point sweep cost ~0.7 ms —
// comparable to the short kernels of hybridsort/Spmv (which is what
// forces the adaptive horizon to shrink there, Fig. 15) and negligible
// next to the tens-of-milliseconds kernels of NBody or XSBench.
func DefaultCostModel() CostModel {
	return CostModel{
		PerEvalMS: 0.002,
		PerKnobMS: 0.004,
		PowerW:    overheadPowerW(),
	}
}

// overheadPowerW estimates chip power during optimization: the host CPU
// at P5 running the optimizer plus the idle GPU/NB at the MPC framework's
// [P5, NB0, DPM0, 2 CUs] configuration. Derived from the ground-truth
// model so the accounting stays consistent with kernel energy.
func overheadPowerW() float64 {
	cfg := hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM0, CUs: 2}
	// A zero-length probe kernel isn't representable; use a tiny one and
	// take its power, which is dominated by static/idle terms.
	probe := kernel.New(kernel.Params{
		Name: "idleprobe", Insts: 1, Threads: 1, ComputeWork: 1e-6, MemWork: 0,
		ParallelFrac: 0.5,
	})
	m := probe.Evaluate(cfg)
	return m.TotalW()
}

// OverheadMS returns the optimization time for a decision that spent
// evals predictor evaluations.
func (c CostModel) OverheadMS(evals int) float64 {
	if evals <= 0 {
		return 0
	}
	return c.PerKnobMS + c.PerEvalMS*float64(evals)
}

// Target is the performance target of Eq. 1: the Turbo Core baseline's
// aggregate kernel throughput.
type Target struct {
	TotalInsts  float64 // Itotal
	TotalTimeMS float64 // Ttotal under the baseline
}

// Throughput returns Itotal/Ttotal in instructions per millisecond.
//
// A zero TotalTimeMS returns 0 rather than dividing by zero. Callers
// must treat a zero target with care: policies given a zero throughput
// target face no performance constraint at all and will sit at their
// lowest-energy configuration. The engine's Baseline never produces one
// for a valid app (Engine.Run rejects empty apps before they can yield a
// zero-time baseline), so a zero here means either the deliberate
// unconstrained Target{} (as used for baseline runs, where the policy
// ignores the target) or a bug upstream.
func (t Target) Throughput() float64 {
	if t.TotalTimeMS == 0 {
		return 0
	}
	return t.TotalInsts / t.TotalTimeMS
}

// RunInfo is what a policy learns when an application (re)starts.
type RunInfo struct {
	AppName    string
	NumKernels int
	Target     Target
	// FirstRun is true on the first invocation of the app under this
	// policy instance — the profiling run during which the paper's
	// framework falls back to PPK while the pattern extractor learns the
	// kernel sequence (§V-B).
	FirstRun bool
}

// Decision is a policy's configuration choice for one upcoming kernel.
type Decision struct {
	Config hw.Config
	// Evals is the number of predictor evaluations spent on this
	// decision; the engine converts it to time and energy overhead.
	Evals int

	// The remaining fields are observability metadata: the engine folds
	// them into the obs.DecisionEvent/obs.FallbackEvent it emits. They do
	// not affect the simulation.

	// SearchIters is the number of per-kernel configuration searches run
	// (MPC window length, 1 for an exhaustive sweep, 0 for search-free
	// decisions).
	SearchIters int
	// Horizon is the prediction-horizon length used (0 when the policy
	// has no horizon concept or could not afford one).
	Horizon int
	// Fallback, when non-empty, names the degraded path this decision
	// took (one of the obs.Fallback* reasons).
	Fallback string
	// PredTimeMS/PredGPUPowerW carry the predictor's estimate for the
	// chosen configuration (0 when the policy made no prediction, e.g.
	// Turbo Core). The serving layer returns them to clients; the engine
	// ignores them.
	PredTimeMS    float64
	PredGPUPowerW float64
}

// Observation is the measured outcome of one kernel invocation, fed back
// to the policy — the "performance counter feedback" loop of Fig. 6.
type Observation struct {
	Index     int
	Counters  counters.Set
	Insts     float64
	TimeMS    float64
	GPUPowerW float64 // measured GPU+NB power
	CPUPowerW float64
	Config    hw.Config
	// OverheadMS is the wall time the engine actually charged for this
	// decision's optimization, after hiding under any CPU phase. The
	// adaptive horizon generator feeds on this measurement.
	OverheadMS float64
	// TempC is the die temperature after the kernel (0 if the engine's
	// thermal path is disabled). Turbo Core reacts to it.
	TempC float64
}

// Policy decides hardware configurations between successive kernels.
// Implementations live in internal/policy.
type Policy interface {
	Name() string
	// Begin resets per-run state. Policies keep cross-run state (pattern
	// knowledge) across Begin calls for the same app.
	Begin(info RunInfo)
	// Decide returns the configuration for invocation i (0-based).
	Decide(i int) Decision
	// Observe reports invocation i's measured result.
	Observe(obs Observation)
}

// KernelRecord is the accounting for one kernel invocation.
type KernelRecord struct {
	Index            int
	Kernel           string
	Config           hw.Config
	TimeMS           float64 // kernel execution time
	OverheadMS       float64 // optimizer wall time charged (after CPU-phase hiding)
	CPUPhaseMS       float64 // host CPU phase preceding the kernel (Fig. 1)
	Insts            float64
	GPUEnergyMJ      float64 // GPU+NB energy during the kernel
	CPUEnergyMJ      float64 // CPU energy during the kernel
	OverheadEnergyMJ float64 // chip energy while optimizing (hidden or not)
	CPUPhaseEnergyMJ float64 // chip energy during the CPU phase
	Evals            int
	KnobChanges      int     // knobs reconfigured relative to the previous kernel
	TempC            float64 // die temperature at kernel end (0 if thermal disabled)
	ThrottleFactor   float64 // execution stretch applied by throttling (1 = none)
}

// Result aggregates one application run.
type Result struct {
	App     string
	Policy  string
	Records []KernelRecord
}

// KernelTimeMS returns total kernel execution time, excluding overheads.
func (r *Result) KernelTimeMS() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.TimeMS
	}
	return s
}

// TotalTimeMS returns wall time including optimization overheads and CPU
// phases — the number performance comparisons use ("including MPC
// overheads").
func (r *Result) TotalTimeMS() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.TimeMS + rec.OverheadMS + rec.CPUPhaseMS
	}
	return s
}

// CPUPhaseMS returns total host CPU phase time.
func (r *Result) CPUPhaseMS() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.CPUPhaseMS
	}
	return s
}

// OverheadMS returns total optimizer time.
func (r *Result) OverheadMS() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.OverheadMS
	}
	return s
}

// TotalInsts returns total executed instructions.
func (r *Result) TotalInsts() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.Insts
	}
	return s
}

// Throughput returns aggregate instruction throughput including
// overheads.
func (r *Result) Throughput() float64 {
	t := r.TotalTimeMS()
	if t == 0 {
		return 0
	}
	return r.TotalInsts() / t
}

// TotalEnergyMJ returns chip energy including optimization overhead and
// CPU phases.
func (r *Result) TotalEnergyMJ() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.GPUEnergyMJ + rec.CPUEnergyMJ + rec.OverheadEnergyMJ + rec.CPUPhaseEnergyMJ
	}
	return s
}

// GPUEnergyMJ returns GPU+NB energy including the GPU's static share of
// the optimization overhead (the paper's Fig. 10 accounting).
func (r *Result) GPUEnergyMJ() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.GPUEnergyMJ + rec.OverheadEnergyMJ*gpuShareOfOverhead
	}
	return s
}

// CPUEnergyMJ returns CPU energy including its share of optimization
// overhead and the CPU phases.
func (r *Result) CPUEnergyMJ() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.CPUEnergyMJ + rec.OverheadEnergyMJ*(1-gpuShareOfOverhead) + rec.CPUPhaseEnergyMJ
	}
	return s
}

// OverheadEnergyMJ returns total optimization energy.
func (r *Result) OverheadEnergyMJ() float64 {
	s := 0.0
	for _, rec := range r.Records {
		s += rec.OverheadEnergyMJ
	}
	return s
}

// gpuShareOfOverhead apportions optimization-time chip power between the
// idle GPU/NB (static) and the busy CPU, for the Fig. 10 split.
const gpuShareOfOverhead = 0.25

// Evals returns the total predictor evaluations of the run.
func (r *Result) Evals() int {
	s := 0
	for _, rec := range r.Records {
		s += rec.Evals
	}
	return s
}

// Engine runs applications under policies.
type Engine struct {
	Space hw.Space
	Cost  CostModel
	// Obs receives structured runtime events (decisions, kernel
	// completions, fallbacks) and is threaded into policies that emit
	// their own (horizon changes, model errors). Nil disables
	// observability; the instrumented paths then cost one comparison per
	// kernel.
	Obs obs.Observer
	// Thermal, when non-nil, simulates die temperature and thermal
	// throttling: each kernel's execution is stretched by the current
	// throttle factor and heats the die with its average power. The
	// paper's platform manages power "under thermal constraints" (§V-B);
	// nil disables the thermal path (the default, matching the paper's
	// measurements, which never pushed the package past its envelope).
	Thermal *thermal.Params
	// Trace, when non-nil, wraps each policy decision in a root span
	// and is threaded into telemetry.Traceable policies so the decision
	// decomposes into search/featurize/forest-eval children. Tracing is
	// read-only with respect to results: a traced replay is
	// byte-identical to an untraced one (pinned by the root golden
	// test).
	Trace *telemetry.Context
}

// NewEngine returns an engine over the given configuration space with the
// default cost model.
func NewEngine(space hw.Space) *Engine {
	return &Engine{Space: space, Cost: DefaultCostModel()}
}

// Run executes app under policy p against the performance target. The
// info.FirstRun flag is passed through to the policy.
//
// A nil or empty app is rejected with a descriptive error rather than
// silently producing an empty result and a zero-throughput target
// downstream (see Target.Throughput).
func (e *Engine) Run(app *workload.App, p Policy, target Target, firstRun bool) (*Result, error) {
	if app == nil {
		return nil, fmt.Errorf("sim: Run called with nil app (policy %s)", p.Name())
	}
	if len(app.Kernels) == 0 {
		return nil, fmt.Errorf("sim: app %q has no kernels to run under policy %s — an empty app would yield a zero performance target", app.Name, p.Name())
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	o := e.Obs
	observed := obs.Enabled(o)
	if in, ok := p.(obs.Instrumentable); ok {
		// Always (re)set: a policy previously run under an instrumented
		// engine must not keep streaming to the old observer.
		if observed {
			in.SetObserver(o)
		} else {
			in.SetObserver(obs.Nop{})
		}
	}
	if tr, ok := p.(telemetry.Traceable); ok {
		// Same always-reset rule as the observer: a policy moving
		// between engines must not trace into a stale context.
		tr.SetTraceContext(e.Trace)
	}
	p.Begin(RunInfo{
		AppName:    app.Name,
		NumKernels: app.Len(),
		Target:     target,
		FirstRun:   firstRun,
	})
	res := &Result{App: app.Name, Policy: p.Name(), Records: make([]KernelRecord, 0, app.Len())}
	var die *thermal.Model
	if e.Thermal != nil {
		die = thermal.New(*e.Thermal)
	}
	for i, k := range app.Kernels {
		root := e.Trace.StartRoot(telemetry.SpanDecide, i)
		//mpclint:ignore determinism-taint CHA may-target: serve.Client.Decide only times the RPC for latency callbacks; decisions are computed server-side from replayable inputs
		d := p.Decide(i)
		root.End()
		if !d.Config.Valid() {
			return nil, fmt.Errorf("sim: policy %s returned invalid config %v for kernel %d", p.Name(), d.Config, i)
		}
		if !e.Space.Contains(d.Config) {
			return nil, fmt.Errorf("sim: policy %s chose %v outside the engine's space", p.Name(), d.Config)
		}
		m := k.Evaluate(d.Config)
		timeMS := m.TimeMS
		throttle := 1.0
		if die != nil {
			// Firmware throttling stretches execution; the kernel's
			// energy is unchanged (lower clocks, same joules) while its
			// average power drops. The stretched run then heats the die.
			throttle = die.ThrottleFactor()
			timeMS *= throttle
			die.Step(m.TotalW()/throttle, timeMS)
		}
		rawOvMS := e.Cost.OverheadMS(d.Evals)
		gap := app.CPUGapMS(i)
		// Optimization runs concurrently with the host CPU phase when one
		// exists: only the excess shows up as wall time (§VI-E).
		ovMS := rawOvMS - gap
		if ovMS < 0 {
			ovMS = 0
		}
		// DVFS transition stalls cannot hide under CPU phases: the GPU
		// waits for the rail to settle.
		knobChanges := 0
		if i > 0 {
			knobChanges = configKnobDiff(res.Records[i-1].Config, d.Config)
		}
		transMS := float64(knobChanges) * e.Cost.TransitionMS
		ovMS += transMS
		rawOvMS += transMS
		tempC := 0.0
		if die != nil {
			tempC = die.TempC()
		}
		rec := KernelRecord{
			Index:            i,
			Kernel:           k.Name(),
			Config:           d.Config,
			TimeMS:           timeMS,
			OverheadMS:       ovMS,
			CPUPhaseMS:       gap,
			Insts:            k.Insts(),
			GPUEnergyMJ:      m.GPUEnergyMJ(),
			CPUEnergyMJ:      m.CPUEnergyMJ(),
			OverheadEnergyMJ: rawOvMS * e.Cost.PowerW,
			CPUPhaseEnergyMJ: gap * cpuPhasePowerW,
			Evals:            d.Evals,
			KnobChanges:      knobChanges,
			TempC:            tempC,
			ThrottleFactor:   throttle,
		}
		res.Records = append(res.Records, rec)
		if observed {
			o.OnDecision(obs.DecisionEvent{
				Policy:      res.Policy,
				App:         app.Name,
				Index:       i,
				Config:      d.Config,
				Evals:       d.Evals,
				SearchIters: d.SearchIters,
				Horizon:     d.Horizon,
				OverheadMS:  ovMS,
				KnobChanges: knobChanges,
			})
			if d.Fallback != "" {
				o.OnFallback(obs.FallbackEvent{
					Policy: res.Policy, App: app.Name, Index: i, Reason: d.Fallback,
				})
			}
			o.OnKernelDone(obs.KernelEvent{
				Policy:           res.Policy,
				App:              app.Name,
				Index:            i,
				Kernel:           rec.Kernel,
				Config:           rec.Config,
				TimeMS:           rec.TimeMS,
				OverheadMS:       rec.OverheadMS,
				CPUPhaseMS:       rec.CPUPhaseMS,
				Insts:            rec.Insts,
				GPUEnergyMJ:      rec.GPUEnergyMJ,
				CPUEnergyMJ:      rec.CPUEnergyMJ,
				OverheadEnergyMJ: rec.OverheadEnergyMJ,
				CPUPhaseEnergyMJ: rec.CPUPhaseEnergyMJ,
				Evals:            rec.Evals,
				TempC:            rec.TempC,
				ThrottleFactor:   rec.ThrottleFactor,
			})
		}
		p.Observe(Observation{
			Index:      i,
			Counters:   k.Counters(),
			Insts:      k.Insts(),
			TimeMS:     timeMS,
			GPUPowerW:  (m.GPUW + m.NBW) / throttle,
			CPUPowerW:  m.CPUW / throttle,
			Config:     d.Config,
			OverheadMS: ovMS,
			TempC:      tempC,
		})
	}
	return res, nil
}

// configKnobDiff counts the knobs whose state differs between two
// configurations.
func configKnobDiff(a, b hw.Config) int {
	n := 0
	if a.CPU != b.CPU {
		n++
	}
	if a.NB != b.NB {
		n++
	}
	if a.GPU != b.GPU {
		n++
	}
	if a.CUs != b.CUs {
		n++
	}
	return n
}

// MaxTempC returns the hottest die temperature of the run (0 if the
// thermal path is disabled).
func (r *Result) MaxTempC() float64 {
	max := 0.0
	for _, rec := range r.Records {
		if rec.TempC > max {
			max = rec.TempC
		}
	}
	return max
}

// ThrottledMS returns the execution time added by thermal throttling.
func (r *Result) ThrottledMS() float64 {
	s := 0.0
	for _, rec := range r.Records {
		if rec.ThrottleFactor > 1 {
			s += rec.TimeMS * (1 - 1/rec.ThrottleFactor)
		}
	}
	return s
}

// KnobChanges returns the total knob reconfigurations of the run.
func (r *Result) KnobChanges() int {
	s := 0
	for _, rec := range r.Records {
		s += rec.KnobChanges
	}
	return s
}

// cpuPhasePowerW is chip power while the host runs a CPU phase between
// kernels: the CPU busy at a boosted state plus the idle GPU. CPU phases
// cost the same under every policy, so this only dilutes percentages,
// but the accounting must still close.
var cpuPhasePowerW = kernel.CPUPowerW(hw.P2) + 6.0

// RunRepeated executes app under p for `times` consecutive invocations
// (the Fig. 11 amortization study): the first run is flagged FirstRun,
// and the policy carries its learned pattern knowledge forward.
func (e *Engine) RunRepeated(app *workload.App, p Policy, target Target, times int) ([]*Result, error) {
	if times <= 0 {
		return nil, fmt.Errorf("sim: RunRepeated needs times > 0")
	}
	out := make([]*Result, 0, times)
	for r := 0; r < times; r++ {
		res, err := e.Run(app, p, target, r == 0)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Comparison summarizes a policy result against a baseline result, in the
// paper's reporting conventions.
type Comparison struct {
	EnergySavingsPct    float64 // 100·(1 − E/E_base), chip-wide incl overheads
	GPUEnergySavingsPct float64 // 100·(1 − E_gpu/E_gpu_base)
	Speedup             float64 // T_base / T (≥ 1 is faster), incl overheads
}

// Compare computes the standard paper metrics of res against base.
func Compare(res, base *Result) Comparison {
	return Comparison{
		EnergySavingsPct:    100 * (1 - res.TotalEnergyMJ()/base.TotalEnergyMJ()),
		GPUEnergySavingsPct: 100 * (1 - res.GPUEnergyMJ()/base.GPUEnergyMJ()),
		Speedup:             base.TotalTimeMS() / res.TotalTimeMS(),
	}
}
