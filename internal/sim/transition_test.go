package sim

import (
	"math"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/workload"
)

// flipFlopPolicy alternates between two configs every kernel.
type flipFlopPolicy struct {
	a, b hw.Config
	i    int
}

func (f *flipFlopPolicy) Name() string        { return "flipflop" }
func (f *flipFlopPolicy) Begin(RunInfo)       { f.i = 0 }
func (f *flipFlopPolicy) Observe(Observation) {}
func (f *flipFlopPolicy) Decide(int) Decision {
	f.i++
	if f.i%2 == 1 {
		return Decision{Config: f.a}
	}
	return Decision{Config: f.b}
}

func TestTransitionCostsChargeKnobChanges(t *testing.T) {
	app, _ := workload.ByName("NBody")
	e := NewEngine(hw.DefaultSpace())
	e.Cost.TransitionMS = 0.1

	// Stable policy: only the very first kernel has no predecessor; the
	// rest are identical, so no transitions at all.
	stable := &fixedPolicy{cfg: hw.FailSafe()}
	sres, err := e.Run(&app, stable, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := sres.KnobChanges(); got != 0 {
		t.Errorf("stable policy caused %d knob changes", got)
	}
	if sres.OverheadMS() != 0 {
		t.Errorf("stable policy charged %v ms overhead", sres.OverheadMS())
	}

	// Flip-flopping between configs differing in two knobs: every kernel
	// after the first pays 2 transitions.
	ff := &flipFlopPolicy{
		a: hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM4, CUs: 8},
		b: hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM0, CUs: 8},
	}
	fres, err := e.Run(&app, ff, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	wantChanges := 2 * (app.Len() - 1)
	if got := fres.KnobChanges(); got != wantChanges {
		t.Errorf("knob changes = %d, want %d", got, wantChanges)
	}
	wantOv := 0.1 * float64(wantChanges)
	if math.Abs(fres.OverheadMS()-wantOv) > 1e-9 {
		t.Errorf("transition overhead = %v, want %v", fres.OverheadMS(), wantOv)
	}
	// Transition energy is charged too.
	if fres.OverheadEnergyMJ() <= 0 {
		t.Error("transitions cost no energy")
	}
}

func TestTransitionsNotHiddenByCPUPhases(t *testing.T) {
	// DVFS transitions stall the GPU; a CPU phase cannot hide them.
	app, _ := workload.ByName("NBody")
	gapped := app.WithUniformCPUGaps(10)
	e := NewEngine(hw.DefaultSpace())
	e.Cost.TransitionMS = 0.1
	ff := &flipFlopPolicy{
		a: hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM4, CUs: 8},
		b: hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM0, CUs: 8},
	}
	res, err := e.Run(&gapped, ff, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadMS() <= 0 {
		t.Error("transition stalls were hidden under CPU phases")
	}
}

func TestZeroTransitionCostIsPaperBehaviour(t *testing.T) {
	app, _ := workload.ByName("NBody")
	e := NewEngine(hw.DefaultSpace())
	if e.Cost.TransitionMS != 0 {
		t.Fatal("default cost model should not charge transitions (paper behaviour)")
	}
	ff := &flipFlopPolicy{
		a: hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM4, CUs: 8},
		b: hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM0, CUs: 8},
	}
	res, err := e.Run(&app, ff, Target{TotalInsts: 1, TotalTimeMS: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Changes counted but not charged.
	if res.KnobChanges() == 0 {
		t.Error("knob changes not counted")
	}
	if res.OverheadMS() != 0 {
		t.Errorf("default model charged %v ms for transitions", res.OverheadMS())
	}
}
