package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mpcdvfs/internal/sim"
)

// JSONLLine is one line of the streaming trace format: run identity plus
// a single kernel record. Unlike WriteJSON's buffered document, every
// line is self-describing, so a long run can be tailed live
// (tail -f trace.jsonl | jq) and several runs can share one file.
type JSONLLine struct {
	App    string           `json:"app"`
	Policy string           `json:"policy"`
	Record sim.KernelRecord `json:"record"`
}

// WriteJSONL appends one line per kernel record of res to w. Call it
// once per run on a shared writer to stream consecutive runs into one
// tailable file; ReadJSONL reassembles them.
func WriteJSONL(w io.Writer, res *sim.Result) error {
	enc := json.NewEncoder(w)
	for _, rec := range res.Records {
		if err := enc.Encode(JSONLLine{App: res.App, Policy: res.Policy, Record: rec}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// ReadJSONL decodes a stream written by WriteJSONL, grouping consecutive
// lines with the same app and policy back into runs (in the exported
// JSONRun form, summaries recomputed from the records). A kernel index
// that does not increase starts a new run, so repeated invocations of
// the same app under the same policy stay separate.
func ReadJSONL(r io.Reader) ([]JSONRun, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var runs []JSONRun
	var cur *sim.Result
	lastIdx := -1
	flush := func() {
		if cur != nil {
			runs = append(runs, FromResult(cur))
			cur = nil
		}
	}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line JSONLLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("trace: bad JSONL line: %w", err)
		}
		if cur == nil || cur.App != line.App || cur.Policy != line.Policy || line.Record.Index <= lastIdx {
			flush()
			cur = &sim.Result{App: line.App, Policy: line.Policy}
		}
		lastIdx = line.Record.Index
		cur.Records = append(cur.Records, line.Record)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	flush()
	return runs, nil
}
