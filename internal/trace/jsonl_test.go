package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// TestJSONLRoundTrip streams two distinct runs into one writer and reads
// them back: identities, record payloads and recomputed summaries must
// survive.
func TestJSONLRoundTrip(t *testing.T) {
	res := sampleRun(t)
	app2, err := workload.ByName("Spmv")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(hw.DefaultSpace())
	res2, _, err := eng.Baseline(&app2)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&buf, res2); err != nil {
		t.Fatal(err)
	}

	runs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2", len(runs))
	}
	for i, want := range []*sim.Result{res, res2} {
		got := runs[i]
		if got.App != want.App || got.Policy != want.Policy {
			t.Errorf("run %d identity = %s/%s", i, got.App, got.Policy)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("run %d: %d records, want %d", i, len(got.Records), len(want.Records))
		}
		if got.Records[1] != want.Records[1] {
			t.Errorf("run %d record 1 mismatch", i)
		}
		if math.Abs(got.EnergyMJ-want.TotalEnergyMJ()) > 1e-9 {
			t.Errorf("run %d energy %v != %v", i, got.EnergyMJ, want.TotalEnergyMJ())
		}
	}
}

// TestJSONLSplitsRepeatedRuns: the same app/policy streamed twice must
// come back as two runs (index reset detection), not one merged run.
func TestJSONLSplitsRepeatedRuns(t *testing.T) {
	res := sampleRun(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2 (repeated runs must not merge)", len(runs))
	}
	if len(runs[0].Records) != len(res.Records) || len(runs[1].Records) != len(res.Records) {
		t.Errorf("record counts %d/%d, want %d each",
			len(runs[0].Records), len(runs[1].Records), len(res.Records))
	}
}

// TestJSONLTolerance: blank lines are skipped, garbage lines error.
func TestJSONLTolerance(t *testing.T) {
	res := sampleRun(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	withBlank := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	runs, err := ReadJSONL(strings.NewReader(withBlank))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || len(runs[0].Records) != len(res.Records) {
		t.Error("blank lines broke the stream")
	}
	if _, err := ReadJSONL(strings.NewReader("{nope\n")); err == nil {
		t.Error("garbage line accepted")
	}
}
