package trace

import (
	"encoding/csv"
	"fmt"
	"io"

	"mpcdvfs/internal/sim"
)

// PowerSample is one reading of the simulated power controller: the
// paper samples CPU and GPU power at 1 ms intervals (§V).
type PowerSample struct {
	TimeMS    float64
	GPUPowerW float64 // GPU+NB
	CPUPowerW float64
	Kernel    string // "" during optimizer overhead or CPU phases
	TempC     float64
}

// DefaultSampleMS is the paper's power-controller sampling interval.
const DefaultSampleMS = 1.0

// PowerTrace reconstructs the piecewise-constant power timeline of a run
// and samples it every intervalMS milliseconds: the kernel's average
// power during its execution, the optimization power during visible
// overhead, and the CPU-phase power during gaps.
func PowerTrace(res *sim.Result, cost sim.CostModel, intervalMS float64) ([]PowerSample, error) {
	if intervalMS <= 0 {
		return nil, fmt.Errorf("trace: non-positive sampling interval")
	}

	// Build the piecewise segments in wall order: CPU phase, overhead,
	// kernel.
	type segment struct {
		durMS, gpuW, cpuW, tempC float64
		kernel                   string
	}
	var segs []segment
	for _, rec := range res.Records {
		if rec.CPUPhaseMS > 0 {
			w := 0.0
			if rec.CPUPhaseMS > 0 {
				w = rec.CPUPhaseEnergyMJ / rec.CPUPhaseMS
			}
			segs = append(segs, segment{durMS: rec.CPUPhaseMS, cpuW: w, tempC: rec.TempC})
		}
		if rec.OverheadMS > 0 {
			segs = append(segs, segment{
				durMS: rec.OverheadMS,
				gpuW:  cost.PowerW * 0.25, cpuW: cost.PowerW * 0.75,
				tempC: rec.TempC,
			})
		}
		if rec.TimeMS > 0 {
			segs = append(segs, segment{
				durMS:  rec.TimeMS,
				gpuW:   rec.GPUEnergyMJ / rec.TimeMS,
				cpuW:   rec.CPUEnergyMJ / rec.TimeMS,
				kernel: rec.Kernel,
				tempC:  rec.TempC,
			})
		}
	}

	var out []PowerSample
	now, segIdx, segStart := 0.0, 0, 0.0
	total := res.TotalTimeMS()
	for now < total && segIdx < len(segs) {
		for segIdx < len(segs) && now >= segStart+segs[segIdx].durMS {
			segStart += segs[segIdx].durMS
			segIdx++
		}
		if segIdx >= len(segs) {
			break
		}
		s := segs[segIdx]
		out = append(out, PowerSample{
			TimeMS:    now,
			GPUPowerW: s.gpuW,
			CPUPowerW: s.cpuW,
			Kernel:    s.kernel,
			TempC:     s.tempC,
		})
		now += intervalMS
	}
	return out, nil
}

// WritePowerCSV writes a power trace as CSV.
func WritePowerCSV(w io.Writer, samples []PowerSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "gpu_w", "cpu_w", "kernel", "temp_c"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, s := range samples {
		row := []string{
			fmtF(s.TimeMS), fmtF(s.GPUPowerW), fmtF(s.CPUPowerW), s.Kernel, fmtF(s.TempC),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// EnergyOf integrates a power trace back into millijoules — a
// consistency check between the sampled timeline and the run accounting.
func EnergyOf(samples []PowerSample, intervalMS float64) (gpuMJ, cpuMJ float64) {
	for _, s := range samples {
		gpuMJ += s.GPUPowerW * intervalMS
		cpuMJ += s.CPUPowerW * intervalMS
	}
	return gpuMJ, cpuMJ
}

// kernelOf is a helper for tests: the kernel active at time t.
func kernelOf(samples []PowerSample, t float64) string {
	last := ""
	for _, s := range samples {
		if s.TimeMS > t {
			break
		}
		last = s.Kernel
	}
	return last
}
