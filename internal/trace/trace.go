// Package trace exports simulation runs as CSV and JSON for external
// analysis and plotting — the raw per-kernel decision traces behind the
// figures.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mpcdvfs/internal/sim"
)

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"index", "kernel", "cpu", "nb", "gpu", "cus",
	"time_ms", "overhead_ms", "cpu_phase_ms", "insts",
	"gpu_energy_mj", "cpu_energy_mj", "overhead_energy_mj", "evals",
}

// WriteCSV writes one row per kernel invocation.
func WriteCSV(w io.Writer, res *sim.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, r := range res.Records {
		row := []string{
			strconv.Itoa(r.Index),
			r.Kernel,
			r.Config.CPU.String(),
			r.Config.NB.String(),
			r.Config.GPU.String(),
			strconv.Itoa(int(r.Config.CUs)),
			fmtF(r.TimeMS),
			fmtF(r.OverheadMS),
			fmtF(r.CPUPhaseMS),
			fmtF(r.Insts),
			fmtF(r.GPUEnergyMJ),
			fmtF(r.CPUEnergyMJ),
			fmtF(r.OverheadEnergyMJ),
			strconv.Itoa(r.Evals),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// JSONRun is the exported form of a run: summary plus records.
type JSONRun struct {
	App          string             `json:"app"`
	Policy       string             `json:"policy"`
	TotalTimeMS  float64            `json:"total_time_ms"`
	KernelTimeMS float64            `json:"kernel_time_ms"`
	OverheadMS   float64            `json:"overhead_ms"`
	EnergyMJ     float64            `json:"energy_mj"`
	GPUEnergyMJ  float64            `json:"gpu_energy_mj"`
	CPUEnergyMJ  float64            `json:"cpu_energy_mj"`
	Records      []sim.KernelRecord `json:"records"`
}

// FromResult converts a run into its exported form.
func FromResult(res *sim.Result) JSONRun {
	return JSONRun{
		App:          res.App,
		Policy:       res.Policy,
		TotalTimeMS:  res.TotalTimeMS(),
		KernelTimeMS: res.KernelTimeMS(),
		OverheadMS:   res.OverheadMS(),
		EnergyMJ:     res.TotalEnergyMJ(),
		GPUEnergyMJ:  res.GPUEnergyMJ(),
		CPUEnergyMJ:  res.CPUEnergyMJ(),
		Records:      res.Records,
	}
}

// WriteJSON writes the run as indented JSON.
func WriteJSON(w io.Writer, res *sim.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(FromResult(res)); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadJSON decodes a run previously written by WriteJSON.
func ReadJSON(r io.Reader) (JSONRun, error) {
	var run JSONRun
	if err := json.NewDecoder(r).Decode(&run); err != nil {
		return JSONRun{}, fmt.Errorf("trace: %w", err)
	}
	return run, nil
}
