package trace

import (
	"bytes"
	"strings"
	"testing"

	"mpcdvfs/internal/sim"
)

// FuzzTraceJSONL drives ReadJSONL with arbitrary byte streams: it must
// either return an error or a well-formed slice of runs, never panic.
// A stream that parses must also survive a write/read round trip with
// its records intact — the property cmd/mpcsim relies on when replaying
// -trace-out files produced by earlier runs.
func FuzzTraceJSONL(f *testing.F) {
	// A genuine stream: two runs of the same app/policy (index reset
	// starts the second run), then a different policy.
	res := &sim.Result{App: "Spmv", Policy: "mpc", Records: []sim.KernelRecord{
		{Index: 0, Kernel: "k0", TimeMS: 1.5, Insts: 100, GPUEnergyMJ: 2, Evals: 12},
		{Index: 1, Kernel: "k1", TimeMS: 0.5, Insts: 50, GPUEnergyMJ: 1, Evals: 9},
	}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		f.Fatal(err)
	}
	if err := WriteJSONL(&buf, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"app":"a","policy":"p","record":{"Index":0}}`))
	f.Add([]byte(`{"app":"a"`)) // truncated JSON
	f.Add([]byte("\n\n{}\n"))
	f.Add([]byte(`{"app":1,"policy":{},"record":[]}`)) // wrong types
	f.Add([]byte(strings.Repeat("x", 100)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		runs, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // malformed stream rejected, as documented
		}
		total := 0
		for _, r := range runs {
			if len(r.Records) == 0 {
				t.Fatalf("parsed run %q/%q has no records", r.App, r.Policy)
			}
			total += len(r.Records)
		}

		// Round trip: re-writing the parsed runs and reading them back
		// must preserve every record (run boundaries may merge only if
		// the original stream violated the grouping invariants, which
		// parsed runs never do).
		var out bytes.Buffer
		for _, r := range runs {
			res := &sim.Result{App: r.App, Policy: r.Policy, Records: r.Records}
			if err := WriteJSONL(&out, res); err != nil {
				t.Fatalf("re-writing parsed runs: %v", err)
			}
		}
		again, err := ReadJSONL(&out)
		if err != nil {
			t.Fatalf("re-reading written runs: %v", err)
		}
		total2 := 0
		for _, r := range again {
			total2 += len(r.Records)
		}
		if total2 != total {
			t.Fatalf("round trip changed record count: %d != %d", total2, total)
		}
	})
}
