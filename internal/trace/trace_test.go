package trace

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

func sampleRun(t *testing.T) *sim.Result {
	t.Helper()
	app, err := workload.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(hw.DefaultSpace())
	res, _, err := eng.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteCSV(t *testing.T) {
	res := sampleRun(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Records)+1 {
		t.Fatalf("%d CSV rows, want %d", len(rows), len(res.Records)+1)
	}
	if rows[0][0] != "index" || rows[0][len(rows[0])-1] != "evals" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "kmeans_swap" {
		t.Errorf("first kernel = %q", rows[1][1])
	}
	if !strings.HasPrefix(rows[1][2], "P") || !strings.HasPrefix(rows[1][4], "DPM") {
		t.Errorf("config columns = %v", rows[1][2:6])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := sampleRun(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	run, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.App != res.App || run.Policy != res.Policy {
		t.Errorf("identity lost: %s/%s", run.App, run.Policy)
	}
	if len(run.Records) != len(res.Records) {
		t.Fatalf("%d records, want %d", len(run.Records), len(res.Records))
	}
	if math.Abs(run.EnergyMJ-res.TotalEnergyMJ()) > 1e-9 {
		t.Errorf("energy %v != %v", run.EnergyMJ, res.TotalEnergyMJ())
	}
	if run.Records[3] != res.Records[3] {
		t.Errorf("record 3 mismatch")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSummaryConsistency(t *testing.T) {
	res := sampleRun(t)
	run := FromResult(res)
	if run.KernelTimeMS > run.TotalTimeMS {
		t.Error("kernel time exceeds total time")
	}
	if math.Abs(run.GPUEnergyMJ+run.CPUEnergyMJ-run.EnergyMJ) > 1e-9 {
		t.Error("energy split inconsistent")
	}
}
