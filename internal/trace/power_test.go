package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

func TestPowerTraceSamplesWholeRun(t *testing.T) {
	res := sampleRun(t)
	cm := sim.DefaultCostModel()
	samples, err := PowerTrace(res, cm, DefaultSampleMS)
	if err != nil {
		t.Fatal(err)
	}
	want := int(res.TotalTimeMS() / DefaultSampleMS)
	if len(samples) < want-1 || len(samples) > want+2 {
		t.Fatalf("%d samples for a %.1f ms run", len(samples), res.TotalTimeMS())
	}
	// Timestamps strictly increase by the interval.
	for i := 1; i < len(samples); i++ {
		if d := samples[i].TimeMS - samples[i-1].TimeMS; math.Abs(d-DefaultSampleMS) > 1e-9 {
			t.Fatalf("sample spacing %v at %d", d, i)
		}
	}
	// Power levels are plausible chip power.
	for _, s := range samples {
		tot := s.GPUPowerW + s.CPUPowerW
		if tot <= 0 || tot > hw.TDPWatt {
			t.Fatalf("sample power %.1f W out of range", tot)
		}
	}
	// The first kernel name shows up at t=0.
	if got := kernelOf(samples, 0); got != res.Records[0].Kernel {
		t.Errorf("kernel at t=0 is %q, want %q", got, res.Records[0].Kernel)
	}
}

func TestPowerTraceEnergyCloses(t *testing.T) {
	res := sampleRun(t)
	cm := sim.DefaultCostModel()
	// Fine sampling: the integral must approach the run's energy.
	samples, err := PowerTrace(res, cm, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gpu, cpu := EnergyOf(samples, 0.05)
	if d := math.Abs(gpu+cpu-res.TotalEnergyMJ()) / res.TotalEnergyMJ(); d > 0.02 {
		t.Errorf("trace energy %.1f mJ vs run %.1f mJ (%.1f%% off)", gpu+cpu, res.TotalEnergyMJ(), 100*d)
	}
}

func TestPowerTraceValidation(t *testing.T) {
	res := sampleRun(t)
	if _, err := PowerTrace(res, sim.DefaultCostModel(), 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestWritePowerCSV(t *testing.T) {
	res := sampleRun(t)
	samples, err := PowerTrace(res, sim.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(samples)+1 {
		t.Fatalf("%d CSV lines for %d samples", len(lines), len(samples))
	}
	if !strings.HasPrefix(lines[0], "time_ms,gpu_w,cpu_w") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestPowerTraceWithGapsAndOverhead(t *testing.T) {
	app, _ := workload.ByName("Spmv")
	gapped := app.WithUniformCPUGaps(0.5)
	eng := sim.NewEngine(hw.DefaultSpace())
	res, _, err := eng.Baseline(&gapped)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := PowerTrace(res, eng.Cost, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Some samples must fall inside CPU phases (kernel name empty).
	inPhase := 0
	for _, s := range samples {
		if s.Kernel == "" {
			inPhase++
		}
	}
	if inPhase == 0 {
		t.Error("no samples landed in CPU phases")
	}
}
