package predict

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/rf"
)

// oracleSamples synthesizes a served-traffic sample set: random kernels
// measured by the oracle across the default configuration space, the
// same ground truth offline training uses.
func oracleSamples(t *testing.T, nKernels int, seed int64) []Sample {
	t.Helper()
	o := NewOracle()
	rng := rand.New(rand.NewSource(seed))
	space := hw.DefaultSpace()
	var out []Sample
	for i := 0; i < nKernels; i++ {
		k := kernel.Random(fmt.Sprintf("onl-%d", i), rng)
		o.Register(k)
		cs := k.Counters()
		for j := 0; j < 6; j++ {
			c := space.At(rng.Intn(space.Size()))
			e := o.PredictKernel(cs, c)
			out = append(out, Sample{Counters: cs, Config: c, TimeMS: e.TimeMS, GPUPowerW: e.GPUPowerW})
		}
	}
	return out
}

func TestSampleValid(t *testing.T) {
	k := kernel.NewBalanced("v", 1)
	good := Sample{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: 1.5, GPUPowerW: 20}
	if !good.Valid() {
		t.Fatal("well-formed sample rejected")
	}
	cases := []Sample{
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: 0, GPUPowerW: 20},
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: -1, GPUPowerW: 20},
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: 1, GPUPowerW: 0},
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: math.NaN(), GPUPowerW: 20},
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: math.Inf(1), GPUPowerW: 20},
		{Counters: k.Counters(), Config: hw.FailSafe(), TimeMS: 1, GPUPowerW: math.Inf(1)},
	}
	for i, s := range cases {
		if s.Valid() {
			t.Fatalf("case %d: invalid sample accepted: %+v", i, s)
		}
	}
	bad := good
	bad.Counters[0] = math.NaN()
	if bad.Valid() {
		t.Fatal("sample with NaN counter accepted")
	}
}

// TestTrainOnSamplesDeterministicAndAccurate: training twice on the
// same samples yields bit-identical predictions, and the model actually
// learns the oracle to well under 50% MAPE on its own training data.
func TestTrainOnSamplesDeterministicAndAccurate(t *testing.T) {
	samples := oracleSamples(t, 30, 11)
	fcfg := OnlineForestConfig(42)
	fcfg.NumTrees = 16
	m1, err := TrainOnSamples(samples, fcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainOnSamples(samples, fcfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:20] {
		a := m1.PredictKernel(s.Counters, s.Config)
		b := m2.PredictKernel(s.Counters, s.Config)
		if math.Float64bits(a.TimeMS) != math.Float64bits(b.TimeMS) ||
			math.Float64bits(a.GPUPowerW) != math.Float64bits(b.GPUPowerW) {
			t.Fatalf("retrain with different worker counts differs: %+v vs %+v", a, b)
		}
	}
	tm, pm, n := EvaluateOnSamples(m1, samples)
	if n != len(samples) {
		t.Fatalf("evaluated %d of %d samples", n, len(samples))
	}
	if tm > 0.5 || pm > 0.5 {
		t.Fatalf("online model failed to fit its own training data: time MAPE %.3f power MAPE %.3f", tm, pm)
	}
}

// TestExtendOnSamplesEqualsBiggerTrain carries rf.Extend's equality
// contract through the predict layer: extending an online model by k
// trees predicts bit-identically to training NumTrees+k from scratch.
func TestExtendOnSamplesEqualsBiggerTrain(t *testing.T) {
	samples := oracleSamples(t, 20, 7)
	fcfg := OnlineForestConfig(5)
	fcfg.NumTrees = 8
	small, err := TrainOnSamples(samples, fcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendOnSamples(small, samples, fcfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := fcfg
	big.NumTrees = 12
	want, err := TrainOnSamples(samples, big, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ext.timeForest.NumTrees() != 12 || ext.powerForest.NumTrees() != 12 {
		t.Fatalf("extended forests have %d/%d trees, want 12",
			ext.timeForest.NumTrees(), ext.powerForest.NumTrees())
	}
	for _, s := range samples {
		a := ext.PredictKernel(s.Counters, s.Config)
		b := want.PredictKernel(s.Counters, s.Config)
		if math.Float64bits(a.TimeMS) != math.Float64bits(b.TimeMS) ||
			math.Float64bits(a.GPUPowerW) != math.Float64bits(b.GPUPowerW) {
			t.Fatalf("extended model differs from bigger retrain: %+v vs %+v", a, b)
		}
	}
}

// TestTrainOnSamplesMatchesOfflineTransforms checks the online path
// produces the same matrix the offline trainer would: a model trained
// on oracle samples agrees with one trained via sampleMatrix + rf
// directly, pinning the featurization/target transforms together.
func TestTrainOnSamplesMatchesOfflineTransforms(t *testing.T) {
	samples := oracleSamples(t, 10, 3)
	fcfg := rf.Config{NumTrees: 6, MaxDepth: 8, MinLeaf: 2, MaxFeatures: numRFFeatures / 2,
		NumThresh: 16, SampleFrac: 0.8, Seed: 9, Workers: 1}
	m, err := TrainOnSamples(samples, fcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	X, yTime, yPower := sampleMatrix(samples)
	tf, err := rf.Train(X, yTime, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := fcfg
	pcfg.Seed++
	pf, err := rf.Train(X, yPower, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewFromForests(tf, pf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		a := m.PredictKernel(s.Counters, s.Config)
		b := want.PredictKernel(s.Counters, s.Config)
		if math.Float64bits(a.TimeMS) != math.Float64bits(b.TimeMS) ||
			math.Float64bits(a.GPUPowerW) != math.Float64bits(b.GPUPowerW) {
			t.Fatalf("TrainOnSamples differs from manual rf path: %+v vs %+v", a, b)
		}
	}
}

func TestTrainOnSamplesValidation(t *testing.T) {
	if _, err := TrainOnSamples(nil, OnlineForestConfig(1), 1); err == nil {
		t.Fatal("TrainOnSamples accepted an empty sample set")
	}
	if _, err := ExtendOnSamples(nil, oracleSamples(t, 2, 1), OnlineForestConfig(1), 2, 1); err == nil {
		t.Fatal("ExtendOnSamples accepted a nil model")
	}
}

func TestEvaluateOnSamplesEdgeCases(t *testing.T) {
	o := NewOracle()
	k := kernel.NewBalanced("e", 1)
	o.Register(k)
	tm, pm, n := EvaluateOnSamples(o, nil)
	if tm != 0 || pm != 0 || n != 0 {
		t.Fatalf("empty evaluation returned %v %v %d", tm, pm, n)
	}
	// Oracle evaluated against its own measurements is exact.
	s := Sample{Counters: k.Counters(), Config: hw.FailSafe()}
	e := o.PredictKernel(s.Counters, s.Config)
	s.TimeMS, s.GPUPowerW = e.TimeMS, e.GPUPowerW
	tm, pm, n = EvaluateOnSamples(o, []Sample{s, {Counters: k.Counters(), Config: hw.FailSafe()}})
	if n != 1 {
		t.Fatalf("evaluated %d samples, want 1 (zero-measurement sample skipped)", n)
	}
	if tm != 0 || pm != 0 {
		t.Fatalf("oracle self-evaluation nonzero: time %v power %v", tm, pm)
	}
}
