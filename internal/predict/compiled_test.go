package predict

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

// quickRF trains a small forest pair fast enough for unit tests that
// only need a structurally real model, not paper-grade accuracy.
func quickRF(t *testing.T) *RandomForest {
	t.Helper()
	opt := DefaultTrainOptions(77)
	opt.NumKernels = 12
	m, err := TrainRandomForest(opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPredictKernelCompiledEquivalence checks that the compiled default
// path and the reference tree-walking path agree bit for bit across a
// population of kernels and the full configuration space — the
// invariant that makes the fast path unobservable in any replay.
func TestPredictKernelCompiledEquivalence(t *testing.T) {
	m := quickRF(t)
	defer m.SetCompiled(true)
	rng := rand.New(rand.NewSource(5))
	space := hw.DefaultSpace()
	for i := 0; i < 6; i++ {
		cs := kernel.Random("eq", rng).Counters()
		space.ForEach(func(c hw.Config) {
			m.SetCompiled(true)
			fast := m.PredictKernel(cs, c)
			m.SetCompiled(false)
			ref := m.PredictKernel(cs, c)
			if math.Float64bits(fast.TimeMS) != math.Float64bits(ref.TimeMS) ||
				math.Float64bits(fast.GPUPowerW) != math.Float64bits(ref.GPUPowerW) {
				t.Fatalf("kernel %d config %+v: compiled %+v != tree-walk %+v", i, c, fast, ref)
			}
		})
	}
}

// TestPredictSpaceMatchesScalar checks the batched sweep against a
// scalar PredictKernel loop: same configurations, same order, same
// bits.
func TestPredictSpaceMatchesScalar(t *testing.T) {
	m := quickRF(t)
	space := hw.DefaultSpace()
	rng := rand.New(rand.NewSource(6))
	dst := make([]Estimate, space.Size())
	for i := 0; i < 4; i++ {
		cs := kernel.Random("sp", rng).Counters()
		if !m.PredictSpace(cs, space, dst) {
			t.Fatal("PredictSpace returned false on a compiled model")
		}
		for r, c := range space.Configs() {
			want := m.PredictKernel(cs, c)
			if math.Float64bits(dst[r].TimeMS) != math.Float64bits(want.TimeMS) ||
				math.Float64bits(dst[r].GPUPowerW) != math.Float64bits(want.GPUPowerW) {
				t.Fatalf("row %d (%+v): batched %+v != scalar %+v", r, c, dst[r], want)
			}
		}
	}
}

// TestPredictSpaceDisabled checks the contract for the unavailable
// case: tree-walk mode refuses the batched path and leaves dst alone.
func TestPredictSpaceDisabled(t *testing.T) {
	m := quickRF(t)
	m.SetCompiled(false)
	defer m.SetCompiled(true)
	space := hw.DefaultSpace()
	dst := make([]Estimate, space.Size())
	sentinel := Estimate{TimeMS: -1, GPUPowerW: -1}
	for i := range dst {
		dst[i] = sentinel
	}
	cs := kernel.NewPeak("pk", 1).Counters()
	if m.PredictSpace(cs, space, dst) {
		t.Fatal("PredictSpace returned true with compiled inference disabled")
	}
	for i := range dst {
		if dst[i] != sentinel {
			t.Fatalf("dst[%d] touched on the refused path: %+v", i, dst[i])
		}
	}
}

// TestPredictSpaceDstSizePanics pins the up-front size check.
func TestPredictSpaceDstSizePanics(t *testing.T) {
	m := quickRF(t)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized dst did not panic")
		}
	}()
	m.PredictSpace(kernel.NewPeak("pk", 1).Counters(), hw.DefaultSpace(), make([]Estimate, 3))
}

// TestCalibratedPredictSpaceForwards checks that the feedback wrapper's
// batched path applies exactly the scalar path's correction — after
// Feedback installs a ratio, batched and scalar calibrated estimates
// stay bit-identical.
func TestCalibratedPredictSpaceForwards(t *testing.T) {
	m := quickRF(t)
	cal := NewCalibrated(m)
	cs := kernel.NewMemoryBound("mb", 1).Counters()
	space := hw.DefaultSpace()
	// Install a non-trivial ratio for this kernel's signature.
	cfg := space.At(0)
	raw := m.PredictKernel(cs, cfg)
	cal.Feedback(cs, cfg, raw.TimeMS*1.17, raw.GPUPowerW*0.83)
	if cal.KnownKernels() != 1 {
		t.Fatalf("feedback not recorded: %d known kernels", cal.KnownKernels())
	}

	dst := make([]Estimate, space.Size())
	if !cal.PredictSpace(cs, space, dst) {
		t.Fatal("Calibrated.PredictSpace returned false over a compiled model")
	}
	for r, c := range space.Configs() {
		want := cal.PredictKernel(cs, c)
		if math.Float64bits(dst[r].TimeMS) != math.Float64bits(want.TimeMS) ||
			math.Float64bits(dst[r].GPUPowerW) != math.Float64bits(want.GPUPowerW) {
			t.Fatalf("row %d: calibrated batched %+v != scalar %+v", r, dst[r], want)
		}
	}

	// A wrapper over a model with no batched path must refuse too.
	calOracle := NewCalibrated(NewOracle())
	if calOracle.PredictSpace(cs, space, dst) {
		t.Fatal("Calibrated.PredictSpace returned true over a scalar-only model")
	}
	m.SetCompiled(false)
	defer m.SetCompiled(true)
	if cal.PredictSpace(cs, space, dst) {
		t.Fatal("Calibrated.PredictSpace returned true with the inner fast path disabled")
	}
}

// TestPredictKernelZeroAlloc pins the steady-state scalar prediction at
// zero allocations per call: the feature vector lives on the stack and
// compiled traversal touches only pre-built pools.
func TestPredictKernelZeroAlloc(t *testing.T) {
	m := quickRF(t)
	cs := kernel.NewComputeBound("cb", 1).Counters()
	cfg := hw.DefaultSpace().At(17)
	if allocs := testing.AllocsPerRun(200, func() { _ = m.PredictKernel(cs, cfg) }); allocs != 0 {
		t.Fatalf("PredictKernel allocates %v times per call, want 0", allocs)
	}
}

// TestPredictSpaceZeroAllocSteadyState pins the batched sweep at zero
// allocations once the arena has been built for the space (the first
// sweep pays the one-time layout; every per-decision sweep after it is
// allocation-free).
func TestPredictSpaceZeroAllocSteadyState(t *testing.T) {
	m := quickRF(t)
	space := hw.DefaultSpace()
	cs := kernel.NewPeak("pk", 1).Counters()
	dst := make([]Estimate, space.Size())
	m.PredictSpace(cs, space, dst) // warm up: builds the arena
	if allocs := testing.AllocsPerRun(50, func() { m.PredictSpace(cs, space, dst) }); allocs != 0 {
		t.Fatalf("warm PredictSpace allocates %v times per call, want 0", allocs)
	}
}

// TestFeaturizeZeroAlloc pins featurizeInto (the hot-path assembly) at
// zero allocations with a caller-owned buffer.
func TestFeaturizeZeroAlloc(t *testing.T) {
	cs := kernel.NewPeak("pk", 1).Counters()
	cfg := hw.DefaultSpace().At(3)
	var buf [numRFFeatures]float64
	if allocs := testing.AllocsPerRun(200, func() { featurizeInto(buf[:], cs, cfg) }); allocs != 0 {
		t.Fatalf("featurizeInto allocates %v times per call, want 0", allocs)
	}
	// The allocating convenience must agree with the in-place form.
	x := featurize(cs, cfg)
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(buf[i]) {
			t.Fatalf("featurize[%d] = %v, featurizeInto wrote %v", i, x[i], buf[i])
		}
	}
	if len(x) != counters.NumCounters+numConfigFeatures {
		t.Fatalf("featurize returned %d features, want %d", len(x), numRFFeatures)
	}
}

// TestCompiledForestsExposed checks that trained models carry their
// compiled forests from birth and that the shapes line up.
func TestCompiledForestsExposed(t *testing.T) {
	m := quickRF(t)
	tc, pc := m.CompiledForests()
	if tc == nil || pc == nil {
		t.Fatal("trained model missing compiled forests")
	}
	tf, pf := m.Forests()
	if tc.NumTrees() != tf.NumTrees() || tc.NumFeatures() != tf.NumFeatures() {
		t.Fatalf("time forest compiled shape %d/%d != %d/%d",
			tc.NumTrees(), tc.NumFeatures(), tf.NumTrees(), tf.NumFeatures())
	}
	if pc.NumTrees() != pf.NumTrees() || pc.NumFeatures() != pf.NumFeatures() {
		t.Fatalf("power forest compiled shape %d/%d != %d/%d",
			pc.NumTrees(), pc.NumFeatures(), pf.NumTrees(), pf.NumFeatures())
	}
	if tc.NumNodes() <= 0 {
		t.Fatal("empty compiled node pool")
	}
}

// TestPredictSpaceConcurrent hammers one model's batched sweep from
// many goroutines at once — the exact sharing pattern of the decision
// service, where every session's optimizer sweeps through the same
// snapshot's pooled arenas. Each goroutine uses its own kernels and its
// own dst, and every row must be bit-identical to a serial sweep. Run
// under -race this pins the arena pool against aliasing two sweeps.
func TestPredictSpaceConcurrent(t *testing.T) {
	m := quickRF(t)
	space := hw.DefaultSpace()
	const goroutines = 8
	const sweeps = 25

	// Serial reference per goroutine seed, computed up front.
	want := make([][]Estimate, goroutines)
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(100 + g)))
		cs := kernel.Random("cc", rng).Counters()
		dst := make([]Estimate, space.Size())
		if !m.PredictSpace(cs, space, dst) {
			t.Fatal("PredictSpace returned false on a compiled model")
		}
		want[g] = dst
	}

	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			cs := kernel.Random("cc", rng).Counters()
			dst := make([]Estimate, space.Size())
			for s := 0; s < sweeps; s++ {
				if !m.PredictSpace(cs, space, dst) {
					errs[g] = fmt.Errorf("goroutine %d sweep %d: PredictSpace returned false", g, s)
					return
				}
				for r := range dst {
					if math.Float64bits(dst[r].TimeMS) != math.Float64bits(want[g][r].TimeMS) ||
						math.Float64bits(dst[r].GPUPowerW) != math.Float64bits(want[g][r].GPUPowerW) {
						errs[g] = fmt.Errorf("goroutine %d sweep %d row %d: %+v != serial %+v",
							g, s, r, dst[r], want[g][r])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
