package predict

import (
	"math"
	"time"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/rf"
	"mpcdvfs/internal/telemetry"
)

// SweepRequest is one session's batched-sweep submission to a cross-
// session coordinator: evaluate Model over every configuration of Space
// for the kernel described by CS, writing space.Size() raw (uncalibrated)
// estimates into Dst. The submitting goroutine parks on Done after a
// successful submit; the coordinator stamps EvalStart/EvalNS/OK and
// sends exactly one value on Done when Dst is fully written (OK=true)
// or the request could not be served (OK=false — the submitter falls
// back to its direct path).
//
// A request struct is owned by its submitter and reused across
// decisions; all fields must be (re)set before each submit, and the
// coordinator never touches the struct after the Done send.
type SweepRequest struct {
	Model *RandomForest // raw forest to evaluate (calibration is the submitter's job)
	Space hw.Space
	CS    counters.Set
	Dst   []Estimate // space.Size() slots, filled in hw.Space.At order

	Submitted time.Time // stamped by the submit path, before handoff
	EvalStart time.Time // stamped by the coordinator: fused evaluation begin
	EvalNS    int64     // fused evaluation duration, shared by the epoch
	OK        bool      // true when Dst holds the sweep result

	Done chan struct{} // buffered(1); one send per accepted submit
}

// SweepSubmit hands a request to a coordinator. It returns false when
// the request was not accepted (coordinator off, stopped, or
// saturated) — the caller must then run its direct path; it returns
// true when exactly one Done send will follow.
type SweepSubmit func(*SweepRequest) bool

// RemoteSweep is the session-side SpaceEvaluator that routes exhaustive
// sweeps through a batch coordinator: it submits a SweepRequest, parks
// until the epoch that fused it completes, then applies the session's
// calibration ratios — the same multiplications Calibrated.PredictSpace
// performs after the in-process batched sweep, so returned estimates
// are bit-identical to the direct path. Any failure (submit rejected,
// request declined, compiled inference disabled) returns false without
// touching dst, and the optimizer falls through to the direct path.
//
// A RemoteSweep belongs to one session goroutine (it reuses one request
// struct); the coordinator behind submit is the shared part.
type RemoteSweep struct {
	calib  *Calibrated
	model  *RandomForest
	submit SweepSubmit
	req    SweepRequest
}

// NewRemoteSweep builds the session-side handle. calib may be nil (raw
// estimates are returned uncorrected); model and submit must not be.
func NewRemoteSweep(calib *Calibrated, model *RandomForest, submit SweepSubmit) *RemoteSweep {
	rs := &RemoteSweep{calib: calib, model: model, submit: submit}
	rs.req.Model = model
	rs.req.Done = make(chan struct{}, 1)
	return rs
}

// PredictSpace implements SpaceEvaluator via the batch coordinator.
func (rs *RemoteSweep) PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool {
	return rs.predictSpace(cs, space, dst, nil)
}

// PredictSpaceTraced implements TracedSpaceEvaluator: the same fused
// sweep, with the coordinator-stamped wait and fused-eval intervals
// recorded as child spans of the caller's active trace.
func (rs *RemoteSweep) PredictSpaceTraced(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool {
	return rs.predictSpace(cs, space, dst, tc)
}

func (rs *RemoteSweep) predictSpace(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool {
	m := rs.model
	if m == nil || m.treeWalk || m.timeCompiled == nil {
		return false
	}
	t0 := tc.StartPhase()
	req := &rs.req
	req.Space = space
	req.CS = cs
	req.Dst = dst
	req.Submitted = time.Time{}
	req.EvalStart = time.Time{}
	req.EvalNS = 0
	req.OK = false
	if !rs.submit(req) {
		return false
	}
	<-req.Done
	if !req.OK {
		return false
	}
	if !t0.IsZero() && !req.EvalStart.IsZero() {
		tc.Record(telemetry.SpanBatchWait, t0, req.EvalStart.Sub(t0))
		tc.Record(telemetry.SpanBatchEval, req.EvalStart, time.Duration(req.EvalNS))
	}
	if rs.calib != nil {
		rs.calib.ApplyRatio(cs, dst)
	}
	return true
}

// FusedPlan is the coordinator-side workspace for fusing sweeps that
// share one (model, space) pair: a rf.FusedKeys matrix whose every slot
// has the space's config-suffix columns pre-keyed (the spaceArena
// layout, replicated per slot), plus the fused forest output vectors.
// Stage patches one request's counter prefix into a slot; Execute runs
// both forests over the staged prefix as one contiguous mega-batch and
// scatters per-request estimates. Per-slot results are bit-identical to
// RandomForest.PredictSpace for the same inputs: identical key rows,
// and rf.PredictFusedInto never reorders any row's within-row
// reduction.
type FusedPlan struct {
	model *RandomForest
	space hw.Space
	rows  int
	fk    *rf.FusedKeys
	tOut  []float64
	pOut  []float64
	insts []float64 // per-slot instsOf(cs), staged alongside the keys
}

// NewFusedPlan lays out a plan for up to maxRequests fused sweeps of
// model over space. Returns nil when the model has no usable batched
// path (compiled inference disabled) or the space is empty — the
// coordinator then declines those requests and submitters fall back.
func NewFusedPlan(model *RandomForest, space hw.Space, maxRequests int) *FusedPlan {
	if model == nil || model.treeWalk || model.timeCompiled == nil {
		return nil
	}
	n := space.Size()
	if n == 0 || maxRequests <= 0 {
		return nil
	}
	p := &FusedPlan{
		model: model,
		space: space,
		rows:  n,
		fk:    rf.NewFusedKeys(numRFFeatures, n, maxRequests),
		tOut:  make([]float64, maxRequests*n),
		pOut:  make([]float64, maxRequests*n),
		insts: make([]float64, maxRequests),
	}
	var row [numRFFeatures]float64
	for s := 0; s < maxRequests; s++ {
		keys := p.fk.Slot(s)
		i := 0
		space.ForEach(func(c hw.Config) {
			patchConfig(row[:], c)
			rf.KeysInto(keys[i*numRFFeatures+counters.NumCounters:(i+1)*numRFFeatures],
				row[counters.NumCounters:])
			i++
		})
	}
	return p
}

// Serves reports whether the plan was built for exactly this (model,
// space) pair — the coordinator's grouping key.
func (p *FusedPlan) Serves(model *RandomForest, space hw.Space) bool {
	return p.model == model && p.space.Equal(space)
}

// MaxRequests is the slot capacity of one fused evaluation.
func (p *FusedPlan) MaxRequests() int { return p.fk.MaxRequests() }

// Stage keys one request's counter prefix into slot — the same
// counterPrefix + rf.KeysInto + per-row copy sequence predictSpace
// runs, so the slot's key rows equal the arena rows of a direct sweep.
//
//mpclint:hotpath pinned at 0 allocs/op by TestFusedPlanZeroAlloc
func (p *FusedPlan) Stage(slot int, cs counters.Set) {
	var prefix [counters.NumCounters]float64
	counterPrefix(prefix[:], cs)
	var kprefix [counters.NumCounters]uint64
	rf.KeysInto(kprefix[:], prefix[:])
	keys := p.fk.Slot(slot)
	for r := 0; r < p.rows; r++ {
		copy(keys[r*numRFFeatures:r*numRFFeatures+counters.NumCounters], kprefix[:])
	}
	p.insts[slot] = instsOf(cs)
}

// Execute evaluates the first nreq staged slots as one fused mega-batch
// through both compiled forests and scatters slot i's estimates into
// dsts[i] (each len p.rows), assembling every estimate with exactly the
// direct sweep's final operations.
//
//mpclint:hotpath pinned at 0 allocs/op by TestFusedPlanZeroAlloc
func (p *FusedPlan) Execute(nreq int, dsts [][]Estimate) {
	rows := p.rows
	tOut := p.tOut[:nreq*rows]
	pOut := p.pOut[:nreq*rows]
	p.model.timeCompiled.PredictFusedInto(tOut, p.fk, nreq)
	p.model.powerCompiled.PredictFusedInto(pOut, p.fk, nreq)
	for i := 0; i < nreq; i++ {
		dst := dsts[i]
		insts := p.insts[i]
		base := i * rows
		for r := 0; r < rows; r++ {
			dst[r] = Estimate{TimeMS: math.Exp(tOut[base+r]) * insts, GPUPowerW: pOut[base+r]}
		}
	}
}

// Compile-time interface checks for the remote-sweep path.
var (
	_ SpaceEvaluator       = (*RemoteSweep)(nil)
	_ TracedSpaceEvaluator = (*RemoteSweep)(nil)
)
