package predict

import (
	"encoding/gob"
	"fmt"
	"io"

	"mpcdvfs/internal/rf"
)

// modelFile is the serialized form of a trained RandomForest predictor:
// the offline-trained artifact the paper's system-level software ships
// to the runtime (§IV-A3).
type modelFile struct {
	Magic       string
	TimeForest  *rf.Forest
	PowerForest *rf.Forest
}

const modelMagic = "mpcdvfs-rf-v1"

// SaveModel writes the trained predictor to w.
func SaveModel(w io.Writer, m *RandomForest) error {
	if m == nil || m.timeForest == nil || m.powerForest == nil {
		return fmt.Errorf("predict: cannot save an empty model")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(modelFile{Magic: modelMagic, TimeForest: m.timeForest, PowerForest: m.powerForest}); err != nil {
		return fmt.Errorf("predict: save model: %w", err)
	}
	return nil
}

// LoadModel reads a predictor previously written by SaveModel.
func LoadModel(r io.Reader) (*RandomForest, error) {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("predict: load model: %w", err)
	}
	if f.Magic != modelMagic {
		return nil, fmt.Errorf("predict: not a model file (magic %q)", f.Magic)
	}
	return NewFromForests(f.TimeForest, f.PowerForest)
}
