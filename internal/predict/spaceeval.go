package predict

import (
	"fmt"
	"math"
	"sync"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
)

// SpaceEvaluator is the optional batched extension of Model: a model
// that can evaluate one kernel at every configuration of a space in a
// single call. PredictSpace fills dst (which must hold space.Size()
// estimates) in hw.Space.At order and returns true, or returns false —
// touching nothing — when the batched path is unavailable (compiled
// inference disabled, or a wrapper in the stack that must see every
// per-configuration call, like the LRU prediction cache).
//
// The contract is strict bit-exactness: dst[i] must equal
// PredictKernel(cs, space.At(i)) bit for bit, so callers may use either
// path interchangeably without perturbing replays. The optimizer's
// exhaustive sweep type-asserts for this interface and falls back to
// scalar evaluation when the assertion or the call fails.
type SpaceEvaluator interface {
	PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool
}

// spaceArena is the reusable batched-sweep workspace of a RandomForest:
// a row-major feature matrix with the per-configuration suffix columns
// precomputed for every configuration of one space, plus the two forest
// output vectors. Only the counter-prefix columns change between
// sweeps, so a steady-state sweep writes the prefix into each row,
// runs two batched forest evaluations, and allocates nothing.
//
// The mutex serializes sweeps (concurrent callers keep their own
// Optimizer and rarely contend); scalar PredictKernel never touches the
// arena, so batched and scalar paths stay independently concurrent.
type spaceArena struct {
	mu    sync.Mutex
	space hw.Space  // the space rows was built for
	rows  []float64 // space.Size() × numRFFeatures, config suffix pre-filled
	tOut  []float64 // time-forest outputs, one per configuration
	pOut  []float64 // power-forest outputs, one per configuration
}

// build lays out the arena for a space: one feature row per
// configuration in At order, with the six config-derived columns filled
// by the same patchConfig the scalar path uses (identical expressions,
// identical values).
func (a *spaceArena) build(space hw.Space) {
	n := space.Size()
	a.space = space
	a.rows = make([]float64, n*numRFFeatures)
	a.tOut = make([]float64, n)
	a.pOut = make([]float64, n)
	i := 0
	space.ForEach(func(c hw.Config) {
		patchConfig(a.rows[i*numRFFeatures:(i+1)*numRFFeatures], c)
		i++
	})
}

// PredictSpace implements SpaceEvaluator with one batched compiled-
// forest evaluation per forest: the kernel's counter prefix is computed
// once and patched into every row, the whole matrix runs through the
// compiled time and power forests tree-by-tree, and each estimate is
// assembled with exactly the scalar path's final operations
// (math.Exp(t)·insts, p). Returns false — leaving dst untouched — when
// compiled inference is disabled (SetCompiled(false)).
func (m *RandomForest) PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool {
	if m.treeWalk || m.timeCompiled == nil {
		return false
	}
	n := space.Size()
	if len(dst) != n {
		panic(fmt.Sprintf("predict: PredictSpace dst holds %d estimates, space has %d configurations", len(dst), n))
	}
	if n == 0 {
		return true
	}
	var prefix [counters.NumCounters]float64
	counterPrefix(prefix[:], cs)

	a := &m.arena
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rows == nil || !a.space.Equal(space) {
		a.build(space)
	}
	for r := 0; r < n; r++ {
		copy(a.rows[r*numRFFeatures:r*numRFFeatures+counters.NumCounters], prefix[:])
	}
	m.timeCompiled.PredictBatchInto(a.tOut, a.rows)
	m.powerCompiled.PredictBatchInto(a.pOut, a.rows)
	insts := instsOf(cs)
	for r := 0; r < n; r++ {
		dst[r] = Estimate{TimeMS: math.Exp(a.tOut[r]) * insts, GPUPowerW: a.pOut[r]}
	}
	return true
}
