package predict

import (
	"fmt"
	"math"
	"sync"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/rf"
	"mpcdvfs/internal/telemetry"
)

// SpaceEvaluator is the optional batched extension of Model: a model
// that can evaluate one kernel at every configuration of a space in a
// single call. PredictSpace fills dst (which must hold space.Size()
// estimates) in hw.Space.At order and returns true, or returns false —
// touching nothing — when the batched path is unavailable (compiled
// inference disabled, or a wrapper in the stack that must see every
// per-configuration call, like the LRU prediction cache).
//
// The contract is strict bit-exactness: dst[i] must equal
// PredictKernel(cs, space.At(i)) bit for bit, so callers may use either
// path interchangeably without perturbing replays. The optimizer's
// exhaustive sweep type-asserts for this interface and falls back to
// scalar evaluation when the assertion or the call fails.
type SpaceEvaluator interface {
	PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool
}

// TracedSpaceEvaluator is the trace-aware extension of SpaceEvaluator:
// the batched sweep additionally reports where its time goes — row
// featurization vs. forest evaluation — as child spans of the caller's
// active trace. The SpaceEvaluator contract is unchanged: tracing is
// read-only with respect to predictions, so PredictSpaceTraced fills
// dst with exactly the bytes PredictSpace would (tc may be nil or
// unsampled, in which case the span calls are no-ops).
type TracedSpaceEvaluator interface {
	SpaceEvaluator
	PredictSpaceTraced(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool
}

// spaceArena is one batched-sweep workspace: a row-major matrix of
// key-transformed features (rf.KeyOf order-preserving integer keys, the
// form the branchless compiled kernels compare in) with the
// per-configuration suffix columns pre-keyed for every configuration of
// one space, plus the two forest output vectors. Only the
// counter-prefix columns change between sweeps, so a steady-state sweep
// keys the eight counter features once, patches those keys into each
// row, runs two batched forest evaluations over the keyed matrix, and
// allocates nothing.
//
// Arenas are space-specific: every arena in a pool was built by
// newSpaceArena for the pool's space, and PredictSpace revalidates with
// hw.Space.Equal before trusting the precomputed suffix columns.
type spaceArena struct {
	space hw.Space  // the space keys was built for
	keys  []uint64  // space.Size() × numRFFeatures feature keys, config suffix pre-keyed
	tOut  []float64 // time-forest outputs, one per configuration
	pOut  []float64 // power-forest outputs, one per configuration
}

// newSpaceArena lays out an arena for a space: one key row per
// configuration in At order, with the six config-derived columns filled
// by the same patchConfig the scalar path uses (identical expressions,
// identical values) and then key-transformed. The transform is exact —
// keyed comparisons decide identically to the float comparisons the
// tree walk performs — so pre-keying changes no prediction bit.
func newSpaceArena(space hw.Space) *spaceArena {
	n := space.Size()
	a := &spaceArena{
		space: space,
		keys:  make([]uint64, n*numRFFeatures),
		tOut:  make([]float64, n),
		pOut:  make([]float64, n),
	}
	var row [numRFFeatures]float64
	i := 0
	space.ForEach(func(c hw.Config) {
		patchConfig(row[:], c)
		rf.KeysInto(a.keys[i*numRFFeatures+counters.NumCounters:(i+1)*numRFFeatures],
			row[counters.NumCounters:])
		i++
	})
	return a
}

// arenaPool hands out spaceArenas for one space. It replaces the old
// single mutex-guarded arena: concurrent PredictSpace calls each take
// their own arena from the sync.Pool (building one only when the pool
// is empty) and return it afterwards, so batched sweeps from many
// sessions scale with cores instead of serializing. The pool is
// space-keyed as a whole — a model asked to sweep a different space
// installs a fresh pool (see RandomForest.arenaFor); mixed-space
// workloads therefore thrash the pool but never corrupt an arena.
type arenaPool struct {
	space hw.Space
	pool  sync.Pool // of *spaceArena, all built for space
}

// get returns an arena for p.space, reporting whether it was pooled
// (true) or freshly built (false).
func (p *arenaPool) get() (*spaceArena, bool) {
	if a, ok := p.pool.Get().(*spaceArena); ok {
		return a, true
	}
	return newSpaceArena(p.space), false
}

// arenaInstr mirrors pool traffic into a metrics registry.
type arenaInstr struct {
	hit, miss *metrics.Counter
}

// arenaFor returns the model's arena pool for space, installing a new
// one when none exists or the cached pool was built for a different
// space. The install races benignly: a loser keeps using the pool it
// created (correct, just unshared for that one sweep).
func (m *RandomForest) arenaFor(space hw.Space) *arenaPool {
	ap := m.arenas.Load()
	if ap != nil && ap.space.Equal(space) {
		return ap
	}
	fresh := &arenaPool{space: space}
	m.arenas.CompareAndSwap(ap, fresh)
	if cur := m.arenas.Load(); cur != nil && cur.space.Equal(space) {
		return cur
	}
	return fresh
}

// ArenaPoolStats returns the cumulative batched-sweep arena pool
// traffic: sweeps served by a pooled arena (hits) and sweeps that had
// to build one (misses, including every first sweep after a space
// change). The steady-state hit rate of a concurrent server is the
// fraction of sweeps that allocated nothing.
func (m *RandomForest) ArenaPoolStats() (hits, misses uint64) {
	return m.arenaHits.Load(), m.arenaMisses.Load()
}

// InstrumentArenaPool mirrors the arena pool counters into reg as
// mpcdvfs_predict_arena_events_total{event="hit"|"miss"} from now on
// (earlier traffic is reported once as a baseline on the first event).
func (m *RandomForest) InstrumentArenaPool(reg *metrics.Registry) {
	events := reg.Counter("mpcdvfs_predict_arena_events_total",
		"Batched-sweep arena pool requests by outcome (hit = reused a pooled arena, miss = built one).",
		"event")
	m.arenaInstr.Store(&arenaInstr{hit: events.With("hit"), miss: events.With("miss")})
}

// countArena records one pool outcome in the stats and their optional
// metrics mirror.
func (m *RandomForest) countArena(hit bool) {
	if hit {
		m.arenaHits.Add(1)
	} else {
		m.arenaMisses.Add(1)
	}
	if in := m.arenaInstr.Load(); in != nil {
		if hit {
			in.hit.Inc()
		} else {
			in.miss.Inc()
		}
	}
}

// PredictSpace implements SpaceEvaluator with one batched compiled-
// forest evaluation per forest: the kernel's counter prefix is computed
// once and patched into every row, the whole matrix runs through the
// compiled time and power forests tree-by-tree, and each estimate is
// assembled with exactly the scalar path's final operations
// (math.Exp(t)·insts, p). Returns false — leaving dst untouched — when
// compiled inference is disabled (SetCompiled(false)).
//
// PredictSpace is safe for concurrent use: each call borrows a private
// arena from the model's pool, so concurrent sweeps (one per serving
// session) proceed without serializing on any lock. Per-sweep results
// are bit-identical regardless of which arena serves them — arenas
// differ only in identity, never in contents.
//
//mpclint:hotpath warm sweep pinned at 0 allocs/op by TestPredictSpaceZeroAllocSteadyState
func (m *RandomForest) PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool {
	return m.predictSpace(cs, space, dst, nil)
}

// PredictSpaceTraced implements TracedSpaceEvaluator: the same sweep
// with featurize and forest-eval child spans attached to tc.
//
//mpclint:hotpath warm sweep pinned at 0 allocs/op by TestPredictSpaceZeroAllocSteadyState; spans add nothing when unsampled
func (m *RandomForest) PredictSpaceTraced(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool {
	return m.predictSpace(cs, space, dst, tc)
}

// predictSpace is the shared batched sweep: the traced and untraced
// entry points differ only in whether span bookkeeping runs — every
// value written to dst is computed identically.
//
//mpclint:hotpath warm sweep pinned at 0 allocs/op by TestPredictSpaceZeroAllocSteadyState; arena-miss slow paths carry reasoned suppressions
func (m *RandomForest) predictSpace(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool {
	if m.treeWalk || m.timeCompiled == nil {
		return false
	}
	n := space.Size()
	if len(dst) != n {
		panic(fmt.Sprintf("predict: PredictSpace dst holds %d estimates, space has %d configurations", len(dst), n))
	}
	if n == 0 {
		return true
	}
	sp := tc.Start(telemetry.SpanFeaturize)
	var prefix [counters.NumCounters]float64
	counterPrefix(prefix[:], cs)
	var kprefix [counters.NumCounters]uint64
	rf.KeysInto(kprefix[:], prefix[:])

	//mpclint:ignore hotpath-alloc pool install is a once-per-space slow path; warm sweeps load the existing pool, pinned by TestPredictSpaceZeroAllocSteadyState
	ap := m.arenaFor(space)
	//mpclint:ignore hotpath-alloc arena build is the pool-miss slow path; warm sweeps reuse a pooled arena, pinned by TestPredictSpaceZeroAllocSteadyState
	a, pooled := ap.get()
	if !a.space.Equal(space) {
		// Defensive: never trust a foreign arena's suffix columns.
		//mpclint:ignore hotpath-alloc defensive rebuild only runs if a foreign arena leaks into the pool, which the space-keyed install forbids
		a, pooled = newSpaceArena(space), false
	}
	m.countArena(pooled)
	for r := 0; r < n; r++ {
		copy(a.keys[r*numRFFeatures:r*numRFFeatures+counters.NumCounters], kprefix[:])
	}
	sp.End()
	sp = tc.Start(telemetry.SpanForestEval)
	m.timeCompiled.PredictBatchKeysInto(a.tOut, a.keys)
	m.powerCompiled.PredictBatchKeysInto(a.pOut, a.keys)
	insts := instsOf(cs)
	for r := 0; r < n; r++ {
		dst[r] = Estimate{TimeMS: math.Exp(a.tOut[r]) * insts, GPUPowerW: a.pOut[r]}
	}
	sp.End()
	ap.pool.Put(a)
	return true
}

// Compile-time interface checks for the batched path.
var (
	_ SpaceEvaluator       = (*RandomForest)(nil)
	_ SpaceEvaluator       = (*Calibrated)(nil)
	_ TracedSpaceEvaluator = (*RandomForest)(nil)
	_ TracedSpaceEvaluator = (*Calibrated)(nil)
)
