package predict

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

func benchmarkKernels() []kernel.Kernel {
	return []kernel.Kernel{
		kernel.NewComputeBound("cb", 1),
		kernel.NewMemoryBound("mb", 1),
		kernel.NewPeak("pk", 1),
		kernel.NewUnscalable("us", 1),
		kernel.NewBalanced("ba", 1),
		kernel.NewComputeBound("cb2", 2.5),
		kernel.NewMemoryBound("mb2", 0.5),
	}
}

func TestCPUPowerModelTracksGroundTruth(t *testing.T) {
	// The normalized V²f model is anchored at P5 and approximates the
	// ground truth elsewhere.
	if got, want := CPUPowerW(hw.P5), kernel.CPUPowerW(hw.P5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("anchor state: got %v, want %v", got, want)
	}
	for p := hw.P1; p <= hw.P7; p++ {
		est, truth := CPUPowerW(p), kernel.CPUPowerW(p)
		if d := math.Abs(est-truth) / truth; d > 0.25 {
			t.Errorf("%s: V²f estimate %v vs truth %v (%.0f%% off)", p, est, truth, 100*d)
		}
	}
	// Monotone in P-state.
	for p := hw.P2; p <= hw.P7; p++ {
		if CPUPowerW(p) >= CPUPowerW(p-1) {
			t.Errorf("CPU power not decreasing at %s", p)
		}
	}
}

func TestOracleIsPerfect(t *testing.T) {
	o := NewOracle()
	ks := benchmarkKernels()
	for _, k := range ks {
		o.Register(k)
	}
	if o.Len() != len(ks) {
		t.Fatalf("oracle has %d kernels, want %d", o.Len(), len(ks))
	}
	tm, pm := MAPE(o, ks, hw.DefaultSpace())
	if tm != 0 || pm != 0 {
		t.Errorf("oracle MAPE = %v/%v, want 0/0", tm, pm)
	}
}

func TestOracleNearestFallback(t *testing.T) {
	o := NewOracle()
	k := kernel.NewComputeBound("cb", 1)
	o.Register(k)
	cs := k.Counters()
	cs[0] *= 1.001 // slightly perturbed counters still resolve
	e := o.PredictKernel(cs, hw.FailSafe())
	m := k.Evaluate(hw.FailSafe())
	if e.TimeMS != m.TimeMS {
		t.Errorf("nearest fallback time = %v, want %v", e.TimeMS, m.TimeMS)
	}
}

func TestEmptyOraclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty oracle did not panic")
		}
	}()
	NewOracle().PredictKernel(kernel.NewBalanced("b", 1).Counters(), hw.FailSafe())
}

func TestEnergyMJIncludesCPU(t *testing.T) {
	o := NewOracle()
	k := kernel.NewBalanced("b", 1)
	o.Register(k)
	cs := k.Counters()
	cLow := hw.Config{CPU: hw.P7, NB: hw.NB0, GPU: hw.DPM4, CUs: 8}
	cHigh := hw.Config{CPU: hw.P1, NB: hw.NB0, GPU: hw.DPM4, CUs: 8}
	eLow := EnergyMJ(o.PredictKernel(cs, cLow), cLow)
	eHigh := EnergyMJ(o.PredictKernel(cs, cHigh), cHigh)
	if eLow >= eHigh {
		t.Errorf("P7 energy %v not below P1 energy %v (CPU term missing?)", eLow, eHigh)
	}
}

func TestWithErrorDeterministic(t *testing.T) {
	o := NewOracle()
	k := kernel.NewBalanced("b", 1)
	o.Register(k)
	w := NewWithError(o, 0.15, 0.10, 5)
	cs := k.Counters()
	c := hw.FailSafe()
	e1 := w.PredictKernel(cs, c)
	e2 := w.PredictKernel(cs, c)
	if e1 != e2 {
		t.Error("WithError not deterministic for a fixed (counters, config)")
	}
	// Different configs get different errors.
	e3 := w.PredictKernel(cs, hw.MaxPerf())
	truth1 := o.PredictKernel(cs, c)
	truth3 := o.PredictKernel(cs, hw.MaxPerf())
	r1 := e1.TimeMS / truth1.TimeMS
	r3 := e3.TimeMS / truth3.TimeMS
	if r1 == r3 {
		t.Error("identical error ratio across configs (suspicious)")
	}
}

func TestWithErrorMeanMagnitude(t *testing.T) {
	o := NewOracle()
	rng := rand.New(rand.NewSource(21))
	var ks []kernel.Kernel
	for i := 0; i < 40; i++ {
		k := kernel.Random("k", rng)
		o.Register(k)
		ks = append(ks, k)
	}
	w := NewWithError(o, 0.15, 0.10, 1)
	tm, pm := MAPE(w, ks, hw.DefaultSpace())
	if tm < 0.10 || tm > 0.20 {
		t.Errorf("time MAPE = %v, want ~0.15", tm)
	}
	if pm < 0.06 || pm > 0.14 {
		t.Errorf("power MAPE = %v, want ~0.10", pm)
	}
}

func TestWithErrorZeroIsExact(t *testing.T) {
	o := NewOracle()
	k := kernel.NewBalanced("b", 1)
	o.Register(k)
	w := NewWithError(o, 0, 0, 1)
	cs := k.Counters()
	if got, want := w.PredictKernel(cs, hw.FailSafe()), o.PredictKernel(cs, hw.FailSafe()); got != want {
		t.Errorf("Err_0%% model differs from oracle: %v vs %v", got, want)
	}
}

func TestWithErrorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative error mean did not panic")
		}
	}()
	NewWithError(NewOracle(), -0.1, 0, 1)
}

var (
	rfOnce  sync.Once
	rfModel *RandomForest
	rfErr   error
)

func trainedRF(t *testing.T) *RandomForest {
	t.Helper()
	rfOnce.Do(func() {
		opt := DefaultTrainOptions(1234)
		opt.NumKernels = 50 // keep unit tests fast
		rfModel, rfErr = TrainRandomForest(opt)
	})
	if rfErr != nil {
		t.Fatal(rfErr)
	}
	return rfModel
}

func TestRFTrainValidation(t *testing.T) {
	if _, err := TrainRandomForest(TrainOptions{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := TrainRandomForest(TrainOptions{NumKernels: 1}); err == nil {
		t.Error("empty space accepted")
	}
}

func TestRFAccuracyInPaperRange(t *testing.T) {
	if testing.Short() {
		t.Skip("RF training is slow")
	}
	m := trainedRF(t)
	tm, pm := MAPE(m, benchmarkKernels(), hw.DefaultSpace())
	t.Logf("RF MAPE: time %.1f%%, power %.1f%% (paper: 25%% / 12%%)", 100*tm, 100*pm)
	// The paper reports 25% / 12%. Accept a generous band: the predictor
	// must be imperfect but usable.
	if tm > 0.45 {
		t.Errorf("time MAPE %.1f%% too high to be usable", 100*tm)
	}
	if pm > 0.30 {
		t.Errorf("power MAPE %.1f%% too high to be usable", 100*pm)
	}
	if tm < 0.02 && pm < 0.02 {
		t.Errorf("RF suspiciously perfect (%.2f%%/%.2f%%); evaluation would be vacuous", 100*tm, 100*pm)
	}
}

func TestRFPreservesScalingTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("RF training is slow")
	}
	m := trainedRF(t)
	// The RF must rank configurations usefully even if absolute values
	// are off: memory-bound kernels should look much slower at NB3 than
	// NB0, compute-bound much slower at DPM0/2CU than DPM4/8CU.
	mb := kernel.NewMemoryBound("mb", 1).Counters()
	slow := m.PredictKernel(mb, hw.Config{CPU: hw.P5, NB: hw.NB3, GPU: hw.DPM4, CUs: 8})
	fast := m.PredictKernel(mb, hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM4, CUs: 8})
	if slow.TimeMS <= fast.TimeMS {
		t.Errorf("RF misses NB sensitivity of memory-bound kernel: NB3 %.3f <= NB0 %.3f", slow.TimeMS, fast.TimeMS)
	}
	cb := kernel.NewComputeBound("cb", 1).Counters()
	slow = m.PredictKernel(cb, hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM0, CUs: 2})
	fast = m.PredictKernel(cb, hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM4, CUs: 8})
	if slow.TimeMS <= fast.TimeMS {
		t.Errorf("RF misses GPU sensitivity of compute-bound kernel: %.3f <= %.3f", slow.TimeMS, fast.TimeMS)
	}
}

func TestRFRoundTripThroughForests(t *testing.T) {
	if testing.Short() {
		t.Skip("RF training is slow")
	}
	m := trainedRF(t)
	tf, pf := m.Forests()
	m2, err := NewFromForests(tf, pf)
	if err != nil {
		t.Fatal(err)
	}
	cs := kernel.NewBalanced("b", 1).Counters()
	if got, want := m2.PredictKernel(cs, hw.FailSafe()), m.PredictKernel(cs, hw.FailSafe()); got != want {
		t.Errorf("reassembled model differs: %v vs %v", got, want)
	}
	if _, err := NewFromForests(nil, pf); err == nil {
		t.Error("nil forest accepted")
	}
}

func TestModelNames(t *testing.T) {
	o := NewOracle()
	if o.Name() != "oracle" {
		t.Errorf("oracle name = %q", o.Name())
	}
	w := NewWithError(o, 0.15, 0.10, 1)
	if w.Name() != "err_15%_10%" {
		t.Errorf("error model name = %q", w.Name())
	}
	if (&RandomForest{}).Name() != "random-forest" {
		t.Errorf("rf name = %q", (&RandomForest{}).Name())
	}
}

func TestModelPersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("RF training is slow")
	}
	m := trainedRF(t)
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cs := kernel.NewBalanced("b", 1).Counters()
	for _, cfg := range []hw.Config{hw.FailSafe(), hw.MaxPerf()} {
		if got, want := loaded.PredictKernel(cs, cfg), m.PredictKernel(cs, cfg); got != want {
			t.Errorf("loaded model differs at %v: %v vs %v", cfg, got, want)
		}
	}
}

func TestSaveModelRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, nil); err == nil {
		t.Error("nil model accepted")
	}
	if err := SaveModel(&buf, &RandomForest{}); err == nil {
		t.Error("empty model accepted")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}
