package predict

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/rf"
)

// numConfigFeatures is the count of configuration-derived features
// appended to the eight counters.
const numConfigFeatures = 6

// numRFFeatures is the full Random Forest feature dimensionality:
// the eight Table III counters followed by the configuration features.
const numRFFeatures = counters.NumCounters + numConfigFeatures

// counterPrefix writes the log-compressed Table III counters into the
// first counters.NumCounters slots of x. Within one configuration sweep
// only the config suffix changes, so the prefix is computed once per
// kernel and patched — never re-derived per configuration.
func counterPrefix(x []float64, cs counters.Set) {
	for i, v := range cs {
		x[i] = math.Log1p(math.Max(0, v))
	}
}

// patchConfig writes the physical configuration features the
// ground-truth behaviour actually depends on (GPU frequency, shared rail
// voltage, CU count, NB frequency, memory bandwidth, CPU power estimate
// for the thermal coupling) into the suffix slots of x, in place.
func patchConfig(x []float64, c hw.Config) {
	x[counters.NumCounters+0] = c.GPU.FreqGHz()
	x[counters.NumCounters+1] = c.RailVoltage()
	x[counters.NumCounters+2] = float64(c.CUs)
	x[counters.NumCounters+3] = c.NB.FreqGHz()
	x[counters.NumCounters+4] = c.NB.MemBWGBs()
	x[counters.NumCounters+5] = CPUPowerW(c.CPU)
}

// featurizeInto assembles the full feature vector into the caller-owned
// x (len numRFFeatures): counter prefix plus config suffix. The hot
// paths pass a stack buffer here so a prediction allocates nothing.
//
//mpclint:hotpath pinned at 0 allocs/op by TestFeaturizeZeroAlloc
func featurizeInto(x []float64, cs counters.Set, c hw.Config) {
	counterPrefix(x, cs)
	patchConfig(x, c)
}

// featurize is the allocating convenience used when rows are being
// accumulated anyway (training-data generation).
func featurize(cs counters.Set, c hw.Config) []float64 {
	x := make([]float64, numRFFeatures)
	featurizeInto(x, cs, c)
	return x
}

// RandomForest is the paper's deployed predictor: two forests trained
// offline on a synthetic kernel population (§IV-A3). The time forest
// regresses log inverse-throughput (time per instruction) rather than raw
// time: the kernel's work volume is already encoded in its counters
// (VALUInsts × GlobalWorkSize), so normalizing it out of the target
// leaves the forest the learnable part — configuration scaling and
// kernel shape — and removes two orders of magnitude of target spread.
type RandomForest struct {
	timeForest  *rf.Forest // log(ms per instruction)
	powerForest *rf.Forest // GPU+NB watts

	// Compiled fast-path state, rebuilt from the forests at train/load
	// time — derived, never persisted (SaveModel writes only the
	// canonical tree form). Compiled inference is bit-identical to
	// tree walking, so which path runs is unobservable in any output;
	// treeWalk forces the reference path for A/B checks and the
	// -no-compiled-rf escape hatch.
	timeCompiled  *rf.CompiledForest
	powerCompiled *rf.CompiledForest
	treeWalk      bool

	// arenas is the pool of reusable batched-sweep workspaces behind
	// PredictSpace: concurrent sweeps each borrow a private arena, so
	// batched evaluation from many sessions never serializes on a lock.
	// Rebuilt (by arenaFor) whenever the swept space changes.
	arenas atomic.Pointer[arenaPool]
	// Cumulative arena pool traffic, plus the optional metrics mirror
	// installed by InstrumentArenaPool.
	arenaHits, arenaMisses atomic.Uint64
	arenaInstr             atomic.Pointer[arenaInstr]
}

// instsOf recovers the instruction count encoded in a counter set.
func instsOf(cs counters.Set) float64 {
	insts := cs[counters.VALUInsts] * cs[counters.GlobalWorkSize]
	if insts <= 0 {
		return 1
	}
	return insts
}

// Name implements Model.
func (m *RandomForest) Name() string { return "random-forest" }

// PredictKernel implements Model. The feature vector lives in a stack
// buffer and the default path walks the compiled forests, so one
// prediction allocates nothing in steady state (pinned by
// TestPredictKernelZeroAlloc).
//
//mpclint:hotpath pinned at 0 allocs/op by TestPredictKernelZeroAlloc
func (m *RandomForest) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	var buf [numRFFeatures]float64
	featurizeInto(buf[:], cs, c)
	var t, p float64
	if m.treeWalk || m.timeCompiled == nil {
		t = m.timeForest.Predict(buf[:])
		p = m.powerForest.Predict(buf[:])
	} else {
		t = m.timeCompiled.Predict(buf[:])
		p = m.powerCompiled.Predict(buf[:])
	}
	return Estimate{
		TimeMS:    math.Exp(t) * instsOf(cs),
		GPUPowerW: p,
	}
}

// SetCompiled selects between the compiled fast path (the default) and
// the reference tree-walking path. Both produce bit-identical
// predictions; the switch exists for paired benchmarking and as the
// commands' -no-compiled-rf escape hatch. Call before handing the model
// to a policy — the flag is not synchronized against in-flight
// predictions.
func (m *RandomForest) SetCompiled(on bool) { m.treeWalk = !on }

// CompiledForests exposes the derived compiled forests (nil only if
// compilation was impossible, which no trainable configuration
// triggers).
func (m *RandomForest) CompiledForests() (timeForest, powerForest *rf.CompiledForest) {
	return m.timeCompiled, m.powerCompiled
}

// TrainOptions controls offline Random Forest training.
type TrainOptions struct {
	// NumKernels is the size of the synthetic training population drawn
	// from kernel.Random. The population overlaps, but does not equal,
	// the evaluation benchmarks — the model must generalize, which is
	// where its ~25%/12% MAPE comes from.
	NumKernels int
	// Space is the configuration space to sample; every kernel is
	// measured at every configuration, as on the paper's testbed.
	Space hw.Space
	// NoiseFrac adds multiplicative Gaussian measurement noise to the
	// training targets (power-controller samples are noisy at 1 ms
	// granularity).
	NoiseFrac float64
	// Seed makes training deterministic.
	Seed int64
	// Workers is the number of goroutines growing forest trees
	// concurrently (<= 0 uses the process default, 1 is serial). The
	// trained model is bit-identical for every value; see package rf.
	Workers int
	// Forest overrides the forest hyperparameters; zero value uses
	// rf.DefaultConfig. A zero Forest.Workers inherits Workers above.
	Forest rf.Config
}

// DefaultTrainOptions returns the options used throughout the
// evaluation; they land the model at the paper's reported accuracy
// (≈25% time MAPE, ≈12% power MAPE on the benchmark suite).
func DefaultTrainOptions(seed int64) TrainOptions {
	return TrainOptions{
		NumKernels: 150,
		Space:      hw.DefaultSpace(),
		NoiseFrac:  0.08,
		Seed:       seed,
	}
}

// buildTrainingData deterministically regenerates the synthetic
// population and its measurements for the given options.
func buildTrainingData(opt TrainOptions) (X [][]float64, yTime, yPower []float64, err error) {
	if opt.NumKernels <= 0 {
		return nil, nil, nil, fmt.Errorf("predict: NumKernels = %d, must be positive", opt.NumKernels)
	}
	if opt.Space.Size() == 0 {
		return nil, nil, nil, fmt.Errorf("predict: empty configuration space")
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	n := opt.NumKernels * opt.Space.Size()
	X = make([][]float64, 0, n)
	yTime = make([]float64, 0, n)
	yPower = make([]float64, 0, n)
	for i := 0; i < opt.NumKernels; i++ {
		k := kernel.Random(fmt.Sprintf("train%03d", i), rng)
		cs := k.Counters()
		opt.Space.ForEach(func(c hw.Config) {
			m := k.Evaluate(c)
			noiseT := 1 + opt.NoiseFrac*rng.NormFloat64()
			noiseP := 1 + opt.NoiseFrac*rng.NormFloat64()
			X = append(X, featurize(cs, c))
			yTime = append(yTime, math.Log(m.TimeMS*math.Max(0.2, noiseT)/instsOf(cs)))
			yPower = append(yPower, (m.GPUW+m.NBW)*math.Max(0.2, noiseP))
		})
	}
	return X, yTime, yPower, nil
}

// TrainRandomForest generates the synthetic population, measures it on
// the ground-truth model at every configuration in the space, and trains
// the two forests.
func TrainRandomForest(opt TrainOptions) (*RandomForest, error) {
	X, yTime, yPower, err := buildTrainingData(opt)
	if err != nil {
		return nil, err
	}

	fcfg := opt.Forest
	if fcfg.NumTrees == 0 {
		fcfg = rf.DefaultConfig(opt.Seed + 1)
		fcfg.MaxDepth = 14
		// Time and power depend on interactions between counters and
		// config features; sqrt(d) feature sampling starves the trees of
		// the config features, so consider half the features per split.
		fcfg.MaxFeatures = (counters.NumCounters + numConfigFeatures) / 2
	}
	if fcfg.Workers == 0 {
		fcfg.Workers = opt.Workers
	}
	tf, err := rf.Train(X, yTime, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: time forest: %w", err)
	}
	fcfg.Seed++
	pf, err := rf.Train(X, yPower, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: power forest: %w", err)
	}
	return NewFromForests(tf, pf)
}

// Forests exposes the underlying forests (for serialization and
// inspection).
func (m *RandomForest) Forests() (timeForest, powerForest *rf.Forest) {
	return m.timeForest, m.powerForest
}

// FeatureNames returns the names of the model's input features in
// vector order: the eight Table III counters followed by the
// configuration features.
func FeatureNames() []string {
	names := make([]string, 0, counters.NumCounters+numConfigFeatures)
	names = append(names, counters.Names[:]...)
	return append(names, "gpuFreqGHz", "railVoltage", "numCUs", "nbFreqGHz", "memBWGBs", "cpuPowerW")
}

// FeatureImportance regenerates the training data for opt (which must be
// the options the model was trained with) and returns the normalized
// mean-decrease-in-impurity importance of each feature for the time and
// power forests.
func (m *RandomForest) FeatureImportance(opt TrainOptions) (timeImp, powerImp []float64, err error) {
	X, yTime, yPower, err := buildTrainingData(opt)
	if err != nil {
		return nil, nil, err
	}
	timeImp, err = m.timeForest.FeatureImportance(X, yTime)
	if err != nil {
		return nil, nil, err
	}
	powerImp, err = m.powerForest.FeatureImportance(X, yPower)
	if err != nil {
		return nil, nil, err
	}
	return timeImp, powerImp, nil
}

// NewFromForests reassembles a RandomForest from previously trained or
// deserialized forests, compiling both into the flat-node fast path
// (TrainRandomForest and LoadModel both land here, so every model
// carries its compiled form from birth).
func NewFromForests(timeForest, powerForest *rf.Forest) (*RandomForest, error) {
	if timeForest == nil || powerForest == nil {
		return nil, fmt.Errorf("predict: nil forest")
	}
	if timeForest.NumFeatures() != numRFFeatures || powerForest.NumFeatures() != numRFFeatures {
		return nil, fmt.Errorf("predict: forests expect %d/%d features, want %d",
			timeForest.NumFeatures(), powerForest.NumFeatures(), numRFFeatures)
	}
	tc, err := timeForest.Compile()
	if err != nil {
		return nil, fmt.Errorf("predict: compile time forest: %w", err)
	}
	pc, err := powerForest.Compile()
	if err != nil {
		return nil, fmt.Errorf("predict: compile power forest: %w", err)
	}
	return &RandomForest{
		timeForest: timeForest, powerForest: powerForest,
		timeCompiled: tc, powerCompiled: pc,
	}, nil
}
