package predict

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/rf"
)

// numConfigFeatures is the count of configuration-derived features
// appended to the eight counters.
const numConfigFeatures = 6

// featurize builds the Random Forest feature vector: log-compressed
// Table III counters plus the physical configuration features the
// ground-truth behaviour actually depends on (GPU frequency, shared rail
// voltage, CU count, NB frequency, memory bandwidth, CPU power estimate
// for the thermal coupling).
func featurize(cs counters.Set, c hw.Config) []float64 {
	x := make([]float64, 0, counters.NumCounters+numConfigFeatures)
	for _, v := range cs {
		x = append(x, math.Log1p(math.Max(0, v)))
	}
	return append(x,
		c.GPU.FreqGHz(),
		c.RailVoltage(),
		float64(c.CUs),
		c.NB.FreqGHz(),
		c.NB.MemBWGBs(),
		CPUPowerW(c.CPU),
	)
}

// RandomForest is the paper's deployed predictor: two forests trained
// offline on a synthetic kernel population (§IV-A3). The time forest
// regresses log inverse-throughput (time per instruction) rather than raw
// time: the kernel's work volume is already encoded in its counters
// (VALUInsts × GlobalWorkSize), so normalizing it out of the target
// leaves the forest the learnable part — configuration scaling and
// kernel shape — and removes two orders of magnitude of target spread.
type RandomForest struct {
	timeForest  *rf.Forest // log(ms per instruction)
	powerForest *rf.Forest // GPU+NB watts
}

// instsOf recovers the instruction count encoded in a counter set.
func instsOf(cs counters.Set) float64 {
	insts := cs[counters.VALUInsts] * cs[counters.GlobalWorkSize]
	if insts <= 0 {
		return 1
	}
	return insts
}

// Name implements Model.
func (m *RandomForest) Name() string { return "random-forest" }

// PredictKernel implements Model.
func (m *RandomForest) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	x := featurize(cs, c)
	return Estimate{
		TimeMS:    math.Exp(m.timeForest.Predict(x)) * instsOf(cs),
		GPUPowerW: m.powerForest.Predict(x),
	}
}

// TrainOptions controls offline Random Forest training.
type TrainOptions struct {
	// NumKernels is the size of the synthetic training population drawn
	// from kernel.Random. The population overlaps, but does not equal,
	// the evaluation benchmarks — the model must generalize, which is
	// where its ~25%/12% MAPE comes from.
	NumKernels int
	// Space is the configuration space to sample; every kernel is
	// measured at every configuration, as on the paper's testbed.
	Space hw.Space
	// NoiseFrac adds multiplicative Gaussian measurement noise to the
	// training targets (power-controller samples are noisy at 1 ms
	// granularity).
	NoiseFrac float64
	// Seed makes training deterministic.
	Seed int64
	// Workers is the number of goroutines growing forest trees
	// concurrently (<= 0 uses the process default, 1 is serial). The
	// trained model is bit-identical for every value; see package rf.
	Workers int
	// Forest overrides the forest hyperparameters; zero value uses
	// rf.DefaultConfig. A zero Forest.Workers inherits Workers above.
	Forest rf.Config
}

// DefaultTrainOptions returns the options used throughout the
// evaluation; they land the model at the paper's reported accuracy
// (≈25% time MAPE, ≈12% power MAPE on the benchmark suite).
func DefaultTrainOptions(seed int64) TrainOptions {
	return TrainOptions{
		NumKernels: 150,
		Space:      hw.DefaultSpace(),
		NoiseFrac:  0.08,
		Seed:       seed,
	}
}

// buildTrainingData deterministically regenerates the synthetic
// population and its measurements for the given options.
func buildTrainingData(opt TrainOptions) (X [][]float64, yTime, yPower []float64, err error) {
	if opt.NumKernels <= 0 {
		return nil, nil, nil, fmt.Errorf("predict: NumKernels = %d, must be positive", opt.NumKernels)
	}
	if opt.Space.Size() == 0 {
		return nil, nil, nil, fmt.Errorf("predict: empty configuration space")
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	n := opt.NumKernels * opt.Space.Size()
	X = make([][]float64, 0, n)
	yTime = make([]float64, 0, n)
	yPower = make([]float64, 0, n)
	for i := 0; i < opt.NumKernels; i++ {
		k := kernel.Random(fmt.Sprintf("train%03d", i), rng)
		cs := k.Counters()
		opt.Space.ForEach(func(c hw.Config) {
			m := k.Evaluate(c)
			noiseT := 1 + opt.NoiseFrac*rng.NormFloat64()
			noiseP := 1 + opt.NoiseFrac*rng.NormFloat64()
			X = append(X, featurize(cs, c))
			yTime = append(yTime, math.Log(m.TimeMS*math.Max(0.2, noiseT)/instsOf(cs)))
			yPower = append(yPower, (m.GPUW+m.NBW)*math.Max(0.2, noiseP))
		})
	}
	return X, yTime, yPower, nil
}

// TrainRandomForest generates the synthetic population, measures it on
// the ground-truth model at every configuration in the space, and trains
// the two forests.
func TrainRandomForest(opt TrainOptions) (*RandomForest, error) {
	X, yTime, yPower, err := buildTrainingData(opt)
	if err != nil {
		return nil, err
	}

	fcfg := opt.Forest
	if fcfg.NumTrees == 0 {
		fcfg = rf.DefaultConfig(opt.Seed + 1)
		fcfg.MaxDepth = 14
		// Time and power depend on interactions between counters and
		// config features; sqrt(d) feature sampling starves the trees of
		// the config features, so consider half the features per split.
		fcfg.MaxFeatures = (counters.NumCounters + numConfigFeatures) / 2
	}
	if fcfg.Workers == 0 {
		fcfg.Workers = opt.Workers
	}
	tf, err := rf.Train(X, yTime, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: time forest: %w", err)
	}
	fcfg.Seed++
	pf, err := rf.Train(X, yPower, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: power forest: %w", err)
	}
	return &RandomForest{timeForest: tf, powerForest: pf}, nil
}

// Forests exposes the underlying forests (for serialization and
// inspection).
func (m *RandomForest) Forests() (timeForest, powerForest *rf.Forest) {
	return m.timeForest, m.powerForest
}

// FeatureNames returns the names of the model's input features in
// vector order: the eight Table III counters followed by the
// configuration features.
func FeatureNames() []string {
	names := make([]string, 0, counters.NumCounters+numConfigFeatures)
	names = append(names, counters.Names[:]...)
	return append(names, "gpuFreqGHz", "railVoltage", "numCUs", "nbFreqGHz", "memBWGBs", "cpuPowerW")
}

// FeatureImportance regenerates the training data for opt (which must be
// the options the model was trained with) and returns the normalized
// mean-decrease-in-impurity importance of each feature for the time and
// power forests.
func (m *RandomForest) FeatureImportance(opt TrainOptions) (timeImp, powerImp []float64, err error) {
	X, yTime, yPower, err := buildTrainingData(opt)
	if err != nil {
		return nil, nil, err
	}
	timeImp, err = m.timeForest.FeatureImportance(X, yTime)
	if err != nil {
		return nil, nil, err
	}
	powerImp, err = m.powerForest.FeatureImportance(X, yPower)
	if err != nil {
		return nil, nil, err
	}
	return timeImp, powerImp, nil
}

// NewFromForests reassembles a RandomForest from previously trained or
// deserialized forests.
func NewFromForests(timeForest, powerForest *rf.Forest) (*RandomForest, error) {
	want := counters.NumCounters + numConfigFeatures
	if timeForest == nil || powerForest == nil {
		return nil, fmt.Errorf("predict: nil forest")
	}
	if timeForest.NumFeatures() != want || powerForest.NumFeatures() != want {
		return nil, fmt.Errorf("predict: forests expect %d/%d features, want %d",
			timeForest.NumFeatures(), powerForest.NumFeatures(), want)
	}
	return &RandomForest{timeForest: timeForest, powerForest: powerForest}, nil
}
