package predict

import (
	"fmt"
	"math"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/rf"
)

// Sample is one served ground-truth tuple — the unit of online
// training: the counters a kernel reported, the configuration it ran
// at, and what was actually measured there. It is exactly the
// information /v1/observe carries, so the continuous trainer's
// reservoir is a bounded memory of live traffic, not a separate
// measurement campaign. The paper's "adaptive" in adaptive MPC is this
// loop: the deployed model keeps being refit to the workload it serves
// (DSO and Ilager et al. motivate the same static+runtime fusion in
// PAPERS.md).
type Sample struct {
	Counters  counters.Set `json:"counters"`
	Config    hw.Config    `json:"config"`
	TimeMS    float64      `json:"time_ms"`
	GPUPowerW float64      `json:"gpu_power_w"`
}

// Valid reports whether the sample can participate in training: both
// measurements positive and finite (the time target is a log of a
// ratio, the relative-error evaluation divides by the measurement).
func (s Sample) Valid() bool {
	if s.TimeMS <= 0 || s.GPUPowerW <= 0 ||
		math.IsInf(s.TimeMS, 0) || math.IsInf(s.GPUPowerW, 0) ||
		math.IsNaN(s.TimeMS) || math.IsNaN(s.GPUPowerW) {
		return false
	}
	for _, v := range s.Counters {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// sampleMatrix featurizes samples into the forests' training matrix and
// target vectors, applying the exact transforms offline training uses
// (log-compressed counters + config features; log time-per-instruction
// and raw power targets), so an online-trained model is the same kind
// of object as the shipped one.
func sampleMatrix(samples []Sample) (X [][]float64, yTime, yPower []float64) {
	X = make([][]float64, 0, len(samples))
	yTime = make([]float64, 0, len(samples))
	yPower = make([]float64, 0, len(samples))
	for _, s := range samples {
		X = append(X, featurize(s.Counters, s.Config))
		yTime = append(yTime, math.Log(s.TimeMS/instsOf(s.Counters)))
		yPower = append(yPower, s.GPUPowerW)
	}
	return X, yTime, yPower
}

// OnlineForestConfig returns the forest hyperparameters continuous
// retraining uses by default: the offline shape (half the features per
// split, depth 14) at a reduced tree count, sized so a retrain round
// on a few thousand reservoir samples completes in well under a second
// — the trainer can always Extend the candidate afterwards if the
// holdout gate wants more capacity.
func OnlineForestConfig(seed int64) rf.Config {
	cfg := rf.DefaultConfig(seed)
	cfg.NumTrees = 24
	cfg.MaxDepth = 14
	cfg.MaxFeatures = numRFFeatures / 2
	return cfg
}

// TrainOnSamples trains a RandomForest predictor on served ground-truth
// samples. fcfg seeds and shapes the time forest; the power forest uses
// fcfg.Seed+1, mirroring TrainRandomForest's offline scheme. A zero
// fcfg.Workers inherits workers. Invalid samples must already be
// filtered out (the reservoir never admits them); they would poison the
// log targets.
func TrainOnSamples(samples []Sample, fcfg rf.Config, workers int) (*RandomForest, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no training samples")
	}
	if fcfg.NumTrees == 0 {
		fcfg = OnlineForestConfig(fcfg.Seed)
	}
	if fcfg.Workers == 0 {
		fcfg.Workers = workers
	}
	X, yTime, yPower := sampleMatrix(samples)
	tf, err := rf.Train(X, yTime, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: time forest: %w", err)
	}
	fcfg.Seed++
	pf, err := rf.Train(X, yPower, fcfg)
	if err != nil {
		return nil, fmt.Errorf("predict: power forest: %w", err)
	}
	return NewFromForests(tf, pf)
}

// ExtendOnSamples grows `extra` more trees onto a model produced by
// TrainOnSamples(samples, fcfg, …) — the bagging-native incremental
// step: cheaper than retraining, and by rf.Extend's equality contract
// the result is bit-identical to having trained the bigger forest from
// scratch on the same samples, so gate decisions made against an
// extended candidate are decisions about the equivalent full retrain.
func ExtendOnSamples(m *RandomForest, samples []Sample, fcfg rf.Config, extra, workers int) (*RandomForest, error) {
	if m == nil {
		return nil, fmt.Errorf("predict: extend of a nil model")
	}
	if fcfg.NumTrees == 0 {
		fcfg = OnlineForestConfig(fcfg.Seed)
	}
	if fcfg.Workers == 0 {
		fcfg.Workers = workers
	}
	X, yTime, yPower := sampleMatrix(samples)
	fcfg.NumTrees = m.timeForest.NumTrees()
	tf, err := rf.Extend(m.timeForest, X, yTime, fcfg, extra)
	if err != nil {
		return nil, fmt.Errorf("predict: extend time forest: %w", err)
	}
	fcfg.Seed++
	pf, err := rf.Extend(m.powerForest, X, yPower, fcfg, extra)
	if err != nil {
		return nil, fmt.Errorf("predict: extend power forest: %w", err)
	}
	return NewFromForests(tf, pf)
}

// EvaluateOnSamples measures a model's mean absolute relative errors
// (fractions) for time and power over held-out samples — the number the
// promotion gate compares against its ceiling, and the baseline the
// drift scoreboard is seeded with after a promotion. Samples for which
// no meaningful relative error exists (non-positive measurements) are
// skipped; evaluating zero usable samples returns (0, 0, 0).
func EvaluateOnSamples(m Model, samples []Sample) (timeMAPE, powerMAPE float64, evaluated int) {
	var ts, ps float64
	for _, s := range samples {
		if s.TimeMS <= 0 || s.GPUPowerW <= 0 {
			continue
		}
		e := m.PredictKernel(s.Counters, s.Config)
		ts += math.Abs(e.TimeMS-s.TimeMS) / s.TimeMS
		ps += math.Abs(e.GPUPowerW-s.GPUPowerW) / s.GPUPowerW
		evaluated++
	}
	if evaluated == 0 {
		return 0, 0, 0
	}
	return ts / float64(evaluated), ps / float64(evaluated), evaluated
}
