package predict

import (
	"math"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

func TestCalibratedCorrectsBias(t *testing.T) {
	k := kernel.NewBalanced("b", 1)
	o := NewOracle()
	o.Register(k)
	// A model that is consistently 40% slow-side and 20% power-high.
	inner := &scaledModel{inner: o, t: 1.4, p: 1.2}
	c := NewCalibrated(inner)
	cs := k.Counters()
	cfg := hw.FailSafe()
	truth := k.Evaluate(cfg)

	before := c.PredictKernel(cs, cfg)
	if math.Abs(before.TimeMS-1.4*truth.TimeMS) > 1e-9 {
		t.Fatalf("uncalibrated prediction %v, want biased", before.TimeMS)
	}
	// Feed back the measurement; the next prediction must be corrected.
	c.Feedback(cs, cfg, truth.TimeMS, truth.GPUW+truth.NBW)
	after := c.PredictKernel(cs, cfg)
	if errBefore, errAfter := math.Abs(before.TimeMS-truth.TimeMS), math.Abs(after.TimeMS-truth.TimeMS); errAfter >= errBefore {
		t.Errorf("calibration did not reduce time error: %v -> %v", errBefore, errAfter)
	}
	// Converges with repeated feedback.
	for i := 0; i < 20; i++ {
		c.Feedback(cs, cfg, truth.TimeMS, truth.GPUW+truth.NBW)
	}
	final := c.PredictKernel(cs, cfg)
	if d := math.Abs(final.TimeMS-truth.TimeMS) / truth.TimeMS; d > 0.01 {
		t.Errorf("calibrated time still %.1f%% off after convergence", 100*d)
	}
	if d := math.Abs(final.GPUPowerW-(truth.GPUW+truth.NBW)) / (truth.GPUW + truth.NBW); d > 0.01 {
		t.Errorf("calibrated power still %.1f%% off", 100*d)
	}
	if c.KnownKernels() != 1 {
		t.Errorf("KnownKernels = %d", c.KnownKernels())
	}
}

// scaledModel applies a constant multiplicative bias.
type scaledModel struct {
	inner Model
	t, p  float64
}

func (s *scaledModel) Name() string { return "scaled" }
func (s *scaledModel) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	e := s.inner.PredictKernel(cs, c)
	e.TimeMS *= s.t
	e.GPUPowerW *= s.p
	return e
}

func TestCalibratedRatioIsPerKernel(t *testing.T) {
	a := kernel.NewComputeBound("a", 1)
	b := kernel.NewMemoryBound("b", 1)
	o := NewOracle()
	o.Register(a)
	o.Register(b)
	c := NewCalibrated(&scaledModel{inner: o, t: 2, p: 1})
	cfg := hw.FailSafe()
	ma := a.Evaluate(cfg)
	// Only kernel a gets feedback.
	c.Feedback(a.Counters(), cfg, ma.TimeMS, ma.GPUW+ma.NBW)
	// a corrected, b still biased.
	ea := c.PredictKernel(a.Counters(), cfg)
	eb := c.PredictKernel(b.Counters(), cfg)
	if math.Abs(ea.TimeMS-ma.TimeMS) > 0.1*ma.TimeMS {
		t.Error("kernel a not corrected")
	}
	if mb := b.Evaluate(cfg); math.Abs(eb.TimeMS-2*mb.TimeMS) > 1e-9 {
		t.Error("kernel b should still carry the bias")
	}
}

func TestCalibratedIgnoresDegenerateFeedback(t *testing.T) {
	k := kernel.NewBalanced("b", 1)
	o := NewOracle()
	o.Register(k)
	c := NewCalibrated(o)
	cfg := hw.FailSafe()
	c.Feedback(k.Counters(), cfg, 0, 10)  // zero time: ignored
	c.Feedback(k.Counters(), cfg, 10, -1) // negative power: ignored
	if c.KnownKernels() != 0 {
		t.Errorf("degenerate feedback stored: %d kernels", c.KnownKernels())
	}
	if c.Name() != "oracle+feedback" {
		t.Errorf("name = %q", c.Name())
	}
}
