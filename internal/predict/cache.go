package predict

import (
	"container/list"
	"sync"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/metrics"
)

// DefaultCacheSize is the prediction cache capacity the commands use
// when `-predict-cache` is enabled without an explicit size: room for
// every configuration of the paper's 336-point space for a few dozen
// distinct kernels.
const DefaultCacheSize = 16384

// Cache memoizes an inner Model behind a bounded LRU keyed by the full
// (counter set, configuration) pair — the counter set is the kernel's
// signature as far as any Model is concerned. Repeated MPC horizon
// evaluations of the same kernel at the same candidate configuration
// then stop re-walking the forest: across receding-horizon decisions
// the same (kernel, config) points are re-evaluated every window, and
// only the first walk pays.
//
// Because every Model in this package is deterministic, a hit returns
// exactly what recomputation would; decisions with the cache on are
// byte-identical to decisions with it off (proved by the determinism
// suite). The cache must wrap the *immutable* model — e.g. sit inside
// Calibrated, not around it — since Calibrated's feedback ratios change
// between kernels and would make stale entries diverge.
//
// Cache is safe for concurrent use; the sharded configuration search
// calls PredictKernel from many goroutines.
type Cache struct {
	inner Model
	cap   int

	mu  sync.Mutex
	m   map[cacheKey]*list.Element
	lru *list.List // front = most recently used

	hits, misses, evictions uint64

	// Optional metrics mirror (Instrument).
	mHits, mMisses, mEvictions *metrics.Counter
	mSize                      *metrics.Gauge
}

type cacheKey struct {
	cs counters.Set
	c  hw.Config
}

type cacheEntry struct {
	key cacheKey
	est Estimate
}

// NewCache wraps inner with a bounded LRU of the given capacity.
// capacity <= 0 uses DefaultCacheSize.
func NewCache(inner Model, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		inner: inner,
		cap:   capacity,
		m:     make(map[cacheKey]*list.Element, capacity),
		lru:   list.New(),
	}
}

// Name implements Model.
func (c *Cache) Name() string { return c.inner.Name() + "+cache" }

// PredictKernel implements Model, consulting the LRU before the inner
// model.
func (c *Cache) PredictKernel(cs counters.Set, cfg hw.Config) Estimate {
	k := cacheKey{cs: cs, c: cfg}
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		est := el.Value.(*cacheEntry).est
		c.hits++
		hit := c.mHits
		c.mu.Unlock()
		if hit != nil {
			hit.Inc()
		}
		return est
	}
	c.mu.Unlock()

	// Miss: evaluate outside the lock so concurrent misses overlap the
	// expensive forest walks instead of serializing on the mutex.
	est := c.inner.PredictKernel(cs, cfg)

	c.mu.Lock()
	c.misses++
	if _, ok := c.m[k]; !ok { // a concurrent miss may have inserted it
		c.m[k] = c.lru.PushFront(&cacheEntry{key: k, est: est})
		if c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.m, old.Value.(*cacheEntry).key)
			c.evictions++
			if c.mEvictions != nil {
				c.mEvictions.Inc()
			}
		}
	}
	miss, gauge, size := c.mMisses, c.mSize, c.lru.Len()
	c.mu.Unlock()
	if miss != nil {
		miss.Inc()
		gauge.Set(float64(size))
	}
	return est
}

// Stats returns the cumulative hit/miss/eviction counts and the current
// entry count.
func (c *Cache) Stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Cap returns the cache capacity.
func (c *Cache) Cap() int { return c.cap }

// Instrument mirrors the cache's counters into reg, labeled by the
// inner model's name: mpcdvfs_predict_cache_events_total{model,event}
// and mpcdvfs_predict_cache_entries{model}. Call before first use;
// earlier activity is not backfilled.
func (c *Cache) Instrument(reg *metrics.Registry) {
	events := reg.Counter("mpcdvfs_predict_cache_events_total",
		"Prediction cache lookups by outcome.", "model", "event")
	entries := reg.Gauge("mpcdvfs_predict_cache_entries",
		"Entries currently held by the prediction cache.", "model")
	name := c.inner.Name()
	c.mu.Lock()
	c.mHits = events.With(name, "hit")
	c.mMisses = events.With(name, "miss")
	c.mEvictions = events.With(name, "eviction")
	c.mSize = entries.With(name)
	c.mu.Unlock()
}
