package predict

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/metrics"
)

// DefaultCacheSize is the prediction cache capacity the commands use
// when `-predict-cache` is enabled without an explicit size: room for
// every configuration of the paper's 336-point space for a few dozen
// distinct kernels.
const DefaultCacheSize = 16384

// cacheShardCount is the number of LRU shards (a power of two, so the
// shard index is a mask of the key hash). Sixteen shards keep the
// per-shard lock uncontended well past the session concurrency the
// serving layer targets, while the per-shard LRUs stay large enough
// that sharded eviction behaves like the single LRU it replaced.
const cacheShardCount = 16

// Cache memoizes an inner Model behind a bounded LRU keyed by the full
// (counter set, configuration) pair — the counter set is the kernel's
// signature as far as any Model is concerned. Repeated MPC horizon
// evaluations of the same kernel at the same candidate configuration
// then stop re-walking the forest: across receding-horizon decisions
// the same (kernel, config) points are re-evaluated every window, and
// only the first walk pays.
//
// Because every Model in this package is deterministic, a hit returns
// exactly what recomputation would; decisions with the cache on are
// byte-identical to decisions with it off (proved by the determinism
// suite). The cache must wrap the *immutable* model — e.g. sit inside
// Calibrated, not around it — since Calibrated's feedback ratios change
// between kernels and would make stale entries diverge.
//
// Cache is safe for concurrent use and sharded for it: the key space is
// split across cacheShardCount independent LRUs by key hash, each with
// its own lock, so concurrent sessions sharing one cache stop
// serializing on a single mutex. Within one goroutine the lookup
// sequence — and therefore the per-shard hit/miss/eviction sequence —
// is a pure function of the keys looked up: a single session's replay
// is identical run to run, cache shared or private (the shard hash is
// deterministic and seedless).
type Cache struct {
	inner  Model
	cap    int
	shards [cacheShardCount]cacheShard

	// Optional metrics mirror (Instrument); shards read it lock-free.
	instr atomic.Pointer[cacheInstr]
}

// cacheShard is one independently locked LRU over a hash partition of
// the key space.
type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[cacheKey]*list.Element
	lru *list.List // front = most recently used

	hits, misses, evictions uint64
}

type cacheInstr struct {
	hits, misses, evictions *metrics.Counter
	size                    *metrics.Gauge
}

type cacheKey struct {
	cs counters.Set
	c  hw.Config
}

// shardIndex hashes a key to its shard with FNV-1a over the counter
// bits and configuration fields. The hash is deterministic and
// process-independent, so a replay's shard (and eviction) sequence
// never varies between runs or hosts.
func shardIndex(k cacheKey) int {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range k.cs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	buf[0] = byte(k.c.CPU)
	buf[1] = byte(k.c.NB)
	buf[2] = byte(k.c.GPU)
	buf[3] = byte(k.c.CUs)
	_, _ = h.Write(buf[:4])
	return int(h.Sum64() & (cacheShardCount - 1))
}

type cacheEntry struct {
	key cacheKey
	est Estimate
}

// NewCache wraps inner with a bounded LRU of the given total capacity.
// capacity <= 0 uses DefaultCacheSize. The capacity is distributed
// across the shards (remainder to the lower shards); every shard holds
// at least one entry, so a tiny capacity rounds up to cacheShardCount.
func NewCache(inner Model, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	c := &Cache{inner: inner, cap: capacity}
	base, extra := capacity/cacheShardCount, capacity%cacheShardCount
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		if sc < 1 {
			sc = 1
		}
		c.shards[i] = cacheShard{
			cap: sc,
			m:   make(map[cacheKey]*list.Element, sc),
			lru: list.New(),
		}
	}
	return c
}

// Name implements Model.
func (c *Cache) Name() string { return c.inner.Name() + "+cache" }

// PredictKernel implements Model, consulting the key's LRU shard before
// the inner model.
func (c *Cache) PredictKernel(cs counters.Set, cfg hw.Config) Estimate {
	k := cacheKey{cs: cs, c: cfg}
	s := &c.shards[shardIndex(k)]
	in := c.instr.Load()

	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		s.lru.MoveToFront(el)
		est := el.Value.(*cacheEntry).est
		s.hits++
		s.mu.Unlock()
		if in != nil {
			in.hits.Inc()
		}
		return est
	}
	s.mu.Unlock()

	// Miss: evaluate outside the lock so concurrent misses overlap the
	// expensive forest walks instead of serializing on the shard.
	est := c.inner.PredictKernel(cs, cfg)

	evicted := false
	s.mu.Lock()
	s.misses++
	if _, ok := s.m[k]; !ok { // a concurrent miss may have inserted it
		s.m[k] = s.lru.PushFront(&cacheEntry{key: k, est: est})
		if s.lru.Len() > s.cap {
			old := s.lru.Back()
			s.lru.Remove(old)
			delete(s.m, old.Value.(*cacheEntry).key)
			s.evictions++
			evicted = true
		}
	}
	s.mu.Unlock()
	if in != nil {
		in.misses.Inc()
		if evicted {
			in.evictions.Inc()
		}
		in.size.Set(float64(c.Len()))
	}
	return est
}

// Stats returns the cumulative hit/miss/eviction counts and the current
// entry count, summed across shards.
func (c *Cache) Stats() (hits, misses, evictions uint64, size int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		size += s.lru.Len()
		s.mu.Unlock()
	}
	return hits, misses, evictions, size
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Cap returns the cache's total capacity.
func (c *Cache) Cap() int { return c.cap }

// Instrument mirrors the cache's counters into reg, labeled by the
// inner model's name: mpcdvfs_predict_cache_events_total{model,event}
// and mpcdvfs_predict_cache_entries{model}. Call before first use;
// earlier activity is not backfilled.
func (c *Cache) Instrument(reg *metrics.Registry) {
	events := reg.Counter("mpcdvfs_predict_cache_events_total",
		"Prediction cache lookups by outcome.", "model", "event")
	entries := reg.Gauge("mpcdvfs_predict_cache_entries",
		"Entries currently held by the prediction cache.", "model")
	name := c.inner.Name()
	c.instr.Store(&cacheInstr{
		hits:      events.With(name, "hit"),
		misses:    events.With(name, "miss"),
		evictions: events.With(name, "eviction"),
		size:      entries.With(name),
	})
}
