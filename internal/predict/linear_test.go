package predict

import (
	"math"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	// y = 2 + 3x0 - x1.
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {3, 2}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 2 + 3*x[0] - x[1]
	}
	coef, err := leastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-6 {
			t.Errorf("coef[%d] = %v, want %v", i, coef[i], want[i])
		}
	}
}

func TestSolveGaussSingular(t *testing.T) {
	A := [][]float64{{1, 1}, {1, 1}}
	if _, err := solveGauss(A, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	if _, err := leastSquares(nil, nil); err == nil {
		t.Error("empty regression accepted")
	}
	if _, err := leastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLinearRegressionUsableButWorseThanRF(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	opt := DefaultTrainOptions(777)
	opt.NumKernels = 60 // keep the test quick; both models get the same budget
	lin, err := TrainLinearRegression(opt)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := TrainRandomForest(opt)
	if err != nil {
		t.Fatal(err)
	}
	ks := benchmarkKernels()
	ltm, lpm := MAPE(lin, ks, hw.DefaultSpace())
	rtm, rpm := MAPE(rf, ks, hw.DefaultSpace())
	t.Logf("linear: time %.1f%% power %.1f%%; forest: time %.1f%% power %.1f%%",
		100*ltm, 100*lpm, 100*rtm, 100*rpm)
	// Linear must be usable...
	if ltm > 1.2 || lpm > 0.5 {
		t.Errorf("linear regression unusable: %.1f%%/%.1f%%", 100*ltm, 100*lpm)
	}
	// ...but the forest clearly wins on power, whose response surface is
	// nonlinear in the shared rail voltage (at the full training budget it
	// wins on time too; this test runs a reduced budget).
	if rpm > lpm {
		t.Errorf("forest power MAPE %.1f%% not better than linear %.1f%%", 100*rpm, 100*lpm)
	}
	_ = rtm
}

func TestLinearRegressionValidation(t *testing.T) {
	if _, err := TrainLinearRegression(TrainOptions{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := TrainLinearRegression(TrainOptions{NumKernels: 1}); err == nil {
		t.Error("empty space accepted")
	}
}

func TestLinearRegressionMonotoneOnComputeBound(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	opt := DefaultTrainOptions(778)
	opt.NumKernels = 40
	lin, err := TrainLinearRegression(opt)
	if err != nil {
		t.Fatal(err)
	}
	cs := kernel.NewComputeBound("cb", 1).Counters()
	slow := lin.PredictKernel(cs, hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM0, CUs: 2})
	fast := lin.PredictKernel(cs, hw.Config{CPU: hw.P5, NB: hw.NB0, GPU: hw.DPM4, CUs: 8})
	if slow.TimeMS <= fast.TimeMS {
		t.Errorf("linear model misses GPU scaling: slow %.3f <= fast %.3f", slow.TimeMS, fast.TimeMS)
	}
	if lin.Name() != "linear-regression" {
		t.Errorf("name = %q", lin.Name())
	}
}
