package predict

import (
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

// fusedCounterSets returns n distinct kernel counter sets for staging.
func fusedCounterSets(n int) []counters.Set {
	ks := benchmarkKernels()
	out := make([]counters.Set, n)
	for i := range out {
		out[i] = ks[i%len(ks)].Counters()
	}
	return out
}

// directSweep runs the in-process batched path for one kernel.
func directSweep(t *testing.T, m *RandomForest, cs counters.Set, space hw.Space) []Estimate {
	t.Helper()
	dst := make([]Estimate, space.Size())
	if !m.PredictSpace(cs, space, dst) {
		t.Fatal("direct PredictSpace returned false")
	}
	return dst
}

// TestFusedPlanEpochPartitions is the epoch-boundary property test: any
// partition of N requests into epochs must yield per-request estimates
// bit-identical to each request's direct sweep — the coordinator's
// collect window may cut anywhere without perturbing a single decision.
func TestFusedPlanEpochPartitions(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	const nReq = 6
	sets := fusedCounterSets(nReq)
	want := make([][]Estimate, nReq)
	for i, cs := range sets {
		want[i] = directSweep(t, m, cs, space)
	}

	partitions := [][]int{
		{6},
		{1, 5},
		{5, 1},
		{2, 2, 2},
		{3, 1, 2},
		{1, 1, 1, 1, 1, 1},
		{4, 2},
	}
	for _, part := range partitions {
		plan := NewFusedPlan(m, space, nReq)
		if plan == nil {
			t.Fatal("NewFusedPlan returned nil for a compiled model")
		}
		got := make([][]Estimate, nReq)
		next := 0
		for _, sz := range part {
			dsts := make([][]Estimate, sz)
			for s := 0; s < sz; s++ {
				plan.Stage(s, sets[next+s])
				dsts[s] = make([]Estimate, space.Size())
			}
			plan.Execute(sz, dsts)
			for s := 0; s < sz; s++ {
				got[next+s] = dsts[s]
			}
			next += sz
		}
		for i := range want {
			for r := range want[i] {
				if got[i][r] != want[i][r] {
					t.Fatalf("partition %v request %d row %d: fused %+v != direct %+v",
						part, i, r, got[i][r], want[i][r])
				}
			}
		}
	}
}

// TestFusedPlanSlotIndependence checks a slot's result does not depend
// on what its epoch co-residents staged: the same request fused with
// different neighbours yields the same bytes.
func TestFusedPlanSlotIndependence(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	sets := fusedCounterSets(4)
	plan := NewFusedPlan(m, space, 4)
	run := func(order []int) []Estimate {
		dsts := make([][]Estimate, len(order))
		for s, k := range order {
			plan.Stage(s, sets[k])
			dsts[s] = make([]Estimate, space.Size())
		}
		plan.Execute(len(order), dsts)
		for s, k := range order {
			if k == 0 {
				return dsts[s]
			}
		}
		t.Fatal("order must contain request 0")
		return nil
	}
	a := run([]int{0, 1, 2, 3})
	b := run([]int{3, 2, 0})
	c := run([]int{0})
	for r := range a {
		if a[r] != b[r] || a[r] != c[r] {
			t.Fatalf("row %d differs across co-resident sets: %+v / %+v / %+v", r, a[r], b[r], c[r])
		}
	}
}

// TestFusedPlanZeroAlloc backs the hotpath annotations on Stage and
// Execute: the steady-state fuse/scatter path must not allocate.
func TestFusedPlanZeroAlloc(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	sets := fusedCounterSets(4)
	plan := NewFusedPlan(m, space, 4)
	dsts := make([][]Estimate, 4)
	for s := range dsts {
		dsts[s] = make([]Estimate, space.Size())
	}
	if n := testing.AllocsPerRun(10, func() {
		for s, cs := range sets {
			plan.Stage(s, cs)
		}
		plan.Execute(len(sets), dsts)
	}); n != 0 {
		t.Errorf("Stage+Execute allocated %v times per epoch, want 0", n)
	}
}

// TestNewFusedPlanDeclines covers the coordinator's decline conditions:
// no compiled path, empty space, or a zero slot budget.
func TestNewFusedPlanDeclines(t *testing.T) {
	m := trainedRF(t)
	if NewFusedPlan(nil, hw.DefaultSpace(), 4) != nil {
		t.Error("nil model accepted")
	}
	if NewFusedPlan(m, hw.Space{}, 4) != nil {
		t.Error("empty space accepted")
	}
	if NewFusedPlan(m, hw.DefaultSpace(), 0) != nil {
		t.Error("zero maxRequests accepted")
	}
	m.SetCompiled(false)
	defer m.SetCompiled(true)
	if NewFusedPlan(m, hw.DefaultSpace(), 4) != nil {
		t.Error("tree-walk model accepted")
	}
}

// syncSubmit serves requests inline on the submitting goroutine through
// a FusedPlan — the smallest possible coordinator, for unit-testing
// RemoteSweep without goroutines.
func syncSubmit(t *testing.T, m *RandomForest) SweepSubmit {
	t.Helper()
	var plan *FusedPlan
	return func(req *SweepRequest) bool {
		if plan == nil || !plan.Serves(req.Model, req.Space) {
			plan = NewFusedPlan(req.Model, req.Space, 1)
			if plan == nil {
				return false
			}
		}
		plan.Stage(0, req.CS)
		plan.Execute(1, [][]Estimate{req.Dst})
		req.OK = true
		req.Done <- struct{}{}
		return true
	}
}

// TestRemoteSweepMatchesDirect proves the full session-side path —
// submit, park, calibration — returns bytes identical to the direct
// Calibrated.PredictSpace, including after feedback shifts the ratios.
func TestRemoteSweepMatchesDirect(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	k := kernel.NewBalanced("b", 1)
	cs := k.Counters()

	calDirect := NewCalibrated(m)
	calRemote := NewCalibrated(m)
	rs := NewRemoteSweep(calRemote, m, syncSubmit(t, m))

	check := func(stage string) {
		want := make([]Estimate, space.Size())
		if !calDirect.PredictSpace(cs, space, want) {
			t.Fatalf("%s: direct path returned false", stage)
		}
		got := make([]Estimate, space.Size())
		if !rs.PredictSpace(cs, space, got) {
			t.Fatalf("%s: remote sweep returned false", stage)
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%s row %d: remote %+v != direct %+v", stage, r, got[r], want[r])
			}
		}
	}
	check("uncalibrated")
	truth := k.Evaluate(hw.FailSafe())
	calDirect.Feedback(cs, hw.FailSafe(), truth.TimeMS, truth.GPUW+truth.NBW)
	calRemote.Feedback(cs, hw.FailSafe(), truth.TimeMS, truth.GPUW+truth.NBW)
	check("after feedback")
}

// TestRemoteSweepFallsBack covers every false-return: rejected submit,
// declined request, and a model without the compiled path. dst must be
// untouched so the optimizer's direct fallback starts clean.
func TestRemoteSweepFallsBack(t *testing.T) {
	m := trainedRF(t)
	space := hw.DefaultSpace()
	cs := kernel.NewBalanced("b", 1).Counters()
	poison := Estimate{TimeMS: -1, GPUPowerW: -1}

	newDst := func() []Estimate {
		dst := make([]Estimate, space.Size())
		for i := range dst {
			dst[i] = poison
		}
		return dst
	}
	checkUntouched := func(stage string, dst []Estimate) {
		t.Helper()
		for i := range dst {
			if dst[i] != poison {
				t.Fatalf("%s: dst[%d] written on a false return", stage, i)
			}
		}
	}

	rejected := NewRemoteSweep(nil, m, func(*SweepRequest) bool { return false })
	dst := newDst()
	if rejected.PredictSpace(cs, space, dst) {
		t.Fatal("rejected submit reported success")
	}
	checkUntouched("rejected", dst)

	declined := NewRemoteSweep(nil, m, func(req *SweepRequest) bool {
		req.OK = false
		req.Done <- struct{}{}
		return true
	})
	dst = newDst()
	if declined.PredictSpace(cs, space, dst) {
		t.Fatal("declined request reported success")
	}
	checkUntouched("declined", dst)

	m.SetCompiled(false)
	defer m.SetCompiled(true)
	walk := NewRemoteSweep(nil, m, func(*SweepRequest) bool {
		t.Fatal("tree-walk model must not submit")
		return false
	})
	dst = newDst()
	if walk.PredictSpace(cs, space, dst) {
		t.Fatal("tree-walk model reported success")
	}
	checkUntouched("tree-walk", dst)
}
