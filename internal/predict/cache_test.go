package predict

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
)

// countingModel is a deterministic fake Model that records how many
// times it was consulted; a Cache miss is exactly one inner call.
type countingModel struct {
	calls atomic.Uint64
}

func (m *countingModel) Name() string { return "counting" }

func (m *countingModel) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	m.calls.Add(1)
	s := 0.0
	for _, v := range cs {
		s += v
	}
	return Estimate{
		TimeMS:    s + float64(c.CPU)*1e3 + float64(c.NB)*1e2 + float64(c.GPU)*10 + float64(c.CUs),
		GPUPowerW: s * 0.5,
	}
}

// lookupSeq builds a deterministic lookup sequence with enough key
// reuse to exercise hits, misses and (at small capacities) evictions.
func lookupSeq(seed int64, n int) []cacheKey {
	rng := rand.New(rand.NewSource(seed))
	space := hw.DefaultSpace()
	kernels := make([]counters.Set, 8)
	for i := range kernels {
		for j := range kernels[i] {
			kernels[i][j] = rng.Float64() * 1e6
		}
	}
	seq := make([]cacheKey, n)
	for i := range seq {
		seq[i] = cacheKey{
			cs: kernels[rng.Intn(len(kernels))],
			c:  space.At(rng.Intn(space.Size())),
		}
	}
	return seq
}

// runSession replays seq through c, returning the per-lookup hit/miss
// pattern (true = hit, observed via the inner call counter) and the
// estimates.
func runSession(c *Cache, inner *countingModel, seq []cacheKey) (pattern []bool, ests []Estimate) {
	pattern = make([]bool, len(seq))
	ests = make([]Estimate, len(seq))
	for i, k := range seq {
		before := inner.calls.Load()
		ests[i] = c.PredictKernel(k.cs, k.c)
		pattern[i] = inner.calls.Load() == before
	}
	return pattern, ests
}

// TestCacheShardParity pins the replay-identity of the sharded cache:
// the same lookup sequence against a fresh cache produces the same
// hit/miss pattern, the same estimates, and the same aggregate stats,
// run after run and at every capacity class (no evictions, per-shard
// evictions, minimum one-entry shards).
func TestCacheShardParity(t *testing.T) {
	seq := lookupSeq(7, 4000)
	for _, capacity := range []int{0, 50000, 256, 17, 1} {
		var (
			refPattern       []bool
			refEsts          []Estimate
			refH, refM, refE uint64
			refSize          int
		)
		for run := 0; run < 3; run++ {
			inner := &countingModel{}
			c := NewCache(inner, capacity)
			pattern, ests := runSession(c, inner, seq)
			h, m, e, size := c.Stats()
			if run == 0 {
				refPattern, refEsts = pattern, ests
				refH, refM, refE, refSize = h, m, e, size
				if h+m != uint64(len(seq)) {
					t.Fatalf("cap %d: hits %d + misses %d != %d lookups", capacity, h, m, len(seq))
				}
				if h == 0 || m == 0 {
					t.Fatalf("cap %d: degenerate sequence (hits %d, misses %d)", capacity, h, m)
				}
				continue
			}
			for i := range seq {
				if pattern[i] != refPattern[i] {
					t.Fatalf("cap %d run %d: lookup %d hit=%v, first run saw %v", capacity, run, i, pattern[i], refPattern[i])
				}
				if ests[i] != refEsts[i] {
					t.Fatalf("cap %d run %d: lookup %d estimate diverged", capacity, run, i)
				}
			}
			if h != refH || m != refM || e != refE || size != refSize {
				t.Fatalf("cap %d run %d: stats (%d,%d,%d,%d) != first run (%d,%d,%d,%d)",
					capacity, run, h, m, e, size, refH, refM, refE, refSize)
			}
		}
	}
}

// TestCacheHitBitIdentical pins the memoization contract: a hit returns
// bit-for-bit what recomputation would.
func TestCacheHitBitIdentical(t *testing.T) {
	inner := &countingModel{}
	c := NewCache(inner, 1024)
	seq := lookupSeq(11, 500)
	for _, k := range seq {
		want := inner.PredictKernel(k.cs, k.c)
		got := c.PredictKernel(k.cs, k.c)
		if got != want {
			t.Fatalf("cached estimate %+v != direct %+v", got, want)
		}
	}
	// Second pass: all hits, all bit-identical.
	before := inner.calls.Load()
	for _, k := range seq {
		got := c.PredictKernel(k.cs, k.c)
		direct := inner.PredictKernel(k.cs, k.c)
		if got != direct {
			t.Fatalf("hit %+v != recompute %+v", got, direct)
		}
	}
	// len(seq) recomputes in the loop above, but zero from the cache path
	// beyond them would mean misses; each iteration adds exactly one.
	if inner.calls.Load() != before+uint64(len(seq)) {
		t.Fatalf("second pass caused cache misses: inner calls %d -> %d", before, inner.calls.Load())
	}
}

// TestCacheCapacityBound pins that the sharded cache respects its total
// capacity (for capacities >= the shard count; tinier capacities round
// up to one entry per shard, documented on NewCache).
func TestCacheCapacityBound(t *testing.T) {
	inner := &countingModel{}
	const capacity = 64
	c := NewCache(inner, capacity)
	if c.Cap() != capacity {
		t.Fatalf("Cap() = %d, want %d", c.Cap(), capacity)
	}
	for _, k := range lookupSeq(13, 8000) {
		c.PredictKernel(k.cs, k.c)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("Len() = %d exceeds capacity %d", n, capacity)
	}
	_, _, evictions, _ := c.Stats()
	if evictions == 0 {
		t.Fatal("expected evictions at capacity 64 under 8000 mixed lookups")
	}
}

// TestCacheConcurrentSessionIsolation runs one deterministic "session"
// sequence while sibling goroutines hammer the same cache with disjoint
// keys: with capacity ample enough that shards never evict, the
// session's own hit/miss pattern and estimates must be exactly what a
// solo replay produces — the sharded cache adds no cross-session
// interference beyond eviction pressure. Run under -race this also
// proves the shard locking.
func TestCacheConcurrentSessionIsolation(t *testing.T) {
	seq := lookupSeq(17, 2000)

	soloInner := &countingModel{}
	soloCache := NewCache(soloInner, 200000)
	_, wantEsts := runSession(soloCache, soloInner, seq)

	inner := &countingModel{}
	c := NewCache(inner, 200000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sib := lookupSeq(100+int64(g), 3000) // disjoint kernels: different seed => different counter sets
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := sib[i%len(sib)]
				c.PredictKernel(k.cs, k.c)
				i++
			}
		}(g)
	}

	// The session itself: single goroutine, its own keys. The inner call
	// counter is shared with the siblings, so detect hits by value
	// identity instead: recompute directly and compare, and count misses
	// via a private wrapper pass below.
	gotEsts := make([]Estimate, len(seq))
	for i, k := range seq {
		gotEsts[i] = c.PredictKernel(k.cs, k.c)
	}
	close(stop)
	wg.Wait()

	for i := range seq {
		if gotEsts[i] != wantEsts[i] {
			t.Fatalf("lookup %d: estimate diverged under concurrent siblings", i)
		}
	}
	// With no evictions possible, the session's keys are all resident
	// exactly as in the solo run; a second solo-style pass must be 100%
	// hits (pattern parity for the steady state).
	for i, k := range seq {
		before := inner.calls.Load()
		c.PredictKernel(k.cs, k.c)
		if inner.calls.Load() != before {
			t.Fatalf("lookup %d: miss on re-replay; session keys evicted despite ample capacity", i)
		}
	}
}

// TestCacheShardDistribution sanity-checks the FNV shard hash: a
// realistic key population must not collapse into a few shards.
func TestCacheShardDistribution(t *testing.T) {
	var counts [cacheShardCount]int
	for _, k := range lookupSeq(23, 4096) {
		counts[shardIndex(k)]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no keys out of 4096", i)
		}
	}
}
