// Package predict is the performance and power prediction layer of the
// paper's runtime (§IV-A3): given the performance counters of a kernel
// and a candidate hardware configuration, it estimates the kernel's
// execution time and GPU (including NB) power at that configuration.
//
// Three implementations are provided, matching the paper's evaluation:
//
//   - Oracle: perfect knowledge of the ground-truth model, used by the
//     Theoretically Optimal scheme and the Fig. 4 limit study;
//   - RandomForest: an offline-trained Random Forest regressor over the
//     eight Table III counters plus configuration features, the model the
//     paper deploys (its inaccuracy is what MPC's feedback absorbs);
//   - WithError: an oracle distorted by half-normally distributed errors
//     of a chosen mean, reproducing the Err_15%_10%, Err_5% and Err_0%
//     ablations of Fig. 13.
//
// CPU power is estimated with the normalized V²f model the paper uses,
// since the CPU busy-waits during kernel execution.
package predict

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/stats"
)

// Estimate is a predicted observation of one kernel invocation at one
// configuration.
type Estimate struct {
	TimeMS    float64 // predicted kernel execution time
	GPUPowerW float64 // predicted GPU+NB power (they share a rail and a meter)
}

// Model predicts kernel behaviour from performance counters. Counter sets
// are the only kernel description a Model may rely on: ground-truth
// parameters never cross this interface except inside Oracle.
//
// PredictKernel must be safe for concurrent calls: the sharded
// configuration search (core.Optimizer with Workers > 1) and batched
// forest inference fan predictions out across goroutines. All
// implementations in this package satisfy this — they either are pure
// functions of their immutable state or, like Calibrated, mutate state
// only through methods outside this interface (Feedback), which the
// runtime never overlaps with a search.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// PredictKernel estimates time and GPU power for a kernel whose
	// Table III counters are cs, run at configuration c.
	PredictKernel(cs counters.Set, c hw.Config) Estimate
}

// cpuRefState anchors the normalized V²f CPU power model to the ground
// truth at one state; other states are scaled by V²f. The deliberate
// omission of the leakage term keeps this a (slightly imperfect) model,
// like the paper's.
var cpuRef = struct {
	state hw.CPUPState
	power float64
}{hw.P5, kernel.CPUPowerW(hw.P5)}

// CPUPowerW returns the normalized V²f estimate of CPU power at state p.
func CPUPowerW(p hw.CPUPState) float64 {
	ref := cpuRef.state
	scale := (p.Voltage() * p.Voltage() * p.FreqGHz()) /
		(ref.Voltage() * ref.Voltage() * ref.FreqGHz())
	return cpuRef.power * scale
}

// EnergyMJ converts an estimate into predicted chip energy at config c,
// adding the V²f CPU power: the quantity the optimizer minimizes.
func EnergyMJ(e Estimate, c hw.Config) float64 {
	return (e.GPUPowerW + CPUPowerW(c.CPU)) * e.TimeMS
}

// Oracle is a perfect predictor: it maps counter sets back to the
// registered ground-truth kernels. It stands in for the "perfect
// knowledge of the effect of every hardware configuration" assumed by the
// paper's limit study (§II-E) and Theoretically Optimal scheme.
type Oracle struct {
	byCounters map[counters.Set]kernel.Kernel
	// order keeps registration order so nearest-neighbour fallback ties
	// resolve deterministically instead of by map iteration order.
	order []counters.Set
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle { return &Oracle{byCounters: map[counters.Set]kernel.Kernel{}} }

// Register gives the oracle perfect knowledge of k (including its current
// input scale).
func (o *Oracle) Register(k kernel.Kernel) {
	cs := k.Counters()
	if _, seen := o.byCounters[cs]; !seen {
		o.order = append(o.order, cs)
	}
	o.byCounters[cs] = k
}

// Len returns the number of registered kernels.
func (o *Oracle) Len() int { return len(o.byCounters) }

// Name implements Model.
func (o *Oracle) Name() string { return "oracle" }

// PredictKernel implements Model with ground truth. Unknown counter sets
// resolve to the nearest registered kernel in log-counter space, so small
// feedback perturbations stay well-defined; a completely empty oracle
// panics.
func (o *Oracle) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	k, ok := o.byCounters[cs]
	if !ok {
		k = o.nearest(cs)
	}
	m := k.Evaluate(c)
	return Estimate{TimeMS: m.TimeMS, GPUPowerW: m.GPUW + m.NBW}
}

func (o *Oracle) nearest(cs counters.Set) kernel.Kernel {
	if len(o.byCounters) == 0 {
		panic("predict: oracle has no registered kernels")
	}
	var best kernel.Kernel
	bestD := math.Inf(1)
	for _, reg := range o.order {
		k := o.byCounters[reg]
		d := 0.0
		for i := range cs {
			dd := math.Log1p(math.Max(0, cs[i])) - math.Log1p(math.Max(0, reg[i]))
			d += dd * dd
		}
		// Strict < keeps the earliest-registered kernel on equal
		// distances, so the fallback replays identically run to run.
		if d < bestD {
			bestD, best = d, k
		}
	}
	return best
}

// WithError wraps a perfect model with half-normally distributed
// multiplicative errors whose absolute means are timeErr and powerErr
// (e.g. 0.15 and 0.10 for the Err_15%_10% model of Fig. 13). The error
// for a given (counters, config) pair is deterministic, as a fixed
// imperfect model's would be: re-querying the same point returns the same
// wrong answer.
type WithError struct {
	inner             Model
	timeErr, powerErr float64
	seed              int64
	name              string
}

// NewWithError wraps inner with the given mean absolute errors.
func NewWithError(inner Model, timeErr, powerErr float64, seed int64) *WithError {
	if timeErr < 0 || powerErr < 0 {
		panic("predict: negative error means")
	}
	return &WithError{
		inner: inner, timeErr: timeErr, powerErr: powerErr, seed: seed,
		name: fmt.Sprintf("err_%g%%_%g%%", timeErr*100, powerErr*100),
	}
}

// Name implements Model.
func (w *WithError) Name() string { return w.name }

// PredictKernel implements Model.
func (w *WithError) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	e := w.inner.PredictKernel(cs, c)
	if w.timeErr == 0 && w.powerErr == 0 {
		return e
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	for _, v := range cs {
		put(v)
	}
	put(float64(c.CPU))
	put(float64(c.NB))
	put(float64(c.GPU))
	put(float64(c.CUs))
	put(float64(w.seed))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	sample := func(mean float64) float64 {
		v := math.Abs(rng.NormFloat64()) * mean * math.Sqrt(math.Pi/2)
		if rng.Intn(2) == 0 {
			return -v
		}
		return v
	}
	e.TimeMS *= math.Max(0.05, 1+sample(w.timeErr))
	e.GPUPowerW *= math.Max(0.05, 1+sample(w.powerErr))
	return e
}

// MAPE evaluates a model's mean absolute percentage errors for time and
// power over the given kernels across the whole space — the §VI-D
// accuracy measurement.
func MAPE(m Model, ks []kernel.Kernel, space hw.Space) (timeMAPE, powerMAPE float64) {
	var pt, at, pp, ap []float64
	for _, k := range ks {
		cs := k.Counters()
		space.ForEach(func(c hw.Config) {
			e := m.PredictKernel(cs, c)
			g := k.Evaluate(c)
			pt = append(pt, e.TimeMS)
			at = append(at, g.TimeMS)
			pp = append(pp, e.GPUPowerW)
			ap = append(ap, g.GPUW+g.NBW)
		})
	}
	tm, err := stats.MAPE(pt, at)
	if err != nil {
		return 0, 0
	}
	pm, _ := stats.MAPE(pp, ap)
	return tm, pm
}
