package predict

import (
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/telemetry"
)

// calibWeight is the EWMA weight for feedback updates.
const calibWeight = 0.5

// Calibrated wraps a Model with the runtime feedback loop of Fig. 6: the
// measured time and power of each executed kernel continuously correct
// the model's bias for that kernel. The paper realizes this by feeding
// updated performance counters back into the predictor (§IV-A2); with an
// offline model and stable counters, the equivalent correction is a
// per-kernel-signature multiplicative ratio between measurement and
// prediction, smoothed across invocations.
type Calibrated struct {
	inner  Model
	ratios map[counters.Signature]*calibRatio
}

type calibRatio struct {
	time, power float64
}

// NewCalibrated wraps inner with an empty feedback store.
func NewCalibrated(inner Model) *Calibrated {
	return &Calibrated{inner: inner, ratios: map[counters.Signature]*calibRatio{}}
}

// Name implements Model.
func (c *Calibrated) Name() string { return c.inner.Name() + "+feedback" }

// PredictKernel implements Model, applying the kernel's learned
// correction ratio when one exists.
func (c *Calibrated) PredictKernel(cs counters.Set, cfg hw.Config) Estimate {
	e := c.inner.PredictKernel(cs, cfg)
	if r, ok := c.ratios[counters.SignatureOf(cs)]; ok {
		e.TimeMS *= r.time
		e.GPUPowerW *= r.power
	}
	return e
}

// PredictSpace implements SpaceEvaluator by forwarding to the wrapped
// model's batched path and applying the kernel's correction ratio to
// every estimate — the same two multiplications the scalar path
// performs, so batched and scalar calibrated predictions stay
// bit-identical. Returns false when the inner model has no usable
// batched path (then the optimizer's scalar fallback runs, preserving
// e.g. the prediction cache's per-configuration hit/miss sequence).
func (c *Calibrated) PredictSpace(cs counters.Set, space hw.Space, dst []Estimate) bool {
	se, ok := c.inner.(SpaceEvaluator)
	if !ok || !se.PredictSpace(cs, space, dst) {
		return false
	}
	c.ApplyRatio(cs, dst)
	return true
}

// PredictSpaceTraced implements TracedSpaceEvaluator by forwarding the
// trace context to the wrapped model when it is trace-aware, falling
// back to the untraced batched path otherwise (same estimates, no
// featurize/forest-eval spans).
func (c *Calibrated) PredictSpaceTraced(cs counters.Set, space hw.Space, dst []Estimate, tc *telemetry.Context) bool {
	tse, ok := c.inner.(TracedSpaceEvaluator)
	if !ok {
		return c.PredictSpace(cs, space, dst)
	}
	if !tse.PredictSpaceTraced(cs, space, dst, tc) {
		return false
	}
	c.ApplyRatio(cs, dst)
	return true
}

// ApplyRatio applies the kernel's learned correction ratio to every
// estimate of a batched sweep — the same two multiplications the
// scalar path performs. Exported for the remote-sweep path, which
// evaluates the raw forest in the batch coordinator and must apply the
// session-local calibration on the way back to stay bit-identical to
// the in-process Calibrated sweep.
func (c *Calibrated) ApplyRatio(cs counters.Set, dst []Estimate) {
	if r, ok := c.ratios[counters.SignatureOf(cs)]; ok {
		for i := range dst {
			dst[i].TimeMS *= r.time
			dst[i].GPUPowerW *= r.power
		}
	}
}

// Feedback records the measured outcome of one executed kernel and
// updates its correction ratio. Non-positive measurements or predictions
// are ignored.
func (c *Calibrated) Feedback(cs counters.Set, cfg hw.Config, measuredTimeMS, measuredGPUPowerW float64) {
	raw := c.inner.PredictKernel(cs, cfg)
	if raw.TimeMS <= 0 || raw.GPUPowerW <= 0 || measuredTimeMS <= 0 || measuredGPUPowerW <= 0 {
		return
	}
	sig := counters.SignatureOf(cs)
	rt := measuredTimeMS / raw.TimeMS
	rp := measuredGPUPowerW / raw.GPUPowerW
	if r, ok := c.ratios[sig]; ok {
		r.time = (1-calibWeight)*r.time + calibWeight*rt
		r.power = (1-calibWeight)*r.power + calibWeight*rp
	} else {
		c.ratios[sig] = &calibRatio{time: rt, power: rp}
	}
}

// KnownKernels returns the number of signatures with feedback state.
func (c *Calibrated) KnownKernels() int { return len(c.ratios) }
