package predict

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

// LinearRegression is the simpler predictor family of the paper's
// related work (§VII: Paul et al. train linear regression models to
// predict performance and power sensitivities). It fits ordinary least
// squares over the same features as the Random Forest — log-compressed
// counters plus configuration physics — with log inverse-throughput and
// power targets. It exists as a baseline: the comparison against the
// forest quantifies what the ensemble's nonlinearity buys.
type LinearRegression struct {
	timeCoef  []float64 // intercept-first coefficients for log(ms/inst)
	powerCoef []float64 // intercept-first coefficients for watts
}

// Name implements Model.
func (m *LinearRegression) Name() string { return "linear-regression" }

// PredictKernel implements Model.
func (m *LinearRegression) PredictKernel(cs counters.Set, c hw.Config) Estimate {
	x := featurize(cs, c)
	return Estimate{
		TimeMS:    math.Exp(dotIntercept(m.timeCoef, x)) * instsOf(cs),
		GPUPowerW: math.Max(0.1, dotIntercept(m.powerCoef, x)),
	}
}

func dotIntercept(coef, x []float64) float64 {
	s := coef[0]
	for i, v := range x {
		s += coef[i+1] * v
	}
	return s
}

// TrainLinearRegression fits the baseline on the same synthetic
// population protocol as TrainRandomForest.
func TrainLinearRegression(opt TrainOptions) (*LinearRegression, error) {
	if opt.NumKernels <= 0 {
		return nil, fmt.Errorf("predict: NumKernels = %d, must be positive", opt.NumKernels)
	}
	if opt.Space.Size() == 0 {
		return nil, fmt.Errorf("predict: empty configuration space")
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	var X [][]float64
	var yTime, yPower []float64
	for i := 0; i < opt.NumKernels; i++ {
		k := kernel.Random(fmt.Sprintf("lin%03d", i), rng)
		cs := k.Counters()
		opt.Space.ForEach(func(c hw.Config) {
			m := k.Evaluate(c)
			noiseT := 1 + opt.NoiseFrac*rng.NormFloat64()
			noiseP := 1 + opt.NoiseFrac*rng.NormFloat64()
			X = append(X, featurize(cs, c))
			yTime = append(yTime, math.Log(m.TimeMS*math.Max(0.2, noiseT)/instsOf(cs)))
			yPower = append(yPower, (m.GPUW+m.NBW)*math.Max(0.2, noiseP))
		})
	}

	tc, err := leastSquares(X, yTime)
	if err != nil {
		return nil, fmt.Errorf("predict: time fit: %w", err)
	}
	pc, err := leastSquares(X, yPower)
	if err != nil {
		return nil, fmt.Errorf("predict: power fit: %w", err)
	}
	return &LinearRegression{timeCoef: tc, powerCoef: pc}, nil
}

// leastSquares solves min ||Xb - y|| with an intercept column via the
// normal equations and Gaussian elimination with partial pivoting. The
// feature count is small (14), so normal equations are numerically
// adequate.
func leastSquares(X [][]float64, y []float64) ([]float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("predict: bad regression inputs")
	}
	d := len(X[0]) + 1 // + intercept
	// A = XᵀX (d×d), b = Xᵀy.
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	row := make([]float64, d)
	for r := range X {
		row[0] = 1
		copy(row[1:], X[r])
		for i := 0; i < d; i++ {
			b[i] += row[i] * y[r]
			for j := i; j < d; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
		A[i][i] += 1e-9 // ridge jitter for degenerate features
	}
	return solveGauss(A, b)
}

// solveGauss solves Ax = b in place with partial pivoting.
func solveGauss(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[p][col]) {
				p = r
			}
		}
		if math.Abs(A[p][col]) < 1e-14 {
			return nil, fmt.Errorf("predict: singular normal matrix at column %d", col)
		}
		A[col], A[p] = A[p], A[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= A[i][j] * x[j]
		}
		x[i] = s / A[i][i]
	}
	return x, nil
}
