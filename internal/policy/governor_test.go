package policy

import (
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
)

func TestStaticGovernors(t *testing.T) {
	f := newFixture(t, "Spmv")
	perf := NewPerformanceGovernor()
	pres, err := f.eng.Run(&f.app, perf, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range pres.Records {
		if rec.Config != hw.MaxPerf() {
			t.Fatalf("performance governor chose %v", rec.Config)
		}
		if rec.Evals != 0 {
			t.Fatal("static governor charged evaluations")
		}
	}
	save := NewPowersaveGovernor()
	sres, err := f.eng.Run(&f.app, save, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	// Powersave draws less power but runs much slower.
	pw := pres.TotalEnergyMJ() / pres.TotalTimeMS()
	sw := sres.TotalEnergyMJ() / sres.TotalTimeMS()
	if sw >= pw {
		t.Errorf("powersave power %.1f W not below performance %.1f W", sw, pw)
	}
	if sres.TotalTimeMS() <= pres.TotalTimeMS() {
		t.Error("powersave not slower than performance")
	}
	if perf.Name() == save.Name() {
		t.Error("governor names collide")
	}
}

func TestNewStaticGovernorValidation(t *testing.T) {
	if _, err := NewStaticGovernor("bad", hw.Config{CPU: 99}); err == nil {
		t.Error("invalid config accepted")
	}
	g, err := NewStaticGovernor("ok", hw.FailSafe())
	if err != nil || g.Name() != "ok" {
		t.Errorf("valid governor rejected: %v", err)
	}
}

func TestOndemandGovernorAdapts(t *testing.T) {
	f := newFixture(t, "Spmv")
	g := NewOndemandGovernor(f.eng.Space)
	res, err := f.eng.Run(&f.app, g, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	// It must actually move: more than one distinct config across the run.
	seen := map[hw.Config]bool{}
	for _, rec := range res.Records {
		seen[rec.Config] = true
		if !f.eng.Space.Contains(rec.Config) {
			t.Fatalf("ondemand left the space: %v", rec.Config)
		}
	}
	if len(seen) < 2 {
		t.Error("ondemand governor never adapted")
	}
	// And it should sit between the static extremes on energy.
	perfRes, err := f.eng.Run(&f.app, NewPerformanceGovernor(), f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Compare(res, perfRes)
	if c.EnergySavingsPct <= 0 {
		t.Errorf("ondemand saves %.1f%% vs performance governor, want > 0", c.EnergySavingsPct)
	}
}
