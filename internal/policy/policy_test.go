package policy

import (
	"math"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// fixture bundles an engine, app, baseline and oracle for policy tests.
type fixture struct {
	eng    *sim.Engine
	app    workload.App
	base   *sim.Result
	target sim.Target
	oracle *predict.Oracle
}

func newFixture(t *testing.T, appName string) *fixture {
	t.Helper()
	app, err := workload.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(hw.DefaultSpace())
	base, target, err := eng.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	o := predict.NewOracle()
	for _, k := range app.Kernels {
		o.Register(k)
	}
	return &fixture{eng: eng, app: app, base: base, target: target, oracle: o}
}

// runSteady runs the policy for `repeats` invocations and returns the
// last run (steady state) plus the first.
func (f *fixture) runSteady(t *testing.T, p sim.Policy, repeats int) (first, last *sim.Result) {
	t.Helper()
	rs, err := f.eng.RunRepeated(&f.app, p, f.target, repeats)
	if err != nil {
		t.Fatal(err)
	}
	return rs[0], rs[len(rs)-1]
}

func TestPPKFirstKernelFailSafe(t *testing.T) {
	f := newFixture(t, "Spmv")
	p := NewPPK(f.oracle, f.eng.Space)
	res, err := f.eng.Run(&f.app, p, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Config != hw.FailSafe() {
		t.Errorf("first kernel config %v, want fail-safe", res.Records[0].Config)
	}
	if res.Records[0].Evals != 0 {
		t.Error("first kernel should cost no evaluations")
	}
	// Subsequent decisions sweep the space.
	if res.Records[1].Evals != f.eng.Space.Size() {
		t.Errorf("PPK evals = %d, want %d", res.Records[1].Evals, f.eng.Space.Size())
	}
}

func TestPPKMatchesTOOnRegularApps(t *testing.T) {
	// §II-E / Fig. 4: with perfect knowledge, PPK matches TO for regular
	// benchmarks (a single repeating kernel makes future knowledge
	// useless).
	for _, name := range []string{"mandelbulbGPU", "NBody", "lbm"} {
		f := newFixture(t, name)
		ppk := NewPPK(f.oracle, f.eng.Space)
		pres, err := f.eng.Run(&f.app, ppk, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		to := NewTheoreticallyOptimal(&f.app, f.eng.Space)
		tres, err := f.eng.Run(&f.app, to, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		pc := sim.Compare(pres, f.base)
		tc := sim.Compare(tres, f.base)
		if gap := tc.EnergySavingsPct - pc.EnergySavingsPct; gap > 8 {
			t.Errorf("%s: PPK trails TO by %.1f%% energy on a regular app", name, gap)
		}
	}
}

func TestTOMeetsTargetAndSavesEnergy(t *testing.T) {
	for _, name := range []string{"Spmv", "kmeans", "hybridsort", "NBody"} {
		f := newFixture(t, name)
		to := NewTheoreticallyOptimal(&f.app, f.eng.Space)
		res, err := f.eng.Run(&f.app, to, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		c := sim.Compare(res, f.base)
		if c.Speedup < 0.999 {
			t.Errorf("%s: TO speedup %.4f < 1; it must meet the Turbo Core target", name, c.Speedup)
		}
		if c.EnergySavingsPct <= 0 {
			t.Errorf("%s: TO saves %.1f%%; the optimum must not lose energy", name, c.EnergySavingsPct)
		}
	}
}

func TestTODPBeatsOrMatchesLagrangian(t *testing.T) {
	f := newFixture(t, "hybridsort")
	dp := NewTheoreticallyOptimal(&f.app, f.eng.Space)
	lg := NewTheoreticallyOptimal(&f.app, f.eng.Space)
	lg.UseLagrangian = true
	dres, err := f.eng.Run(&f.app, dp, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := f.eng.Run(&f.app, lg, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	// Both must meet the budget; DP energy must be <= Lagrangian + small
	// discretization slack.
	if lres.TotalTimeMS() > f.target.TotalTimeMS*1.0001 {
		t.Error("Lagrangian plan misses the time budget")
	}
	de, le := dres.TotalEnergyMJ(), lres.TotalEnergyMJ()
	if de > le*1.01 {
		t.Errorf("DP energy %v worse than Lagrangian %v", de, le)
	}
}

func TestTOBeatsPPKOnIrregularApps(t *testing.T) {
	// Fig. 4: on irregular apps TO saves more energy and/or runs faster
	// than PPK even with perfect prediction.
	better := 0
	apps := []string{"Spmv", "kmeans", "hybridsort", "srad", "lud", "pb-bfs"}
	for _, name := range apps {
		f := newFixture(t, name)
		ppk := NewPPK(f.oracle, f.eng.Space)
		pres, err := f.eng.Run(&f.app, ppk, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		to := NewTheoreticallyOptimal(&f.app, f.eng.Space)
		tres, err := f.eng.Run(&f.app, to, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		pc := sim.Compare(pres, f.base)
		tc := sim.Compare(tres, f.base)
		if tc.EnergySavingsPct > pc.EnergySavingsPct+1 || tc.Speedup > pc.Speedup+0.01 {
			better++
		}
	}
	if better < 4 {
		t.Errorf("TO clearly beat PPK on only %d of %d irregular apps", better, len(apps))
	}
}

func TestMPCProfilesThenPredicts(t *testing.T) {
	f := newFixture(t, "Spmv")
	m := NewMPC(f.oracle, f.eng.Space)
	first, last := f.runSteady(t, m, 3)
	if m.Profiling() {
		t.Error("MPC still profiling after 3 runs")
	}
	if m.PPKOverheadMS() <= 0 {
		t.Error("no T_PPK measured during profiling")
	}
	if m.StorageBytes() <= 0 {
		t.Error("extractor stored nothing")
	}
	// Profiling run equals PPK behaviour: first kernel at fail-safe.
	if first.Records[0].Config != hw.FailSafe() {
		t.Error("profiling run did not start at fail-safe")
	}
	// Steady state saves energy vs Turbo Core without losing much
	// performance.
	c := sim.Compare(last, f.base)
	if c.EnergySavingsPct <= 0 {
		t.Errorf("steady-state MPC saves %.1f%% energy, want > 0", c.EnergySavingsPct)
	}
	if c.Speedup < 1-2*0.05 {
		t.Errorf("steady-state MPC speedup %.3f; adaptive horizon should bound loss near α", c.Speedup)
	}
	if frac, ok := m.AvgHorizonFrac(); !ok || frac <= 0 || frac > 1 {
		t.Errorf("avg horizon frac = %v, %v", frac, ok)
	}
}

func TestMPCBeatsPPKOnIrregularApps(t *testing.T) {
	// Fig. 9's headline: on irregular apps, steady-state MPC beats PPK on
	// performance while saving energy (here both use the oracle, isolating
	// the future-awareness effect).
	wins := 0
	apps := []string{"Spmv", "kmeans", "hybridsort", "lud", "pb-bfs", "srad", "color"}
	for _, name := range apps {
		f := newFixture(t, name)
		ppk := NewPPK(f.oracle, f.eng.Space)
		_, plast := f.runSteady(t, ppk, 2)
		m := NewMPC(f.oracle, f.eng.Space)
		_, mlast := f.runSteady(t, m, 2)
		pc := sim.Compare(plast, f.base)
		mc := sim.Compare(mlast, f.base)
		if mc.Speedup >= pc.Speedup-0.005 && mc.EnergySavingsPct >= pc.EnergySavingsPct-8 {
			wins++
		}
		t.Logf("%s: MPC %.1f%%/%.3f vs PPK %.1f%%/%.3f (energy/speedup)",
			name, mc.EnergySavingsPct, mc.Speedup, pc.EnergySavingsPct, pc.Speedup)
	}
	if wins < 5 {
		t.Errorf("MPC at least matched PPK on only %d of %d irregular apps", wins, len(apps))
	}
}

func TestMPCNearTOWithPerfectPrediction(t *testing.T) {
	// Fig. 12: with perfect prediction MPC achieves most of TO's savings.
	for _, name := range []string{"Spmv", "kmeans"} {
		f := newFixture(t, name)
		free := *f.eng
		free.Cost = sim.CostModel{} // no overhead, full-horizon comparison
		m := NewMPC(f.oracle, f.eng.Space, WithFullHorizon())
		rs, err := free.RunRepeated(&f.app, m, f.target, 2)
		if err != nil {
			t.Fatal(err)
		}
		to := NewTheoreticallyOptimal(&f.app, f.eng.Space)
		tres, err := free.Run(&f.app, to, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		mc := sim.Compare(rs[1], f.base)
		tc := sim.Compare(tres, f.base)
		if mc.EnergySavingsPct < 0.6*tc.EnergySavingsPct {
			t.Errorf("%s: MPC achieves %.1f%% of %.1f%% TO savings; paper reports ~92%%",
				name, mc.EnergySavingsPct, tc.EnergySavingsPct)
		}
	}
}

func TestMPCFullHorizonCostsMoreOverhead(t *testing.T) {
	// §VI-E: with overheads included, the full-horizon scheme spends far
	// more optimizer time than the adaptive scheme on short-kernel apps.
	f := newFixture(t, "hybridsort")
	ad := NewMPC(f.oracle, f.eng.Space)
	_, adLast := f.runSteady(t, ad, 2)
	fh := NewMPC(f.oracle, f.eng.Space, WithFullHorizon())
	_, fhLast := f.runSteady(t, fh, 2)
	if fhLast.OverheadMS() <= adLast.OverheadMS() {
		t.Errorf("full horizon overhead %.3f ms <= adaptive %.3f ms",
			fhLast.OverheadMS(), adLast.OverheadMS())
	}
}

func TestMPCHorizonAdaptsToKernelLength(t *testing.T) {
	// Fig. 15: long-kernel apps get (near-)full horizons; short-kernel
	// apps get clipped ones.
	fLong := newFixture(t, "XSBench")
	mLong := NewMPC(fLong.oracle, fLong.eng.Space)
	fLong.runSteady(t, mLong, 2)
	fracLong, ok := mLong.AvgHorizonFrac()
	if !ok {
		t.Fatal("no horizon stats for XSBench")
	}
	fShort := newFixture(t, "hybridsort")
	mShort := NewMPC(fShort.oracle, fShort.eng.Space)
	fShort.runSteady(t, mShort, 2)
	fracShort, ok := mShort.AvgHorizonFrac()
	if !ok {
		t.Fatal("no horizon stats for hybridsort")
	}
	if fracLong < 0.8 {
		t.Errorf("XSBench avg horizon %.2f of N, want >= 0.8 (long kernels)", fracLong)
	}
	if fracShort >= fracLong {
		t.Errorf("hybridsort horizon %.2f not below XSBench %.2f", fracShort, fracLong)
	}
}

func TestMPCRejectsAppSwitch(t *testing.T) {
	f := newFixture(t, "Spmv")
	m := NewMPC(f.oracle, f.eng.Space)
	f.runSteady(t, m, 1)
	other, _ := workload.ByName("kmeans")
	defer func() {
		if recover() == nil {
			t.Fatal("MPC reuse across apps did not panic")
		}
	}()
	_, _ = f.eng.Run(&other, m, f.target, false)
}

func TestMPCMeetsAlphaBoundAcrossBenchmarks(t *testing.T) {
	// The adaptive horizon bounds steady-state performance loss; allow
	// slack for prediction-free oracle runs: losses should stay within
	// ~2α across the suite, and mostly within α.
	var worst float64 = 1
	for _, app := range workload.Benchmarks() {
		f := newFixture(t, app.Name)
		m := NewMPC(f.oracle, f.eng.Space)
		_, last := f.runSteady(t, m, 2)
		c := sim.Compare(last, f.base)
		if c.Speedup < worst {
			worst = c.Speedup
		}
		if c.Speedup < 1-2*0.05-0.02 {
			t.Errorf("%s: steady-state speedup %.3f violates 2α bound", app.Name, c.Speedup)
		}
	}
	t.Logf("worst steady-state speedup across suite: %.3f", worst)
	if math.IsNaN(worst) {
		t.Fatal("NaN speedup")
	}
}
