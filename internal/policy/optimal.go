package policy

import (
	"fmt"
	"math"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// TheoreticallyOptimal is the impractical upper-bound scheme of §II-E and
// Fig. 12: perfect knowledge of every kernel's behaviour at every
// configuration, a horizon covering the whole application, exhaustive
// search, and no optimization overhead.
//
// Finding the globally optimal per-kernel assignment under the total
// throughput constraint is the multiple-choice knapsack problem — the
// NP-hard core the paper reduces from — so the "full state space
// exploration" is realized here as an exact dynamic program over
// discretized time (optimal up to the discretization, which is chosen
// fine enough that the residual slack is negligible), with a Lagrangian
// relaxation available as a fast alternative for the solver ablation.
type TheoreticallyOptimal struct {
	app   *workload.App
	space hw.Space
	plan  []hw.Config
	// Bins controls the DP time discretization (default 4000).
	Bins int
	// UseLagrangian switches to the relaxation-based solver.
	UseLagrangian bool
}

// NewTheoreticallyOptimal returns the TO scheme for one application. The
// plan is computed lazily at Begin, when the performance target is known.
func NewTheoreticallyOptimal(app *workload.App, space hw.Space) *TheoreticallyOptimal {
	return &TheoreticallyOptimal{app: app, space: space, Bins: 4000}
}

// Name implements sim.Policy.
func (t *TheoreticallyOptimal) Name() string {
	if t.UseLagrangian {
		return "theoretically-optimal-lagrangian"
	}
	return "theoretically-optimal"
}

// Begin implements sim.Policy, computing the global plan.
func (t *TheoreticallyOptimal) Begin(info sim.RunInfo) {
	if info.NumKernels != t.app.Len() {
		panic(fmt.Sprintf("policy: TO built for %s (%d kernels), run has %d",
			t.app.Name, t.app.Len(), info.NumKernels))
	}
	budget := info.Target.TotalTimeMS
	if budget <= 0 {
		budget = math.Inf(1)
	}
	if t.UseLagrangian {
		t.plan = t.solveLagrangian(budget)
	} else {
		t.plan = t.solveDP(budget)
	}
}

// Decide implements sim.Policy. TO charges no overhead: it is the
// theoretical limit, not a deployable scheme.
func (t *TheoreticallyOptimal) Decide(i int) sim.Decision {
	return sim.Decision{Config: t.plan[i], Evals: 0}
}

// Observe implements sim.Policy.
func (t *TheoreticallyOptimal) Observe(sim.Observation) {}

// tables materializes per-kernel time and energy for every configuration.
func (t *TheoreticallyOptimal) tables() (times, energies [][]float64, cfgs []hw.Config) {
	cfgs = t.space.Configs()
	n := t.app.Len()
	times = make([][]float64, n)
	energies = make([][]float64, n)
	for i, k := range t.app.Kernels {
		times[i] = make([]float64, len(cfgs))
		energies[i] = make([]float64, len(cfgs))
		for j, c := range cfgs {
			m := k.Evaluate(c)
			times[i][j] = m.TimeMS
			energies[i][j] = m.EnergyMJ()
		}
	}
	return times, energies, cfgs
}

// fastestPlan returns the per-kernel minimum-time assignment — the
// fallback when even the fastest plan misses the budget.
func fastestPlan(times [][]float64, cfgs []hw.Config) []hw.Config {
	plan := make([]hw.Config, len(times))
	for i := range times {
		bj := 0
		for j := range times[i] {
			if times[i][j] < times[i][bj] {
				bj = j
			}
		}
		plan[i] = cfgs[bj]
	}
	return plan
}

// solveDP runs the multiple-choice knapsack dynamic program: minimize
// total energy subject to Σ time ≤ budget. Per-kernel times are rounded
// DOWN to bins (rounding up would make any plan sitting exactly at the
// budget — such as the baseline itself — spuriously infeasible); the
// resulting plan's real time is then verified, and the DP budget
// tightened by the overshoot until the real constraint holds.
func (t *TheoreticallyOptimal) solveDP(budgetMS float64) []hw.Config {
	times, energies, cfgs := t.tables()
	n := len(times)
	if math.IsInf(budgetMS, 1) {
		// Unconstrained: independent per-kernel minimum energy.
		plan := make([]hw.Config, n)
		for i := range times {
			bj := 0
			for j := range energies[i] {
				if energies[i][j] < energies[i][bj] {
					bj = j
				}
			}
			plan[i] = cfgs[bj]
		}
		return plan
	}

	bins := t.Bins
	if bins <= 0 {
		bins = 4000
	}
	delta := budgetMS / float64(bins)

	plan := t.dpPass(times, energies, cfgs, delta, bins)
	if plan == nil {
		return fastestPlan(times, cfgs)
	}
	// Floor rounding lets the plan overshoot the real budget by up to
	// n·delta; repair greedily by speeding up the kernel whose upgrade
	// costs the least energy per millisecond recovered.
	idx := make([]int, n)
	real := 0.0
	for i := range plan {
		idx[i] = t.space.Index(plan[i])
		real += times[i][idx[i]]
	}
	for real > budgetMS+1e-9 {
		bestI, bestJ := -1, -1
		bestRate := math.Inf(1)
		for i := range times {
			ci := idx[i]
			for j := range times[i] {
				dt := times[i][ci] - times[i][j]
				if dt <= 0 {
					continue
				}
				rate := (energies[i][j] - energies[i][ci]) / dt
				if rate < bestRate {
					bestRate, bestI, bestJ = rate, i, j
				}
			}
		}
		if bestI < 0 {
			return fastestPlan(times, cfgs)
		}
		real -= times[bestI][idx[bestI]] - times[bestI][bestJ]
		idx[bestI] = bestJ
		plan[bestI] = cfgs[bestJ]
	}
	return plan
}

// dpPass solves one knapsack instance over floor-binned weights with the
// given binned budget, returning nil if no assignment fits.
func (t *TheoreticallyOptimal) dpPass(times, energies [][]float64, cfgs []hw.Config, delta float64, bins int) []hw.Config {
	n := len(times)
	const inf = math.MaxFloat64
	dp := make([]float64, bins+1)
	next := make([]float64, bins+1)
	choice := make([][]int16, n)
	for b := 1; b <= bins; b++ {
		dp[b] = inf
	}
	for i := 0; i < n; i++ {
		choice[i] = make([]int16, bins+1)
		for b := range next {
			next[b] = inf
			choice[i][b] = -1
		}
		for j := range times[i] {
			w := int(math.Floor(times[i][j] / delta))
			if w > bins {
				continue
			}
			e := energies[i][j]
			for b := w; b <= bins; b++ {
				if dp[b-w] >= inf {
					continue
				}
				if cand := dp[b-w] + e; cand < next[b] {
					next[b] = cand
					choice[i][b] = int16(j)
				}
			}
		}
		dp, next = next, dp
	}

	bestB, bestE := -1, inf
	for b := 0; b <= bins; b++ {
		if dp[b] < bestE {
			bestE, bestB = dp[b], b
		}
	}
	if bestB < 0 {
		return nil
	}
	plan := make([]hw.Config, n)
	b := bestB
	for i := n - 1; i >= 0; i-- {
		j := choice[i][b]
		if j < 0 {
			return nil
		}
		plan[i] = cfgs[j]
		b -= int(math.Floor(times[i][j] / delta))
	}
	return plan
}

// solveLagrangian minimizes Σ(e + λ·t) per kernel and bisects λ until the
// plan meets the time budget, then returns the cheapest feasible plan
// found. It is optimal on the convex hull of the per-kernel trade-off
// curves and orders of magnitude faster than the DP.
func (t *TheoreticallyOptimal) solveLagrangian(budgetMS float64) []hw.Config {
	times, energies, cfgs := t.tables()
	n := len(times)

	solve := func(lambda float64) ([]hw.Config, float64, float64) {
		plan := make([]hw.Config, n)
		totT, totE := 0.0, 0.0
		for i := range times {
			bj := 0
			best := energies[i][0] + lambda*times[i][0]
			for j := 1; j < len(cfgs); j++ {
				if v := energies[i][j] + lambda*times[i][j]; v < best {
					best, bj = v, j
				}
			}
			plan[i] = cfgs[bj]
			totT += times[i][bj]
			totE += energies[i][bj]
		}
		return plan, totT, totE
	}

	if plan, totT, _ := solve(0); totT <= budgetMS {
		return plan // unconstrained optimum already feasible
	}
	lo, hi := 0.0, 1.0
	for it := 0; it < 60; it++ {
		if _, totT, _ := solve(hi); totT <= budgetMS {
			break
		}
		hi *= 2
	}
	bestPlan, bestT, _ := solve(hi)
	if bestT > budgetMS {
		return fastestPlan(times, cfgs)
	}
	for it := 0; it < 60; it++ {
		mid := (lo + hi) / 2
		plan, totT, _ := solve(mid)
		if totT <= budgetMS {
			bestPlan = plan
			hi = mid
		} else {
			lo = mid
		}
	}
	return bestPlan
}

// Plan exposes the computed plan (after Begin), for tests and analysis.
func (t *TheoreticallyOptimal) Plan() []hw.Config { return t.plan }
