package policy

import (
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// TestMPCSurvivesPatternDivergence exercises the fallback path: the app
// keeps its name and length but swaps half its kernels between runs
// (a data-dependent branch taking the other side). The extractor's
// replay gets invalidated mid-run and MPC must degrade to history-based
// behaviour instead of acting on stale expectations — and still satisfy
// the engine (valid configs, complete run).
func TestMPCSurvivesPatternDivergence(t *testing.T) {
	a := kernel.NewComputeBound("stable", 1)
	b := kernel.NewMemoryBound("phase1", 1)
	c := kernel.NewPeak("phase2", 1)

	run1 := workload.App{Name: "diverging", Pattern: "A5B5", Kernels: []kernel.Kernel{a, a, a, a, a, b, b, b, b, b}}
	run2 := workload.App{Name: "diverging", Pattern: "A5C5", Kernels: []kernel.Kernel{a, a, a, a, a, c, c, c, c, c}}

	eng := sim.NewEngine(hw.DefaultSpace())
	// Target from the first variant; the divergence is unanticipated.
	base, target, err := eng.Baseline(&run1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := predict.NewOracle()
	for _, k := range append(append([]kernel.Kernel{}, run1.Kernels...), run2.Kernels...) {
		oracle.Register(k)
	}
	m := NewMPC(oracle, eng.Space)

	// Profiling run on variant 1.
	if _, err := eng.Run(&run1, m, target, true); err != nil {
		t.Fatal(err)
	}
	// Steady run hits variant 2: positions 5..9 diverge from the learned
	// sequence.
	res, err := eng.Run(&run2, m, target, false)
	if err != nil {
		t.Fatalf("MPC failed on diverged pattern: %v", err)
	}
	if m.Profiling() {
		t.Error("divergence should not reset the policy to profiling mid-run")
	}
	if len(res.Records) != run2.Len() {
		t.Fatalf("incomplete run: %d records", len(res.Records))
	}
	for _, rec := range res.Records {
		if !eng.Space.Contains(rec.Config) {
			t.Fatalf("invalid config %v after divergence", rec.Config)
		}
	}
	// It must not have collapsed performance-wise either: the fallback
	// is PPK-grade, not pathological.
	c2 := sim.Compare(res, base)
	if c2.Speedup < 0.5 {
		t.Errorf("post-divergence speedup %.3f collapsed", c2.Speedup)
	}

	// A third run re-learns the new variant and returns to full MPC
	// quality.
	res3, err := eng.Run(&run2, m, target, false)
	if err != nil {
		t.Fatal(err)
	}
	c3 := sim.Compare(res3, base)
	if c3.Speedup < 0.85 {
		t.Errorf("re-learned run speedup %.3f; pattern update failed", c3.Speedup)
	}
	if c3.EnergySavingsPct <= 0 {
		t.Errorf("re-learned run saves %.1f%%", c3.EnergySavingsPct)
	}
}

// TestMPCHandlesLengthChange: a run with a different kernel count drops
// the policy back into profiling (the stored profile no longer applies).
func TestMPCHandlesLengthChange(t *testing.T) {
	a := kernel.NewComputeBound("k", 1)
	short := workload.App{Name: "resizing", Pattern: "A4", Kernels: []kernel.Kernel{a, a, a, a}}
	long := workload.App{Name: "resizing", Pattern: "A8", Kernels: []kernel.Kernel{a, a, a, a, a, a, a, a}}

	eng := sim.NewEngine(hw.DefaultSpace())
	_, target, err := eng.Baseline(&short)
	if err != nil {
		t.Fatal(err)
	}
	oracle := predict.NewOracle()
	oracle.Register(a)
	m := NewMPC(oracle, eng.Space)
	if _, err := eng.Run(&short, m, target, true); err != nil {
		t.Fatal(err)
	}
	// Not flagged as first run, but the length changed: the policy must
	// notice and re-profile rather than index out of range.
	if _, err := eng.Run(&long, m, target, false); err != nil {
		t.Fatalf("length change broke MPC: %v", err)
	}
	if !m.Profiling() {
		t.Error("length change should re-enter profiling")
	}
}
