package policy

import (
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

func TestEqualizerStartsFailSafe(t *testing.T) {
	f := newFixture(t, "Spmv")
	e := NewEqualizer(f.eng.Space)
	res, err := f.eng.Run(&f.app, e, f.target, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Config != hw.FailSafe() {
		t.Errorf("first kernel at %v, want fail-safe", res.Records[0].Config)
	}
	// The CPU is always parked (busy-wait costs nothing to park).
	for _, rec := range res.Records[1:] {
		if rec.Config.CPU != hw.P7 {
			t.Fatalf("equalizer left the CPU at %v", rec.Config.CPU)
		}
	}
}

func TestEqualizerClassifiesBoundedness(t *testing.T) {
	space := hw.DefaultSpace()
	e := NewEqualizer(space)
	e.Begin(sim.RunInfo{})

	// Feed a strongly memory-bound observation: the GPU knob must come
	// down (energy mode starves idle compute).
	mb, _ := workload.ByName("Spmv")
	memK := mb.Kernels[20] // ellpackr, memory-bound
	obs := sim.Observation{
		Counters: memK.Counters(),
		Insts:    memK.Insts(), TimeMS: 1, GPUPowerW: 30, Config: hw.FailSafe(),
	}
	e.Observe(obs)
	d := e.Decide(1)
	if d.Config.GPU >= hw.FailSafe().GPU && d.Config.CUs >= hw.FailSafe().CUs {
		t.Errorf("memory-bound kernel did not starve compute: %v", d.Config)
	}

	// Compute-bound: NB drops, GPU rises (or stays at max).
	e.Begin(sim.RunInfo{})
	cb, _ := workload.ByName("NBody")
	cbK := cb.Kernels[0]
	obs.Counters = cbK.Counters()
	e.Observe(obs)
	d = e.Decide(1)
	if d.Config.NB <= hw.FailSafe().NB && d.Config.GPU <= hw.FailSafe().GPU {
		t.Errorf("compute-bound kernel did not starve memory: %v", d.Config)
	}
}

func TestEqualizerSavesEnergyOnSuite(t *testing.T) {
	// As a kernel-aware reactive scheme it should save energy vs Turbo
	// Core on most benchmarks, at some performance cost.
	saves := 0
	for _, name := range []string{"Spmv", "kmeans", "NBody", "hybridsort", "lulesh"} {
		f := newFixture(t, name)
		e := NewEqualizer(f.eng.Space)
		res, err := f.eng.Run(&f.app, e, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		c := sim.Compare(res, f.base)
		if c.EnergySavingsPct > 0 {
			saves++
		}
		if c.Speedup < 0.3 {
			t.Errorf("%s: equalizer speedup %.3f collapsed", name, c.Speedup)
		}
	}
	if saves < 4 {
		t.Errorf("equalizer saved energy on only %d/5 benchmarks", saves)
	}
}

func TestEqualizerStaysInSpace(t *testing.T) {
	for _, app := range workload.Benchmarks() {
		f := newFixture(t, app.Name)
		e := NewEqualizer(f.eng.Space)
		res, err := f.eng.Run(&f.app, e, f.target, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range res.Records {
			if !f.eng.Space.Contains(rec.Config) {
				t.Fatalf("%s: equalizer chose %v outside the space", app.Name, rec.Config)
			}
		}
	}
}
