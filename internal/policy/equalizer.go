package policy

import (
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
)

// Equalizer is a reconstruction of the §VII related-work scheme of
// Sethia & Mahlke: a reactive controller that reads the last kernel's
// performance counters, classifies it as compute- or memory-bound, and
// tunes the matching knobs — boosting the bottleneck resource in
// performance mode or starving the idle one in energy mode. It is
// kernel-aware (unlike Turbo Core) but history-based and model-free
// (unlike PPK and MPC): the third rung on the ladder the paper climbs.
type Equalizer struct {
	space hw.Space
	// EnergyMode starves the non-bottleneck resource instead of boosting
	// the bottleneck (the paper describes Equalizer's two modes).
	EnergyMode bool

	cur     hw.Config
	haveObs bool
	last    sim.Observation
}

// NewEqualizer returns the reactive counter-driven baseline in energy
// mode (the mode comparable to the paper's objective).
func NewEqualizer(space hw.Space) *Equalizer {
	return &Equalizer{space: space, EnergyMode: true}
}

// Name implements sim.Policy.
func (e *Equalizer) Name() string {
	if e.EnergyMode {
		return "equalizer-energy"
	}
	return "equalizer-perf"
}

// Begin implements sim.Policy.
func (e *Equalizer) Begin(sim.RunInfo) {
	e.cur = e.space.Clamp(hw.FailSafe())
	e.haveObs = false
}

// Decide implements sim.Policy: apply the configuration tuned from the
// previous kernel's counters (the first kernel runs at fail-safe).
func (e *Equalizer) Decide(int) sim.Decision {
	if !e.haveObs {
		return sim.Decision{Config: e.space.Clamp(hw.FailSafe())}
	}
	return sim.Decision{Config: e.cur}
}

// Boundedness thresholds on the MemUnitStalled counter (percent of GPU
// time the memory unit is stalled).
const (
	eqMemBoundPct     = 55.0
	eqComputeBoundPct = 25.0
)

// Observe implements sim.Policy: classify and retune.
func (e *Equalizer) Observe(obs sim.Observation) {
	e.last = obs
	e.haveObs = true

	stall := obs.Counters[counters.MemUnitStalled]
	cfg := e.cur
	switch {
	case stall >= eqMemBoundPct:
		// Memory-bound: the NB is the bottleneck, the shader array is
		// waiting.
		if e.EnergyMode {
			// Starve the idle compute side.
			if down, ok := e.space.Step(cfg, hw.KnobGPU, -1); ok {
				cfg = down
			} else if down, ok := e.space.Step(cfg, hw.KnobCU, -1); ok {
				cfg = down
			}
			cfg = raiseNB(e.space, cfg) // keep memory fed
		} else {
			cfg = raiseNB(e.space, cfg)
		}
	case stall <= eqComputeBoundPct:
		// Compute-bound: the shader array is the bottleneck.
		if e.EnergyMode {
			// Starve the idle memory side.
			if down, ok := e.space.Step(cfg, hw.KnobNB, +1); ok {
				cfg = down
			}
			cfg = raiseGPU(e.space, cfg)
		} else {
			cfg = raiseGPU(e.space, cfg)
			if up, ok := e.space.Step(cfg, hw.KnobCU, +1); ok {
				cfg = up
			}
		}
	default:
		// Balanced: relax whichever side a previous kernel over-boosted,
		// one step at a time, toward the fail-safe midpoint.
		fs := e.space.Clamp(hw.FailSafe())
		cfg = stepToward(e.space, cfg, fs)
	}
	// The CPU busy-waits during kernels either way.
	cfg.CPU = e.space.CPUs[len(e.space.CPUs)-1]
	e.cur = cfg
}

func raiseNB(space hw.Space, cfg hw.Config) hw.Config {
	if up, ok := space.Step(cfg, hw.KnobNB, -1); ok { // lower index = faster NB
		return up
	}
	return cfg
}

func raiseGPU(space hw.Space, cfg hw.Config) hw.Config {
	if up, ok := space.Step(cfg, hw.KnobGPU, +1); ok {
		return up
	}
	return cfg
}

// stepToward moves cfg one knob-step toward target.
func stepToward(space hw.Space, cfg, target hw.Config) hw.Config {
	for _, k := range hw.Knobs() {
		ci := space.KnobIndex(cfg, k)
		ti := space.KnobIndex(target, k)
		if ci < 0 || ti < 0 || ci == ti {
			continue
		}
		dir := 1
		if ti < ci {
			dir = -1
		}
		if next, ok := space.Step(cfg, k, dir); ok {
			return next
		}
	}
	return cfg
}
