package policy

import (
	"fmt"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
)

// StaticGovernor pins a single configuration for every kernel — the
// performance/powersave governor family of general-purpose DVFS stacks.
// They bracket the design space: Performance is a TDP-blind Turbo Core,
// Powersave the lowest-power corner, and both show why kernel-aware
// policies are needed at all.
type StaticGovernor struct {
	name string
	cfg  hw.Config
}

// NewPerformanceGovernor pins the highest-performance configuration.
func NewPerformanceGovernor() *StaticGovernor {
	return &StaticGovernor{name: "governor-performance", cfg: hw.MaxPerf()}
}

// NewPowersaveGovernor pins the lowest-power configuration.
func NewPowersaveGovernor() *StaticGovernor {
	return &StaticGovernor{name: "governor-powersave", cfg: hw.Config{CPU: hw.P7, NB: hw.NB3, GPU: hw.DPM0, CUs: hw.MinCUs}}
}

// NewStaticGovernor pins an arbitrary configuration.
func NewStaticGovernor(name string, cfg hw.Config) (*StaticGovernor, error) {
	if !cfg.Valid() {
		return nil, fmt.Errorf("policy: invalid governor config %v", cfg)
	}
	return &StaticGovernor{name: name, cfg: cfg}, nil
}

// Name implements sim.Policy.
func (g *StaticGovernor) Name() string { return g.name }

// Begin implements sim.Policy.
func (g *StaticGovernor) Begin(sim.RunInfo) {}

// Decide implements sim.Policy.
func (g *StaticGovernor) Decide(int) sim.Decision { return sim.Decision{Config: g.cfg} }

// Observe implements sim.Policy.
func (g *StaticGovernor) Observe(sim.Observation) {}

// OndemandGovernor is a Linux-ondemand-style reactive controller: it
// watches the achieved throughput per GPU-clock and steps the GPU/NB
// states up when the kernel appears starved and down when extra clocks
// stopped paying off. Like Turbo Core it is history-based and
// kernel-agnostic — a second state-of-practice reference point.
type OndemandGovernor struct {
	space hw.Space
	cur   hw.Config
	// last throughput-per-GHz observed, keyed implicitly by recency.
	lastEff float64
	haveObs bool
}

// NewOndemandGovernor returns the reactive governor over a space.
func NewOndemandGovernor(space hw.Space) *OndemandGovernor {
	return &OndemandGovernor{space: space}
}

// Name implements sim.Policy.
func (g *OndemandGovernor) Name() string { return "governor-ondemand" }

// Begin implements sim.Policy.
func (g *OndemandGovernor) Begin(sim.RunInfo) {
	g.cur = g.space.Clamp(hw.Config{CPU: hw.P5, NB: hw.NB1, GPU: hw.DPM2, CUs: 6})
	g.lastEff = 0
	g.haveObs = false
}

// Decide implements sim.Policy.
func (g *OndemandGovernor) Decide(int) sim.Decision { return sim.Decision{Config: g.cur} }

// Observe implements sim.Policy: step the GPU knob toward better
// throughput-per-clock, NB following.
func (g *OndemandGovernor) Observe(obs sim.Observation) {
	eff := obs.Insts / obs.TimeMS / obs.Config.GPU.FreqGHz()
	if g.haveObs {
		if eff >= g.lastEff*0.98 {
			// Clocks are still paying off: boost.
			if up, ok := g.space.Step(g.cur, hw.KnobGPU, +1); ok {
				g.cur = up
			} else if up, ok := g.space.Step(g.cur, hw.KnobNB, -1); ok {
				g.cur = up
			}
		} else {
			// Diminishing returns: back off.
			if down, ok := g.space.Step(g.cur, hw.KnobGPU, -1); ok {
				g.cur = down
			}
		}
	}
	g.lastEff = eff
	g.haveObs = true
}
